package tree

import (
	"fmt"
	"math"
	"strings"

	"jepo/internal/classify"
	"jepo/internal/dataset"
)

// J48 is WEKA's C4.5 implementation: gain-ratio splits, multiway nominal
// branches, binary numeric thresholds, and pessimistic (confidence-based)
// subtree-replacement pruning with the stock confidence factor 0.25.
type J48 struct {
	// ConfidenceFactor for pessimistic pruning (default 0.25).
	ConfidenceFactor float64
	// MinLeaf is the minimum instances per leaf (WEKA -M, default 2).
	MinLeaf int
	// Unpruned disables pruning (WEKA -U).
	Unpruned bool

	opts       classify.Options
	root       *node
	attrNames  []string
	classNames []string
}

// NewJ48 builds a J48 with WEKA's default parameters.
func NewJ48(opts classify.Options) *J48 {
	return &J48{ConfidenceFactor: 0.25, MinLeaf: 2, opts: opts}
}

// Name implements Classifier.
func (c *J48) Name() string { return "J48" }

// Train implements Classifier.
func (c *J48) Train(d *dataset.Dataset) error {
	if d.NumInstances() == 0 {
		return fmt.Errorf("j48: empty training set")
	}
	b := &builder{cfg: builderConfig{
		gainRatio: true,
		minLeaf:   c.MinLeaf,
		fp:        c.opts.FP,
	}, d: d}
	rows := allRows(d)
	c.root = b.grow(rows, 0)
	if !c.Unpruned {
		c.prune(c.root)
	}
	return nil
}

// Predict implements Classifier.
func (c *J48) Predict(row []float64) int { return c.root.predict(row) }

// NumNodes reports the pruned tree size.
func (c *J48) NumNodes() int { return c.root.countNodes() }

// prune applies C4.5's subtree replacement: a subtree is replaced by a leaf
// when the leaf's pessimistic error estimate does not exceed the subtree's.
func (c *J48) prune(nd *node) {
	if nd.isLeaf() {
		return
	}
	for _, ch := range nd.children {
		if ch != nil {
			c.prune(ch)
		}
	}
	subtreeErr := 0.0
	for _, ch := range nd.children {
		if ch != nil {
			subtreeErr += c.pessimisticError(ch)
		}
	}
	leafErr := c.errUpper(nd.n, nd.n-maxOf(nd.dist))
	if leafErr <= subtreeErr+0.1 {
		nd.attr = -1
		nd.children = nil
	}
}

// pessimisticError sums the leaf error bounds of a subtree.
func (c *J48) pessimisticError(nd *node) float64 {
	if nd.isLeaf() {
		return c.errUpper(nd.n, nd.n-maxOf(nd.dist))
	}
	s := 0.0
	for _, ch := range nd.children {
		if ch != nil {
			s += c.pessimisticError(ch)
		}
	}
	return s
}

// errUpper is C4.5's upper confidence bound on the error count of a leaf
// with n instances and e errors (normal approximation to the binomial).
func (c *J48) errUpper(n, e float64) float64 {
	if n == 0 {
		return 0
	}
	z := zScore(c.ConfidenceFactor)
	f := e / n
	z2 := z * z
	num := f + z2/(2*n) + z*math.Sqrt(f/n-f*f/n+z2/(4*n*n))
	den := 1 + z2/n
	return n * (num / den)
}

// zScore inverts the one-sided standard normal CDF for the C4.5 confidence
// levels of interest (coarse bisection on erfc is plenty here).
func zScore(cf float64) float64 {
	lo, hi := 0.0, 6.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		// upper tail P(Z > mid)
		p := 0.5 * math.Erfc(mid/math.Sqrt2)
		if p > cf {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

func maxOf(xs []float64) float64 {
	best := 0.0
	for _, v := range xs {
		if v > best {
			best = v
		}
	}
	return best
}

func allRows(d *dataset.Dataset) []int {
	rows := make([]int, d.NumInstances())
	for i := range rows {
		rows[i] = i
	}
	return rows
}

// String renders the pruned tree in WEKA's textual J48 layout, e.g.
//
//	x <= 4.25: lo (12.0)
//	x > 4.25
//	|   hint = a: lo (3.0)
//	|   hint = b: hi (9.0)
//
// attrNames and classNames label the columns; pass nil to use indices.
func (c *J48) String() string {
	if c.root == nil {
		return "J48 (untrained)"
	}
	var sb strings.Builder
	sb.WriteString("J48 pruned tree\n------------------\n")
	c.render(&sb, c.root, 0)
	fmt.Fprintf(&sb, "\nNumber of Nodes  : \t%d\n", c.NumNodes())
	return sb.String()
}

// SetLabels installs attribute and class names for String rendering.
func (c *J48) SetLabels(attrNames, classNames []string) {
	c.attrNames, c.classNames = attrNames, classNames
}

func (c *J48) attrLabel(a int) string {
	if a >= 0 && a < len(c.attrNames) {
		return c.attrNames[a]
	}
	return fmt.Sprintf("attr%d", a)
}

func (c *J48) classLabel(k int) string {
	if k >= 0 && k < len(c.classNames) {
		return c.classNames[k]
	}
	return fmt.Sprintf("class%d", k)
}

func (c *J48) render(sb *strings.Builder, nd *node, depth int) {
	indent := strings.Repeat("|   ", depth)
	leaf := func(n *node) string {
		return fmt.Sprintf("%s (%.1f)", c.classLabel(n.pred), n.n)
	}
	if nd.isLeaf() {
		fmt.Fprintf(sb, "%s: %s\n", indent, leaf(nd))
		return
	}
	if !nd.nominal {
		c.renderBranch(sb, nd.children[0], depth,
			fmt.Sprintf("%s%s <= %.4g", indent, c.attrLabel(nd.attr), nd.threshold), leaf)
		c.renderBranch(sb, nd.children[1], depth,
			fmt.Sprintf("%s%s > %.4g", indent, c.attrLabel(nd.attr), nd.threshold), leaf)
		return
	}
	for v, ch := range nd.children {
		if ch == nil {
			continue
		}
		c.renderBranch(sb, ch, depth,
			fmt.Sprintf("%s%s = %d", indent, c.attrLabel(nd.attr), v), leaf)
	}
}

func (c *J48) renderBranch(sb *strings.Builder, ch *node, depth int, label string, leaf func(*node) string) {
	if ch.isLeaf() {
		fmt.Fprintf(sb, "%s: %s\n", label, leaf(ch))
		return
	}
	fmt.Fprintf(sb, "%s\n", label)
	c.render(sb, ch, depth+1)
}
