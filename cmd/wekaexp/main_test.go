package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jepo/internal/corpus"
	"jepo/internal/tables"
)

// seedCheckpoints writes a completed Table4Row for every classifier, so the
// supervised Table IV runner resumes every row from disk instead of spending
// minutes measuring — exactly the resume path an interrupted run exercises.
func seedCheckpoints(t *testing.T, dir string) {
	t.Helper()
	for i, name := range corpus.Classifiers {
		row := tables.Table4Row{
			Classifier: name,
			Changes:    40 + i,
			PackagePct: 12.5, CPUPct: 12.1, TimePct: 11.8, AccuracyPct: 0.05,
		}
		blob, err := json.MarshalIndent(row, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name+".json"), append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTableAllWithCheckpoint(t *testing.T) {
	dir := t.TempDir()
	seedCheckpoints(t, dir)
	var out, errb bytes.Buffer
	err := realMain(context.Background(), []string{
		"-table", "all", "-checkpoint", dir,
		"-instances", "120", "-reps", "1", "-runs", "2", "-folds", "2",
	}, &out, &errb)
	if err != nil {
		t.Fatalf("realMain: %v\nstderr:\n%s", err, errb.String())
	}
	s := out.String()
	for _, want := range []string{
		"=== Table I:", "=== Table II:", "=== Table III:", "=== Table IV:", "=== Ablation:",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Every classifier's resumed row must appear in the rendered Table IV.
	for _, name := range corpus.Classifiers {
		if !strings.Contains(s, name) {
			t.Errorf("Table IV row for %s missing", name)
		}
	}
	if strings.Contains(s, "FAILED") {
		t.Errorf("resumed rows rendered as failures:\n%s", s)
	}
}

func TestTable4ResumesFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	seedCheckpoints(t, dir)
	var out, errb bytes.Buffer
	err := realMain(context.Background(), []string{"-table", "4", "-checkpoint", dir, "-v"}, &out, &errb)
	if err != nil {
		t.Fatalf("realMain: %v\nstderr:\n%s", err, errb.String())
	}
	if n := strings.Count(errb.String(), "resumed from checkpoint"); n != len(corpus.Classifiers) {
		t.Errorf("resumed rows = %d, want %d\nstderr:\n%s", n, len(corpus.Classifiers), errb.String())
	}
	if !strings.Contains(out.String(), "Changes") {
		t.Errorf("Table IV header missing:\n%s", out.String())
	}
}

func TestTable3WritesARFF(t *testing.T) {
	arff := filepath.Join(t.TempDir(), "airlines.arff")
	var out, errb bytes.Buffer
	if err := realMain(context.Background(), []string{"-table", "3", "-instances", "50", "-arff", arff}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(arff)
	if err != nil {
		t.Fatalf("ARFF not written: %v", err)
	}
	if !strings.Contains(string(b), "@relation") {
		t.Error("ARFF file lacks @relation header")
	}
}

func TestDumpCorpus(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	// -table 3 keeps the run cheap; -dump-corpus happens before table
	// selection.
	if err := realMain(context.Background(), []string{"-table", "3", "-instances", "50", "-dump-corpus", dir}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	found := 0
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".java") {
			found++
		}
		return nil
	})
	if found == 0 {
		t.Error("no corpus .java files written")
	}
}

func TestBadFlagRejected(t *testing.T) {
	var out, errb bytes.Buffer
	if err := realMain(context.Background(), []string{"-no-such-flag"}, &out, &errb); err == nil {
		t.Error("unknown flag accepted")
	}
}
