//go:build faultmatrix

package profile

import (
	"testing"

	"jepo/internal/energy"
	"jepo/internal/rapl"
)

// matrixSrc is a small instrumented workload: nested calls plus a caught
// exception, so the probe stream exercises both balanced pairs and the
// finally path under every fault mix.
const matrixSrc = `class B {
	static int leaf() {
		int s = 0;
		for (int i = 0; i < 200; i++) { s += i % 3; }
		return s;
	}
	static int boom() { throw new RuntimeException("x"); }
	static double f() {
		int s = leaf();
		try { s += boom(); } catch (RuntimeException e) { s += leaf(); }
		return s;
	}
}`

// TestFaultMatrixProfiledRunsComplete fuzzes profiled interpreter runs over
// randomly faulting measurement sources: every run must complete with a full
// record set, non-negative energies, a balanced probe stream, and a health
// ledger consistent with the faults actually delivered.
func TestFaultMatrixProfiledRunsComplete(t *testing.T) {
	mixes := []rapl.FaultRates{
		{Transient: 0.20},
		{Stale: 0.30},
		{Transient: 0.15, Stale: 0.10, Permanent: 0.04},
		{Permanent: 0.15},
	}
	const reps = 6
	for mi, rates := range mixes {
		for seed := uint64(1); seed <= 25; seed++ {
			meter := energy.NewMeter(energy.DefaultCosts())
			primary := rapl.NewRandomFaultySource(rapl.NewSimSource(meter), seed, rates)
			res := rapl.NewResilient(primary,
				rapl.WithFallback(rapl.NewSimSource(meter)),
				rapl.WithRetries(2), noBackoff)
			prof := driveBench(t, res, meter, matrixSrc, reps)

			recs := prof.Records()
			// f, leaf ×2, boom per rep — 4 records each.
			if len(recs) != 4*reps {
				t.Fatalf("mix %d seed %d: records = %d, want %d", mi, seed, len(recs), 4*reps)
			}
			for i, r := range recs {
				if r.Package < 0 || r.Core < 0 || r.DRAM < 0 {
					t.Errorf("mix %d seed %d record %d went negative: %+v", mi, seed, i, r)
				}
			}
			h := prof.Health()
			if h.Enters != h.Exits {
				t.Errorf("mix %d seed %d: probes unbalanced: %s", mi, seed, h)
			}
			if h.UnbalancedExits != 0 || h.DroppedFrames != 0 {
				t.Errorf("mix %d seed %d: finally probes lost frames: %s", mi, seed, h)
			}
			if h.ReadErrors != 0 {
				t.Errorf("mix %d seed %d: resilient source with fallback leaked read errors: %s", mi, seed, h)
			}
			if prof.Err() != nil {
				t.Errorf("mix %d seed %d: degraded run poisoned the profiler: %v", mi, seed, prof.Err())
			}
			if primary.Dead() && h.Source.Discontinuities != 1 {
				t.Errorf("mix %d seed %d: primary died, discontinuities = %d: %s",
					mi, seed, h.Source.Discontinuities, h)
			}
			if h.Source.Reads != 2*4*reps {
				t.Errorf("mix %d seed %d: source reads = %d, want %d", mi, seed, h.Source.Reads, 2*4*reps)
			}
		}
	}
}

// TestFaultMatrixSummariesStayOrdered checks the aggregation contract under
// faults: summaries exist for every method and inclusive totals never go
// negative, so degraded runs still produce a usable profiler view.
func TestFaultMatrixSummariesStayOrdered(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		meter := energy.NewMeter(energy.DefaultCosts())
		primary := rapl.NewRandomFaultySource(rapl.NewSimSource(meter), seed,
			rapl.FaultRates{Transient: 0.2, Stale: 0.2, Permanent: 0.05})
		res := rapl.NewResilient(primary,
			rapl.WithFallback(rapl.NewSimSource(meter)), noBackoff)
		prof := driveBench(t, res, meter, matrixSrc, 4)
		sums := prof.Summaries()
		if len(sums) != 3 {
			t.Fatalf("seed %d: summaries = %d, want 3 (f, leaf, boom)", seed, len(sums))
		}
		for _, s := range sums {
			if s.Package < 0 || s.Core < 0 || s.Elapsed < 0 {
				t.Errorf("seed %d: summary went negative: %+v", seed, s)
			}
			if s.Degraded > s.Executions {
				t.Errorf("seed %d: degraded count exceeds executions: %+v", seed, s)
			}
		}
		// View and ResultTxt must render without panicking on degraded data.
		_ = prof.View()
		_ = prof.ResultTxt()
	}
}
