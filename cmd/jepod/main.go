// Command jepod serves the analysis pipeline as a long-lived session
// daemon: the HTTP+SSE surface of internal/service. Clients open sessions,
// upload virtual source files, and run analyze/optimize/profile/table
// requests whose raw responses are byte-identical to the corresponding CLI
// stdout (`jepo analyze`, `jepo optimize`, `jepo profile`, `jepo table1`,
// `wekaexp -table 2`). All sessions share one content-addressed artifact
// store, so repeated or overlapping requests get warm-cache latency.
//
// Usage:
//
//	jepod [-addr 127.0.0.1:7361] [-slots N] [-max-queue N]
//	      [-engine vm|ast] [-jobs N] [-cache] [-cache-size N]
//
// Admission control: at most -slots requests execute concurrently, up to
// -max-queue more wait FIFO, and further arrivals are shed with 503.
// SIGINT/SIGTERM drains gracefully: in-flight requests' contexts are
// cancelled, the listener closes, and the process exits once handlers
// return.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jepo/internal/cliconfig"
	"jepo/internal/service"
)

func main() {
	fs := flag.NewFlagSet("jepod", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7361", "listen address")
	slots := fs.Int("slots", 1, "requests executing concurrently")
	maxQueue := fs.Int("max-queue", 16, "requests waiting for a slot before arrivals are shed with 503")
	shared := cliconfig.Register(fs, cliconfig.FeatEngine|cliconfig.FeatJobs)
	fs.Parse(os.Args[1:])
	if err := run(*addr, *slots, *maxQueue, shared); err != nil {
		fmt.Fprintln(os.Stderr, "jepod:", err)
		os.Exit(1)
	}
}

func run(addr string, slots, maxQueue int, shared *cliconfig.Set) error {
	engine, err := shared.Engine()
	if err != nil {
		return err
	}
	// The daemon builds a private store from the parsed cache flags instead
	// of mutating the process-wide default: sessions share it through the
	// Service, and nothing else in the process observes it.
	svc := service.New(service.Config{
		Cache:    shared.CacheConfig(),
		Engine:   engine,
		Jobs:     shared.Jobs(),
		Slots:    slots,
		MaxQueue: maxQueue,
	})
	defer svc.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{
		Addr:    addr,
		Handler: service.Handler(svc),
		// Every request inherits the daemon's root context, so a SIGINT
		// cancels in-flight pipeline work (pools drain, interpreters abort
		// at the next op-budget checkpoint) rather than orphaning it.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "jepod: listening on %s\n", addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "jepod: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		srv.Close()
		return err
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "jepod:", svc.Store().Stats())
	return nil
}
