package bayes

import (
	"math"
	"testing"

	"jepo/internal/classify"
	"jepo/internal/dataset"
)

func weather() *dataset.Dataset {
	// A tiny play-tennis-style dataset with a clean conditional structure.
	d := dataset.New("weather", 2,
		dataset.NewNominal("outlook", "sunny", "rain"),
		dataset.NewNumeric("temp"),
		dataset.NewNominal("play", "no", "yes"),
	)
	rows := [][]float64{
		{0, 30, 0}, {0, 29, 0}, {0, 28, 0}, {0, 31, 0},
		{1, 18, 1}, {1, 19, 1}, {1, 20, 1}, {1, 17, 1},
		{0, 19, 1}, {1, 30, 0},
	}
	for _, r := range rows {
		d.Add(r)
	}
	return d
}

func TestNaiveBayesLearnsConditionals(t *testing.T) {
	d := weather()
	c := New(classify.Options{})
	if err := c.Train(d); err != nil {
		t.Fatal(err)
	}
	if got := c.Predict([]float64{0, 30, math.NaN()}); got != 0 {
		t.Errorf("sunny+hot predicted %d, want no(0)", got)
	}
	if got := c.Predict([]float64{1, 18, math.NaN()}); got != 1 {
		t.Errorf("rain+cool predicted %d, want yes(1)", got)
	}
}

func TestNaiveBayesHandlesMissing(t *testing.T) {
	d := weather()
	d.X[0][1] = math.NaN() // missing numeric during training
	c := New(classify.Options{})
	if err := c.Train(d); err != nil {
		t.Fatal(err)
	}
	// Missing cells at prediction time are skipped, not fatal.
	if p := c.Predict([]float64{math.NaN(), math.NaN(), math.NaN()}); p != 0 && p != 1 {
		t.Errorf("all-missing prediction = %d", p)
	}
}

func TestNaiveBayesLaplaceSmoothing(t *testing.T) {
	// A value never seen with class 1 must not zero out its probability:
	// prediction should still be finite and sane.
	d := dataset.New("laplace", 1,
		dataset.NewNominal("a", "x", "y", "z"),
		dataset.NewNominal("cls", "0", "1"),
	)
	d.Add([]float64{0, 0})
	d.Add([]float64{0, 0})
	d.Add([]float64{1, 1})
	d.Add([]float64{1, 1})
	c := New(classify.Options{})
	if err := c.Train(d); err != nil {
		t.Fatal(err)
	}
	if p := c.Predict([]float64{2, math.NaN()}); p != 0 && p != 1 {
		t.Errorf("unseen value prediction = %d", p)
	}
}

func TestNaiveBayesEmpty(t *testing.T) {
	d := weather().Empty()
	if err := New(classify.Options{}).Train(d); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestNaiveBayesConstantNumericColumn(t *testing.T) {
	d := dataset.New("const", 1, dataset.NewNumeric("x"), dataset.NewNominal("c", "a", "b"))
	for i := 0; i < 6; i++ {
		d.Add([]float64{5, float64(i % 2)})
	}
	c := New(classify.Options{})
	if err := c.Train(d); err != nil {
		t.Fatal(err)
	}
	if p := c.Predict([]float64{5, math.NaN()}); p != 0 && p != 1 {
		t.Errorf("degenerate prediction = %d", p)
	}
}

func TestNaiveBayesSinglePrecisionClose(t *testing.T) {
	d := weather()
	dbl := New(classify.Options{FP: classify.Double})
	sgl := New(classify.Options{FP: classify.Single})
	dbl.Train(d)
	sgl.Train(d)
	agree := 0
	for _, row := range d.X {
		if dbl.Predict(row) == sgl.Predict(row) {
			agree++
		}
	}
	if agree < d.NumInstances()-1 {
		t.Errorf("precision modes agree on only %d/%d rows", agree, d.NumInstances())
	}
}
