package rapl

import (
	"fmt"

	"jepo/internal/energy"
)

// Snapshot is a monotonically accumulated energy reading per domain.
type Snapshot struct {
	Package energy.Joules
	Core    energy.Joules
	DRAM    energy.Joules
}

// Domain selects one domain's value from the snapshot.
func (s Snapshot) Domain(d Domain) energy.Joules {
	switch d {
	case Package:
		return s.Package
	case Core:
		return s.Core
	case DRAM:
		return s.DRAM
	}
	return 0
}

// Sub returns the per-domain difference b − a.
func (b Snapshot) Sub(a Snapshot) Snapshot {
	return Snapshot{
		Package: b.Package - a.Package,
		Core:    b.Core - a.Core,
		DRAM:    b.DRAM - a.DRAM,
	}
}

// Source yields accumulated energy snapshots. Implementations must already
// have wraparound handled: successive snapshots are non-decreasing per domain
// as long as the source is sampled more often than the counters wrap.
type Source interface {
	Snapshot() (Snapshot, error)
}

// Sampler turns raw 32-bit wrapping MSR counters into monotonically
// accumulating energies. It is the unwrap logic the injected JEPO probes
// need, since MSR_PKG_ENERGY_STATUS wraps every minute or so under load on
// real parts.
type Sampler struct {
	msr   MSRReader
	unit  energy.Joules
	last  [numDomains]uint64
	acc   [numDomains]uint64 // accumulated counts, 64-bit so it never wraps
	init  bool
	stale int // skipped implausible deltas (stale/backwards readings)
}

// samplerMaxDelta is the half-range plausibility bound on one snapshot's
// counter delta. A genuine wrap produces a small modular delta; a stale or
// duplicated reading of an already-advanced counter aliases to a delta near
// 2^32, which would charge ~65 kJ out of nowhere. Deltas above half the
// counter range are treated as backwards readings and skipped.
const samplerMaxDelta = 1 << 31

// NewSampler builds a sampler over an MSR reader, decoding the energy unit
// from MSR_RAPL_POWER_UNIT.
func NewSampler(msr MSRReader) (*Sampler, error) {
	pu, err := msr.ReadMSR(MSRPowerUnit)
	if err != nil {
		return nil, fmt.Errorf("rapl: reading power unit: %w", err)
	}
	unit := EnergyUnit(pu)
	if unit <= 0 {
		return nil, fmt.Errorf("rapl: bad energy unit %v", unit)
	}
	return &Sampler{msr: msr, unit: unit}, nil
}

var domainMSR = [numDomains]uint32{
	Package: MSRPkgEnergyStatus,
	Core:    MSRPP0EnergyStatus,
	DRAM:    MSRDRAMEnergyStatus,
}

// Snapshot reads every domain counter, unwraps, and returns accumulated
// energy since the sampler was created.
func (s *Sampler) Snapshot() (Snapshot, error) {
	var raw [numDomains]uint64
	for d := Domain(0); d < numDomains; d++ {
		v, err := s.msr.ReadMSR(domainMSR[d])
		if err != nil {
			return Snapshot{}, fmt.Errorf("rapl: reading %v counter: %w", d, err)
		}
		raw[d] = v & 0xFFFFFFFF
	}
	if !s.init {
		s.last = raw
		s.init = true
	}
	for d := Domain(0); d < numDomains; d++ {
		delta := (raw[d] - s.last[d]) & 0xFFFFFFFF // modular: handles wrap
		if delta >= samplerMaxDelta {
			// Stale/backwards reading aliased through the modular unwrap;
			// skip the delta and resync rather than charge a phantom wrap.
			s.stale++
			delta = 0
		}
		s.acc[d] += delta
		s.last[d] = raw[d]
	}
	return Snapshot{
		Package: energy.Joules(float64(s.acc[Package])) * s.unit,
		Core:    energy.Joules(float64(s.acc[Core])) * s.unit,
		DRAM:    energy.Joules(float64(s.acc[DRAM])) * s.unit,
	}, nil
}

// Health implements HealthReporter: skipped stale/backwards deltas surface
// as Resets, so resilient wrappers and the profiler can flag the readings.
func (s *Sampler) Health() Health {
	return Health{Resets: s.stale}
}

// NewSimSource builds the full simulated read path — meter → simulated MSRs →
// unwrapping sampler — so measurements taken through it exercise exactly the
// protocol the injected probes use on hardware.
func NewSimSource(m *energy.Meter) *Sampler {
	s, err := NewSampler(NewSimMSR(m))
	if err != nil {
		// NewSimMSR always answers MSRPowerUnit; this is unreachable.
		panic(err)
	}
	return s
}
