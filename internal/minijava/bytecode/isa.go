// Package bytecode lowers resolved mini-Java methods to a flat instruction
// stream — the reproduction's analogue of the class-file bytecode JEPO
// instruments with Javassist. The compiler consumes the annotations the
// interpreter's load-time resolver leaves on the AST (frame slots, resolution
// kinds, call-site indices) and produces one Func per method; the VM dispatch
// loop itself lives in internal/minijava/interp so that every non-trivial
// operation (builtin calls, coercions, boxing, object construction) reuses
// the tree-walker's own helpers and therefore charges the energy meter the
// exact same ops in the exact same order.
//
// Instructions keep a reference to the AST node they were lowered from.
// The node is the slow path: when a frame slot is not live (the dialect
// declares variables at execution time) or an operation needs the dynamic
// resolution ladder, the VM hands the node back to the walker's helper and
// gets bit-identical semantics by construction.
package bytecode

import (
	"jepo/internal/energy"
	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/token"
)

// Op is a VM opcode.
type Op uint8

const (
	// OpNop does nothing (also the zero value, so an uninitialised
	// instruction is harmless rather than silently meaning something).
	OpNop Op = iota

	// OpStep charges only its Steps count against the op budget. Emitted
	// where the walker steps a node that produces no instruction of its own
	// and the following instruction is a jump target (loop heads).
	OpStep

	// OpCharge charges the meter: energy op A, count B.
	OpCharge

	// OpConst pushes constant pool entry A with the literal's charge.
	OpConst

	// OpPushBool pushes a raw boolean (A != 0) with no charge — the
	// short-circuit result value the walker materialises for free.
	OpPushBool

	// OpPop discards the top of stack.
	OpPop

	// OpLoadThis pushes the receiver.
	OpLoadThis

	// OpLoadLocal pushes frame slot A; Node (*ast.Ident) is the fallback
	// when the slot is not live.
	OpLoadLocal

	// OpLoadIdent resolves Node (*ast.Ident) through the walker's full
	// identifier ladder (fields, statics, class refs).
	OpLoadIdent

	// OpLoadSelect pops the receiver and reads field Node (*ast.Select).
	OpLoadSelect

	// OpLoadIndex pops index and array and pushes the element
	// (Node *ast.Index).
	OpLoadIndex

	// OpLoadIndexL is OpLoadIndex with the index read from frame slot A
	// instead of the stack — the dominant a[i] shape. The local read is
	// charged exactly where the stand-alone load would have been.
	OpLoadIndexL

	// OpEval evaluates Node with the tree-walker and pushes the result —
	// the universal escape hatch for expression forms without a dedicated
	// lowering. Charges and steps happen inside the walker.
	OpEval

	// OpStoreLocal pops a value into frame slot A (Node *ast.Ident holds
	// the assignment target). OpStoreLocalX leaves the pre-coercion value
	// on the stack (assignment used as an expression).
	OpStoreLocal
	OpStoreLocalX

	// OpStoreIdent pops a value into a non-local identifier target.
	OpStoreIdent
	OpStoreIdentX

	// OpStoreSelect pops a value and stores into field Node (*ast.Select);
	// the receiver expression is evaluated by the walker inside the store,
	// after the RHS — exactly the tree-walker's assignment order.
	OpStoreSelect
	OpStoreSelectX

	// OpStoreIndex pops index, array and value (pushed in value, array,
	// index order) and stores the element (Node *ast.Index).
	OpStoreIndex
	OpStoreIndexX

	// OpStoreIndexL / OpStoreIndexLX are the store counterparts of
	// OpLoadIndexL: index from frame slot A, array and value popped.
	OpStoreIndexL
	OpStoreIndexLX

	// OpAssign delegates a whole assignment (Node *ast.Assign) to the
	// walker — array-literal right-hand sides and other rare shapes.
	OpAssign
	OpAssignX

	// OpIncLocal is ++/-- on a local: slot A, delta B (±1), Node
	// (*ast.Unary). OpIncLocalX pushes the expression value (old value for
	// postfix, updated for prefix).
	OpIncLocal
	OpIncLocalX

	// OpBinary pops y then x and applies Tok (Node *ast.Binary for
	// position). OpBinLL reads slots A and B, OpBinLC slot A and constant
	// B, charging exactly the walker's operand sequence.
	OpBinary
	OpBinLL
	OpBinLC

	// OpNeg / OpNot are unary minus and logical not (Node *ast.Unary).
	OpNeg
	OpNot

	// OpJmp transfers to pc+A. Jumps carry the Steps of the statement that
	// produced them (break/continue).
	OpJmp

	// OpJmpBranch charges one OpBranch against the meter and transfers to
	// pc+A — the fused loop back-edge. The walker charges a branch at the
	// top of every While/For iteration; the compiler hoists the first
	// iteration's charge above the loop head and folds the remaining ones
	// into the back-jump, saving one dispatch per iteration.
	OpJmpBranch

	// OpJmpFalse / OpJmpTrue pop a condition (unboxing if needed, with the
	// unbox charge) and jump to pc+A when it is false/true. Node is the
	// condition expression, for error positions.
	OpJmpFalse
	OpJmpTrue

	// OpJmpCmp* fuse a comparison superinstruction (OpBinLL / OpBinLC /
	// OpBinary with a comparison operator) with the conditional jump that
	// consumes its result: A = jump offset, B = second operand (slot or
	// constant index), C = first operand slot. The handlers issue exactly
	// the unfused charge sequence; a comparison always produces a
	// normalised boolean, so the jump's unbox/type checks are unreachable.
	OpJmpCmpLLFalse
	OpJmpCmpLLTrue
	OpJmpCmpLCFalse
	OpJmpCmpLCTrue
	OpJmpCmpFalse
	OpJmpCmpTrue

	// OpToBool pops a value, applies the walker's condition coercion and
	// pushes the resulting boolean — the tail of a short-circuit chain.
	OpToBool

	// OpCall pops B (0/1) receiver and A arguments (receiver below the
	// arguments) and dispatches Node (*ast.Call).
	OpCall

	// OpNew pops A arguments and constructs Node (*ast.New).
	OpNew

	// OpLenCheck normalises one array-dimension length on the stack:
	// unbox (charged), integral check, NegativeArraySizeException.
	OpLenCheck

	// OpNewArray pops A checked lengths and allocates Node (*ast.NewArray).
	OpNewArray

	// OpLocalDecl pops an initialiser into slot A (Node *ast.LocalVar);
	// OpLocalZero declares slot A with the type's zero value; OpLocalDecl
	// with B=1 delegates the initialiser to the walker (array literals).
	OpLocalDecl
	OpLocalZero

	// OpCast / OpInstanceOf pop a value and apply Node (*ast.Cast /
	// *ast.InstanceOf).
	OpCast
	OpInstanceOf

	// OpThrow pops a throwable and raises it.
	OpThrow

	// OpSwitchTag unboxes the switch tag in place (tag stays on the stack
	// through the comparison chain). OpCaseCmp pops one case value,
	// compares it to the tag below and, on a match, pops the tag and jumps
	// to pc+A. OpSwitchEnd pops the tag and jumps to pc+A (default arm or
	// end). Node is the *ast.Switch.
	OpSwitchTag
	OpCaseCmp
	OpSwitchEnd

	// OpRet pops the return value and leaves the frame; OpRetVoid leaves
	// with no value.
	OpRet
	OpRetVoid

	// OpProbeEnter / OpProbeExit fire the profiler hook with the function's
	// probe label. They charge nothing: probe opcodes are the zero-cost
	// measurement seam the AST-level injection approximates with real
	// statements (the measured difference is the probe overhead delta).
	OpProbeEnter
	OpProbeExit

	// --- tier 2: block charge pre-aggregation (Finalize) ---

	// OpRunCharge charges Func.Runs[A]: the pre-aggregated step total and the
	// ordered charge list of a maximal run of statically-known instructions
	// (OpStep/OpCharge/OpConst/OpPushBool/OpNop) inside one basic block. The
	// charges replay the exact per-call sequence the folded instructions would
	// have issued — no merging, no reordering — so the meter bits are
	// identical by construction. Its own Steps field is unused (the run total
	// is int32-sized).
	OpRunCharge

	// OpQConst pushes constant pool entry A with no charge and no steps: both
	// were folded into the preceding OpRunCharge of the same run.
	OpQConst

	// --- tier 2: compile-time quickening (Finalize) ---

	// OpQLoadStatic pushes the load-resolved static slot statRefs[A]
	// (OpLoadIdent specialized on ast.ResStaticRef). Guard-and-deopt: an
	// out-of-range index falls back to the walker's identifier ladder.
	OpQLoadStatic

	// OpQLoadField pushes field A of the receiver (OpLoadIdent specialized on
	// ast.ResField), falling back to the ladder in a static context.
	OpQLoadField

	// OpQStoreStatic / OpQStoreField are the store counterparts: OpStoreIdent
	// specialized on the same resolver pins, replaying writeLValue's matching
	// lane (one OpStatic/OpField step, one 8-byte access, kind-checked
	// assignment) and deopting to writeLValue on a guard miss. The X forms
	// keep the stored value on the stack, like OpStoreIdentX.
	OpQStoreStatic
	OpQStoreStaticX
	OpQStoreField
	OpQStoreFieldX

	// --- tier 2: runtime quickening (per-Interp warm code copies) ---
	//
	// The opcodes below never appear in a shared Program: the VM installs
	// them by patching its private copy of the code after first execution.
	// C indexes the function's inline-cache table (Func.NICs entries); every
	// quick form re-checks its guard and deopts to the generic opcode — which
	// recomputes from scratch with the walker's own helpers — on a miss.

	// OpQPushV pushes inline cache C's invariant value (a resolved class
	// reference), charging nothing, exactly like evalIdent's ResClass case.
	OpQPushV

	// OpQGetField is OpLoadSelect specialized to an object receiver: the
	// cache holds the receiver class and field slot index.
	OpQGetField

	// OpQGetStatic / OpQGetConst are OpLoadSelect specialized to a class-ref
	// receiver resolved to a user static slot / builtin constant.
	OpQGetStatic
	OpQGetConst

	// OpQArrLen is OpLoadSelect specialized to array .length.
	OpQArrLen

	// OpQCallSelf / OpQCallVirtual / OpQCallStatic are OpCall specialized to
	// an unqualified call (guard: frame class), an instance call (guard:
	// receiver class) and a load-resolved static call (guard: class name).
	// The cache pins the resolved method and its compiled function, so the
	// call skips the dispatch ladder and the pooled argument copy: the VM
	// passes its operand-stack slice directly (the callee copies parameters
	// into its own frame before executing).
	OpQCallSelf
	OpQCallVirtual
	OpQCallStatic

	// OpQCallBuiltin is OpCall specialized to a site-resolved builtin static
	// call (guard: class name); OpQCallInstance to a builtin value-kind
	// receiver (String, StringBuilder, box, throwable — guard: the kind is
	// not a user object, class ref or null). Neither caches a resolution —
	// the runtime dispatches on name strings either way — but both skip the
	// generic path's pooled argument copy and dispatch ladder.
	OpQCallBuiltin
	OpQCallInstance

	// OpQBinIntLL / OpQBinIntLC / OpQBinInt are the binary forms specialized
	// to int operands with the arithmetic switch inlined in the handler
	// (deopting on a non-int operand or non-int operator).
	OpQBinIntLL
	OpQBinIntLC
	OpQBinInt

	numOps
)

var opNames = [...]string{
	OpNop:           "nop",
	OpStep:          "step",
	OpCharge:        "charge",
	OpConst:         "const",
	OpPushBool:      "pushbool",
	OpPop:           "pop",
	OpLoadThis:      "this",
	OpLoadLocal:     "load",
	OpLoadIdent:     "load.dyn",
	OpLoadSelect:    "getfield",
	OpLoadIndex:     "aload",
	OpLoadIndexL:    "aload.l",
	OpEval:          "eval",
	OpStoreLocal:    "store",
	OpStoreLocalX:   "store.x",
	OpStoreIdent:    "store.dyn",
	OpStoreIdentX:   "store.dyn.x",
	OpStoreSelect:   "putfield",
	OpStoreSelectX:  "putfield.x",
	OpStoreIndex:    "astore",
	OpStoreIndexX:   "astore.x",
	OpStoreIndexL:   "astore.l",
	OpStoreIndexLX:  "astore.l.x",
	OpAssign:        "assign",
	OpAssignX:       "assign.x",
	OpIncLocal:      "inc",
	OpIncLocalX:     "inc.x",
	OpBinary:        "bin",
	OpBinLL:         "bin.ll",
	OpBinLC:         "bin.lc",
	OpNeg:           "neg",
	OpNot:           "not",
	OpJmp:           "jmp",
	OpJmpBranch:     "jmp.br",
	OpJmpFalse:      "jmpf",
	OpJmpTrue:       "jmpt",
	OpJmpCmpLLFalse: "jmpf.ll",
	OpJmpCmpLLTrue:  "jmpt.ll",
	OpJmpCmpLCFalse: "jmpf.lc",
	OpJmpCmpLCTrue:  "jmpt.lc",
	OpJmpCmpFalse:   "jmpf.bin",
	OpJmpCmpTrue:    "jmpt.bin",
	OpToBool:        "tobool",
	OpCall:          "call",
	OpNew:           "new",
	OpLenCheck:      "lencheck",
	OpNewArray:      "newarray",
	OpLocalDecl:     "decl",
	OpLocalZero:     "decl.zero",
	OpCast:          "cast",
	OpInstanceOf:    "instanceof",
	OpThrow:         "throw",
	OpSwitchTag:     "swtag",
	OpCaseCmp:       "case",
	OpSwitchEnd:     "swend",
	OpRet:           "ret",
	OpRetVoid:       "ret.void",
	OpProbeEnter:    "probe.enter",
	OpProbeExit:     "probe.exit",
	OpRunCharge:     "blkcharge",
	OpQConst:        "qconst",
	OpQLoadStatic:   "getstatic",
	OpQLoadField:    "getself",
	OpQStoreStatic:  "putstatic",
	OpQStoreStaticX: "putstatic.x",
	OpQStoreField:   "putself",
	OpQStoreFieldX:  "putself.x",
	OpQPushV:        "qpush",
	OpQGetField:     "qgetfield",
	OpQGetStatic:    "qgetstatic",
	OpQGetConst:     "qgetconst",
	OpQArrLen:       "qarrlen",
	OpQCallSelf:     "qcall.self",
	OpQCallVirtual:  "qcall.virt",
	OpQCallStatic:   "qcall.static",
	OpQCallBuiltin:  "qcall.builtin",
	OpQCallInstance: "qcall.inst",
	OpQBinIntLL:     "qbin.ll",
	OpQBinIntLC:     "qbin.lc",
	OpQBinInt:       "qbin",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}

// Instr is one VM instruction. Steps is the number of walker step() counts
// (AST nodes) this instruction accounts for against the op budget; the
// compiler folds step-only prefixes into the next instruction so totals stay
// identical to the tree-walk while the dispatch count stays low.
type Instr struct {
	Op      Op
	Steps   uint8
	Tok     token.Kind // operator for OpBinary/OpBinLL/OpBinLC and fusions
	A, B, C int32
	Node    ast.Node // originating node: slow paths, charges and positions
}

// Func is one compiled method body.
type Func struct {
	Name     string // Class.method/arity, for the disassembler
	Method   *ast.Method
	Code     []Instr
	Consts   []*ast.Literal
	NSlots   int
	MaxStack int

	// Probe is the profiler label when probe opcodes have been spliced in
	// ("" = uninstrumented). The VM fires the hook's Exit for this label
	// when an exception unwinds through the frame, mirroring the finally
	// block of the AST-level instrumentation.
	Probe string

	// Raw is the tier-1 instruction stream as compiled (and probe-injected),
	// before Finalize rewrote Code with block charge pre-aggregation and
	// compile-time quickening. The VM runs it when tier 1 is selected, so the
	// tier split can be benchmarked on one Program.
	Raw []Instr

	// Runs are the pre-aggregated charge runs OpRunCharge indexes.
	Runs []ChargeRun

	// Blocks are the basic-block leader pcs of Code, ascending — pc 0, jump
	// targets, fall-throughs after jumps and terminators, and probe opcode
	// boundaries. The disassembler annotates them; charge runs never span
	// them.
	Blocks []int32

	// NICs is the number of inline-cache slots quickened instructions index
	// through their C operand; the VM sizes its per-instance cache table
	// from it.
	NICs int32
}

// ChargeRun is the pre-aggregated effect of one folded run of statically-known
// instructions: the summed step count (charged against the op budget in one
// check) and the ordered list of meter charges, one entry per original call.
// Entries are never merged or reordered: Joules accumulate in float64, which
// is not associative, so exactness requires replaying the identical sequence.
type ChargeRun struct {
	Steps   int32
	Charges []energy.Charge

	// Deltas is Charges bound against a cost table (Func.BindCosts): one
	// precomputed StepDelta per effective charge, replayed add-only by
	// Meter.StepRun. nil until bound; the VM falls back to StepList over
	// Charges when its meter's cost table is not the bound one.
	Deltas []energy.StepDelta
}

// BindCosts precomputes every charge run's step deltas against t, so replay
// under a meter using the same table is add-only. Binding is idempotent and
// must happen before the Func is shared across goroutines — Load does it once
// per program, never after.
func (fn *Func) BindCosts(t *energy.CostTable) {
	for i := range fn.Runs {
		fn.Runs[i].Deltas = t.BindSteps(fn.Runs[i].Charges)
	}
}

// LiteralCharge reports the meter charge evaluating a literal issues — the
// single source of truth shared by the interpreter's constant pool
// pre-evaluation and Finalize's charge folding. An unknown literal kind
// charges nothing, mirroring the walker's evalLiteral default.
func LiteralCharge(n *ast.Literal) (energy.Op, bool) {
	switch n.Kind {
	case ast.LitInt, ast.LitLong, ast.LitChar, ast.LitString, ast.LitBool, ast.LitNull:
		return energy.OpLocal, true
	case ast.LitFloat, ast.LitDouble:
		if n.Sci {
			return energy.OpConstSci, true
		}
		return energy.OpConstDecimal, true
	}
	return 0, false
}
