package bytecode

import (
	"fmt"
	"strings"

	"jepo/internal/energy"
	"jepo/internal/minijava/ast"
)

// Disasm renders one compiled function as deterministic text: one line per
// instruction with pc, folded step count, mnemonic, operands and a source
// comment, plus a header line per basic block carrying its pre-aggregated
// charge. Jump targets are shown as absolute pcs. The output is stable
// across runs (no pointers, no map iteration), so it can be pinned by a
// golden file.
func (f *Func) Disasm() string { return f.DisasmCode(f.Code) }

// DisasmCode renders an instruction stream against this function's metadata.
// The stream must be positionally identical to f.Code (runtime quickening
// patches opcodes in place, so a warm per-instance copy qualifies); block
// annotations and jump targets carry over unchanged.
func (f *Func) DisasmCode(code []Instr) string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s  slots=%d stack=%d", f.Name, f.NSlots, f.MaxStack)
	if f.Probe != "" {
		fmt.Fprintf(&b, " probe=%q", f.Probe)
	}
	b.WriteByte('\n')
	block := 0
	for pc := range code {
		ins := &code[pc]
		for block < len(f.Blocks) && int(f.Blocks[block]) == pc {
			fmt.Fprintf(&b, "  B%d:%s\n", block, f.blockCharge(pc))
			block++
		}
		steps := ""
		if ins.Steps > 0 {
			steps = fmt.Sprintf("+%d", ins.Steps)
		}
		operands, comment := f.operands(pc, ins)
		line := fmt.Sprintf("%4d %3s  %-11s %s", pc, steps, ins.Op, operands)
		if comment != "" {
			line = fmt.Sprintf("%-44s ; %s", line, comment)
		}
		b.WriteString(strings.TrimRight(line, " "))
		b.WriteByte('\n')
	}
	return b.String()
}

// blockCharge summarises the pre-aggregated charge of the block starting at
// pc — the ChargeRun of its leading OpRunCharge, if it has one.
func (f *Func) blockCharge(pc int) string {
	if pc >= len(f.Code) || f.Code[pc].Op != OpRunCharge {
		return ""
	}
	return "  " + f.runText(f.Code[pc].A)
}

// runText renders one ChargeRun: the folded step total and the ordered
// charge list.
func (f *Func) runText(ix int32) string {
	if int(ix) >= len(f.Runs) {
		return ""
	}
	run := &f.Runs[ix]
	var b strings.Builder
	fmt.Fprintf(&b, "steps=%d", run.Steps)
	for _, ch := range run.Charges {
		fmt.Fprintf(&b, " %v x%d", ch.Op, ch.N)
	}
	return b.String()
}

// operands renders the operand column and the source comment for one
// instruction.
func (f *Func) operands(pc int, ins *Instr) (string, string) {
	target := func() string { return fmt.Sprintf("->%d", pc+int(ins.A)) }
	switch ins.Op {
	case OpCharge:
		return fmt.Sprintf("%v x%d", energy.Op(ins.A), ins.B), ""
	case OpRunCharge:
		return fmt.Sprintf("r%d", ins.A), f.runText(ins.A)
	case OpConst, OpQConst:
		return fmt.Sprintf("c%d", ins.A), f.constText(ins.A)
	case OpQLoadStatic, OpQStoreStatic, OpQStoreStaticX:
		return fmt.Sprintf("g%d", ins.A), nodeText(ins.Node)
	case OpQLoadField, OpQStoreField, OpQStoreFieldX:
		return fmt.Sprintf("f%d", ins.A), nodeText(ins.Node)
	case OpQPushV:
		return fmt.Sprintf("ic%d", ins.C), nodeText(ins.Node)
	case OpQGetField, OpQGetStatic, OpQGetConst, OpQArrLen:
		return fmt.Sprintf("ic%d", ins.C), nodeText(ins.Node)
	case OpQCallSelf, OpQCallVirtual, OpQCallStatic, OpQCallBuiltin:
		return fmt.Sprintf("argc=%d ic%d", ins.A, ins.C), nodeText(ins.Node)
	case OpQCallInstance:
		return fmt.Sprintf("argc=%d", ins.A), nodeText(ins.Node)
	case OpQBinIntLL:
		return fmt.Sprintf("%v s%d s%d", ins.Tok, ins.A, ins.B), nodeText(ins.Node)
	case OpQBinIntLC:
		return fmt.Sprintf("%v s%d c%d", ins.Tok, ins.A, ins.B), nodeText(ins.Node)
	case OpQBinInt:
		return ins.Tok.String(), ""
	case OpPushBool:
		if ins.A != 0 {
			return "true", ""
		}
		return "false", ""
	case OpLoadLocal, OpStoreLocal, OpStoreLocalX, OpLocalZero:
		return fmt.Sprintf("s%d", ins.A), nodeText(ins.Node)
	case OpLocalDecl:
		if ins.B != 0 {
			return fmt.Sprintf("s%d arraylit", ins.A), nodeText(ins.Node)
		}
		return fmt.Sprintf("s%d", ins.A), nodeText(ins.Node)
	case OpIncLocal, OpIncLocalX:
		sign := "+"
		if ins.B < 0 {
			sign = "-"
		}
		return fmt.Sprintf("s%d %s1", ins.A, sign), nodeText(ins.Node)
	case OpLoadIdent, OpStoreIdent, OpStoreIdentX:
		return "", nodeText(ins.Node)
	case OpLoadSelect, OpStoreSelect, OpStoreSelectX:
		return "", nodeText(ins.Node)
	case OpBinary:
		return ins.Tok.String(), ""
	case OpBinLL:
		return fmt.Sprintf("%v s%d s%d", ins.Tok, ins.A, ins.B), nodeText(ins.Node)
	case OpBinLC:
		return fmt.Sprintf("%v s%d c%d", ins.Tok, ins.A, ins.B), nodeText(ins.Node)
	case OpLoadIndexL, OpStoreIndexL, OpStoreIndexLX:
		return fmt.Sprintf("s%d", ins.A), nodeText(ins.Node)
	case OpJmp, OpJmpBranch, OpJmpFalse, OpJmpTrue, OpCaseCmp, OpSwitchEnd:
		return target(), ""
	case OpJmpCmpLLFalse, OpJmpCmpLLTrue:
		return fmt.Sprintf("%v s%d s%d %s", ins.Tok, ins.C, ins.B, target()), nodeText(ins.Node)
	case OpJmpCmpLCFalse, OpJmpCmpLCTrue:
		return fmt.Sprintf("%v s%d c%d %s", ins.Tok, ins.C, ins.B, target()), nodeText(ins.Node)
	case OpJmpCmpFalse, OpJmpCmpTrue:
		return fmt.Sprintf("%v %s", ins.Tok, target()), ""
	case OpCall:
		return fmt.Sprintf("argc=%d recv=%d", ins.A, ins.B), nodeText(ins.Node)
	case OpNew:
		return fmt.Sprintf("argc=%d", ins.A), nodeText(ins.Node)
	case OpNewArray:
		return fmt.Sprintf("dims=%d", ins.A), ""
	case OpEval, OpAssign, OpAssignX, OpCast, OpInstanceOf:
		return "", nodeText(ins.Node)
	}
	return "", ""
}

func (f *Func) constText(ix int32) string {
	if int(ix) >= len(f.Consts) {
		return ""
	}
	return litText(f.Consts[ix])
}

func litText(lit *ast.Literal) string {
	if lit.Raw != "" {
		return lit.Raw
	}
	switch lit.Kind {
	case ast.LitString:
		return "\"" + lit.S + "\""
	case ast.LitBool:
		if lit.I != 0 {
			return "true"
		}
		return "false"
	case ast.LitNull:
		return "null"
	case ast.LitFloat, ast.LitDouble:
		return fmt.Sprintf("%g", lit.D)
	default:
		return fmt.Sprintf("%d", lit.I)
	}
}

// nodeText gives a short source hint for the comment column.
func nodeText(n ast.Node) string {
	switch x := n.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.Select:
		return "." + x.Name
	case *ast.Call:
		if x.Recv != nil {
			if id, ok := x.Recv.(*ast.Ident); ok {
				return id.Name + "." + x.Name
			}
			return "." + x.Name
		}
		return x.Name
	case *ast.New:
		return x.Name
	case *ast.Literal:
		return litText(x)
	case *ast.Unary:
		return x.Op.String() + nodeText(x.X)
	case *ast.Binary:
		return nodeText(x.X) + " " + x.Op.String() + " " + nodeText(x.Y)
	case *ast.LocalVar:
		return x.Name
	case *ast.Cast:
		return "(" + x.Type.String() + ")"
	case *ast.InstanceOf:
		return "instanceof " + x.Name
	case *ast.Assign:
		return nodeText(x.LHS) + " " + x.Op.String() + " ..."
	case *ast.Index:
		return nodeText(x.X) + "[...]"
	}
	return ""
}
