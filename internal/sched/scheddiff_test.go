//go:build scheddiff

// Differential fuzz for the deterministic pool, gated behind -tags scheddiff
// (wired into scripts/check.sh and `make scheddiff`). Every round draws a
// random task count, random worker counts and a random fault plan, then runs
// the same measurement workload sequentially and at each worker count: every
// task builds its own ScriptedMSR counter stream from task.Seed, corrupts it
// with a seeded random fault injector, reads it through the unwrapping
// sampler and the resilient wrapper, and returns the final snapshot bits plus
// the source's Health ledger. The merged results — per-task records, the
// index-ordered commit ledger, and the accumulated Health tally — must be
// identical at every worker count, including rounds where permanent faults
// kill sources mid-run and rounds where tasks fail their first attempt and
// travel through the retry queue.
package sched_test

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"sync/atomic"
	"testing"

	"jepo/internal/rapl"
	"jepo/internal/sched"
)

// diffMix advances a splitmix64 stream; the fuzz derives every round
// parameter from it so failures reproduce from the master seed alone.
func diffMix(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// diffResult is one task's complete observable outcome. Errors are carried as
// strings rather than returned, so every round produces a full-length result
// slice to compare regardless of how many sources died.
type diffResult struct {
	Pkg, Core, DRAM uint64 // float64 bit patterns of the final snapshot
	Health          rapl.Health
	Err             string
}

// diffMeasure is the per-task workload: a scripted counter stream derived
// from seed, random faults at the round's rates, sampler unwrap, resilient
// retry. Rebuilding the whole pipeline from the seed makes the task a pure
// function — a retried attempt replays identically.
func diffMeasure(seed uint64, snaps int, rates rapl.FaultRates) diffResult {
	s := seed
	seq := map[uint32][]uint64{}
	for _, reg := range []uint32{rapl.MSRPkgEnergyStatus, rapl.MSRPP0EnergyStatus, rapl.MSRDRAMEnergyStatus} {
		// Enough values to survive per-read retries; the script holds its
		// final value once exhausted, like a counter between increments.
		n := snaps*4 + 8
		vals := make([]uint64, 0, n)
		c := diffMix(s) & 0xFFFFFFFF
		for i := 0; i < n; i++ {
			s = diffMix(s)
			// Small increments with an occasional wraparound-sized jump so the
			// sampler's unwrap and stale-delta paths both get exercised.
			step := s % 50_000
			if s%97 == 0 {
				step = s % (1 << 33)
			}
			c = (c + step) & 0xFFFFFFFF
			vals = append(vals, c)
		}
		seq[reg] = vals
	}
	faulty := rapl.NewRandomFaultyMSR(&rapl.ScriptedMSR{Seq: seq}, diffMix(seed^0xfeedface), rates)
	sampler, err := rapl.NewSampler(faulty)
	if err != nil {
		return diffResult{Err: err.Error()}
	}
	res := rapl.NewResilient(sampler, rapl.WithRetries(2), rapl.WithBackoff(func(int) {}))
	var last rapl.Snapshot
	for i := 0; i < snaps; i++ {
		snap, err := res.Snapshot()
		if err != nil {
			return diffResult{Health: res.Health(), Err: err.Error()}
		}
		last = snap
	}
	return diffResult{
		Pkg:    math.Float64bits(float64(last.Package)),
		Core:   math.Float64bits(float64(last.Core)),
		DRAM:   math.Float64bits(float64(last.DRAM)),
		Health: res.Health(),
	}
}

// diffLedger is the order-sensitive reduction committed on the caller
// goroutine: the concatenated per-task lines and the accumulated Health
// tally, both of which depend on commit order.
type diffLedger struct {
	Lines []string
	Total rapl.Health
}

// TestSchedDifferentialFuzz runs 48 rounds of the sequential-vs-parallel
// comparison. Each round also marks a deterministic subset of tasks to fail
// their first attempt, so the retry queue (and its steal path) is part of
// every comparison rather than a separate code path.
func TestSchedDifferentialFuzz(t *testing.T) {
	const master = uint64(20200518)
	const rounds = 48
	for round := 0; round < rounds; round++ {
		r := sched.TaskSeed(master, round)
		tasks := 1 + int(diffMix(r)%40)
		snaps := 2 + int(diffMix(r^1)%6)
		rates := rapl.FaultRates{
			Transient: float64(diffMix(r^2)%30) / 100,
			Stale:     float64(diffMix(r^3)%25) / 100,
		}
		if round%5 == 4 {
			rates.Permanent = 0.05 // some rounds kill sources outright
		}
		workerSets := []int{2, 3, 1 + int(diffMix(r^4)%8)}

		run := func(jobs int) ([]diffResult, diffLedger, sched.Telemetry) {
			tries := make([]int32, tasks)
			var ledger diffLedger
			out, tel, err := sched.MapCommit(
				context.Background(),
				sched.Config{Jobs: jobs, Seed: r, Retries: 2},
				make([]struct{}, tasks),
				func(task sched.Task, _ struct{}) (diffResult, error) {
					if task.Seed%5 == 0 && atomic.AddInt32(&tries[task.Index], 1) == 1 {
						return diffResult{}, fmt.Errorf("induced first-attempt failure")
					}
					return diffMeasure(task.Seed, snaps, rates), nil
				},
				func(task sched.Task, res diffResult) {
					ledger.Lines = append(ledger.Lines,
						fmt.Sprintf("#%d %x/%x/%x %s err=%q", task.Index, res.Pkg, res.Core, res.DRAM, res.Health, res.Err))
					ledger.Total = ledger.Total.Add(res.Health)
				})
			if err != nil {
				t.Fatalf("round %d jobs=%d: %v", round, jobs, err)
			}
			return out, ledger, tel
		}

		seqOut, seqLedger, seqTel := run(1)
		for _, jobs := range workerSets {
			out, ledger, tel := run(jobs)
			if !reflect.DeepEqual(out, seqOut) {
				for i := range out {
					if out[i] != seqOut[i] {
						t.Errorf("round %d (tasks=%d rates=%+v) jobs=%d: task %d diverged:\n  par %+v\n  seq %+v",
							round, tasks, rates, jobs, i, out[i], seqOut[i])
					}
				}
			}
			if !reflect.DeepEqual(ledger, seqLedger) {
				t.Errorf("round %d jobs=%d: commit ledger diverged:\n  par total %s\n  seq total %s",
					round, jobs, ledger.Total, seqLedger.Total)
			}
			if tel.Tasks != seqTel.Tasks || tel.Attempts != seqTel.Attempts || tel.Panics != seqTel.Panics {
				t.Errorf("round %d jobs=%d: telemetry counts diverged: tasks %d/%d attempts %d/%d panics %d/%d",
					round, jobs, tel.Tasks, seqTel.Tasks, tel.Attempts, seqTel.Attempts, tel.Panics, seqTel.Panics)
			}
		}
	}
}
