//go:build distdiff

// Differential fuzz for the fault-tolerant dispatcher, gated behind
// -tags distdiff (wired into scripts/check.sh and `make distdiff`), the
// dist counterpart of the sched pool's scheddiff fuzz. Every round draws a
// random task count, worker count and chaos plan (kills, hangs, slow-walks,
// corrupted replies at seeded random rates), then runs the same measurement
// workload inline and through the dispatcher: every task rebuilds a
// ScriptedMSR counter stream from task.Seed, corrupts it with a seeded
// fault injector, and reads it through the resilient wrapper — a pure
// function of the task seed, so retried and reassigned attempts replay
// identically. The per-task results, the index-ordered commit ledger and
// the merged Health tally must be bit-identical to the inline run at every
// worker count, no matter which nodes the chaos plan takes down. Rounds
// where chaos kills every worker must fail with ErrNoWorkers and leave an
// exact prefix of the sequential ledger.
package dist_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"jepo/internal/dist"
	"jepo/internal/rapl"
	"jepo/internal/sched"
)

func ddMix(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// ddParams is the per-round campaign parameter block shipped to workers.
type ddParams struct {
	Snaps     int     `json:"snaps"`
	Transient float64 `json:"transient"`
	Stale     float64 `json:"stale"`
	Permanent float64 `json:"permanent"`
}

// ddResult is one task's complete observable outcome; errors ride as
// strings so dead-source rounds still produce comparable records.
type ddResult struct {
	Pkg    uint64      `json:"pkg"`
	Core   uint64      `json:"core"`
	DRAM   uint64      `json:"dram"`
	Health rapl.Health `json:"health"`
	Err    string      `json:"err"`
}

// ddMeasure mirrors scheddiff's workload: a scripted counter stream derived
// from the task seed, random read faults, resilient retries.
func ddMeasure(seed uint64, p ddParams) ddResult {
	s := seed
	seq := map[uint32][]uint64{}
	for _, reg := range []uint32{rapl.MSRPkgEnergyStatus, rapl.MSRPP0EnergyStatus, rapl.MSRDRAMEnergyStatus} {
		n := p.Snaps*4 + 8
		vals := make([]uint64, 0, n)
		c := ddMix(s) & 0xFFFFFFFF
		for i := 0; i < n; i++ {
			s = ddMix(s)
			step := s % 50_000
			if s%97 == 0 {
				step = s % (1 << 33)
			}
			c = (c + step) & 0xFFFFFFFF
			vals = append(vals, c)
		}
		seq[reg] = vals
	}
	rates := rapl.FaultRates{Transient: p.Transient, Stale: p.Stale, Permanent: p.Permanent}
	faulty := rapl.NewRandomFaultyMSR(&rapl.ScriptedMSR{Seq: seq}, ddMix(seed^0xfeedface), rates)
	sampler, err := rapl.NewSampler(faulty)
	if err != nil {
		return ddResult{Err: err.Error()}
	}
	res := rapl.NewResilient(sampler, rapl.WithRetries(2), rapl.WithBackoff(func(int) {}))
	var last rapl.Snapshot
	for i := 0; i < p.Snaps; i++ {
		snap, err := res.Snapshot()
		if err != nil {
			return ddResult{Health: res.Health(), Err: err.Error()}
		}
		last = snap
	}
	return ddResult{
		Pkg:    math.Float64bits(float64(last.Package)),
		Core:   math.Float64bits(float64(last.Core)),
		DRAM:   math.Float64bits(float64(last.DRAM)),
		Health: res.Health(),
	}
}

// ddRegistry builds a fresh registry whose task fn fails a deterministic
// subset of tasks on their first attempt, so the dispatcher's task-retry
// path (distinct from node reassignment) is part of every comparison.
func ddRegistry() *dist.Registry {
	reg := dist.NewRegistry()
	var mu sync.Mutex
	tries := map[int]int{}
	dist.RegisterFuncHealth(reg, "ddmeasure", func(task dist.Task, p ddParams) (ddResult, rapl.Health, error) {
		mu.Lock()
		tries[task.Index]++
		first := tries[task.Index] == 1
		mu.Unlock()
		if task.Seed%5 == 0 && first {
			return ddResult{}, rapl.Health{}, fmt.Errorf("induced first-attempt failure")
		}
		r := ddMeasure(task.Seed, p)
		return r, r.Health, nil
	})
	return reg
}

// ddLedger is the order-sensitive commit reduction.
type ddLedger struct {
	Lines []string
	Total rapl.Health
}

// TestDistDifferentialFuzz runs randomized inline-vs-dispatched rounds.
func TestDistDifferentialFuzz(t *testing.T) {
	const master = uint64(20200518)
	const rounds = 20
	var chaosRounds, deadRounds int
	for round := 0; round < rounds; round++ {
		r := sched.TaskSeed(master, round)
		tasks := 1 + int(ddMix(r)%24)
		workers := 2 + int(ddMix(r^1)%3)
		params := ddParams{
			Snaps:     2 + int(ddMix(r^2)%5),
			Transient: float64(ddMix(r^3)%30) / 100,
			Stale:     float64(ddMix(r^4)%25) / 100,
		}
		if round%5 == 4 {
			params.Permanent = 0.05
		}
		var plan *dist.FaultPlan
		if round%4 != 3 { // some rounds run chaos-free as a control
			plan = &dist.FaultPlan{
				Seed:   ddMix(r ^ 5),
				Rates:  dist.FaultRates{Kill: 0.03, Hang: 0.02, Slow: 0.05, Corrupt: 0.05},
				SlowBy: time.Millisecond,
			}
			chaosRounds++
		}

		run := func(w int, p *dist.FaultPlan) ([]ddResult, ddLedger, dist.Report, error) {
			reg := ddRegistry()
			cfg := dist.Config{
				Workers:   w,
				Seed:      r,
				Retries:   2,
				Strikes:   2,
				Deadline:  150 * time.Millisecond,
				Heartbeat: 10 * time.Millisecond,
				Spawn:     dist.PipeSpawner(reg),
				Plan:      p,
			}
			var ledger ddLedger
			out, rep, err := dist.Map[ddParams, ddResult](context.Background(), cfg, reg, "ddmeasure", params, tasks,
				func(task dist.Task, res ddResult) {
					ledger.Lines = append(ledger.Lines,
						fmt.Sprintf("#%d %x/%x/%x %s err=%q", task.Index, res.Pkg, res.Core, res.DRAM, res.Health, res.Err))
					ledger.Total = ledger.Total.Add(res.Health)
				})
			return out, ledger, rep, err
		}

		seqOut, seqLedger, seqRep, err := run(1, nil)
		if err != nil {
			t.Fatalf("round %d inline: %v", round, err)
		}

		out, ledger, rep, err := run(workers, plan)
		if err != nil {
			if !errors.Is(err, dist.ErrNoWorkers) {
				t.Fatalf("round %d workers=%d: %v", round, workers, err)
			}
			// Chaos consumed every node: the committed prefix must still be
			// an exact prefix of the sequential ledger.
			deadRounds++
			if len(ledger.Lines) > len(seqLedger.Lines) {
				t.Errorf("round %d workers=%d: partial ledger longer than sequential", round, workers)
				continue
			}
			for i := range ledger.Lines {
				if ledger.Lines[i] != seqLedger.Lines[i] {
					t.Errorf("round %d workers=%d: partial ledger diverges at %d:\n  dist %s\n  seq  %s",
						round, workers, i, ledger.Lines[i], seqLedger.Lines[i])
				}
			}
			continue
		}
		if !reflect.DeepEqual(out, seqOut) {
			for i := range out {
				if !reflect.DeepEqual(out[i], seqOut[i]) {
					t.Errorf("round %d (tasks=%d workers=%d) task %d diverged:\n  dist %+v\n  seq  %+v",
						round, tasks, workers, i, out[i], seqOut[i])
				}
			}
		}
		if !reflect.DeepEqual(ledger, seqLedger) {
			t.Errorf("round %d workers=%d: commit ledger diverged:\n  dist total %s\n  seq  total %s",
				round, workers, ledger.Total, seqLedger.Total)
		}
		if rep.Measurement != seqRep.Measurement {
			t.Errorf("round %d workers=%d: merged health diverged: dist %s, seq %s",
				round, workers, rep.Measurement, seqRep.Measurement)
		}
	}
	if chaosRounds == 0 {
		t.Fatal("no chaos rounds ran")
	}
	if deadRounds == rounds {
		t.Fatal("every round lost all workers; comparisons never ran")
	}
	t.Logf("distdiff: %d rounds, %d with chaos, %d lost all workers", rounds, chaosRounds, deadRounds)
}
