package interp

import (
	"fmt"

	"jepo/internal/energy"
	"jepo/internal/minijava/ast"
)

// classInfo is the loaded form of a class: resolved superclass, slot-indexed
// instance fields (inherited first) and name-indexed methods.
type classInfo struct {
	Name    string
	Decl    *ast.Class
	Super   *classInfo
	fields  []fieldInfo // instance fields, supers first, in declaration order
	fieldIx map[string]int
	methods map[string][]*ast.Method // instance and static, by name
	ctors   []*ast.Method
	statics map[string]*staticSlot
	statOrd []string // static fields in declaration order

	// Flattened lookup tables built at the end of Load: the superclass chain
	// walk of findMethod/findStatic precomputed, most-derived match first.
	flatMethods map[methodKey]*ast.Method
	flatStatics map[string]*staticSlot
}

// methodKey identifies a method by name and arity (the dialect overloads on
// arity only).
type methodKey struct {
	name  string
	arity int
}

type fieldInfo struct {
	Name string
	Type ast.Type
	K    Kind // kindOfType(Type), precomputed for store identity checks
	Init ast.Expr
	Own  bool // declared by this class (not inherited)
}

type staticSlot struct {
	Type ast.Type
	K    Kind // kindOfType(Type), precomputed for store identity checks
	Init ast.Expr
	V    Value
	Addr uint64
}

// Program is a loaded set of classes ready to execute.
type Program struct {
	classes map[string]*classInfo
	order   []string // load order, for static initialization

	// Resolution tables built by resolveProgram. sites is indexed by the
	// SiteIx annotations on Call/New/Select nodes and holds load-time
	// resolved dispatch targets; statRefs is indexed by the RIx of
	// ResStaticRef idents and points directly at unambiguous static slots.
	sites    []progSite
	statRefs []*staticSlot

	// funcs is the compiled-bytecode table built by compileProgram, indexed
	// by the CIx annotations on methods (nil fn = no lowering, the
	// tree-walker runs that method).
	funcs []compiledFn

	// boundCosts is the cost table every compiled function's charge runs
	// were bound against at load time (Func.BindCosts). An Interp whose
	// meter uses a different table replays runs through the unbound charges
	// instead; binding happens once in Load, never after the Program is
	// shared.
	boundCosts energy.CostTable
	costsBound bool
}

// progSiteKind classifies what a call/new/select site resolved to at load
// time. siteLazy (the zero value) means nothing could be pinned down
// statically; the interpreter uses its per-instance monomorphic cache or the
// fully dynamic path.
type progSiteKind uint8

const (
	siteLazy              progSiteKind = iota
	siteNewUser                        // new of a user class: ci + ctor (ctor may be nil)
	siteNewBuiltin                     // new of a runtime-provided class
	siteStaticCall                     // Class.m(...) on a user class: ci + method
	siteBuiltinStaticCall              // Class.m(...) handled by the builtin runtime
	siteStaticSel                      // Class.field on a user class: direct static slot
	siteBuiltinConstSel                // Class.FIELD builtin constant: precomputed value
)

// progSite is the immutable load-time resolution of one call/new/select
// site. cls guards the static-dispatch kinds: the fast path applies only
// when the evaluated receiver is a class reference with exactly this name.
type progSite struct {
	kind progSiteKind
	cls  string
	ci   *classInfo
	m    *ast.Method
	slot *staticSlot
	v    Value
}

// Load links a set of parsed files into an executable program. It reports
// duplicate classes, unknown superclasses and inheritance cycles.
//
// Load also runs the resolution pass (see resolve.go), which annotates the
// AST in place. Loading the same AST from two goroutines concurrently is
// therefore a data race, and after re-loading a mutated AST (e.g. after
// refactor.Apply), programs obtained from earlier loads of that AST must not
// keep executing.
func Load(files ...*ast.File) (*Program, error) {
	p := &Program{classes: make(map[string]*classInfo)}
	for _, f := range files {
		for _, c := range f.Classes {
			if _, dup := p.classes[c.Name]; dup {
				return nil, fmt.Errorf("interp: duplicate class %s", c.Name)
			}
			ci := &classInfo{
				Name:    c.Name,
				Decl:    c,
				fieldIx: make(map[string]int),
				methods: make(map[string][]*ast.Method),
				statics: make(map[string]*staticSlot),
			}
			p.classes[c.Name] = ci
			p.order = append(p.order, c.Name)
		}
	}
	// Link superclasses and detect cycles.
	for _, name := range p.order {
		ci := p.classes[name]
		ext := ci.Decl.Extends
		if ext == "" {
			continue
		}
		super, ok := p.classes[ext]
		if !ok {
			if IsExceptionClass(ext) || ext == "Object" {
				continue // extending a built-in root is allowed and ignored
			}
			return nil, fmt.Errorf("interp: class %s extends unknown class %s", name, ext)
		}
		ci.Super = super
	}
	for _, name := range p.order {
		seen := map[string]bool{}
		for ci := p.classes[name]; ci != nil; ci = ci.Super {
			if seen[ci.Name] {
				return nil, fmt.Errorf("interp: inheritance cycle through %s", ci.Name)
			}
			seen[ci.Name] = true
		}
	}
	// Build field/method tables bottom-up with memoization via buildInfo.
	built := map[string]bool{}
	var build func(ci *classInfo)
	build = func(ci *classInfo) {
		if built[ci.Name] {
			return
		}
		built[ci.Name] = true
		if ci.Super != nil {
			build(ci.Super)
			ci.fields = append(ci.fields, ci.Super.fields...)
			for i := range ci.fields {
				ci.fields[i].Own = false
			}
			for k, v := range ci.Super.fieldIx {
				ci.fieldIx[k] = v
			}
		}
		for _, fd := range ci.Decl.Fields {
			if fd.Mods.Has(ast.ModStatic) {
				ci.statics[fd.Name] = &staticSlot{Type: fd.Type, K: kindOfType(fd.Type), Init: fd.Init}
				ci.statOrd = append(ci.statOrd, fd.Name)
				continue
			}
			if ix, shadow := ci.fieldIx[fd.Name]; shadow {
				// Field shadowing: reuse the slot (the dialect forbids
				// distinct same-named fields).
				ci.fields[ix] = fieldInfo{Name: fd.Name, Type: fd.Type, K: kindOfType(fd.Type), Init: fd.Init, Own: true}
				continue
			}
			ci.fieldIx[fd.Name] = len(ci.fields)
			ci.fields = append(ci.fields, fieldInfo{Name: fd.Name, Type: fd.Type, K: kindOfType(fd.Type), Init: fd.Init, Own: true})
		}
		// ci.methods holds only methods declared by this class; findMethod
		// walks the superclass chain, so overriding falls out naturally.
		for _, m := range ci.Decl.Methods {
			if m.IsCtor {
				ci.ctors = append(ci.ctors, m)
				continue
			}
			ci.methods[m.Name] = append(ci.methods[m.Name], m)
		}
	}
	for _, name := range p.order {
		build(p.classes[name])
	}
	// Flatten the superclass-chain lookups. Walking self-to-super and
	// keeping the first hit per key reproduces findMethod/findStatic's
	// override-wins order exactly.
	for _, name := range p.order {
		ci := p.classes[name]
		ci.flatMethods = make(map[methodKey]*ast.Method)
		ci.flatStatics = make(map[string]*staticSlot, len(ci.statics))
		for c := ci; c != nil; c = c.Super {
			for mname, ms := range c.methods {
				for _, m := range ms {
					k := methodKey{mname, len(m.Params)}
					if _, ok := ci.flatMethods[k]; !ok {
						ci.flatMethods[k] = m
					}
				}
			}
			for sname, slot := range c.statics {
				if _, ok := ci.flatStatics[sname]; !ok {
					ci.flatStatics[sname] = slot
				}
			}
		}
	}
	resolveProgram(p)
	compileProgram(p)
	return p, nil
}

// Class looks up a loaded class.
func (p *Program) Class(name string) (*classInfo, bool) {
	ci, ok := p.classes[name]
	return ci, ok
}

// Classes lists class names in load order.
func (p *Program) Classes() []string { return append([]string(nil), p.order...) }

// findMethod resolves a method by name and arity via the flattened table
// (equivalent to walking up the hierarchy).
func (ci *classInfo) findMethod(name string, arity int) *ast.Method {
	return ci.flatMethods[methodKey{name, arity}]
}

// findCtor resolves a constructor by arity.
func (ci *classInfo) findCtor(arity int) *ast.Method {
	for _, m := range ci.ctors {
		if len(m.Params) == arity {
			return m
		}
	}
	return nil
}

// findStatic resolves a static field via the flattened table (equivalent to
// walking up the hierarchy).
func (ci *classInfo) findStatic(name string) *staticSlot {
	return ci.flatStatics[name]
}
