package passes

import (
	"fmt"
	"strings"

	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/token"
)

// Shape matchers shared by the match hooks. These are the single home of the
// Table I pattern recognizers; suggest re-exports the loop matchers for its
// published API.

func isShortCircuit(e ast.Expr) bool {
	b, ok := e.(*ast.Binary)
	return ok && (b.Op == token.AndAnd || b.Op == token.OrOr)
}

// isPowerOfTwoModulus reports whether `x % (1<<k)` can be rewritten to a mask.
func isPowerOfTwoModulus(b *ast.Binary) bool {
	lit, ok := b.Y.(*ast.Literal)
	if !ok || lit.Kind != ast.LitInt && lit.Kind != ast.LitLong {
		return false
	}
	v := lit.I
	return v > 0 && v&(v-1) == 0
}

// wouldBenefitFromSci flags long plain-decimal spellings (many zeros) that
// scientific notation would shorten — the shape the paper's rule targets.
func wouldBenefitFromSci(raw string) bool {
	digits, zeros := 0, 0
	for _, c := range raw {
		if c >= '0' && c <= '9' {
			digits++
			if c == '0' {
				zeros++
			}
		}
	}
	return digits >= 5 && zeros >= 4
}

// CopyLoop describes a matched manual array-copy loop.
type CopyLoop struct {
	Src, Dst string
	IndexVar string
}

// MatchManualArrayCopy recognizes `for (int i = 0; i < N; i++) dst[i] = src[i];`.
func MatchManualArrayCopy(f *ast.For) *CopyLoop {
	iv, ok := loopIndexVar(f)
	if !ok {
		return nil
	}
	body := singleStmt(f.Body)
	es, ok := body.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	as, ok := es.X.(*ast.Assign)
	if !ok || as.Op != token.Assign {
		return nil
	}
	dst, ok := indexByVar(as.LHS, iv)
	if !ok {
		return nil
	}
	src, ok := indexByVar(as.RHS, iv)
	if !ok {
		return nil
	}
	return &CopyLoop{Src: src, Dst: dst, IndexVar: iv}
}

// ColumnLoop describes a matched column-major nested traversal.
type ColumnLoop struct {
	Array string
	Outer string // outer loop variable (the column index)
	Inner string // inner loop variable (the row index)
}

// MatchColumnTraversal recognizes
//
//	for (j...) { for (i...) { ... m[i][j] ... } }
//
// where the *inner* loop variable is the first (row) index — i.e. the
// traversal walks down columns.
func MatchColumnTraversal(f *ast.For) *ColumnLoop {
	outerVar, ok := loopIndexVar(f)
	if !ok {
		return nil
	}
	innerFor, ok := singleStmt(f.Body).(*ast.For)
	if !ok {
		return nil
	}
	innerVar, ok := loopIndexVar(innerFor)
	if !ok || innerVar == outerVar {
		return nil
	}
	// Look for m[innerVar][outerVar] anywhere in the inner body.
	var arr string
	ast.Inspect(innerFor.Body, func(n ast.Node) bool {
		idx, ok := n.(*ast.Index)
		if !ok {
			return true
		}
		innerIdx, ok := idx.I.(*ast.Ident)
		if !ok || innerIdx.Name != outerVar {
			return true
		}
		base, ok := idx.X.(*ast.Index)
		if !ok {
			return true
		}
		rowIdx, ok := base.I.(*ast.Ident)
		if !ok || rowIdx.Name != innerVar {
			return true
		}
		if m, ok := base.X.(*ast.Ident); ok {
			arr = m.Name
			return false
		}
		return true
	})
	if arr == "" {
		return nil
	}
	return &ColumnLoop{Array: arr, Outer: outerVar, Inner: innerVar}
}

// loopIndexVar extracts the variable of a canonical counted loop
// `for (int i = ...; i < ...; i++)`.
func loopIndexVar(f *ast.For) (string, bool) {
	lv, ok := f.Init.(*ast.LocalVar)
	if !ok {
		return "", false
	}
	if f.Cond == nil || len(f.Post) != 1 {
		return "", false
	}
	u, ok := f.Post[0].(*ast.Unary)
	if !ok || (u.Op != token.Inc && u.Op != token.Dec) {
		return "", false
	}
	if id, ok := u.X.(*ast.Ident); !ok || id.Name != lv.Name {
		return "", false
	}
	return lv.Name, true
}

// singleStmt unwraps a one-statement block.
func singleStmt(s ast.Stmt) ast.Stmt {
	if b, ok := s.(*ast.Block); ok && len(b.Stmts) == 1 {
		return b.Stmts[0]
	}
	return s
}

// indexByVar matches `name[iv]` and returns name.
func indexByVar(e ast.Expr, iv string) (string, bool) {
	idx, ok := e.(*ast.Index)
	if !ok {
		return "", false
	}
	i, ok := idx.I.(*ast.Ident)
	if !ok || i.Name != iv {
		return "", false
	}
	base, ok := idx.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	return base.Name, true
}

// isExceptionName reports whether a class name denotes a throwable (those
// are reported under the exception rule, not the objects rule).
func isExceptionName(name string) bool {
	return name == "Exception" || name == "Throwable" || name == "Error" ||
		strings.HasSuffix(name, "Exception")
}

// copyBound extracts N from `i < N` provided the loop starts at literal 0 —
// the precondition for a plain arraycopy rewrite.
func copyBound(f *ast.For, iv string) (ast.Expr, bool) {
	cond, ok := f.Cond.(*ast.Binary)
	if !ok || cond.Op != token.Lt {
		return nil, false
	}
	id, ok := cond.X.(*ast.Ident)
	if !ok || id.Name != iv {
		return nil, false
	}
	lv, ok := f.Init.(*ast.LocalVar)
	if !ok {
		return nil, false
	}
	lit, ok := lv.Init.(*ast.Literal)
	if !ok || lit.Kind != ast.LitInt || lit.I != 0 {
		return nil, false
	}
	return cond.Y, true
}

func innerFor(f *ast.For) (*ast.For, bool) {
	inner, ok := singleStmt(f.Body).(*ast.For)
	return inner, ok
}

// Type and literal transforms — the fix-side primitives.

// narrowType applies the primitive-type rule: long/short/byte→int,
// double→float. It reports whether the type changed.
func narrowType(t *ast.Type) bool {
	switch t.Kind {
	case ast.Long, ast.Short, ast.Byte:
		t.Kind = ast.Int
		return true
	case ast.Double:
		t.Kind = ast.Float
		return true
	}
	return false
}

// narrowable reports whether narrowType would change the type, without
// changing it.
func narrowable(t ast.Type) bool {
	switch t.Kind {
	case ast.Long, ast.Short, ast.Byte, ast.Double:
		return true
	}
	return false
}

// integerizeWrapper replaces integral wrappers with Integer.
func integerizeWrapper(t *ast.Type) bool {
	if t.Kind != ast.ClassType {
		return false
	}
	switch t.Name {
	case "Long", "Short", "Byte":
		t.Name = "Integer"
		return true
	}
	return false
}

func qualifiesForSci(lit *ast.Literal) bool {
	return (lit.Kind == ast.LitDouble || lit.Kind == ast.LitFloat) && !lit.Sci &&
		wouldBenefitFromSci(lit.Raw)
}

// scientificize rewrites one qualifying literal in place.
func scientificize(lit *ast.Literal) {
	lit.Raw = sciSpelling(lit)
	lit.Sci = true
}

func sciSpelling(lit *ast.Literal) string {
	s := fmt.Sprintf("%g", lit.D)
	// %g already uses e-notation for large/small magnitudes; force it
	// otherwise (1e+06 and 100000 both round-trip, we want the former).
	if !containsE(s) {
		s = fmt.Sprintf("%e", lit.D)
		s = trimSciZeros(s)
	}
	if lit.Kind == ast.LitFloat {
		s += "f"
	}
	return s
}

func containsE(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == 'e' || s[i] == 'E' {
			return true
		}
	}
	return false
}

// trimSciZeros turns "1.000000e+05" into "1e+05".
func trimSciZeros(s string) string {
	e := -1
	for i := 0; i < len(s); i++ {
		if s[i] == 'e' {
			e = i
			break
		}
	}
	if e < 0 {
		return s
	}
	mant, exp := s[:e], s[e:]
	for len(mant) > 1 && mant[len(mant)-1] == '0' {
		mant = mant[:len(mant)-1]
	}
	if len(mant) > 1 && mant[len(mant)-1] == '.' {
		mant = mant[:len(mant)-1]
	}
	return mant + exp
}

// matchCompareToEquality recognizes `a.compareTo(b) == 0` / `!= 0` and
// returns the call, or nil. The rewrite itself lives in the fix closure.
func matchCompareToEquality(b *ast.Binary) *ast.Call {
	if b.Op != token.Eq && b.Op != token.Ne {
		return nil
	}
	call, lit := matchCallLit(b.X, b.Y)
	if call == nil {
		call, lit = matchCallLit(b.Y, b.X)
	}
	if call == nil || lit == nil || lit.I != 0 || lit.Kind != ast.LitInt {
		return nil
	}
	if call.Name != "compareTo" || len(call.Args) != 1 || call.Recv == nil {
		return nil
	}
	return call
}

func matchCallLit(a, b ast.Expr) (*ast.Call, *ast.Literal) {
	call, ok := a.(*ast.Call)
	if !ok {
		return nil, nil
	}
	lit, ok := b.(*ast.Literal)
	if !ok {
		return nil, nil
	}
	return call, lit
}

// compareToEquals builds `a.equals(b)` (or its negation for !=) from the
// matched comparison.
func compareToEquals(b *ast.Binary, call *ast.Call) ast.Expr {
	eq := &ast.Call{Pos: call.Pos, Recv: call.Recv, Name: "equals", Args: call.Args}
	if b.Op == token.Eq {
		return eq
	}
	return &ast.Unary{Pos: b.Pos, Op: token.Not, X: eq}
}

// modulusMask builds `id & (2^k − 1)` from the matched modulus.
func modulusMask(b *ast.Binary, id *ast.Ident, lit *ast.Literal) ast.Expr {
	mask := &ast.Literal{Pos: lit.Pos, Kind: ast.LitInt, I: lit.I - 1,
		Raw: fmt.Sprintf("%d", lit.I-1)}
	return &ast.Binary{Pos: b.Pos, Op: token.BitAnd, X: id, Y: mask}
}
