package profile

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"jepo/internal/energy"
	"jepo/internal/instrument"
	"jepo/internal/minijava/interp"
	"jepo/internal/minijava/parser"
	"jepo/internal/rapl"
	"jepo/internal/tables"
)

// noBackoff disables the resilient wrapper's retry sleep in tests.
var noBackoff = rapl.WithBackoff(func(int) {})

// windowFailSource fails exactly the scripted read indices (0-based) and
// succeeds everywhere else — a transient permission flip, not a death.
type windowFailSource struct {
	inner rapl.Source
	fail  map[int]bool
	reads int
}

func (w *windowFailSource) Snapshot() (rapl.Snapshot, error) {
	idx := w.reads
	w.reads++
	if w.fail[idx] {
		return rapl.Snapshot{}, errFail
	}
	return w.inner.Snapshot()
}

func TestProfilerDegradedRecordInsteadOfPoison(t *testing.T) {
	meter := energy.NewMeter(energy.DefaultCosts())
	// Reads 0,1 (first execution) succeed; read 2 (enter of the second)
	// fails; everything later succeeds.
	src := &windowFailSource{inner: rapl.NewSimSource(meter), fail: map[int]bool{2: true}}
	prof := New(src, func() time.Duration { return meter.Snapshot().Elapsed })

	prof.Enter("a")
	prof.Exit("a")  // clean record
	prof.Enter("b") // enter read fails → last-known-good stands in
	meter.Step(energy.OpModInt, 100_000)
	prof.Exit("b") // exit read succeeds → record completes, estimated

	recs := prof.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2 — a failed read must not lose the execution", len(recs))
	}
	if recs[0].Degraded || recs[0].Estimated {
		t.Errorf("clean record flagged: %+v", recs[0])
	}
	if !recs[1].Estimated || !recs[1].Degraded {
		t.Errorf("record across failed read not flagged: %+v", recs[1])
	}
	if recs[1].Package < 0 {
		t.Errorf("estimated record went negative: %+v", recs[1])
	}
	h := prof.Health()
	if h.ReadErrors != 1 || h.Estimated != 1 || h.Degraded != 1 {
		t.Errorf("health = %s", h)
	}
	if prof.Err() == nil {
		t.Error("first read error must still be surfaced via Err()")
	}
}

func TestProfilerRecoversFromUnwoundFrames(t *testing.T) {
	meter := energy.NewMeter(energy.DefaultCosts())
	prof := New(rapl.NewSimSource(meter), func() time.Duration { return meter.Snapshot().Elapsed })

	// An exception unwinds through b and c whose exit probes never fire.
	prof.Enter("a")
	prof.Enter("b")
	prof.Enter("c")
	prof.Exit("a")
	// The run continues balanced afterwards.
	prof.Enter("d")
	prof.Exit("d")

	recs := prof.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2 (a recovered, d clean)", len(recs))
	}
	if recs[0].Method != "a" || !recs[0].Degraded {
		t.Errorf("recovered record wrong: %+v", recs[0])
	}
	if recs[1].Method != "d" || recs[1].Degraded {
		t.Errorf("post-recovery record wrong: %+v", recs[1])
	}
	h := prof.Health()
	if h.DroppedFrames != 2 {
		t.Errorf("dropped frames = %d, want 2 (b and c)", h.DroppedFrames)
	}
	if h.UnbalancedExits != 0 {
		t.Errorf("unbalanced exits = %d, want 0", h.UnbalancedExits)
	}
	if prof.Err() == nil {
		t.Error("the mismatch must still be surfaced via Err()")
	}
}

func TestHealthStringAndClean(t *testing.T) {
	h := Health{Enters: 4, Exits: 4}
	if !h.Clean() {
		t.Error("balanced fault-free run must be clean")
	}
	h.ReadErrors = 1
	h.Source = rapl.Health{Reads: 8, Retries: 2}
	if h.Clean() {
		t.Error("read errors are not clean")
	}
	s := h.String()
	for _, want := range []string{"enters=4", "read_errors=1", "retries=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("health string %q missing %q", s, want)
		}
	}
}

func TestResultTxtFlagsColumn(t *testing.T) {
	prof := setupProfiledRun(t)
	txt := prof.ResultTxt()
	if !strings.Contains(txt, "flags") {
		t.Errorf("header missing flags column:\n%s", txt)
	}
	for _, line := range strings.Split(strings.TrimSpace(txt), "\n")[1:] {
		if !strings.HasSuffix(line, "\tok") {
			t.Errorf("clean run row not flagged ok: %q", line)
		}
	}
}

// driveBench instruments one Table I program and profiles reps calls of
// B.f() through the given source.
func driveBench(t *testing.T, src rapl.Source, meter *energy.Meter, bsrc string, reps int) *Profiler {
	t.Helper()
	f, err := parser.Parse("bench.java", bsrc)
	if err != nil {
		t.Fatal(err)
	}
	instrument.Inject(f)
	prog, err := interp.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	prof := New(src, func() time.Duration { return meter.Snapshot().Elapsed })
	in := interp.New(prog, meter, interp.WithHook(prof), interp.WithMaxOps(500_000_000))
	if err := in.InitStatics(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < reps; i++ {
		if _, err := in.CallStatic("B", "f"); err != nil {
			t.Fatal(err)
		}
	}
	return prof
}

// TestProfiledCorpusSurvivesMidRunSourceDeath is the end-to-end acceptance
// test: a profiled run over the Table I corpus with a scripted mid-run
// source failure (transient faults, then the primary dying as a flaky
// powercap does) completes, reports energy from the fallback source, and
// Health() records the retry/fallback/discontinuity tallies.
func TestProfiledCorpusSurvivesMidRunSourceDeath(t *testing.T) {
	benches := tables.InterpBenches()
	if len(benches) < 10 {
		t.Fatalf("Table I corpus too small: %d programs", len(benches))
	}
	const reps = 4 // 8 counter reads per program: faults land mid-run
	for _, b := range benches {
		t.Run(b.Name, func(t *testing.T) {
			meter := energy.NewMeter(energy.DefaultCosts())
			primary := rapl.NewFaultySource(rapl.NewSimSource(meter),
				rapl.Script{2: rapl.FaultTransient, 5: rapl.FaultPermanent})
			res := rapl.NewResilient(primary,
				rapl.WithFallback(rapl.NewSimSource(meter)),
				rapl.WithRetries(2), noBackoff)
			prof := driveBench(t, res, meter, b.Src, reps)

			recs := prof.Records()
			if len(recs) != reps {
				t.Fatalf("records = %d, want %d — the run must complete through the source death", len(recs), reps)
			}
			var degraded int
			for i, r := range recs {
				if r.Package < 0 || r.Core < 0 {
					t.Errorf("record %d went negative: %+v", i, r)
				}
				if r.Degraded {
					degraded++
				}
			}
			if degraded == 0 {
				t.Error("no record flagged degraded despite injected faults")
			}
			h := prof.Health()
			if h.Source.Retries == 0 {
				t.Errorf("no retries recorded: %s", h)
			}
			if h.Source.Discontinuities != 1 || h.Source.Fallbacks == 0 {
				t.Errorf("fallback not recorded: %s", h)
			}
			if h.ReadErrors != 0 {
				t.Errorf("resilient source leaked %d read errors: %s", h.ReadErrors, h)
			}
			if prof.Err() != nil {
				t.Errorf("degraded run must not poison the profiler: %v", prof.Err())
			}
			// Energy from the fallback region is still real: the heaviest
			// records carry positive package energy.
			sums := prof.Summaries()
			if len(sums) != 1 || sums[0].Package <= 0 {
				t.Errorf("fallback region lost the energy: %+v", sums)
			}
		})
	}
}

// TestProfiledRunSurvivesSysfsTreeLoss profiles against a real powercap
// tempdir tree that disappears mid-run, falling back to the simulator.
func TestProfiledRunSurvivesSysfsTreeLoss(t *testing.T) {
	root := t.TempDir()
	zoneDir := filepath.Join(root, "intel-rapl:0")
	if err := os.MkdirAll(zoneDir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(file, content string) {
		if err := os.WriteFile(filepath.Join(zoneDir, file), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("name", "package-0\n")
	write("energy_uj", "1000000\n")
	sys, err := rapl.NewSysfs(root)
	if err != nil {
		t.Fatal(err)
	}
	sys.QuarantineAfter = 1

	meter := energy.NewMeter(energy.DefaultCosts())
	res := rapl.NewResilient(sys, rapl.WithFallback(rapl.NewSimSource(meter)),
		rapl.WithRetries(0), rapl.WithMaxMisses(0), noBackoff)
	prof := New(res, func() time.Duration { return meter.Snapshot().Elapsed })

	prof.Enter("warm")
	prof.Exit("warm")
	if err := os.RemoveAll(zoneDir); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		m := fmt.Sprintf("after.loss.%d", i)
		prof.Enter(m)
		meter.Step(energy.OpModInt, 50_000)
		prof.Exit(m)
	}
	if got := len(prof.Records()); got != 4 {
		t.Fatalf("records = %d, want 4", got)
	}
	h := prof.Health()
	if h.Source.Discontinuities != 1 || h.Source.Quarantined != 1 {
		t.Errorf("sysfs death not recorded: %s", h)
	}
	last := prof.Records()[3]
	if !last.Degraded && last.Package < 0 {
		t.Errorf("post-loss record inconsistent: %+v", last)
	}
}
