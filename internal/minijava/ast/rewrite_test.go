package ast_test

import (
	"strings"
	"testing"

	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/parser"
	"jepo/internal/minijava/token"
)

func parseBody(t *testing.T, body string) (*ast.File, *ast.Block) {
	t.Helper()
	f, err := parser.Parse("T.java", "class T { static int f(int a, int b) {\n"+body+"\n} }")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f, f.Classes[0].Methods[0].Body
}

func TestRewriteVisitsEveryInspectNode(t *testing.T) {
	_, body := parseBody(t, `
		int s = 0;
		for (int i = 0; i < a; i++) {
			if (i % 2 == 0) { s += i; } else { s -= i > 3 ? 1 : 2; }
		}
		while (s > 100) { s--; }
		return s;
	`)
	var inspected, rewritten []string
	ast.Inspect(body, func(n ast.Node) bool {
		inspected = append(inspected, nodeName(n))
		return true
	})
	ast.Rewrite(body, func(c *ast.Cursor) bool {
		rewritten = append(rewritten, nodeName(c.Node()))
		return true
	}, nil)
	if strings.Join(inspected, " ") != strings.Join(rewritten, " ") {
		t.Errorf("traversal order diverged:\ninspect: %v\nrewrite: %v", inspected, rewritten)
	}
}

func TestRewriteReplaceDescendsIntoReplacement(t *testing.T) {
	_, body := parseBody(t, `return a % 8;`)
	var sawMask bool
	ast.Rewrite(body, func(c *ast.Cursor) bool {
		switch n := c.Node().(type) {
		case *ast.Binary:
			if n.Op == token.Percent {
				c.Replace(&ast.Binary{Pos: n.Pos, Op: token.BitAnd, X: n.X,
					Y: &ast.Literal{Pos: n.Pos, Kind: ast.LitInt, I: 7, Raw: "7"}})
			}
			if n.Op == token.BitAnd {
				sawMask = true // only reachable via the replacement's children... parent
			}
		case *ast.Literal:
			if n.Raw == "7" {
				sawMask = true
			}
		}
		return true
	}, nil)
	if !sawMask {
		t.Error("traversal did not descend into the replacement's children")
	}
	out := ast.PrintStmt(body)
	if !strings.Contains(out, "a & 7") {
		t.Errorf("replacement missing: %s", out)
	}
}

func TestRewriteInsertBeforeAndReplaceStatement(t *testing.T) {
	_, body := parseBody(t, `
		int v = a > b ? a : b;
		return v;
	`)
	ast.Rewrite(body, func(c *ast.Cursor) bool {
		lv, ok := c.Node().(*ast.LocalVar)
		if !ok || lv.Init == nil {
			return true
		}
		tern, ok := lv.Init.(*ast.Ternary)
		if !ok {
			return true
		}
		if !c.InSlice() {
			t.Fatal("declaration not in a statement slice")
		}
		decl := &ast.LocalVar{Pos: lv.Pos, Type: lv.Type, Name: lv.Name}
		c.InsertBefore(decl)
		mk := func(e ast.Expr) ast.Stmt {
			return &ast.ExprStmt{Pos: e.NodePos(), X: &ast.Assign{
				Pos: e.NodePos(), Op: token.Assign,
				LHS: &ast.Ident{Pos: lv.Pos, Name: lv.Name}, RHS: e,
			}}
		}
		c.Replace(&ast.If{Pos: tern.Pos, Cond: tern.Cond,
			Then: &ast.Block{Pos: tern.Pos, Stmts: []ast.Stmt{mk(tern.Then)}},
			Else: &ast.Block{Pos: tern.Pos, Stmts: []ast.Stmt{mk(tern.Else)}}})
		return true
	}, nil)
	out := ast.PrintStmt(body)
	if strings.Contains(out, "?") || !strings.Contains(out, "if (a > b)") {
		t.Errorf("expansion wrong:\n%s", out)
	}
	// Still parses after printing.
	if _, err := parser.Parse("out.java", "class T { static int f(int a, int b) "+out+" }"); err != nil {
		t.Fatalf("rewritten body does not re-parse: %v\n%s", err, out)
	}
}

func TestRewriteDeleteAndInsertAfter(t *testing.T) {
	_, body := parseBody(t, `
		int x = 1;
		int y = 2;
		int z = 3;
		return x + z;
	`)
	var visited []string
	ast.Rewrite(body, func(c *ast.Cursor) bool {
		lv, ok := c.Node().(*ast.LocalVar)
		if !ok {
			return true
		}
		visited = append(visited, lv.Name)
		switch lv.Name {
		case "y":
			c.Delete()
		case "z":
			c.InsertAfter(&ast.LocalVar{Pos: lv.Pos, Type: lv.Type, Name: "w",
				Init: &ast.Literal{Pos: lv.Pos, Kind: ast.LitInt, I: 4, Raw: "4"}})
		}
		return true
	}, nil)
	// The sweep continues past a delete without skipping, and reaches nodes
	// inserted after the cursor.
	want := "x y z w"
	if got := strings.Join(visited, " "); got != want {
		t.Errorf("visited %q, want %q", got, want)
	}
	out := ast.PrintStmt(body)
	if strings.Contains(out, "int y") || !strings.Contains(out, "int w = 4") {
		t.Errorf("slice surgery wrong:\n%s", out)
	}
}

func TestRewritePostHookAndAbort(t *testing.T) {
	_, body := parseBody(t, `
		int x = 1;
		int y = 2;
		return x + y;
	`)
	var post []string
	ast.Rewrite(body, nil, func(c *ast.Cursor) bool {
		post = append(post, nodeName(c.Node()))
		if lv, ok := c.Node().(*ast.LocalVar); ok && lv.Name == "y" {
			return false // abort
		}
		return true
	})
	joined := strings.Join(post, " ")
	if !strings.Contains(joined, "LocalVar") {
		t.Fatalf("post hook never ran: %v", post)
	}
	if strings.Contains(joined, "Return") {
		t.Errorf("abort did not stop the traversal: %v", post)
	}
}

func TestRewriteSkipChildren(t *testing.T) {
	_, body := parseBody(t, `
		for (int i = 0; i < a; i++) { b = b + i; }
		return b;
	`)
	var idents int
	ast.Rewrite(body, func(c *ast.Cursor) bool {
		if _, ok := c.Node().(*ast.For); ok {
			return false // prune the whole loop
		}
		if _, ok := c.Node().(*ast.Ident); ok {
			idents++
		}
		return true
	}, nil)
	if idents != 1 { // only the `b` in the return
		t.Errorf("pruned traversal saw %d idents, want 1", idents)
	}
}

func TestRewriteFileCoversFieldsAndMethods(t *testing.T) {
	f, err := parser.Parse("T.java", `class T {
		double big = 100000.0;
		int g() { return 2; }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	var lits, returns int
	ast.RewriteFile(f, func(c *ast.Cursor) bool {
		switch c.Node().(type) {
		case *ast.Literal:
			lits++
		case *ast.Return:
			returns++
		}
		return true
	}, nil)
	if lits != 2 || returns != 1 {
		t.Errorf("RewriteFile saw lits=%d returns=%d, want 2/1", lits, returns)
	}
}

func nodeName(n ast.Node) string {
	switch n.(type) {
	case *ast.Block:
		return "Block"
	case *ast.LocalVar:
		return "LocalVar"
	case *ast.ExprStmt:
		return "ExprStmt"
	case *ast.If:
		return "If"
	case *ast.While:
		return "While"
	case *ast.For:
		return "For"
	case *ast.Return:
		return "Return"
	case *ast.Ident:
		return "Ident"
	case *ast.Literal:
		return "Literal"
	case *ast.Binary:
		return "Binary"
	case *ast.Unary:
		return "Unary"
	case *ast.Assign:
		return "Assign"
	case *ast.Ternary:
		return "Ternary"
	default:
		return "Node"
	}
}
