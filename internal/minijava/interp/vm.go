package interp

import (
	"strconv"

	"jepo/internal/energy"
	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/bytecode"
	"jepo/internal/minijava/token"
)

// This file is the bytecode engine's dispatch loop. The compiler
// (internal/minijava/bytecode) guarantees that executing the instruction
// stream issues the same energy.Meter calls in the same order as tree-walking
// the same body; every non-trivial operation below therefore delegates to the
// walker's own helpers (selectFrom, writeLValue, dispatchCall, coerceTo, ...)
// so the charge sequences are shared code, not transcriptions.

// invokeVM runs a compiled method. It mirrors invoke exactly: the call
// charge, parameter coercion into pooled frame slots, and return-value
// coercion only for an explicit return in a non-void method.
func (in *Interp) invokeVM(ci *classInfo, this *Object, m *ast.Method, cf *compiledFn, args []Value) Value {
	fn := cf.fn
	in.meter.Step(energy.OpCall, 1)
	fr := frame{class: ci, this: this, locals: in.grabLocals(fn.NSlots)}
	stack := in.grabArgs(fn.MaxStack)
	defer func() {
		in.releaseLocals(fr.locals)
		in.releaseArgs(stack)
	}()
	for i := range m.Params {
		p := &m.Params[i]
		pk := kindOfType(p.Type)
		av := args[i]
		if av.K != pk {
			av = in.coerceTo(av, p.Type, m.Pos)
		}
		fr.locals[i] = cell{t: p.Type, k: pk, v: av, live: true}
	}
	var ret Value
	var explicit bool
	if fn.Probe != "" && in.hook != nil {
		ret, explicit = in.execVMProbed(cf, &fr, stack)
	} else {
		ret, explicit = in.execVM(cf, &fr, stack)
	}
	if explicit {
		if m.Ret.Kind != ast.Void || m.Ret.Dims > 0 {
			return in.coerceTo(ret, m.Ret, m.Pos)
		}
	}
	return Value{K: KVoid}
}

// execVMProbed wraps execVM with the exception-unwind half of the probe
// contract: a mini-Java exception leaving the frame fires the exit hook (the
// AST instrumentation's finally block), while interpreter-level errors do not
// (runProtected never catches those either).
func (in *Interp) execVMProbed(cf *compiledFn, fr *frame, stack []Value) (Value, bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(javaPanic); ok {
				in.hook.Exit(cf.fn.Probe)
			}
			panic(r)
		}
	}()
	return in.execVM(cf, fr, stack)
}

// liveCell returns the live cell at a compiled slot operand, or nil when the
// declaration has not executed yet (the dialect declares at execution time)
// or the operand is -1 (identifier without a slot).
func liveCell(fr *frame, slot int32) *cell {
	if s := int(slot); uint(s) < uint(len(fr.locals)) {
		if c := &fr.locals[s]; c.live {
			return c
		}
	}
	return nil
}

// intCmp applies an int comparison operator. Callers charge the single
// OpArithInt step themselves (the charge vmIntFast's comparison lanes issue).
func intCmp(op token.Kind, a, b int64) bool {
	switch op {
	case token.Lt:
		return a < b
	case token.Le:
		return a <= b
	case token.Gt:
		return a > b
	case token.Ge:
		return a >= b
	case token.Eq:
		return a == b
	default: // token.Ne — fused compares carry comparison tokens only
		return a != b
	}
}

// vmIntFast applies an int,int binary operator, charging exactly what
// binaryFast's KInt lane charges. It exists so the dispatch loop's binary
// handlers pass two scalars instead of copying two full Values into a call;
// operators it skips (division, shifts, bitwise) fall through to binaryFast.
func vmIntFast(in *Interp, op token.Kind, a, b int64) (Value, bool) {
	switch op {
	case token.Plus:
		in.meter.Step(energy.OpArithInt, 1)
		return IntVal(a + b), true
	case token.Minus:
		in.meter.Step(energy.OpArithInt, 1)
		return IntVal(a - b), true
	case token.Star:
		in.meter.Step(energy.OpArithInt, 1)
		return IntVal(a * b), true
	case token.Lt:
		in.meter.Step(energy.OpArithInt, 1)
		return BoolVal(a < b), true
	case token.Le:
		in.meter.Step(energy.OpArithInt, 1)
		return BoolVal(a <= b), true
	case token.Gt:
		in.meter.Step(energy.OpArithInt, 1)
		return BoolVal(a > b), true
	case token.Ge:
		in.meter.Step(energy.OpArithInt, 1)
		return BoolVal(a >= b), true
	case token.Eq:
		in.meter.Step(energy.OpArithInt, 1)
		return BoolVal(a == b), true
	case token.Ne:
		in.meter.Step(energy.OpArithInt, 1)
		return BoolVal(a != b), true
	}
	return Value{}, false
}

// execVM is the dispatch loop. The boolean result reports whether the method
// completed through an explicit return statement (which triggers invoke's
// return-value coercion) as opposed to falling off the end of the body.
//
// Identifier operands are read inline (liveCell + the walker's local charge)
// so the hot path does no interface type assertion; the assertions happen
// only on the slow resolution ladder.
func (in *Interp) execVM(cf *compiledFn, fr *frame, stack []Value) (Value, bool) {
	fn := cf.fn
	code := fn.Code
	consts := cf.consts
	pc, sp := 0, 0
	for {
		ins := &code[pc]
		if ins.Steps != 0 {
			in.ops += int64(ins.Steps)
			if in.maxOps > 0 && in.ops > in.maxOps {
				in.opBudgetExceeded()
			}
		}
		switch ins.Op {
		case bytecode.OpLoadLocal:
			if c := liveCell(fr, ins.A); c != nil {
				in.meter.Step(energy.OpLocal, 1)
				stack[sp] = c.v
			} else {
				stack[sp] = in.evalIdent(fr, ins.Node.(*ast.Ident))
			}
			sp++
		case bytecode.OpConst:
			cv := &consts[ins.A]
			if cv.charge {
				in.meter.Step(cv.op, 1)
			}
			stack[sp] = cv.v
			sp++
		case bytecode.OpBinLL:
			var x, y Value
			if c := liveCell(fr, ins.A); c != nil {
				in.meter.Step(energy.OpLocal, 1)
				x = c.v
			} else {
				x = in.evalIdent(fr, ins.Node.(*ast.Binary).X.(*ast.Ident))
			}
			if c := liveCell(fr, ins.B); c != nil {
				in.meter.Step(energy.OpLocal, 1)
				y = c.v
			} else {
				y = in.evalIdent(fr, ins.Node.(*ast.Binary).Y.(*ast.Ident))
			}
			if x.K == KInt && y.K == KInt {
				if v, ok := vmIntFast(in, ins.Tok, x.I, y.I); ok {
					stack[sp] = v
					sp++
					break
				}
			}
			v, ok := in.binaryFast(ins.Tok, x, y)
			if !ok {
				v = in.binary(ins.Tok, x, y, ins.Node.NodePos())
			}
			stack[sp] = v
			sp++
		case bytecode.OpBinLC:
			var x Value
			if c := liveCell(fr, ins.A); c != nil {
				in.meter.Step(energy.OpLocal, 1)
				x = c.v
			} else {
				x = in.evalIdent(fr, ins.Node.(*ast.Binary).X.(*ast.Ident))
			}
			cv := &consts[ins.B]
			if cv.charge {
				in.meter.Step(cv.op, 1)
			}
			if x.K == KInt && cv.v.K == KInt {
				if v, ok := vmIntFast(in, ins.Tok, x.I, cv.v.I); ok {
					stack[sp] = v
					sp++
					break
				}
			}
			v, ok := in.binaryFast(ins.Tok, x, cv.v)
			if !ok {
				v = in.binary(ins.Tok, x, cv.v, ins.Node.NodePos())
			}
			stack[sp] = v
			sp++
		case bytecode.OpBinary:
			y := stack[sp-1]
			x := stack[sp-2]
			sp--
			if x.K == KInt && y.K == KInt {
				if v, ok := vmIntFast(in, ins.Tok, x.I, y.I); ok {
					stack[sp-1] = v
					break
				}
			}
			v, ok := in.binaryFast(ins.Tok, x, y)
			if !ok {
				v = in.binary(ins.Tok, x, y, ins.Node.NodePos())
			}
			stack[sp-1] = v
		case bytecode.OpJmp:
			pc += int(ins.A)
			continue
		case bytecode.OpJmpBranch:
			in.meter.Step(energy.OpBranch, 1)
			pc += int(ins.A)
			continue
		case bytecode.OpJmpCmpLLFalse, bytecode.OpJmpCmpLLTrue:
			// Fused OpBinLL + conditional jump: identical charge sequence,
			// and a comparison always yields a normalised boolean, so the
			// jump's unbox/type checks are unreachable.
			var x, y Value
			if c := liveCell(fr, ins.C); c != nil {
				in.meter.Step(energy.OpLocal, 1)
				x = c.v
			} else {
				x = in.evalIdent(fr, ins.Node.(*ast.Binary).X.(*ast.Ident))
			}
			if c := liveCell(fr, ins.B); c != nil {
				in.meter.Step(energy.OpLocal, 1)
				y = c.v
			} else {
				y = in.evalIdent(fr, ins.Node.(*ast.Binary).Y.(*ast.Ident))
			}
			var take bool
			if x.K == KInt && y.K == KInt {
				in.meter.Step(energy.OpArithInt, 1)
				take = intCmp(ins.Tok, x.I, y.I)
			} else {
				v, ok := in.binaryFast(ins.Tok, x, y)
				if !ok {
					v = in.binary(ins.Tok, x, y, ins.Node.NodePos())
				}
				take = v.I != 0
			}
			if take == (ins.Op == bytecode.OpJmpCmpLLTrue) {
				pc += int(ins.A)
				continue
			}
		case bytecode.OpJmpCmpLCFalse, bytecode.OpJmpCmpLCTrue:
			var x Value
			if c := liveCell(fr, ins.C); c != nil {
				in.meter.Step(energy.OpLocal, 1)
				x = c.v
			} else {
				x = in.evalIdent(fr, ins.Node.(*ast.Binary).X.(*ast.Ident))
			}
			cv := &consts[ins.B]
			if cv.charge {
				in.meter.Step(cv.op, 1)
			}
			var take bool
			if x.K == KInt && cv.v.K == KInt {
				in.meter.Step(energy.OpArithInt, 1)
				take = intCmp(ins.Tok, x.I, cv.v.I)
			} else {
				v, ok := in.binaryFast(ins.Tok, x, cv.v)
				if !ok {
					v = in.binary(ins.Tok, x, cv.v, ins.Node.NodePos())
				}
				take = v.I != 0
			}
			if take == (ins.Op == bytecode.OpJmpCmpLCTrue) {
				pc += int(ins.A)
				continue
			}
		case bytecode.OpJmpCmpFalse, bytecode.OpJmpCmpTrue:
			y := stack[sp-1]
			x := stack[sp-2]
			sp -= 2
			var take bool
			if x.K == KInt && y.K == KInt {
				in.meter.Step(energy.OpArithInt, 1)
				take = intCmp(ins.Tok, x.I, y.I)
			} else {
				v, ok := in.binaryFast(ins.Tok, x, y)
				if !ok {
					v = in.binary(ins.Tok, x, y, ins.Node.NodePos())
				}
				take = v.I != 0
			}
			if take == (ins.Op == bytecode.OpJmpCmpTrue) {
				pc += int(ins.A)
				continue
			}
		case bytecode.OpJmpFalse:
			v := stack[sp-1]
			sp--
			if v.K == KBox {
				v = in.unbox(v, ins.Node.NodePos())
			}
			if v.K != KBool {
				in.bugf(ins.Node.NodePos(), "condition is %v, not boolean", v.K)
			}
			if v.I == 0 {
				pc += int(ins.A)
				continue
			}
		case bytecode.OpJmpTrue:
			v := stack[sp-1]
			sp--
			if v.K == KBox {
				v = in.unbox(v, ins.Node.NodePos())
			}
			if v.K != KBool {
				in.bugf(ins.Node.NodePos(), "condition is %v, not boolean", v.K)
			}
			if v.I != 0 {
				pc += int(ins.A)
				continue
			}
		case bytecode.OpStoreLocal, bytecode.OpStoreLocalX:
			rhs := stack[sp-1]
			id := ins.Node.(*ast.Ident)
			if c := liveCell(fr, ins.A); c != nil {
				in.meter.Step(energy.OpLocal, 1)
				if rhs.K == c.k {
					c.v = rhs
				} else {
					c.v = in.coerceTo(rhs, c.t, id.Pos)
				}
			} else {
				in.writeLValue(fr, id, rhs)
			}
			if ins.Op == bytecode.OpStoreLocal {
				sp--
			}
		case bytecode.OpIncLocal, bytecode.OpIncLocalX:
			n := ins.Node.(*ast.Unary)
			var res Value
			if c := liveCell(fr, ins.A); c != nil {
				// Inline ++/--: the walker's readLValue step+charge, unbox,
				// arithmetic charge, and writeLValue live-slot store.
				in.step()
				in.meter.Step(energy.OpLocal, 1)
				old := c.v
				if old.K == KBox {
					old = in.unbox(old, n.Pos)
				}
				delta := int64(ins.B)
				var updated Value
				switch old.K {
				case KInt:
					in.meter.Step(energy.OpArithInt, 1)
					updated = Value{K: KInt, I: old.I + delta}
				case KFloat:
					in.chargeArith(KFloat, token.Plus)
					updated = FloatVal(old.D + float64(delta))
				case KDouble:
					in.chargeArith(KDouble, token.Plus)
					updated = DoubleVal(old.D + float64(delta))
				case KLong:
					in.chargeArith(KLong, token.Plus)
					updated = LongVal(old.I + delta)
				case KShort, KByte, KChar:
					in.chargeArith(old.K, token.Plus)
					updated = Value{K: old.K, I: old.I + delta}
				default:
					in.bugf(n.Pos, "%v on %v", n.Op, old.K)
				}
				in.meter.Step(energy.OpLocal, 1)
				if updated.K == c.k {
					c.v = updated
				} else {
					c.v = in.coerceTo(updated, c.t, n.X.(*ast.Ident).Pos)
				}
				if n.Postfix {
					res = old
				} else {
					res = updated
				}
			} else {
				res = in.evalUnary(fr, n)
			}
			if ins.Op == bytecode.OpIncLocalX {
				stack[sp] = res
				sp++
			}
		case bytecode.OpCall:
			n := ins.Node.(*ast.Call)
			argc := int(ins.A)
			args := in.grabArgs(argc)
			copy(args, stack[sp-argc:sp])
			sp -= argc
			var recv Value
			hasRecv := ins.B != 0
			if hasRecv {
				recv = stack[sp-1]
				sp--
			}
			stack[sp] = in.dispatchCall(fr, n, recv, hasRecv, args)
			sp++
		case bytecode.OpLoadIndex:
			iv := stack[sp-1]
			xv := stack[sp-2]
			sp--
			var arr *Array
			var idx int
			if xv.K == KArr && iv.K == KInt {
				// In-bounds int index on an array: skip the generic ladder
				// (which charges nothing up to this point, so parity holds).
				arr = xv.R.(*Array)
				if idx = int(iv.I); uint(idx) >= uint(arr.Len()) {
					arr, idx = in.indexCheck(xv, iv, ins.Node.(*ast.Index))
				}
			} else {
				arr, idx = in.indexCheck(xv, iv, ins.Node.(*ast.Index))
			}
			in.meter.Step(energy.OpArrayElem, 1)
			in.meter.Step(energy.OpBoundsCheck, 1)
			in.meter.Access(arr.addr(idx), arr.ES)
			stack[sp-1] = arr.get(idx)
		case bytecode.OpLoadIndexL:
			// Fused a[i] with a local index: the index read is charged
			// exactly where the stand-alone load instruction would have.
			n := ins.Node.(*ast.Index)
			var iv Value
			if c := liveCell(fr, ins.A); c != nil {
				in.meter.Step(energy.OpLocal, 1)
				iv = c.v
			} else {
				iv = in.evalIdent(fr, n.I.(*ast.Ident))
			}
			xv := stack[sp-1]
			var arr *Array
			var idx int
			if xv.K == KArr && iv.K == KInt {
				arr = xv.R.(*Array)
				if idx = int(iv.I); uint(idx) >= uint(arr.Len()) {
					arr, idx = in.indexCheck(xv, iv, n)
				}
			} else {
				arr, idx = in.indexCheck(xv, iv, n)
			}
			in.meter.Step(energy.OpArrayElem, 1)
			in.meter.Step(energy.OpBoundsCheck, 1)
			in.meter.Access(arr.addr(idx), arr.ES)
			stack[sp-1] = arr.get(idx)
		case bytecode.OpStoreIndexL, bytecode.OpStoreIndexLX:
			n := ins.Node.(*ast.Index)
			var iv Value
			if c := liveCell(fr, ins.A); c != nil {
				in.meter.Step(energy.OpLocal, 1)
				iv = c.v
			} else {
				iv = in.evalIdent(fr, n.I.(*ast.Ident))
			}
			xv := stack[sp-1]
			rhs := stack[sp-2]
			sp -= 2
			var arr *Array
			var idx int
			if xv.K == KArr && iv.K == KInt {
				arr = xv.R.(*Array)
				if idx = int(iv.I); uint(idx) >= uint(arr.Len()) {
					arr, idx = in.indexCheck(xv, iv, n)
				}
			} else {
				arr, idx = in.indexCheck(xv, iv, n)
			}
			in.meter.Step(energy.OpArrayElem, 1)
			in.meter.Step(energy.OpBoundsCheck, 1)
			in.meter.Access(arr.addr(idx), arr.ES)
			arr.set(idx, in.coerceTo(rhs, arr.Elem, n.Pos))
			if ins.Op == bytecode.OpStoreIndexLX {
				stack[sp] = rhs
				sp++
			}
		case bytecode.OpStoreIndex, bytecode.OpStoreIndexX:
			n := ins.Node.(*ast.Index)
			iv := stack[sp-1]
			xv := stack[sp-2]
			rhs := stack[sp-3]
			sp -= 3
			var arr *Array
			var idx int
			if xv.K == KArr && iv.K == KInt {
				arr = xv.R.(*Array)
				if idx = int(iv.I); uint(idx) >= uint(arr.Len()) {
					arr, idx = in.indexCheck(xv, iv, n)
				}
			} else {
				arr, idx = in.indexCheck(xv, iv, n)
			}
			in.meter.Step(energy.OpArrayElem, 1)
			in.meter.Step(energy.OpBoundsCheck, 1)
			in.meter.Access(arr.addr(idx), arr.ES)
			arr.set(idx, in.coerceTo(rhs, arr.Elem, n.Pos))
			if ins.Op == bytecode.OpStoreIndexX {
				stack[sp] = rhs
				sp++
			}
		case bytecode.OpLoadSelect:
			stack[sp-1] = in.selectFrom(stack[sp-1], ins.Node.(*ast.Select))
		case bytecode.OpStoreSelect, bytecode.OpStoreSelectX:
			// The receiver expression is evaluated inside writeLValue, after
			// the RHS — the walker's assignment order.
			rhs := stack[sp-1]
			in.writeLValue(fr, ins.Node.(*ast.Select), rhs)
			if ins.Op == bytecode.OpStoreSelect {
				sp--
			}
		case bytecode.OpStoreIdent, bytecode.OpStoreIdentX:
			rhs := stack[sp-1]
			in.writeLValue(fr, ins.Node.(*ast.Ident), rhs)
			if ins.Op == bytecode.OpStoreIdent {
				sp--
			}
		case bytecode.OpLoadIdent:
			stack[sp] = in.evalIdent(fr, ins.Node.(*ast.Ident))
			sp++
		case bytecode.OpLoadThis:
			if fr.this == nil {
				in.bugf(ins.Node.NodePos(), "this in static context")
			}
			stack[sp] = Value{K: KRef, R: fr.this}
			sp++
		case bytecode.OpEval:
			stack[sp] = in.operand(fr, ins.Node.(ast.Expr))
			sp++
		case bytecode.OpAssign, bytecode.OpAssignX:
			v := in.evalAssign(fr, ins.Node.(*ast.Assign))
			if ins.Op == bytecode.OpAssignX {
				stack[sp] = v
				sp++
			}
		case bytecode.OpLocalDecl:
			n := ins.Node.(*ast.LocalVar)
			k := kindOfType(n.Type)
			var v Value
			if ins.B != 0 {
				v = in.evalInit(fr, n.Init, n.Type)
			} else {
				v = stack[sp-1]
				sp--
			}
			if v.K != k {
				v = in.coerceTo(v, n.Type, n.Pos)
			}
			fr.locals[ins.A] = cell{t: n.Type, k: k, v: v, live: true}
			in.meter.Step(energy.OpLocal, 1)
		case bytecode.OpLocalZero:
			n := ins.Node.(*ast.LocalVar)
			fr.locals[ins.A] = cell{t: n.Type, k: kindOfType(n.Type), v: zeroValue(n.Type), live: true}
			in.meter.Step(energy.OpLocal, 1)
		case bytecode.OpNeg:
			n := ins.Node.(*ast.Unary)
			v := stack[sp-1]
			if v.K == KBox {
				v = in.unbox(v, n.Pos)
			}
			in.chargeArith(v.K, token.Minus)
			switch v.K {
			case KFloat:
				stack[sp-1] = FloatVal(-v.D)
			case KDouble:
				stack[sp-1] = DoubleVal(-v.D)
			case KLong:
				stack[sp-1] = LongVal(-v.I)
			case KInt, KShort, KByte, KChar:
				stack[sp-1] = IntVal(-v.I)
			default:
				in.bugf(n.Pos, "unary - on %v", v.K)
			}
		case bytecode.OpNot:
			n := ins.Node.(*ast.Unary)
			v := stack[sp-1]
			if v.K == KBox {
				v = in.unbox(v, n.Pos)
			}
			if v.K != KBool {
				in.bugf(n.Pos, "unary ! on %v", v.K)
			}
			in.meter.Step(energy.OpArithInt, 1)
			stack[sp-1] = BoolVal(v.I == 0)
		case bytecode.OpToBool:
			v := stack[sp-1]
			if v.K == KBox {
				v = in.unbox(v, ins.Node.NodePos())
			}
			if v.K != KBool {
				in.bugf(ins.Node.NodePos(), "condition is %v, not boolean", v.K)
			}
			stack[sp-1] = BoolVal(v.I != 0)
		case bytecode.OpPushBool:
			stack[sp] = BoolVal(ins.A != 0)
			sp++
		case bytecode.OpPop:
			sp--
		case bytecode.OpCharge:
			in.meter.Step(energy.Op(ins.A), int(ins.B))
		case bytecode.OpStep, bytecode.OpNop:
			// Steps were accounted above.
		case bytecode.OpNew:
			n := ins.Node.(*ast.New)
			argc := int(ins.A)
			args := in.grabArgs(argc)
			copy(args, stack[sp-argc:sp])
			sp -= argc
			stack[sp] = in.newDispatch(n, args)
			sp++
		case bytecode.OpLenCheck:
			n := ins.Node.(*ast.NewArray)
			lv := stack[sp-1]
			if lv.K == KBox {
				lv = in.unbox(lv, n.Pos)
			}
			if !lv.K.IsIntegral() {
				in.bugf(n.Pos, "array length is %v, not integral", lv.K)
			}
			if lv.I < 0 {
				in.throw("NegativeArraySizeException", strconv.FormatInt(lv.I, 10))
			}
			stack[sp-1] = lv
		case bytecode.OpNewArray:
			n := ins.Node.(*ast.NewArray)
			nd := int(ins.A)
			var buf [8]int
			lens := buf[:0]
			if nd > len(buf) {
				lens = make([]int, 0, nd)
			}
			for i := 0; i < nd; i++ {
				lens = append(lens, int(stack[sp-nd+i].I))
			}
			sp -= nd
			stack[sp] = in.newArray(n.Elem, lens)
			sp++
		case bytecode.OpCast:
			stack[sp-1] = in.castValue(stack[sp-1], ins.Node.(*ast.Cast))
		case bytecode.OpInstanceOf:
			n := ins.Node.(*ast.InstanceOf)
			v := stack[sp-1]
			in.meter.Step(energy.OpArithInt, 1)
			stack[sp-1] = BoolVal(in.valueInstanceOf(v, n.Name))
		case bytecode.OpThrow:
			n := ins.Node.(*ast.Throw)
			v := stack[sp-1]
			sp--
			if v.K != KThrow {
				in.bugf(n.Pos, "throw of non-throwable %v", v.K)
			}
			in.meter.Step(energy.OpThrow, 1)
			panic(javaPanic{v.R.(*Throwable)})
		case bytecode.OpSwitchTag:
			if stack[sp-1].K == KBox {
				stack[sp-1] = in.unbox(stack[sp-1], ins.Node.NodePos())
			}
		case bytecode.OpCaseCmp:
			n := ins.Node.(*ast.Switch)
			v := stack[sp-1]
			sp--
			in.meter.Step(energy.OpBranch, 1)
			if in.switchMatches(stack[sp-1], v, n.Pos) {
				sp-- // pop the tag; jump to the matched arm
				pc += int(ins.A)
				continue
			}
		case bytecode.OpSwitchEnd:
			sp--
			pc += int(ins.A)
			continue
		case bytecode.OpRet:
			return stack[sp-1], true
		case bytecode.OpRetVoid:
			return Value{}, ins.B != 0
		case bytecode.OpProbeEnter:
			if in.hook != nil {
				in.hook.Enter(fn.Probe)
			}
		case bytecode.OpProbeExit:
			if in.hook != nil {
				in.hook.Exit(fn.Probe)
			}
		default:
			panic(bugPanic{"vm: unknown opcode " + ins.Op.String()})
		}
		pc++
	}
}
