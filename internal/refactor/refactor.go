// Package refactor applies the mechanical Table I transformations the paper's
// validation performed on WEKA: narrowing primitive declarations
// (double→float, long→int, …), rewriting plain decimals to scientific
// notation, replacing non-Integer wrappers, eliminating hot static-field
// traffic, strength-reducing power-of-two modulus, expanding ternaries to
// if-then-else, converting string concatenation loops to StringBuilder,
// replacing compareTo equality tests with equals, replacing manual array-copy
// loops with System.arraycopy, and interchanging column-major loops.
//
// Apply mutates the given ASTs in place; callers who need the original keep
// the source text and re-parse.
package refactor

import (
	"fmt"

	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/token"
	"jepo/internal/suggest"
)

// Result summarizes an Apply run.
type Result struct {
	Changes int
	ByRule  map[suggest.Rule]int
}

func (r *Result) add(rule suggest.Rule, n int) {
	r.Changes += n
	r.ByRule[rule] += n
}

// Apply runs the requested rules (all auto rules when none are given) over
// the files and reports how many changes were made. The count corresponds to
// the "Changes" column of the paper's Table IV.
func Apply(files []*ast.File, rules ...suggest.Rule) *Result {
	enabled := map[suggest.Rule]bool{}
	if len(rules) == 0 {
		for _, r := range suggest.AllRules() {
			enabled[r] = true
		}
	} else {
		for _, r := range rules {
			enabled[r] = true
		}
	}
	res := &Result{ByRule: map[suggest.Rule]int{}}
	if enabled[suggest.RuleStaticKeyword] {
		hoistStatics(files, res)
	}
	for _, f := range files {
		for _, c := range f.Classes {
			for _, fd := range c.Fields {
				if enabled[suggest.RulePrimitiveTypes] {
					if narrowType(&fd.Type) {
						res.add(suggest.RulePrimitiveTypes, 1)
					}
				}
				if enabled[suggest.RuleWrapperClasses] {
					if integerizeWrapper(&fd.Type) {
						res.add(suggest.RuleWrapperClasses, 1)
					}
				}
				if fd.Init != nil && enabled[suggest.RuleScientificNotation] {
					res.add(suggest.RuleScientificNotation, scientificizeExpr(fd.Init))
				}
			}
			for _, m := range c.Methods {
				rw := &rewriter{res: res, enabled: enabled}
				for i := range m.Params {
					if enabled[suggest.RulePrimitiveTypes] && narrowType(&m.Params[i].Type) {
						res.add(suggest.RulePrimitiveTypes, 1)
					}
					if enabled[suggest.RuleWrapperClasses] && integerizeWrapper(&m.Params[i].Type) {
						res.add(suggest.RuleWrapperClasses, 1)
					}
				}
				if m.Body != nil {
					rw.block(m.Body)
				}
			}
		}
	}
	return res
}

// narrowType applies the primitive-type rule: long/short/byte→int,
// double→float. It reports whether the type changed.
func narrowType(t *ast.Type) bool {
	switch t.Kind {
	case ast.Long, ast.Short, ast.Byte:
		t.Kind = ast.Int
		return true
	case ast.Double:
		t.Kind = ast.Float
		return true
	}
	return false
}

// integerizeWrapper replaces integral wrappers with Integer.
func integerizeWrapper(t *ast.Type) bool {
	if t.Kind != ast.ClassType {
		return false
	}
	switch t.Name {
	case "Long", "Short", "Byte":
		t.Name = "Integer"
		return true
	}
	return false
}

// scientificizeExpr rewrites qualifying decimal literals inside an expression
// to scientific notation and reports how many were rewritten.
func scientificizeExpr(e ast.Expr) int {
	n := 0
	ast.Inspect(e, func(node ast.Node) bool {
		lit, ok := node.(*ast.Literal)
		if !ok {
			return true
		}
		if (lit.Kind == ast.LitDouble || lit.Kind == ast.LitFloat) && !lit.Sci && qualifiesForSci(lit.Raw) {
			lit.Raw = sciSpelling(lit)
			lit.Sci = true
			n++
		}
		return true
	})
	return n
}

func qualifiesForSci(raw string) bool {
	digits, zeros := 0, 0
	for _, c := range raw {
		if c >= '0' && c <= '9' {
			digits++
			if c == '0' {
				zeros++
			}
		}
	}
	return digits >= 5 && zeros >= 4
}

func sciSpelling(lit *ast.Literal) string {
	s := fmt.Sprintf("%g", lit.D)
	// %g already uses e-notation for large/small magnitudes; force it
	// otherwise (1e+06 and 100000 both round-trip, we want the former).
	if !containsE(s) {
		s = fmt.Sprintf("%e", lit.D)
		s = trimSciZeros(s)
	}
	if lit.Kind == ast.LitFloat {
		s += "f"
	}
	return s
}

func containsE(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == 'e' || s[i] == 'E' {
			return true
		}
	}
	return false
}

// trimSciZeros turns "1.000000e+05" into "1e+05".
func trimSciZeros(s string) string {
	e := -1
	for i := 0; i < len(s); i++ {
		if s[i] == 'e' {
			e = i
			break
		}
	}
	if e < 0 {
		return s
	}
	mant, exp := s[:e], s[e:]
	for len(mant) > 1 && mant[len(mant)-1] == '0' {
		mant = mant[:len(mant)-1]
	}
	if len(mant) > 1 && mant[len(mant)-1] == '.' {
		mant = mant[:len(mant)-1]
	}
	return mant + exp
}

// rewriter walks statements applying in-body rules.
type rewriter struct {
	res     *Result
	enabled map[suggest.Rule]bool
	// loop-index vars known to start at a non-negative literal and only
	// increment — safe targets for modulus strength reduction.
	nonNegLoopVars map[string]bool
}

func (rw *rewriter) block(b *ast.Block) {
	if rw.enabled[suggest.RuleStringConcat] {
		rw.concatToBuilder(b)
	}
	out := make([]ast.Stmt, 0, len(b.Stmts))
	for _, s := range b.Stmts {
		out = append(out, rw.stmt(s)...)
	}
	b.Stmts = out
}

// stmt rewrites one statement, possibly expanding it into several.
func (rw *rewriter) stmt(s ast.Stmt) []ast.Stmt {
	switch n := s.(type) {
	case *ast.Block:
		rw.block(n)
		return []ast.Stmt{n}
	case *ast.LocalVar:
		if rw.enabled[suggest.RulePrimitiveTypes] && narrowType(&n.Type) {
			rw.res.add(suggest.RulePrimitiveTypes, 1)
		}
		if rw.enabled[suggest.RuleWrapperClasses] && integerizeWrapper(&n.Type) {
			rw.res.add(suggest.RuleWrapperClasses, 1)
		}
		if n.Init != nil {
			// Ternary initializer → declare then if/else assign.
			if tern, ok := n.Init.(*ast.Ternary); ok && rw.enabled[suggest.RuleTernaryOperator] {
				rw.res.add(suggest.RuleTernaryOperator, 1)
				decl := &ast.LocalVar{Pos: n.Pos, Type: n.Type, Name: n.Name}
				ifs := rw.ternaryToIf(tern, func(e ast.Expr) ast.Stmt {
					return &ast.ExprStmt{Pos: e.NodePos(), X: &ast.Assign{
						Pos: e.NodePos(), Op: token.Assign,
						LHS: &ast.Ident{Pos: n.Pos, Name: n.Name}, RHS: e,
					}}
				})
				return append([]ast.Stmt{decl}, rw.stmt(ifs)...)
			}
			n.Init = rw.expr(n.Init)
		}
		return []ast.Stmt{n}
	case *ast.ExprStmt:
		if as, ok := n.X.(*ast.Assign); ok && as.Op == token.Assign && rw.enabled[suggest.RuleTernaryOperator] {
			if tern, ok := as.RHS.(*ast.Ternary); ok {
				rw.res.add(suggest.RuleTernaryOperator, 1)
				ifs := rw.ternaryToIf(tern, func(e ast.Expr) ast.Stmt {
					return &ast.ExprStmt{Pos: e.NodePos(), X: &ast.Assign{
						Pos: as.Pos, Op: token.Assign, LHS: as.LHS, RHS: e,
					}}
				})
				return rw.stmt(ifs)
			}
		}
		n.X = rw.expr(n.X)
		return []ast.Stmt{n}
	case *ast.If:
		n.Cond = rw.expr(n.Cond)
		n.Then = rw.one(n.Then)
		if n.Else != nil {
			n.Else = rw.one(n.Else)
		}
		return []ast.Stmt{n}
	case *ast.While:
		n.Cond = rw.expr(n.Cond)
		n.Body = rw.one(n.Body)
		return []ast.Stmt{n}
	case *ast.DoWhile:
		n.Body = rw.one(n.Body)
		n.Cond = rw.expr(n.Cond)
		return []ast.Stmt{n}
	case *ast.Switch:
		n.Tag = rw.expr(n.Tag)
		for ci := range n.Cases {
			for vi := range n.Cases[ci].Values {
				n.Cases[ci].Values[vi] = rw.expr(n.Cases[ci].Values[vi])
			}
			out := make([]ast.Stmt, 0, len(n.Cases[ci].Stmts))
			for _, st := range n.Cases[ci].Stmts {
				out = append(out, rw.stmt(st)...)
			}
			n.Cases[ci].Stmts = out
		}
		return []ast.Stmt{n}
	case *ast.For:
		return rw.forStmt(n)
	case *ast.Return:
		if tern, ok := n.X.(*ast.Ternary); ok && rw.enabled[suggest.RuleTernaryOperator] {
			rw.res.add(suggest.RuleTernaryOperator, 1)
			ifs := rw.ternaryToIf(tern, func(e ast.Expr) ast.Stmt {
				return &ast.Return{Pos: n.Pos, X: e}
			})
			return rw.stmt(ifs)
		}
		if n.X != nil {
			n.X = rw.expr(n.X)
		}
		return []ast.Stmt{n}
	case *ast.Throw:
		n.X = rw.expr(n.X)
		return []ast.Stmt{n}
	case *ast.Try:
		rw.block(n.Block)
		for _, c := range n.Catches {
			rw.block(c.Block)
		}
		if n.Finally != nil {
			rw.block(n.Finally)
		}
		return []ast.Stmt{n}
	}
	return []ast.Stmt{s}
}

// one rewrites a single nested statement, wrapping in a block if it expands.
func (rw *rewriter) one(s ast.Stmt) ast.Stmt {
	out := rw.stmt(s)
	if len(out) == 1 {
		return out[0]
	}
	return &ast.Block{Pos: s.NodePos(), Stmts: out}
}

func (rw *rewriter) ternaryToIf(t *ast.Ternary, mk func(ast.Expr) ast.Stmt) ast.Stmt {
	return &ast.If{
		Pos:  t.Pos,
		Cond: rw.expr(t.Cond),
		Then: &ast.Block{Pos: t.Pos, Stmts: []ast.Stmt{mk(t.Then)}},
		Else: &ast.Block{Pos: t.Pos, Stmts: []ast.Stmt{mk(t.Else)}},
	}
}

func (rw *rewriter) forStmt(n *ast.For) []ast.Stmt {
	// Manual copy loop → System.arraycopy.
	if rw.enabled[suggest.RuleArraysCopy] {
		if cl := suggest.MatchManualArrayCopy(n); cl != nil {
			if bound, ok := copyBound(n, cl.IndexVar); ok {
				rw.res.add(suggest.RuleArraysCopy, 1)
				zero := func() ast.Expr { return &ast.Literal{Pos: n.Pos, Kind: ast.LitInt, Raw: "0"} }
				call := &ast.Call{
					Pos:  n.Pos,
					Recv: &ast.Ident{Pos: n.Pos, Name: "System"},
					Name: "arraycopy",
					Args: []ast.Expr{
						&ast.Ident{Pos: n.Pos, Name: cl.Src}, zero(),
						&ast.Ident{Pos: n.Pos, Name: cl.Dst}, zero(),
						bound,
					},
				}
				return []ast.Stmt{&ast.ExprStmt{Pos: n.Pos, X: call}}
			}
		}
	}
	// Column-major nested loop → interchange.
	if rw.enabled[suggest.RuleArrayTraversal] {
		if suggest.MatchColumnTraversal(n) != nil {
			if inner, ok := innerFor(n); ok {
				rw.res.add(suggest.RuleArrayTraversal, 1)
				outerHdr := *n
				innerHdr := *inner
				// Swap loop headers, keep the innermost body.
				n.Init, n.Cond, n.Post = innerHdr.Init, innerHdr.Cond, innerHdr.Post
				inner.Init, inner.Cond, inner.Post = outerHdr.Init, outerHdr.Cond, outerHdr.Post
			}
		}
	}
	// Track non-negative counted loop vars for modulus strength reduction.
	if rw.nonNegLoopVars == nil {
		rw.nonNegLoopVars = map[string]bool{}
	}
	var tracked string
	if lv, ok := n.Init.(*ast.LocalVar); ok {
		if lit, isLit := lv.Init.(*ast.Literal); isLit && lit.Kind == ast.LitInt && lit.I >= 0 {
			if len(n.Post) == 1 {
				if u, isU := n.Post[0].(*ast.Unary); isU && u.Op == token.Inc {
					tracked = lv.Name
					rw.nonNegLoopVars[tracked] = true
				}
			}
		}
	}
	if n.Init != nil {
		n.Init = rw.one(n.Init)
	}
	if n.Cond != nil {
		n.Cond = rw.expr(n.Cond)
	}
	for i := range n.Post {
		n.Post[i] = rw.expr(n.Post[i])
	}
	n.Body = rw.one(n.Body)
	if tracked != "" {
		delete(rw.nonNegLoopVars, tracked)
	}
	return []ast.Stmt{n}
}

// copyBound extracts N from `i < N` (or `i <= N-…` is not handled).
func copyBound(f *ast.For, iv string) (ast.Expr, bool) {
	cond, ok := f.Cond.(*ast.Binary)
	if !ok || cond.Op != token.Lt {
		return nil, false
	}
	id, ok := cond.X.(*ast.Ident)
	if !ok || id.Name != iv {
		return nil, false
	}
	// The start index must be 0 for a plain arraycopy rewrite.
	lv, ok := f.Init.(*ast.LocalVar)
	if !ok {
		return nil, false
	}
	lit, ok := lv.Init.(*ast.Literal)
	if !ok || lit.Kind != ast.LitInt || lit.I != 0 {
		return nil, false
	}
	return cond.Y, true
}

func innerFor(f *ast.For) (*ast.For, bool) {
	body := f.Body
	if b, ok := body.(*ast.Block); ok && len(b.Stmts) == 1 {
		body = b.Stmts[0]
	}
	inner, ok := body.(*ast.For)
	return inner, ok
}

// expr rewrites expressions: ternary (nested, counted but left in place is
// wrong — nested ternaries in expressions are expanded only at statement
// level, so here we rewrite children), compareTo equality, power-of-two
// modulus, scientific notation.
func (rw *rewriter) expr(e ast.Expr) ast.Expr {
	switch n := e.(type) {
	case *ast.Literal:
		if rw.enabled[suggest.RuleScientificNotation] {
			rw.res.add(suggest.RuleScientificNotation, scientificizeExpr(n))
		}
		return n
	case *ast.Binary:
		n.X = rw.expr(n.X)
		n.Y = rw.expr(n.Y)
		if rw.enabled[suggest.RuleStringComparison] {
			if repl := compareToEquality(n); repl != nil {
				rw.res.add(suggest.RuleStringComparison, 1)
				return repl
			}
		}
		if rw.enabled[suggest.RuleModulusOperator] {
			if repl := rw.modulusToMask(n); repl != nil {
				rw.res.add(suggest.RuleModulusOperator, 1)
				return repl
			}
		}
		return n
	case *ast.Unary:
		n.X = rw.expr(n.X)
		return n
	case *ast.Assign:
		n.LHS = rw.expr(n.LHS)
		n.RHS = rw.expr(n.RHS)
		return n
	case *ast.Ternary:
		n.Cond = rw.expr(n.Cond)
		n.Then = rw.expr(n.Then)
		n.Else = rw.expr(n.Else)
		return n
	case *ast.Call:
		if n.Recv != nil {
			n.Recv = rw.expr(n.Recv)
		}
		for i := range n.Args {
			n.Args[i] = rw.expr(n.Args[i])
		}
		return n
	case *ast.Select:
		n.X = rw.expr(n.X)
		return n
	case *ast.Index:
		n.X = rw.expr(n.X)
		n.I = rw.expr(n.I)
		return n
	case *ast.New:
		for i := range n.Args {
			n.Args[i] = rw.expr(n.Args[i])
		}
		return n
	case *ast.NewArray:
		// Array allocations narrow along with the declarations that hold
		// them, otherwise a float[][] variable would keep double storage.
		if rw.enabled[suggest.RulePrimitiveTypes] && narrowType(&n.Elem) {
			rw.res.add(suggest.RulePrimitiveTypes, 1)
		}
		for i := range n.Lens {
			n.Lens[i] = rw.expr(n.Lens[i])
		}
		return n
	case *ast.Cast:
		n.X = rw.expr(n.X)
		return n
	case *ast.InstanceOf:
		n.X = rw.expr(n.X)
		return n
	}
	return e
}

// compareToEquality rewrites `a.compareTo(b) == 0` → `a.equals(b)` and
// `!= 0` → `!a.equals(b)`.
func compareToEquality(b *ast.Binary) ast.Expr {
	if b.Op != token.Eq && b.Op != token.Ne {
		return nil
	}
	call, lit := matchCallLit(b.X, b.Y)
	if call == nil {
		call, lit = matchCallLit(b.Y, b.X)
	}
	if call == nil || lit == nil || lit.I != 0 || lit.Kind != ast.LitInt {
		return nil
	}
	if call.Name != "compareTo" || len(call.Args) != 1 || call.Recv == nil {
		return nil
	}
	eq := &ast.Call{Pos: call.Pos, Recv: call.Recv, Name: "equals", Args: call.Args}
	if b.Op == token.Eq {
		return eq
	}
	return &ast.Unary{Pos: b.Pos, Op: token.Not, X: eq}
}

func matchCallLit(a, b ast.Expr) (*ast.Call, *ast.Literal) {
	call, ok := a.(*ast.Call)
	if !ok {
		return nil, nil
	}
	lit, ok := b.(*ast.Literal)
	if !ok {
		return nil, nil
	}
	return call, lit
}

// modulusToMask strength-reduces `i % 2^k` to `i & (2^k − 1)` when i is a
// counted loop variable known to stay non-negative.
func (rw *rewriter) modulusToMask(b *ast.Binary) ast.Expr {
	if b.Op != token.Percent {
		return nil
	}
	lit, ok := b.Y.(*ast.Literal)
	if !ok || lit.Kind != ast.LitInt || lit.I <= 0 || lit.I&(lit.I-1) != 0 {
		return nil
	}
	id, ok := b.X.(*ast.Ident)
	if !ok || !rw.nonNegLoopVars[id.Name] {
		return nil
	}
	mask := &ast.Literal{Pos: lit.Pos, Kind: ast.LitInt, I: lit.I - 1,
		Raw: fmt.Sprintf("%d", lit.I-1)}
	return &ast.Binary{Pos: b.Pos, Op: token.BitAnd, X: id, Y: mask}
}
