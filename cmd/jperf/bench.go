// The bench subcommand runs the Table I interpreter benchmark corpus and
// writes a JSON trajectory file pairing real wall-clock cost (ns/op) with
// simulated energy (µJ/op). Wall time tracks interpreter engineering across
// revisions; simulated energy is the modelled quantity and must stay fixed
// for a given cost table — a drift there is a correctness bug, not a
// performance change.
//
// With -passes the subcommand instead benchmarks the unified pass engine
// (one shared traversal vs per-rule traversals, see passes_bench.go) and
// writes BENCH_passes.json.
//
// With -vm the subcommand compares the two execution engines (see vm_bench.go)
// over the same corpus — wall clock under the tree-walker vs the bytecode VM,
// plus the probe-opcode overhead — and writes BENCH_vm.json. Simulated energy
// must be bit-identical between engines; a mismatch fails the run.
//
// With -cache the subcommand benchmarks the content-addressed artifact engine
// (nocache vs cold store vs warm store, see cache_bench.go) and writes
// BENCH_cache.json.
//
// With -serve the subcommand benchmarks the session daemon surface (an
// in-process jepod, see serve_bench.go): analyze over HTTP at 1, 4 and 8
// concurrent sessions, cold vs warm store, and writes BENCH_serve.json.
//
// Usage:
//
//	jperf bench [-o BENCH_interp.json] [-r repeats]
//	jperf bench -passes [-o BENCH_passes.json] [-r repeats]
//	jperf bench -vm [-o BENCH_vm.json] [-r repeats]
//	jperf bench -sched [-o BENCH_sched.json]
//	jperf bench -dist [-o BENCH_dist.json]
//	jperf bench -cache [-o BENCH_cache.json]
//	jperf bench -serve [-o BENCH_serve.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"jepo/internal/energy"
	"jepo/internal/minijava/interp"
	"jepo/internal/minijava/parser"
	"jepo/internal/tables"
)

// benchPoint is one benchmark's trajectory sample.
type benchPoint struct {
	Name       string  `json:"name"`
	Runs       int     `json:"runs"`
	NsPerOp    float64 `json:"ns_per_op"`
	UJPerOp    float64 `json:"uj_per_op"`
	SimUsPerOp float64 `json:"sim_us_per_op"`
}

// benchReport is the BENCH_interp.json document.
type benchReport struct {
	GeneratedAt string       `json:"generated_at"`
	GoVersion   string       `json:"go_version"`
	Benchmarks  []benchPoint `json:"benchmarks"`
}

func runBenchCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("o", "", "output JSON path")
	repeats := fs.Int("r", 5, "timed repeats per benchmark")
	passesBench := fs.Bool("passes", false, "benchmark the pass engine instead of the interpreter")
	vmBench := fs.Bool("vm", false, "compare the bytecode VM against the tree-walker")
	schedBench := fs.Bool("sched", false, "benchmark the deterministic worker pool: sequential vs -jobs {2,4,8}")
	distBench := fs.Bool("dist", false, "benchmark the fault-tolerant process dispatcher: inline vs -workers {2,4}")
	cacheBench := fs.Bool("cache", false, "benchmark the artifact cache: nocache vs cold vs warm store")
	serveBench := fs.Bool("serve", false, "benchmark the session daemon: analyze over HTTP at 1/4/8 concurrent sessions, cold vs warm")
	meterBench := fs.Bool("meter", false, "quantify the metering floor: full VM fastpath on/off vs meter-only replay, per Table I row")
	engineName := fs.String("engine", "vm", "execution engine for the plain trajectory: vm or ast")
	prof := registerProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := prof.start(); err != nil {
		return err
	}
	defer prof.stop()
	engine, err := interp.ParseEngine(*engineName)
	if err != nil {
		return err
	}
	if *repeats < 1 {
		return fmt.Errorf("need at least 1 repeat, got %d", *repeats)
	}
	if *passesBench {
		if *out == "" {
			*out = "BENCH_passes.json"
		}
		return runPassesBench(*out, *repeats)
	}
	if *vmBench {
		if *out == "" {
			*out = "BENCH_vm.json"
		}
		return runVMBench(*out, *repeats)
	}
	if *schedBench {
		if *out == "" {
			*out = "BENCH_sched.json"
		}
		return runSchedBench(ctx, *out)
	}
	if *distBench {
		if *out == "" {
			*out = "BENCH_dist.json"
		}
		return runDistBench(ctx, *out)
	}
	if *cacheBench {
		if *out == "" {
			*out = "BENCH_cache.json"
		}
		return runCacheBench(ctx, *out)
	}
	if *serveBench {
		if *out == "" {
			*out = "BENCH_serve.json"
		}
		return runServeBench(ctx, *out)
	}
	if *meterBench {
		if *out == "" {
			*out = "BENCH_meter.json"
		}
		return runMeterBench(*out, *repeats)
	}
	if *out == "" {
		*out = "BENCH_interp.json"
	}

	report := benchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
	}
	for _, b := range tables.InterpBenches() {
		pt, err := runBenchOne(b, *repeats, engine)
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		report.Benchmarks = append(report.Benchmarks, pt)
		fmt.Printf("%-40s %12.0f ns/op %12.1f µJ/op\n", pt.Name, pt.NsPerOp, pt.UJPerOp)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(report.Benchmarks))
	return nil
}

// runBenchOne loads one program and measures repeats calls of B.f on a
// single interpreter, so frame pools and call-site caches stay warm exactly
// as they do inside one simulated measurement run. One untimed warmup call
// precedes the timed window.
func runBenchOne(b tables.InterpBench, repeats int, engine interp.Engine) (benchPoint, error) {
	f, err := parser.Parse("bench.java", b.Src)
	if err != nil {
		return benchPoint{}, err
	}
	prog, err := interp.Load(f)
	if err != nil {
		return benchPoint{}, err
	}
	in := interp.New(prog, energy.NewMeter(energy.DefaultCosts()), interp.WithMaxOps(2_000_000_000), interp.WithEngine(engine))
	if err := in.InitStatics(); err != nil {
		return benchPoint{}, err
	}
	if _, err := in.CallStatic("B", "f"); err != nil {
		return benchPoint{}, err
	}

	before := in.Meter().Snapshot()
	t0 := time.Now()
	for i := 0; i < repeats; i++ {
		if _, err := in.CallStatic("B", "f"); err != nil {
			return benchPoint{}, err
		}
	}
	wall := time.Since(t0)
	d := in.Meter().Snapshot().Sub(before)

	r := float64(repeats)
	return benchPoint{
		Name:       b.Name,
		Runs:       repeats,
		NsPerOp:    float64(wall.Nanoseconds()) / r,
		UJPerOp:    float64(d.Package) * 1e6 / r,
		SimUsPerOp: d.Elapsed.Seconds() * 1e6 / r,
	}, nil
}
