package service

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(Handler(svc))
	t.Cleanup(func() { ts.Close(); svc.Close() })
	return svc, ts
}

func do(t *testing.T, method, url, body string, hdr map[string]string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func createHTTPSession(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, body := do(t, "POST", ts.URL+"/v1/sessions", "", nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session: %d %s", resp.StatusCode, body)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	return out.ID
}

// TestHTTPAnalyzeRaw is the serve gate's identity contract in miniature:
// the raw response body equals the CLI rendering, byte for byte.
func TestHTTPAnalyzeRaw(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	id := createHTTPSession(t, ts)
	resp, body := do(t, "PUT", ts.URL+"/v1/sessions/"+id+"/files/Work.java", workSrc, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("put file: %d %s", resp.StatusCode, body)
	}
	resp, body = do(t, "POST", ts.URL+"/v1/sessions/"+id+"/analyze", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d %s", resp.StatusCode, body)
	}
	s, err := svc.Session(id)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := s.Analyze(context.Background(), Request{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if body != direct.Output {
		t.Errorf("HTTP raw body diverges from service output:\n--- http ---\n%s\n--- direct ---\n%s", body, direct.Output)
	}
}

// TestHTTPSSE asserts the streaming mode: progress events precede exactly
// one result event whose output matches the raw mode.
func TestHTTPSSE(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := createHTTPSession(t, ts)
	if resp, body := do(t, "PUT", ts.URL+"/v1/sessions/"+id+"/files/Work.java", workSrc, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("put file: %d %s", resp.StatusCode, body)
	}

	req, err := http.NewRequest("POST", ts.URL+"/v1/sessions/"+id+"/analyze", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	var stages []string
	var resultOutput string
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var event string
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			if event == "progress" {
				var ev Event
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Fatalf("bad progress payload %q: %v", data, err)
				}
				stages = append(stages, ev.Stage)
			}
			if event == "result" {
				var res struct {
					Output string `json:"output"`
				}
				if err := json.Unmarshal([]byte(data), &res); err != nil {
					t.Fatalf("bad result payload: %v", err)
				}
				resultOutput = res.Output
			}
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if len(stages) < 3 || stages[0] != "queued" || stages[1] != "running" {
		t.Errorf("SSE stages = %v", stages)
	}
	if resultOutput == "" {
		t.Fatal("no result event received")
	}
	// The streamed result matches the raw mode byte for byte.
	if _, raw := do(t, "POST", ts.URL+"/v1/sessions/"+id+"/analyze", "", nil); raw != resultOutput {
		t.Error("SSE result output diverges from raw mode")
	}
}

func TestHTTPTable2Raw(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := do(t, "POST", ts.URL+"/v1/tables/2", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("table 2: %d %s", resp.StatusCode, body)
	}
	if !strings.HasPrefix(body, "=== Table II: WEKA classifier metrics ===\n") {
		t.Errorf("table 2 body missing header:\n%.80s", body)
	}
	if resp, _ := do(t, "POST", ts.URL+"/v1/tables/9", "", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("table 9: status %d, want 400", resp.StatusCode)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if resp, _ := do(t, "POST", ts.URL+"/v1/sessions/nope/analyze", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session: status %d, want 404", resp.StatusCode)
	}
	id := createHTTPSession(t, ts)
	// Empty session: analyze is a 400.
	if resp, _ := do(t, "POST", ts.URL+"/v1/sessions/"+id+"/analyze", "", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty session analyze: status %d, want 400", resp.StatusCode)
	}
	// Malformed request body.
	if resp, _ := do(t, "POST", ts.URL+"/v1/sessions/"+id+"/analyze", "{not json", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body: status %d, want 400", resp.StatusCode)
	}
	// Delete, then the session is gone.
	if resp, _ := do(t, "DELETE", ts.URL+"/v1/sessions/"+id, "", nil); resp.StatusCode != http.StatusNoContent {
		t.Errorf("delete session: status %d", resp.StatusCode)
	}
	if resp, _ := do(t, "GET", ts.URL+"/v1/sessions/"+id+"/files", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("files of deleted session: status %d, want 404", resp.StatusCode)
	}
}

// TestHTTPSaturated asserts the gate's shed path surfaces as 503.
func TestHTTPSaturated(t *testing.T) {
	svc, ts := newTestServer(t, Config{Slots: 1, MaxQueue: 0})
	id := createHTTPSession(t, ts)
	if resp, body := do(t, "PUT", ts.URL+"/v1/sessions/"+id+"/files/Work.java", workSrc, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("put file: %d %s", resp.StatusCode, body)
	}
	release, err := svc.gate.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := do(t, "POST", ts.URL+"/v1/sessions/"+id+"/analyze", "", nil)
	release()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("saturated analyze: status %d, want 503", resp.StatusCode)
	}
}

func TestHTTPStats(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := do(t, "GET", ts.URL+"/v1/stats", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d %s", resp.StatusCode, body)
	}
	var out struct {
		Gate     map[string]int `json:"gate"`
		Cache    string         `json:"cache"`
		Sessions int            `json:"sessions"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.Cache == "" {
		t.Error("stats missing cache line")
	}
}
