// Package tables regenerates every table of the paper's evaluation:
// Table I (component energy ratios behind the suggestions), Table II
// (per-classifier WEKA metrics), Table III (the airlines schema) and
// Table IV (the end-to-end WEKA refactoring validation). Each function
// returns structured rows plus a renderer that matches the paper's layout.
package tables

import (
	"context"
	"fmt"
	"strings"

	"jepo/internal/energy"
	"jepo/internal/engine"
	"jepo/internal/minijava/interp"
	"jepo/internal/sched"
	"jepo/internal/suggest"
)

// Table1Row is one measured component comparison.
type Table1Row struct {
	Rule        suggest.Rule
	Component   string
	Suggestion  string
	PaperClaim  string  // the "up to N%" figure Table I quotes
	MeasuredPct float64 // measured extra energy of the inefficient variant
}

// table1Bench is a pair of programs: the inefficient variant and the
// efficient one the suggestion recommends. Both expose `static double f()`
// in class B (for bench) and must compute comparable results.
type table1Bench struct {
	rule       suggest.Rule
	paperClaim string
	slow, fast string
}

const table1Iters = "20000"

var table1Benches = []table1Bench{
	{
		rule:       suggest.RulePrimitiveTypes,
		paperClaim: "int is the most energy-efficient primitive",
		slow: `class B { static double f() {
			double s = 0.0;
			for (int i = 0; i < ` + table1Iters + `; i++) { s = s + i; }
			return s;
		} }`,
		fast: `class B { static double f() {
			int s = 0;
			for (int i = 0; i < ` + table1Iters + `; i++) { s = s + i; }
			return s;
		} }`,
	},
	{
		rule:       suggest.RuleScientificNotation,
		paperClaim: "scientific notation is cheaper for decimals",
		slow: `class B { static double f() {
			double s = 0.0;
			for (int i = 0; i < ` + table1Iters + `; i++) { s = s + 100000.0; }
			return s;
		} }`,
		fast: `class B { static double f() {
			double s = 0.0;
			for (int i = 0; i < ` + table1Iters + `; i++) { s = s + 1e5; }
			return s;
		} }`,
	},
	{
		rule:       suggest.RuleWrapperClasses,
		paperClaim: "Integer is the most energy-efficient wrapper",
		slow: `class B { static double f() {
			int s = 0;
			for (int i = 0; i < 2000; i++) {
				Long v = Long.valueOf(i % 100);
				s += v.intValue();
			}
			return s;
		} }`,
		fast: `class B { static double f() {
			int s = 0;
			for (int i = 0; i < 2000; i++) {
				Integer v = Integer.valueOf(i % 100);
				s += v.intValue();
			}
			return s;
		} }`,
	},
	{
		rule:       suggest.RuleStaticKeyword,
		paperClaim: "static +17,700%",
		slow: `class B {
			static int acc;
			static double f() {
				for (int i = 0; i < ` + table1Iters + `; i++) { acc += i; }
				return acc;
			}
		}`,
		fast: `class B { static double f() {
			int acc = 0;
			for (int i = 0; i < ` + table1Iters + `; i++) { acc += i; }
			return acc;
		} }`,
	},
	{
		rule:       suggest.RuleModulusOperator,
		paperClaim: "modulus +1,620%",
		slow: `class B { static double f() {
			int s = 0;
			for (int i = 1; i < ` + table1Iters + `; i++) { s += i % 7; }
			return s;
		} }`,
		fast: `class B { static double f() {
			int s = 0;
			for (int i = 1; i < ` + table1Iters + `; i++) { s += i * 7; }
			return s;
		} }`,
	},
	{
		rule:       suggest.RuleTernaryOperator,
		paperClaim: "ternary +37%",
		slow: `class B { static double f() {
			int s = 0;
			for (int i = 0; i < ` + table1Iters + `; i++) {
				s += i > 10000 ? 2 : 1;
			}
			return s;
		} }`,
		fast: `class B { static double f() {
			int s = 0;
			for (int i = 0; i < ` + table1Iters + `; i++) {
				if (i > 10000) { s += 2; } else { s += 1; }
			}
			return s;
		} }`,
	},
	{
		rule:       suggest.RuleShortCircuit,
		paperClaim: "most common case first",
		// i > 3 is true for nearly every iteration; testing it first
		// short-circuits the expensive second test.
		slow: `class B { static double f() {
			int s = 0;
			for (int i = 0; i < ` + table1Iters + `; i++) {
				if (i % 9999 == 0 || i > 3) { s++; }
			}
			return s;
		} }`,
		fast: `class B { static double f() {
			int s = 0;
			for (int i = 0; i < ` + table1Iters + `; i++) {
				if (i > 3 || i % 9999 == 0) { s++; }
			}
			return s;
		} }`,
	},
	{
		rule:       suggest.RuleStringConcat,
		paperClaim: "StringBuilder ≪ concatenation",
		slow: `class B { static double f() {
			String s = "";
			for (int i = 0; i < 400; i++) { s = s + "x"; }
			return s.length();
		} }`,
		fast: `class B { static double f() {
			StringBuilder sb = new StringBuilder();
			for (int i = 0; i < 400; i++) { sb.append("x"); }
			return sb.toString().length();
		} }`,
	},
	{
		rule:       suggest.RuleStringComparison,
		paperClaim: "compareTo +33%",
		slow: `class B { static double f() {
			String a = "airlinesAirlines";
			String b = "airlinesAirlines";
			int s = 0;
			for (int i = 0; i < 4000; i++) {
				if (a.compareTo(b) == 0) { s++; }
			}
			return s;
		} }`,
		fast: `class B { static double f() {
			String a = "airlinesAirlines";
			String b = "airlinesAirlines";
			int s = 0;
			for (int i = 0; i < 4000; i++) {
				if (a.equals(b)) { s++; }
			}
			return s;
		} }`,
	},
	{
		rule:       suggest.RuleArraysCopy,
		paperClaim: "System.arraycopy is the best copy",
		slow: `class B { static double f() {
			int[] a = new int[4000];
			int[] b = new int[4000];
			for (int r = 0; r < 10; r++) {
				for (int i = 0; i < 4000; i++) { b[i] = a[i]; }
			}
			return b[3999];
		} }`,
		fast: `class B { static double f() {
			int[] a = new int[4000];
			int[] b = new int[4000];
			for (int r = 0; r < 10; r++) {
				System.arraycopy(a, 0, b, 0, 4000);
			}
			return b[3999];
		} }`,
	},
	{
		rule:       suggest.RuleArrayTraversal,
		paperClaim: "column traversal +793%",
		slow: `class B { static double f() {
			int[][] m = new int[600][600];
			int s = 0;
			for (int j = 0; j < 600; j++) {
				for (int i = 0; i < 600; i++) { s += m[i][j]; }
			}
			return s;
		} }`,
		fast: `class B { static double f() {
			int[][] m = new int[600][600];
			int s = 0;
			for (int i = 0; i < 600; i++) {
				for (int j = 0; j < 600; j++) { s += m[i][j]; }
			}
			return s;
		} }`,
	},
}

// InterpBench is one named interpreter benchmark program: a Table I variant
// exposing `static double f()` in class B.
type InterpBench struct {
	Name string
	Src  string
}

// InterpBenches exposes the Table I benchmark corpus to external harnesses
// (cmd/jperf bench) that track interpreter wall-clock and simulated-energy
// trajectories across revisions.
func InterpBenches() []InterpBench {
	out := make([]InterpBench, 0, 2*len(table1Benches))
	for _, b := range table1Benches {
		out = append(out,
			InterpBench{Name: fmt.Sprintf("%v/inefficient", b.rule), Src: b.slow},
			InterpBench{Name: fmt.Sprintf("%v/efficient", b.rule), Src: b.fast},
		)
	}
	return out
}

// measureBench runs one program variant and returns its package energy. The
// run goes through the artifact engine: the parse, the compiled program and
// the measured sample are all content-addressed, so re-measuring an unchanged
// variant (repeat runs, the efficient twin of a pair sharing core files) is a
// cache hit with bit-identical joules.
func measureBench(ctx context.Context, src string, eng interp.Engine) (energy.Joules, error) {
	s, err := engine.Default().Sample(ctx,
		[]engine.Source{{Path: "bench.java", Source: src}},
		engine.RunSpec{CallClass: "B", CallMethod: "f", MaxOps: 200_000_000, Engine: eng})
	if err != nil {
		return 0, err
	}
	return s.Package, nil
}

// Table1 measures every component pair and returns the rows in the paper's
// order. Every number is produced by executing both variants on the
// energy-model interpreter and comparing package energy. See Table1Jobs for
// the pooled form.
func Table1(ctx context.Context, engine interp.Engine) ([]Table1Row, error) {
	rows, _, err := Table1Jobs(ctx, engine, 1)
	return rows, err
}

// Table1Count is the number of component pairs Table I measures.
func Table1Count() int { return len(table1Benches) }

// Table1Pair measures one component pair by paper-order index: both
// variants on fresh parser/interpreter/meter instances, so pairs are fully
// independent of each other. This is the task unit both the sched pool and
// the dist "table1" campaign shard.
func Table1Pair(ctx context.Context, i int, engine interp.Engine) (Table1Row, error) {
	if i < 0 || i >= len(table1Benches) {
		return Table1Row{}, fmt.Errorf("tables: table 1 pair %d out of range", i)
	}
	b := table1Benches[i]
	slow, err := measureBench(ctx, b.slow, engine)
	if err != nil {
		return Table1Row{}, fmt.Errorf("tables: %v slow variant: %w", b.rule, err)
	}
	fast, err := measureBench(ctx, b.fast, engine)
	if err != nil {
		return Table1Row{}, fmt.Errorf("tables: %v fast variant: %w", b.rule, err)
	}
	return Table1Row{
		Rule:        b.rule,
		Component:   b.rule.Component(),
		Suggestion:  b.rule.Text(),
		PaperClaim:  b.paperClaim,
		MeasuredPct: 100 * (float64(slow)/float64(fast) - 1),
	}, nil
}

// Table1Jobs measures the Table I component pairs on a bounded worker pool.
// Each bench pair builds its own parser/interpreter/meter instances, so rows
// are independent; committed in paper order they are bit-identical at any
// jobs count.
func Table1Jobs(ctx context.Context, engine interp.Engine, jobs int) ([]Table1Row, sched.Telemetry, error) {
	return sched.Map(ctx, sched.Config{Jobs: jobs}, table1Benches,
		func(task sched.Task, _ table1Bench) (Table1Row, error) {
			return Table1Pair(ctx, task.Index, engine)
		})
}

// RenderTable1 lays the rows out like the paper's Table I, with the measured
// column appended.
func RenderTable1(rows []Table1Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-30s %14s  %s\n", "Java Components", "Measured", "Suggestion")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-30s %+13.1f%%  %s\n", r.Component, r.MeasuredPct, r.Suggestion)
	}
	return sb.String()
}
