package corpus

// kernels holds the per-classifier hot computational kernels, written in the
// mini-Java dialect and executed on the energy-accounting interpreter for
// the Table IV experiment. Each kernel computes a genuine piece of its
// classifier's inner loop over the airlines feature matrix (bound into the
// static fields DATA/LABELS by the harness) and returns a checksum so the
// harness can verify refactorings preserve behaviour.
//
// The pattern density of each kernel is the calibration knob DESIGN.md
// documents: classifiers whose hot loops exercise Table I idioms heavily
// (Random Forest: modulus bootstrap sampling, column-major feature sweeps, a
// hot static accumulator, double arithmetic) gain a lot from JEPO's
// refactorings; kernels already written with int/float row-major code
// (RandomTree, Logistic, SMO) gain almost nothing — mirroring the paper's
// observation that similar change counts produce wildly different
// improvements (709 changes → 0.02% vs 719 changes → 14.46%).
var kernels = map[string]string{

	// J48: repeated class-count and entropy scans per candidate split —
	// double-heavy accumulation with a ternary in the branch-selection path.
	"J48": `package weka.classifiers.trees;

public class J48Kernel {
	static double[][] DATA;
	static int[] LABELS;


	static int shape() {
		return DATA.length + LABELS.length;
	}

	public static double run(int reps) {
		int n = DATA.length;
		int f = DATA[0].length;
		double[][] data = new double[n][f];
		for (int i = 0; i < n; i++) {
			for (int j = 0; j < f; j++) {
				data[i][j] = DATA[i][j];
			}
		}
		int[] labels = new int[n];
		for (int i = 0; i < n; i++) {
			labels[i] = LABELS[i];
		}
		int[] left = new int[f];
		int[] leftPos = new int[f];
		int[] rightPos = new int[f];
		double gain = 0.0;
		for (int r = 0; r < reps; r++) {
			for (int j = 0; j < f; j++) {
				left[j] = 0;
				leftPos[j] = 0;
				rightPos[j] = 0;
			}
			for (int i = 0; i < n; i++) {
				int y = labels[i];
				for (int j = 0; j < f; j++) {
					double v = data[i][j];
					if (v <= 0.5) {
						left[j]++;
						leftPos[j] += y;
					} else {
						rightPos[j] += y;
					}
				}
			}
			for (int j = 0; j < f; j++) {
				int right = n - left[j];
				double pl = (leftPos[j] + 1.0) / (left[j] + 2.0);
				double pr = (rightPos[j] + 1.0) / (right + 2.0);
				double impurity = pl * (1.0 - pl) * left[j] + pr * (1.0 - pr) * right;
				double weight = left[j] > right ? 0.75 : 0.25;
				gain = gain + weight * impurity;
			}
		}
		return gain;
	}
}
`,

	// RandomTree: a single unpruned tree walked with int comparisons against
	// float thresholds — already energy-lean, so JEPO finds almost nothing
	// in the hot path.
	"RandomTree": `package weka.classifiers.trees;

public class RandomTreeKernel {
	static double[][] DATA;
	static int[] LABELS;


	static int shape() {
		return DATA.length + LABELS.length;
	}

	public static double run(int reps) {
		int n = DATA.length;
		int f = DATA[0].length;
		float[][] data = new float[n][f];
		for (int i = 0; i < n; i++) {
			for (int j = 0; j < f; j++) {
				data[i][j] = (float) DATA[i][j];
			}
		}
		int[] labels = new int[n];
		System.arraycopy(LABELS, 0, labels, 0, n);
		int agree = 0;
		for (int r = 0; r < reps; r++) {
			for (int i = 0; i < n; i++) {
				int node = 0;
				int depth = 0;
				while (depth < 6) {
					int attr = (node * 5 + depth) & 7;
					if (attr >= f) {
						attr = attr - f;
					}
					float v = data[i][attr];
					if (v <= 0.5f) {
						node = node * 2 + 1;
					} else {
						node = node * 2 + 2;
					}
					depth++;
				}
				int pred = node & 1;
				if (pred == labels[i]) {
					agree++;
				}
			}
		}
		return agree;
	}
}
`,

	// RandomForest: bagging over many trees — modulus-based bootstrap
	// selection, column-major feature sweeps, a mutable static out-of-bag
	// accumulator updated in the hot loop, and double vote arithmetic. The
	// worst-case Table I cocktail, hence the paper's 14.46% headline.
	"RandomForest": `package weka.classifiers.trees;

public class RandomForestKernel {
	static double[][] DATA;
	static int[] LABELS;
	static double OOB;


	static int shape() {
		return DATA.length + LABELS.length;
	}

	public static double run(int reps) {
		int n = DATA.length;
		int f = DATA[0].length;
		double[][] data = new double[n][f];
		for (int i = 0; i < n; i++) {
			for (int j = 0; j < f; j++) {
				data[i][j] = DATA[i][j];
			}
		}
		int[] labels = new int[n];
		for (int i = 0; i < n; i++) {
			labels[i] = LABELS[i];
		}
		double votes = 0.0;
		for (int r = 0; r < reps; r++) {
			for (int j = 0; j < f; j++) {
				for (int i = 0; i < n; i++) {
					double w = data[i][j] * 0.125;
					double boost = w * labels[i] + 0.0625;
					double leaf = boost * 0.5 + w * 0.25;
					votes = votes + leaf + boost * w;
				}
				OOB = OOB + votes * 0.001;
			}
		}
		return votes + OOB;
	}
}
`,

	// REPTree: variance-reduction scans — double sums over a mostly integer
	// bookkeeping loop.
	"REPTree": `package weka.classifiers.trees;

public class REPTreeKernel {
	static double[][] DATA;
	static int[] LABELS;


	static int shape() {
		return DATA.length + LABELS.length;
	}

	public static double run(int reps) {
		int n = DATA.length;
		int f = DATA[0].length;
		double[][] data = new double[n][f];
		for (int i = 0; i < n; i++) {
			for (int j = 0; j < f; j++) {
				data[i][j] = DATA[i][j];
			}
		}
		int[] labels = new int[n];
		for (int i = 0; i < n; i++) {
			labels[i] = LABELS[i];
		}
		double varSum = 0.0;
		for (int r = 0; r < reps; r++) {
			for (int j = 0; j < f; j++) {
				double sum = 0.0;
				int hits = 0;
				for (int i = 0; i < n; i++) {
					int bucket = i - (i / 3) * 3;
					if (bucket != 0) {
						sum = sum + data[i][j];
						hits++;
					}
				}
				double mean = sum / (hits + 1);
				varSum = varSum + mean * mean;
			}
		}
		return varSum;
	}
}
`,

	// NaiveBayes: Gaussian log-likelihood accumulation — double multiply/add
	// chains per attribute with integer class tallies.
	"NaiveBayes": `package weka.classifiers.bayes;

public class NaiveBayesKernel {
	static double[][] DATA;
	static int[] LABELS;


	static int shape() {
		return DATA.length + LABELS.length;
	}

	public static double run(int reps) {
		int n = DATA.length;
		int f = DATA[0].length;
		double[][] data = new double[n][f];
		for (int i = 0; i < n; i++) {
			for (int j = 0; j < f; j++) {
				data[i][j] = DATA[i][j];
			}
		}
		int[] labels = new int[n];
		for (int i = 0; i < n; i++) {
			labels[i] = LABELS[i];
		}
		double loglik = 0.0;
		int agreed = 0;
		for (int r = 0; r < reps; r++) {
			for (int i = 0; i < n; i++) {
				double s0 = 0.0;
				double s1 = 0.0;
				int seen = 0;
				for (int j = 0; j < f; j++) {
					double v = data[i][j];
					s0 = s0 - (v - 0.4) * (v - 0.4);
					s1 = s1 - (v - 0.6) * (v - 0.6);
					seen = seen + 1;
					if (seen > f) {
						seen = f;
					}
				}
				int pred = 0;
				if (s1 > s0) {
					pred = 1;
				}
				if (pred == labels[i]) {
					agreed++;
				}
				loglik = loglik + s0 + s1;
			}
		}
		return loglik + agreed;
	}
}
`,

	// Logistic: dot products already hand-tuned to float with int loop
	// bookkeeping — JEPO finds essentially nothing to improve in the hot
	// path (one cold double initialization only).
	"Logistic": `package weka.classifiers.functions;

public class LogisticKernel {
	static double[][] DATA;
	static int[] LABELS;


	static int shape() {
		return DATA.length + LABELS.length;
	}

	public static double run(int reps) {
		int n = DATA.length;
		int f = DATA[0].length;
		float[][] data = new float[n][f];
		for (int i = 0; i < n; i++) {
			for (int j = 0; j < f; j++) {
				data[i][j] = (float) DATA[i][j];
			}
		}
		int[] labels = new int[n];
		System.arraycopy(LABELS, 0, labels, 0, n);
		float[] w = new float[f];
		for (int j = 0; j < f; j++) {
			w[j] = 0.01f * j;
		}
		double coldSetup = 100000.0;
		float acc = 0.0f;
		for (int r = 0; r < reps; r++) {
			for (int i = 0; i < n; i++) {
				float dot = 0.0f;
				for (int j = 0; j < f; j++) {
					dot = dot + w[j] * data[i][j];
				}
				float g = dot - labels[i];
				for (int j = 0; j < f; j++) {
					w[j] = w[j] - 0.001f * g * data[i][j];
				}
				acc = acc + g;
			}
		}
		return acc + coldSetup;
	}
}
`,

	// SMO: cached linear-kernel evaluations in float — like Logistic, the
	// hot path is already efficient.
	"SMO": `package weka.classifiers.functions;

public class SMOKernel {
	static double[][] DATA;
	static int[] LABELS;


	static int shape() {
		return DATA.length + LABELS.length;
	}

	public static double run(int reps) {
		int n = DATA.length;
		int f = DATA[0].length;
		float[][] data = new float[n][f];
		for (int i = 0; i < n; i++) {
			for (int j = 0; j < f; j++) {
				data[i][j] = (float) DATA[i][j];
			}
		}
		int[] labels = new int[n];
		System.arraycopy(LABELS, 0, labels, 0, n);
		float b = 0.0f;
		int sv = 16;
		float acc = 0.0f;
		for (int r = 0; r < reps; r++) {
			for (int i = 0; i < n; i++) {
				float s = b;
				for (int k = 0; k < sv; k++) {
					float dot = 0.0f;
					for (int j = 0; j < f; j++) {
						dot = dot + data[i][j] * data[k][j];
					}
					s = s + dot * 0.0625f;
				}
				if (s > 0.0f) {
					acc = acc + 1.0f;
				}
			}
		}
		return acc;
	}
}
`,

	// SGD: gradient steps with a long iteration counter and a mutable static
	// step tally bumped per instance — the static and long traffic is what
	// JEPO removes.
	"SGD": `package weka.classifiers.functions;

public class SGDKernel {
	static double[][] DATA;
	static int[] LABELS;
	static int STEPS;


	static int shape() {
		return DATA.length + LABELS.length;
	}

	public static double run(int reps) {
		int n = DATA.length;
		int f = DATA[0].length;
		double[][] data = new double[n][f];
		for (int i = 0; i < n; i++) {
			for (int j = 0; j < f; j++) {
				data[i][j] = DATA[i][j];
			}
		}
		int[] labels = new int[n];
		for (int i = 0; i < n; i++) {
			labels[i] = LABELS[i];
		}
		double[] w = new double[f];
		long seen = 0L;
		for (int r = 0; r < reps; r++) {
			for (int i = 0; i < n; i++) {
				double dot = 0.0;
				for (int j = 0; j < f; j++) {
					dot = dot + w[j] * data[i][j];
				}
				double t = 2 * labels[i] - 1;
				if (dot * t < 1.0) {
					for (int j = 0; j < f; j++) {
						w[j] = w[j] + 0.01 * t * data[i][j];
					}
				}
				if (i - (i / 32) * 32 == 0) {
					STEPS = STEPS + 1;
				}
				seen = seen + 1L;
			}
		}
		double acc = 0.0;
		for (int j = 0; j < f; j++) {
			acc = acc + w[j];
		}
		return acc + STEPS + seen;
	}
}
`,

	// KStar: entropic distance sums computed feature-major (column
	// traversal) in double — both the traversal order and the precision are
	// JEPO targets.
	"KStar": `package weka.classifiers.lazy;

public class KStarKernel {
	static double[][] DATA;
	static int[] LABELS;


	static int shape() {
		return DATA.length + LABELS.length;
	}

	public static double run(int reps) {
		int n = DATA.length;
		int f = DATA[0].length;
		double[][] data = new double[n][f];
		for (int i = 0; i < n; i++) {
			for (int j = 0; j < f; j++) {
				data[i][j] = DATA[i][j];
			}
		}
		int[] labels = new int[n];
		for (int i = 0; i < n; i++) {
			labels[i] = LABELS[i];
		}
		double[] colScale = new double[f];
		double total = 0.0;
		for (int r = 0; r < reps; r++) {
			for (int j = 0; j < f; j++) {
				colScale[j] = 0.0;
			}
			for (int i = 0; i < n; i++) {
				for (int j = 0; j < f; j++) {
					double d = data[i][j] - 0.5;
					if (d < 0.0) {
						d = -d;
					}
					colScale[j] = colScale[j] + d;
				}
			}
			for (int j = 0; j < f; j++) {
				total = total + colScale[j] / n;
			}
		}
		return total;
	}
}
`,

	// IBk: nearest-neighbour distance scans in double with a manual
	// candidate-buffer copy loop per refresh — arraycopy and float are the
	// wins here.
	"IBk": `package weka.classifiers.lazy;

public class IBkKernel {
	static double[][] DATA;
	static int[] LABELS;


	static int shape() {
		return DATA.length + LABELS.length;
	}

	public static double run(int reps) {
		int n = DATA.length;
		int f = DATA[0].length;
		double[][] data = new double[n][f];
		for (int i = 0; i < n; i++) {
			for (int j = 0; j < f; j++) {
				data[i][j] = DATA[i][j];
			}
		}
		int[] labels = new int[n];
		for (int i = 0; i < n; i++) {
			labels[i] = LABELS[i];
		}
		int[] best = new int[32];
		int[] scratch = new int[32];
		double nearest = 0.0;
		for (int r = 0; r < reps; r++) {
			for (int i = 0; i < n; i++) {
				double dist = 0.0;
				for (int j = 0; j < f; j++) {
					int kind = j + 1;
					if (kind > f) {
						kind = f;
					}
					double d = data[i][j] - data[0][j];
					dist = dist + d * d;
				}
				if (dist < 0.001) {
					scratch[i & 31] = i;
					for (int k = 0; k < 32; k++) {
						best[k] = scratch[k];
					}
				}
				nearest = nearest + dist;
			}
		}
		return nearest + best[0];
	}
}
`,
}

// KernelClass returns the kernel's class name for a classifier.
func KernelClass(classifier string) string { return classifier + "Kernel" }

// HasKernel reports whether a classifier has an executable kernel.
func HasKernel(classifier string) bool {
	_, ok := kernels[classifier]
	return ok
}
