package engine_test

import (
	"context"
	"reflect"
	"testing"

	"jepo/internal/energy"
	"jepo/internal/engine"
	"jepo/internal/minijava/interp"
)

const benchSrc = `class B {
	static double f() {
		double acc = 0;
		for (int i = 0; i < 1000; i++) { acc += i % 7; }
		return acc;
	}
	public static void main(String[] args) {
		System.out.println(B.f());
	}
}`

// TestParseSharingAcrossPaths: identical source at two different paths is one
// parse artifact — the path is checkout metadata, not key material.
func TestParseSharingAcrossPaths(t *testing.T) {
	e := engine.New(engine.Config{})
	a, err := e.ParseFile("a/B.java", benchSrc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.ParseFile("b/B.java", benchSrc)
	if err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Parses != 1 {
		t.Fatalf("parses = %d, want 1 (same bytes at two paths must share the master)", st.Parses)
	}
	if a.Path != "a/B.java" || b.Path != "b/B.java" {
		t.Fatalf("checkout paths wrong: %q, %q", a.Path, b.Path)
	}
	if a == b {
		t.Fatal("checkouts alias the same AST; they must be private clones")
	}
}

// TestParseCheckoutIsolation: mutating one checkout (via interp.Load's
// in-place annotation) must not leak into later checkouts.
func TestParseCheckoutIsolation(t *testing.T) {
	e := engine.New(engine.Config{})
	first, err := e.ParseFile("B.java", benchSrc)
	if err != nil {
		t.Fatal(err)
	}
	pristine, err := e.ParseFile("B.java", benchSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, pristine) {
		t.Fatal("second checkout differs before any mutation")
	}
	if _, err := interp.Load(first); err != nil {
		t.Fatal(err)
	}
	third, err := e.ParseFile("B.java", benchSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(third, pristine) {
		t.Fatal("loading one checkout mutated the cached master")
	}
}

// TestProgramSharingAndInvalidation: the cache-key semantics satellite.
// Identical source at different paths shares the program artifact; a one-byte
// edit invalidates; the instrumented switch keys separately.
func TestProgramSharingAndInvalidation(t *testing.T) {
	e := engine.New(engine.Config{})
	srcA := []engine.Source{{Path: "x/B.java", Source: benchSrc}}
	srcB := []engine.Source{{Path: "y/B.java", Source: benchSrc}}

	p1, err := e.Program(srcA, false)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.Program(srcB, false)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("identical source at different paths must share one *interp.Program")
	}

	// A one-byte edit (trailing newline) must invalidate.
	edited := []engine.Source{{Path: "x/B.java", Source: benchSrc + "\n"}}
	p3, err := e.Program(edited, false)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Fatal("edited source shares the unedited program artifact")
	}

	p4, err := e.Program(srcA, true)
	if err != nil {
		t.Fatal(err)
	}
	if p4 == p1 {
		t.Fatal("instrumented program shares the uninstrumented artifact")
	}
}

// TestSampleConfigKeying: run-config dimensions (execution engine, op budget,
// cost table, entry point) each key separate sample artifacts, while a
// repeated identical spec is a hit with a bit-identical sample.
func TestSampleConfigKeying(t *testing.T) {
	e := engine.New(engine.Config{})
	srcs := []engine.Source{{Path: "B.java", Source: benchSrc}}
	spec := engine.RunSpec{CallClass: "B", CallMethod: "f", MaxOps: 1_000_000}

	s1, err := e.Sample(context.Background(), srcs, spec)
	if err != nil {
		t.Fatal(err)
	}
	h0 := e.Stats().Hits
	s2, err := e.Sample(context.Background(), srcs, spec)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("repeated identical spec produced a different sample")
	}
	if e.Stats().Hits <= h0 {
		t.Fatal("repeated identical spec did not hit the cache")
	}

	// AST-walking engine: same charge model, different artifact key. The two
	// engines are defined to charge identically, so values agree — but they
	// must not share a cache slot (that would assume the equivalence the
	// golden tests exist to prove).
	astSpec := spec
	astSpec.Engine = interp.EngineAST
	m0 := e.Stats().Misses
	if _, err := e.Sample(context.Background(), srcs, astSpec); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Misses <= m0 {
		t.Fatal("engine change did not key a separate sample")
	}

	// Cost-table change must both miss and change the value.
	costs := energy.DefaultCosts()
	costs.FrequencyHz *= 2
	cheap := spec
	cheap.Costs = &costs
	s3, err := e.Sample(context.Background(), srcs, cheap)
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 {
		t.Fatal("cost-table change returned the default-costs sample")
	}

	// MaxOps change keys separately even when the value is identical.
	bigger := spec
	bigger.MaxOps = 2_000_000
	m1 := e.Stats().Misses
	if _, err := e.Sample(context.Background(), srcs, bigger); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Misses <= m1 {
		t.Fatal("MaxOps change did not key a separate sample")
	}

	// Main-mode vs call-mode are distinct artifacts of the same sources.
	mainSpec := engine.RunSpec{MaxOps: 1_000_000}
	sm, err := e.Sample(context.Background(), srcs, mainSpec)
	if err != nil {
		t.Fatal(err)
	}
	if sm == s1 {
		t.Fatal("main-mode run aliased the call-mode sample")
	}
}

// TestDisabledEngineMatchesEnabled: the determinism invariant in miniature —
// the cache changes cost, never bytes.
func TestDisabledEngineMatchesEnabled(t *testing.T) {
	srcs := []engine.Source{{Path: "B.java", Source: benchSrc}}
	spec := engine.RunSpec{CallClass: "B", CallMethod: "f", MaxOps: 1_000_000}
	on := engine.New(engine.Config{})
	off := engine.New(engine.Config{Disabled: true})
	sOn1, err := on.Sample(context.Background(), srcs, spec)
	if err != nil {
		t.Fatal(err)
	}
	sOn2, err := on.Sample(context.Background(), srcs, spec) // warm
	if err != nil {
		t.Fatal(err)
	}
	sOff, err := off.Sample(context.Background(), srcs, spec)
	if err != nil {
		t.Fatal(err)
	}
	if sOn1 != sOff || sOn2 != sOff {
		t.Fatalf("cached and uncached samples diverge:\n on1=%+v\n on2=%+v\n off=%+v", sOn1, sOn2, sOff)
	}
	if off.Stats().Parses != 1 {
		t.Fatalf("disabled engine parses = %d, want 1", off.Stats().Parses)
	}
}

// TestEnvConfigRoundTrip: SetProcessConfig exports what EnvConfig reads, so a
// re-exec'd dist worker reconstructs the parent's cache configuration.
func TestEnvConfigRoundTrip(t *testing.T) {
	t.Setenv(engine.EnvCache, "")
	t.Setenv(engine.EnvCacheSize, "")
	prev := engine.SetDefault(engine.New(engine.Config{}))
	defer engine.SetDefault(prev)

	engine.SetProcessConfig(engine.Config{Disabled: true, Capacity: 123})
	cfg := engine.EnvConfig()
	if !cfg.Disabled || cfg.Capacity != 123 {
		t.Fatalf("round trip lost config: %+v", cfg)
	}
	engine.SetProcessConfig(engine.Config{Capacity: 77})
	cfg = engine.EnvConfig()
	if cfg.Disabled || cfg.Capacity != 77 {
		t.Fatalf("round trip lost config: %+v", cfg)
	}
}
