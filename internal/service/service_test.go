package service

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"jepo/internal/core"
	"jepo/internal/sched"
)

// workSrc is a runnable program with measurable fixes (modulus masking).
const workSrc = `class Work {
	public static void main(String[] args) {
		long total = 0;
		for (int i = 0; i < 200; i++) {
			total = total + i % 8;
		}
		System.out.println(total);
	}
}`

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	svc := New(cfg)
	t.Cleanup(svc.Close)
	return svc
}

func openSession(t *testing.T, svc *Service) *Session {
	t.Helper()
	s, err := svc.CreateSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutFile("Work.java", workSrc); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionLifecycle(t *testing.T) {
	svc := newTestService(t, Config{})
	s, err := svc.CreateSession()
	if err != nil {
		t.Fatal(err)
	}
	if got, err := svc.Session(s.ID()); err != nil || got != s {
		t.Fatalf("Session(%q) = %v, %v", s.ID(), got, err)
	}
	if err := s.PutFile("a/B.java", "class B { }"); err != nil {
		t.Fatal(err)
	}
	if err := s.PutFile("../escape.java", "class E { }"); err == nil {
		t.Error("PutFile accepted a path escaping the session")
	}
	if err := s.PutFile("/abs.java", "class A { }"); err == nil {
		t.Error("PutFile accepted an absolute path")
	}
	if files := s.Files(); len(files) != 1 || files[0] != "a/B.java" {
		t.Errorf("Files() = %v", files)
	}
	if err := s.DeleteFile("a/B.java"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteFile("a/B.java"); err == nil {
		t.Error("DeleteFile of a missing file succeeded")
	}
	s.Close()
	if _, err := svc.Session(s.ID()); !errors.Is(err, ErrNoSession) {
		t.Errorf("closed session still resolvable: %v", err)
	}
	if err := s.PutFile("x.java", "class X { }"); !errors.Is(err, ErrClosed) {
		t.Errorf("PutFile on closed session: %v", err)
	}
}

// TestAnalyzeMatchesCLI asserts the contract the daemon is built on: a
// session analyze renders byte-identically to the CLI path (core.Analyze +
// RenderAnalyze over the same sources).
func TestAnalyzeMatchesCLI(t *testing.T) {
	svc := newTestService(t, Config{})
	s := openSession(t, svc)
	res, err := s.Analyze(context.Background(), Request{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Analyze(context.Background(), core.Project{"Work.java": workSrc}, core.AnalyzeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if want := RenderAnalyze(rep); res.Output != want {
		t.Errorf("service output diverges from CLI rendering:\n--- service ---\n%s\n--- cli ---\n%s", res.Output, want)
	}
	if !strings.Contains(res.Output, "diagnostic(s)") {
		t.Errorf("output missing summary line:\n%s", res.Output)
	}
}

// TestSessionsShareStore asserts two sessions with identical sources share
// cached artifacts: the second analyze hits the store the first one filled.
func TestSessionsShareStore(t *testing.T) {
	svc := newTestService(t, Config{})
	a := openSession(t, svc)
	if _, err := a.Analyze(context.Background(), Request{}, nil); err != nil {
		t.Fatal(err)
	}
	cold := svc.Store().Stats()
	b := openSession(t, svc)
	out2, err := b.Analyze(context.Background(), Request{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	warm := svc.Store().Stats()
	if warm.Hits <= cold.Hits {
		t.Errorf("second session did not hit the shared store: cold=%+v warm=%+v", cold, warm)
	}
	out1, err := a.Analyze(context.Background(), Request{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out1.Output != out2.Output {
		t.Error("identical sessions produced different outputs")
	}
}

// TestEvents asserts the progress stream's shape: queued, running, then a
// telemetry event and done, with monotonically increasing sequence numbers.
func TestEvents(t *testing.T) {
	svc := newTestService(t, Config{})
	s := openSession(t, svc)
	var events []Event
	if _, err := s.Analyze(context.Background(), Request{}, func(ev Event) {
		events = append(events, ev)
	}); err != nil {
		t.Fatal(err)
	}
	if len(events) < 3 {
		t.Fatalf("got %d events, want >= 3: %v", len(events), events)
	}
	if events[0].Stage != "queued" || events[1].Stage != "running" {
		t.Errorf("event prefix = %s, %s; want queued, running", events[0].Stage, events[1].Stage)
	}
	if last := events[len(events)-1]; last.Stage != "done" {
		t.Errorf("final event = %v, want done", last)
	}
	for i, ev := range events {
		if ev.Seq != i+1 {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
	}
}

// TestOpBudget asserts a starved per-request budget fails the request and
// does NOT poison the shared store: the same request at a workable budget
// succeeds afterwards.
func TestOpBudget(t *testing.T) {
	svc := newTestService(t, Config{})
	s := openSession(t, svc)
	if _, err := s.Analyze(context.Background(), Request{MaxOps: 10}, nil); err != nil {
		t.Fatalf("tiny budget must not error the analyze itself (it marks the program non-runnable): %v", err)
	}
	res, err := s.Analyze(context.Background(), Request{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Executable {
		t.Errorf("default-budget analyze inherited the starved verdict: %s", res.Report.ExecNote)
	}
}

// TestProfileBudget asserts the op budget flows into profile runs.
func TestProfileBudget(t *testing.T) {
	svc := newTestService(t, Config{})
	s := openSession(t, svc)
	if _, err := s.Profile(context.Background(), Request{MaxOps: 10}, nil); err == nil {
		t.Fatal("profile under a 10-op budget succeeded")
	}
	res, err := s.Profile(context.Background(), Request{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResultTxt == "" {
		t.Error("profile returned no result.txt content")
	}
	if !strings.Contains(res.Output, "measurement health:") {
		t.Errorf("profile output missing health line:\n%s", res.Output)
	}
}

func TestOptimize(t *testing.T) {
	svc := newTestService(t, Config{})
	s := openSession(t, svc)
	res, err := s.Optimize(context.Background(), Request{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Changes == 0 {
		t.Error("optimize applied no changes to a program with a modulus-power-of-two loop")
	}
	if !strings.Contains(res.Output, "applied") {
		t.Errorf("output missing summary:\n%s", res.Output)
	}
	// The session's own files must be untouched.
	if files := s.Files(); len(files) != 1 {
		t.Errorf("optimize mutated the session file set: %v", files)
	}
}

// TestAdmissionShedsWhenSaturated asserts the gate's shed path: with one
// slot held and no queue, a second request fails fast with ErrSaturated.
func TestAdmissionShedsWhenSaturated(t *testing.T) {
	svc := newTestService(t, Config{Slots: 1, MaxQueue: 0})
	s := openSession(t, svc)

	release, err := svc.gate.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Analyze(context.Background(), Request{}, nil)
	release()
	if !errors.Is(err, sched.ErrSaturated) {
		t.Fatalf("saturated gate returned %v, want ErrSaturated", err)
	}
	// With the slot free again the same request succeeds.
	if _, err := s.Analyze(context.Background(), Request{}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAdmissionQueues asserts a queued request waits for the slot instead
// of shedding, and runs once the holder releases.
func TestAdmissionQueues(t *testing.T) {
	svc := newTestService(t, Config{Slots: 1, MaxQueue: 4})
	s := openSession(t, svc)

	release, err := svc.gate.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	queued := make(chan struct{})
	var res *AnalyzeResult
	var aerr error
	go func() {
		defer wg.Done()
		res, aerr = s.Analyze(context.Background(), Request{}, func(ev Event) {
			if ev.Stage == "queued" {
				close(queued)
			}
		})
	}()
	<-queued
	// Give the goroutine time to reach the gate, then free the slot.
	time.Sleep(10 * time.Millisecond)
	release()
	wg.Wait()
	if aerr != nil {
		t.Fatal(aerr)
	}
	if res == nil || res.Output == "" {
		t.Fatal("queued request produced no output")
	}
	if st := svc.GateStats(); st.Waited == 0 {
		t.Errorf("gate stats recorded no waiter: %+v", st)
	}
}

// TestCancelQueuedRequest asserts cancelling a queued request's context
// unblocks it with the context error and leaves the gate consistent.
func TestCancelQueuedRequest(t *testing.T) {
	svc := newTestService(t, Config{Slots: 1, MaxQueue: 4})
	s := openSession(t, svc)

	release, err := svc.gate.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, aerr := s.Analyze(ctx, Request{}, nil)
		done <- aerr
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case aerr := <-done:
		if !errors.Is(aerr, context.Canceled) {
			t.Fatalf("cancelled queued request returned %v", aerr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled queued request never returned")
	}
	if st := svc.GateStats(); st.Queued != 0 {
		t.Errorf("cancelled waiter still counted as queued: %+v", st)
	}
}

// TestCancelRunningRequest asserts cancelling mid-analysis aborts the
// interpreter loop and the session stays usable.
func TestCancelRunningRequest(t *testing.T) {
	svc := newTestService(t, Config{})
	s, err := svc.CreateSession()
	if err != nil {
		t.Fatal(err)
	}
	// A long loop so cancellation lands mid-interpretation.
	if err := s.PutFile("Spin.java", `class Spin {
	public static void main(String[] args) {
		long total = 0;
		for (int i = 0; i < 100000000; i++) {
			total = total + i % 7;
		}
		System.out.println(total);
	}
}`); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, aerr := s.Analyze(ctx, Request{}, nil)
		done <- aerr
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case aerr := <-done:
		if !errors.Is(aerr, context.Canceled) {
			t.Fatalf("cancelled analyze returned %v, want context.Canceled", aerr)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled analyze never returned")
	}
	// The session — and the shared store — survive the cancellation.
	if _, err := s.Analyze(context.Background(), Request{MaxOps: 1_000_000_000}, nil); err != nil {
		t.Fatalf("session unusable after a cancelled request: %v", err)
	}
}

func TestTables(t *testing.T) {
	svc := newTestService(t, Config{})
	res, err := svc.Table(context.Background(), 2, DefaultTableSeed, Request{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Output, "=== Table II: WEKA classifier metrics ===\n") {
		t.Errorf("table 2 output missing header:\n%.80s", res.Output)
	}
	if _, err := svc.Table(context.Background(), 9, 0, Request{}, nil); err == nil {
		t.Error("unknown table number accepted")
	}
}

func TestServiceClose(t *testing.T) {
	svc := New(Config{})
	s, err := svc.CreateSession()
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()
	if _, err := svc.CreateSession(); !errors.Is(err, ErrClosed) {
		t.Errorf("CreateSession after Close: %v", err)
	}
	if err := s.PutFile("x.java", "class X { }"); !errors.Is(err, ErrClosed) {
		t.Errorf("PutFile after service Close: %v", err)
	}
}
