// The worker side of the protocol: a loop that decodes task assignments,
// runs them through the registry, and streams heartbeats while a task is
// in flight so the dispatcher can tell "slow" from "hung".
package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"jepo/internal/rapl"
)

// Serve runs the worker loop: read assignments from r, write hello,
// heartbeat and completion messages to w. It returns nil on a clean
// shutdown (MsgShutdown or EOF — the dispatcher closing the task stream
// is the normal end of a campaign) and an error only when the transport
// itself fails.
//
// Tasks are served one at a time in arrival order; concurrency across
// tasks is the dispatcher's job, across workers.
func Serve(reg *Registry, r io.Reader, w io.Writer) error {
	var sendMu sync.Mutex
	enc := json.NewEncoder(w)
	send := func(m *Message) error {
		sendMu.Lock()
		defer sendMu.Unlock()
		return enc.Encode(m)
	}
	if err := send(&Message{Type: MsgHello, Pid: os.Getpid()}); err != nil {
		return fmt.Errorf("dist: worker hello: %w", err)
	}
	dec := json.NewDecoder(r)
	for {
		var m Message
		if err := dec.Decode(&m); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) {
				return nil
			}
			return fmt.Errorf("dist: worker recv: %w", err)
		}
		switch m.Type {
		case MsgShutdown:
			return nil
		case MsgTask:
			serveTask(reg, send, &m)
		default:
			// Unknown dispatcher messages are ignored for forward
			// compatibility; the dispatcher never depends on a reply to
			// anything but MsgTask.
		}
	}
}

// ServeStdio serves campaigns over the process's standard streams — the
// transport ProcSpawner wires up. Worker binaries must keep stdout clean:
// everything human-readable goes to stderr.
func ServeStdio(reg *Registry) error {
	return Serve(reg, os.Stdin, os.Stdout)
}

// serveTask runs one assignment under heartbeat cover and replies with
// MsgResult or MsgError. The heartbeat goroutine is joined before the
// completion message is sent, so a task's beats never trail its result.
func serveTask(reg *Registry, send func(*Message) error, m *Message) {
	task := Task{Index: m.Index, Seed: m.Seed}
	stop := make(chan struct{})
	var beats sync.WaitGroup
	if m.HeartbeatMs > 0 {
		beats.Add(1)
		go func() {
			defer beats.Done()
			tick := time.NewTicker(time.Duration(m.HeartbeatMs) * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					// A failed beat means the dispatcher is gone; the
					// completion send will notice, so just stop beating.
					if send(&Message{Type: MsgHeartbeat, Index: m.Index, Seed: m.Seed}) != nil {
						return
					}
				}
			}
		}()
	}
	var out Output
	var err error
	fn, rerr := reg.runner(m.Kind)
	if rerr != nil {
		err = rerr
	} else {
		out, err = runSafe(fn, task, m.Params)
	}
	close(stop)
	beats.Wait()
	if err != nil {
		send(&Message{Type: MsgError, Index: m.Index, Seed: m.Seed, Err: err.Error()})
		return
	}
	reply := &Message{Type: MsgResult, Index: m.Index, Seed: m.Seed, Result: out.Result}
	if out.Health != (rapl.Health{}) {
		h := out.Health
		reply.Health = &h
	}
	send(reply)
}
