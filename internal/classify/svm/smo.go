// Package svm implements SMO — sequential minimal optimization for training
// a support vector classifier (Platt 1998, with the Keerthi et al.
// improvements WEKA cites) — with a linear (polynomial exponent 1) kernel
// over one-hot encoded features, as WEKA's default SMO configuration uses.
package svm

import (
	"fmt"
	"math"

	"jepo/internal/classify"
	"jepo/internal/dataset"
)

// SMO is a binary support vector classifier trained by sequential minimal
// optimization.
type SMO struct {
	// C is the complexity constant (WEKA -C, default 1).
	C float64
	// Tol is the KKT tolerance (WEKA -L, default 1e-3).
	Tol float64
	// MaxPasses bounds full no-change sweeps before stopping.
	MaxPasses int
	// Exponent selects the polynomial kernel degree (default 1 = linear;
	// only 1 uses the fast path with an explicit weight vector).
	Exponent int

	opts  classify.Options
	enc   *classify.Encoder
	x     [][]float64
	y     []float64 // ±1
	alpha []float64
	b     float64
	w     []float64 // maintained for the linear kernel
}

// New builds an SMO with WEKA-default parameters.
func New(opts classify.Options) *SMO {
	return &SMO{C: 1, Tol: 1e-3, MaxPasses: 3, Exponent: 1, opts: opts}
}

// Name implements Classifier.
func (c *SMO) Name() string { return "SMO" }

// Train implements Classifier.
func (c *SMO) Train(d *dataset.Dataset) error {
	if d.NumInstances() == 0 {
		return fmt.Errorf("smo: empty training set")
	}
	if d.NumClasses() != 2 {
		return fmt.Errorf("smo: binary classes required, got %d", d.NumClasses())
	}
	if c.Exponent < 1 {
		return fmt.Errorf("smo: kernel exponent must be ≥1, got %d", c.Exponent)
	}
	c.enc = classify.NewEncoder(d)
	feats, labels := c.enc.EncodeAll(d)
	c.x = feats
	c.y = make([]float64, len(labels))
	for i, yi := range labels {
		c.y[i] = float64(2*yi - 1)
	}
	n := len(c.x)
	c.alpha = make([]float64, n)
	c.b = 0
	c.w = make([]float64, c.enc.Dim())
	rng := classify.NewRNG(c.opts.Seed)
	fp := c.opts.FP

	passes := 0
	for passes < c.MaxPasses {
		changed := 0
		for i := 0; i < n; i++ {
			ei := fp.R(c.f(c.x[i]) - c.y[i])
			if (c.y[i]*ei < -c.Tol && c.alpha[i] < c.C) ||
				(c.y[i]*ei > c.Tol && c.alpha[i] > 0) {
				j := rng.Intn(n - 1)
				if j >= i {
					j++
				}
				if c.optimizePair(i, j, ei, fp) {
					changed++
				}
			}
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}
	return nil
}

// f evaluates the decision function on an encoded vector.
func (c *SMO) f(feat []float64) float64 {
	fp := c.opts.FP
	if c.Exponent == 1 {
		s := c.b
		for k, v := range feat {
			if v == 0 {
				continue
			}
			s = fp.R(s + c.w[k]*v)
		}
		return s
	}
	s := c.b
	for i := range c.x {
		if c.alpha[i] == 0 {
			continue
		}
		s = fp.R(s + c.alpha[i]*c.y[i]*c.kernel(c.x[i], feat))
	}
	return s
}

func (c *SMO) kernel(a, b []float64) float64 {
	dot := 0.0
	for k, v := range a {
		if v != 0 && b[k] != 0 {
			dot += v * b[k]
		}
	}
	if c.Exponent == 1 {
		return dot
	}
	return math.Pow(dot, float64(c.Exponent))
}

// optimizePair performs one SMO step on (i, j).
func (c *SMO) optimizePair(i, j int, ei float64, fp classify.FP) bool {
	ej := fp.R(c.f(c.x[j]) - c.y[j])
	ai, aj := c.alpha[i], c.alpha[j]
	var lo, hi float64
	if c.y[i] != c.y[j] {
		lo = math.Max(0, aj-ai)
		hi = math.Min(c.C, c.C+aj-ai)
	} else {
		lo = math.Max(0, ai+aj-c.C)
		hi = math.Min(c.C, ai+aj)
	}
	if lo == hi {
		return false
	}
	kii := c.kernel(c.x[i], c.x[i])
	kjj := c.kernel(c.x[j], c.x[j])
	kij := c.kernel(c.x[i], c.x[j])
	eta := 2*kij - kii - kjj
	if eta >= 0 {
		return false
	}
	newAj := fp.R(aj - c.y[j]*(ei-ej)/eta)
	if newAj > hi {
		newAj = hi
	} else if newAj < lo {
		newAj = lo
	}
	if math.Abs(newAj-aj) < 1e-5 {
		return false
	}
	newAi := fp.R(ai + c.y[i]*c.y[j]*(aj-newAj))
	// Threshold update (Platt's b1/b2 rule).
	b1 := c.b - ei - c.y[i]*(newAi-ai)*kii - c.y[j]*(newAj-aj)*kij
	b2 := c.b - ej - c.y[i]*(newAi-ai)*kij - c.y[j]*(newAj-aj)*kjj
	switch {
	case newAi > 0 && newAi < c.C:
		c.b = fp.R(b1)
	case newAj > 0 && newAj < c.C:
		c.b = fp.R(b2)
	default:
		c.b = fp.R((b1 + b2) / 2)
	}
	if c.Exponent == 1 {
		di := (newAi - ai) * c.y[i]
		dj := (newAj - aj) * c.y[j]
		for k, v := range c.x[i] {
			if v != 0 {
				c.w[k] = fp.R(c.w[k] + di*v)
			}
		}
		for k, v := range c.x[j] {
			if v != 0 {
				c.w[k] = fp.R(c.w[k] + dj*v)
			}
		}
	}
	c.alpha[i], c.alpha[j] = newAi, newAj
	return true
}

// Predict implements Classifier.
func (c *SMO) Predict(row []float64) int {
	feat := make([]float64, c.enc.Dim())
	c.enc.Encode(row, feat)
	if c.f(feat) >= 0 {
		return 1
	}
	return 0
}

// NumSupportVectors reports how many training points carry non-zero alpha.
func (c *SMO) NumSupportVectors() int {
	n := 0
	for _, a := range c.alpha {
		if a > 1e-9 {
			n++
		}
	}
	return n
}
