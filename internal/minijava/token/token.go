// Package token defines the lexical tokens of the mini-Java dialect the JEPO
// reproduction analyses, refactors, instruments and executes. The dialect
// covers every construct the paper's Table I reasons about: all eight
// primitive types, wrapper classes, static members, the full operator set
// (including modulus, ternary and short-circuit), String/StringBuilder,
// exceptions, objects and one/two-dimensional arrays.
package token

import "fmt"

// Kind is the lexical class of a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INTLIT    // 123
	LONGLIT   // 123L
	FLOATLIT  // 1.5f
	DOUBLELIT // 1.5, 1e-3
	CHARLIT   // 'a'
	STRINGLIT // "abc"

	// Keywords.
	KwPackage
	KwImport
	KwClass
	KwExtends
	KwPublic
	KwPrivate
	KwProtected
	KwStatic
	KwFinal
	KwVoid
	KwInt
	KwLong
	KwShort
	KwByte
	KwChar
	KwFloat
	KwDouble
	KwBoolean
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwNew
	KwNull
	KwTrue
	KwFalse
	KwBreak
	KwContinue
	KwThrow
	KwThrows
	KwTry
	KwCatch
	KwFinally
	KwThis
	KwInstanceof
	KwSwitch
	KwCase
	KwDefault
	KwDo

	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Semi
	Comma
	Dot
	Question
	Colon

	Assign    // =
	Plus      // +
	Minus     // -
	Star      // *
	Slash     // /
	Percent   // %
	Not       // !
	BitAnd    // &
	BitOr     // |
	BitXor    // ^
	Shl       // <<
	Shr       // >>
	AndAnd    // &&
	OrOr      // ||
	Eq        // ==
	Ne        // !=
	Lt        // <
	Le        // <=
	Gt        // >
	Ge        // >=
	Inc       // ++
	Dec       // --
	PlusEq    // +=
	MinusEq   // -=
	StarEq    // *=
	SlashEq   // /=
	PercentEq // %=
	AndEq     // &=
	OrEq      // |=
	XorEq     // ^=
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier",
	INTLIT: "int literal", LONGLIT: "long literal", FLOATLIT: "float literal",
	DOUBLELIT: "double literal", CHARLIT: "char literal", STRINGLIT: "string literal",
	KwPackage: "package", KwImport: "import", KwClass: "class", KwExtends: "extends",
	KwPublic: "public", KwPrivate: "private", KwProtected: "protected",
	KwStatic: "static", KwFinal: "final", KwVoid: "void",
	KwInt: "int", KwLong: "long", KwShort: "short", KwByte: "byte", KwChar: "char",
	KwFloat: "float", KwDouble: "double", KwBoolean: "boolean",
	KwIf: "if", KwElse: "else", KwWhile: "while", KwFor: "for", KwReturn: "return",
	KwNew: "new", KwNull: "null", KwTrue: "true", KwFalse: "false",
	KwBreak: "break", KwContinue: "continue", KwThrow: "throw", KwThrows: "throws",
	KwTry: "try", KwCatch: "catch", KwFinally: "finally", KwThis: "this",
	KwInstanceof: "instanceof", KwSwitch: "switch", KwCase: "case",
	KwDefault: "default", KwDo: "do",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Semi: ";", Comma: ",", Dot: ".",
	Question: "?", Colon: ":",
	Assign: "=", Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Not: "!", BitAnd: "&", BitOr: "|", BitXor: "^", Shl: "<<", Shr: ">>",
	AndAnd: "&&", OrOr: "||", Eq: "==", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=",
	Inc: "++", Dec: "--",
	PlusEq: "+=", MinusEq: "-=", StarEq: "*=", SlashEq: "/=", PercentEq: "%=",
	AndEq: "&=", OrEq: "|=", XorEq: "^=",
}

// String names the kind (operator spellings name themselves).
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Keywords maps spelling to keyword kind.
var Keywords = map[string]Kind{
	"package": KwPackage, "import": KwImport, "class": KwClass, "extends": KwExtends,
	"public": KwPublic, "private": KwPrivate, "protected": KwProtected,
	"static": KwStatic, "final": KwFinal, "void": KwVoid,
	"int": KwInt, "long": KwLong, "short": KwShort, "byte": KwByte, "char": KwChar,
	"float": KwFloat, "double": KwDouble, "boolean": KwBoolean,
	"if": KwIf, "else": KwElse, "while": KwWhile, "for": KwFor, "return": KwReturn,
	"new": KwNew, "null": KwNull, "true": KwTrue, "false": KwFalse,
	"break": KwBreak, "continue": KwContinue, "throw": KwThrow, "throws": KwThrows,
	"try": KwTry, "catch": KwCatch, "finally": KwFinally, "this": KwThis,
	"instanceof": KwInstanceof, "switch": KwSwitch, "case": KwCase,
	"default": KwDefault, "do": KwDo,
}

// Pos is a source position, 1-based.
type Pos struct {
	Line int
	Col  int
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Valid reports whether the position has been set.
func (p Pos) Valid() bool { return p.Line > 0 }

// Token is one lexical token with its source text and position.
type Token struct {
	Kind Kind
	Text string // raw source spelling (literals keep quotes/suffixes)
	Pos  Pos
}

// Is reports whether the token has the given kind.
func (t Token) Is(k Kind) bool { return t.Kind == k }

// IsType reports whether the token begins a primitive type name.
func (t Token) IsType() bool {
	switch t.Kind {
	case KwInt, KwLong, KwShort, KwByte, KwChar, KwFloat, KwDouble, KwBoolean, KwVoid:
		return true
	}
	return false
}
