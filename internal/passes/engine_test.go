package passes_test

import (
	"testing"

	"jepo/internal/corpus"
	"jepo/internal/minijava/ast"
	"jepo/internal/passes"
)

const corpusSeed = 20200518

func parseCorpus(t *testing.T, name string) []*ast.File {
	t.Helper()
	p, err := corpus.Generate(name, corpusSeed)
	if err != nil {
		t.Fatalf("generate %s: %v", name, err)
	}
	files, err := p.Parse()
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return files
}

// TestApplyIdempotentOverCorpus applies every fix over each classifier's
// Table I corpus twice: the first round must change plenty, the second round
// must find nothing left to fix — every rule's rewrite removes its own
// trigger.
func TestApplyIdempotentOverCorpus(t *testing.T) {
	for _, name := range corpus.Classifiers {
		files := parseCorpus(t, name)
		res := passes.ApplyFixes(files, passes.AnalyzeFiles(files))
		if res.Changes == 0 {
			t.Errorf("%s: first apply made no changes", name)
			continue
		}
		printed := printAll(files)
		again := passes.ApplyFixes(files, passes.AnalyzeFiles(files))
		if again.Changes != 0 {
			for r, n := range again.ByRule {
				if n != 0 {
					t.Errorf("%s: second apply still changes %s ×%d", name, r.Component(), n)
				}
			}
		}
		if printAll(files) != printed {
			t.Errorf("%s: second apply mutated the AST despite reporting 0 changes", name)
		}
	}
}

func printAll(files []*ast.File) string {
	var out string
	for _, f := range files {
		out += ast.Print(f)
	}
	return out
}

// diagKey identifies a finding across independent analyses of the same
// sources.
type diagKey struct {
	file, class, method, detail string
	line                        int
	rule                        passes.Rule
}

func keyOf(d passes.Diagnostic) diagKey {
	return diagKey{d.File, d.Class, d.Method, d.Detail, d.Line, d.Rule}
}

func fixableKeys(diags []passes.Diagnostic) map[diagKey]bool {
	m := map[diagKey]bool{}
	for _, d := range diags {
		if d.Fix != nil {
			m[keyOf(d)] = true
		}
	}
	return m
}

// mechanicalRules is the set of rules whose diagnostics can carry fixes.
var mechanicalRules = []passes.Rule{
	passes.RulePrimitiveTypes, passes.RuleScientificNotation,
	passes.RuleWrapperClasses, passes.RuleStaticKeyword,
	passes.RuleModulusOperator, passes.RuleTernaryOperator,
	passes.RuleStringConcat, passes.RuleStringComparison,
	passes.RuleArraysCopy, passes.RuleArrayTraversal,
}

// paritySubset picks, from the J48 corpus, a small file subset that still
// exercises a fix of every mechanical rule. Parity is a self-consistency
// property of one analysis run, so it holds (or breaks) on any file set; the
// subset keeps the per-diagnostic re-parse loop fast while the full corpus
// (888 fixable findings over 685 files, overwhelmingly repeated instances of
// the same generated templates) backs the idempotence test above.
func paritySubset(t *testing.T) []corpus.File {
	t.Helper()
	p, err := corpus.Generate("J48", corpusSeed)
	if err != nil {
		t.Fatal(err)
	}
	files, err := p.Parse()
	if err != nil {
		t.Fatal(err)
	}
	fileFor := map[passes.Rule]string{}
	for _, d := range passes.AnalyzeFiles(files) {
		if d.Fix != nil && fileFor[d.Rule] == "" {
			fileFor[d.Rule] = d.File
		}
	}
	keep := map[string]bool{}
	for _, r := range mechanicalRules {
		if fileFor[r] == "" {
			t.Fatalf("corpus exercises no fix for %s", r.Component())
		}
		keep[fileFor[r]] = true
	}
	var subset []corpus.File
	for _, f := range p.Files {
		if keep[f.Path] {
			subset = append(subset, f)
		}
	}
	return subset
}

func parseSubset(t *testing.T, subset []corpus.File) []*ast.File {
	t.Helper()
	p := &corpus.Project{Files: subset}
	files, err := p.Parse()
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestSuggestionFixParity applies each fixable diagnostic of the subset in
// isolation and re-analyzes: the applied diagnostic must disappear, and no
// new fixable diagnostic may appear. The one sanctioned exception is the
// static-keyword hoist, which materializes a local load typed like the field;
// its narrowing diagnostics are new by construction and are what the full
// apply resolves via the field's own declaration fix.
func TestSuggestionFixParity(t *testing.T) {
	subset := paritySubset(t)
	diags := passes.AnalyzeFiles(parseSubset(t, subset))
	before := fixableKeys(diags)
	covered := map[passes.Rule]bool{}
	for i, d := range diags {
		if d.Fix == nil {
			continue
		}
		covered[d.Rule] = true
		files := parseSubset(t, subset)
		fresh := passes.AnalyzeFiles(files)
		if len(fresh) != len(diags) {
			t.Fatalf("analysis not deterministic: %d diags, then %d", len(diags), len(fresh))
		}
		if keyOf(fresh[i]) != keyOf(d) {
			t.Fatalf("diag %d drifted between analyses: %v vs %v", i, fresh[i], d)
		}
		res := passes.ApplyFixes(files, []passes.Diagnostic{fresh[i]})
		if res.Changes == 0 {
			t.Errorf("fix for %s made no change", d)
			continue
		}
		after := fixableKeys(passes.AnalyzeFiles(files))
		if after[keyOf(d)] {
			t.Errorf("fix did not remove its own diagnostic: %s", d)
		}
		for k := range after {
			if before[k] {
				continue
			}
			if d.Rule == passes.RuleStaticKeyword &&
				(k.rule == passes.RulePrimitiveTypes || k.rule == passes.RuleWrapperClasses) &&
				k.method == d.Method && k.class == d.Class {
				continue // the hoisted load inherits the field's type
			}
			t.Errorf("fix for %s introduced new fixable diagnostic %+v", d, k)
		}
	}
	// Every mechanical rule must have exercised at least one fix in the
	// subset, or the parity claim is vacuous for it.
	for _, r := range mechanicalRules {
		if !covered[r] {
			t.Errorf("subset exercises no fix for %s", r.Component())
		}
	}
}

// TestAdvisoryRulesNeverCarryFixes pins the non-mechanical set.
func TestAdvisoryRulesNeverCarryFixes(t *testing.T) {
	for _, name := range corpus.Classifiers {
		files := parseCorpus(t, name)
		for _, d := range passes.AnalyzeFiles(files) {
			switch d.Rule {
			case passes.RuleShortCircuit, passes.RuleExceptionInLoop, passes.RuleObjectInLoop:
				if d.Fix != nil {
					t.Errorf("%s: advisory rule carries a fix: %s", name, d)
				}
				if d.Severity != passes.SeverityInfo {
					t.Errorf("%s: advisory diagnostic not info-severity: %s", name, d)
				}
			default:
				if (d.Fix != nil) != (d.Severity == passes.SeverityFixable) {
					t.Errorf("%s: severity disagrees with fix presence: %s", name, d)
				}
			}
		}
	}
}
