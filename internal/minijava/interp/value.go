// Package interp is a tree-walking interpreter for the mini-Java dialect
// with per-operation energy accounting. Every arithmetic operation, variable
// access, allocation, string operation and exception is charged to an
// energy.Meter, and all object and array storage lives at synthetic addresses
// so the cache model sees realistic layouts. Running a program before and
// after a JEPO refactoring and differencing the simulated RAPL counters is
// how this reproduction measures "energy improvement".
package interp

import (
	"fmt"
	"math"

	"jepo/internal/minijava/ast"
)

// Kind is the runtime kind of a Value.
type Kind int

// Runtime kinds. Narrow integer kinds are kept distinct so stores into them
// charge the narrow-arithmetic cost and wrap with Java semantics.
const (
	KVoid Kind = iota
	KInt
	KLong
	KShort
	KByte
	KChar
	KBool
	KFloat
	KDouble
	KNull
	KString   // R: string
	KRef      // R: *Object
	KArr      // R: *Array
	KSB       // R: *SB (StringBuilder)
	KBox      // R: *Box (wrapper instance)
	KThrow    // R: *Throwable
	KClassRef // R: string — a class name used as a value (internal)
)

var kindNames = [...]string{
	KVoid: "void", KInt: "int", KLong: "long", KShort: "short", KByte: "byte",
	KChar: "char", KBool: "boolean", KFloat: "float", KDouble: "double",
	KNull: "null", KString: "String", KRef: "object", KArr: "array",
	KSB: "StringBuilder", KBox: "box", KThrow: "throwable", KClassRef: "class",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "?"
}

// IsIntegral reports whether the kind is an integer primitive (incl. char).
func (k Kind) IsIntegral() bool {
	switch k {
	case KInt, KLong, KShort, KByte, KChar:
		return true
	}
	return false
}

// IsNumeric reports whether the kind participates in numeric promotion.
func (k Kind) IsNumeric() bool { return k.IsIntegral() || k == KFloat || k == KDouble }

// Value is a mini-Java runtime value. Numeric values live in I or D; the rest
// in R.
type Value struct {
	K Kind
	I int64
	D float64
	R any
}

// Convenience constructors.
func IntVal(v int64) Value   { return Value{K: KInt, I: int64(int32(v))} }
func LongVal(v int64) Value  { return Value{K: KLong, I: v} }
func ShortVal(v int64) Value { return Value{K: KShort, I: int64(int16(v))} }
func ByteVal(v int64) Value  { return Value{K: KByte, I: int64(int8(v))} }
func CharVal(v int64) Value  { return Value{K: KChar, I: int64(uint16(v))} }
func BoolVal(b bool) Value {
	v := Value{K: KBool}
	if b {
		v.I = 1
	}
	return v
}
func FloatVal(v float64) Value  { return Value{K: KFloat, D: float64(float32(v))} }
func DoubleVal(v float64) Value { return Value{K: KDouble, D: v} }
func StringVal(s string) Value  { return Value{K: KString, R: s} }
func NullVal() Value            { return Value{K: KNull} }

// Bool reports the truth of a boolean value.
func (v Value) Bool() bool { return v.K == KBool && v.I != 0 }

// Str returns the string payload.
func (v Value) Str() string { s, _ := v.R.(string); return s }

// AsF64 widens any numeric value to float64.
func (v Value) AsF64() float64 {
	switch v.K {
	case KFloat, KDouble:
		return v.D
	default:
		return float64(v.I)
	}
}

// AsI64 narrows any numeric value to int64 (FP truncates toward zero, as
// Java's long cast does).
func (v Value) AsI64() int64 {
	switch v.K {
	case KFloat, KDouble:
		if math.IsNaN(v.D) {
			return 0
		}
		if v.D >= math.MaxInt64 {
			return math.MaxInt64
		}
		if v.D <= math.MinInt64 {
			return math.MinInt64
		}
		return int64(v.D)
	default:
		return v.I
	}
}

// JavaString renders the value as Java's String.valueOf would.
func (v Value) JavaString() string {
	switch v.K {
	case KVoid:
		return ""
	case KNull:
		return "null"
	case KBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KChar:
		return string(rune(v.I))
	case KInt, KLong, KShort, KByte:
		return fmt.Sprintf("%d", v.I)
	case KFloat, KDouble:
		return formatJavaFloat(v.D)
	case KString:
		return v.Str()
	case KRef:
		o := v.R.(*Object)
		return fmt.Sprintf("%s@%x", o.Class.Name, o.Base)
	case KArr:
		a := v.R.(*Array)
		return fmt.Sprintf("[%s@%x", a.Kind, a.Base)
	case KSB:
		return v.R.(*SB).B.String()
	case KBox:
		return v.R.(*Box).V.JavaString()
	case KThrow:
		t := v.R.(*Throwable)
		if t.Msg == "" {
			return t.Class
		}
		return t.Class + ": " + t.Msg
	}
	return "?"
}

// formatJavaFloat approximates Java's Double.toString: integral values print
// with a trailing .0.
func formatJavaFloat(d float64) string {
	if math.IsInf(d, 1) {
		return "Infinity"
	}
	if math.IsInf(d, -1) {
		return "-Infinity"
	}
	if math.IsNaN(d) {
		return "NaN"
	}
	if d == math.Trunc(d) && math.Abs(d) < 1e15 {
		return fmt.Sprintf("%.1f", d)
	}
	return fmt.Sprintf("%g", d)
}

// kindOfType maps a declared type to the runtime kind its storage uses.
func kindOfType(t ast.Type) Kind {
	if t.Dims > 0 {
		return KArr
	}
	switch t.Kind {
	case ast.Int:
		return KInt
	case ast.Long:
		return KLong
	case ast.Short:
		return KShort
	case ast.Byte:
		return KByte
	case ast.Char:
		return KChar
	case ast.Float:
		return KFloat
	case ast.Double:
		return KDouble
	case ast.Boolean:
		return KBool
	case ast.Void:
		return KVoid
	case ast.ClassType:
		switch t.Name {
		case "String":
			return KString
		case "StringBuilder":
			return KSB
		}
		if wrapperKind(t.Name) != KVoid {
			return KBox
		}
		return KRef
	}
	return KVoid
}

// wrapperKind maps a wrapper class name to the primitive kind it boxes, or
// KVoid if the name is not a wrapper.
func wrapperKind(name string) Kind {
	switch name {
	case "Integer":
		return KInt
	case "Long":
		return KLong
	case "Short":
		return KShort
	case "Byte":
		return KByte
	case "Character":
		return KChar
	case "Float":
		return KFloat
	case "Double":
		return KDouble
	case "Boolean":
		return KBool
	}
	return KVoid
}

// elemSize is the byte size of one array element of the given kind, matching
// JVM layouts (references are 8 bytes).
func elemSize(k Kind) int {
	switch k {
	case KByte, KBool:
		return 1
	case KShort, KChar:
		return 2
	case KInt, KFloat:
		return 4
	default:
		return 8
	}
}
