// The wire protocol: newline-delimited JSON messages over a byte stream
// (stdio pipes for spawned processes, in-memory pipes for tests). The
// protocol is deliberately small — five message types, one in-flight task
// per worker — because the robustness machinery lives in the dispatcher,
// not the wire format.
package dist

import (
	"encoding/json"

	"jepo/internal/rapl"
)

// MsgType discriminates protocol messages.
type MsgType string

const (
	// MsgHello is the worker's first message: it is alive and serving.
	MsgHello MsgType = "hello"
	// MsgTask assigns one task to a worker (dispatcher → worker).
	MsgTask MsgType = "task"
	// MsgHeartbeat is the worker's liveness beacon while a task runs; each
	// beat re-arms the dispatcher's silence deadline for that task.
	MsgHeartbeat MsgType = "heartbeat"
	// MsgResult carries a completed task's JSON result and health tally.
	MsgResult MsgType = "result"
	// MsgError reports a task failure (the task's fault, not the node's).
	MsgError MsgType = "error"
	// MsgShutdown asks the worker to exit cleanly (dispatcher → worker).
	MsgShutdown MsgType = "shutdown"
)

// Message is the single frame type both directions share. Index and Seed
// are never omitted: task index 0 is as real as any other.
type Message struct {
	Type  MsgType `json:"type"`
	Index int     `json:"index"`
	Seed  uint64  `json:"seed"`
	// Task assignment (MsgTask).
	Kind        string          `json:"kind,omitempty"`
	Params      json.RawMessage `json:"params,omitempty"`
	HeartbeatMs int64           `json:"heartbeat_ms,omitempty"`
	// Task completion (MsgResult / MsgError).
	Result json.RawMessage `json:"result,omitempty"`
	Health *rapl.Health    `json:"health,omitempty"`
	Err    string          `json:"err,omitempty"`
	// Worker identity (MsgHello).
	Pid int `json:"pid,omitempty"`
}
