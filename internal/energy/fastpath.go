package energy

import "os"

// Metering fast path.
//
// The simulated meter is the reproduction's instrumentation overhead: both
// execution engines must issue the identical Step/Access/cache sequence, so
// every cycle the meter costs is an Amdahl floor under every workload built
// on top (Diamond et al., "What Is the Cost of Energy Monitoring?"). The
// fast path shrinks that floor without changing a single joule bit, by
// precomputing at cost-table-bind time everything Step recomputes per call:
//
//   - Step(op, n) charges Picojoules(c.Picojoules * float64(n)). That
//     product is a pure function of the cost table and n; for the dominant
//     n==1 case, x*1.0 == x exactly in IEEE 754, so a per-op table of ready
//     (joule, cycle) unit deltas folded at meter construction makes the hot
//     charge add-only — no table lookup, no int→float conversion, no
//     multiply. The n>1 general case is unchanged code.
//   - A recorded charge list (a basic block's pre-aggregated run) replays as
//     a list of StepDeltas: each entry's delta is computed once when the
//     cost table is bound to the program, then added per replay. Entries are
//     still added one by one in original order — float addition is not
//     associative, so only the per-entry *product* may be hoisted, never the
//     sum across entries.
//   - Cache hit/miss/DRAM charges get the same unit-delta treatment, and
//     the single-line access case (the overwhelming majority) is charged
//     without the general multi-line batching arithmetic.
//
// The escape hatch: JEPO_METER_FASTPATH=off routes every charge through the
// original slow paths (per-call table lookup and multiply, per-entry
// StepList replay, per-call Access loop). The golden battery and the CLI
// byte-diff gates run both settings; any divergence is a fast-path bug by
// definition.

// FastPathEnv is the environment variable gating the metering fast path.
// Any value other than "off" (including unset) enables it.
const FastPathEnv = "JEPO_METER_FASTPATH"

// FastPathOn reports whether the metering fast path is enabled. It is read
// at meter construction and at program/cost-table bind time, so toggling the
// variable affects meters built afterwards, never a meter mid-run.
func FastPathOn() bool {
	return os.Getenv(FastPathEnv) != "off"
}

// unitCost is one precomputed single-charge delta: the exact Joules and
// cycles Step(op, 1) would add.
type unitCost struct {
	j Joules
	c float64
}

// bindUnits folds a cost table into its per-op unit deltas.
func bindUnits(t *CostTable) (units [NumOps]unitCost) {
	for op := 0; op < NumOps; op++ {
		units[op] = unitCost{j: Picojoules(t.Ops[op].Picojoules), c: t.Ops[op].Cycles}
	}
	return units
}

// StepDelta is one precomputed Step(Op, N) call: the exact core-energy and
// cycle deltas that call would add, with the op and count kept so the op
// counters advance identically. Replaying a []StepDelta with Meter.StepRun
// is bit-identical to replaying the source []Charge with Meter.StepList.
type StepDelta struct {
	CoreJ  Joules
	Cycles float64
	Op     Op
	N      uint64
}

// BindSteps precomputes the per-call deltas of replaying charges against
// this cost table, one StepDelta per effective Step call. Entries with a
// non-positive count are dropped — Step treats them as no-ops — so the
// bound list replays exactly the calls that would have charged.
func (t *CostTable) BindSteps(charges []Charge) []StepDelta {
	if len(charges) == 0 {
		return nil
	}
	out := make([]StepDelta, 0, len(charges))
	for _, ch := range charges {
		if ch.N <= 0 {
			continue
		}
		c := t.Ops[ch.Op]
		f := float64(ch.N)
		out = append(out, StepDelta{
			CoreJ:  Picojoules(c.Picojoules * f),
			Cycles: c.Cycles * f,
			Op:     ch.Op,
			N:      uint64(ch.N),
		})
	}
	return out
}
