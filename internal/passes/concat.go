package passes

import (
	"fmt"

	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/token"
)

// The string-accumulation cluster: a String declaration followed by a loop
// whose every reference to it is an accumulation. The fix rewrites
//
//	String s = init;                StringBuilder s__sb = new StringBuilder(init);
//	for (...) {             →      for (...) {
//	    s = s + expr;                   s__sb.append(expr);
//	}                               }
//	... uses of s ...               String s = s__sb.toString(); ... uses ...
//
// Any other use inside the loop (including `s = expr + s`, which reverses
// order) keeps the cluster from matching.

// concatBlock scans a statement block for accumulation clusters when the
// traversal enters it, before the block's statements are visited.
func (m *matcher) concatBlock(b *ast.Block) {
	for i := 0; i+1 < len(b.Stmts); i++ {
		decl, ok := b.Stmts[i].(*ast.LocalVar)
		if !ok || !decl.Type.IsString() || decl.Init == nil {
			continue
		}
		// Find the accumulation loop, skipping intervening statements that
		// never mention the accumulator.
		j := i + 1
		var loop, body ast.Stmt
	scan:
		for ; j < len(b.Stmts); j++ {
			switch l := b.Stmts[j].(type) {
			case *ast.For:
				loop, body = l, l.Body
				break scan
			case *ast.While:
				loop, body = l, l.Body
				break scan
			default:
				if stmtMentions(b.Stmts[j], decl.Name) {
					break scan
				}
			}
		}
		if body == nil || j >= len(b.Stmts) {
			continue
		}
		if !onlyAccumulates(body, decl.Name) {
			continue
		}
		// The cluster owns its declaration: a ternary initializer moves into
		// the StringBuilder constructor instead of expanding to if/else.
		m.clusterDecls[decl] = true
		m.add(decl.Pos, RuleStringConcat,
			fmt.Sprintf("string accumulation loop on '%s'", decl.Name),
			concatFix(b, decl, loop))
		i = j // resume scanning after the loop
	}
}

// concatFix rewrites the cluster. It anchors at the enclosing block (the
// surgery spans three statements) and locates the declaration and loop by
// identity at apply time, so earlier cluster fixes in the same block may
// shift their positions freely.
func concatFix(b *ast.Block, decl *ast.LocalVar, loop ast.Stmt) *Fix {
	return &Fix{anchor: b, apply: func(ap *applier, c *ast.Cursor) (int, bool) {
		di, li := -1, -1
		for idx, st := range b.Stmts {
			if di < 0 && st == ast.Stmt(decl) {
				di = idx
			}
			if li < 0 && st == loop {
				li = idx
			}
		}
		if di < 0 || li < 0 || li < di {
			return 0, true
		}
		var body ast.Stmt
		switch l := loop.(type) {
		case *ast.For:
			body = l.Body
		case *ast.While:
			body = l.Body
		default:
			return 0, true
		}
		name := decl.Name
		sbName := name + "__sb"
		rewriteAccumulations(body, name, sbName)
		pos := decl.Pos
		b.Stmts[di] = &ast.LocalVar{
			Pos:  pos,
			Type: ast.Type{Kind: ast.ClassType, Name: "StringBuilder"},
			Name: sbName,
			Init: &ast.New{Pos: pos, Name: "StringBuilder", Args: []ast.Expr{decl.Init}},
		}
		// Materialize the String after the loop for the remaining uses.
		materialize := &ast.LocalVar{
			Pos:  pos,
			Type: decl.Type,
			Name: name,
			Init: &ast.Call{Pos: pos, Recv: &ast.Ident{Pos: pos, Name: sbName}, Name: "toString"},
		}
		rest := append([]ast.Stmt{materialize}, b.Stmts[li+1:]...)
		b.Stmts = append(b.Stmts[:li+1], rest...)
		return 1, true
	}}
}

// stmtMentions reports whether a statement references name anywhere.
func stmtMentions(s ast.Stmt, name string) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
			return false
		}
		return true
	})
	return found
}

// onlyAccumulates reports whether every reference to name inside s is part of
// an accumulation statement `name = name + expr` or `name += expr`.
func onlyAccumulates(s ast.Stmt, name string) bool {
	total := 0
	ast.Inspect(s, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			total++
		}
		return true
	})
	if total == 0 {
		return false
	}
	accounted := 0
	ast.Inspect(s, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		if k := accumulationRefs(es.X, name); k > 0 {
			accounted += k
		}
		return true
	})
	return accounted == total
}

// accumulationRefs returns how many references to name the expression makes
// if it is a pure accumulation, and 0 otherwise.
func accumulationRefs(e ast.Expr, name string) int {
	as, ok := e.(*ast.Assign)
	if !ok {
		return 0
	}
	lhs, ok := as.LHS.(*ast.Ident)
	if !ok || lhs.Name != name {
		return 0
	}
	switch as.Op {
	case token.PlusEq:
		if mentions(as.RHS, name) {
			return 0
		}
		return 1
	case token.Assign:
		bin, ok := as.RHS.(*ast.Binary)
		if !ok || bin.Op != token.Plus {
			return 0
		}
		l, ok := bin.X.(*ast.Ident)
		if !ok || l.Name != name || mentions(bin.Y, name) {
			return 0
		}
		return 2 // LHS and the leading RHS operand
	}
	return 0
}

func mentions(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
			return false
		}
		return true
	})
	return found
}

// rewriteAccumulations replaces accumulation statements with appends. The
// append reuses the accumulated operand subtree, so fixes anchored inside it
// still apply when the traversal descends.
func rewriteAccumulations(s ast.Stmt, name, sbName string) {
	var fix func(st ast.Stmt)
	fixBlock := func(b *ast.Block) {
		for j, st := range b.Stmts {
			if es, ok := st.(*ast.ExprStmt); ok {
				if app := toAppend(es.X, name, sbName); app != nil {
					b.Stmts[j] = &ast.ExprStmt{Pos: es.Pos, X: app}
					continue
				}
			}
			fix(st)
		}
	}
	fix = func(st ast.Stmt) {
		switch n := st.(type) {
		case *ast.Block:
			fixBlock(n)
		case *ast.If:
			n.Then = fixSingle(n.Then, name, sbName, fix)
			if n.Else != nil {
				n.Else = fixSingle(n.Else, name, sbName, fix)
			}
		case *ast.While:
			n.Body = fixSingle(n.Body, name, sbName, fix)
		case *ast.For:
			n.Body = fixSingle(n.Body, name, sbName, fix)
		case *ast.Try:
			fixBlock(n.Block)
			for _, c := range n.Catches {
				fixBlock(c.Block)
			}
			if n.Finally != nil {
				fixBlock(n.Finally)
			}
		}
	}
	fix(s)
	// The loop body itself may be a bare accumulation statement.
	if es, ok := s.(*ast.ExprStmt); ok {
		if app := toAppend(es.X, name, sbName); app != nil {
			es.X = app
		}
	}
}

func fixSingle(s ast.Stmt, name, sbName string, fix func(ast.Stmt)) ast.Stmt {
	if es, ok := s.(*ast.ExprStmt); ok {
		if app := toAppend(es.X, name, sbName); app != nil {
			return &ast.ExprStmt{Pos: es.Pos, X: app}
		}
	}
	fix(s)
	return s
}

// toAppend converts an accumulation expression to `sbName.append(expr)`.
func toAppend(e ast.Expr, name, sbName string) ast.Expr {
	as, ok := e.(*ast.Assign)
	if !ok {
		return nil
	}
	lhs, ok := as.LHS.(*ast.Ident)
	if !ok || lhs.Name != name {
		return nil
	}
	var arg ast.Expr
	switch as.Op {
	case token.PlusEq:
		arg = as.RHS
	case token.Assign:
		bin, ok := as.RHS.(*ast.Binary)
		if !ok || bin.Op != token.Plus {
			return nil
		}
		l, ok := bin.X.(*ast.Ident)
		if !ok || l.Name != name {
			return nil
		}
		arg = bin.Y
	default:
		return nil
	}
	return &ast.Call{
		Pos:  as.Pos,
		Recv: &ast.Ident{Pos: as.Pos, Name: sbName},
		Name: "append",
		Args: []ast.Expr{arg},
	}
}
