package bytecode

import "testing"

// TestEveryOpcodeNamed keeps opNames in lockstep with the opcode list: a new
// opcode without a mnemonic would disassemble as "op?" and silently degrade
// every golden-disasm diff.
func TestEveryOpcodeNamed(t *testing.T) {
	for o := Op(0); o < numOps; o++ {
		if o.String() == "op?" {
			t.Errorf("opcode %d has no name in opNames", o)
		}
	}
	if numOps.String() != "op?" || Op(255).String() != "op?" {
		t.Error("out-of-range opcodes must render as op?")
	}
}
