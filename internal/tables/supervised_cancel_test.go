package tables

import (
	"context"
	"errors"
	"os"
	"sort"
	"sync"
	"testing"

	"jepo/internal/corpus"
	"jepo/internal/stats"
)

// cancelCfg is a heavily reduced Table IV configuration: real measurement,
// small enough that individual rows complete in well under a second.
func cancelCfg(dir string) Table4Config {
	return Table4Config{
		Seed:          20200518,
		Instances:     400,
		Reps:          1,
		Protocol:      stats.Protocol{Runs: 3, MaxRounds: 2},
		CVFolds:       2,
		Slots:         1,
		CheckpointDir: dir,
	}
}

// TestSupervisedCancelKeepsCheckpoints is the campaign-interruption
// acceptance test for Table IV: cancelling Table4Supervised mid-run must
// leave a valid checkpoint directory holding exactly the completed rows,
// and a resumed run must replay those rows untouched and converge on
// checkpoint files byte-identical to an uninterrupted run's.
func TestSupervisedCancelKeepsCheckpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("measures real rows")
	}

	// Uninterrupted reference run.
	refDir := t.TempDir()
	refRows, err := Table4Supervised(context.Background(), cancelCfg(refDir))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refRows {
		if r.Err != "" {
			t.Fatalf("reference row %s failed: %s", r.Classifier, r.Err)
		}
	}

	// Interrupted run: let three rows complete, then cancel before the
	// fourth measures. Slots=1 keeps execution strictly sequential, so the
	// first three hook entries correspond to fully-measured, checkpointed
	// rows regardless of the pool's seeded task order.
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := cancelCfg(dir)
	var mu sync.Mutex
	entered := 0
	cfg.RowHook = func(name string) error {
		mu.Lock()
		defer mu.Unlock()
		entered++
		if entered > 3 {
			cancel()
			return errors.New("cancelled before measuring")
		}
		return nil
	}
	if _, err := Table4Supervised(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}

	// The checkpoint directory survived the cancel in a valid state: some
	// strict subset of classifiers, each loadable and byte-identical to the
	// reference run's checkpoint for the same classifier.
	var done []string
	for _, name := range corpus.Classifiers {
		row, ok := loadCheckpoint(dir, name)
		if !ok {
			continue
		}
		if row.Classifier != name {
			t.Errorf("checkpoint for %s holds row %+v", name, row)
		}
		done = append(done, name)
	}
	if len(done) == 0 || len(done) >= len(corpus.Classifiers) {
		t.Fatalf("cancelled run checkpointed %v — want a non-empty strict subset", done)
	}

	// Resume with a live context: checkpointed rows are replayed without
	// re-entering the pipeline, only the missing ones are measured.
	var attempted []string
	cfg.RowHook = func(name string) error {
		mu.Lock()
		attempted = append(attempted, name)
		mu.Unlock()
		return nil
	}
	rows, err := Table4Supervised(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(attempted)
	want := missingFrom(done)
	if len(attempted) != len(want) {
		t.Fatalf("resume measured %v, want exactly the missing rows %v", attempted, want)
	}
	for i := range want {
		if attempted[i] != want[i] {
			t.Fatalf("resume measured %v, want %v", attempted, want)
		}
	}

	// The resumed table matches the uninterrupted run row for row, and the
	// final checkpoint files are byte-identical — the cancel left no trace.
	for i, r := range rows {
		if r != refRows[i] {
			t.Errorf("row %s drifted after cancel+resume:\n got %+v\nwant %+v", r.Classifier, r, refRows[i])
		}
	}
	for _, name := range corpus.Classifiers {
		got, err := os.ReadFile(checkpointPath(dir, name))
		if err != nil {
			t.Fatalf("resumed run left no checkpoint for %s: %v", name, err)
		}
		ref, err := os.ReadFile(checkpointPath(refDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(ref) {
			t.Errorf("%s checkpoint differs from the uninterrupted run's:\n got %s\nwant %s", name, got, ref)
		}
	}
}

// missingFrom returns the classifiers not in done, sorted.
func missingFrom(done []string) []string {
	seen := map[string]bool{}
	for _, name := range done {
		seen[name] = true
	}
	var out []string
	for _, name := range corpus.Classifiers {
		if !seen[name] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
