package suggest

import (
	"strings"
	"testing"

	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/parser"
)

func analyze(t *testing.T, src string) []Suggestion {
	t.Helper()
	f, err := parser.Parse("Test.java", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Analyze(f)
}

func rulesOf(sugs []Suggestion) map[Rule]int { return CountByRule(sugs) }

func TestPrimitiveTypeRule(t *testing.T) {
	sugs := analyze(t, `class T {
		double total;
		long count;
		short small;
		byte tiny;
		float ratio;
		int fine;
		void f(double x) {
			long y = 0;
			int z = 0;
		}
	}`)
	if got := rulesOf(sugs)[RulePrimitiveTypes]; got != 7 {
		t.Errorf("primitive suggestions = %d, want 7 (5 fields + 1 param + 1 local)", got)
	}
	for _, s := range sugs {
		if s.Rule == RulePrimitiveTypes && strings.Contains(s.Detail, "fine") {
			t.Error("int declaration must not be flagged")
		}
	}
}

func TestWrapperRule(t *testing.T) {
	sugs := analyze(t, `class T {
		Double d;
		Long l;
		Integer ok;
		void f() { Character c = 'x'; }
	}`)
	if got := rulesOf(sugs)[RuleWrapperClasses]; got != 3 {
		t.Errorf("wrapper suggestions = %d, want 3", got)
	}
}

func TestStaticRule(t *testing.T) {
	sugs := analyze(t, `class T {
		static int counter;
		static final int CONST = 5;
		int instanceField;
	}`)
	if got := rulesOf(sugs)[RuleStaticKeyword]; got != 1 {
		t.Errorf("static suggestions = %d, want 1 (static final constants exempt)", got)
	}
}

func TestModulusRule(t *testing.T) {
	// The masking fix needs a counted loop variable known to stay
	// non-negative; `i % 8` on the loop index is applicable, `i % 7` (not a
	// power of two) stays advisory.
	sugs := analyze(t, `class T { int f(int a) {
		int s = 0;
		for (int i = 0; i < a; i++) {
			s = s + i % 7;
			s = s + i % 8;
		}
		return s;
	} }`)
	var pow2Auto, general int
	for _, s := range sugs {
		if s.Rule != RuleModulusOperator {
			continue
		}
		if s.CanAuto {
			pow2Auto++
		} else {
			general++
		}
	}
	if pow2Auto != 1 || general != 1 {
		t.Errorf("modulus: auto=%d general=%d, want 1/1", pow2Auto, general)
	}
}

func TestTernaryRule(t *testing.T) {
	sugs := analyze(t, `class T { int f(int a) {
		int x = a > 0 ? a : -a;
		return x;
	} }`)
	if got := rulesOf(sugs)[RuleTernaryOperator]; got != 1 {
		t.Errorf("ternary suggestions = %d, want 1", got)
	}
}

func TestShortCircuitRuleFlagsChainOnce(t *testing.T) {
	sugs := analyze(t, `class T { boolean f(int a) {
		return a > 0 && a < 10 && a != 5;
	} }`)
	if got := rulesOf(sugs)[RuleShortCircuit]; got != 1 {
		t.Errorf("short-circuit suggestions = %d, want 1 for the whole chain", got)
	}
}

func TestStringRules(t *testing.T) {
	sugs := analyze(t, `class T {
		String f(String a, String b) {
			String s = a + ", " + b;
			if (a.compareTo(b) == 0) { return s; }
			return s + "!";
		}
	}`)
	counts := rulesOf(sugs)
	if counts[RuleStringConcat] < 2 {
		t.Errorf("concat suggestions = %d, want ≥2", counts[RuleStringConcat])
	}
	if counts[RuleStringComparison] != 1 {
		t.Errorf("compareTo suggestions = %d, want 1", counts[RuleStringComparison])
	}
}

func TestScientificNotationRule(t *testing.T) {
	sugs := analyze(t, `class T {
		double a = 100000.0;
		double b = 0.00001;
		double c = 1e5;
		double d = 3.25;
	}`)
	if got := rulesOf(sugs)[RuleScientificNotation]; got != 2 {
		t.Errorf("scientific suggestions = %d, want 2 (a and b only)", got)
	}
}

func TestArrayCopyRule(t *testing.T) {
	sugs := analyze(t, `class T { void f(int[] a, int[] b, int n) {
		for (int i = 0; i < n; i++) {
			b[i] = a[i];
		}
		for (int i = 0; i < n; i++) {
			b[i] = a[i] + 1;
		}
	} }`)
	count := 0
	for _, s := range sugs {
		if s.Rule == RuleArraysCopy {
			count++
			if !strings.Contains(s.Detail, "'a'") || !strings.Contains(s.Detail, "'b'") {
				t.Errorf("copy detail = %q", s.Detail)
			}
		}
	}
	if count != 1 {
		t.Errorf("array-copy suggestions = %d, want 1 (transforming loop exempt)", count)
	}
}

func TestColumnTraversalRule(t *testing.T) {
	src := `class T { int f(int[][] m, int n) {
		int s = 0;
		for (int j = 0; j < n; j++) {
			for (int i = 0; i < n; i++) {
				s += m[i][j];
			}
		}
		for (int i = 0; i < n; i++) {
			for (int j = 0; j < n; j++) {
				s += m[i][j];
			}
		}
		return s;
	} }`
	sugs := analyze(t, src)
	if got := rulesOf(sugs)[RuleArrayTraversal]; got != 1 {
		t.Errorf("traversal suggestions = %d, want 1 (row-major loop exempt)", got)
	}
}

func TestSuggestionsCarryPositions(t *testing.T) {
	sugs := analyze(t, "class T {\n\tdouble x;\n}")
	if len(sugs) != 1 {
		t.Fatalf("suggestions = %d", len(sugs))
	}
	s := sugs[0]
	if s.Line != 2 || s.Class != "T" || s.File != "Test.java" {
		t.Errorf("position = %+v", s)
	}
	if !strings.Contains(s.String(), "T:2") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestRuleMetadataComplete(t *testing.T) {
	if len(TableIRules()) != 11 {
		t.Fatalf("Table I has 11 rows, got %d rules", len(TableIRules()))
	}
	if len(AllRules()) != 13 {
		t.Fatalf("total rules = %d, want 13 (Table I + 2 extensions)", len(AllRules()))
	}
	for _, r := range AllRules() {
		if r.Component() == "" || r.Text() == "" {
			t.Errorf("rule %d missing metadata", r)
		}
	}
	if Rule(99).String() == "" {
		t.Error("out-of-range rule must still format")
	}
}

func TestAnalyzeAllAggregates(t *testing.T) {
	f1, _ := parser.Parse("A.java", `class A { double x; }`)
	f2, _ := parser.Parse("B.java", `class B { long y; }`)
	sugs := AnalyzeAll([]*ast.File{f1, f2})
	if len(sugs) != 2 {
		t.Errorf("aggregate suggestions = %d, want 2", len(sugs))
	}
}

func TestCleanCodeYieldsNoSuggestions(t *testing.T) {
	sugs := analyze(t, `class Clean {
		int a;
		static final int LIMIT = 10;
		int f(int x, int[] src, int[] dst) {
			int s = 0;
			for (int i = 0; i < x; i++) {
				if (i > 2) {
					s += i * 3;
				} else {
					s -= i;
				}
			}
			System.arraycopy(src, 0, dst, 0, x);
			StringBuilder sb = new StringBuilder();
			sb.append(s);
			return s;
		}
	}`)
	if len(sugs) != 0 {
		for _, s := range sugs {
			t.Logf("unexpected: %s", s)
		}
		t.Errorf("clean code produced %d suggestions", len(sugs))
	}
}

func TestExtensionRuleExceptionInLoop(t *testing.T) {
	sugs := analyze(t, `class T { int f(int n) {
		int bad = 0;
		for (int i = 0; i < n; i++) {
			try {
				bad += 10 / i;
			} catch (ArithmeticException e) {
				bad++;
			}
		}
		while (bad > 0) {
			if (bad == 7) {
				throw new IllegalStateException("seven");
			}
			bad--;
		}
		try { bad++; } catch (RuntimeException e) { }
		return bad;
	} }`)
	// try-in-for + throw-in-while = 2; the top-level try is fine.
	if got := rulesOf(sugs)[RuleExceptionInLoop]; got != 2 {
		t.Errorf("exception-in-loop suggestions = %d, want 2", got)
	}
}

func TestExtensionRuleObjectInLoop(t *testing.T) {
	sugs := analyze(t, `class Box { }
	class T { int f(int n) {
		Box outside = new Box();
		int s = 0;
		for (int i = 0; i < n; i++) {
			Box churn = new Box();
			s++;
		}
		for (int i = 0; i < n; i++) {
			if (s > 100) {
				throw new RuntimeException("x");
			}
		}
		return s;
	} }`)
	counts := rulesOf(sugs)
	// One Box allocation in a loop; the exception constructor is reported
	// under the exception rule, not the objects rule.
	if counts[RuleObjectInLoop] != 1 {
		t.Errorf("object-in-loop suggestions = %d, want 1", counts[RuleObjectInLoop])
	}
	if counts[RuleExceptionInLoop] != 1 {
		t.Errorf("exception suggestions = %d, want 1", counts[RuleExceptionInLoop])
	}
}

func TestExtensionRulesAreNotAuto(t *testing.T) {
	sugs := analyze(t, `class Box { }
	class T { void f(int n) { for (int i = 0; i < n; i++) { Box b = new Box(); } } }`)
	for _, s := range sugs {
		if (s.Rule == RuleObjectInLoop || s.Rule == RuleExceptionInLoop) && s.CanAuto {
			t.Errorf("extension rule %v marked auto-applicable", s.Rule)
		}
	}
}
