// Transports: how the dispatcher reaches a worker. A Conn is one node's
// duplex message stream; a Spawner mints Conns by node id. ProcSpawner
// re-execs the current binary in worker mode over stdio pipes — the
// production transport — and PipeSpawner serves the registry on in-process
// goroutines, which is what the fault-injection tests and the inline
// fallback build on.
package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"time"
)

// Conn is one worker's message stream as the dispatcher sees it.
// Send and Recv are each called from a single goroutine (the dispatcher's
// event loop sends; a dedicated reader receives), but Send and Recv may
// overlap, and Kill/Close may race with both.
type Conn interface {
	// Send delivers one message to the worker.
	Send(m *Message) error
	// Recv blocks for the worker's next message.
	Recv() (*Message, error)
	// Close ends the session gracefully: no more tasks will be sent, the
	// worker should drain and exit.
	Close() error
	// Kill tears the node down hard — the transport equivalent of a node
	// crash. Any blocked Recv returns an error promptly.
	Kill() error
}

// Spawner mints the Conn for node id. Spawn failures leave that node dead
// at birth; the dispatcher continues on the survivors.
type Spawner func(id int) (Conn, error)

// streamConn frames messages over a generic byte stream.
type streamConn struct {
	sendMu sync.Mutex
	enc    *json.Encoder
	dec    *json.Decoder
	close  func() error
	kill   func() error
}

func (c *streamConn) Send(m *Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	return c.enc.Encode(m)
}

func (c *streamConn) Recv() (*Message, error) {
	var m Message
	if err := c.dec.Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

func (c *streamConn) Close() error { return c.close() }
func (c *streamConn) Kill() error  { return c.kill() }

// PipeSpawner serves the registry on an in-process goroutine per node,
// over synchronous in-memory pipes. Workers spawned this way share the
// dispatcher's address space — which is exactly what the -race fault
// tests want — while exercising the full wire protocol, heartbeats and
// all.
func PipeSpawner(reg *Registry) Spawner {
	return func(id int) (Conn, error) {
		taskR, taskW := io.Pipe()
		replyR, replyW := io.Pipe()
		go func() {
			err := Serve(reg, taskR, replyW)
			// Serve returning closes the reply stream; a clean return
			// reads as EOF on the dispatcher side, an error as itself.
			replyW.CloseWithError(err)
			taskR.Close()
		}()
		kill := func() error {
			taskR.CloseWithError(io.ErrClosedPipe)
			taskW.CloseWithError(io.ErrClosedPipe)
			replyR.CloseWithError(io.ErrClosedPipe)
			replyW.CloseWithError(io.ErrClosedPipe)
			return nil
		}
		return &streamConn{
			enc:   json.NewEncoder(taskW),
			dec:   json.NewDecoder(replyR),
			close: taskW.Close,
			kill:  kill,
		}, nil
	}
}

// procConn is a spawned worker process over stdio pipes. The pipes are
// plain os.Pipe pairs rather than exec's managed StdinPipe/StdoutPipe, so
// reaping the process never races the reader goroutine still draining
// stdout.
type procConn struct {
	streamConn
	cmd  *exec.Cmd
	in   *os.File // dispatcher → worker stdin
	out  *os.File // worker stdout → dispatcher
	reap sync.Once
}

// reapAfter waits for the child with a grace period, then kills it. Called
// at most once; both Close and Kill funnel here.
func (c *procConn) reapAfter(grace time.Duration) {
	c.reap.Do(func() {
		c.in.Close()
		var killer *time.Timer
		if grace > 0 {
			killer = time.AfterFunc(grace, func() { c.cmd.Process.Kill() })
		} else {
			c.cmd.Process.Kill()
		}
		go func() {
			c.cmd.Wait()
			if killer != nil {
				killer.Stop()
			}
			c.out.Close()
		}()
	})
}

// ProcSpawner re-execs the current binary with the given argv and speaks
// the protocol over its stdio; stderr passes through so worker-side
// telemetry stays visible. The spawned binary must route argv[1] ==
// WorkerArg into ServeStdio.
func ProcSpawner(argv ...string) Spawner {
	return func(id int) (Conn, error) {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("dist: locate worker binary: %w", err)
		}
		inR, inW, err := os.Pipe()
		if err != nil {
			return nil, err
		}
		outR, outW, err := os.Pipe()
		if err != nil {
			inR.Close()
			inW.Close()
			return nil, err
		}
		cmd := exec.Command(exe, argv...)
		cmd.Stdin = inR
		cmd.Stdout = outW
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			inR.Close()
			inW.Close()
			outR.Close()
			outW.Close()
			return nil, fmt.Errorf("dist: spawn worker %d: %w", id, err)
		}
		// The child holds its own copies of the pipe ends now.
		inR.Close()
		outW.Close()
		c := &procConn{cmd: cmd, in: inW, out: outR}
		c.streamConn = streamConn{
			enc:   json.NewEncoder(inW),
			dec:   json.NewDecoder(outR),
			close: func() error { c.reapAfter(3 * time.Second); return nil },
			kill:  func() error { c.reapAfter(0); return nil },
		}
		return c, nil
	}
}

// SelfSpawner is the default production transport: the current binary
// re-exec'd in worker mode.
func SelfSpawner() Spawner {
	return ProcSpawner(WorkerArg)
}
