package svm

import (
	"testing"

	"jepo/internal/classify"
	"jepo/internal/dataset"
)

func separable(n int, seed uint64, margin float64) *dataset.Dataset {
	d := dataset.New("svm", 2,
		dataset.NewNumeric("x"),
		dataset.NewNumeric("z"),
		dataset.NewNominal("y", "neg", "pos"),
	)
	r := classify.NewRNG(seed)
	for i := 0; i < n; i++ {
		x := r.Float64()*10 - 5
		z := r.Float64()*10 - 5
		s := x + z
		if s > -margin && s < margin {
			continue // leave a margin band empty
		}
		y := 0.0
		if s > 0 {
			y = 1
		}
		d.Add([]float64{x, z, y})
	}
	return d
}

func acc(c classify.Classifier, d *dataset.Dataset) float64 {
	correct := 0
	for i, row := range d.X {
		if c.Predict(row) == d.Class(i) {
			correct++
		}
	}
	return 100 * float64(correct) / float64(d.NumInstances())
}

func TestSMOSeparable(t *testing.T) {
	train := separable(300, 1, 0.5)
	test := separable(150, 2, 0.5)
	c := New(classify.Options{Seed: 3})
	if err := c.Train(train); err != nil {
		t.Fatal(err)
	}
	if a := acc(c, test); a < 95 {
		t.Errorf("smo test accuracy = %.1f%%, want ≥95%%", a)
	}
	if sv := c.NumSupportVectors(); sv == 0 || sv == train.NumInstances() {
		t.Errorf("support vectors = %d of %d — expected a sparse subset", sv, train.NumInstances())
	}
}

func TestSMOPolynomialKernel(t *testing.T) {
	// Quadratically separable: inside vs outside a circle of radius 2.5.
	d := dataset.New("circle", 2,
		dataset.NewNumeric("x"),
		dataset.NewNumeric("z"),
		dataset.NewNominal("y", "in", "out"),
	)
	r := classify.NewRNG(7)
	for i := 0; i < 300; i++ {
		x := r.Float64()*8 - 4
		z := r.Float64()*8 - 4
		y := 0.0
		if x*x+z*z > 6.25 {
			y = 1
		}
		d.Add([]float64{x, z, y})
	}
	lin := New(classify.Options{Seed: 3})
	lin.Train(d)
	quad := New(classify.Options{Seed: 3})
	quad.Exponent = 2
	quad.Train(d)
	la, qa := acc(lin, d), acc(quad, d)
	if qa < la+5 {
		t.Errorf("quadratic kernel (%.1f%%) should clearly beat linear (%.1f%%) on a circle", qa, la)
	}
}

func TestSMOValidation(t *testing.T) {
	d := separable(20, 1, 0.5)
	bad := New(classify.Options{})
	bad.Exponent = 0
	if err := bad.Train(d); err == nil {
		t.Error("zero exponent accepted")
	}
	if err := New(classify.Options{}).Train(d.Empty()); err == nil {
		t.Error("empty dataset accepted")
	}
	tri := dataset.New("tri", 1, dataset.NewNumeric("x"), dataset.NewNominal("y", "a", "b", "c"))
	tri.Add([]float64{1, 0})
	if err := New(classify.Options{}).Train(tri); err == nil {
		t.Error("non-binary class accepted")
	}
}

func TestSMODeterminism(t *testing.T) {
	d := separable(150, 1, 0.5)
	a := New(classify.Options{Seed: 5})
	b := New(classify.Options{Seed: 5})
	a.Train(d)
	b.Train(d)
	for i, row := range d.X {
		if a.Predict(row) != b.Predict(row) {
			t.Fatalf("row %d diverged for identical seeds", i)
		}
	}
}
