package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

func writeDemo(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	src := `package demo;

public class Demo {
	static int work(int n) {
		int s = 0;
		for (int i = 0; i < n; i++) {
			s += i % 7;
		}
		return s;
	}

	public static void main(String[] args) {
		System.out.println(work(100));
	}
}
`
	path := filepath.Join(dir, "Demo.java")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// A non-Java file that must be ignored when walking directories.
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("ignore me"), 0o644)
	return dir
}

func TestLoadProject(t *testing.T) {
	dir := writeDemo(t)
	p, err := loadProject([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 1 {
		t.Fatalf("project files = %d, want 1 (.txt ignored)", len(p))
	}
	if _, err := loadProject(nil); err == nil {
		t.Error("empty args accepted")
	}
	if _, err := loadProject([]string{filepath.Join(dir, "missing.java")}); err == nil {
		t.Error("missing file accepted")
	}
	empty := t.TempDir()
	if _, err := loadProject([]string{empty}); err == nil {
		t.Error("directory without java files accepted")
	}
}

func TestCmdSuggest(t *testing.T) {
	dir := writeDemo(t)
	if err := cmdSuggest([]string{filepath.Join(dir, "Demo.java")}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSuggest([]string{"-line", "7", dir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSuggest([]string{filepath.Join(dir, "nope.java")}); err == nil {
		t.Error("missing input accepted")
	}
}

func TestCmdAnalyze(t *testing.T) {
	dir := writeDemo(t)
	if err := cmdAnalyze(context.Background(), []string{dir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAnalyze(context.Background(), []string{"-main", "Demo", dir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAnalyze(context.Background(), []string{filepath.Join(dir, "nope.java")}); err == nil {
		t.Error("missing input accepted")
	}
}

func TestCmdOptimize(t *testing.T) {
	dir := writeDemo(t)
	if err := cmdOptimize(context.Background(), []string{"-dry", dir}); err != nil {
		t.Fatal(err)
	}
	out := t.TempDir()
	if err := cmdOptimize(context.Background(), []string{"-o", out, dir}); err != nil {
		t.Fatal(err)
	}
	// The refactored file must exist under the output dir.
	found := false
	filepath.WalkDir(out, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".java" {
			found = true
		}
		return nil
	})
	if !found {
		t.Error("no refactored .java written")
	}
}

func TestCmdProfile(t *testing.T) {
	dir := writeDemo(t)
	result := filepath.Join(t.TempDir(), "result.txt")
	if err := cmdProfile(context.Background(), []string{"-result", result, dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(result); err != nil {
		t.Errorf("result.txt not written: %v", err)
	}
	if err := cmdProfile(context.Background(), []string{"-main", "NoSuchClass", dir}); err == nil {
		t.Error("bad main class accepted")
	}
}

func TestCmdMetrics(t *testing.T) {
	dir := writeDemo(t)
	if err := cmdMetrics([]string{"-root", "Demo", dir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdMetrics([]string{dir}); err == nil {
		t.Error("missing -root accepted")
	}
	if err := cmdMetrics([]string{"-root", "Ghost", dir}); err == nil {
		t.Error("unknown root accepted")
	}
}
