package passes

import (
	"fmt"

	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/token"
)

// The match hooks of the registered passes, with their fix builders. Every
// hook both recognizes the pattern (emitting the diagnostic) and decides
// whether the mechanical rewrite is safe here (attaching the fix).

// --- Rule 1: primitive data types ---------------------------------------

func (m *matcher) primitiveDecl(d *declSite) {
	t := d.typ
	if t.Dims > 0 {
		t = ast.Type{Kind: t.Kind, Name: t.Name} // look through arrays
	}
	switch t.Kind {
	case ast.Long, ast.Short, ast.Byte, ast.Double, ast.Float:
		var fx *Fix
		if t.Kind != ast.Float { // float is already the narrow spelling
			fx = typeFix(d, RulePrimitiveTypes, fieldFixNarrow)
		}
		m.add(d.pos, RulePrimitiveTypes, fmt.Sprintf("%s declared %s", d.what, t.Kind), fx)
	}
}

// primitiveNode narrows array allocations so a narrowed variable does not
// keep wide storage. Only method-body allocations outside array literals are
// reachable by the apply traversal.
func (m *matcher) primitiveNode(n ast.Node) {
	na, ok := n.(*ast.NewArray)
	if !ok || !m.inMethod || m.arrayLitDepth > 0 || !narrowable(na.Elem) {
		return
	}
	fx := &Fix{anchor: na, apply: func(ap *applier, c *ast.Cursor) (int, bool) {
		if narrowType(&na.Elem) {
			return 1, true
		}
		return 0, true
	}}
	m.add(na.NodePos(), RulePrimitiveTypes,
		fmt.Sprintf("array allocation of %s", na.Elem.Kind), fx)
}

// typeFix builds the declaration rewrite for a decl site: fields and
// parameters are plain type surgery (a pre-traversal phase), locals anchor at
// their declaration so a fix that removes the declaration (e.g. arraycopy
// replacing a whole loop) suppresses them, exactly as the old rewriter did.
func typeFix(d *declSite, rule Rule, kind fieldFixKind) *Fix {
	mutate := narrowType
	if kind == fieldFixWrapper {
		mutate = integerizeWrapper
	}
	switch {
	case d.field != nil:
		fd := d.field
		return &Fix{phase: phaseDecl, field: fd, fieldKind: kind,
			direct: func(ap *applier) int {
				if mutate(&fd.Type) {
					return 1
				}
				return 0
			}}
	case d.paramType != nil:
		tp := d.paramType
		return &Fix{phase: phaseDecl,
			direct: func(ap *applier) int {
				if mutate(tp) {
					return 1
				}
				return 0
			}}
	case d.local != nil:
		lv := d.local
		return &Fix{anchor: lv,
			apply: func(ap *applier, c *ast.Cursor) (int, bool) {
				if mutate(&lv.Type) {
					return 1, true
				}
				return 0, true
			}}
	}
	return nil
}

// --- Rule 2: scientific notation ----------------------------------------

func (m *matcher) sciNode(n ast.Node) {
	lit, ok := n.(*ast.Literal)
	if !ok || !qualifiesForSci(lit) {
		return
	}
	var fx *Fix
	// Method-body array literals are never traversed by the applier (their
	// elements are constant data, not code the interpreter re-evaluates), so
	// a fix there would silently not apply.
	if !m.inMethod || m.arrayLitDepth == 0 {
		fx = &Fix{anchor: lit, apply: func(ap *applier, c *ast.Cursor) (int, bool) {
			scientificize(lit)
			return 1, true
		}}
	}
	m.add(lit.Pos, RuleScientificNotation, "decimal literal "+lit.Raw, fx)
}

// --- Rule 3: wrapper classes --------------------------------------------

func (m *matcher) wrapperDecl(d *declSite) {
	t := d.typ
	if t.Dims > 0 {
		t = ast.Type{Kind: t.Kind, Name: t.Name}
	}
	if t.Kind != ast.ClassType {
		return
	}
	switch t.Name {
	case "Long", "Short", "Byte", "Double", "Float", "Character":
		var fx *Fix
		if t.Name == "Long" || t.Name == "Short" || t.Name == "Byte" {
			fx = typeFix(d, RuleWrapperClasses, fieldFixWrapper)
		}
		m.add(d.pos, RuleWrapperClasses, fmt.Sprintf("%s declared %s", d.what, t.Name), fx)
	}
}

// --- Rule 4: static keyword ---------------------------------------------

func (m *matcher) staticField(f *ast.Field) {
	if !f.Mods.Has(ast.ModStatic) || f.Mods.Has(ast.ModFinal) {
		// static final constants are folded by javac; the paper's 17,700%
		// penalty is about mutable static state.
		return
	}
	var fx *Fix
	if plan, ok := m.hoist[f]; ok {
		fx = hoistFix(plan)
	}
	m.add(f.Pos, RuleStaticKeyword, "mutable static field '"+f.Name+"'", fx)
}

// --- Rule 5: modulus operator -------------------------------------------

func (m *matcher) modulusNode(n ast.Node) {
	b, ok := n.(*ast.Binary)
	if !ok || b.Op != token.Percent {
		return
	}
	var fx *Fix
	if lit, ok := b.Y.(*ast.Literal); ok && lit.Kind == ast.LitInt && lit.I > 0 && lit.I&(lit.I-1) == 0 {
		if id, ok := b.X.(*ast.Ident); ok && m.nonNeg[id.Name] {
			fx = &Fix{anchor: b, apply: func(ap *applier, c *ast.Cursor) (int, bool) {
				c.Replace(modulusMask(b, id, lit))
				return 1, true
			}}
		}
	}
	m.add(b.Pos, RuleModulusOperator, "modulus expression "+ast.PrintExpr(b), fx)
}

// --- Rule 6: ternary operator -------------------------------------------

// ternaryNode emits a diagnostic for every ternary; only the one currently in
// statement position carries the expansion fix the matcher prepared.
func (m *matcher) ternaryNode(n ast.Node) {
	t, ok := n.(*ast.Ternary)
	if !ok {
		return
	}
	var fx *Fix
	if t == m.pendTern {
		fx = m.pendTernFix
	}
	m.add(t.Pos, RuleTernaryOperator, "ternary "+ast.PrintExpr(t), fx)
}

// expandTernary builds the if-then-else for a ternary, recursing into
// branches that are themselves ternaries (each expansion counts once).
func expandTernary(t *ast.Ternary, mk func(ast.Expr) ast.Stmt, count *int) ast.Stmt {
	*count++
	branch := func(e ast.Expr) ast.Stmt {
		if inner, ok := e.(*ast.Ternary); ok {
			return expandTernary(inner, mk, count)
		}
		return mk(e)
	}
	return &ast.If{
		Pos:  t.Pos,
		Cond: t.Cond,
		Then: &ast.Block{Pos: t.Pos, Stmts: []ast.Stmt{branch(t.Then)}},
		Else: &ast.Block{Pos: t.Pos, Stmts: []ast.Stmt{branch(t.Else)}},
	}
}

// ternFixLocal expands `T v = c ? a : b;` into a declaration plus if/else.
func ternFixLocal(lv *ast.LocalVar, t *ast.Ternary) *Fix {
	return &Fix{anchor: lv, apply: func(ap *applier, c *ast.Cursor) (int, bool) {
		count := 0
		// Read lv.Type at apply time: a narrowing fix at the same anchor has
		// already run, so the split declaration keeps the narrowed type.
		decl := &ast.LocalVar{Pos: lv.Pos, Type: lv.Type, Name: lv.Name}
		mk := func(e ast.Expr) ast.Stmt {
			return &ast.ExprStmt{Pos: e.NodePos(), X: &ast.Assign{
				Pos: e.NodePos(), Op: token.Assign,
				LHS: &ast.Ident{Pos: lv.Pos, Name: lv.Name}, RHS: e,
			}}
		}
		ifs := expandTernary(t, mk, &count)
		if c.InSlice() {
			c.InsertBefore(decl)
			c.Replace(ifs)
		} else {
			// Single-statement slot (e.g. a for-init): wrap like the old
			// rewriter did when an expansion had to stay one statement.
			c.Replace(&ast.Block{Pos: lv.Pos, Stmts: []ast.Stmt{decl, ifs}})
		}
		return count, true
	}}
}

// ternFixAssign expands `x = c ? a : b;` into if/else assignments.
func ternFixAssign(es *ast.ExprStmt, as *ast.Assign, t *ast.Ternary) *Fix {
	return &Fix{anchor: es, apply: func(ap *applier, c *ast.Cursor) (int, bool) {
		count := 0
		mk := func(e ast.Expr) ast.Stmt {
			return &ast.ExprStmt{Pos: e.NodePos(), X: &ast.Assign{
				Pos: as.Pos, Op: token.Assign, LHS: as.LHS, RHS: e,
			}}
		}
		ifs := expandTernary(t, mk, &count)
		c.Replace(ifs)
		return count, true
	}}
}

// ternFixReturn expands `return c ? a : b;` into if/else returns.
func ternFixReturn(r *ast.Return, t *ast.Ternary) *Fix {
	return &Fix{anchor: r, apply: func(ap *applier, c *ast.Cursor) (int, bool) {
		count := 0
		mk := func(e ast.Expr) ast.Stmt {
			return &ast.Return{Pos: r.Pos, X: e}
		}
		ifs := expandTernary(t, mk, &count)
		c.Replace(ifs)
		return count, true
	}}
}

// --- Rule 7: short-circuit ordering (advisory) --------------------------

func (m *matcher) shortCircuitNode(n ast.Node) {
	b, ok := n.(*ast.Binary)
	if !ok || (b.Op != token.AndAnd && b.Op != token.OrOr) {
		return
	}
	// Only flag the outermost chain node, not every link.
	if _, inner := b.X.(*ast.Binary); !inner || !isShortCircuit(b.X) {
		m.add(b.Pos, RuleShortCircuit, "short-circuit chain "+ast.PrintExpr(b), nil)
	}
}

// --- Rule 8: string concatenation ---------------------------------------
// The per-expression advisories live here; the cluster match with its
// StringBuilder fix lives in concat.go.

func (m *matcher) concatNode(n ast.Node) {
	switch x := n.(type) {
	case *ast.Binary:
		if x.Op == token.Plus && (m.isStringExpr(x.X) || m.isStringExpr(x.Y)) {
			m.add(x.Pos, RuleStringConcat, "string concatenation "+ast.PrintExpr(x), nil)
		}
	case *ast.Assign:
		if x.Op == token.PlusEq && m.isStringExpr(x.LHS) {
			m.add(x.Pos, RuleStringConcat, "string += concatenation", nil)
		}
	}
}

// --- Rule 9: string comparison ------------------------------------------

// compareToNode sees the `a.compareTo(b) == 0` shape at the comparison node
// (where the fix must anchor) and emits the diagnostic at the call (where the
// suggestion engine always positioned it).
func (m *matcher) compareToNode(n ast.Node) {
	switch x := n.(type) {
	case *ast.Binary:
		if !m.inMethod {
			return // field initializers are not rewritten
		}
		call := matchCompareToEquality(x)
		if call == nil {
			return
		}
		b := x
		m.cmpFix[call] = &Fix{anchor: b,
			apply: func(ap *applier, c *ast.Cursor) (int, bool) {
				c.Replace(compareToEquals(b, call))
				return 1, true
			}}
	case *ast.Call:
		if x.Name == "compareTo" && len(x.Args) == 1 {
			m.add(x.Pos, RuleStringComparison, "compareTo call "+ast.PrintExpr(x), m.cmpFix[x])
		}
	}
}

// --- Rule 10: arrays copy ------------------------------------------------

func (m *matcher) arraysCopyNode(n ast.Node) {
	f, ok := n.(*ast.For)
	if !ok {
		return
	}
	cl := MatchManualArrayCopy(f)
	if cl == nil {
		return
	}
	var fx *Fix
	if bound, ok := copyBound(f, cl.IndexVar); ok {
		fx = &Fix{anchor: f, apply: func(ap *applier, c *ast.Cursor) (int, bool) {
			pos := f.Pos
			zero := func() ast.Expr { return &ast.Literal{Pos: pos, Kind: ast.LitInt, Raw: "0"} }
			call := &ast.Call{
				Pos:  pos,
				Recv: &ast.Ident{Pos: pos, Name: "System"},
				Name: "arraycopy",
				Args: []ast.Expr{
					&ast.Ident{Pos: pos, Name: cl.Src}, zero(),
					&ast.Ident{Pos: pos, Name: cl.Dst}, zero(),
					bound,
				},
			}
			c.Replace(&ast.ExprStmt{Pos: pos, X: call})
			// The loop is gone; nothing inside it is applied (fixes anchored
			// on its declaration or body die with it).
			return 1, false
		}}
	}
	m.add(f.Pos, RuleArraysCopy,
		fmt.Sprintf("manual copy loop from '%s' to '%s'", cl.Src, cl.Dst), fx)
}

// --- Rule 11: array traversal -------------------------------------------

func (m *matcher) arrayTraversalNode(n ast.Node) {
	f, ok := n.(*ast.For)
	if !ok {
		return
	}
	swap := MatchColumnTraversal(f)
	if swap == nil {
		return
	}
	var fx *Fix
	if inner, ok := innerFor(f); ok {
		fx = &Fix{anchor: f, apply: func(ap *applier, c *ast.Cursor) (int, bool) {
			// Swap loop headers, keep the innermost body.
			oi, oc, op := f.Init, f.Cond, f.Post
			f.Init, f.Cond, f.Post = inner.Init, inner.Cond, inner.Post
			inner.Init, inner.Cond, inner.Post = oi, oc, op
			return 1, true
		}}
	}
	m.add(f.Pos, RuleArrayTraversal, fmt.Sprintf("column-major traversal of '%s'", swap.Array), fx)
}

// --- Extension rules (advisory only) ------------------------------------

func (m *matcher) exceptionNode(n ast.Node) {
	if m.loopDepth == 0 {
		return
	}
	switch x := n.(type) {
	case *ast.Throw:
		m.add(x.Pos, RuleExceptionInLoop, "throw inside a loop", nil)
	case *ast.Try:
		m.add(x.Pos, RuleExceptionInLoop, "try/catch inside a loop", nil)
	}
}

func (m *matcher) objectNode(n ast.Node) {
	x, ok := n.(*ast.New)
	if !ok {
		return
	}
	if m.loopDepth > 0 && !isExceptionName(x.Name) {
		m.add(x.Pos, RuleObjectInLoop, "allocation of "+x.Name+" inside a loop", nil)
	}
}
