package tables

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"jepo/internal/corpus"
)

// fakeRow builds a plausible completed measurement for checkpoint fixtures.
func fakeRow(name string) Table4Row {
	return Table4Row{
		Classifier:  name,
		Changes:     700 + len(name),
		PackagePct:  3.5,
		CPUPct:      3.1,
		TimePct:     2.8,
		AccuracyPct: 0.2,
	}
}

// TestSupervisedPanicIsolatedAndResumed is the Table IV acceptance test: one
// classifier's pipeline panicking must not lose the other nine rows, and a
// rerun against the same checkpoint directory must re-attempt exactly the
// failed classifier.
func TestSupervisedPanicIsolatedAndResumed(t *testing.T) {
	dir := t.TempDir()
	const bad = "SMO"
	for _, name := range corpus.Classifiers {
		if name == bad {
			continue
		}
		if err := saveCheckpoint(dir, fakeRow(name)); err != nil {
			t.Fatal(err)
		}
	}
	cfg := Table4Config{
		Instances:     50,
		CheckpointDir: dir,
		RowHook: func(name string) error {
			if name == bad {
				panic("injected kernel fault")
			}
			return fmt.Errorf("hook reached %s: checkpoint resume failed", name)
		},
	}
	rows, err := Table4Supervised(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(corpus.Classifiers) {
		t.Fatalf("rows = %d, want %d", len(rows), len(corpus.Classifiers))
	}
	for _, r := range rows {
		if r.Classifier == bad {
			if !strings.Contains(r.Err, "panic: injected kernel fault") {
				t.Errorf("%s Err = %q, want the recovered panic", bad, r.Err)
			}
			continue
		}
		if r.Err != "" {
			t.Errorf("%s failed instead of resuming: %s", r.Classifier, r.Err)
		}
		if want := fakeRow(r.Classifier); r != want {
			t.Errorf("%s resumed row = %+v, want %+v", r.Classifier, r, want)
		}
	}
	if failed := FailedRows(rows); len(failed) != 1 || failed[0].Classifier != bad {
		t.Errorf("failed rows = %+v, want exactly %s", failed, bad)
	}
	// Failures must not be checkpointed, so the rerun retries them.
	if _, err := os.Stat(checkpointPath(dir, bad)); !os.IsNotExist(err) {
		t.Errorf("failed row was checkpointed: stat err = %v", err)
	}
	out := RenderTable4(rows)
	if !strings.Contains(out, "FAILED: panic: injected kernel fault") {
		t.Errorf("render lacks the failure entry:\n%s", out)
	}
	if !strings.Contains(out, "RandomForest") {
		t.Errorf("render lost the surviving rows:\n%s", out)
	}

	// Rerun: only the failed classifier is re-attempted.
	var mu sync.Mutex
	var attempted []string
	cfg.RowHook = func(name string) error {
		mu.Lock()
		attempted = append(attempted, name)
		mu.Unlock()
		return errors.New("still failing")
	}
	rows2, err := Table4Supervised(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(attempted) != 1 || attempted[0] != bad {
		t.Errorf("rerun attempted %v, want only %s", attempted, bad)
	}
	for i, r := range rows2 {
		if r.Classifier == bad {
			if r.Err != "still failing" {
				t.Errorf("rerun %s Err = %q", bad, r.Err)
			}
			continue
		}
		if r != rows[i] {
			t.Errorf("rerun %s row changed: %+v vs %+v", r.Classifier, r, rows[i])
		}
	}
}

// TestSupervisedRowTimeout abandons a hung classifier at the deadline while
// the rest of the run completes.
func TestSupervisedRowTimeout(t *testing.T) {
	const hung = "KStar"
	cfg := Table4Config{
		Instances:  50,
		RowTimeout: 50 * time.Millisecond,
		RowHook: func(name string) error {
			if name == hung {
				time.Sleep(400 * time.Millisecond)
			}
			return errors.New("fast failure")
		},
	}
	start := time.Now()
	rows, err := Table4Supervised(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Classifier == hung {
			if !strings.Contains(r.Err, "deadline exceeded") {
				t.Errorf("%s Err = %q, want deadline", hung, r.Err)
			}
		} else if r.Err != "fast failure" {
			t.Errorf("%s Err = %q", r.Classifier, r.Err)
		}
	}
	// The hung row is abandoned, not awaited: the whole run finishes well
	// under the hook's sleep even single-slotted.
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Errorf("run took %v — the supervisor waited for the hung row", elapsed)
	}
}

func TestLoadCheckpointRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	writeFile := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(checkpointPath(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("J48", "{truncated")
	if _, ok := loadCheckpoint(dir, "J48"); ok {
		t.Error("corrupt JSON accepted")
	}
	writeFile("IBk", `{"Classifier": "J48", "Changes": 1}`)
	if _, ok := loadCheckpoint(dir, "IBk"); ok {
		t.Error("mismatched classifier accepted")
	}
	writeFile("SGD", `{"Classifier": "SGD", "Err": "old failure"}`)
	if _, ok := loadCheckpoint(dir, "SGD"); ok {
		t.Error("checkpointed failure accepted — failures must be re-attempted")
	}
	if _, ok := loadCheckpoint(dir, "Logistic"); ok {
		t.Error("missing file accepted")
	}
	if err := saveCheckpoint(dir, fakeRow("Logistic")); err != nil {
		t.Fatal(err)
	}
	row, ok := loadCheckpoint(dir, "Logistic")
	if !ok || row != fakeRow("Logistic") {
		t.Errorf("round-trip = %+v, %v", row, ok)
	}
	// Empty dir disables checkpointing entirely.
	if err := saveCheckpoint("", fakeRow("J48")); err != nil {
		t.Errorf("no-dir save errored: %v", err)
	}
	if _, ok := loadCheckpoint("", "Logistic"); ok {
		t.Error("no-dir load resumed something")
	}
}

func TestSupervisedCheckpointDirInfraError(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := Table4Config{CheckpointDir: filepath.Join(file, "sub")}
	if _, err := Table4Supervised(context.Background(), cfg); err == nil {
		t.Fatal("unusable checkpoint dir must be an infrastructure error")
	}
}

// TestSupervisedMeasuresOneRealRow runs a single classifier's genuine
// pipeline at minimal scale through the supervisor, proving the success path
// measures, checkpoints, and resumes bit-identically.
func TestSupervisedMeasuresOneRealRow(t *testing.T) {
	if testing.Short() {
		t.Skip("runs one real classifier pipeline; skipped with -short")
	}
	dir := t.TempDir()
	const real = "NaiveBayes"
	cfg := DefaultTable4Config()
	cfg.Instances = 150
	cfg.Reps = 1
	cfg.Protocol.Runs = 3
	cfg.Protocol.MaxRounds = 1
	cfg.CVFolds = 2
	cfg.Quiet = true
	cfg.CheckpointDir = dir
	cfg.RowHook = func(name string) error {
		if name == real {
			return nil
		}
		return errors.New("skipped for speed")
	}
	rows, err := Table4Supervised(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var measured *Table4Row
	for i := range rows {
		if rows[i].Classifier == real {
			measured = &rows[i]
		}
	}
	if measured == nil || measured.Err != "" {
		t.Fatalf("real row failed: %+v", measured)
	}
	if measured.Changes <= 0 {
		t.Errorf("measured row has no changes: %+v", measured)
	}
	saved, ok := loadCheckpoint(dir, real)
	if !ok {
		t.Fatal("successful row not checkpointed")
	}
	if saved != *measured {
		t.Errorf("checkpoint round-trip drifted: %+v vs %+v", saved, *measured)
	}
	// Resume run must not re-measure: the hook fails everything, yet the
	// measured row returns intact.
	rows2, err := Table4Supervised(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{}
	for _, r := range rows2 {
		if r.Classifier == real {
			if r != *measured {
				t.Errorf("resumed row drifted: %+v vs %+v", r, *measured)
			}
		} else if r.Err == "" {
			names = append(names, r.Classifier)
		}
	}
	sort.Strings(names)
	if len(names) != 0 {
		t.Errorf("unexpected successes without checkpoints: %v", names)
	}
}
