package sched

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestTaskSeedDeterministicAndDistinct(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 1000; i++ {
		s := TaskSeed(20200518, i)
		if s2 := TaskSeed(20200518, i); s2 != s {
			t.Fatalf("TaskSeed not deterministic at %d: %#x vs %#x", i, s, s2)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("TaskSeed collision: indices %d and %d both map to %#x", prev, i, s)
		}
		seen[s] = i
	}
	if TaskSeed(7, 0) == 7 {
		t.Error("index 0 must not collapse onto the base seed")
	}
	if TaskSeed(7, 3) == TaskSeed(8, 3) {
		t.Error("different base seeds must produce different streams")
	}
}

func TestMapOrderAndSeeds(t *testing.T) {
	items := make([]int, 57)
	for i := range items {
		items[i] = i * 10
	}
	for _, jobs := range []int{1, 2, 4, 8} {
		got, tel, err := Map(context.Background(), Config{Jobs: jobs, Seed: 99}, items, func(task Task, item int) (string, error) {
			if want := TaskSeed(99, task.Index); task.Seed != want {
				return "", fmt.Errorf("task %d seed %#x, want %#x", task.Index, task.Seed, want)
			}
			return fmt.Sprintf("%d:%d", task.Index, item), nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i, s := range got {
			if want := fmt.Sprintf("%d:%d", i, i*10); s != want {
				t.Errorf("jobs=%d: result[%d] = %q, want %q", jobs, i, s, want)
			}
		}
		if tel.Tasks != len(items) || tel.Attempts != len(items) {
			t.Errorf("jobs=%d: telemetry tasks=%d attempts=%d, want %d/%d",
				jobs, tel.Tasks, tel.Attempts, len(items), len(items))
		}
		if tel.Jobs > len(items) {
			t.Errorf("jobs=%d: pool started %d workers for %d tasks", jobs, tel.Jobs, len(items))
		}
	}
}

// TestMapCommitStrictOrder pins the index-ordered commit invariant at every
// worker count: no matter which worker finishes first, commit observes task
// 0, 1, 2, ... in sequence on the caller's goroutine.
func TestMapCommitStrictOrder(t *testing.T) {
	items := make([]int, 41)
	for _, jobs := range []int{1, 3, 8} {
		var order []int
		_, _, err := MapCommit(context.Background(), Config{Jobs: jobs}, items, func(task Task, _ int) (int, error) {
			// Skew work so later tasks tend to finish before earlier ones.
			n := 0
			for i := 0; i < (len(items)-task.Index)*2000; i++ {
				n += i
			}
			return n, nil
		}, func(task Task, _ int) {
			order = append(order, task.Index)
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, idx := range order {
			if idx != i {
				t.Fatalf("jobs=%d: commit order %v, want strictly increasing from 0", jobs, order)
			}
		}
		if len(order) != len(items) {
			t.Fatalf("jobs=%d: %d commits for %d tasks", jobs, len(order), len(items))
		}
	}
}

// TestMapBitIdenticalReduction drives an order-sensitive float reduction
// (summation order changes the bits) through MapCommit and demands the exact
// same bit pattern at every worker count.
func TestMapBitIdenticalReduction(t *testing.T) {
	items := make([]int, 100)
	run := func(jobs int) float64 {
		sum := 0.0
		_, _, err := MapCommit(context.Background(), Config{Jobs: jobs, Seed: 5}, items, func(task Task, _ int) (float64, error) {
			// A value scaled so the summation is not associative in float64.
			return 0.1 * float64(task.Seed%1000) / float64(task.Index+1), nil
		}, func(_ Task, v float64) {
			sum += v
		})
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	want := run(1)
	for _, jobs := range []int{2, 4, 8} {
		if got := run(jobs); got != want {
			t.Errorf("jobs=%d: sum %x, sequential %x", jobs, got, want)
		}
	}
}

func TestMapFirstErrorByIndex(t *testing.T) {
	boom := errors.New("boom")
	items := make([]int, 20)
	for _, jobs := range []int{1, 4} {
		got, _, err := Map(context.Background(), Config{Jobs: jobs}, items, func(task Task, _ int) (int, error) {
			if task.Index == 7 || task.Index == 3 {
				return 0, fmt.Errorf("task %d: %w", task.Index, boom)
			}
			return task.Index, nil
		})
		if err == nil || !errors.Is(err, boom) {
			t.Fatalf("jobs=%d: err = %v, want wrapped boom", jobs, err)
		}
		if !strings.Contains(err.Error(), "task 3") {
			t.Errorf("jobs=%d: err = %v, want the lowest-index failure (task 3)", jobs, err)
		}
		// Non-failing tasks still ran and reported.
		if got[19] != 19 {
			t.Errorf("jobs=%d: trailing task skipped after error", jobs)
		}
	}
}

func TestMapPanicBecomesError(t *testing.T) {
	items := make([]int, 5)
	for _, jobs := range []int{1, 3} {
		_, tel, err := Map(context.Background(), Config{Jobs: jobs}, items, func(task Task, _ int) (int, error) {
			if task.Index == 2 {
				panic("kaboom")
			}
			return 0, nil
		})
		if err == nil || !strings.Contains(err.Error(), "kaboom") {
			t.Fatalf("jobs=%d: err = %v, want recovered panic", jobs, err)
		}
		if tel.Panics != 1 {
			t.Errorf("jobs=%d: panics = %d, want 1", jobs, tel.Panics)
		}
	}
}

// TestMapRetryQueue checks the retry path: a task that fails on its first
// attempts is re-queued and eventually succeeds, the ledger counts the extra
// attempts, and under a multi-worker pool the pickups register as steals.
func TestMapRetryQueue(t *testing.T) {
	items := make([]int, 12)
	for _, jobs := range []int{1, 4} {
		attempts := make([]int32, len(items))
		got, tel, err := Map(context.Background(), Config{Jobs: jobs, Retries: 2}, items, func(task Task, _ int) (int, error) {
			attempts[task.Index]++
			// Tasks 1 and 5 fail twice before succeeding; the rest pass.
			if (task.Index == 1 || task.Index == 5) && attempts[task.Index] <= 2 {
				return 0, errors.New("transient")
			}
			return task.Index, nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i, v := range got {
			if v != i {
				t.Errorf("jobs=%d: result[%d] = %d", jobs, i, v)
			}
		}
		if want := len(items) + 4; tel.Attempts != want {
			t.Errorf("jobs=%d: attempts = %d, want %d", jobs, tel.Attempts, want)
		}
		if jobs > 1 && tel.Steals != 4 {
			t.Errorf("jobs=%d: steals = %d, want 4 retry pickups", jobs, tel.Steals)
		}
	}
}

func TestMapRetriesExhausted(t *testing.T) {
	items := make([]int, 3)
	_, tel, err := Map(context.Background(), Config{Jobs: 2, Retries: 3}, items, func(task Task, _ int) (int, error) {
		if task.Index == 1 {
			return 0, errors.New("always down")
		}
		return 0, nil
	})
	if err == nil || !strings.Contains(err.Error(), "always down") {
		t.Fatalf("err = %v, want exhausted-retries failure", err)
	}
	if want := 2 + 4; tel.Attempts != want { // 2 clean tasks + 1 initial + 3 retries
		t.Errorf("attempts = %d, want %d", tel.Attempts, want)
	}
}

func TestMapEmptyAndTelemetryRender(t *testing.T) {
	got, tel, err := Map(context.Background(), Config{Jobs: 4}, nil, func(Task, struct{}) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty map: %v, %d results", err, len(got))
	}
	if s := tel.String(); !strings.Contains(s, "tasks=0") {
		t.Errorf("telemetry render: %q", s)
	}
	// A populated run renders utilization and the straggler.
	_, tel, err = Map(context.Background(), Config{Jobs: 2}, make([]int, 6), func(task Task, _ int) (int, error) {
		n := 0
		for i := 0; i < 10000; i++ {
			n += i
		}
		return n, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := tel.String()
	for _, want := range []string{"jobs=", "attempts=6", "steals=0", "straggler=#"} {
		if !strings.Contains(s, want) {
			t.Errorf("telemetry render %q missing %q", s, want)
		}
	}
	if u := tel.Utilization(); u < 0 || u > 1.5 {
		t.Errorf("utilization = %v, implausible", u)
	}
}

// TestMapResultsIndependentOfJobs is the package-level determinism contract:
// a deterministic per-task function merged through MapCommit produces a
// deeply equal result set and reduction at any worker count.
func TestMapResultsIndependentOfJobs(t *testing.T) {
	items := make([]int, 33)
	run := func(jobs int) ([]uint64, []int) {
		var committed []int
		res, _, err := MapCommit(context.Background(), Config{Jobs: jobs, Seed: 41}, items, func(task Task, _ int) (uint64, error) {
			// A mini per-task RNG stream: results depend only on the seed.
			s := task.Seed
			for i := 0; i < 10; i++ {
				s ^= s << 13
				s ^= s >> 7
				s ^= s << 17
			}
			return s, nil
		}, func(task Task, _ uint64) {
			committed = append(committed, task.Index)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, committed
	}
	wantRes, wantCommit := run(1)
	for _, jobs := range []int{2, 5, 16} {
		gotRes, gotCommit := run(jobs)
		if !reflect.DeepEqual(gotRes, wantRes) {
			t.Errorf("jobs=%d: results diverge from sequential", jobs)
		}
		if !reflect.DeepEqual(gotCommit, wantCommit) {
			t.Errorf("jobs=%d: commit order diverges from sequential", jobs)
		}
	}
}
