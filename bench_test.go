// Package jepo_test holds the benchmark harness that regenerates every table
// and figure of the paper's evaluation:
//
//	BenchmarkTable1/*   — the component energy pairs behind Table I
//	BenchmarkTable2     — per-classifier WEKA metrics (Table II)
//	BenchmarkTable3     — airlines data generation (Table III)
//	BenchmarkTable4/*   — per-classifier kernel, original vs JEPO-refactored
//	BenchmarkFig2_...   — the dynamic suggestion view
//	BenchmarkFig4_...   — the method-granularity profiler
//	BenchmarkFig5_...   — the optimizer view over a whole corpus file
//	BenchmarkClassifiers/* — the WEKA substrate itself
//
// Each Table IV benchmark reports the simulated package energy per run as
// the custom metric "µJ/op" next to wall time, and its */Refactored variant
// shows the improvement the paper's Table IV reports. Shapes — who wins and
// by roughly what factor — are asserted in the test suite; the benchmarks
// exist to regenerate the numbers.
package jepo_test

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"jepo/internal/airlines"
	"jepo/internal/classify"
	"jepo/internal/classify/eval"
	"jepo/internal/core"
	"jepo/internal/corpus"
	"jepo/internal/energy"
	"jepo/internal/jmetrics"
	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/interp"
	"jepo/internal/minijava/parser"
	"jepo/internal/refactor"
	"jepo/internal/suggest"
	"jepo/internal/tables"
)

const benchSeed = 20200518

// --- Table I ---

// benchProgram measures one mini-Java program variant, reporting simulated
// package energy per iteration.
func benchProgram(b *testing.B, src string) {
	b.Helper()
	f, err := parser.Parse("bench.java", src)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := interp.Load(f)
	if err != nil {
		b.Fatal(err)
	}
	var total energy.Joules
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := interp.New(prog, energy.NewMeter(energy.DefaultCosts()), interp.WithMaxOps(200_000_000))
		if err := in.InitStatics(); err != nil {
			b.Fatal(err)
		}
		if _, err := in.CallStatic("B", "f"); err != nil {
			b.Fatal(err)
		}
		total += in.Meter().Snapshot().Package
	}
	b.ReportMetric(total.Microjoules()/float64(b.N), "µJ/op")
}

func BenchmarkTable1(b *testing.B) {
	pairs := []struct {
		name       string
		slow, fast string
	}{
		{"PrimitiveTypes", benchSrcDouble, benchSrcInt},
		{"Modulus", benchSrcMod, benchSrcMul},
		{"Static", benchSrcStatic, benchSrcLocal},
		{"Ternary", benchSrcTernary, benchSrcIfElse},
		{"Concat", benchSrcConcat, benchSrcBuilder},
		{"CompareTo", benchSrcCompareTo, benchSrcEquals},
		{"Arraycopy", benchSrcManualCopy, benchSrcArraycopy},
		{"Traversal", benchSrcColumn, benchSrcRow},
	}
	for _, p := range pairs {
		b.Run(p.name+"/Inefficient", func(b *testing.B) { benchProgram(b, p.slow) })
		b.Run(p.name+"/Efficient", func(b *testing.B) { benchProgram(b, p.fast) })
	}
}

const (
	benchSrcDouble = `class B { static double f() { double s = 0.0; for (int i = 0; i < 5000; i++) { s = s + i; } return s; } }`
	benchSrcInt    = `class B { static double f() { int s = 0; for (int i = 0; i < 5000; i++) { s = s + i; } return s; } }`

	benchSrcMod = `class B { static double f() { int s = 0; for (int i = 1; i < 5000; i++) { s += i % 7; } return s; } }`
	benchSrcMul = `class B { static double f() { int s = 0; for (int i = 1; i < 5000; i++) { s += i * 7; } return s; } }`

	benchSrcStatic = `class B { static int acc; static double f() { for (int i = 0; i < 5000; i++) { acc += i; } return acc; } }`
	benchSrcLocal  = `class B { static double f() { int acc = 0; for (int i = 0; i < 5000; i++) { acc += i; } return acc; } }`

	benchSrcTernary = `class B { static double f() { int s = 0; for (int i = 0; i < 5000; i++) { s += i > 2500 ? 2 : 1; } return s; } }`
	benchSrcIfElse  = `class B { static double f() { int s = 0; for (int i = 0; i < 5000; i++) { if (i > 2500) { s += 2; } else { s += 1; } } return s; } }`

	benchSrcConcat  = `class B { static double f() { String s = ""; for (int i = 0; i < 200; i++) { s = s + "x"; } return s.length(); } }`
	benchSrcBuilder = `class B { static double f() { StringBuilder sb = new StringBuilder(); for (int i = 0; i < 200; i++) { sb.append("x"); } return sb.toString().length(); } }`

	benchSrcCompareTo = `class B { static double f() { String a = "airlinesData"; String b = "airlinesData"; int s = 0; for (int i = 0; i < 2000; i++) { if (a.compareTo(b) == 0) { s++; } } return s; } }`
	benchSrcEquals    = `class B { static double f() { String a = "airlinesData"; String b = "airlinesData"; int s = 0; for (int i = 0; i < 2000; i++) { if (a.equals(b)) { s++; } } return s; } }`

	benchSrcManualCopy = `class B { static double f() { int[] a = new int[3000]; int[] b = new int[3000]; for (int i = 0; i < 3000; i++) { b[i] = a[i]; } return b[2999]; } }`
	benchSrcArraycopy  = `class B { static double f() { int[] a = new int[3000]; int[] b = new int[3000]; System.arraycopy(a, 0, b, 0, 3000); return b[2999]; } }`

	benchSrcColumn = `class B { static double f() { int[][] m = new int[600][600]; int s = 0; for (int j = 0; j < 600; j++) { for (int i = 0; i < 600; i++) { s += m[i][j]; } } return s; } }`
	benchSrcRow    = `class B { static double f() { int[][] m = new int[600][600]; int s = 0; for (int i = 0; i < 600; i++) { for (int j = 0; j < 600; j++) { s += m[i][j]; } } return s; } }`
)

// --- Table II ---

func BenchmarkTable2_MetricsJ48(b *testing.B) {
	p, err := corpus.Generate("J48", benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	files, err := p.Parse()
	if err != nil {
		b.Fatal(err)
	}
	srcs := make([]jmetrics.SourceFile, len(files))
	for i := range files {
		srcs[i] = jmetrics.SourceFile{AST: files[i], Source: p.Files[i].Source}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proj := jmetrics.NewProject(srcs)
		m, err := proj.Measure("J48")
		if err != nil {
			b.Fatal(err)
		}
		if m.Dependencies == 0 {
			b.Fatal("empty closure")
		}
	}
}

// --- Table III ---

func BenchmarkTable3_Generate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := airlines.Generate(airlines.PaperSize, benchSeed)
		if d.NumInstances() != airlines.PaperSize {
			b.Fatal("bad size")
		}
	}
}

// --- Table IV: per-classifier kernels, original vs refactored ---

// table4KernelBench measures one kernel variant on airlines data.
func table4KernelBench(b *testing.B, name string, refactored bool) {
	b.Helper()
	proj, err := corpus.Generate(name, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	var kernel *ast.File
	for _, f := range proj.Files {
		if strings.HasSuffix(f.Path, corpus.KernelClass(name)+".java") {
			kernel, err = parser.Parse(f.Path, f.Source)
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	if kernel == nil {
		b.Fatalf("kernel for %s missing", name)
	}
	if refactored {
		refactor.Apply([]*ast.File{kernel})
	}
	data := airlines.Generate(2000, benchSeed)
	feats := make([][]float64, data.NumInstances())
	labels := make([]int64, data.NumInstances())
	for i, row := range data.X {
		feats[i] = row[:7]
		labels[i] = int64(data.Class(i))
	}
	var total energy.Joules
	var elapsed time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, err := interp.Load(kernel)
		if err != nil {
			b.Fatal(err)
		}
		in := interp.New(prog, energy.NewMeter(energy.DefaultCosts()), interp.WithMaxOps(2_000_000_000))
		if err := in.InitStatics(); err != nil {
			b.Fatal(err)
		}
		kc := corpus.KernelClass(name)
		if err := in.Bind(kc, "DATA", in.NewDoubleMatrix(feats)); err != nil {
			b.Fatal(err)
		}
		if err := in.Bind(kc, "LABELS", in.NewIntArray(labels)); err != nil {
			b.Fatal(err)
		}
		if _, err := in.CallStatic(kc, "run", interp.IntVal(1)); err != nil {
			b.Fatal(err)
		}
		s := in.Meter().Snapshot()
		total += s.Package
		elapsed += s.Elapsed
	}
	b.ReportMetric(total.Microjoules()/float64(b.N), "µJ/op")
	b.ReportMetric(float64(elapsed.Microseconds())/float64(b.N), "simµs/op")
}

func BenchmarkTable4(b *testing.B) {
	for _, name := range corpus.Classifiers {
		b.Run(name+"/Original", func(b *testing.B) { table4KernelBench(b, name, false) })
		b.Run(name+"/Refactored", func(b *testing.B) { table4KernelBench(b, name, true) })
	}
}

// --- Figures ---

// Fig. 2: the dynamic suggestion view while editing.
func BenchmarkFig2_DynamicSuggestions(b *testing.B) {
	p, err := corpus.Generate("J48", benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	src := p.Files[0].Source
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sugs, err := core.Suggest(p.Files[0].Path, src)
		if err != nil {
			b.Fatal(err)
		}
		if core.DynamicView(sugs, 20) == "" {
			b.Fatal("empty view")
		}
	}
}

// Fig. 4: the method-granularity profiler over an instrumented run.
func BenchmarkFig4_Profiler(b *testing.B) {
	project := core.Project{"Hot.java": `
		class Hot {
			static int work(int n) {
				int s = 0;
				for (int i = 0; i < n; i++) { s += i % 7; }
				return s;
			}
			public static void main(String[] args) {
				System.out.println(work(3000));
			}
		}`}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Profile(context.Background(), project, core.ProfileConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Profiler.Records()) != 2 {
			b.Fatal("unexpected record count")
		}
	}
}

// Fig. 5: the optimizer view over a whole project.
func BenchmarkFig5_OptimizerView(b *testing.B) {
	p, err := corpus.Generate("IBk", benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	// A slice of the corpus keeps the benchmark meaningful but quick.
	files := make([]*ast.File, 0, 40)
	for i := 0; i < 40; i++ {
		f, err := parser.Parse(p.Files[i].Path, p.Files[i].Source)
		if err != nil {
			b.Fatal(err)
		}
		files = append(files, f)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sugs := suggest.AnalyzeAll(files)
		if len(sugs) == 0 {
			b.Fatal("no suggestions in seeded corpus")
		}
		_ = core.OptimizerView(sugs)
	}
}

// BenchmarkAblation measures the Random Forest kernel under each cost-model
// variant, regenerating the ablation study.
func BenchmarkAblation(b *testing.B) {
	cfg := tables.AblationConfig{Seed: benchSeed, Classifier: "RandomForest", Instances: 300, Reps: 2}
	for i := 0; i < b.N; i++ {
		rows, err := tables.Ablate(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no ablation rows")
		}
	}
}

// --- the WEKA substrate itself ---

func BenchmarkClassifiers(b *testing.B) {
	data := airlines.Generate(800, benchSeed)
	for _, name := range corpus.Classifiers {
		factory, err := tables.Factory(name, classify.Options{Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := eval.CrossValidate(data, 3, benchSeed, factory)
				if err != nil {
					b.Fatal(err)
				}
				if res.Total == 0 {
					b.Fatal("empty evaluation")
				}
			}
		})
	}
}

// BenchmarkInterpreter measures raw interpreter throughput, the substrate
// every energy number in this repository flows through.
func BenchmarkInterpreter(b *testing.B) {
	src := `class B { static int f(int n) {
		int s = 0;
		for (int i = 0; i < n; i++) { s += i * 3 - (i >> 1); }
		return s;
	} }`
	f, err := parser.Parse("b.java", src)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := interp.Load(f)
	if err != nil {
		b.Fatal(err)
	}
	in := interp.New(prog, energy.NewMeter(energy.DefaultCosts()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.CallStatic("B", "f", interp.IntVal(10000)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- interpreter hot-path micro-benchmarks ---
//
// These three isolate the costs the slot-resolved interpreter attacks:
// identifier resolution (locals vs fields vs statics), call dispatch, and
// per-invoke allocation. allocs/op is the headline metric — frame and
// argument pooling should hold it near zero once the pools warm.

// benchInterpCall loads src once and measures repeated CallStatic invocations
// of B.f on a single interpreter, so pools and call-site caches stay warm
// across iterations exactly as they do inside one simulated measurement run.
func benchInterpCall(b *testing.B, src string, args ...interp.Value) {
	b.Helper()
	f, err := parser.Parse("micro.java", src)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := interp.Load(f)
	if err != nil {
		b.Fatal(err)
	}
	in := interp.New(prog, energy.NewMeter(energy.DefaultCosts()), interp.WithMaxOps(2_000_000_000))
	if err := in.InitStatics(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.CallStatic("B", "f", args...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpLocals is identifier-heavy straight-line code: every
// iteration of the loop touches several locals and an instance field.
func BenchmarkInterpLocals(b *testing.B) {
	benchInterpCall(b, `class B {
		int acc;
		static double f() {
			B o = new B();
			int a = 1; int c = 2; int d = 3; int e = 4;
			for (int i = 0; i < 2000; i++) {
				int tmp = a + c;
				o.acc = o.acc + tmp - d + e - c;
				a = tmp - e;
			}
			return o.acc + a;
		}
	}`)
}

// BenchmarkInterpCalls is call-dispatch-heavy: a tight loop of static and
// instance method invocations with arguments.
func BenchmarkInterpCalls(b *testing.B) {
	benchInterpCall(b, `class B {
		int bias;
		int step(int x) { return x + bias; }
		static int twice(int x) { return x + x; }
		static double f() {
			B o = new B();
			o.bias = 3;
			int s = 0;
			for (int i = 0; i < 1000; i++) {
				s += o.step(twice(i)) + twice(o.step(i));
			}
			return s;
		}
	}`)
}

// BenchmarkInterpRecursion stresses frame setup/teardown with deep recursion,
// the worst case for per-invoke allocation.
func BenchmarkInterpRecursion(b *testing.B) {
	benchInterpCall(b, `class B {
		static int fib(int n) {
			if (n < 2) { return n; }
			return fib(n - 1) + fib(n - 2);
		}
		static double f() { return fib(17); }
	}`)
}

// A tiny sanity check so `go test .` is meaningful at the repo root too.
func TestBenchHarnessSmoke(t *testing.T) {
	rows, err := tables.Table1(context.Background(), interp.EngineVM)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != suggest.NumTableIRules {
		t.Fatalf("Table I rows = %d", len(rows))
	}
	out := fmt.Sprintf("%v", rows[0])
	if out == "" {
		t.Fatal("empty row")
	}
}
