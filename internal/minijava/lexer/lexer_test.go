package lexer

import (
	"testing"

	"jepo/internal/minijava/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, err := Scan(src)
	if err != nil {
		t.Fatalf("Scan(%q): %v", src, err)
	}
	out := make([]token.Kind, 0, len(toks))
	for _, tk := range toks {
		out = append(out, tk.Kind)
	}
	return out
}

func TestScanBasics(t *testing.T) {
	got := kinds(t, `int x = a % 3;`)
	want := []token.Kind{token.KwInt, token.IDENT, token.Assign, token.IDENT,
		token.Percent, token.INTLIT, token.Semi, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestScanOperators(t *testing.T) {
	src := `a += b; c <<= 0; x && y || !z; i++; j--; p <= q; r >= s; m != n; k == l;`
	// <<= is not in the dialect: it lexes as << then =.
	toks, err := Scan(src)
	if err != nil {
		t.Fatal(err)
	}
	var sawShl, sawAssign bool
	for _, tk := range toks {
		if tk.Kind == token.Shl {
			sawShl = true
		}
		if tk.Kind == token.Assign {
			sawAssign = true
		}
	}
	if !sawShl || !sawAssign {
		t.Error("<<= must lex as << followed by =")
	}
}

func TestScanNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind token.Kind
	}{
		{"42", token.INTLIT},
		{"42L", token.LONGLIT},
		{"0x1F", token.INTLIT},
		{"0xFFL", token.LONGLIT},
		{"3.14", token.DOUBLELIT},
		{"3.14f", token.FLOATLIT},
		{"1e5", token.DOUBLELIT},
		{"1.5e-3", token.DOUBLELIT},
		{"2d", token.DOUBLELIT},
		{".5", token.DOUBLELIT},
		{"1_000_000", token.INTLIT},
	}
	for _, c := range cases {
		toks, err := Scan(c.src)
		if err != nil {
			t.Errorf("Scan(%q): %v", c.src, err)
			continue
		}
		if toks[0].Kind != c.kind {
			t.Errorf("Scan(%q) kind = %v, want %v", c.src, toks[0].Kind, c.kind)
		}
		if toks[0].Text != c.src {
			t.Errorf("Scan(%q) text = %q", c.src, toks[0].Text)
		}
	}
}

func TestScanStringsAndChars(t *testing.T) {
	toks, err := Scan(`"hello \"world\"" 'a' '\n' '\''`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != token.STRINGLIT || toks[0].Text != `"hello \"world\""` {
		t.Errorf("string token = %v %q", toks[0].Kind, toks[0].Text)
	}
	if toks[1].Kind != token.CHARLIT || toks[2].Kind != token.CHARLIT || toks[3].Kind != token.CHARLIT {
		t.Error("char literals not scanned")
	}
}

func TestScanComments(t *testing.T) {
	got := kinds(t, "int /* block \n comment */ x; // line\n y")
	want := []token.Kind{token.KwInt, token.IDENT, token.Semi, token.IDENT, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestScanPositions(t *testing.T) {
	toks, err := Scan("int x;\n  y = 2;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("first token at %v, want 1:1", toks[0].Pos)
	}
	// 'y' is on line 2, col 3.
	if toks[3].Pos.Line != 2 || toks[3].Pos.Col != 3 {
		t.Errorf("'y' at %v, want 2:3", toks[3].Pos)
	}
}

func TestScanErrors(t *testing.T) {
	for _, src := range []string{
		`"unterminated`,
		`'`,
		`''`,
		`'ab`,
		`#`,
		`/* open`,
		`1e`,
		`1.5L`,
	} {
		if _, err := Scan(src); err == nil {
			t.Errorf("Scan(%q): want error", src)
		}
	}
}

func TestKeywords(t *testing.T) {
	got := kinds(t, "class instanceof finally throws")
	want := []token.Kind{token.KwClass, token.KwInstanceof, token.KwFinally, token.KwThrows, token.EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestIsScientific(t *testing.T) {
	if !IsScientific("1e5") || !IsScientific("2.5E-3") {
		t.Error("scientific literals not recognized")
	}
	if IsScientific("15.0") || IsScientific("0xE") {
		t.Error("non-scientific literals misclassified")
	}
}
