package eval

import (
	"context"
	"math"
	"strings"
	"testing"

	"jepo/internal/airlines"
	"jepo/internal/classify"
	"jepo/internal/classify/bayes"
	"jepo/internal/classify/lazy"
	"jepo/internal/classify/linear"
	"jepo/internal/classify/svm"
	"jepo/internal/classify/tree"
	"jepo/internal/dataset"
)

// factories enumerates all ten paper classifiers with fast test settings.
func factories(opts classify.Options) map[string]Factory {
	return map[string]Factory{
		"J48":          func() classify.Classifier { return tree.NewJ48(opts) },
		"RandomTree":   func() classify.Classifier { return tree.NewRandomTree(opts) },
		"RandomForest": func() classify.Classifier { return tree.NewRandomForest(opts, 10) },
		"REPTree":      func() classify.Classifier { return tree.NewREPTree(opts) },
		"NaiveBayes":   func() classify.Classifier { return bayes.New(opts) },
		"Logistic": func() classify.Classifier {
			c := linear.NewLogistic(opts)
			c.Epochs = 15
			return c
		},
		"SMO": func() classify.Classifier {
			c := svm.New(opts)
			c.MaxPasses = 2
			return c
		},
		"SGD": func() classify.Classifier {
			c := linear.NewSGD(opts)
			c.Epochs = 15
			return c
		},
		"KStar": func() classify.Classifier { return lazy.NewKStar(opts) },
		"IBk":   func() classify.Classifier { return lazy.NewIBk(opts, 3) },
	}
}

// separable builds a trivially separable two-class dataset: class is 1 when
// x > 5, with a correlated nominal attribute.
func separable(n int) *dataset.Dataset {
	d := dataset.New("sep", 2,
		dataset.NewNumeric("x"),
		dataset.NewNominal("hint", "lo", "hi"),
		dataset.NewNominal("class", "neg", "pos"),
	)
	r := classify.NewRNG(11)
	for i := 0; i < n; i++ {
		x := 10 * r.Float64()
		cls := 0.0
		hint := 0.0
		if x > 5 {
			cls, hint = 1, 1
		}
		d.Add([]float64{x, hint, cls})
	}
	return d
}

func TestAllClassifiersLearnSeparableData(t *testing.T) {
	d := separable(300)
	for name, mk := range factories(classify.Options{Seed: 3}) {
		res, err := CrossValidate(d, 5, 7, mk)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if res.Accuracy() < 95 {
			t.Errorf("%s accuracy on separable data = %.2f%%, want ≥95%%", name, res.Accuracy())
		}
		if res.Kappa() < 0.85 {
			t.Errorf("%s kappa = %.3f, want high", name, res.Kappa())
		}
	}
}

func TestAllClassifiersBeatMajorityOnAirlines(t *testing.T) {
	d := airlines.Generate(1200, 42)
	maj := 100 * float64(d.ClassCounts()[d.MajorityClass()]) / float64(d.NumInstances())
	for name, mk := range factories(classify.Options{Seed: 5}) {
		res, err := CrossValidate(d, 5, 9, mk)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if res.Accuracy() <= maj {
			t.Errorf("%s airlines accuracy = %.2f%%, majority = %.2f%% — no learning",
				name, res.Accuracy(), maj)
		}
		t.Logf("%-12s airlines accuracy = %.2f%% (majority %.2f%%)", name, res.Accuracy(), maj)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	d := airlines.Generate(600, 42)
	for name, mk := range factories(classify.Options{Seed: 5}) {
		a, err := CrossValidate(d, 4, 9, mk)
		if err != nil {
			t.Fatal(err)
		}
		b, err := CrossValidate(d, 4, 9, mk)
		if err != nil {
			t.Fatal(err)
		}
		if a.Accuracy() != b.Accuracy() {
			t.Errorf("%s not deterministic: %.4f vs %.4f", name, a.Accuracy(), b.Accuracy())
		}
	}
}

// Single-precision mode must stay close to double precision — the paper's
// Table IV reports accuracy drops of at most 0.48%… small but sometimes
// non-zero.
func TestSinglePrecisionDropIsSmall(t *testing.T) {
	d := airlines.Generate(1200, 42)
	for name := range factories(classify.Options{}) {
		dbl, err := CrossValidate(d, 4, 9, factories(classify.Options{Seed: 5, FP: classify.Double})[name])
		if err != nil {
			t.Fatal(err)
		}
		sgl, err := CrossValidate(d, 4, 9, factories(classify.Options{Seed: 5, FP: classify.Single})[name])
		if err != nil {
			t.Fatal(err)
		}
		drop := dbl.Accuracy() - sgl.Accuracy()
		if math.Abs(drop) > 3.0 {
			t.Errorf("%s precision drop = %.3f%%, want small", name, drop)
		}
		t.Logf("%-12s double=%.2f%% single=%.2f%% drop=%+.3f%%", name, dbl.Accuracy(), sgl.Accuracy(), drop)
	}
}

func TestHoldout(t *testing.T) {
	d := separable(400)
	folds, err := d.StratifiedFolds(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	train, test := d.TrainTest(folds, 0)
	res, err := Holdout(train, test, func() classify.Classifier {
		return tree.NewJ48(classify.Options{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != test.NumInstances() {
		t.Errorf("holdout total = %d", res.Total)
	}
	if res.Accuracy() < 95 {
		t.Errorf("holdout accuracy = %.2f%%", res.Accuracy())
	}
	if !strings.Contains(res.String(), "Correctly Classified") {
		t.Error("summary rendering broken")
	}
}

func TestCrossValidateErrors(t *testing.T) {
	d := separable(10)
	if _, err := CrossValidate(d, 100, 1, func() classify.Classifier {
		return bayes.New(classify.Options{})
	}); err == nil {
		t.Error("k > n accepted")
	}
	empty := d.Empty()
	if _, err := Holdout(empty, d, func() classify.Classifier {
		return bayes.New(classify.Options{})
	}); err == nil {
		t.Error("empty training set accepted")
	}
}

// TestPerFoldFiniteAtMinimumFoldSize drives CrossValidate at the k == n
// extreme where every test fold holds exactly one instance, the closest the
// public API gets to the degenerate empty-fold case PerFold guards against:
// every per-fold accuracy must be a finite 0 or 100, never NaN.
func TestPerFoldFiniteAtMinimumFoldSize(t *testing.T) {
	d := separable(8)
	res, err := CrossValidate(d, 8, 5, func() classify.Classifier {
		return bayes.New(classify.Options{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerFold) != 8 {
		t.Fatalf("got %d folds, want 8", len(res.PerFold))
	}
	for f, acc := range res.PerFold {
		if math.IsNaN(acc) || math.IsInf(acc, 0) {
			t.Errorf("fold %d accuracy is %v, want finite", f, acc)
		}
		if acc != 0 && acc != 100 {
			t.Errorf("fold %d accuracy %v, want 0 or 100 for 1-instance folds", f, acc)
		}
	}
}

func TestConfusionMatrixConsistent(t *testing.T) {
	d := separable(200)
	res, err := CrossValidate(d, 4, 3, func() classify.Classifier {
		return lazy.NewIBk(classify.Options{}, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, diag := 0, 0
	for i := range res.Confusion {
		for j := range res.Confusion[i] {
			sum += res.Confusion[i][j]
			if i == j {
				diag += res.Confusion[i][j]
			}
		}
	}
	if sum != res.Total || diag != res.Correct {
		t.Errorf("confusion sum=%d diag=%d vs total=%d correct=%d", sum, diag, res.Total, res.Correct)
	}
}

func TestPrecisionRecallF1(t *testing.T) {
	r := &Result{
		Correct: 7,
		Total:   10,
		Confusion: [][]int{
			{4, 1}, // actual 0: 4 right, 1 predicted as 1
			{2, 3}, // actual 1: 2 predicted as 0, 3 right
		},
	}
	p, rec, f1 := r.PrecisionRecallF1(0)
	if math.Abs(p-4.0/6.0) > 1e-12 {
		t.Errorf("precision = %v, want 4/6", p)
	}
	if math.Abs(rec-4.0/5.0) > 1e-12 {
		t.Errorf("recall = %v, want 4/5", rec)
	}
	wantF1 := 2 * (4.0 / 6.0) * (4.0 / 5.0) / (4.0/6.0 + 4.0/5.0)
	if math.Abs(f1-wantF1) > 1e-12 {
		t.Errorf("f1 = %v, want %v", f1, wantF1)
	}
	// Out-of-range class and degenerate rows are safe.
	if p, _, _ := r.PrecisionRecallF1(9); p != 0 {
		t.Error("out-of-range class must yield zeros")
	}
	zero := &Result{Confusion: [][]int{{0, 0}, {0, 0}}}
	if p, rec, f1 := zero.PrecisionRecallF1(0); p != 0 || rec != 0 || f1 != 0 {
		t.Error("degenerate confusion must yield zeros")
	}
	out := r.DetailedByClass([]string{"no", "yes"})
	if !strings.Contains(out, "no") || !strings.Contains(out, "Precision") {
		t.Errorf("detailed block malformed:\n%s", out)
	}
}

// seededTreeFactory builds a per-fold RandomTree from the fold's pre-derived
// seed — the randomized classifier most sensitive to its stream.
func seededTreeFactory(fp classify.FP) SeededFactory {
	return func(_ int, foldSeed uint64) classify.Classifier {
		return tree.NewRandomTree(classify.Options{Seed: foldSeed, FP: fp})
	}
}

// TestFoldSeedsPureAndDistinct pins the seed derivation: a pure function of
// (seed, fold), no shared generator, distinct streams per fold.
func TestFoldSeedsPureAndDistinct(t *testing.T) {
	a := FoldSeeds(9, 10)
	b := FoldSeeds(9, 10)
	seen := map[uint64]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fold %d seed not deterministic: %#x vs %#x", i, a[i], b[i])
		}
		if seen[a[i]] {
			t.Fatalf("fold %d reuses another fold's seed %#x", i, a[i])
		}
		seen[a[i]] = true
	}
	if FoldSeeds(9, 3)[2] != a[2] {
		t.Error("fold 2's seed depends on k, not only on (seed, fold)")
	}
}

// TestCrossValidateSeededOrderIndependent is the regression test for the
// latent order-dependence the fold loop used to have: with pre-derived
// per-fold seeds, fold f's outcome is a pure function of (dataset, seed, f).
// It must not matter whether the other folds ran before it, after it, or
// concurrently — proven by (a) bit-identical results at every worker count
// and (b) recomputing one fold in isolation and matching the full run.
func TestCrossValidateSeededOrderIndependent(t *testing.T) {
	d := airlines.Generate(400, 42)
	const k, seed = 5, 9
	want, err := CrossValidateSeeded(context.Background(), d, k, seed, seededTreeFactory(classify.Double), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{2, 5, 8} {
		got, err := CrossValidateSeeded(context.Background(), d, k, seed, seededTreeFactory(classify.Double), jobs)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if got.Correct != want.Correct || got.Total != want.Total {
			t.Errorf("jobs=%d: %d/%d correct, sequential %d/%d",
				jobs, got.Correct, got.Total, want.Correct, want.Total)
		}
		for f := range want.PerFold {
			if math.Float64bits(got.PerFold[f]) != math.Float64bits(want.PerFold[f]) {
				t.Errorf("jobs=%d: fold %d accuracy %v, sequential %v",
					jobs, f, got.PerFold[f], want.PerFold[f])
			}
		}
		for a := range want.Confusion {
			for p := range want.Confusion[a] {
				if got.Confusion[a][p] != want.Confusion[a][p] {
					t.Errorf("jobs=%d: confusion[%d][%d] = %d, sequential %d",
						jobs, a, p, got.Confusion[a][p], want.Confusion[a][p])
				}
			}
		}
	}

	// Recompute the last fold alone, outside the harness: same split, same
	// pre-derived seed, no other fold ever trained. Its accuracy must equal
	// the full run's PerFold entry bit for bit.
	folds, err := d.StratifiedFolds(k, seed)
	if err != nil {
		t.Fatal(err)
	}
	f := k - 1
	train, test := d.TrainTest(folds, f)
	c := seededTreeFactory(classify.Double)(f, FoldSeeds(seed, k)[f])
	if err := c.Train(train); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, row := range test.X {
		if c.Predict(row) == test.Class(i) {
			correct++
		}
	}
	alone := 100 * float64(correct) / float64(test.NumInstances())
	if math.Float64bits(alone) != math.Float64bits(want.PerFold[f]) {
		t.Errorf("fold %d alone = %v, inside the full run = %v — fold outcome depends on execution order",
			f, alone, want.PerFold[f])
	}
}

// TestCrossValidateCompatWrapper pins that the zero-argument-factory entry
// point still behaves exactly as before: every fold gets the factory's
// classifier unchanged, sequentially.
func TestCrossValidateCompatWrapper(t *testing.T) {
	d := separable(200)
	a, err := CrossValidate(d, 4, 3, factories(classify.Options{Seed: 5})["J48"])
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidateSeeded(context.Background(), d, 4, 3,
		func(int, uint64) classify.Classifier { return tree.NewJ48(classify.Options{Seed: 5}) }, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Correct != b.Correct || a.Total != b.Total {
		t.Errorf("wrapper diverges: %d/%d vs %d/%d", a.Correct, a.Total, b.Correct, b.Total)
	}
}
