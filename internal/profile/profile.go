// Package profile implements JEPO's method-granularity energy profiler. It
// receives the enter/exit events the instrumenter injects, reads the
// simulated (or real) RAPL counters at each event through the same sampler
// protocol hardware probes use, and records one measurement per method
// execution — "if one method is executed more than once, then the
// measurements are stored for each execution", as the paper specifies.
//
// The profiler is fault tolerant: a failed counter read degrades the record
// (flagged Estimated, measured against the last good reading) instead of
// poisoning the whole run, unbalanced enter/exit pairs from unwinding
// exceptions are recovered by dropping the orphaned frames, and Health()
// summarizes every degraded path taken so reports can qualify their joules.
package profile

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"jepo/internal/energy"
	"jepo/internal/rapl"
)

// Record is one method execution's measurement.
type Record struct {
	Method  string
	Seq     int // execution index for this method, starting at 1
	Elapsed time.Duration
	Package energy.Joules
	Core    energy.Joules
	DRAM    energy.Joules

	// Degraded marks a record whose counters took a degraded read path
	// (retry, interpolation, fallback, quarantine) or whose frame survived
	// an exception unwind; the energy is real but lower-confidence.
	Degraded bool
	// Estimated marks a record whose enter or exit read failed outright and
	// was served from the last-known-good snapshot; its delta is a floor.
	Estimated bool
}

// Health summarizes the degraded paths a profiled run took. The zero value
// means every probe balanced and every counter read succeeded first try.
type Health struct {
	Enters          int // enter probes received
	Exits           int // exit probes received
	ReadErrors      int // counter reads that failed even through the source's own resilience
	UnbalancedExits int // exit probes with no matching enter on the stack
	DroppedFrames   int // enters discarded while recovering from an unwind
	Degraded        int // records flagged Degraded
	Estimated       int // records flagged Estimated
	// Source carries the measurement source's own tally when it implements
	// rapl.HealthReporter (retries, interpolations, fallbacks, quarantines).
	Source rapl.Health
}

// Clean reports whether the run completed with no degradation at all.
func (h Health) Clean() bool {
	return h.ReadErrors == 0 && h.UnbalancedExits == 0 && h.DroppedFrames == 0 &&
		h.Degraded == 0 && h.Estimated == 0 && !h.Source.Degraded()
}

// String renders the summary in the form the CLIs print with every report.
func (h Health) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "probes: enters=%d exits=%d read_errors=%d unbalanced_exits=%d dropped_frames=%d degraded=%d estimated=%d",
		h.Enters, h.Exits, h.ReadErrors, h.UnbalancedExits, h.DroppedFrames, h.Degraded, h.Estimated)
	if h.Source != (rapl.Health{}) {
		fmt.Fprintf(&sb, "; source: %s", h.Source)
	}
	return sb.String()
}

// Profiler implements interp.ProbeHook over a RAPL source.
type Profiler struct {
	src   rapl.Source
	clock func() time.Duration

	// hr caches the source's HealthReporter view. Probes run on the
	// interpreter's hot path — two snapshots per instrumented call — and
	// the interface assertion is loop-invariant, so it is done once here
	// rather than per read.
	hr    rapl.HealthReporter
	hasHR bool

	stack    []frame
	records  []Record
	counts   map[string]int
	health   Health
	lastGood rapl.Snapshot
	err      error
}

type frame struct {
	method    string
	at        rapl.Snapshot
	t         time.Duration
	estimated bool
	degraded  bool
}

// New builds a profiler reading from src. clock supplies modelled elapsed
// time (use the meter's snapshot elapsed time for simulated runs, or a
// wall-clock function for real powercap runs).
func New(src rapl.Source, clock func() time.Duration) *Profiler {
	p := &Profiler{src: src, clock: clock, counts: map[string]int{}}
	p.hr, p.hasHR = src.(rapl.HealthReporter)
	return p
}

// snapshot reads the source, classifying the read: estimated means the read
// failed and the last good snapshot stands in; degraded means the source
// itself took a degraded path (retry/interpolation/fallback/quarantine) to
// produce it.
func (p *Profiler) snapshot(context, method string) (snap rapl.Snapshot, estimated, degraded bool) {
	var before rapl.Health
	if p.hasHR {
		before = p.hr.Health()
	}
	snap, err := p.src.Snapshot()
	if p.hasHR {
		after := p.hr.Health()
		if after.Retries > before.Retries || after.Fallbacks > before.Fallbacks ||
			after.Quarantined > before.Quarantined || after.Resets > before.Resets {
			degraded = true
		}
		if after.Interpolated > before.Interpolated {
			degraded, estimated = true, true
		}
	}
	if err != nil {
		p.health.ReadErrors++
		if p.err == nil {
			p.err = fmt.Errorf("profile: reading counters at %s of %s: %w", context, method, err)
		}
		return p.lastGood, true, true
	}
	p.lastGood = snap
	return snap, estimated, degraded
}

// Enter implements interp.ProbeHook. A failed counter read no longer loses
// the frame: the last good snapshot stands in and the eventual record is
// flagged Estimated, so the probe stack stays balanced.
func (p *Profiler) Enter(method string) {
	p.health.Enters++
	snap, est, deg := p.snapshot("enter", method)
	p.stack = append(p.stack, frame{method: method, at: snap, t: p.clock(), estimated: est, degraded: deg})
}

// Exit implements interp.ProbeHook. A mismatched exit — the signature of an
// exception unwinding through instrumented frames whose exit probes never
// ran — is recovered by dropping the orphaned frames down to the matching
// enter; the surviving record is flagged Degraded.
func (p *Profiler) Exit(method string) {
	p.health.Exits++
	i := len(p.stack) - 1
	for i >= 0 && p.stack[i].method != method {
		i--
	}
	if i < 0 {
		p.health.UnbalancedExits++
		if p.err == nil {
			p.err = fmt.Errorf("profile: exit of %s with no matching enter", method)
		}
		return
	}
	dropped := len(p.stack) - 1 - i
	if dropped > 0 {
		p.health.DroppedFrames += dropped
		if p.err == nil {
			p.err = fmt.Errorf("profile: probe mismatch: entered %s, exited %s (%d frame(s) unwound)",
				p.stack[len(p.stack)-1].method, method, dropped)
		}
	}
	top := p.stack[i]
	p.stack = p.stack[:i]

	snap, est, deg := p.snapshot("exit", method)
	d := snap.Sub(top.at)
	rec := Record{
		Method:    method,
		Elapsed:   p.clock() - top.t,
		Package:   d.Package,
		Core:      d.Core,
		DRAM:      d.DRAM,
		Estimated: est || top.estimated,
		Degraded:  deg || top.degraded || dropped > 0 || est || top.estimated,
	}
	p.counts[method]++
	rec.Seq = p.counts[method]
	if rec.Degraded {
		p.health.Degraded++
	}
	if rec.Estimated {
		p.health.Estimated++
	}
	p.records = append(p.records, rec)
}

// Err reports the first probe/counter anomaly encountered, if any. The run
// keeps recording past it; consult Health() for the full degradation tally.
func (p *Profiler) Err() error { return p.err }

// Health returns the degradation summary, including the source's own tally
// when the source reports one.
func (p *Profiler) Health() Health {
	h := p.health
	if p.hasHR {
		h.Source = p.hr.Health()
	}
	return h
}

// Records returns every per-execution measurement in completion order.
func (p *Profiler) Records() []Record { return p.records }

// Summary is the aggregated per-method view.
type Summary struct {
	Method     string
	Executions int
	Elapsed    time.Duration // total inclusive time
	Package    energy.Joules // total inclusive package energy
	Core       energy.Joules
	Degraded   int // executions whose measurement was degraded
}

// Summaries aggregates records per method, ordered by descending package
// energy — the energy-hungry methods the paper's profiler surfaces first.
func (p *Profiler) Summaries() []Summary {
	agg := map[string]*Summary{}
	var order []string
	for _, r := range p.records {
		s, ok := agg[r.Method]
		if !ok {
			s = &Summary{Method: r.Method}
			agg[r.Method] = s
			order = append(order, r.Method)
		}
		s.Executions++
		s.Elapsed += r.Elapsed
		s.Package += r.Package
		s.Core += r.Core
		if r.Degraded {
			s.Degraded++
		}
	}
	out := make([]Summary, 0, len(order))
	for _, m := range order {
		out = append(out, *agg[m])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Package > out[j].Package })
	return out
}

// View renders the JEPO profiler view (Fig. 4): method name, execution time,
// energy consumed. Methods with degraded measurements are marked.
func (p *Profiler) View() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-48s %6s %14s %14s %14s\n", "Method", "Execs", "Time", "Package", "Core")
	for _, s := range p.Summaries() {
		mark := ""
		if s.Degraded > 0 {
			mark = fmt.Sprintf("  [%d degraded]", s.Degraded)
		}
		fmt.Fprintf(&sb, "%-48s %6d %14s %14s %14s%s\n",
			s.Method, s.Executions, s.Elapsed.Round(time.Microsecond), s.Package, s.Core, mark)
	}
	return sb.String()
}

// ResultTxt renders the per-execution log the plugin stores as result.txt in
// the project directory.
func (p *Profiler) ResultTxt() string {
	var sb strings.Builder
	sb.WriteString("# JEPO profiler result: method, execution, time_ns, package_uj, core_uj, flags\n")
	for _, r := range p.records {
		flags := "ok"
		switch {
		case r.Estimated:
			flags = "estimated"
		case r.Degraded:
			flags = "degraded"
		}
		fmt.Fprintf(&sb, "%s\t%d\t%d\t%.3f\t%.3f\t%s\n",
			r.Method, r.Seq, r.Elapsed.Nanoseconds(),
			r.Package.Microjoules(), r.Core.Microjoules(), flags)
	}
	return sb.String()
}

// WriteResultTxt writes ResultTxt to path.
func (p *Profiler) WriteResultTxt(path string) error {
	return os.WriteFile(path, []byte(p.ResultTxt()), 0o644)
}
