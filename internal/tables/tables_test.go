package tables

import (
	"context"
	"math"
	"strings"
	"testing"

	"jepo/internal/classify"
	"jepo/internal/corpus"
	"jepo/internal/minijava/interp"
	"jepo/internal/stats"
	"jepo/internal/suggest"
)

func TestTable1RatiosHavePaperShape(t *testing.T) {
	rows, err := Table1(context.Background(), interp.EngineVM)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != suggest.NumTableIRules {
		t.Fatalf("rows = %d, want %d (one per Table I row)", len(rows), suggest.NumTableIRules)
	}
	byRule := map[suggest.Rule]float64{}
	for _, r := range rows {
		byRule[r.Rule] = r.MeasuredPct
		// Every inefficient variant must actually cost more.
		if r.MeasuredPct <= 0 {
			t.Errorf("%s: inefficient variant measured cheaper (%+.1f%%)", r.Component, r.MeasuredPct)
		}
	}
	// Ordering claims from the paper: static is the most extreme penalty,
	// modulus the worst arithmetic, both far beyond ternary and compareTo.
	if byRule[suggest.RuleStaticKeyword] < 1000 {
		t.Errorf("static penalty = %.0f%%, paper reports up to 17,700%%", byRule[suggest.RuleStaticKeyword])
	}
	if byRule[suggest.RuleModulusOperator] < 200 {
		t.Errorf("modulus penalty = %.0f%%, paper reports up to 1,620%%", byRule[suggest.RuleModulusOperator])
	}
	if byRule[suggest.RuleTernaryOperator] > 100 || byRule[suggest.RuleTernaryOperator] < 5 {
		t.Errorf("ternary penalty = %.1f%%, paper reports up to 37%%", byRule[suggest.RuleTernaryOperator])
	}
	if byRule[suggest.RuleStringComparison] > 100 || byRule[suggest.RuleStringComparison] < 5 {
		t.Errorf("compareTo penalty = %.1f%%, paper reports up to 33%%", byRule[suggest.RuleStringComparison])
	}
	if byRule[suggest.RuleArrayTraversal] < 100 {
		t.Errorf("column traversal penalty = %.0f%%, paper reports up to 793%%", byRule[suggest.RuleArrayTraversal])
	}
	if byRule[suggest.RuleStaticKeyword] <= byRule[suggest.RuleModulusOperator] {
		t.Error("static must dominate modulus, as in Table I")
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "Static keyword") || !strings.Contains(out, "%") {
		t.Errorf("render malformed:\n%s", out)
	}
	t.Logf("\n%s", out)
}

func TestTable2RowsCoverAllClassifiers(t *testing.T) {
	rows, err := Table2(context.Background(), 20200518)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(corpus.Classifiers) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Dependencies < 600 || r.Dependencies > 760 {
			t.Errorf("%s dependencies = %d, out of Table II band", r.Root, r.Dependencies)
		}
		if r.Packages < 36 || r.Packages > 48 {
			t.Errorf("%s packages = %d", r.Root, r.Packages)
		}
	}
}

func TestTable3Rendering(t *testing.T) {
	out := Table3(2000, 42)
	for _, want := range []string{"Airline", "AirportFrom", "Delay", "Binary", "Instances: 2000", "539383"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table III missing %q:\n%s", want, out)
		}
	}
}

// TestTable4EndToEnd runs the full §VIII pipeline at reduced scale and checks
// the paper's shape: Random Forest wins by a wide margin, RandomTree/
// Logistic/SMO are flat, accuracy drops stay small, and package/CPU/time
// improvements agree in sign.
func TestTable4EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is expensive; run without -short")
	}
	cfg := Table4Config{
		Seed:      20200518,
		Instances: 2000,
		Reps:      2,
		Protocol:  stats.Protocol{Runs: 3, MaxRounds: 3},
		CVFolds:   4,
	}
	rows, err := Table4(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table4Row{}
	for _, r := range rows {
		byName[r.Classifier] = r
		if r.Changes < 500 || r.Changes > 1200 {
			t.Errorf("%s changes = %d, far from Table IV band", r.Classifier, r.Changes)
		}
		if math.Abs(r.AccuracyPct) > 3 {
			t.Errorf("%s accuracy drop = %.2f%%, want small as in Table IV", r.Classifier, r.AccuracyPct)
		}
	}
	rf := byName["RandomForest"]
	if rf.PackagePct < 8 {
		t.Errorf("RandomForest package improvement = %.2f%%, want Table IV's top spot", rf.PackagePct)
	}
	for _, r := range rows {
		if r.Classifier != "RandomForest" && r.PackagePct > rf.PackagePct {
			t.Errorf("%s (%.2f%%) beats RandomForest (%.2f%%)", r.Classifier, r.PackagePct, rf.PackagePct)
		}
	}
	for _, flat := range []string{"RandomTree", "Logistic", "SMO"} {
		if math.Abs(byName[flat].PackagePct) > 2 {
			t.Errorf("%s package improvement = %.2f%%, want ≈0", flat, byName[flat].PackagePct)
		}
	}
	// Package and CPU improvements should agree in direction and magnitude.
	for _, r := range rows {
		if r.PackagePct > 2 && (r.CPUPct < 0 || math.Abs(r.PackagePct-r.CPUPct) > 10) {
			t.Errorf("%s package %.2f%% vs CPU %.2f%% implausibly divergent",
				r.Classifier, r.PackagePct, r.CPUPct)
		}
	}
	t.Logf("\n%s", RenderTable4(rows))
}

func TestFactoryCoversAllAndRejectsUnknown(t *testing.T) {
	for _, name := range corpus.Classifiers {
		f, err := Factory(name, classify.Options{})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if got := f().Name(); got != name {
			t.Errorf("factory for %s builds %s", name, got)
		}
	}
	if _, err := Factory("ZeroR", classify.Options{}); err == nil {
		t.Error("unknown classifier accepted")
	}
}
