// Quickstart: analyze a Java source with JEPO, apply the suggestions, and
// measure the energy difference — the full plugin workflow in ~50 lines.
package main

import (
	"context"
	"fmt"
	"log"

	"jepo/internal/core"
)

const source = `
package demo;

public class Report {
	static double total = 0.0;

	static String build(int n) {
		String out = "";
		for (int i = 0; i < n; i++) {
			int bucket = i % 8;
			double weight = bucket * 2.5;
			total += weight;
			out = out + "#";
		}
		return out;
	}

	public static void main(String[] args) {
		String r = build(400);
		System.out.println(r.length());
	}
}
`

func main() {
	project := core.Project{"demo/Report.java": source}

	// 1. Static analysis: the Table I suggestions (Fig. 5 optimizer view).
	sugs, err := core.SuggestProject(project)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- JEPO optimizer view ---")
	fmt.Print(core.OptimizerView(sugs))

	// 2. Measure the original program (method-granularity RAPL probes).
	before, err := core.Profile(context.Background(), project, core.ProfileConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Apply every suggestion automatically.
	optimized, res, err := core.Optimize(context.Background(), project)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\napplied %d change(s)\n", res.Changes)

	// 4. Measure again and report the improvement.
	after, err := core.Profile(context.Background(), optimized, core.ProfileConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if before.Stdout != after.Stdout {
		log.Fatalf("refactoring changed program output: %q vs %q", before.Stdout, after.Stdout)
	}
	improvement := 100 * (1 - float64(after.Sample.Package)/float64(before.Sample.Package))
	fmt.Printf("\npackage energy: %v → %v  (%.1f%% improvement)\n",
		before.Sample.Package, after.Sample.Package, improvement)
	fmt.Printf("execution time: %v → %v\n", before.Sample.Elapsed, after.Sample.Elapsed)
}
