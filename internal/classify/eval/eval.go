// Package eval implements the evaluation harness: stratified k-fold
// cross-validation with accuracy and confusion-matrix reporting, matching
// the paper's "stratified 10-fold cross-validation" methodology.
package eval

import (
	"fmt"
	"strings"

	"jepo/internal/classify"
	"jepo/internal/dataset"
)

// Result is the outcome of one evaluation.
type Result struct {
	Name      string
	Correct   int
	Total     int
	PerFold   []float64 // accuracy per fold (empty for holdout evaluation)
	Confusion [][]int   // [actual][predicted]
}

// Accuracy in percent.
func (r *Result) Accuracy() float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.Correct) / float64(r.Total)
}

// Kappa is Cohen's kappa against the chance agreement of the marginals.
func (r *Result) Kappa() float64 {
	if r.Total == 0 {
		return 0
	}
	n := float64(r.Total)
	po := float64(r.Correct) / n
	pe := 0.0
	for k := range r.Confusion {
		var rowSum, colSum float64
		for j := range r.Confusion {
			rowSum += float64(r.Confusion[k][j])
			colSum += float64(r.Confusion[j][k])
		}
		pe += (rowSum / n) * (colSum / n)
	}
	if pe == 1 {
		return 0
	}
	return (po - pe) / (1 - pe)
}

// String renders a WEKA-like summary block.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s ===\n", r.Name)
	fmt.Fprintf(&sb, "Correctly Classified Instances   %6d  %8.4f %%\n", r.Correct, r.Accuracy())
	fmt.Fprintf(&sb, "Incorrectly Classified Instances %6d  %8.4f %%\n",
		r.Total-r.Correct, 100-r.Accuracy())
	fmt.Fprintf(&sb, "Kappa statistic                  %8.4f\n", r.Kappa())
	fmt.Fprintf(&sb, "Total Number of Instances        %6d\n", r.Total)
	return sb.String()
}

// PrecisionRecallF1 computes the per-class detailed accuracy measures WEKA
// prints ("Detailed Accuracy By Class"). Degenerate denominators yield 0.
func (r *Result) PrecisionRecallF1(class int) (precision, recall, f1 float64) {
	if class < 0 || class >= len(r.Confusion) {
		return 0, 0, 0
	}
	var tp, fp, fn float64
	for j := range r.Confusion {
		if j == class {
			tp = float64(r.Confusion[class][class])
			continue
		}
		fp += float64(r.Confusion[j][class])
		fn += float64(r.Confusion[class][j])
	}
	if tp+fp > 0 {
		precision = tp / (tp + fp)
	}
	if tp+fn > 0 {
		recall = tp / (tp + fn)
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}

// DetailedByClass renders the WEKA "Detailed Accuracy By Class" block.
func (r *Result) DetailedByClass(classNames []string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %10s %10s %10s\n", "Class", "Precision", "Recall", "F-Measure")
	for k := range r.Confusion {
		name := fmt.Sprintf("class%d", k)
		if k < len(classNames) {
			name = classNames[k]
		}
		p, rec, f1 := r.PrecisionRecallF1(k)
		fmt.Fprintf(&sb, "%-12s %10.3f %10.3f %10.3f\n", name, p, rec, f1)
	}
	return sb.String()
}

// Factory builds a fresh classifier per fold.
type Factory func() classify.Classifier

// CrossValidate runs stratified k-fold cross-validation.
func CrossValidate(d *dataset.Dataset, k int, seed uint64, make Factory) (*Result, error) {
	folds, err := d.StratifiedFolds(k, seed)
	if err != nil {
		return nil, err
	}
	res := &Result{Confusion: newConfusion(d.NumClasses())}
	for f := range folds {
		train, test := d.TrainTest(folds, f)
		c := make()
		if res.Name == "" {
			res.Name = c.Name()
		}
		if err := c.Train(train); err != nil {
			return nil, fmt.Errorf("eval: fold %d: %w", f, err)
		}
		correct := 0
		for i, row := range test.X {
			pred := c.Predict(row)
			actual := test.Class(i)
			if pred >= 0 && pred < len(res.Confusion) {
				res.Confusion[actual][pred]++
			}
			if pred == actual {
				correct++
			}
		}
		res.Correct += correct
		res.Total += test.NumInstances()
		// A fold can end up with zero test instances when k is close to the
		// dataset size; report 0 accuracy rather than NaN.
		foldAcc := 0.0
		if n := test.NumInstances(); n > 0 {
			foldAcc = 100 * float64(correct) / float64(n)
		}
		res.PerFold = append(res.PerFold, foldAcc)
	}
	return res, nil
}

// Holdout trains on train and evaluates on test.
func Holdout(train, test *dataset.Dataset, make Factory) (*Result, error) {
	c := make()
	if err := c.Train(train); err != nil {
		return nil, err
	}
	res := &Result{Name: c.Name(), Confusion: newConfusion(train.NumClasses())}
	for i, row := range test.X {
		pred := c.Predict(row)
		actual := test.Class(i)
		if pred >= 0 && pred < len(res.Confusion) {
			res.Confusion[actual][pred]++
		}
		if pred == actual {
			res.Correct++
		}
	}
	res.Total = test.NumInstances()
	return res, nil
}

func newConfusion(nc int) [][]int {
	m := make([][]int, nc)
	for i := range m {
		m[i] = make([]int, nc)
	}
	return m
}
