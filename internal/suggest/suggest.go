// Package suggest implements JEPO's suggestion engine: the eleven
// energy-efficiency rules of the paper's Table I. The engine analyzes parsed
// mini-Java files and emits positioned suggestions; the refactor package can
// apply the mechanical ones automatically.
package suggest

import (
	"fmt"
	"sort"
	"strings"

	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/token"
)

// Rule identifies one Table I row.
type Rule int

// The eleven Table I rules, in the table's order, followed by the extension
// rules for the "exception" and "objects" components the paper's abstract
// lists but Table I does not quantify (its §IX names "more suggestions" as
// future work).
const (
	RulePrimitiveTypes Rule = iota
	RuleScientificNotation
	RuleWrapperClasses
	RuleStaticKeyword
	RuleModulusOperator
	RuleTernaryOperator
	RuleShortCircuit
	RuleStringConcat
	RuleStringComparison
	RuleArraysCopy
	RuleArrayTraversal
	numTableIRules

	// Extension rules (suggestion-only; not mechanically applied).
	RuleExceptionInLoop Rule = iota - 1 // account for the numTableIRules slot
	RuleObjectInLoop
	numRules
)

// NumTableIRules is the number of rules Table I quantifies.
const NumTableIRules = int(numTableIRules)

// NumRules is the total rule count including the extension rules.
const NumRules = int(numRules)

var ruleMeta = [...]struct {
	component  string
	suggestion string
}{
	RulePrimitiveTypes: {"Primitive data types",
		"int is the most energy-efficient primitive data type. Replace if possible."},
	RuleScientificNotation: {"Scientific notation",
		"Scientific notation results in lower energy consumption of decimal numbers."},
	RuleWrapperClasses: {"Wrapper classes",
		"Integer Wrapper class object is the most energy-efficient. Replace if possible."},
	RuleStaticKeyword: {"Static keyword",
		"static keyword consumes up to 17,700% more energy. Avoid if possible."},
	RuleModulusOperator: {"Arithmetic operators",
		"Modulus arithmetic operator consumes up to 1,620% more energy than other arithmetic operators."},
	RuleTernaryOperator: {"Ternary operator",
		"Ternary operator consumes up to 37% more energy than if-then-else statement."},
	RuleShortCircuit: {"Short circuit operator",
		"Put most common case first for lower energy consumption."},
	RuleStringConcat: {"String concatenation operator",
		"StringBuilder append method consumes much lower energy than String concatenation operator."},
	RuleStringComparison: {"String comparison",
		"String compareTo method consumes up to 33% more energy than the String equals method."},
	RuleArraysCopy: {"Arrays copy",
		"System.arraycopy() is the most energy-efficient way to copy Arrays."},
	RuleArrayTraversal: {"Array traversal",
		"Two-dimensional Array column traversal result in up to 793% more energy."},
	RuleExceptionInLoop: {"Exceptions",
		"Exception handling inside a hot loop pays the try/throw cost every iteration. Restructure if possible."},
	RuleObjectInLoop: {"Objects",
		"Object allocation inside a loop churns the heap. Reuse an instance if possible."},
}

// Component is the Table I "Java Components" label for the rule.
func (r Rule) Component() string { return ruleMeta[r].component }

// Text is the Table I suggestion text for the rule.
func (r Rule) Text() string { return ruleMeta[r].suggestion }

// String names the rule by component.
func (r Rule) String() string {
	if r < 0 || r >= numRules {
		return fmt.Sprintf("rule(%d)", int(r))
	}
	return ruleMeta[r].component
}

// TableIRules lists only the rules Table I quantifies, in the table's order.
func TableIRules() []Rule {
	out := make([]Rule, NumTableIRules)
	for i := range out {
		out[i] = Rule(i)
	}
	return out
}

// AllRules lists every rule — Table I plus the extension rules. (The
// extension rules start at the value of the numTableIRules sentinel, so the
// rule values are contiguous.)
func AllRules() []Rule {
	out := make([]Rule, NumRules)
	for i := range out {
		out[i] = Rule(i)
	}
	return out
}

// Suggestion is one positioned finding.
type Suggestion struct {
	File    string
	Class   string
	Method  string // empty for field-level findings
	Line    int
	Rule    Rule
	Detail  string // what was found, e.g. "field 'total' declared double"
	CanAuto bool   // the refactor package can apply this mechanically
}

// String renders the optimizer-view row (Fig. 5): class, line, suggestion.
func (s Suggestion) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s (%s)", s.Class, s.Line, s.Rule.Component(), s.Rule.Text(), s.Detail)
}

// Analyze runs every rule over a file and returns suggestions ordered by
// line. It is the engine behind both the dynamic view (Fig. 2) and the
// optimizer view (Fig. 5).
func Analyze(file *ast.File) []Suggestion {
	var out []Suggestion
	for _, c := range file.Classes {
		a := &analyzer{file: file, class: c, types: map[string]ast.Type{}}
		for _, f := range c.Fields {
			a.types[f.Name] = f.Type
		}
		fieldTypes := a.types
		for _, f := range c.Fields {
			a.field(f)
		}
		for _, m := range c.Methods {
			a.types = map[string]ast.Type{}
			for k, v := range fieldTypes {
				a.types[k] = v
			}
			a.method(m)
		}
		out = append(out, a.found...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// AnalyzeAll analyzes many files.
func AnalyzeAll(files []*ast.File) []Suggestion {
	var out []Suggestion
	for _, f := range files {
		out = append(out, Analyze(f)...)
	}
	return out
}

// CountByRule tallies suggestions per rule.
func CountByRule(sugs []Suggestion) map[Rule]int {
	m := make(map[Rule]int)
	for _, s := range sugs {
		m[s.Rule]++
	}
	return m
}

type analyzer struct {
	file      *ast.File
	class     *ast.Class
	curMethod string
	loopDepth int
	found     []Suggestion
	// types records declared types of fields, params and locals in scope so
	// the string rules can distinguish String '+' from numeric '+'.
	types map[string]ast.Type
}

func (a *analyzer) add(pos token.Pos, r Rule, detail string, auto bool) {
	a.found = append(a.found, Suggestion{
		File:    a.file.Path,
		Class:   a.class.Name,
		Method:  a.curMethod,
		Line:    pos.Line,
		Rule:    r,
		Detail:  detail,
		CanAuto: auto,
	})
}

func (a *analyzer) field(f *ast.Field) {
	a.curMethod = ""
	a.checkDeclType(f.Pos, f.Type, "field '"+f.Name+"'")
	if f.Mods.Has(ast.ModStatic) && !f.Mods.Has(ast.ModFinal) {
		// static final constants are folded by javac; the paper's 17,700%
		// penalty is about mutable static state.
		a.add(f.Pos, RuleStaticKeyword, "mutable static field '"+f.Name+"'", true)
	}
	if f.Init != nil {
		a.expr(f.Init)
	}
}

func (a *analyzer) method(m *ast.Method) {
	a.curMethod = m.Name
	for _, p := range m.Params {
		a.types[p.Name] = p.Type
		a.checkDeclType(m.Pos, p.Type, "parameter '"+p.Name+"'")
	}
	if m.Body != nil {
		a.stmt(m.Body)
	}
}

// checkDeclType flags non-int primitive declarations (rule 1) and non-Integer
// wrapper declarations (rule 3).
func (a *analyzer) checkDeclType(pos token.Pos, t ast.Type, what string) {
	if t.Dims > 0 {
		t = ast.Type{Kind: t.Kind, Name: t.Name} // look through arrays
	}
	switch t.Kind {
	case ast.Long, ast.Short, ast.Byte, ast.Double, ast.Float:
		auto := t.Kind == ast.Long || t.Kind == ast.Short || t.Kind == ast.Byte || t.Kind == ast.Double
		a.add(pos, RulePrimitiveTypes, fmt.Sprintf("%s declared %s", what, t.Kind), auto)
	case ast.ClassType:
		switch t.Name {
		case "Long", "Short", "Byte", "Double", "Float", "Character":
			a.add(pos, RuleWrapperClasses, fmt.Sprintf("%s declared %s", what, t.Name), t.Name == "Long" || t.Name == "Short" || t.Name == "Byte")
		}
	}
}

func (a *analyzer) stmt(s ast.Stmt) {
	switch n := s.(type) {
	case *ast.Block:
		for _, st := range n.Stmts {
			a.stmt(st)
		}
	case *ast.LocalVar:
		a.types[n.Name] = n.Type
		a.checkDeclType(n.Pos, n.Type, "local '"+n.Name+"'")
		if n.Init != nil {
			a.expr(n.Init)
		}
	case *ast.ExprStmt:
		a.expr(n.X)
	case *ast.If:
		a.expr(n.Cond)
		a.stmt(n.Then)
		if n.Else != nil {
			a.stmt(n.Else)
		}
	case *ast.While:
		a.expr(n.Cond)
		a.loopDepth++
		a.stmt(n.Body)
		a.loopDepth--
	case *ast.DoWhile:
		a.loopDepth++
		a.stmt(n.Body)
		a.loopDepth--
		a.expr(n.Cond)
	case *ast.Switch:
		a.expr(n.Tag)
		for _, c := range n.Cases {
			for _, v := range c.Values {
				a.expr(v)
			}
			for _, st := range c.Stmts {
				a.stmt(st)
			}
		}
	case *ast.For:
		a.checkFor(n)
	case *ast.Return:
		if n.X != nil {
			a.expr(n.X)
		}
	case *ast.Throw:
		if a.loopDepth > 0 {
			a.add(n.Pos, RuleExceptionInLoop, "throw inside a loop", false)
		}
		a.expr(n.X)
	case *ast.Try:
		if a.loopDepth > 0 {
			a.add(n.Pos, RuleExceptionInLoop, "try/catch inside a loop", false)
		}
		a.stmt(n.Block)
		for _, c := range n.Catches {
			a.stmt(c.Block)
		}
		if n.Finally != nil {
			a.stmt(n.Finally)
		}
	}
}

func (a *analyzer) checkFor(n *ast.For) {
	if n.Init != nil {
		a.stmt(n.Init)
	}
	if n.Cond != nil {
		a.expr(n.Cond)
	}
	for _, p := range n.Post {
		a.expr(p)
	}
	if copied := MatchManualArrayCopy(n); copied != nil {
		a.add(n.Pos, RuleArraysCopy,
			fmt.Sprintf("manual copy loop from '%s' to '%s'", copied.Src, copied.Dst), true)
	}
	if swap := MatchColumnTraversal(n); swap != nil {
		a.add(n.Pos, RuleArrayTraversal,
			fmt.Sprintf("column-major traversal of '%s'", swap.Array), true)
	}
	a.loopDepth++
	a.stmt(n.Body)
	a.loopDepth--
}

func (a *analyzer) expr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Literal:
			if (x.Kind == ast.LitDouble || x.Kind == ast.LitFloat) && !x.Sci && wouldBenefitFromSci(x.Raw) {
				a.add(x.Pos, RuleScientificNotation, "decimal literal "+x.Raw, true)
			}
		case *ast.Binary:
			switch x.Op {
			case token.Percent:
				a.add(x.Pos, RuleModulusOperator, "modulus expression "+ast.PrintExpr(x), isPowerOfTwoModulus(x))
			case token.AndAnd, token.OrOr:
				// Only flag the outermost chain node, not every link.
				if _, inner := x.X.(*ast.Binary); !inner || !isShortCircuit(x.X) {
					a.add(x.Pos, RuleShortCircuit, "short-circuit chain "+ast.PrintExpr(x), false)
				}
			case token.Plus:
				if a.isStringExpr(x.X) || a.isStringExpr(x.Y) {
					a.add(x.Pos, RuleStringConcat, "string concatenation "+ast.PrintExpr(x), false)
				}
			}
		case *ast.Assign:
			if x.Op == token.PlusEq && a.isStringExpr(x.LHS) {
				a.add(x.Pos, RuleStringConcat, "string += concatenation", false)
			}
		case *ast.Ternary:
			a.add(x.Pos, RuleTernaryOperator, "ternary "+ast.PrintExpr(x), true)
		case *ast.Call:
			if x.Name == "compareTo" && len(x.Args) == 1 {
				a.add(x.Pos, RuleStringComparison, "compareTo call "+ast.PrintExpr(x), false)
			}
		case *ast.New:
			if a.loopDepth > 0 && !isExceptionName(x.Name) {
				a.add(x.Pos, RuleObjectInLoop, "allocation of "+x.Name+" inside a loop", false)
			}
		}
		return true
	})
}

func isShortCircuit(e ast.Expr) bool {
	b, ok := e.(*ast.Binary)
	return ok && (b.Op == token.AndAnd || b.Op == token.OrOr)
}

// isPowerOfTwoModulus reports whether `x % (1<<k)` can be rewritten to a mask.
func isPowerOfTwoModulus(b *ast.Binary) bool {
	lit, ok := b.Y.(*ast.Literal)
	if !ok || lit.Kind != ast.LitInt && lit.Kind != ast.LitLong {
		return false
	}
	v := lit.I
	return v > 0 && v&(v-1) == 0
}

// wouldBenefitFromSci flags long plain-decimal spellings (many zeros) that
// scientific notation would shorten — the shape the paper's rule targets.
func wouldBenefitFromSci(raw string) bool {
	digits, zeros := 0, 0
	for _, c := range raw {
		if c >= '0' && c <= '9' {
			digits++
			if c == '0' {
				zeros++
			}
		}
	}
	return digits >= 5 && zeros >= 4
}

// isStringExpr reports whether an expression is statically known to be a
// String: a string literal, a String-typed name, or itself a string concat.
func (a *analyzer) isStringExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Literal:
		return x.Kind == ast.LitString
	case *ast.Ident:
		t, ok := a.types[x.Name]
		return ok && t.IsString()
	case *ast.Binary:
		return x.Op == token.Plus && (a.isStringExpr(x.X) || a.isStringExpr(x.Y))
	case *ast.Call:
		switch x.Name {
		case "toString", "substring", "trim", "concat":
			return true
		}
	}
	return false
}

// CopyLoop describes a matched manual array-copy loop.
type CopyLoop struct {
	Src, Dst string
	IndexVar string
}

// MatchManualArrayCopy recognizes `for (int i = 0; i < N; i++) dst[i] = src[i];`.
func MatchManualArrayCopy(f *ast.For) *CopyLoop {
	iv, ok := loopIndexVar(f)
	if !ok {
		return nil
	}
	body := singleStmt(f.Body)
	es, ok := body.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	as, ok := es.X.(*ast.Assign)
	if !ok || as.Op != token.Assign {
		return nil
	}
	dst, ok := indexByVar(as.LHS, iv)
	if !ok {
		return nil
	}
	src, ok := indexByVar(as.RHS, iv)
	if !ok {
		return nil
	}
	return &CopyLoop{Src: src, Dst: dst, IndexVar: iv}
}

// ColumnLoop describes a matched column-major nested traversal.
type ColumnLoop struct {
	Array string
	Outer string // outer loop variable (the column index)
	Inner string // inner loop variable (the row index)
}

// MatchColumnTraversal recognizes
//
//	for (j...) { for (i...) { ... m[i][j] ... } }
//
// where the *inner* loop variable is the first (row) index — i.e. the
// traversal walks down columns.
func MatchColumnTraversal(f *ast.For) *ColumnLoop {
	outerVar, ok := loopIndexVar(f)
	if !ok {
		return nil
	}
	innerFor, ok := singleStmt(f.Body).(*ast.For)
	if !ok {
		return nil
	}
	innerVar, ok := loopIndexVar(innerFor)
	if !ok || innerVar == outerVar {
		return nil
	}
	// Look for m[innerVar][outerVar] anywhere in the inner body.
	var arr string
	ast.Inspect(innerFor.Body, func(n ast.Node) bool {
		idx, ok := n.(*ast.Index)
		if !ok {
			return true
		}
		innerIdx, ok := idx.I.(*ast.Ident)
		if !ok || innerIdx.Name != outerVar {
			return true
		}
		base, ok := idx.X.(*ast.Index)
		if !ok {
			return true
		}
		rowIdx, ok := base.I.(*ast.Ident)
		if !ok || rowIdx.Name != innerVar {
			return true
		}
		if m, ok := base.X.(*ast.Ident); ok {
			arr = m.Name
			return false
		}
		return true
	})
	if arr == "" {
		return nil
	}
	return &ColumnLoop{Array: arr, Outer: outerVar, Inner: innerVar}
}

// loopIndexVar extracts the variable of a canonical counted loop
// `for (int i = ...; i < ...; i++)`.
func loopIndexVar(f *ast.For) (string, bool) {
	lv, ok := f.Init.(*ast.LocalVar)
	if !ok {
		return "", false
	}
	if f.Cond == nil || len(f.Post) != 1 {
		return "", false
	}
	u, ok := f.Post[0].(*ast.Unary)
	if !ok || (u.Op != token.Inc && u.Op != token.Dec) {
		return "", false
	}
	if id, ok := u.X.(*ast.Ident); !ok || id.Name != lv.Name {
		return "", false
	}
	return lv.Name, true
}

// singleStmt unwraps a one-statement block.
func singleStmt(s ast.Stmt) ast.Stmt {
	if b, ok := s.(*ast.Block); ok && len(b.Stmts) == 1 {
		return b.Stmts[0]
	}
	return s
}

// indexByVar matches `name[iv]` and returns name.
func indexByVar(e ast.Expr, iv string) (string, bool) {
	idx, ok := e.(*ast.Index)
	if !ok {
		return "", false
	}
	i, ok := idx.I.(*ast.Ident)
	if !ok || i.Name != iv {
		return "", false
	}
	base, ok := idx.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	return base.Name, true
}

// isExceptionName reports whether a class name denotes a throwable (those
// are reported under the exception rule, not the objects rule).
func isExceptionName(name string) bool {
	return name == "Exception" || name == "Throwable" || name == "Error" ||
		strings.HasSuffix(name, "Exception")
}
