package tree

import (
	"strings"
	"testing"

	"jepo/internal/classify"
	"jepo/internal/dataset"
)

// xorish builds a dataset a linear model cannot fit but a depth-2 tree can:
// class = a XOR b over two nominal attributes.
func xorish(n int) *dataset.Dataset {
	d := dataset.New("xor", 2,
		dataset.NewNominal("a", "f", "t"),
		dataset.NewNominal("b", "f", "t"),
		dataset.NewNominal("y", "0", "1"),
	)
	r := classify.NewRNG(5)
	for i := 0; i < n; i++ {
		a, b := float64(r.Intn(2)), float64(r.Intn(2))
		y := 0.0
		if a != b {
			y = 1
		}
		d.Add([]float64{a, b, y})
	}
	return d
}

// thresholdData: class flips at x = 4.25.
func thresholdData(n int) *dataset.Dataset {
	d := dataset.New("thr", 1, dataset.NewNumeric("x"), dataset.NewNominal("y", "lo", "hi"))
	r := classify.NewRNG(9)
	for i := 0; i < n; i++ {
		x := 10 * r.Float64()
		y := 0.0
		if x > 4.25 {
			y = 1
		}
		d.Add([]float64{x, y})
	}
	return d
}

func trainAcc(t *testing.T, c classify.Classifier, d *dataset.Dataset) float64 {
	t.Helper()
	if err := c.Train(d); err != nil {
		t.Fatalf("%s train: %v", c.Name(), err)
	}
	correct := 0
	for i, row := range d.X {
		if c.Predict(row) == d.Class(i) {
			correct++
		}
	}
	return 100 * float64(correct) / float64(d.NumInstances())
}

func TestJ48LearnsXOR(t *testing.T) {
	d := xorish(200)
	c := NewJ48(classify.Options{})
	if acc := trainAcc(t, c, d); acc != 100 {
		t.Errorf("J48 XOR training accuracy = %.1f%%, want 100%%", acc)
	}
	if c.NumNodes() < 3 {
		t.Errorf("J48 tree trivially small: %d nodes", c.NumNodes())
	}
}

func TestJ48FindsNumericThreshold(t *testing.T) {
	d := thresholdData(300)
	c := NewJ48(classify.Options{})
	if acc := trainAcc(t, c, d); acc < 99 {
		t.Errorf("J48 threshold accuracy = %.1f%%", acc)
	}
}

func TestJ48PruningShrinksTree(t *testing.T) {
	// Noisy data: the unpruned tree memorizes, the pruned one must be smaller.
	d := thresholdData(400)
	r := classify.NewRNG(3)
	for i := range d.X {
		if r.Float64() < 0.15 { // 15% label noise
			d.X[i][1] = 1 - d.X[i][1]
		}
	}
	unpruned := NewJ48(classify.Options{})
	unpruned.Unpruned = true
	unpruned.Train(d)
	pruned := NewJ48(classify.Options{})
	pruned.Train(d)
	if pruned.NumNodes() >= unpruned.NumNodes() {
		t.Errorf("pruned %d nodes, unpruned %d — pruning had no effect",
			pruned.NumNodes(), unpruned.NumNodes())
	}
}

func TestJ48EmptyDataset(t *testing.T) {
	d := thresholdData(1).Empty()
	if err := NewJ48(classify.Options{}).Train(d); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestREPTreePrunesAgainstHoldout(t *testing.T) {
	d := thresholdData(600)
	r := classify.NewRNG(3)
	for i := range d.X {
		if r.Float64() < 0.2 {
			d.X[i][1] = 1 - d.X[i][1]
		}
	}
	noPrune := NewREPTree(classify.Options{Seed: 2})
	noPrune.NoPruning = true
	noPrune.Train(d)
	pruned := NewREPTree(classify.Options{Seed: 2})
	pruned.Train(d)
	if pruned.NumNodes() > noPrune.NumNodes() {
		t.Errorf("REP pruning grew the tree: %d > %d", pruned.NumNodes(), noPrune.NumNodes())
	}
	if acc := trainAcc(t, pruned, d); acc < 70 {
		t.Errorf("REPTree accuracy = %.1f%%", acc)
	}
}

func TestRandomTreeUsesSeed(t *testing.T) {
	d := xorish(120)
	a := NewRandomTree(classify.Options{Seed: 1})
	b := NewRandomTree(classify.Options{Seed: 1})
	c := NewRandomTree(classify.Options{Seed: 99})
	a.Train(d)
	b.Train(d)
	c.Train(d)
	if a.NumNodes() != b.NumNodes() {
		t.Error("same seed produced different trees")
	}
	// XOR is learnable regardless of subset randomness here (K covers both).
	if acc := trainAcc(t, a, d); acc < 95 {
		t.Errorf("RandomTree XOR accuracy = %.1f%%", acc)
	}
}

func TestRandomForestMajorityBeatsSingleTreeOnNoise(t *testing.T) {
	d := thresholdData(500)
	r := classify.NewRNG(4)
	for i := range d.X {
		if r.Float64() < 0.25 {
			d.X[i][1] = 1 - d.X[i][1]
		}
	}
	// Hold out the last 100 rows.
	train := d.Subset(seq(0, 400))
	test := d.Subset(seq(400, 500))
	tree := NewRandomTree(classify.Options{Seed: 6})
	tree.Train(train)
	forest := NewRandomForest(classify.Options{Seed: 6}, 25)
	forest.Train(train)
	tAcc := testAcc(tree, test)
	fAcc := testAcc(forest, test)
	// With one attribute, bagging has little to decorrelate — the check is
	// that the ensemble works and is not catastrophically worse.
	if fAcc < 60 || fAcc < tAcc-5 {
		t.Errorf("forest (%.1f%%) degenerate vs single tree (%.1f%%) on noisy data", fAcc, tAcc)
	}
}

func seq(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

func testAcc(c classify.Classifier, d *dataset.Dataset) float64 {
	correct := 0
	for i, row := range d.X {
		if c.Predict(row) == d.Class(i) {
			correct++
		}
	}
	return 100 * float64(correct) / float64(d.NumInstances())
}

func TestPredictUnseenNominalFallsBack(t *testing.T) {
	d := xorish(100)
	c := NewJ48(classify.Options{})
	c.Train(d)
	// Out-of-range nominal index routes to the node majority, not a panic.
	if p := c.Predict([]float64{5, 5, 0}); p != 0 && p != 1 {
		t.Errorf("fallback prediction = %d", p)
	}
}

func TestZScore(t *testing.T) {
	// z for the one-sided 25% tail is ≈0.6745.
	z := zScore(0.25)
	if z < 0.67 || z > 0.68 {
		t.Errorf("zScore(0.25) = %v, want ≈0.6745", z)
	}
	if z05 := zScore(0.05); z05 < 1.64 || z05 > 1.65 {
		t.Errorf("zScore(0.05) = %v, want ≈1.645", z05)
	}
}

// Parallel training must produce byte-identical predictions to sequential
// training: every tree draws from its own seed-derived stream.
func TestRandomForestParallelDeterminism(t *testing.T) {
	d := thresholdData(400)
	r := classify.NewRNG(8)
	for i := range d.X {
		if r.Float64() < 0.2 {
			d.X[i][1] = 1 - d.X[i][1]
		}
	}
	seq := NewRandomForest(classify.Options{Seed: 11}, 16)
	seq.Slots = 1
	if err := seq.Train(d); err != nil {
		t.Fatal(err)
	}
	par := NewRandomForest(classify.Options{Seed: 11}, 16)
	par.Slots = 4
	if err := par.Train(d); err != nil {
		t.Fatal(err)
	}
	auto := NewRandomForest(classify.Options{Seed: 11}, 16)
	auto.Slots = 0 // GOMAXPROCS
	if err := auto.Train(d); err != nil {
		t.Fatal(err)
	}
	for i, row := range d.X {
		s, p, a := seq.Predict(row), par.Predict(row), auto.Predict(row)
		if s != p || s != a {
			t.Fatalf("row %d: sequential=%d parallel=%d auto=%d", i, s, p, a)
		}
	}
}

func TestRandomForestParallelEmptyData(t *testing.T) {
	f := NewRandomForest(classify.Options{}, 4)
	f.Slots = 3
	if err := f.Train(thresholdData(1).Empty()); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestJ48StringRendering(t *testing.T) {
	d := xorish(200)
	c := NewJ48(classify.Options{})
	if (&J48{}).String() == "" {
		t.Error("untrained tree must still render")
	}
	c.Train(d)
	c.SetLabels([]string{"a", "b"}, []string{"zero", "one"})
	out := c.String()
	for _, want := range []string{"J48 pruned tree", "a = ", "zero", "one", "Number of Nodes"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree rendering missing %q:\n%s", want, out)
		}
	}
	// Numeric splits render thresholds.
	d2 := thresholdData(200)
	c2 := NewJ48(classify.Options{})
	c2.Train(d2)
	c2.SetLabels([]string{"x"}, []string{"lo", "hi"})
	if out := c2.String(); !strings.Contains(out, "x <= ") || !strings.Contains(out, "x > ") {
		t.Errorf("numeric split rendering missing:\n%s", out)
	}
}
