package interp

import (
	"math"
	"strings"
	"testing"

	"jepo/internal/energy"
	"jepo/internal/minijava/parser"
)

// boundaryRun executes class.f() on one engine and captures the observable
// boundary behaviour: the error text (empty on success), the printed output
// and the meter's package-energy bits.
func boundaryRun(t *testing.T, src string, maxOps int64, e Engine) (errText, out string, pkgBits uint64) {
	t.Helper()
	f, err := parser.Parse("boundary.java", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := Load(f)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	in := New(prog, energy.NewMeter(energy.DefaultCosts()), WithMaxOps(maxOps), WithEngine(e))
	if err := in.InitStatics(); err != nil {
		t.Fatalf("init: %v", err)
	}
	if _, err := in.CallStatic("T", "f"); err != nil {
		errText = err.Error()
	}
	return errText, in.Output(), math.Float64bits(float64(in.Meter().Snapshot().Package))
}

// TestEngineBoundaryParity runs each edge-condition program on both engines
// and demands the same error text, output and energy. Exception unwinding
// goes through completely different machinery in the two engines (Go panics
// through the walker's recursion vs the VM's frame exit), so these shapes
// are where divergence would hide.
func TestEngineBoundaryParity(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		wantErr string // substring of the uncaught error, "" = must succeed
	}{
		{
			name:    "int division by zero",
			src:     `class T { static int f() { int a = 7; int b = 0; return a / b; } }`,
			wantErr: "ArithmeticException: / by zero",
		},
		{
			name:    "int remainder by zero",
			src:     `class T { static int f() { int a = 7; int b = 0; return a % b; } }`,
			wantErr: "ArithmeticException: / by zero",
		},
		{
			name:    "long division by zero",
			src:     `class T { static long f() { long a = 7; long b = 0; return a / b; } }`,
			wantErr: "ArithmeticException: / by zero",
		},
		{
			name: "compound divide by zero",
			src:  `class T { static int f() { int a = 9; int b = 0; a /= b; return a; } }`,

			wantErr: "ArithmeticException: / by zero",
		},
		{
			name: "caught division by zero",
			src: `class T { static int f() {
				int a = 7; int b = 0; int r = -1;
				try { r = a / b; } catch (ArithmeticException e) { r = 42; }
				System.out.println(r);
				return r;
			} }`,
		},
		{
			name:    "array index out of bounds",
			src:     `class T { static int f() { int[] a = new int[3]; int i = 5; return a[i]; } }`,
			wantErr: "ArrayIndexOutOfBoundsException",
		},
		{
			name:    "array store out of bounds",
			src:     `class T { static int f() { int[] a = new int[3]; int i = 9; a[i] = 1; return 0; } }`,
			wantErr: "ArrayIndexOutOfBoundsException",
		},
		{
			name:    "negative array size",
			src:     `class T { static int f() { int n = -2; int[] a = new int[n]; return a.length; } }`,
			wantErr: "NegativeArraySizeException",
		},
		{
			name: "null field access",
			src: `class P { int v; }
			class T { static int f() { P p = null; return p.v; } }`,
			wantErr: "NullPointerException",
		},
		{
			name: "double division by zero succeeds",
			src: `class T { static boolean f() {
				double a = 1.0; double b = 0.0;
				return (a / b) > 0.0;
			} }`,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			vmErr, vmOut, vmPkg := boundaryRun(t, tc.src, 1_000_000, EngineVM)
			astErr, astOut, astPkg := boundaryRun(t, tc.src, 1_000_000, EngineAST)
			if vmErr != astErr {
				t.Errorf("error text diverged:\n  vm:  %q\n  ast: %q", vmErr, astErr)
			}
			if vmOut != astOut {
				t.Errorf("output diverged:\n  vm:  %q\n  ast: %q", vmOut, astOut)
			}
			if vmPkg != astPkg {
				t.Errorf("package energy diverged: vm %#x ast %#x", vmPkg, astPkg)
			}
			if tc.wantErr == "" {
				if vmErr != "" {
					t.Errorf("unexpected error: %s", vmErr)
				}
			} else if !strings.Contains(vmErr, tc.wantErr) {
				t.Errorf("error %q does not mention %q", vmErr, tc.wantErr)
			}
		})
	}
}

// TestEngineOpBudgetParity pins that the op budget trips on both engines with
// the same message. The trip point is instruction-granular on the VM (steps
// are accounted in folded batches), so only the failure itself — not the
// meter state at failure — is comparable.
func TestEngineOpBudgetParity(t *testing.T) {
	src := `class T { static int f() { int s = 0; while (true) { s = s + 1; } } }`
	for _, budget := range []int64{100, 10_000} {
		vmErr, _, _ := boundaryRun(t, src, budget, EngineVM)
		astErr, _, _ := boundaryRun(t, src, budget, EngineAST)
		if vmErr == "" || astErr == "" {
			t.Fatalf("budget %d: infinite loop must trip both engines (vm=%q ast=%q)", budget, vmErr, astErr)
		}
		if vmErr != astErr {
			t.Errorf("budget %d: messages diverged:\n  vm:  %q\n  ast: %q", budget, vmErr, astErr)
		}
		if !strings.Contains(vmErr, "op budget") {
			t.Errorf("budget %d: error %q does not mention the op budget", budget, vmErr)
		}
	}
}
