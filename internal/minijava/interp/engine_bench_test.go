package interp_test

import (
	"testing"

	"jepo/internal/energy"
	"jepo/internal/minijava/interp"
	"jepo/internal/minijava/parser"
)

// benchSrc is an arithmetic/array/call mix that keeps the dispatch loop hot
// without spending most of its time in shared runtime helpers.
const benchSrc = `class B {
	static int work(int n) {
		int[] a = new int[64];
		int s = 0;
		for (int i = 0; i < n; i++) {
			a[i % 64] = a[i % 64] + i;
			s += a[i % 64] - (i / 3);
			if (s > 1000000) { s = s - 1000000; }
		}
		return s;
	}
	static double f() {
		double t = 0;
		for (int r = 0; r < 20; r++) { t += work(5000); }
		return t;
	}
}`

func benchEngine(b *testing.B, e interp.Engine) {
	f, err := parser.Parse("bench.java", benchSrc)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := interp.Load(f)
	if err != nil {
		b.Fatal(err)
	}
	in := interp.New(prog, energy.NewMeter(energy.DefaultCosts()),
		interp.WithMaxOps(0), interp.WithEngine(e))
	if err := in.InitStatics(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.CallStatic("B", "f"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineAST(b *testing.B) { benchEngine(b, interp.EngineAST) }
func BenchmarkEngineVM(b *testing.B)  { benchEngine(b, interp.EngineVM) }
