package profile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"jepo/internal/energy"
	"jepo/internal/instrument"
	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/interp"
	"jepo/internal/minijava/parser"
	"jepo/internal/rapl"
)

const demoSrc = `
package weka.demo;

class Work {
	static int hot() {
		int s = 0;
		for (int i = 0; i < 3000; i++) { s += i % 7; }
		return s;
	}
	static int cold() {
		return 42;
	}
	public static void main(String[] args) {
		int a = hot();
		int b = cold();
		int c = cold();
		System.out.println(a + b + c);
	}
}
`

// setupProfiledRun instruments demoSrc, runs it, and returns the profiler.
func setupProfiledRun(t *testing.T) *Profiler {
	t.Helper()
	f, err := parser.Parse("Work.java", demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	n := instrument.Inject(f)
	if n != 3 {
		t.Fatalf("instrumented %d methods, want 3", n)
	}
	prog, err := interp.Load(f)
	if err != nil {
		t.Fatalf("instrumented program fails to load: %v\n%s", err, ast.Print(f))
	}
	meter := energy.NewMeter(energy.DefaultCosts())
	src := rapl.NewSimSource(meter)
	prof := New(src, func() time.Duration { return meter.Snapshot().Elapsed })
	in := interp.New(prog, meter, interp.WithHook(prof), interp.WithMaxOps(50_000_000))
	if err := in.RunMain("Work"); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := prof.Err(); err != nil {
		t.Fatal(err)
	}
	return prof
}

func TestProfilerRecordsPerExecution(t *testing.T) {
	prof := setupProfiledRun(t)
	recs := prof.Records()
	// hot ×1, cold ×2, main ×1.
	if len(recs) != 4 {
		t.Fatalf("records = %d, want 4", len(recs))
	}
	bySeq := map[string][]int{}
	for _, r := range recs {
		bySeq[r.Method] = append(bySeq[r.Method], r.Seq)
	}
	if got := bySeq["weka.demo.Work.cold"]; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("cold executions = %v, want [1 2]", got)
	}
	for _, r := range recs {
		// The RAPL energy unit is ~15.3 µJ; a trivial method can genuinely
		// read as zero counts, exactly as on hardware. Negative is a bug.
		if r.Package < 0 {
			t.Errorf("%s exec %d has negative package energy %v", r.Method, r.Seq, r.Package)
		}
		if r.Method == "weka.demo.Work.hot" && r.Package <= 0 {
			t.Errorf("hot method read zero energy %v", r.Package)
		}
	}
}

func TestProfilerFindsEnergyHungryMethod(t *testing.T) {
	prof := setupProfiledRun(t)
	sums := prof.Summaries()
	if len(sums) != 3 {
		t.Fatalf("summaries = %d, want 3", len(sums))
	}
	byName := map[string]Summary{}
	for _, s := range sums {
		byName[s.Method] = s
	}
	main, hot, cold := byName["weka.demo.Work.main"], byName["weka.demo.Work.hot"], byName["weka.demo.Work.cold"]
	// main is inclusive of hot, up to one RAPL count of quantization.
	unit := energy.Joules(1.0 / 65536.0)
	if main.Package+unit < hot.Package {
		t.Errorf("main inclusive (%v) below hot (%v)", main.Package, hot.Package)
	}
	// The energy-hungry method must dwarf the trivial one.
	if float64(hot.Package) < 10*(float64(cold.Package)+float64(unit)) {
		t.Errorf("hot (%v) must dwarf cold (%v)", hot.Package, cold.Package)
	}
	// The two heaviest rows must be main and hot, in either order.
	top2 := map[string]bool{sums[0].Method: true, sums[1].Method: true}
	if !top2["weka.demo.Work.main"] || !top2["weka.demo.Work.hot"] {
		t.Errorf("top-2 methods = %s, %s", sums[0].Method, sums[1].Method)
	}
}

func TestProfilerViewAndResultTxt(t *testing.T) {
	prof := setupProfiledRun(t)
	view := prof.View()
	for _, want := range []string{"Method", "weka.demo.Work.hot", "Package"} {
		if !strings.Contains(view, want) {
			t.Errorf("view missing %q:\n%s", want, view)
		}
	}
	path := filepath.Join(t.TempDir(), "result.txt")
	if err := prof.WriteResultTxt(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 5 { // header + 4 executions
		t.Errorf("result.txt lines = %d, want 5:\n%s", len(lines), data)
	}
}

func TestProfilerSurvivesExceptions(t *testing.T) {
	src := `class T {
		static int boom() { throw new RuntimeException("x"); }
		static int f() {
			try { return boom(); } catch (RuntimeException e) { return 7; }
		}
	}`
	f, _ := parser.Parse("T.java", src)
	instrument.Inject(f)
	prog, err := interp.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	meter := energy.NewMeter(energy.DefaultCosts())
	prof := New(rapl.NewSimSource(meter), func() time.Duration { return meter.Snapshot().Elapsed })
	in := interp.New(prog, meter, interp.WithHook(prof))
	v, err := in.CallStatic("T", "f")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 7 {
		t.Errorf("result = %d", v.I)
	}
	if err := prof.Err(); err != nil {
		t.Fatalf("probe stack corrupted by exception: %v", err)
	}
	// boom's exit probe must still have fired (finally semantics).
	found := false
	for _, r := range prof.Records() {
		if r.Method == "T.boom" {
			found = true
		}
	}
	if !found {
		t.Error("no record for method that threw — finally probe missing")
	}
}

func TestProfilerMismatchDetection(t *testing.T) {
	meter := energy.NewMeter(energy.DefaultCosts())
	prof := New(rapl.NewSimSource(meter), func() time.Duration { return 0 })
	prof.Exit("never.entered")
	if prof.Err() == nil {
		t.Error("exit without enter must set an error")
	}
	prof2 := New(rapl.NewSimSource(meter), func() time.Duration { return 0 })
	prof2.Enter("a")
	prof2.Exit("b")
	if prof2.Err() == nil {
		t.Error("mismatched exit must set an error")
	}
}

func TestIsInstrumentedAndMainClasses(t *testing.T) {
	f, _ := parser.Parse("T.java", demoSrc)
	if instrument.IsInstrumented(f.Classes[0].Methods[0]) {
		t.Error("fresh method reported instrumented")
	}
	instrument.Inject(f)
	if !instrument.IsInstrumented(f.Classes[0].Methods[0]) {
		t.Error("instrumented method not detected")
	}
	mains := instrument.MainClasses(f)
	if len(mains) != 1 || mains[0] != "Work" {
		t.Errorf("main classes = %v", mains)
	}
}

// failingSource errors after N successful reads, simulating a permission
// loss on /dev/cpu/*/msr mid-run.
type failingSource struct {
	inner rapl.Source
	after int
	reads int
}

func (f *failingSource) Snapshot() (rapl.Snapshot, error) {
	f.reads++
	if f.reads > f.after {
		return rapl.Snapshot{}, errFail
	}
	return f.inner.Snapshot()
}

var errFail = &failErr{}

type failErr struct{}

func (*failErr) Error() string { return "msr read failed" }

func TestProfilerSurfacesCounterFailures(t *testing.T) {
	meter := energy.NewMeter(energy.DefaultCosts())
	src := &failingSource{inner: rapl.NewSimSource(meter), after: 1}
	prof := New(src, func() time.Duration { return 0 })
	prof.Enter("a") // read 1: ok
	prof.Exit("a")  // read 2: fails
	if prof.Err() == nil {
		t.Fatal("counter failure not surfaced")
	}
	if !strings.Contains(prof.Err().Error(), "msr read failed") {
		t.Errorf("error %q does not carry the cause", prof.Err())
	}
	// Failure at enter is also surfaced.
	src2 := &failingSource{inner: rapl.NewSimSource(meter), after: 0}
	prof2 := New(src2, func() time.Duration { return 0 })
	prof2.Enter("a")
	if prof2.Err() == nil {
		t.Fatal("enter-time failure not surfaced")
	}
}
