//go:build enginediff

// Differential engine fuzz: the bytecode VM and the tree-walker must be
// observationally identical — same results, same printed output, same op
// counts, same energy bits — on every program. The test drives both engines
// over (a) the Table I benchmark corpus and (b) seeded randomly generated
// programs exercising locals, statics, fields, arrays, loops, switches,
// short-circuits, casts, calls and exception handling. Any divergence is a
// compiler or dispatch bug, never acceptable drift.
//
// Run with:
//
//	go test -tags enginediff -run EngineDiff ./internal/minijava/interp
package interp_test

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"jepo/internal/energy"
	"jepo/internal/minijava/interp"
	"jepo/internal/minijava/parser"
	"jepo/internal/tables"
)

// observation is everything one engine run exposes.
type observation struct {
	errText string
	kind    interp.Kind
	i       int64
	dBits   uint64
	out     string
	ops     int64
	cycles  uint64 // Float64bits of the meter's cycle count
	pkg     uint64 // Float64bits of package Joules
	core    uint64
}

// observe runs class.method() twice on ONE engine instance — cold, then warm
// — and captures an observation at each run boundary. The second VM run
// executes this instance's quickened code copies and hits its filled inline
// caches, so comparing both boundaries pins that runtime quickening never
// shifts a result, an op count or an energy bit. (The two runs are not
// expected to match each other: statics mutate across runs. Each boundary is
// compared against the same boundary on the other engine.) A run that errors
// ends the sequence — both engines must fail identically at the same point.
func observe(t *testing.T, src, class, method string, e interp.Engine) []observation {
	t.Helper()
	f, err := parser.Parse("fuzz.java", src)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	prog, err := interp.Load(f)
	if err != nil {
		t.Fatalf("load: %v\nsource:\n%s", err, src)
	}
	in := interp.New(prog, energy.NewMeter(energy.DefaultCosts()),
		interp.WithMaxOps(100_000_000), interp.WithEngine(e))
	if err := in.InitStatics(); err != nil {
		return []observation{{errText: "init: " + err.Error()}}
	}
	var obs []observation
	for run := 0; run < 2; run++ {
		var o observation
		v, err := in.CallStatic(class, method)
		if err != nil {
			o.errText = err.Error()
		}
		s := in.Meter().Snapshot()
		o.kind = v.K
		o.i = v.I
		o.dBits = math.Float64bits(v.D)
		o.out = in.Output()
		o.ops = in.Ops()
		o.cycles = math.Float64bits(s.Cycles)
		o.pkg = math.Float64bits(float64(s.Package))
		o.core = math.Float64bits(float64(s.Core))
		obs = append(obs, o)
		if err != nil {
			break
		}
	}
	return obs
}

// diffEngines asserts observational identity of the two engines on src, at
// both the cold and the warm run boundary.
func diffEngines(t *testing.T, name, src, class, method string) {
	t.Helper()
	vm := observe(t, src, class, method, interp.EngineVM)
	ast := observe(t, src, class, method, interp.EngineAST)
	if len(vm) != len(ast) {
		t.Errorf("%s: engines diverged in run count: vm %d, ast %d\nsource:\n%s",
			name, len(vm), len(ast), src)
		return
	}
	for i := range vm {
		if vm[i] != ast[i] {
			t.Errorf("%s: engines diverged on run %d\n  vm:  %+v\n  ast: %+v\nsource:\n%s",
				name, i+1, vm[i], ast[i], src)
		}
	}
}

func TestEngineDiffTableICorpus(t *testing.T) {
	for _, b := range tables.InterpBenches() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			diffEngines(t, b.Name, b.Src, "B", "f")
		})
	}
}

func TestEngineDiffRandomPrograms(t *testing.T) {
	const programs = 60
	for seed := int64(0); seed < programs; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			src := generate(rand.New(rand.NewSource(seed)))
			diffEngines(t, fmt.Sprintf("seed %d", seed), src, "F", "f")
		})
	}
}

// --- the program generator ---

// gen holds the generator state: a deterministic source, the declared
// variables per kind, and a name counter. Loop counters are readable but
// never assignment targets, so every generated loop terminates; int
// divisions use nonzero-by-construction denominators except in the guarded
// try/catch template, which is the point.
type gen struct {
	r      *rand.Rand
	sb     strings.Builder
	indent string

	ints, dbls, bools []string // readable variables
	mutInts, mutDbls  []string // assignable subsets
	mutBools          []string
	n                 int // name counter
}

func generate(r *rand.Rand) string {
	g := &gen{r: r, indent: "\t\t"}

	g.line("class P {")
	g.line("\tint v; double w;")
	g.line("\tP(int v0) { this.v = v0; this.w = v0 * 0.5; }")
	g.line("\tint bump() { this.v = this.v + 1; return this.v; }")
	g.line("}")
	g.line("class F {")
	g.line("\tstatic int sInt = 2;")
	g.line("\tstatic double sDbl = 0.5;")
	g.line("\tstatic int g(int x) { return x * 3 - 7; }")
	g.line("\tstatic double h(double a, int b) { return a * 0.5 + b; }")
	g.line("\tstatic double f() {")

	// Preamble: a fixed vocabulary every expression can draw from. Arrays
	// are always length 8 and loop bounds never exceed 8, so loop counters
	// double as safe indices.
	g.line("\t\tint x0 = 3; int x1 = -5;")
	g.line("\t\tdouble d0 = 1.25; double d1 = 340.0;")
	g.line("\t\tboolean b0 = true;")
	g.line("\t\tint[] a0 = new int[8];")
	g.line("\t\tdouble[] e0 = new double[8];")
	g.line("\t\tP p0 = new P(4);")
	g.line("\t\tfor (int w0 = 0; w0 < 8; w0++) { a0[w0] = w0 * 2 - 3; e0[w0] = w0 * 0.75; }")
	g.ints = []string{"x0", "x1", "sInt", "p0.v"}
	g.mutInts = []string{"x0", "x1", "sInt", "p0.v"}
	g.dbls = []string{"d0", "d1", "sDbl", "p0.w"}
	g.mutDbls = []string{"d0", "d1", "sDbl", "p0.w"}
	g.bools = []string{"b0"}
	g.mutBools = []string{"b0"}

	for i, n := 0, 5+g.r.Intn(6); i < n; i++ {
		g.stmt(0)
	}

	g.line("\t\treturn d0 + x0 + x1 + sDbl + sInt + a0[3] + e0[5] + p0.v + p0.w;")
	g.line("\t}")
	g.line("}")
	return g.sb.String()
}

func (g *gen) line(s string) { g.sb.WriteString(s); g.sb.WriteByte('\n') }

func (g *gen) name(prefix string) string {
	g.n++
	return fmt.Sprintf("%s%d", prefix, g.n)
}

func (g *gen) pick(vs []string) string { return vs[g.r.Intn(len(vs))] }

// idx yields an in-bounds index expression for the length-8 arrays.
func (g *gen) idx() string { return fmt.Sprintf("%d", g.r.Intn(8)) }

// intExpr generates an int-typed expression.
func (g *gen) intExpr(depth int) string {
	if depth <= 0 || g.r.Intn(4) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(201)-100)
		case 1:
			return g.pick(g.ints)
		default:
			return "a0[" + g.idx() + "]"
		}
	}
	switch g.r.Intn(8) {
	case 0:
		return "(" + g.intExpr(depth-1) + " + " + g.intExpr(depth-1) + ")"
	case 1:
		return "(" + g.intExpr(depth-1) + " - " + g.intExpr(depth-1) + ")"
	case 2:
		return "(" + g.intExpr(depth-1) + " * " + g.intExpr(depth-1) + ")"
	case 3:
		// Positive constant denominators keep the hot path exception-free;
		// the try/catch template owns the div-by-zero parity case.
		return fmt.Sprintf("(%s %% %d)", g.intExpr(depth-1), []int{2, 3, 5, 7}[g.r.Intn(4)])
	case 4:
		return fmt.Sprintf("(%s / %d)", g.intExpr(depth-1), []int{2, 3, 5, 11}[g.r.Intn(4)])
	case 5:
		return "(" + g.boolExpr(depth-1) + " ? " + g.intExpr(depth-1) + " : " + g.intExpr(depth-1) + ")"
	case 6:
		return "g(" + g.intExpr(depth-1) + ")"
	default:
		if g.r.Intn(2) == 0 {
			return "p0.bump()"
		}
		return "(int) (" + g.dblExpr(depth-1) + ")"
	}
}

// dblExpr generates a double-typed expression.
func (g *gen) dblExpr(depth int) string {
	if depth <= 0 || g.r.Intn(4) == 0 {
		switch g.r.Intn(4) {
		case 0:
			return fmt.Sprintf("%.2f", float64(g.r.Intn(800))/4-50)
		case 1:
			return "3.5e2" // scientific literal: the costlier parse charge
		case 2:
			return g.pick(g.dbls)
		default:
			return "e0[" + g.idx() + "]"
		}
	}
	switch g.r.Intn(7) {
	case 0:
		return "(" + g.dblExpr(depth-1) + " + " + g.dblExpr(depth-1) + ")"
	case 1:
		return "(" + g.dblExpr(depth-1) + " - " + g.dblExpr(depth-1) + ")"
	case 2:
		return "(" + g.dblExpr(depth-1) + " * " + g.dblExpr(depth-1) + ")"
	case 3:
		return fmt.Sprintf("(%s / %d.0)", g.dblExpr(depth-1), []int{2, 4, 8}[g.r.Intn(3)])
	case 4:
		return "(" + g.boolExpr(depth-1) + " ? " + g.dblExpr(depth-1) + " : " + g.dblExpr(depth-1) + ")"
	case 5:
		return "h(" + g.dblExpr(depth-1) + ", " + g.intExpr(depth-1) + ")"
	default:
		return "(double) (" + g.intExpr(depth-1) + ")"
	}
}

// boolExpr generates a boolean-typed expression.
func (g *gen) boolExpr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return g.pick(g.bools)
		case 1:
			return "true"
		default:
			return "false"
		}
	}
	cmps := []string{"<", "<=", ">", ">=", "==", "!="}
	switch g.r.Intn(5) {
	case 0:
		return "(" + g.intExpr(depth-1) + " " + g.pick(cmps) + " " + g.intExpr(depth-1) + ")"
	case 1:
		return "(" + g.dblExpr(depth-1) + " " + g.pick(cmps) + " " + g.dblExpr(depth-1) + ")"
	case 2:
		return "(" + g.boolExpr(depth-1) + " && " + g.boolExpr(depth-1) + ")"
	case 3:
		return "(" + g.boolExpr(depth-1) + " || " + g.boolExpr(depth-1) + ")"
	default:
		return "(!" + g.boolExpr(depth-1) + ")"
	}
}

// stmt emits one statement at the current indent. nest bounds statement
// nesting so generated programs stay small.
func (g *gen) stmt(nest int) {
	in := g.indent
	choice := g.r.Intn(12)
	if nest >= 2 && choice >= 6 {
		choice = g.r.Intn(6) // leaf statements only when deeply nested
	}
	switch choice {
	case 0: // new int local
		v := g.name("li")
		g.line(in + "int " + v + " = " + g.intExpr(2) + ";")
		g.ints = append(g.ints, v)
		g.mutInts = append(g.mutInts, v)
	case 1: // new double local
		v := g.name("ld")
		g.line(in + "double " + v + " = " + g.dblExpr(2) + ";")
		g.dbls = append(g.dbls, v)
		g.mutDbls = append(g.mutDbls, v)
	case 2: // assignment
		if g.r.Intn(2) == 0 {
			g.line(in + g.pick(g.mutInts) + " = " + g.intExpr(2) + ";")
		} else {
			g.line(in + g.pick(g.mutDbls) + " = " + g.dblExpr(2) + ";")
		}
	case 3: // compound assignment
		ops := []string{"+=", "-=", "*="}
		if g.r.Intn(2) == 0 {
			g.line(in + g.pick(g.mutInts) + " " + g.pick(ops) + " " + g.intExpr(1) + ";")
		} else {
			g.line(in + g.pick(g.mutDbls) + " " + g.pick(ops) + " " + g.dblExpr(1) + ";")
		}
	case 4: // array store
		if g.r.Intn(2) == 0 {
			g.line(in + "a0[" + g.idx() + "] = " + g.intExpr(2) + ";")
		} else {
			g.line(in + "e0[" + g.idx() + "] = " + g.dblExpr(2) + ";")
		}
	case 5: // println (both engines must produce identical output)
		if g.r.Intn(2) == 0 {
			g.line(in + "System.out.println(" + g.intExpr(2) + ");")
		} else {
			g.line(in + "System.out.println(" + g.dblExpr(2) + ");")
		}
	case 6: // if / else
		g.line(in + "if (" + g.boolExpr(2) + ") {")
		g.nested(nest, 1+g.r.Intn(2))
		if g.r.Intn(2) == 0 {
			g.line(in + "} else {")
			g.nested(nest, 1+g.r.Intn(2))
		}
		g.line(in + "}")
	case 7: // bounded for loop; the counter is readable but never assigned
		v := g.name("i")
		bound := 2 + g.r.Intn(7)
		g.line(in + fmt.Sprintf("for (int %s = 0; %s < %d; %s++) {", v, v, bound, v))
		g.ints = append(g.ints, v)
		g.nested(nest, 1+g.r.Intn(2))
		g.line(in + "}")
		g.ints = g.ints[:len(g.ints)-1]
	case 8: // countdown while loop
		v := g.name("w")
		g.line(in + fmt.Sprintf("int %s = %d;", v, 2+g.r.Intn(6)))
		g.line(in + "while (" + v + " > 0) {")
		g.indent += "\t"
		g.line(g.indent + v + " = " + v + " - 1;")
		g.indent = in
		g.ints = append(g.ints, v)
		g.nested(nest, 1)
		g.line(in + "}")
		g.ints = g.ints[:len(g.ints)-1]
	case 9: // switch over a small int range
		g.line(in + "switch (" + g.intExpr(1) + " % 3) {")
		g.line(in + "case 0: " + g.pick(g.mutDbls) + " += 1.0; break;")
		g.line(in + "case 1: " + g.pick(g.mutInts) + " -= 2; break;")
		g.line(in + "default: " + g.pick(g.mutDbls) + " *= 0.5;")
		g.line(in + "}")
	case 10: // guarded division: exception paths must also agree
		tgt := g.pick(g.mutInts)
		ex := g.name("ex")
		g.line(in + "try { " + tgt + " = " + g.intExpr(1) + " / (" + g.intExpr(1) + " % 2); }")
		g.line(in + "catch (ArithmeticException " + ex + ") { " + tgt + " = " + tgt + " + 1; }")
	default: // do-while countdown
		v := g.name("q")
		g.line(in + fmt.Sprintf("int %s = %d;", v, 1+g.r.Intn(5)))
		g.line(in + "do {")
		g.indent += "\t"
		g.line(g.indent + v + " = " + v + " - 1;")
		g.line(g.indent + g.pick(g.mutDbls) + " += 0.25;")
		g.indent = in
		g.line(in + "} while (" + v + " > 0);")
	}
}

// nested emits count statements one indent level deeper, restoring the
// variable vocabulary afterwards so inner declarations stay scoped.
func (g *gen) nested(nest, count int) {
	in := g.indent
	ni, nd, nb := len(g.ints), len(g.dbls), len(g.bools)
	mi, md, mb := len(g.mutInts), len(g.mutDbls), len(g.mutBools)
	g.indent = in + "\t"
	for i := 0; i < count; i++ {
		g.stmt(nest + 1)
	}
	g.indent = in
	g.ints, g.dbls, g.bools = g.ints[:ni], g.dbls[:nd], g.bools[:nb]
	g.mutInts, g.mutDbls, g.mutBools = g.mutInts[:mi], g.mutDbls[:md], g.mutBools[:mb]
}
