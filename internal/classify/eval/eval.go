// Package eval implements the evaluation harness: stratified k-fold
// cross-validation with accuracy and confusion-matrix reporting, matching
// the paper's "stratified 10-fold cross-validation" methodology.
package eval

import (
	"context"
	"fmt"
	"strings"

	"jepo/internal/classify"
	"jepo/internal/dataset"
	"jepo/internal/sched"
)

// Result is the outcome of one evaluation.
type Result struct {
	Name      string
	Correct   int
	Total     int
	PerFold   []float64 // accuracy per fold (empty for holdout evaluation)
	Confusion [][]int   // [actual][predicted]
}

// Accuracy in percent.
func (r *Result) Accuracy() float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.Correct) / float64(r.Total)
}

// Kappa is Cohen's kappa against the chance agreement of the marginals.
func (r *Result) Kappa() float64 {
	if r.Total == 0 {
		return 0
	}
	n := float64(r.Total)
	po := float64(r.Correct) / n
	pe := 0.0
	for k := range r.Confusion {
		var rowSum, colSum float64
		for j := range r.Confusion {
			rowSum += float64(r.Confusion[k][j])
			colSum += float64(r.Confusion[j][k])
		}
		pe += (rowSum / n) * (colSum / n)
	}
	if pe == 1 {
		return 0
	}
	return (po - pe) / (1 - pe)
}

// String renders a WEKA-like summary block.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s ===\n", r.Name)
	fmt.Fprintf(&sb, "Correctly Classified Instances   %6d  %8.4f %%\n", r.Correct, r.Accuracy())
	fmt.Fprintf(&sb, "Incorrectly Classified Instances %6d  %8.4f %%\n",
		r.Total-r.Correct, 100-r.Accuracy())
	fmt.Fprintf(&sb, "Kappa statistic                  %8.4f\n", r.Kappa())
	fmt.Fprintf(&sb, "Total Number of Instances        %6d\n", r.Total)
	return sb.String()
}

// PrecisionRecallF1 computes the per-class detailed accuracy measures WEKA
// prints ("Detailed Accuracy By Class"). Degenerate denominators yield 0.
func (r *Result) PrecisionRecallF1(class int) (precision, recall, f1 float64) {
	if class < 0 || class >= len(r.Confusion) {
		return 0, 0, 0
	}
	var tp, fp, fn float64
	for j := range r.Confusion {
		if j == class {
			tp = float64(r.Confusion[class][class])
			continue
		}
		fp += float64(r.Confusion[j][class])
		fn += float64(r.Confusion[class][j])
	}
	if tp+fp > 0 {
		precision = tp / (tp + fp)
	}
	if tp+fn > 0 {
		recall = tp / (tp + fn)
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}

// DetailedByClass renders the WEKA "Detailed Accuracy By Class" block.
func (r *Result) DetailedByClass(classNames []string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %10s %10s %10s\n", "Class", "Precision", "Recall", "F-Measure")
	for k := range r.Confusion {
		name := fmt.Sprintf("class%d", k)
		if k < len(classNames) {
			name = classNames[k]
		}
		p, rec, f1 := r.PrecisionRecallF1(k)
		fmt.Fprintf(&sb, "%-12s %10.3f %10.3f %10.3f\n", name, p, rec, f1)
	}
	return sb.String()
}

// Factory builds a fresh classifier per fold.
type Factory func() classify.Classifier

// SeededFactory builds a fresh classifier for one fold from that fold's
// pre-derived seed. Randomized classifiers (RandomTree, RandomForest,
// REPTree, the SGD shufflers) should seed their streams from foldSeed so
// every fold draws an independent, order-free stream.
type SeededFactory func(fold int, foldSeed uint64) classify.Classifier

// FoldSeeds pre-derives one independent RNG seed per fold from the split
// seed. The derivation is a pure function of (seed, fold index) — no
// generator is shared across fold iterations — so fold f's stream is the
// same whether the folds run first, last, sequentially or concurrently.
// This is the determinism fix that lets fold training parallelize: a single
// RNG threaded through the fold loop would hand each fold a stream that
// depends on how many draws earlier folds consumed, an order dependence
// that breaks bit-identical parallel runs.
func FoldSeeds(seed uint64, k int) []uint64 {
	out := make([]uint64, k)
	for i := range out {
		out[i] = sched.TaskSeed(seed, i)
	}
	return out
}

// FoldEval is one fold's independently computed evaluation, merged into
// the Result in fold order. It is JSON-shaped so a fold evaluated in a
// dist worker process ships its exact counts back to the dispatcher —
// integers round-trip losslessly, so a remotely evaluated fold merges
// bit-identically to a local one.
type FoldEval struct {
	Name      string  `json:"name"`
	Correct   int     `json:"correct"`
	Total     int     `json:"total"`
	Confusion [][]int `json:"confusion"` // [actual][predicted]
}

// EvalFold trains and evaluates exactly one fold of a stratified split:
// its own classifier from the fold's pre-derived seed, its own confusion
// counts, no shared state. folds must come from d.StratifiedFolds; the
// fold seed from FoldSeeds. This is the unit the cross-validation pool —
// and the dist "cvfold" campaign — shards.
func EvalFold(d *dataset.Dataset, folds [][]int, fold int, foldSeed uint64, make SeededFactory) (FoldEval, error) {
	train, test := d.TrainTest(folds, fold)
	c := make(fold, foldSeed)
	out := FoldEval{Name: c.Name(), Confusion: newConfusion(d.NumClasses())}
	if err := c.Train(train); err != nil {
		return FoldEval{}, fmt.Errorf("eval: fold %d: %w", fold, err)
	}
	for i, row := range test.X {
		pred := c.Predict(row)
		actual := test.Class(i)
		if pred >= 0 && pred < len(out.Confusion) {
			out.Confusion[actual][pred]++
		}
		if pred == actual {
			out.Correct++
		}
	}
	out.Total = test.NumInstances()
	return out, nil
}

// MergeFoldEvals folds per-fold outcomes, in fold-index order, into a
// Result. Integer sums are ordering-blind, but PerFold preserves fold
// order, so callers must pass evals indexed by fold.
func MergeFoldEvals(numClasses int, evals []FoldEval) *Result {
	res := &Result{Confusion: newConfusion(numClasses)}
	for _, out := range evals {
		mergeFold(res, out)
	}
	return res
}

// mergeFold accumulates one fold into the result.
func mergeFold(res *Result, out FoldEval) {
	if res.Name == "" {
		res.Name = out.Name
	}
	for a := range out.Confusion {
		for p := range out.Confusion[a] {
			res.Confusion[a][p] += out.Confusion[a][p]
		}
	}
	res.Correct += out.Correct
	res.Total += out.Total
	// A fold can end up with zero test instances when k is close to the
	// dataset size; report 0 accuracy rather than NaN.
	foldAcc := 0.0
	if out.Total > 0 {
		foldAcc = 100 * float64(out.Correct) / float64(out.Total)
	}
	res.PerFold = append(res.PerFold, foldAcc)
}

// CrossValidate runs stratified k-fold cross-validation. Every fold's
// classifier comes from the same zero-argument factory, so all folds share
// the classifier's configured seed; use CrossValidateSeeded to give each
// fold an independent pre-derived stream and to train folds in parallel.
func CrossValidate(d *dataset.Dataset, k int, seed uint64, make Factory) (*Result, error) {
	return CrossValidateSeeded(context.Background(), d, k, seed, func(int, uint64) classify.Classifier { return make() }, 1)
}

// CrossValidateSeeded runs stratified k-fold cross-validation with
// pre-derived per-fold seeds (see FoldSeeds) on a bounded worker pool.
// Each fold trains and evaluates in isolation — its own classifier, its own
// confusion counts — and fold outcomes are merged in fold-index order, so
// the Result is bit-identical at any jobs count, including jobs == 1, which
// runs the folds inline in order.
func CrossValidateSeeded(ctx context.Context, d *dataset.Dataset, k int, seed uint64, make SeededFactory, jobs int) (*Result, error) {
	folds, err := d.StratifiedFolds(k, seed)
	if err != nil {
		return nil, err
	}
	seeds := FoldSeeds(seed, len(folds))
	res := &Result{Confusion: newConfusion(d.NumClasses())}
	_, _, err = sched.MapCommit(ctx, sched.Config{Jobs: jobs, Seed: seed}, folds,
		func(task sched.Task, _ []int) (FoldEval, error) {
			return EvalFold(d, folds, task.Index, seeds[task.Index], make)
		},
		func(_ sched.Task, out FoldEval) {
			mergeFold(res, out)
		})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Holdout trains on train and evaluates on test.
func Holdout(train, test *dataset.Dataset, make Factory) (*Result, error) {
	c := make()
	if err := c.Train(train); err != nil {
		return nil, err
	}
	res := &Result{Name: c.Name(), Confusion: newConfusion(train.NumClasses())}
	for i, row := range test.X {
		pred := c.Predict(row)
		actual := test.Class(i)
		if pred >= 0 && pred < len(res.Confusion) {
			res.Confusion[actual][pred]++
		}
		if pred == actual {
			res.Correct++
		}
	}
	res.Total = test.NumInstances()
	return res, nil
}

func newConfusion(nc int) [][]int {
	m := make([][]int, nc)
	for i := range m {
		m[i] = make([]int, nc)
	}
	return m
}
