// Package tree implements the decision-tree family: J48 (C4.5 with gain
// ratio and pessimistic pruning), REPTree (information gain with
// reduced-error pruning), RandomTree (random attribute subsets, unpruned) and
// RandomForest (bagged random trees).
package tree

import (
	"math"
	"sort"

	"jepo/internal/classify"
	"jepo/internal/dataset"
)

// node is one tree node. Leaves have attr == -1.
type node struct {
	attr      int
	threshold float64 // numeric splits: <= goes left
	nominal   bool
	children  []*node
	dist      []float64 // training class distribution at this node
	pred      int
	n         float64 // training instances reaching the node
}

func (nd *node) isLeaf() bool { return nd.attr < 0 }

// predict routes a row to a leaf. Unseen/missing values fall back to the
// node's own majority class.
func (nd *node) predict(row []float64) int {
	for !nd.isLeaf() {
		var next *node
		v := row[nd.attr]
		if math.IsNaN(v) {
			return nd.pred
		}
		if nd.nominal {
			ix := int(v)
			if ix < 0 || ix >= len(nd.children) || nd.children[ix] == nil {
				return nd.pred
			}
			next = nd.children[ix]
		} else {
			if v <= nd.threshold {
				next = nd.children[0]
			} else {
				next = nd.children[1]
			}
		}
		if next == nil {
			return nd.pred
		}
		nd = next
	}
	return nd.pred
}

// countNodes reports the subtree size (used in tests and metrics).
func (nd *node) countNodes() int {
	if nd == nil {
		return 0
	}
	n := 1
	for _, c := range nd.children {
		n += c.countNodes()
	}
	return n
}

// builderConfig parameterizes tree growth for the three tree learners.
type builderConfig struct {
	gainRatio bool // C4.5 gain ratio vs plain information gain
	kAttrs    int  // random attribute subset size per node (0 = all)
	minLeaf   int  // minimum instances per leaf
	maxDepth  int  // 0 = unlimited
	rng       *classify.RNG
	fp        classify.FP
}

type builder struct {
	cfg  builderConfig
	d    *dataset.Dataset
	rows []int
}

// grow builds a subtree over the given row indices.
func (b *builder) grow(rows []int, depth int) *node {
	nd := &node{attr: -1}
	nd.dist = b.classDist(rows)
	nd.n = float64(len(rows))
	nd.pred = classify.ArgMax(nd.dist)
	if len(rows) < 2*b.cfg.minLeaf || b.pure(nd.dist) ||
		(b.cfg.maxDepth > 0 && depth >= b.cfg.maxDepth) {
		return nd
	}
	attr, thr, gain := b.bestSplit(rows)
	if attr < 0 || gain <= 1e-10 {
		return nd
	}
	a := b.d.Attrs[attr]
	if a.Kind == dataset.Nominal {
		groups := make([][]int, a.NumValues())
		for _, r := range rows {
			v := int(b.d.X[r][attr])
			groups[v] = append(groups[v], r)
		}
		nd.attr, nd.nominal = attr, true
		nd.children = make([]*node, a.NumValues())
		for v, g := range groups {
			if len(g) == 0 {
				continue // predict() falls back to nd.pred
			}
			nd.children[v] = b.grow(g, depth+1)
		}
		return nd
	}
	var left, right []int
	for _, r := range rows {
		if b.d.X[r][attr] <= thr {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		nd.attr = -1
		return nd
	}
	nd.attr, nd.nominal, nd.threshold = attr, false, thr
	nd.children = []*node{b.grow(left, depth+1), b.grow(right, depth+1)}
	return nd
}

func (b *builder) classDist(rows []int) []float64 {
	dist := make([]float64, b.d.NumClasses())
	for _, r := range rows {
		dist[b.d.Class(r)]++
	}
	return dist
}

func (b *builder) pure(dist []float64) bool {
	nonzero := 0
	for _, c := range dist {
		if c > 0 {
			nonzero++
		}
	}
	return nonzero <= 1
}

// bestSplit searches the (possibly random-subset) candidate attributes.
func (b *builder) bestSplit(rows []int) (attr int, threshold, gain float64) {
	candidates := b.candidateAttrs()
	attr = -1
	parentH := b.entropy(rows)
	for _, j := range candidates {
		var g, thr float64
		if b.d.Attrs[j].Kind == dataset.Nominal {
			g = b.nominalGain(rows, j, parentH)
		} else {
			g, thr = b.numericGain(rows, j, parentH)
		}
		if g > gain {
			attr, gain, threshold = j, g, thr
		}
	}
	return attr, threshold, gain
}

func (b *builder) candidateAttrs() []int {
	var all []int
	for j := range b.d.Attrs {
		if j != b.d.ClassIdx {
			all = append(all, j)
		}
	}
	if b.cfg.kAttrs <= 0 || b.cfg.kAttrs >= len(all) {
		return all
	}
	// Partial Fisher–Yates for a random subset.
	for i := 0; i < b.cfg.kAttrs; i++ {
		j := i + b.cfg.rng.Intn(len(all)-i)
		all[i], all[j] = all[j], all[i]
	}
	return all[:b.cfg.kAttrs]
}

func (b *builder) entropy(rows []int) float64 {
	dist := b.classDist(rows)
	return entropyOf(dist, float64(len(rows)), b.cfg.fp)
}

func entropyOf(dist []float64, n float64, fp classify.FP) float64 {
	if n == 0 {
		return 0
	}
	h := 0.0
	for _, c := range dist {
		if c == 0 {
			continue
		}
		p := c / n
		h = fp.R(h - p*math.Log2(p))
	}
	return h
}

// nominalGain computes the (ratio-adjusted) gain of a multiway nominal split.
func (b *builder) nominalGain(rows []int, j int, parentH float64) float64 {
	a := b.d.Attrs[j]
	counts := make([][]float64, a.NumValues())
	sizes := make([]float64, a.NumValues())
	for _, r := range rows {
		v := int(b.d.X[r][j])
		if counts[v] == nil {
			counts[v] = make([]float64, b.d.NumClasses())
		}
		counts[v][b.d.Class(r)]++
		sizes[v]++
	}
	n := float64(len(rows))
	childH, splitInfo := 0.0, 0.0
	branches, adequate := 0, 0
	for v := range counts {
		if sizes[v] == 0 {
			continue
		}
		branches++
		if sizes[v] >= float64(b.cfg.minLeaf) {
			adequate++
		}
		w := sizes[v] / n
		childH = b.cfg.fp.R(childH + w*entropyOf(counts[v], sizes[v], b.cfg.fp))
		splitInfo = b.cfg.fp.R(splitInfo - w*math.Log2(w))
	}
	// C4.5's usefulness constraint: at least two branches must carry the
	// minimum object count, or the split merely fragments the data (critical
	// for the 293-valued airport attributes of the airlines task).
	if branches < 2 || adequate < 2 {
		return 0
	}
	gain := parentH - childH
	if b.cfg.gainRatio {
		if splitInfo < 1e-10 {
			return 0
		}
		return b.cfg.fp.R(gain / splitInfo)
	}
	return gain
}

// numericGain finds the best binary threshold for a numeric attribute.
func (b *builder) numericGain(rows []int, j int, parentH float64) (float64, float64) {
	type pair struct {
		v float64
		c int
	}
	ps := make([]pair, 0, len(rows))
	for _, r := range rows {
		v := b.d.X[r][j]
		if math.IsNaN(v) {
			continue
		}
		ps = append(ps, pair{v, b.d.Class(r)})
	}
	if len(ps) < 2 {
		return 0, 0
	}
	sort.Slice(ps, func(x, y int) bool { return ps[x].v < ps[y].v })
	nc := b.d.NumClasses()
	left := make([]float64, nc)
	right := make([]float64, nc)
	for _, p := range ps {
		right[p.c]++
	}
	n := float64(len(ps))
	bestGain, bestThr := 0.0, 0.0
	nl := 0.0
	for i := 0; i < len(ps)-1; i++ {
		left[ps[i].c]++
		right[ps[i].c]--
		nl++
		if ps[i].v == ps[i+1].v {
			continue
		}
		nr := n - nl
		childH := b.cfg.fp.R((nl/n)*entropyOf(left, nl, b.cfg.fp) + (nr/n)*entropyOf(right, nr, b.cfg.fp))
		gain := parentH - childH
		splitInfo := 0.0
		if b.cfg.gainRatio {
			wl, wr := nl/n, nr/n
			splitInfo = -wl*math.Log2(wl) - wr*math.Log2(wr)
			if splitInfo < 1e-10 {
				continue
			}
			gain = b.cfg.fp.R(gain / splitInfo)
		}
		if gain > bestGain {
			bestGain = gain
			bestThr = (ps[i].v + ps[i+1].v) / 2
		}
	}
	return bestGain, bestThr
}
