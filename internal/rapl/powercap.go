package rapl

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"jepo/internal/energy"
)

// PowercapRoot is the stock location of the Linux powercap RAPL tree.
const PowercapRoot = "/sys/class/powercap"

// zone is one powercap zone (a directory with name and energy_uj files).
type zone struct {
	dir      string
	maxRange uint64 // max_energy_range_uj, 0 if absent
	last     uint64
	acc      uint64
	init     bool

	fails       int  // consecutive failed reads
	quarantined bool // dropped after too many consecutive failures
	resets      int  // backwards jumps with no declared wrap range
}

// DefaultQuarantineAfter is how many consecutive failed reads drop a zone.
const DefaultQuarantineAfter = 3

// Sysfs reads real RAPL counters through the Linux powercap interface. It
// maps the top-level "package-N" zones to the Package domain and their
// "core" / "dram" sub-zones to Core and DRAM, summing across sockets.
//
// The reader degrades instead of failing: a zone whose energy_uj read fails
// (permission flip, hotplug removal) contributes its last accumulated value,
// and after QuarantineAfter consecutive failures it is quarantined — never
// read again, its accumulated energy frozen so totals stay monotonic. The
// snapshot only errors once every package zone is quarantined, which is the
// signal for the resilient wrapper to fall back.
type Sysfs struct {
	// QuarantineAfter overrides the consecutive-failure threshold
	// (DefaultQuarantineAfter when zero or unset).
	QuarantineAfter int

	zones  [numDomains][]*zone
	health Health
}

// NewSysfs scans root (usually PowercapRoot) for intel-rapl zones. It returns
// an error when no package zone is readable, which is the signal to fall back
// to the simulator.
func NewSysfs(root string) (*Sysfs, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("rapl: powercap unavailable: %w", err)
	}
	s := &Sysfs{}
	for _, e := range entries {
		name := e.Name()
		// Top-level zones look like intel-rapl:0; sub-zones intel-rapl:0:0.
		if !strings.HasPrefix(name, "intel-rapl") || strings.Count(name, ":") != 1 {
			continue
		}
		dir := filepath.Join(root, name)
		label, err := os.ReadFile(filepath.Join(dir, "name"))
		if err != nil || !strings.HasPrefix(strings.TrimSpace(string(label)), "package") {
			continue
		}
		if z := openZone(dir); z != nil {
			s.zones[Package] = append(s.zones[Package], z)
		}
		subs, _ := filepath.Glob(dir + ":*")
		for _, sub := range subs {
			subLabel, err := os.ReadFile(filepath.Join(sub, "name"))
			if err != nil {
				continue
			}
			var d Domain
			switch strings.TrimSpace(string(subLabel)) {
			case "core":
				d = Core
			case "dram":
				d = DRAM
			default:
				continue
			}
			if z := openZone(sub); z != nil {
				s.zones[d] = append(s.zones[d], z)
			}
		}
	}
	if len(s.zones[Package]) == 0 {
		return nil, fmt.Errorf("rapl: no readable package zone under %s", root)
	}
	return s, nil
}

// openZone validates that energy_uj is readable and loads the wrap range.
func openZone(dir string) *zone {
	if _, err := readUint(filepath.Join(dir, "energy_uj")); err != nil {
		return nil
	}
	z := &zone{dir: dir}
	if r, err := readUint(filepath.Join(dir, "max_energy_range_uj")); err == nil {
		z.maxRange = r
	}
	return z
}

func readUint(path string) (uint64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	return strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
}

// read returns the zone's accumulated microjoules, unwrapping against
// max_energy_range_uj.
func (z *zone) read() (uint64, error) {
	v, err := readUint(filepath.Join(z.dir, "energy_uj"))
	if err != nil {
		return 0, err
	}
	if !z.init {
		z.last, z.init = v, true
	}
	if v >= z.last {
		z.acc += v - z.last
	} else if z.maxRange > 0 {
		z.acc += (z.maxRange - z.last) + v
	} else {
		// Backwards with no declared range: a counter reset (hotplug,
		// suspend) is indistinguishable from a stale duplicate reading, and
		// accumulating v would re-count energy already charged whenever the
		// glitch repeats. Count nothing, resync from the new value, and let
		// the health tally record the discarded delta.
		z.resets++
	}
	z.last = v
	return z.acc, nil
}

// quarantineAfter resolves the configured consecutive-failure threshold.
func (s *Sysfs) quarantineAfter() int {
	if s.QuarantineAfter > 0 {
		return s.QuarantineAfter
	}
	return DefaultQuarantineAfter
}

// Health reports the zone-level degradation tallies: quarantined zones,
// reads served from a zone's last accumulated value, and discarded
// backwards jumps.
func (s *Sysfs) Health() Health {
	h := s.health
	for d := Domain(0); d < numDomains; d++ {
		for _, z := range s.zones[d] {
			h.Resets += z.resets
		}
	}
	return h
}

// Snapshot implements Source, summing zones per domain across sockets.
// Failed zone reads contribute the zone's last accumulated value; zones
// failing quarantineAfter consecutive reads are quarantined with their
// accumulation frozen. The snapshot errors only when no live package zone
// remains.
func (s *Sysfs) Snapshot() (Snapshot, error) {
	var out Snapshot
	for d := Domain(0); d < numDomains; d++ {
		var uj uint64
		for _, z := range s.zones[d] {
			v := z.acc
			if !z.quarantined {
				nv, err := z.read()
				if err != nil {
					z.fails++
					s.health.Interpolated++
					if z.fails >= s.quarantineAfter() {
						z.quarantined = true
						s.health.Quarantined++
					}
				} else {
					z.fails = 0
					v = nv
				}
			}
			uj += v
		}
		j := energy.Joules(float64(uj) * 1e-6)
		switch d {
		case Package:
			out.Package = j
		case Core:
			out.Core = j
		case DRAM:
			out.DRAM = j
		}
	}
	live := 0
	for _, z := range s.zones[Package] {
		if !z.quarantined {
			live++
		}
	}
	if live == 0 {
		return Snapshot{}, fmt.Errorf("rapl: every package zone quarantined under powercap")
	}
	return out, nil
}

// Detect returns a real powercap source when the host exposes one, and nil
// otherwise. Callers fall back to NewSimSource when it returns nil.
func Detect() Source {
	s, err := NewSysfs(PowercapRoot)
	if err != nil {
		return nil
	}
	return s
}
