package tables

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"jepo/internal/airlines"
	"jepo/internal/classify"
	"jepo/internal/classify/bayes"
	"jepo/internal/classify/eval"
	"jepo/internal/classify/lazy"
	"jepo/internal/classify/linear"
	"jepo/internal/classify/svm"
	"jepo/internal/classify/tree"
	"jepo/internal/corpus"
	"jepo/internal/dataset"
	"jepo/internal/energy"
	"jepo/internal/engine"
	"jepo/internal/jmetrics"
	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/interp"
	"jepo/internal/refactor"
	"jepo/internal/sched"
	"jepo/internal/stats"
)

// Table2 generates the per-classifier corpora and measures the Table II
// metrics rows for each, sequentially. See Table2Parallel for the pooled
// form the CLIs expose through -jobs.
func Table2(ctx context.Context, seed uint64) ([]jmetrics.Metrics, error) {
	rows, _, err := Table2Parallel(ctx, seed, 1)
	return rows, err
}

// Table2Parallel measures the Table II rows on a bounded worker pool. Every
// classifier's corpus generation, parsing and metric measurement is fully
// independent, and rows are committed in paper order, so the result is
// bit-identical at any jobs count.
func Table2Parallel(ctx context.Context, seed uint64, jobs int) ([]jmetrics.Metrics, sched.Telemetry, error) {
	return sched.Map(ctx, sched.Config{Jobs: jobs, Seed: seed}, corpus.Classifiers,
		func(_ sched.Task, name string) (jmetrics.Metrics, error) {
			return Table2Row(name, seed)
		})
}

// Table2Row measures one classifier's Table II metrics: its own corpus
// generation, parse and measurement, fully independent of the other rows.
// This is the task unit both the sched pool and the dist "table2" campaign
// shard.
func Table2Row(name string, seed uint64) (jmetrics.Metrics, error) {
	p, err := corpus.Generate(name, seed)
	if err != nil {
		return jmetrics.Metrics{}, err
	}
	files, err := parseCorpus(engine.Default(), p)
	if err != nil {
		return jmetrics.Metrics{}, err
	}
	srcs := make([]jmetrics.SourceFile, len(files))
	for i := range files {
		srcs[i] = jmetrics.SourceFile{AST: files[i], Source: p.Files[i].Source}
	}
	return jmetrics.NewProject(srcs).Measure(name)
}

// Table3 renders the airlines schema with the realized distinct-value counts
// the paper quotes (18 airlines, 293 airports).
func Table3(instances int, seed uint64) string {
	d := airlines.Generate(instances, seed)
	var sb strings.Builder
	sb.WriteString(airlines.TableIII())
	fmt.Fprintf(&sb, "\nInstances: %d (reduced from %d as in the paper)\n",
		d.NumInstances(), airlines.FullSize)
	fmt.Fprintf(&sb, "Distinct airlines: %d, distinct origin airports: %d\n",
		d.DistinctValues(airlines.ColAirline), d.DistinctValues(airlines.ColFrom))
	counts := d.ClassCounts()
	fmt.Fprintf(&sb, "Delay distribution: on-time %d, delayed %d\n", counts[0], counts[1])
	return sb.String()
}

// Table4Row is one classifier's end-to-end validation result.
type Table4Row struct {
	Classifier  string
	Changes     int
	PackagePct  float64
	CPUPct      float64
	TimePct     float64
	AccuracyPct float64 // accuracy drop (positive = refactoring lost accuracy)
	// Err is set by the supervised runner when this classifier's pipeline
	// failed (error, panic or deadline); the measurement columns are then
	// meaningless and the row renders as a failure entry.
	Err string
}

// Table4Config parameterizes the §VIII experiment.
type Table4Config struct {
	Seed      uint64
	Instances int            // airlines rows for kernels and cross-validation
	Reps      int            // kernel repetitions per measurement
	Protocol  stats.Protocol // the run/Tukey/replace loop
	CVFolds   int            // stratified folds (paper: 10)
	Slots     int            // classifiers evaluated concurrently (0 = GOMAXPROCS)
	CVJobs    int            // fold-training workers inside each row's cross-validation (0 = 1)
	Engine    interp.Engine  // execution engine (zero value = bytecode VM)
	Quiet     bool
	Progress  func(string) // optional progress callback
	// OnTelemetry, when set, receives the row pool's execution ledger after
	// the run (worker utilization, retry-queue steals, straggler row). The
	// CLIs print it to stderr so determinism-pinned stdout stays byte-equal
	// across -jobs values.
	OnTelemetry func(sched.Telemetry)

	// Supervision knobs, honored by Table4Supervised only.
	RowTimeout    time.Duration // per-classifier deadline (0 = none)
	CheckpointDir string        // persist completed rows; reruns resume from here
	// RowHook runs inside the supervised worker before a row's pipeline; a
	// non-nil error (or panic) fails the row. It is the fault-injection seam
	// the resilience tests use.
	RowHook func(classifier string) error

	// Cache selects the artifact engine the pipeline's parse and kernel
	// measurement stages go through (nil = engine.Default()). Deliberately
	// absent from the dist wire form: worker processes always use their own
	// process-wide engine.
	Cache *engine.Engine
}

// cache resolves the artifact engine for this config.
func (cfg Table4Config) cache() *engine.Engine {
	if cfg.Cache != nil {
		return cfg.Cache
	}
	return engine.Default()
}

// DefaultTable4Config mirrors the paper's methodology at a tractable scale
// for the simulated substrate.
func DefaultTable4Config() Table4Config {
	return Table4Config{
		Seed:      20200518,
		Instances: 2000,
		Reps:      3,
		Protocol:  stats.Protocol{Runs: 5, MaxRounds: 10},
		CVFolds:   10,
	}
}

// kernelMeasurement is one simulated run's package/core/time reading.
type kernelMeasurement struct {
	pkg, core energy.Joules
	elapsed   time.Duration
}

// Table4 runs the full validation pipeline per classifier:
//
//  1. generate its WEKA-shaped corpus and apply every JEPO suggestion,
//     counting changes;
//  2. execute the classifier's hot kernel on airlines data before and after
//     refactoring, under the paper's repeat/Tukey-outlier protocol, and
//     compute package, CPU and execution-time improvements;
//  3. run the real (Go) classifier under stratified k-fold cross-validation
//     in double and single precision to measure the accuracy drop caused by
//     the double→float / long→int changes.
func Table4(ctx context.Context, cfg Table4Config) ([]Table4Row, error) {
	var sayMu sync.Mutex
	say := func(format string, args ...any) {
		if cfg.Progress != nil {
			sayMu.Lock()
			cfg.Progress(fmt.Sprintf(format, args...))
			sayMu.Unlock()
		}
	}
	data := airlines.Generate(cfg.Instances, cfg.Seed)
	feats, labels := kernelData(data)

	// Every classifier's pipeline is independent (its own corpus, its own
	// interpreters, its own deterministic streams), so rows are evaluated by
	// the sched pool, like WEKA's execution slots. Rows are committed in
	// paper order, so results are bit-identical at any parallelism.
	rows, tel, err := sched.Map(ctx, sched.Config{Jobs: cfg.Slots, Seed: cfg.Seed}, corpus.Classifiers,
		func(_ sched.Task, name string) (Table4Row, error) {
			return table4Row(ctx, name, data, feats, labels, cfg, say)
		})
	if cfg.OnTelemetry != nil {
		cfg.OnTelemetry(tel)
	}
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// table4Row runs the full pipeline for one classifier. The finished row is
// itself a cached artifact: every input — corpus, kernels, airlines data —
// derives from the keyed config fields, so a warm store answers a repeated
// row without regenerating or re-refactoring anything. Slots/CVJobs (pure
// placement), supervision knobs and progress plumbing stay out of the key.
// On a hit the pipeline never runs, so its progress narration is skipped too.
func table4Row(ctx context.Context, name string, data *dataset.Dataset, feats [][]float64, labels []int64, cfg Table4Config, say func(string, ...any)) (Table4Row, error) {
	k := engine.NewKey("tables/table4row").
		Str(name).
		Int(int64(cfg.Seed)).Int(int64(cfg.Instances)).
		Int(int64(cfg.Reps)).Int(int64(cfg.Engine)).
		Int(int64(cfg.Protocol.Runs)).Int(int64(cfg.Protocol.MaxRounds)).
		Int(int64(cfg.CVFolds)).
		Key()
	v, err := cfg.cache().Memo(k, func() (any, error) {
		return table4RowUncached(ctx, name, data, feats, labels, cfg, say)
	})
	if err != nil {
		return Table4Row{}, err
	}
	return v.(Table4Row), nil
}

func table4RowUncached(ctx context.Context, name string, data *dataset.Dataset, feats [][]float64, labels []int64, cfg Table4Config, say func(string, ...any)) (Table4Row, error) {
	say("=== %s ===", name)
	proj, err := corpus.Generate(name, cfg.Seed)
	if err != nil {
		return Table4Row{}, err
	}
	// Checkout from the parse cache: the corpus generator emits the same core
	// library files for every classifier, so sibling rows (and reruns) share
	// their parse artifacts. refactor.Apply mutates the checkouts, never the
	// cached masters.
	files, err := parseCorpus(cfg.cache(), proj)
	if err != nil {
		return Table4Row{}, err
	}
	res := refactor.Apply(files)
	say("%s: applied %d changes", name, res.Changes)

	// Locate the original and refactored kernel ASTs.
	orig, err := kernelAST(cfg.cache(), proj, name)
	if err != nil {
		return Table4Row{}, err
	}
	var refd *ast.File
	for _, f := range files {
		if strings.HasSuffix(f.Path, corpus.KernelClass(name)+".java") {
			refd = f
		}
	}
	if refd == nil {
		return Table4Row{}, fmt.Errorf("tables: refactored kernel for %s missing", name)
	}

	before, err := measureKernelProtocol(ctx, orig, name, feats, labels, cfg)
	if err != nil {
		return Table4Row{}, err
	}
	after, err := measureKernelProtocol(ctx, refd, name, feats, labels, cfg)
	if err != nil {
		return Table4Row{}, err
	}
	say("%s: package %v → %v", name, energy.Joules(before.pkg), energy.Joules(after.pkg))

	drop, err := accuracyDrop(ctx, name, data, cfg)
	if err != nil {
		return Table4Row{}, err
	}
	return Table4Row{
		Classifier:  name,
		Changes:     res.Changes,
		PackagePct:  stats.Improvement(float64(before.pkg), float64(after.pkg)),
		CPUPct:      stats.Improvement(float64(before.core), float64(after.core)),
		TimePct:     stats.Improvement(float64(before.elapsed), float64(after.elapsed)),
		AccuracyPct: drop,
	}, nil
}

// kernelData converts airlines rows to the normalized matrix the kernels
// consume: every feature scaled into [0,1], class column separated.
func kernelData(d *dataset.Dataset) ([][]float64, []int64) {
	n := d.NumInstances()
	nf := d.NumAttrs() - 1
	mins := make([]float64, nf)
	maxs := make([]float64, nf)
	for j := 0; j < nf; j++ {
		mins[j] = d.X[0][j]
		maxs[j] = d.X[0][j]
		for _, row := range d.X {
			if row[j] < mins[j] {
				mins[j] = row[j]
			}
			if row[j] > maxs[j] {
				maxs[j] = row[j]
			}
		}
	}
	feats := make([][]float64, n)
	labels := make([]int64, n)
	for i, row := range d.X {
		feats[i] = make([]float64, nf)
		for j := 0; j < nf; j++ {
			span := maxs[j] - mins[j]
			if span == 0 {
				span = 1
			}
			feats[i][j] = (row[j] - mins[j]) / span
		}
		labels[i] = int64(d.Class(i))
	}
	return feats, labels
}

// parseCorpus checks every file of a generated corpus out of the parse cache
// in corpus order. The generator emits identical core-library sources for
// every classifier, so those masters parse once per process.
func parseCorpus(eng *engine.Engine, p *corpus.Project) ([]*ast.File, error) {
	files := make([]*ast.File, len(p.Files))
	for i, f := range p.Files {
		parsed, err := eng.ParseFile(f.Path, f.Source)
		if err != nil {
			return nil, err
		}
		files[i] = parsed
	}
	return files, nil
}

// kernelAST parses the pristine kernel of a project.
func kernelAST(eng *engine.Engine, p *corpus.Project, name string) (*ast.File, error) {
	want := corpus.KernelClass(name) + ".java"
	for _, f := range p.Files {
		if strings.HasSuffix(f.Path, want) {
			return eng.ParseFile(f.Path, f.Source)
		}
	}
	return nil, fmt.Errorf("tables: kernel source for %s not found", name)
}

// kernelProtocolKey addresses one kernel variant's full protocol measurement.
// The kernel AST is identified by its printed source (refactored variants
// print differently from pristine ones); the airlines inputs are a pure
// function of (Instances, Seed), so those two ints stand in for the matrix.
func kernelProtocolKey(kernel *ast.File, name string, cfg Table4Config) engine.Key {
	return engine.NewKey("tables/kernelproto").
		Str(ast.Print(kernel)).Str(name).
		Int(int64(cfg.Reps)).Int(int64(cfg.Engine)).
		Int(int64(cfg.Protocol.Runs)).Int(int64(cfg.Protocol.MaxRounds)).
		Int(int64(cfg.Seed)).Int(int64(cfg.Instances)).
		Key()
}

// measureKernelProtocol runs one kernel variant under the repeat/Tukey
// protocol and returns mean measurements. The simulated kernel is fully
// deterministic, so the whole protocol result is one cached artifact; the
// measurement builds from the live AST — the printed source in the key is
// identity, not a round-trip.
func measureKernelProtocol(ctx context.Context, kernel *ast.File, name string, feats [][]float64, labels []int64, cfg Table4Config) (kernelMeasurement, error) {
	v, err := cfg.cache().Memo(kernelProtocolKey(kernel, name, cfg), func() (any, error) {
		var firstErr error
		var cores, times []float64
		run := func() float64 {
			m, err := runKernelOnce(ctx, kernel, name, feats, labels, cfg.Reps, cfg.Engine)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			cores = append(cores, float64(m.core))
			times = append(times, float64(m.elapsed))
			return float64(m.pkg)
		}
		meanPkg, _, err := cfg.Protocol.Measure(run)
		if err != nil {
			return nil, err
		}
		if firstErr != nil {
			return nil, firstErr
		}
		return kernelMeasurement{
			pkg:     energy.Joules(meanPkg),
			core:    energy.Joules(stats.Mean(cores)),
			elapsed: time.Duration(stats.Mean(times)),
		}, nil
	})
	if err != nil {
		return kernelMeasurement{}, err
	}
	return v.(kernelMeasurement), nil
}

// runKernelOnce loads and executes one kernel variant.
func runKernelOnce(ctx context.Context, kernel *ast.File, name string, feats [][]float64, labels []int64, reps int, engine interp.Engine) (kernelMeasurement, error) {
	prog, err := interp.Load(kernel)
	if err != nil {
		return kernelMeasurement{}, err
	}
	in := interp.New(prog, energy.NewMeter(energy.DefaultCosts()), interp.WithMaxOps(2_000_000_000), interp.WithEngine(engine), interp.WithContext(ctx))
	if err := in.InitStatics(); err != nil {
		return kernelMeasurement{}, err
	}
	kc := corpus.KernelClass(name)
	if err := in.Bind(kc, "DATA", in.NewDoubleMatrix(feats)); err != nil {
		return kernelMeasurement{}, err
	}
	if err := in.Bind(kc, "LABELS", in.NewIntArray(labels)); err != nil {
		return kernelMeasurement{}, err
	}
	before := in.Meter().Snapshot()
	if _, err := in.CallStatic(kc, "run", interp.IntVal(int64(reps))); err != nil {
		return kernelMeasurement{}, err
	}
	d := in.Meter().Snapshot().Sub(before)
	return kernelMeasurement{pkg: d.Package, core: d.Core, elapsed: d.Elapsed}, nil
}

// Factory builds the Go classifier for a Table IV row.
func Factory(name string, opts classify.Options) (eval.Factory, error) {
	switch name {
	case "J48":
		return func() classify.Classifier { return tree.NewJ48(opts) }, nil
	case "RandomTree":
		return func() classify.Classifier { return tree.NewRandomTree(opts) }, nil
	case "RandomForest":
		return func() classify.Classifier { return tree.NewRandomForest(opts, 15) }, nil
	case "REPTree":
		return func() classify.Classifier { return tree.NewREPTree(opts) }, nil
	case "NaiveBayes":
		return func() classify.Classifier { return bayes.New(opts) }, nil
	case "Logistic":
		return func() classify.Classifier {
			c := linear.NewLogistic(opts)
			c.Epochs = 20
			return c
		}, nil
	case "SMO":
		return func() classify.Classifier {
			c := svm.New(opts)
			c.MaxPasses = 2
			return c
		}, nil
	case "SGD":
		return func() classify.Classifier {
			c := linear.NewSGD(opts)
			c.Epochs = 20
			return c
		}, nil
	case "KStar":
		return func() classify.Classifier { return lazy.NewKStar(opts) }, nil
	case "IBk":
		return func() classify.Classifier { return lazy.NewIBk(opts, 5) }, nil
	}
	return nil, fmt.Errorf("tables: unknown classifier %s", name)
}

// FactorySeeded builds the per-fold factory for eval.CrossValidateSeeded:
// each fold's classifier is constructed from that fold's pre-derived seed,
// with the remaining options (precision mode) taken from base. The name is
// validated once, up front, so the per-fold closure cannot fail.
func FactorySeeded(name string, base classify.Options) (eval.SeededFactory, error) {
	if _, err := Factory(name, base); err != nil {
		return nil, err
	}
	return func(_ int, foldSeed uint64) classify.Classifier {
		opts := base
		opts.Seed = foldSeed
		mk, _ := Factory(name, opts)
		return mk()
	}, nil
}

// accuracyDrop cross-validates a classifier in double and single precision
// and returns the accuracy loss in percentage points. Both precision runs use
// the same pre-derived per-fold seeds, so fold f trains on identical splits
// and identical random streams in both modes — the drop isolates precision,
// not seed noise — and fold training parallelizes under cfg.CVJobs.
//
// The result is a cached artifact: d is derived entirely from cfg.Instances
// and cfg.Seed, so (classifier, seed, instances, folds) determines the drop.
// CVJobs moves work across fold workers without changing a bit, so it stays
// out of the key, like Slots elsewhere.
func accuracyDrop(ctx context.Context, name string, d *dataset.Dataset, cfg Table4Config) (float64, error) {
	k := engine.NewKey("tables/accuracydrop").
		Str(name).
		Int(int64(cfg.Seed)).
		Int(int64(cfg.Instances)).
		Int(int64(cfg.CVFolds)).
		Key()
	v, err := cfg.cache().Memo(k, func() (any, error) {
		return accuracyDropUncached(ctx, name, d, cfg)
	})
	if err != nil {
		return 0, err
	}
	return v.(float64), nil
}

func accuracyDropUncached(ctx context.Context, name string, d *dataset.Dataset, cfg Table4Config) (float64, error) {
	dbl, err := FactorySeeded(name, classify.Options{Seed: cfg.Seed, FP: classify.Double})
	if err != nil {
		return 0, err
	}
	sgl, err := FactorySeeded(name, classify.Options{Seed: cfg.Seed, FP: classify.Single})
	if err != nil {
		return 0, err
	}
	jobs := cfg.CVJobs
	if jobs <= 0 {
		jobs = 1
	}
	rd, err := eval.CrossValidateSeeded(ctx, d, cfg.CVFolds, cfg.Seed, dbl, jobs)
	if err != nil {
		return 0, err
	}
	rs, err := eval.CrossValidateSeeded(ctx, d, cfg.CVFolds, cfg.Seed, sgl, jobs)
	if err != nil {
		return 0, err
	}
	return rd.Accuracy() - rs.Accuracy(), nil
}

// RenderTable4 lays the rows out like the paper's Table IV. Rows the
// supervised runner failed render as failure entries instead of numbers.
func RenderTable4(rows []Table4Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %8s %12s %12s %12s %12s\n",
		"Classifiers", "Changes", "Package (%)", "CPU (%)", "Time (%)", "AccDrop (%)")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&sb, "%-14s FAILED: %s\n", r.Classifier, r.Err)
			continue
		}
		fmt.Fprintf(&sb, "%-14s %8d %12.2f %12.2f %12.2f %12.2f\n",
			r.Classifier, r.Changes, r.PackagePct, r.CPUPct, r.TimePct, r.AccuracyPct)
	}
	return sb.String()
}
