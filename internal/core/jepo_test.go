package core

import (
	"context"
	"strings"
	"testing"

	"jepo/internal/suggest"
)

const demoProject = `
package demo;

public class Hot {
	static double total = 0.0;

	static int work(int n) {
		double scale = 2.5;
		int s = 0;
		for (int i = 0; i < n; i++) {
			s += i % 7;
			total += i * scale;
		}
		int v = s > 100 ? 1 : 0;
		return s + v;
	}

	public static void main(String[] args) {
		int r = work(2000);
		System.out.println(r);
	}
}
`

func proj() Project { return Project{"demo/Hot.java": demoProject} }

func TestSuggest(t *testing.T) {
	sugs, err := Suggest("demo/Hot.java", demoProject)
	if err != nil {
		t.Fatal(err)
	}
	counts := suggest.CountByRule(sugs)
	for _, want := range []suggest.Rule{
		suggest.RulePrimitiveTypes, suggest.RuleStaticKeyword,
		suggest.RuleModulusOperator, suggest.RuleTernaryOperator,
	} {
		if counts[want] == 0 {
			t.Errorf("missing %v suggestion", want)
		}
	}
	if _, err := Suggest("bad.java", "class {"); err == nil {
		t.Error("syntax error not reported")
	}
}

func TestOptimizerAndDynamicViews(t *testing.T) {
	sugs, _ := Suggest("demo/Hot.java", demoProject)
	view := OptimizerView(sugs)
	if !strings.Contains(view, "Hot") || !strings.Contains(view, "Suggestion") {
		t.Errorf("optimizer view malformed:\n%s", view)
	}
	dyn := DynamicView(sugs, 11)
	if !strings.Contains(dyn, "JEPO suggestions") {
		t.Errorf("dynamic view malformed:\n%s", dyn)
	}
	// Nearest-to-cursor first: the modulus at line 11 must precede the
	// static field at line 5.
	modIdx := strings.Index(dyn, "Arithmetic operators")
	staticIdx := strings.Index(dyn, "Static keyword")
	if modIdx < 0 || staticIdx < 0 || modIdx > staticIdx {
		t.Errorf("cursor ordering wrong:\n%s", dyn)
	}
	clean := OptimizerView(nil)
	if !strings.Contains(clean, "no suggestions") {
		t.Error("empty view missing placeholder")
	}
}

func TestOptimizeRewritesProject(t *testing.T) {
	out, res, err := Optimize(context.Background(), proj())
	if err != nil {
		t.Fatal(err)
	}
	if res.Changes < 3 {
		t.Errorf("changes = %d, want several", res.Changes)
	}
	src := out["demo/Hot.java"]
	if strings.Contains(src, "?") {
		t.Errorf("ternary survived optimization:\n%s", src)
	}
	if !strings.Contains(src, "float scale") {
		t.Errorf("double not narrowed:\n%s", src)
	}
	// The optimized project must still run and print the same result.
	before, err := Profile(context.Background(), proj(), ProfileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	after, err := Profile(context.Background(), out, ProfileConfig{})
	if err != nil {
		t.Fatalf("optimized project fails to run: %v\n%s", err, src)
	}
	if before.Stdout != after.Stdout {
		t.Errorf("optimization changed output: %q → %q", before.Stdout, after.Stdout)
	}
	if after.Sample.Package >= before.Sample.Package {
		t.Errorf("optimization did not reduce energy: %v → %v",
			before.Sample.Package, after.Sample.Package)
	}
}

func TestProfileProducesMethodRows(t *testing.T) {
	res, err := Profile(context.Background(), proj(), ProfileConfig{MainClass: "Hot"})
	if err != nil {
		t.Fatal(err)
	}
	view := res.View()
	if !strings.Contains(view, "demo.Hot.work") || !strings.Contains(view, "demo.Hot.main") {
		t.Errorf("profiler view missing methods:\n%s", view)
	}
	sums := res.Profiler.Summaries()
	if len(sums) != 2 {
		t.Fatalf("summaries = %d, want 2", len(sums))
	}
	if res.Stdout == "" {
		t.Error("program output lost")
	}
	if res.Sample.Package <= 0 {
		t.Error("no energy recorded")
	}
}

func TestProfileErrors(t *testing.T) {
	if _, err := Profile(context.Background(), Project{"x.java": "class X { }"}, ProfileConfig{}); err == nil {
		t.Error("project without main accepted")
	}
	if _, err := Profile(context.Background(), Project{"x.java": "class {"}, ProfileConfig{}); err == nil {
		t.Error("syntax error accepted")
	}
	// Tiny op budget must surface as an error, not a hang.
	if _, err := Profile(context.Background(), proj(), ProfileConfig{MaxOps: 10}); err == nil {
		t.Error("op budget not enforced")
	}
}

func TestMetrics(t *testing.T) {
	p := Project{
		"a/A.java": "package a;\nclass A { int x; void f() { B b = new B(); } }",
		"b/B.java": "package b;\nclass B { int y; int z; void g() { } void h() { } }",
	}
	m, err := Metrics(p, "A")
	if err != nil {
		t.Fatal(err)
	}
	if m.Dependencies != 2 || m.Attributes != 3 || m.Methods != 3 || m.Packages != 2 {
		t.Errorf("metrics = %+v", m)
	}
	if _, err := Metrics(p, "Zed"); err == nil {
		t.Error("unknown root accepted")
	}
}
