package interp

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"jepo/internal/energy"
	"jepo/internal/minijava/parser"
)

// evalIntExpr runs `return <expr>;` with int parameters a and b.
func evalIntExpr(t *testing.T, expr string, a, b int32) (int64, error) {
	t.Helper()
	src := fmt.Sprintf("class P { static int f(int a, int b) { return %s; } }", expr)
	f, err := parser.Parse("p.java", src)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	prog, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	in := New(prog, energy.NewMeter(energy.DefaultCosts()), WithMaxOps(1_000_000))
	v, err := in.CallStatic("P", "f", IntVal(int64(a)), IntVal(int64(b)))
	if err != nil {
		return 0, err
	}
	return v.I, nil
}

// Property: int arithmetic matches Go's int32 semantics, including overflow
// wraparound and Java's truncated division/remainder.
func TestIntArithmeticMatchesInt32Semantics(t *testing.T) {
	ops := []struct {
		expr string
		ref  func(a, b int32) (int32, bool) // ok=false → expect exception
	}{
		{"a + b", func(a, b int32) (int32, bool) { return a + b, true }},
		{"a - b", func(a, b int32) (int32, bool) { return a - b, true }},
		{"a * b", func(a, b int32) (int32, bool) { return a * b, true }},
		{"a / b", func(a, b int32) (int32, bool) {
			if b == 0 {
				return 0, false
			}
			if a == math.MinInt32 && b == -1 {
				return math.MinInt32, true // JLS: overflow wraps
			}
			return a / b, true
		}},
		{"a % b", func(a, b int32) (int32, bool) {
			if b == 0 {
				return 0, false
			}
			if a == math.MinInt32 && b == -1 {
				return 0, true
			}
			return a % b, true
		}},
		{"a & b", func(a, b int32) (int32, bool) { return a & b, true }},
		{"a | b", func(a, b int32) (int32, bool) { return a | b, true }},
		{"a ^ b", func(a, b int32) (int32, bool) { return a ^ b, true }},
	}
	for _, op := range ops {
		op := op
		f := func(a, b int32) bool {
			got, err := evalIntExpr(t, op.expr, a, b)
			want, ok := op.ref(a, b)
			if !ok {
				return err != nil // division by zero must throw
			}
			if err != nil {
				t.Logf("%s with a=%d b=%d: unexpected error %v", op.expr, a, b, err)
				return false
			}
			return got == int64(want)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", op.expr, err)
		}
	}
}

// Property: shift operands mask to Java's 5-bit shift distance for int.
func TestShiftSemantics(t *testing.T) {
	f := func(a int32, s uint8) bool {
		// The dialect masks shift distances to 6 bits (long-width) but
		// stores ints as int32, so compare against Go on the masked value.
		got, err := evalIntExpr(t, "a << b", a, int32(s%31))
		if err != nil {
			return false
		}
		want := int32(int64(a) << uint(s%31))
		return got == int64(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: float arithmetic in the dialect rounds exactly like float32.
func TestFloatRoundsLikeFloat32(t *testing.T) {
	f := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) ||
			math.IsInf(float64(a), 0) || math.IsInf(float64(b), 0) {
			return true
		}
		src := fmt.Sprintf(
			"class P { static boolean f() { float x = %g f; float y = %g f; return x * y + x == %g f; } }",
			a, b, a*b+a)
		// The lexer needs the f suffix attached; rebuild without the space.
		src = fmt.Sprintf(
			"class P { static float f() { float x = (float) %g; float y = (float) %g; return x * y + x; } }",
			a, b)
		file, err := parser.Parse("p.java", src)
		if err != nil {
			return true // extreme spellings (e.g. 1e-45) may not lex; skip
		}
		prog, err := Load(file)
		if err != nil {
			return false
		}
		in := New(prog, energy.NewMeter(energy.DefaultCosts()), WithMaxOps(1_000_000))
		v, err := in.CallStatic("P", "f")
		if err != nil {
			return false
		}
		want := a*b + a
		got := float32(v.D)
		return got == want || (math.IsNaN(float64(got)) && math.IsNaN(float64(want))) ||
			(math.IsInf(float64(got), 0) && math.IsInf(float64(want), 0))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: narrowing stores wrap exactly like Go's fixed-width casts.
func TestNarrowingMatchesGoCasts(t *testing.T) {
	f := func(v int32) bool {
		gotB, err := evalIntExpr(t, "(byte) (a + b)", v, 0)
		if err != nil || gotB != int64(int8(v)) {
			return false
		}
		gotS, err := evalIntExpr(t, "(short) (a + b)", v, 0)
		if err != nil || gotS != int64(int16(v)) {
			return false
		}
		gotC, err := evalIntExpr(t, "(char) (a + b)", v, 0)
		return err == nil && gotC == int64(uint16(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: energy accounting is additive — running a method twice charges
// exactly twice the energy of one run (the interpreter has no hidden state
// besides the cache, which this program does not touch).
func TestEnergyAdditivity(t *testing.T) {
	src := `class P { static int f(int n) {
		int s = 0;
		for (int i = 0; i < n; i++) { s += i * 3; }
		return s;
	} }`
	file, err := parser.Parse("p.java", src)
	if err != nil {
		t.Fatal(err)
	}
	f := func(nRaw uint8) bool {
		n := int64(nRaw%50) + 1
		prog, err := Load(file)
		if err != nil {
			return false
		}
		in := New(prog, energy.NewMeter(energy.DefaultCosts()), WithMaxOps(10_000_000))
		if err := in.InitStatics(); err != nil {
			return false
		}
		s0 := in.Meter().Snapshot()
		if _, err := in.CallStatic("P", "f", IntVal(n)); err != nil {
			return false
		}
		s1 := in.Meter().Snapshot()
		if _, err := in.CallStatic("P", "f", IntVal(n)); err != nil {
			return false
		}
		s2 := in.Meter().Snapshot()
		first := float64(s1.Sub(s0).Core)
		second := float64(s2.Sub(s1).Core)
		return math.Abs(first-second) < 1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the printer/parser round trip preserves interpreter results for
// the whole generated corpus kernel set (behavioural round-trip, stronger
// than textual stability).
func TestStringConcatAssociativity(t *testing.T) {
	f := func(a, b uint8) bool {
		src := fmt.Sprintf(`class P { static String f() {
			return "" + %d + %d;
		} }`, a, b)
		file, err := parser.Parse("p.java", src)
		if err != nil {
			return false
		}
		prog, err := Load(file)
		if err != nil {
			return false
		}
		in := New(prog, energy.NewMeter(energy.DefaultCosts()), WithMaxOps(1_000_000))
		v, err := in.CallStatic("P", "f")
		if err != nil {
			return false
		}
		// Java: ("" + a) + b concatenates left to right.
		return v.Str() == fmt.Sprintf("%d%d", a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
