// Fault injection for the RAPL measurement path. Real powercap and MSR
// reads fail in practice — permission loss on /dev/cpu/*/msr, zones
// disappearing on hotplug, stale cached readings, counters wrapping with no
// declared range — and every resilience claim in this package is tested by
// actually running against such faults. The injectors here wrap a Source or
// MSRReader and corrupt reads either from an explicit script (deterministic
// regression tests) or from a seeded random stream (the fault-matrix fuzz).
package rapl

import (
	"errors"
	"fmt"
)

// Injected fault errors. Tests and the resilient wrapper distinguish
// transient faults (a retry may succeed) from permanent ones (the source is
// gone — fall back or give up).
var (
	ErrInjectedTransient  = errors.New("rapl: injected transient read fault")
	ErrInjectedPermission = errors.New("rapl: injected permission loss")
)

// FaultKind enumerates the injectable measurement faults.
type FaultKind int

const (
	FaultNone      FaultKind = iota
	FaultTransient           // this read fails; the next may succeed
	FaultPermanent           // this and every later read fail (permission loss)
	FaultStale               // this read returns the previous value again
)

// String names the fault kind for logs and test failures.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultTransient:
		return "transient"
	case FaultPermanent:
		return "permanent"
	case FaultStale:
		return "stale"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Script maps 0-based read indices to the fault injected at that read.
// Reads not listed succeed normally.
type Script map[int]FaultKind

// FaultRates gives per-read probabilities for the random injector. Rates are
// evaluated in field order; the first hit wins.
type FaultRates struct {
	Transient float64
	Stale     float64
	Permanent float64
}

// faultRNG is a splitmix64 stream: deterministic per seed, so every
// fault-matrix failure reproduces from its seed alone.
type faultRNG struct{ state uint64 }

func (r *faultRNG) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (r *faultRNG) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// faultPlan decides which fault (if any) hits a given read index.
type faultPlan struct {
	script Script
	rng    *faultRNG
	rates  FaultRates
}

func (p *faultPlan) at(idx int) FaultKind {
	if p.script != nil {
		return p.script[idx]
	}
	if p.rng == nil {
		return FaultNone
	}
	x := p.rng.float64()
	switch {
	case x < p.rates.Transient:
		return FaultTransient
	case x < p.rates.Transient+p.rates.Stale:
		return FaultStale
	case x < p.rates.Transient+p.rates.Stale+p.rates.Permanent:
		return FaultPermanent
	}
	return FaultNone
}

// FaultySource wraps a Source and injects snapshot-level faults. It is the
// harness the resilient wrapper and the profiler degrade tests run against.
type FaultySource struct {
	inner    Source
	plan     faultPlan
	reads    int
	dead     bool
	last     Snapshot
	haveLast bool
	injected int
}

// NewFaultySource injects the scripted faults into inner's snapshots.
func NewFaultySource(inner Source, script Script) *FaultySource {
	return &FaultySource{inner: inner, plan: faultPlan{script: script}}
}

// NewRandomFaultySource injects seeded-random faults at the given rates.
func NewRandomFaultySource(inner Source, seed uint64, rates FaultRates) *FaultySource {
	return &FaultySource{inner: inner, plan: faultPlan{rng: &faultRNG{state: seed}, rates: rates}}
}

// Injected reports how many reads were corrupted so far.
func (f *FaultySource) Injected() int { return f.injected }

// Dead reports whether a permanent fault has killed the source.
func (f *FaultySource) Dead() bool { return f.dead }

// Snapshot implements Source, applying the fault plan per read.
func (f *FaultySource) Snapshot() (Snapshot, error) {
	idx := f.reads
	f.reads++
	if f.dead {
		f.injected++
		return Snapshot{}, ErrInjectedPermission
	}
	switch f.plan.at(idx) {
	case FaultTransient:
		f.injected++
		return Snapshot{}, ErrInjectedTransient
	case FaultPermanent:
		f.dead = true
		f.injected++
		return Snapshot{}, ErrInjectedPermission
	case FaultStale:
		if f.haveLast {
			f.injected++
			return f.last, nil
		}
	}
	s, err := f.inner.Snapshot()
	if err == nil {
		f.last, f.haveLast = s, true
	}
	return s, err
}

// FaultyMSR wraps an MSRReader and injects register-read faults, exercising
// the sampler exactly where hardware fails: on individual MSR reads.
// MSR_RAPL_POWER_UNIT reads are never faulted (the unit is read once at
// sampler construction; faulting it only tests the constructor).
type FaultyMSR struct {
	inner    MSRReader
	plan     faultPlan
	reads    int
	dead     bool
	last     map[uint32]uint64
	injected int
}

// NewFaultyMSR injects the scripted faults into inner's counter reads.
func NewFaultyMSR(inner MSRReader, script Script) *FaultyMSR {
	return &FaultyMSR{inner: inner, plan: faultPlan{script: script}, last: map[uint32]uint64{}}
}

// NewRandomFaultyMSR injects seeded-random faults at the given rates.
func NewRandomFaultyMSR(inner MSRReader, seed uint64, rates FaultRates) *FaultyMSR {
	return &FaultyMSR{inner: inner, plan: faultPlan{rng: &faultRNG{state: seed}, rates: rates}, last: map[uint32]uint64{}}
}

// Injected reports how many reads were corrupted so far.
func (f *FaultyMSR) Injected() int { return f.injected }

// ReadMSR implements MSRReader, applying the fault plan per counter read.
func (f *FaultyMSR) ReadMSR(reg uint32) (uint64, error) {
	if reg == MSRPowerUnit {
		return f.inner.ReadMSR(reg)
	}
	idx := f.reads
	f.reads++
	if f.dead {
		f.injected++
		return 0, ErrInjectedPermission
	}
	switch f.plan.at(idx) {
	case FaultTransient:
		f.injected++
		return 0, ErrInjectedTransient
	case FaultPermanent:
		f.dead = true
		f.injected++
		return 0, ErrInjectedPermission
	case FaultStale:
		if v, ok := f.last[reg]; ok {
			f.injected++
			return v, nil
		}
	}
	v, err := f.inner.ReadMSR(reg)
	if err == nil {
		f.last[reg] = v
	}
	return v, err
}

// ScriptedMSR replays exact per-register counter sequences. It is the tool
// for boundary tests — wraps exactly at the 32-bit edge, double wraps
// between snapshots, first-read initialization — where the value stream must
// be controlled to the count. Once a sequence is exhausted its final value
// is held, like a counter between increments.
type ScriptedMSR struct {
	// ESU is the energy-status-unit exponent reported via MSR_RAPL_POWER_UNIT
	// (0 means the stock 2^-16 J).
	ESU uint
	// Seq holds the counter values returned for each register, in order.
	Seq map[uint32][]uint64

	pos map[uint32]int
}

// ReadMSR implements MSRReader over the scripted sequences.
func (s *ScriptedMSR) ReadMSR(reg uint32) (uint64, error) {
	if reg == MSRPowerUnit {
		esu := s.ESU
		if esu == 0 {
			esu = defaultESU
		}
		return uint64(3) | uint64(esu)<<8 | uint64(10)<<16, nil
	}
	seq, ok := s.Seq[reg]
	if !ok || len(seq) == 0 {
		return 0, fmt.Errorf("rapl: scripted MSR has no sequence for 0x%x", reg)
	}
	if s.pos == nil {
		s.pos = map[uint32]int{}
	}
	i := s.pos[reg]
	if i >= len(seq) {
		i = len(seq) - 1
	} else {
		s.pos[reg] = i + 1
	}
	return seq[i], nil
}
