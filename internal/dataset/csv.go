package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteCSV renders the dataset as a header row plus one line per instance,
// with nominal values spelled out and missing cells empty — the format
// WEKA's CSVSaver produces.
func (d *Dataset) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for j, a := range d.Attrs {
		if j > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(csvQuote(a.Name))
	}
	bw.WriteByte('\n')
	for _, row := range d.X {
		for j, v := range row {
			if j > 0 {
				bw.WriteByte(',')
			}
			switch {
			case math.IsNaN(v):
				// empty cell
			case d.Attrs[j].Kind == Nominal:
				bw.WriteString(csvQuote(d.Attrs[j].Values[int(v)]))
			default:
				bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

func csvQuote(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// ReadCSV parses a header-first CSV against an existing schema: the header
// names must match the schema's attribute names in order, nominal cells must
// be known values, and empty cells become missing. It is the inverse of
// WriteCSV for datasets whose schema is known (as the airlines schema is).
func ReadCSV(r io.Reader, attrs []*Attribute, classIdx int) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("csv: empty input")
	}
	header := splitCSVLine(sc.Text())
	if len(header) != len(attrs) {
		return nil, fmt.Errorf("csv: header has %d columns, schema has %d", len(header), len(attrs))
	}
	for j, name := range header {
		if name != attrs[j].Name {
			return nil, fmt.Errorf("csv: column %d is %q, schema expects %q", j, name, attrs[j].Name)
		}
	}
	d := New("csv", classIdx, attrs...)
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		cells := splitCSVLine(line)
		if len(cells) != len(attrs) {
			return nil, fmt.Errorf("csv line %d: %d cells, want %d", lineNo, len(cells), len(attrs))
		}
		row := make([]float64, len(cells))
		for j, cell := range cells {
			if cell == "" {
				row[j] = math.NaN()
				continue
			}
			if attrs[j].Kind == Nominal {
				ix, ok := attrs[j].IndexOf(cell)
				if !ok {
					return nil, fmt.Errorf("csv line %d: unknown value %q for %s", lineNo, cell, attrs[j].Name)
				}
				row[j] = float64(ix)
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("csv line %d: bad numeric %q for %s", lineNo, cell, attrs[j].Name)
			}
			row[j] = v
		}
		if err := d.Add(row); err != nil {
			return nil, fmt.Errorf("csv line %d: %w", lineNo, err)
		}
	}
	return d, sc.Err()
}

// splitCSVLine splits one CSV record, honouring double-quoted cells with
// doubled-quote escapes. (Records never span lines in this dialect.)
func splitCSVLine(line string) []string {
	var out []string
	var cell strings.Builder
	inQuotes := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case inQuotes && c == '"' && i+1 < len(line) && line[i+1] == '"':
			cell.WriteByte('"')
			i++
		case c == '"':
			inQuotes = !inQuotes
		case c == ',' && !inQuotes:
			out = append(out, cell.String())
			cell.Reset()
		default:
			cell.WriteByte(c)
		}
	}
	out = append(out, cell.String())
	return out
}
