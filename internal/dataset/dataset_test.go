package dataset

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func sample(t *testing.T) *Dataset {
	t.Helper()
	d := New("toy", 2,
		NewNumeric("x"),
		NewNominal("color", "red", "green", "blue"),
		NewNominal("class", "no", "yes"),
	)
	rows := [][]float64{
		{1.5, 0, 0},
		{2.5, 1, 1},
		{3.5, 2, 0},
		{4.5, 0, 1},
		{5.5, 1, 0},
		{6.5, 2, 1},
		{7.5, 0, 0},
		{8.5, 1, 1},
	}
	for _, r := range rows {
		if err := d.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestBasicAccessors(t *testing.T) {
	d := sample(t)
	if d.NumInstances() != 8 || d.NumAttrs() != 3 || d.NumClasses() != 2 {
		t.Fatalf("shape wrong: %d×%d, %d classes", d.NumInstances(), d.NumAttrs(), d.NumClasses())
	}
	if d.Class(1) != 1 || d.Class(0) != 0 {
		t.Error("class extraction wrong")
	}
	if got := d.ClassCounts(); got[0] != 4 || got[1] != 4 {
		t.Errorf("class counts = %v", got)
	}
	if d.Entropy() != 1.0 {
		t.Errorf("entropy of balanced binary = %v, want 1", d.Entropy())
	}
	if d.DistinctValues(1) != 3 {
		t.Errorf("distinct colors = %d", d.DistinctValues(1))
	}
}

func TestAddValidates(t *testing.T) {
	d := sample(t)
	if err := d.Add([]float64{1, 2}); err == nil {
		t.Error("short row accepted")
	}
	if err := d.Add([]float64{1, 9, 0}); err == nil {
		t.Error("out-of-range nominal accepted")
	}
	if err := d.Add([]float64{1, math.NaN(), 0}); err != nil {
		t.Errorf("missing nominal rejected: %v", err)
	}
}

func TestNewPanicsOnBadClassIdx(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad class index must panic")
		}
	}()
	New("bad", 5, NewNumeric("x"))
}

func TestNumericStats(t *testing.T) {
	d := sample(t)
	mean, std, n := d.NumericStats(0, -1)
	if n != 8 || math.Abs(mean-5.0) > 1e-12 {
		t.Errorf("mean = %v over %d", mean, n)
	}
	if std <= 0 {
		t.Error("std must be positive")
	}
	meanYes, _, nYes := d.NumericStats(0, 1)
	if nYes != 4 || math.Abs(meanYes-(2.5+4.5+6.5+8.5)/4) > 1e-12 {
		t.Errorf("class-conditional mean = %v over %d", meanYes, nYes)
	}
}

func TestStratifiedFolds(t *testing.T) {
	d := sample(t)
	folds, err := d.StratifiedFolds(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 4 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := map[int]bool{}
	for _, fold := range folds {
		if len(fold) != 2 {
			t.Errorf("fold size = %d, want 2", len(fold))
		}
		classes := map[int]int{}
		for _, r := range fold {
			if seen[r] {
				t.Errorf("row %d in two folds", r)
			}
			seen[r] = true
			classes[d.Class(r)]++
		}
		// Perfectly balanced data, stratified: one of each class per fold.
		if classes[0] != 1 || classes[1] != 1 {
			t.Errorf("fold class balance = %v", classes)
		}
	}
	if len(seen) != 8 {
		t.Errorf("rows covered = %d", len(seen))
	}
	train, test := d.TrainTest(folds, 0)
	if train.NumInstances() != 6 || test.NumInstances() != 2 {
		t.Errorf("split sizes = %d/%d", train.NumInstances(), test.NumInstances())
	}
	// Determinism.
	folds2, _ := d.StratifiedFolds(4, 1)
	for i := range folds {
		for j := range folds[i] {
			if folds[i][j] != folds2[i][j] {
				t.Fatal("folds not deterministic for fixed seed")
			}
		}
	}
}

func TestStratifiedFoldsErrors(t *testing.T) {
	d := sample(t)
	if _, err := d.StratifiedFolds(1, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := d.StratifiedFolds(100, 1); err == nil {
		t.Error("k>n accepted")
	}
}

func TestSubsetHeadShuffle(t *testing.T) {
	d := sample(t)
	s := d.Subset([]int{0, 2})
	if s.NumInstances() != 2 || s.X[1][0] != 3.5 {
		t.Error("subset wrong")
	}
	if d.Head(3).NumInstances() != 3 || d.Head(100).NumInstances() != 8 {
		t.Error("head wrong")
	}
	sh := d.Shuffle(7)
	if sh.NumInstances() != 8 {
		t.Error("shuffle changed size")
	}
	var sum float64
	for _, row := range sh.X {
		sum += row[0]
	}
	if math.Abs(sum-(1.5+2.5+3.5+4.5+5.5+6.5+7.5+8.5)) > 1e-9 {
		t.Error("shuffle lost rows")
	}
}

func TestMajorityClass(t *testing.T) {
	d := sample(t)
	d.Add([]float64{9.5, 0, 1})
	if d.MajorityClass() != 1 {
		t.Error("majority wrong")
	}
}

func TestARFFRoundTrip(t *testing.T) {
	d := sample(t)
	d.X[0][0] = math.NaN() // exercise a missing value
	var buf bytes.Buffer
	if err := d.WriteARFF(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadARFF(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if got.NumInstances() != d.NumInstances() || got.NumAttrs() != d.NumAttrs() {
		t.Fatalf("shape changed: %d×%d", got.NumInstances(), got.NumAttrs())
	}
	if got.Attrs[1].Kind != Nominal || got.Attrs[1].Values[2] != "blue" {
		t.Error("nominal attribute lost")
	}
	if !math.IsNaN(got.X[0][0]) {
		t.Error("missing value lost")
	}
	for i := 1; i < d.NumInstances(); i++ {
		for j := 0; j < d.NumAttrs(); j++ {
			if got.X[i][j] != d.X[i][j] {
				t.Errorf("cell (%d,%d) = %v, want %v", i, j, got.X[i][j], d.X[i][j])
			}
		}
	}
}

func TestARFFQuoting(t *testing.T) {
	d := New("has space", 1, NewNominal("a", "v 1", "v,2"), NewNominal("c", "x", "y"))
	d.Add([]float64{1, 0})
	var buf bytes.Buffer
	if err := d.WriteARFF(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadARFF(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if got.Attrs[0].Values[1] != "v,2" {
		t.Errorf("quoted value lost: %q", got.Attrs[0].Values[1])
	}
}

func TestARFFErrors(t *testing.T) {
	for _, src := range []string{
		"@data\n1,2\n",
		"@relation r\n@attribute a wat\n@data\n",
		"@relation r\n@attribute a numeric\n@data\n1,2\n",
		"@relation r\n@attribute a numeric\n@data\nxyz\n",
		"@relation r\n@attribute a {x,y}\n@data\nz\n",
		"@relation r\n@attribute a numeric\n",
		"bogus\n",
	} {
		if _, err := ReadARFF(bytes.NewBufferString(src)); err == nil {
			t.Errorf("ReadARFF(%q): want error", src)
		}
	}
}

// Property: stratified folds always partition the row set, for any k and
// class skew.
func TestStratifiedFoldsPartitionProperty(t *testing.T) {
	f := func(nRows uint8, kRaw uint8, seed uint64) bool {
		n := int(nRows)%200 + 10
		k := int(kRaw)%8 + 2
		d := New("p", 1, NewNumeric("x"), NewNominal("c", "a", "b", "cc"))
		for i := 0; i < n; i++ {
			d.Add([]float64{float64(i), float64(i % 3)})
		}
		folds, err := d.StratifiedFolds(k, seed)
		if err != nil {
			return n < k
		}
		seen := map[int]bool{}
		total := 0
		for _, fold := range folds {
			total += len(fold)
			for _, r := range fold {
				if seen[r] {
					return false
				}
				seen[r] = true
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := sample(t)
	d.X[2][0] = math.NaN()
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, d.Attrs, d.ClassIdx)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if got.NumInstances() != d.NumInstances() {
		t.Fatalf("rows = %d", got.NumInstances())
	}
	for i := range d.X {
		for j := range d.X[i] {
			a, b := d.X[i][j], got.X[i][j]
			if math.IsNaN(a) != math.IsNaN(b) || (!math.IsNaN(a) && a != b) {
				t.Errorf("cell (%d,%d): %v vs %v", i, j, a, b)
			}
		}
	}
}

func TestCSVQuoting(t *testing.T) {
	d := New("q", 1, NewNominal("a", `v"1`, "v,2"), NewNominal("c", "x", "y"))
	d.Add([]float64{0, 0})
	d.Add([]float64{1, 1})
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, d.Attrs, 1)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if got.X[0][0] != 0 || got.X[1][0] != 1 {
		t.Errorf("quoted values lost: %v", got.X)
	}
}

func TestCSVErrors(t *testing.T) {
	attrs := []*Attribute{NewNumeric("x"), NewNominal("c", "a", "b")}
	for _, src := range []string{
		"",
		"x\n1\n",
		"wrong,c\n1,a\n",
		"x,c\n1\n",
		"x,c\n1,zzz\n",
		"x,c\nnope,a\n",
	} {
		if _, err := ReadCSV(bytes.NewBufferString(src), attrs, 1); err == nil {
			t.Errorf("ReadCSV(%q): want error", src)
		}
	}
}
