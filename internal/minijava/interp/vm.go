package interp

import (
	"strconv"

	"jepo/internal/energy"
	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/bytecode"
	"jepo/internal/minijava/token"
)

// This file is the bytecode engine's dispatch loop. The compiler
// (internal/minijava/bytecode) guarantees that executing the instruction
// stream issues the same energy.Meter calls in the same order as tree-walking
// the same body; every non-trivial operation below therefore delegates to the
// walker's own helpers (selectFrom, writeLValue, dispatchCall, coerceTo, ...)
// so the charge sequences are shared code, not transcriptions.
//
// Tier 2 adds three mechanisms on top, all charge-transparent:
//
//   - OpRunCharge replays a basic block's pre-aggregated charge run — the
//     exact ordered Step sequence of the folded instructions (see
//     bytecode.Finalize).
//   - Runtime quickening: generic handlers patch their instruction (in this
//     instance's private code copy only) into a specialized form after first
//     execution. Every quick handler re-checks its guard and deopts by
//     flipping the opcode back and re-entering the dispatch switch via the
//     `dispatch` label — without re-counting the instruction's steps.
//   - Monomorphic inline caches (vmIC) pin resolved methods, field offsets
//     and static slots per site; a guard miss re-resolves through the same
//     lookups the generic path uses, so behaviour is identical.

// invokeVM runs a compiled method. It mirrors invoke exactly: the call
// charge, parameter coercion into pooled frame slots, and return-value
// coercion only for an explicit return in a non-void method.
func (in *Interp) invokeVM(ci *classInfo, this *Object, m *ast.Method, cf *compiledFn, args []Value) Value {
	fn := cf.fn
	in.meter.Step(energy.OpCall, 1)
	code := fn.Code
	var ics []vmIC
	if in.quick {
		w := in.warmFor(cf)
		code, ics = w.code, w.ics
	} else if in.vmTier < 2 {
		code = fn.Raw
	}
	fr := frame{class: ci, this: this, locals: in.grabLocals(fn.NSlots)}
	stack := in.grabStack(fn.MaxStack)
	defer func() {
		in.releaseLocals(fr.locals)
		in.releaseStack(stack)
	}()
	for i := range m.Params {
		p := &m.Params[i]
		pk := kindOfType(p.Type)
		av := args[i]
		if av.K != pk {
			av = in.coerceTo(av, p.Type, m.Pos)
		}
		fr.locals[i] = cell{t: p.Type, k: pk, v: av, live: true}
	}
	var ret Value
	var explicit bool
	if fn.Probe != "" && in.hook != nil {
		ret, explicit = in.execVMProbed(cf, code, ics, &fr, stack)
	} else {
		ret, explicit = in.execVM(cf, code, ics, &fr, stack)
	}
	if explicit {
		if m.Ret.Kind != ast.Void || m.Ret.Dims > 0 {
			return in.coerceTo(ret, m.Ret, m.Pos)
		}
	}
	return Value{K: KVoid}
}

// execVMProbed wraps execVM with the exception-unwind half of the probe
// contract: a mini-Java exception leaving the frame fires the exit hook (the
// AST instrumentation's finally block), while interpreter-level errors do not
// (runProtected never catches those either).
func (in *Interp) execVMProbed(cf *compiledFn, code []bytecode.Instr, ics []vmIC, fr *frame, stack []Value) (Value, bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(javaPanic); ok {
				in.hook.Exit(cf.fn.Probe)
			}
			panic(r)
		}
	}()
	return in.execVM(cf, code, ics, fr, stack)
}

// liveCell returns the live cell at a compiled slot operand, or nil when the
// declaration has not executed yet (the dialect declares at execution time)
// or the operand is -1 (identifier without a slot).
func liveCell(fr *frame, slot int32) *cell {
	if s := int(slot); uint(s) < uint(len(fr.locals)) {
		if c := &fr.locals[s]; c.live {
			return c
		}
	}
	return nil
}

// intCmp applies an int comparison operator. Callers charge the single
// OpArithInt step themselves (the charge vmIntFast's comparison lanes issue).
func intCmp(op token.Kind, a, b int64) bool {
	switch op {
	case token.Lt:
		return a < b
	case token.Le:
		return a <= b
	case token.Gt:
		return a > b
	case token.Ge:
		return a >= b
	case token.Eq:
		return a == b
	default: // token.Ne — fused compares carry comparison tokens only
		return a != b
	}
}

// vmIntFast applies an int,int binary operator, charging exactly what
// binaryFast's KInt lane charges. It exists so the dispatch loop's binary
// handlers pass two scalars instead of copying two full Values into a call;
// operators it skips (division, shifts, bitwise) fall through to binaryFast.
func vmIntFast(in *Interp, op token.Kind, a, b int64) (Value, bool) {
	switch op {
	case token.Plus:
		in.meter.Step(energy.OpArithInt, 1)
		return IntVal(a + b), true
	case token.Minus:
		in.meter.Step(energy.OpArithInt, 1)
		return IntVal(a - b), true
	case token.Star:
		in.meter.Step(energy.OpArithInt, 1)
		return IntVal(a * b), true
	case token.Lt:
		in.meter.Step(energy.OpArithInt, 1)
		return BoolVal(a < b), true
	case token.Le:
		in.meter.Step(energy.OpArithInt, 1)
		return BoolVal(a <= b), true
	case token.Gt:
		in.meter.Step(energy.OpArithInt, 1)
		return BoolVal(a > b), true
	case token.Ge:
		in.meter.Step(energy.OpArithInt, 1)
		return BoolVal(a >= b), true
	case token.Eq:
		in.meter.Step(energy.OpArithInt, 1)
		return BoolVal(a == b), true
	case token.Ne:
		in.meter.Step(energy.OpArithInt, 1)
		return BoolVal(a != b), true
	}
	return Value{}, false
}

// intLaneOp reports whether the int-specialized quick handlers implement op.
// It must cover exactly the operator set of binaryFast's KInt lane (which the
// handlers inline), so an installed OpQBinInt* can never meet an operator it
// has no lane for.
func intLaneOp(op token.Kind) bool {
	switch op {
	case token.Plus, token.Minus, token.Star, token.Slash, token.Percent,
		token.Lt, token.Le, token.Gt, token.Ge, token.Eq, token.Ne,
		token.BitAnd, token.BitOr, token.BitXor, token.Shl, token.Shr:
		return true
	}
	return false
}

// execVM is the dispatch loop. The boolean result reports whether the method
// completed through an explicit return statement (which triggers invoke's
// return-value coercion) as opposed to falling off the end of the body.
//
// code is either the shared finalized stream (fn.Code), the shared tier-1
// stream (fn.Raw), or — when quickening is on — this instance's private warm
// copy, with ics its inline-cache table. Handlers only ever patch opcodes
// when in.quick is set, which implies code is the private copy.
//
// Identifier operands are read inline (liveCell + the walker's local charge)
// so the hot path does no interface type assertion; the assertions happen
// only on the slow resolution ladder.
func (in *Interp) execVM(cf *compiledFn, code []bytecode.Instr, ics []vmIC, fr *frame, stack []Value) (Value, bool) {
	fn := cf.fn
	meter := in.meter
	consts := cf.consts
	pc, sp := 0, 0
	for {
		ins := &code[pc]
		if ins.Steps != 0 {
			in.ops += int64(ins.Steps)
			if in.maxOps > 0 && in.ops > in.maxOps {
				in.opBudgetExceeded()
			}
			if in.ops >= in.ctxCheckAt {
				in.ctxCheckpoint()
			}
		}
	dispatch:
		switch ins.Op {
		case bytecode.OpLoadLocal:
			if c := liveCell(fr, ins.A); c != nil {
				meter.Step(energy.OpLocal, 1)
				stack[sp] = c.v
			} else {
				stack[sp] = in.evalIdent(fr, ins.Node.(*ast.Ident))
			}
			sp++
		case bytecode.OpConst:
			cv := &consts[ins.A]
			if cv.charge {
				meter.Step(cv.op, 1)
			}
			stack[sp] = cv.v
			sp++
		case bytecode.OpQConst:
			// Charge and steps were folded into the run's OpRunCharge.
			stack[sp] = consts[ins.A].v
			sp++
		case bytecode.OpRunCharge:
			// One pre-aggregated run: a single budget check for the summed
			// steps, then the exact ordered replay of the folded charges —
			// through the load-time-bound deltas when this meter is on the
			// bound cost table, through the charge list otherwise.
			run := &fn.Runs[ins.A]
			in.ops += int64(run.Steps)
			if in.maxOps > 0 && in.ops > in.maxOps {
				in.opBudgetExceeded()
			}
			if in.ops >= in.ctxCheckAt {
				in.ctxCheckpoint()
			}
			if in.runFast {
				meter.StepRun(run.Deltas)
			} else {
				meter.StepList(run.Charges)
			}
		case bytecode.OpQBinIntLL, bytecode.OpQBinIntLC, bytecode.OpQBinInt:
			// One arm for all three int-specialized binary forms; they only
			// differ in where the operands come from. The charge sequence is
			// operand charges (locals/consts as the generic forms issue
			// them), then exactly one arithmetic charge — binaryFast's KInt
			// lane with the Step hoisted out of the operator switch.
			var a, b int64
			if ins.Op == bytecode.OpQBinInt {
				y := stack[sp-1]
				x := stack[sp-2]
				if x.K != KInt || y.K != KInt {
					ins.Op = bytecode.OpBinary
					goto dispatch
				}
				sp -= 2
				a, b = x.I, y.I
			} else {
				ca := liveCell(fr, ins.A)
				if ca == nil || ca.v.K != KInt {
					if ins.Op == bytecode.OpQBinIntLL {
						ins.Op = bytecode.OpBinLL
					} else {
						ins.Op = bytecode.OpBinLC
					}
					goto dispatch
				}
				if ins.Op == bytecode.OpQBinIntLC {
					cv := &consts[ins.B]
					meter.Step(energy.OpLocal, 1)
					if cv.charge {
						meter.Step(cv.op, 1)
					}
					b = cv.v.I
				} else {
					cb := liveCell(fr, ins.B)
					if cb == nil || cb.v.K != KInt {
						ins.Op = bytecode.OpBinLL
						goto dispatch
					}
					meter.Step(energy.OpLocal, 1)
					meter.Step(energy.OpLocal, 1)
					b = cb.v.I
				}
				a = ca.v.I
			}
			var v Value
			switch ins.Tok {
			case token.Slash, token.Percent:
				// Division cost before the zero check, like binaryFast.
				if ins.Tok == token.Slash {
					meter.Step(energy.OpDivInt, 1)
				} else {
					meter.Step(energy.OpModInt, 1)
				}
				if b == 0 {
					in.throw("ArithmeticException", "/ by zero")
				}
				if ins.Tok == token.Slash {
					v = IntVal(a / b)
				} else {
					v = IntVal(a % b)
				}
			default:
				meter.Step(energy.OpArithInt, 1)
				switch ins.Tok {
				case token.Plus:
					v = IntVal(a + b)
				case token.Minus:
					v = IntVal(a - b)
				case token.Star:
					v = IntVal(a * b)
				case token.Lt:
					v = BoolVal(a < b)
				case token.Le:
					v = BoolVal(a <= b)
				case token.Gt:
					v = BoolVal(a > b)
				case token.Ge:
					v = BoolVal(a >= b)
				case token.Eq:
					v = BoolVal(a == b)
				case token.Ne:
					v = BoolVal(a != b)
				case token.BitAnd:
					v = IntVal(a & b)
				case token.BitOr:
					v = IntVal(a | b)
				case token.BitXor:
					v = IntVal(a ^ b)
				case token.Shl:
					v = IntVal(a << uint(b&63))
				default: // token.Shr — intLaneOp admits nothing else
					v = IntVal(a >> uint(b&63))
				}
			}
			stack[sp] = v
			sp++
		case bytecode.OpBinLL:
			if in.quick && intLaneOp(ins.Tok) {
				if ca := liveCell(fr, ins.A); ca != nil && ca.v.K == KInt {
					if cb := liveCell(fr, ins.B); cb != nil && cb.v.K == KInt {
						ins.Op = bytecode.OpQBinIntLL
						goto dispatch
					}
				}
			}
			var x, y Value
			if c := liveCell(fr, ins.A); c != nil {
				meter.Step(energy.OpLocal, 1)
				x = c.v
			} else {
				x = in.evalIdent(fr, ins.Node.(*ast.Binary).X.(*ast.Ident))
			}
			if c := liveCell(fr, ins.B); c != nil {
				meter.Step(energy.OpLocal, 1)
				y = c.v
			} else {
				y = in.evalIdent(fr, ins.Node.(*ast.Binary).Y.(*ast.Ident))
			}
			if x.K == KInt && y.K == KInt {
				if v, ok := vmIntFast(in, ins.Tok, x.I, y.I); ok {
					stack[sp] = v
					sp++
					break
				}
			}
			v, ok := in.binaryFast(ins.Tok, x, y)
			if !ok {
				v = in.binary(ins.Tok, x, y, ins.Node.NodePos())
			}
			stack[sp] = v
			sp++
		case bytecode.OpBinLC:
			if in.quick && intLaneOp(ins.Tok) && consts[ins.B].v.K == KInt {
				if ca := liveCell(fr, ins.A); ca != nil && ca.v.K == KInt {
					ins.Op = bytecode.OpQBinIntLC
					goto dispatch
				}
			}
			var x Value
			if c := liveCell(fr, ins.A); c != nil {
				meter.Step(energy.OpLocal, 1)
				x = c.v
			} else {
				x = in.evalIdent(fr, ins.Node.(*ast.Binary).X.(*ast.Ident))
			}
			cv := &consts[ins.B]
			if cv.charge {
				meter.Step(cv.op, 1)
			}
			if x.K == KInt && cv.v.K == KInt {
				if v, ok := vmIntFast(in, ins.Tok, x.I, cv.v.I); ok {
					stack[sp] = v
					sp++
					break
				}
			}
			v, ok := in.binaryFast(ins.Tok, x, cv.v)
			if !ok {
				v = in.binary(ins.Tok, x, cv.v, ins.Node.NodePos())
			}
			stack[sp] = v
			sp++
		case bytecode.OpBinary:
			y := stack[sp-1]
			x := stack[sp-2]
			if in.quick && x.K == KInt && y.K == KInt && intLaneOp(ins.Tok) {
				ins.Op = bytecode.OpQBinInt
				goto dispatch
			}
			sp--
			if x.K == KInt && y.K == KInt {
				if v, ok := vmIntFast(in, ins.Tok, x.I, y.I); ok {
					stack[sp-1] = v
					break
				}
			}
			v, ok := in.binaryFast(ins.Tok, x, y)
			if !ok {
				v = in.binary(ins.Tok, x, y, ins.Node.NodePos())
			}
			stack[sp-1] = v
		case bytecode.OpJmp:
			pc += int(ins.A)
			continue
		case bytecode.OpJmpBranch:
			meter.Step(energy.OpBranch, 1)
			pc += int(ins.A)
			continue
		case bytecode.OpJmpCmpLLFalse, bytecode.OpJmpCmpLLTrue:
			// Fused OpBinLL + conditional jump: identical charge sequence,
			// and a comparison always yields a normalised boolean, so the
			// jump's unbox/type checks are unreachable.
			var x, y Value
			if c := liveCell(fr, ins.C); c != nil {
				meter.Step(energy.OpLocal, 1)
				x = c.v
			} else {
				x = in.evalIdent(fr, ins.Node.(*ast.Binary).X.(*ast.Ident))
			}
			if c := liveCell(fr, ins.B); c != nil {
				meter.Step(energy.OpLocal, 1)
				y = c.v
			} else {
				y = in.evalIdent(fr, ins.Node.(*ast.Binary).Y.(*ast.Ident))
			}
			var take bool
			if x.K == KInt && y.K == KInt {
				meter.Step(energy.OpArithInt, 1)
				take = intCmp(ins.Tok, x.I, y.I)
			} else {
				v, ok := in.binaryFast(ins.Tok, x, y)
				if !ok {
					v = in.binary(ins.Tok, x, y, ins.Node.NodePos())
				}
				take = v.I != 0
			}
			if take == (ins.Op == bytecode.OpJmpCmpLLTrue) {
				pc += int(ins.A)
				continue
			}
		case bytecode.OpJmpCmpLCFalse, bytecode.OpJmpCmpLCTrue:
			var x Value
			if c := liveCell(fr, ins.C); c != nil {
				meter.Step(energy.OpLocal, 1)
				x = c.v
			} else {
				x = in.evalIdent(fr, ins.Node.(*ast.Binary).X.(*ast.Ident))
			}
			cv := &consts[ins.B]
			if cv.charge {
				meter.Step(cv.op, 1)
			}
			var take bool
			if x.K == KInt && cv.v.K == KInt {
				meter.Step(energy.OpArithInt, 1)
				take = intCmp(ins.Tok, x.I, cv.v.I)
			} else {
				v, ok := in.binaryFast(ins.Tok, x, cv.v)
				if !ok {
					v = in.binary(ins.Tok, x, cv.v, ins.Node.NodePos())
				}
				take = v.I != 0
			}
			if take == (ins.Op == bytecode.OpJmpCmpLCTrue) {
				pc += int(ins.A)
				continue
			}
		case bytecode.OpJmpCmpFalse, bytecode.OpJmpCmpTrue:
			y := stack[sp-1]
			x := stack[sp-2]
			sp -= 2
			var take bool
			if x.K == KInt && y.K == KInt {
				meter.Step(energy.OpArithInt, 1)
				take = intCmp(ins.Tok, x.I, y.I)
			} else {
				v, ok := in.binaryFast(ins.Tok, x, y)
				if !ok {
					v = in.binary(ins.Tok, x, y, ins.Node.NodePos())
				}
				take = v.I != 0
			}
			if take == (ins.Op == bytecode.OpJmpCmpTrue) {
				pc += int(ins.A)
				continue
			}
		case bytecode.OpJmpFalse:
			v := stack[sp-1]
			sp--
			if v.K == KBox {
				v = in.unbox(v, ins.Node.NodePos())
			}
			if v.K != KBool {
				in.bugf(ins.Node.NodePos(), "condition is %v, not boolean", v.K)
			}
			if v.I == 0 {
				pc += int(ins.A)
				continue
			}
		case bytecode.OpJmpTrue:
			v := stack[sp-1]
			sp--
			if v.K == KBox {
				v = in.unbox(v, ins.Node.NodePos())
			}
			if v.K != KBool {
				in.bugf(ins.Node.NodePos(), "condition is %v, not boolean", v.K)
			}
			if v.I != 0 {
				pc += int(ins.A)
				continue
			}
		case bytecode.OpStoreLocal, bytecode.OpStoreLocalX:
			rhs := stack[sp-1]
			id := ins.Node.(*ast.Ident)
			if c := liveCell(fr, ins.A); c != nil {
				meter.Step(energy.OpLocal, 1)
				if rhs.K == c.k {
					c.v = rhs
				} else {
					c.v = in.coerceTo(rhs, c.t, id.Pos)
				}
			} else {
				in.writeLValue(fr, id, rhs)
			}
			if ins.Op == bytecode.OpStoreLocal {
				sp--
			}
		case bytecode.OpIncLocal, bytecode.OpIncLocalX:
			n := ins.Node.(*ast.Unary)
			var res Value
			if c := liveCell(fr, ins.A); c != nil && c.v.K == KInt && c.k == KInt {
				// All-int ++/--: same charge sequence as the general arm
				// below (step, local read, int arithmetic, local write), but
				// the cell store touches only the scalar word — an int cell's
				// reference word is nil and stays nil, so skipping it skips
				// the write barrier.
				in.step()
				meter.Step(energy.OpLocal, 1)
				old := c.v.I
				meter.Step(energy.OpArithInt, 1)
				upd := old + int64(ins.B)
				meter.Step(energy.OpLocal, 1)
				c.v.I = upd
				if n.Postfix {
					res = Value{K: KInt, I: old}
				} else {
					res = Value{K: KInt, I: upd}
				}
			} else if c != nil {
				// Inline ++/--: the walker's readLValue step+charge, unbox,
				// arithmetic charge, and writeLValue live-slot store.
				in.step()
				meter.Step(energy.OpLocal, 1)
				old := c.v
				if old.K == KBox {
					old = in.unbox(old, n.Pos)
				}
				delta := int64(ins.B)
				var updated Value
				switch old.K {
				case KInt:
					meter.Step(energy.OpArithInt, 1)
					updated = Value{K: KInt, I: old.I + delta}
				case KFloat:
					in.chargeArith(KFloat, token.Plus)
					updated = FloatVal(old.D + float64(delta))
				case KDouble:
					in.chargeArith(KDouble, token.Plus)
					updated = DoubleVal(old.D + float64(delta))
				case KLong:
					in.chargeArith(KLong, token.Plus)
					updated = LongVal(old.I + delta)
				case KShort, KByte, KChar:
					in.chargeArith(old.K, token.Plus)
					updated = Value{K: old.K, I: old.I + delta}
				default:
					in.bugf(n.Pos, "%v on %v", n.Op, old.K)
				}
				meter.Step(energy.OpLocal, 1)
				if updated.K == c.k {
					c.v = updated
				} else {
					c.v = in.coerceTo(updated, c.t, n.X.(*ast.Ident).Pos)
				}
				if n.Postfix {
					res = old
				} else {
					res = updated
				}
			} else {
				res = in.evalUnary(fr, n)
			}
			if ins.Op == bytecode.OpIncLocalX {
				stack[sp] = res
				sp++
			}
		case bytecode.OpCall:
			n := ins.Node.(*ast.Call)
			argc := int(ins.A)
			if in.quick {
				// Quicken on the observed shape; the quick handler performs
				// this very execution (installation charges nothing).
				var recv Value
				if ins.B != 0 {
					recv = stack[sp-1-argc]
				}
				if in.quickenCall(ins, ics, fr, recv) {
					goto dispatch
				}
			}
			args := in.grabArgs(argc)
			copy(args, stack[sp-argc:sp])
			sp -= argc
			var recv Value
			hasRecv := ins.B != 0
			if hasRecv {
				recv = stack[sp-1]
				sp--
			}
			stack[sp] = in.dispatchCall(fr, n, recv, hasRecv, args)
			sp++
		case bytecode.OpQCallSelf:
			// Unqualified call, cache keyed on the frame's dynamic class —
			// the same key dispatchCall's site cache uses. The argument
			// window is passed as a stack slice: the callee copies its
			// parameters into frame slots before executing, so the window is
			// dead by the time anything can overwrite it.
			n := ins.Node.(*ast.Call)
			argc := int(ins.A)
			ic := &ics[ins.C]
			if ic.class != fr.class {
				in.icMissSelf(ic, fr, n, argc)
			}
			argv := stack[sp-argc : sp]
			sp -= argc
			var v Value
			if ic.static {
				v = in.icInvoke(ic, fr.class, nil, argv)
			} else {
				if fr.this == nil {
					in.bugf(n.Pos, "instance method %s called from static context", n.Name)
				}
				v = in.icInvoke(ic, fr.this.Class, fr.this, argv)
			}
			stack[sp] = v
			sp++
		case bytecode.OpQCallVirtual:
			argc := int(ins.A)
			recv := stack[sp-1-argc]
			if recv.K != KRef {
				ins.Op = bytecode.OpCall
				goto dispatch
			}
			obj := recv.R.(*Object)
			ic := &ics[ins.C]
			if ic.class != obj.Class {
				in.icMissVirtual(ic, obj, ins.Node.(*ast.Call), argc)
			}
			argv := stack[sp-argc : sp]
			sp -= argc + 1
			stack[sp] = in.icInvoke(ic, obj.Class, obj, argv)
			sp++
		case bytecode.OpQCallStatic:
			argc := int(ins.A)
			recv := stack[sp-1-argc]
			ic := &ics[ins.C]
			if recv.K != KClassRef || recv.R.(string) != ic.cls {
				ins.Op = bytecode.OpCall
				goto dispatch
			}
			argv := stack[sp-argc : sp]
			sp -= argc + 1
			stack[sp] = in.icInvoke(ic, ic.class, nil, argv)
			sp++
		case bytecode.OpQCallBuiltin:
			argc := int(ins.A)
			recv := stack[sp-1-argc]
			ic := &ics[ins.C]
			if recv.K != KClassRef || recv.R.(string) != ic.cls {
				ins.Op = bytecode.OpCall
				goto dispatch
			}
			argv := stack[sp-argc : sp]
			sp -= argc + 1
			stack[sp] = in.callQBuiltinStatic(ic.cls, ins.Node.(*ast.Call), argv)
			sp++
		case bytecode.OpQCallInstance:
			argc := int(ins.A)
			recv := stack[sp-1-argc]
			if recv.K == KRef || recv.K == KClassRef || recv.K == KNull {
				ins.Op = bytecode.OpCall
				goto dispatch
			}
			argv := stack[sp-argc : sp]
			sp -= argc + 1
			stack[sp] = in.callQBuiltinInstance(recv, ins.Node.(*ast.Call), argv)
			sp++
		case bytecode.OpLoadIndex:
			iv := stack[sp-1]
			xv := stack[sp-2]
			sp--
			var arr *Array
			var idx int
			if xv.K == KArr && iv.K == KInt {
				// In-bounds int index on an array: skip the generic ladder
				// (which charges nothing up to this point, so parity holds).
				arr = xv.R.(*Array)
				if idx = int(iv.I); uint(idx) >= uint(arr.Len()) {
					arr, idx = in.indexCheck(xv, iv, ins.Node.(*ast.Index))
				}
			} else {
				arr, idx = in.indexCheck(xv, iv, ins.Node.(*ast.Index))
			}
			meter.ArrayAccess(arr.addr(idx), arr.ES)
			if arr.Kind == KInt {
				stack[sp-1] = Value{K: KInt, I: arr.I[idx]}
			} else {
				stack[sp-1] = arr.get(idx)
			}
		case bytecode.OpLoadIndexL:
			// Fused a[i] with a local index: the index read is charged
			// exactly where the stand-alone load instruction would have.
			// The Node assertion is deferred into the resolution fallbacks
			// so the hot lane does no interface work.
			var iv Value
			if c := liveCell(fr, ins.A); c != nil {
				meter.Step(energy.OpLocal, 1)
				iv = c.v
			} else {
				iv = in.evalIdent(fr, ins.Node.(*ast.Index).I.(*ast.Ident))
			}
			xv := stack[sp-1]
			var arr *Array
			var idx int
			if xv.K == KArr && iv.K == KInt {
				arr = xv.R.(*Array)
				if idx = int(iv.I); uint(idx) >= uint(arr.Len()) {
					arr, idx = in.indexCheck(xv, iv, ins.Node.(*ast.Index))
				}
			} else {
				arr, idx = in.indexCheck(xv, iv, ins.Node.(*ast.Index))
			}
			meter.ArrayAccess(arr.addr(idx), arr.ES)
			if arr.Kind == KInt {
				stack[sp-1] = Value{K: KInt, I: arr.I[idx]}
			} else {
				stack[sp-1] = arr.get(idx)
			}
		case bytecode.OpStoreIndexL, bytecode.OpStoreIndexLX:
			var iv Value
			if c := liveCell(fr, ins.A); c != nil {
				meter.Step(energy.OpLocal, 1)
				iv = c.v
			} else {
				iv = in.evalIdent(fr, ins.Node.(*ast.Index).I.(*ast.Ident))
			}
			xv := stack[sp-1]
			rhs := stack[sp-2]
			sp -= 2
			var arr *Array
			var idx int
			if xv.K == KArr && iv.K == KInt {
				arr = xv.R.(*Array)
				if idx = int(iv.I); uint(idx) >= uint(arr.Len()) {
					arr, idx = in.indexCheck(xv, iv, ins.Node.(*ast.Index))
				}
			} else {
				arr, idx = in.indexCheck(xv, iv, ins.Node.(*ast.Index))
			}
			meter.ArrayAccess(arr.addr(idx), arr.ES)
			// Matching kinds store as-is — coerceTo's identity lane, with the
			// call skipped (the walker's field stores use the same pattern).
			if rhs.K == arr.Kind {
				arr.set(idx, rhs)
			} else {
				arr.set(idx, in.coerceTo(rhs, arr.Elem, ins.Node.NodePos()))
			}
			if ins.Op == bytecode.OpStoreIndexLX {
				stack[sp] = rhs
				sp++
			}
		case bytecode.OpStoreIndex, bytecode.OpStoreIndexX:
			iv := stack[sp-1]
			xv := stack[sp-2]
			rhs := stack[sp-3]
			sp -= 3
			var arr *Array
			var idx int
			if xv.K == KArr && iv.K == KInt {
				arr = xv.R.(*Array)
				if idx = int(iv.I); uint(idx) >= uint(arr.Len()) {
					arr, idx = in.indexCheck(xv, iv, ins.Node.(*ast.Index))
				}
			} else {
				arr, idx = in.indexCheck(xv, iv, ins.Node.(*ast.Index))
			}
			meter.ArrayAccess(arr.addr(idx), arr.ES)
			if rhs.K == arr.Kind {
				arr.set(idx, rhs)
			} else {
				arr.set(idx, in.coerceTo(rhs, arr.Elem, ins.Node.NodePos()))
			}
			if ins.Op == bytecode.OpStoreIndexX {
				stack[sp] = rhs
				sp++
			}
		case bytecode.OpLoadSelect:
			if in.quick && in.quickenSelect(ins, ics, stack[sp-1]) {
				goto dispatch
			}
			stack[sp-1] = in.selectFrom(stack[sp-1], ins.Node.(*ast.Select))
		case bytecode.OpQGetField:
			x := stack[sp-1]
			if x.K != KRef {
				ins.Op = bytecode.OpLoadSelect
				goto dispatch
			}
			obj := x.R.(*Object)
			ic := &ics[ins.C]
			if ic.class != obj.Class {
				in.icMissField(ic, obj, ins.Node.(*ast.Select))
			}
			meter.FieldAccess(obj.Base + 16 + uint64(8*ic.ix))
			stack[sp-1] = obj.Slots[ic.ix]
		case bytecode.OpQGetStatic:
			x := stack[sp-1]
			ic := &ics[ins.C]
			if x.K != KClassRef || x.R.(string) != ic.cls {
				ins.Op = bytecode.OpLoadSelect
				goto dispatch
			}
			meter.StaticAccess(ic.slot.Addr)
			stack[sp-1] = ic.slot.V
		case bytecode.OpQGetConst:
			x := stack[sp-1]
			ic := &ics[ins.C]
			if x.K != KClassRef || x.R.(string) != ic.cls {
				ins.Op = bytecode.OpLoadSelect
				goto dispatch
			}
			meter.Step(energy.OpStatic, 1)
			stack[sp-1] = ic.v
		case bytecode.OpQArrLen:
			x := stack[sp-1]
			if x.K != KArr {
				ins.Op = bytecode.OpLoadSelect
				goto dispatch
			}
			meter.Step(energy.OpField, 1)
			stack[sp-1] = IntVal(int64(x.R.(*Array).Len()))
		case bytecode.OpStoreSelect, bytecode.OpStoreSelectX:
			// The receiver expression is evaluated inside writeLValue, after
			// the RHS — the walker's assignment order.
			rhs := stack[sp-1]
			in.writeLValue(fr, ins.Node.(*ast.Select), rhs)
			if ins.Op == bytecode.OpStoreSelect {
				sp--
			}
		case bytecode.OpStoreIdent, bytecode.OpStoreIdentX:
			rhs := stack[sp-1]
			in.writeLValue(fr, ins.Node.(*ast.Ident), rhs)
			if ins.Op == bytecode.OpStoreIdent {
				sp--
			}
		case bytecode.OpLoadIdent:
			n := ins.Node.(*ast.Ident)
			if in.quick && n.RKind == ast.ResClass {
				// evalIdent's ResClass lane is charge-free and invariant.
				ics[ins.C] = vmIC{v: Value{K: KClassRef, R: n.Name}}
				ins.Op = bytecode.OpQPushV
				goto dispatch
			}
			stack[sp] = in.evalIdent(fr, n)
			sp++
		case bytecode.OpQPushV:
			stack[sp] = ics[ins.C].v
			sp++
		case bytecode.OpQLoadStatic:
			if ix := int(ins.A); ix < len(in.prog.statRefs) {
				slot := in.prog.statRefs[ix]
				meter.StaticAccess(slot.Addr)
				stack[sp] = slot.V
				sp++
				break
			}
			stack[sp] = in.evalIdent(fr, ins.Node.(*ast.Ident))
			sp++
		case bytecode.OpQLoadField:
			if this := fr.this; this != nil {
				if ix := int(ins.A); ix < len(this.Slots) {
					meter.FieldAccess(this.Base + 16 + uint64(8*ix))
					stack[sp] = this.Slots[ix]
					sp++
					break
				}
			}
			stack[sp] = in.evalIdent(fr, ins.Node.(*ast.Ident))
			sp++
		case bytecode.OpQStoreStatic, bytecode.OpQStoreStaticX:
			rhs := stack[sp-1]
			if ix := int(ins.A); ix < len(in.prog.statRefs) {
				slot := in.prog.statRefs[ix]
				meter.StaticAccess(slot.Addr)
				if rhs.K == slot.K {
					slot.V = rhs
				} else {
					slot.V = in.coerceTo(rhs, slot.Type, ins.Node.NodePos())
				}
			} else {
				in.writeLValue(fr, ins.Node.(*ast.Ident), rhs)
			}
			if ins.Op == bytecode.OpQStoreStatic {
				sp--
			}
		case bytecode.OpQStoreField, bytecode.OpQStoreFieldX:
			rhs := stack[sp-1]
			if this := fr.this; this != nil && int(ins.A) < len(this.Slots) {
				ix := int(ins.A)
				meter.FieldAccess(this.Base + 16 + uint64(8*ix))
				if fi := &this.Class.fields[ix]; rhs.K == fi.K {
					this.Slots[ix] = rhs
				} else {
					this.Slots[ix] = in.coerceTo(rhs, fi.Type, ins.Node.NodePos())
				}
			} else {
				in.writeLValue(fr, ins.Node.(*ast.Ident), rhs)
			}
			if ins.Op == bytecode.OpQStoreField {
				sp--
			}
		case bytecode.OpLoadThis:
			if fr.this == nil {
				in.bugf(ins.Node.NodePos(), "this in static context")
			}
			stack[sp] = Value{K: KRef, R: fr.this}
			sp++
		case bytecode.OpEval:
			stack[sp] = in.operand(fr, ins.Node.(ast.Expr))
			sp++
		case bytecode.OpAssign, bytecode.OpAssignX:
			v := in.evalAssign(fr, ins.Node.(*ast.Assign))
			if ins.Op == bytecode.OpAssignX {
				stack[sp] = v
				sp++
			}
		case bytecode.OpLocalDecl:
			n := ins.Node.(*ast.LocalVar)
			k := kindOfType(n.Type)
			var v Value
			if ins.B != 0 {
				v = in.evalInit(fr, n.Init, n.Type)
			} else {
				v = stack[sp-1]
				sp--
			}
			if v.K != k {
				v = in.coerceTo(v, n.Type, n.Pos)
			}
			fr.locals[ins.A] = cell{t: n.Type, k: k, v: v, live: true}
			meter.Step(energy.OpLocal, 1)
		case bytecode.OpLocalZero:
			n := ins.Node.(*ast.LocalVar)
			fr.locals[ins.A] = cell{t: n.Type, k: kindOfType(n.Type), v: zeroValue(n.Type), live: true}
			meter.Step(energy.OpLocal, 1)
		case bytecode.OpNeg:
			n := ins.Node.(*ast.Unary)
			v := stack[sp-1]
			if v.K == KBox {
				v = in.unbox(v, n.Pos)
			}
			in.chargeArith(v.K, token.Minus)
			switch v.K {
			case KFloat:
				stack[sp-1] = FloatVal(-v.D)
			case KDouble:
				stack[sp-1] = DoubleVal(-v.D)
			case KLong:
				stack[sp-1] = LongVal(-v.I)
			case KInt, KShort, KByte, KChar:
				stack[sp-1] = IntVal(-v.I)
			default:
				in.bugf(n.Pos, "unary - on %v", v.K)
			}
		case bytecode.OpNot:
			n := ins.Node.(*ast.Unary)
			v := stack[sp-1]
			if v.K == KBox {
				v = in.unbox(v, n.Pos)
			}
			if v.K != KBool {
				in.bugf(n.Pos, "unary ! on %v", v.K)
			}
			meter.Step(energy.OpArithInt, 1)
			stack[sp-1] = BoolVal(v.I == 0)
		case bytecode.OpToBool:
			v := stack[sp-1]
			if v.K == KBox {
				v = in.unbox(v, ins.Node.NodePos())
			}
			if v.K != KBool {
				in.bugf(ins.Node.NodePos(), "condition is %v, not boolean", v.K)
			}
			stack[sp-1] = BoolVal(v.I != 0)
		case bytecode.OpPushBool:
			stack[sp] = BoolVal(ins.A != 0)
			sp++
		case bytecode.OpPop:
			sp--
		case bytecode.OpCharge:
			meter.Step(energy.Op(ins.A), int(ins.B))
		case bytecode.OpStep, bytecode.OpNop:
			// Steps were accounted above.
		case bytecode.OpNew:
			n := ins.Node.(*ast.New)
			argc := int(ins.A)
			args := in.grabArgs(argc)
			copy(args, stack[sp-argc:sp])
			sp -= argc
			stack[sp] = in.newDispatch(n, args)
			sp++
		case bytecode.OpLenCheck:
			n := ins.Node.(*ast.NewArray)
			lv := stack[sp-1]
			if lv.K == KBox {
				lv = in.unbox(lv, n.Pos)
			}
			if !lv.K.IsIntegral() {
				in.bugf(n.Pos, "array length is %v, not integral", lv.K)
			}
			if lv.I < 0 {
				in.throw("NegativeArraySizeException", strconv.FormatInt(lv.I, 10))
			}
			stack[sp-1] = lv
		case bytecode.OpNewArray:
			n := ins.Node.(*ast.NewArray)
			nd := int(ins.A)
			var buf [8]int
			lens := buf[:0]
			if nd > len(buf) {
				lens = make([]int, 0, nd)
			}
			for i := 0; i < nd; i++ {
				lens = append(lens, int(stack[sp-nd+i].I))
			}
			sp -= nd
			stack[sp] = in.newArray(n.Elem, lens)
			sp++
		case bytecode.OpCast:
			stack[sp-1] = in.castValue(stack[sp-1], ins.Node.(*ast.Cast))
		case bytecode.OpInstanceOf:
			n := ins.Node.(*ast.InstanceOf)
			v := stack[sp-1]
			meter.Step(energy.OpArithInt, 1)
			stack[sp-1] = BoolVal(in.valueInstanceOf(v, n.Name))
		case bytecode.OpThrow:
			n := ins.Node.(*ast.Throw)
			v := stack[sp-1]
			sp--
			if v.K != KThrow {
				in.bugf(n.Pos, "throw of non-throwable %v", v.K)
			}
			meter.Step(energy.OpThrow, 1)
			panic(javaPanic{v.R.(*Throwable)})
		case bytecode.OpSwitchTag:
			if stack[sp-1].K == KBox {
				stack[sp-1] = in.unbox(stack[sp-1], ins.Node.NodePos())
			}
		case bytecode.OpCaseCmp:
			n := ins.Node.(*ast.Switch)
			v := stack[sp-1]
			sp--
			meter.Step(energy.OpBranch, 1)
			if in.switchMatches(stack[sp-1], v, n.Pos) {
				sp-- // pop the tag; jump to the matched arm
				pc += int(ins.A)
				continue
			}
		case bytecode.OpSwitchEnd:
			sp--
			pc += int(ins.A)
			continue
		case bytecode.OpRet:
			return stack[sp-1], true
		case bytecode.OpRetVoid:
			return Value{}, ins.B != 0
		case bytecode.OpProbeEnter:
			if in.hook != nil {
				in.hook.Enter(fn.Probe)
			}
		case bytecode.OpProbeExit:
			if in.hook != nil {
				in.hook.Exit(fn.Probe)
			}
		default:
			panic(bugPanic{"vm: unknown opcode " + ins.Op.String()})
		}
		pc++
	}
}
