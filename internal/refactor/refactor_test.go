package refactor

import (
	"strings"
	"testing"

	"jepo/internal/energy"
	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/interp"
	"jepo/internal/minijava/parser"
	"jepo/internal/suggest"
)

func parse(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := parser.Parse("T.java", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

// runSrc executes class.method of src and returns the result value and the
// consumed package energy.
func runSrc(t *testing.T, src, class, method string) (interp.Value, energy.Joules) {
	t.Helper()
	f := parse(t, src)
	prog, err := interp.Load(f)
	if err != nil {
		t.Fatalf("load: %v\nsource:\n%s", err, src)
	}
	in := interp.New(prog, energy.NewMeter(energy.DefaultCosts()), interp.WithMaxOps(100_000_000))
	if err := in.InitStatics(); err != nil {
		t.Fatalf("statics: %v", err)
	}
	before := in.Meter().Snapshot()
	v, err := in.CallStatic(class, method)
	if err != nil {
		t.Fatalf("run: %v\nsource:\n%s", err, src)
	}
	return v, in.Meter().Snapshot().Sub(before).Package
}

// refactorSrc applies rules and returns the re-printed source plus result.
func refactorSrc(t *testing.T, src string, rules ...suggest.Rule) (string, *Result) {
	t.Helper()
	f := parse(t, src)
	res := Apply([]*ast.File{f}, rules...)
	out := ast.Print(f)
	if _, err := parser.Parse("out.java", out); err != nil {
		t.Fatalf("refactored source does not re-parse: %v\n%s", err, out)
	}
	return out, res
}

// checkPreservesAndImproves refactors src with rules, asserts the result is
// unchanged and energy strictly improved.
func checkPreservesAndImproves(t *testing.T, src, class, method string, rules ...suggest.Rule) (*Result, float64) {
	t.Helper()
	v0, e0 := runSrc(t, src, class, method)
	out, res := refactorSrc(t, src, rules...)
	v1, e1 := runSrc(t, out, class, method)
	if v0.JavaString() != v1.JavaString() {
		t.Fatalf("refactoring changed result: %q → %q\nrefactored:\n%s",
			v0.JavaString(), v1.JavaString(), out)
	}
	if res.Changes == 0 {
		t.Fatalf("no changes applied\nsource:\n%s", src)
	}
	improvement := 100 * (1 - float64(e1)/float64(e0))
	if improvement <= 0 {
		t.Errorf("energy did not improve: before=%v after=%v\nrefactored:\n%s", e0, e1, out)
	}
	return res, improvement
}

func TestTernaryToIfElse(t *testing.T) {
	src := `class T { static int f() {
		int s = 0;
		for (int i = 0; i < 1000; i++) {
			int v = i > 500 ? i : -i;
			s += v;
			s = s > 100000 ? 100000 : s;
		}
		return s > 0 ? s : -s;
	} }`
	res, _ := checkPreservesAndImproves(t, src, "T", "f", suggest.RuleTernaryOperator)
	if res.ByRule[suggest.RuleTernaryOperator] != 3 {
		t.Errorf("ternary changes = %d, want 3", res.ByRule[suggest.RuleTernaryOperator])
	}
	out, _ := refactorSrc(t, src, suggest.RuleTernaryOperator)
	if strings.Contains(out, "?") {
		t.Errorf("ternaries remain:\n%s", out)
	}
}

func TestCompareToBecomesEquals(t *testing.T) {
	src := `class T { static int f() {
		String a = "alpha";
		String b = "alphb";
		int n = 0;
		for (int i = 0; i < 500; i++) {
			if (a.compareTo(b) == 0) { n++; }
			if (a.compareTo(a) == 0) { n++; }
			if (a.compareTo(b) != 0) { n++; }
		}
		return n;
	} }`
	res, _ := checkPreservesAndImproves(t, src, "T", "f", suggest.RuleStringComparison)
	if res.ByRule[suggest.RuleStringComparison] != 3 {
		t.Errorf("compareTo changes = %d, want 3", res.ByRule[suggest.RuleStringComparison])
	}
	out, _ := refactorSrc(t, src, suggest.RuleStringComparison)
	if strings.Contains(out, "compareTo") {
		t.Errorf("compareTo remains:\n%s", out)
	}
}

func TestModulusMask(t *testing.T) {
	src := `class T { static int f() {
		int s = 0;
		for (int i = 0; i < 5000; i++) {
			s += i % 8;
			s += i % 7; // not a power of two: untouched
		}
		return s;
	} }`
	res, _ := checkPreservesAndImproves(t, src, "T", "f", suggest.RuleModulusOperator)
	if res.ByRule[suggest.RuleModulusOperator] != 1 {
		t.Errorf("modulus changes = %d, want 1", res.ByRule[suggest.RuleModulusOperator])
	}
	out, _ := refactorSrc(t, src, suggest.RuleModulusOperator)
	if !strings.Contains(out, "& 7") {
		t.Errorf("mask rewrite missing:\n%s", out)
	}
}

func TestModulusMaskRequiresLoopVar(t *testing.T) {
	// x is a parameter, possibly negative: must not be rewritten.
	src := `class T { static int f(int x) { return x % 8; } }`
	_, res := refactorSrc(t, src, suggest.RuleModulusOperator)
	if res.Changes != 0 {
		t.Error("modulus on unproven-non-negative value must not be masked")
	}
}

func TestManualCopyBecomesArraycopy(t *testing.T) {
	src := `class T { static int f() {
		int[] a = new int[4000];
		for (int i = 0; i < 4000; i++) { a[i] = i; }
		int[] b = new int[4000];
		for (int i = 0; i < 4000; i++) {
			b[i] = a[i];
		}
		return b[3999];
	} }`
	res, _ := checkPreservesAndImproves(t, src, "T", "f", suggest.RuleArraysCopy)
	if res.ByRule[suggest.RuleArraysCopy] != 1 {
		t.Errorf("arraycopy changes = %d, want 1 (init loop untouched)", res.ByRule[suggest.RuleArraysCopy])
	}
	out, _ := refactorSrc(t, src, suggest.RuleArraysCopy)
	if !strings.Contains(out, "System.arraycopy(a, 0, b, 0, 4000)") {
		t.Errorf("arraycopy call missing:\n%s", out)
	}
}

func TestLoopInterchange(t *testing.T) {
	src := `class T { static int f() {
		int[][] m = new int[600][600];
		int s = 0;
		for (int j = 0; j < 600; j++) {
			for (int i = 0; i < 600; i++) {
				s += m[i][j];
			}
		}
		return s;
	} }`
	res, improvement := checkPreservesAndImproves(t, src, "T", "f", suggest.RuleArrayTraversal)
	if res.ByRule[suggest.RuleArrayTraversal] != 1 {
		t.Errorf("interchange changes = %d, want 1", res.ByRule[suggest.RuleArrayTraversal])
	}
	if improvement < 20 {
		t.Errorf("interchange improvement = %.1f%%, want substantial", improvement)
	}
}

func TestConcatLoopBecomesStringBuilder(t *testing.T) {
	src := `class T { static int f() {
		String s = "";
		for (int i = 0; i < 400; i++) {
			s = s + "x";
		}
		return s.length();
	} }`
	res, improvement := checkPreservesAndImproves(t, src, "T", "f", suggest.RuleStringConcat)
	if res.ByRule[suggest.RuleStringConcat] != 1 {
		t.Errorf("concat changes = %d", res.ByRule[suggest.RuleStringConcat])
	}
	if improvement < 50 {
		t.Errorf("builder improvement = %.1f%%, want large (quadratic → linear)", improvement)
	}
	out, _ := refactorSrc(t, src, suggest.RuleStringConcat)
	if !strings.Contains(out, "StringBuilder") || !strings.Contains(out, ".append(") {
		t.Errorf("builder rewrite missing:\n%s", out)
	}
}

func TestConcatPlusEqForm(t *testing.T) {
	src := `class T { static int f() {
		String acc = "start";
		int i = 0;
		while (i < 300) {
			acc += "y";
			i++;
		}
		return acc.length();
	} }`
	res, _ := checkPreservesAndImproves(t, src, "T", "f", suggest.RuleStringConcat)
	if res.ByRule[suggest.RuleStringConcat] != 1 {
		t.Errorf("concat changes = %d", res.ByRule[suggest.RuleStringConcat])
	}
}

func TestConcatBailsOnOtherUses(t *testing.T) {
	// s is read inside the loop beyond accumulation: must not rewrite.
	src := `class T { static int f() {
		String s = "";
		int n = 0;
		for (int i = 0; i < 10; i++) {
			s = s + "x";
			n += s.length();
		}
		return n;
	} }`
	_, res := refactorSrc(t, src, suggest.RuleStringConcat)
	if res.Changes != 0 {
		t.Error("accumulator read inside loop must prevent the rewrite")
	}
}

func TestPrimitiveNarrowing(t *testing.T) {
	src := `class T {
		static double scale = 2.0;
		static double f() {
			double sum = 0.0;
			long count = 0L;
			for (int i = 0; i < 1000; i++) {
				sum += i * 0.5;
				count = count + 1L;
			}
			return sum + count;
		}
	}`
	f := parse(t, src)
	res := Apply([]*ast.File{f}, suggest.RulePrimitiveTypes)
	// scale, sum, count (double→float ×2, long→int ×1); return type untouched.
	if res.ByRule[suggest.RulePrimitiveTypes] != 3 {
		t.Errorf("primitive changes = %d, want 3", res.ByRule[suggest.RulePrimitiveTypes])
	}
	out := ast.Print(f)
	if !strings.Contains(out, "float sum") || !strings.Contains(out, "int count") {
		t.Errorf("narrowing missing:\n%s", out)
	}
	// Result changes only by float precision, not structure.
	v0, e0 := runSrc(t, src, "T", "f")
	v1, e1 := runSrc(t, out, "T", "f")
	if v1.AsF64() < v0.AsF64()*0.999 || v1.AsF64() > v0.AsF64()*1.001 {
		t.Errorf("narrowed result %v too far from %v", v1.AsF64(), v0.AsF64())
	}
	if e1 >= e0 {
		t.Errorf("narrowing did not improve energy: %v → %v", e0, e1)
	}
}

func TestWrapperIntegerization(t *testing.T) {
	src := `class T { static int f() {
		Long a = Long.valueOf(5);
		Short b = Short.valueOf(3);
		return a.intValue() + b.intValue();
	} }`
	out, res := refactorSrc(t, src, suggest.RuleWrapperClasses)
	if res.ByRule[suggest.RuleWrapperClasses] != 2 {
		t.Errorf("wrapper changes = %d, want 2", res.ByRule[suggest.RuleWrapperClasses])
	}
	if !strings.Contains(out, "Integer a") || !strings.Contains(out, "Integer b") {
		t.Errorf("Integer rewrite missing:\n%s", out)
	}
}

func TestScientificNotationRewrite(t *testing.T) {
	src := `class T { static double f() {
		double big = 100000.0;
		double small = 0.00001;
		double keep = 3.25;
		double r = 0.0;
		for (int i = 0; i < 2000; i++) {
			r += big * small + keep + 100000.0;
		}
		return r;
	} }`
	res, _ := checkPreservesAndImproves(t, src, "T", "f", suggest.RuleScientificNotation)
	if res.ByRule[suggest.RuleScientificNotation] != 3 {
		t.Errorf("scientific changes = %d, want 3", res.ByRule[suggest.RuleScientificNotation])
	}
}

func TestStaticHoisting(t *testing.T) {
	src := `class T {
		static int acc = 0;
		static int f() {
			for (int i = 0; i < 5000; i++) {
				acc += i;
			}
			return acc;
		}
	}`
	res, improvement := checkPreservesAndImproves(t, src, "T", "f", suggest.RuleStaticKeyword)
	if res.ByRule[suggest.RuleStaticKeyword] != 1 {
		t.Errorf("static changes = %d, want 1", res.ByRule[suggest.RuleStaticKeyword])
	}
	if improvement < 30 {
		t.Errorf("hoist improvement = %.1f%%, want large (static is 178× local)", improvement)
	}
	// The static must still hold the final value after the call.
	out, _ := refactorSrc(t, src, suggest.RuleStaticKeyword)
	f := parse(t, out)
	prog, err := interp.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	in := interp.New(prog, energy.NewMeter(energy.DefaultCosts()), interp.WithMaxOps(10_000_000))
	if _, err := in.CallStatic("T", "f"); err != nil {
		t.Fatalf("refactored: %v\n%s", err, out)
	}
	v, err := in.CallStatic("T", "f") // second call reads written-back state
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 2*12497500 {
		t.Errorf("written-back static wrong: second call = %d, want %d", v.I, 2*12497500)
	}
}

func TestStaticHoistingSkipsMultiMethodFields(t *testing.T) {
	src := `class T {
		static int shared = 0;
		static void g() { shared++; }
		static int f() { shared++; return shared; }
	}`
	_, res := refactorSrc(t, src, suggest.RuleStaticKeyword)
	if res.Changes != 0 {
		t.Error("field touched by two methods must not be hoisted")
	}
}

func TestApplyAllRulesAtOnce(t *testing.T) {
	src := `class T {
		static double total = 0.0;
		static double f() {
			double local = 100000.0;
			String s = "";
			for (int i = 0; i < 200; i++) {
				s = s + "ab";
				total += i % 4;
				int v = i > 100 ? 2 : 1;
				total += v * local;
			}
			return total + s.length();
		}
	}`
	v0, e0 := runSrc(t, src, "T", "f")
	out, res := refactorSrc(t, src)
	v1, e1 := runSrc(t, out, "T", "f")
	// double→float narrows precision; allow small drift but same magnitude.
	r0, r1 := v0.AsF64(), v1.AsF64()
	if r1 < r0*0.99 || r1 > r0*1.01 {
		t.Errorf("combined refactor drifted: %v → %v\n%s", r0, r1, out)
	}
	if e1 >= e0 {
		t.Errorf("combined refactor did not improve: %v → %v", e0, e1)
	}
	if res.Changes < 5 {
		t.Errorf("combined changes = %d, want several", res.Changes)
	}
}
