// Degraded-mode measurement: the resilient source wrapper. The measurement
// path must degrade instead of failing — a flaky powercap read should cost
// one retry, not an aborted experiment. Resilient wraps any Source with
// bounded retry + backoff on transient errors, last-known-good interpolation
// for isolated missed reads, and fallback to a secondary source (usually the
// simulator) when the primary dies entirely, marking the discontinuity so
// reports can say which joules are estimated.
package rapl

import (
	"fmt"
	"time"
)

// Health tallies the degraded-path events a measurement source has absorbed.
// The zero value means every read succeeded on the first attempt. The JSON
// shape is part of the dist wire protocol: worker processes report their
// per-task tallies over it and the dispatcher Add-merges them, so renaming
// a field is a protocol change, not a refactor.
type Health struct {
	Reads           int `json:"reads"`           // snapshots requested by callers
	Retries         int `json:"retries"`         // re-reads issued after transient errors
	Interpolated    int `json:"interpolated"`    // reads served from the last-known-good value
	Fallbacks       int `json:"fallbacks"`       // reads served by the fallback source
	Discontinuities int `json:"discontinuities"` // primary→fallback switches (energy baseline rebased)
	Quarantined     int `json:"quarantined"`     // zones dropped after consecutive read failures
	Resets          int `json:"resets"`          // backwards counter jumps with no declared wrap range
}

// Degraded reports whether any read took a degraded path.
func (h Health) Degraded() bool {
	return h.Retries+h.Interpolated+h.Fallbacks+h.Quarantined+h.Resets > 0
}

// Add returns the field-wise sum of two health tallies.
func (h Health) Add(o Health) Health {
	return Health{
		Reads:           h.Reads + o.Reads,
		Retries:         h.Retries + o.Retries,
		Interpolated:    h.Interpolated + o.Interpolated,
		Fallbacks:       h.Fallbacks + o.Fallbacks,
		Discontinuities: h.Discontinuities + o.Discontinuities,
		Quarantined:     h.Quarantined + o.Quarantined,
		Resets:          h.Resets + o.Resets,
	}
}

// String renders the tally in the compact form the CLIs print.
func (h Health) String() string {
	return fmt.Sprintf("reads=%d retries=%d interpolated=%d fallbacks=%d quarantined=%d resets=%d discontinuities=%d",
		h.Reads, h.Retries, h.Interpolated, h.Fallbacks, h.Quarantined, h.Resets, h.Discontinuities)
}

// HealthReporter is implemented by sources that track degraded-path tallies.
// The profiler uses it to flag records measured through a degraded read.
type HealthReporter interface {
	Health() Health
}

// Add returns the per-domain sum a + b.
func (a Snapshot) Add(b Snapshot) Snapshot {
	return Snapshot{
		Package: a.Package + b.Package,
		Core:    a.Core + b.Core,
		DRAM:    a.DRAM + b.DRAM,
	}
}

// Resilient wraps a primary Source with retry, interpolation and fallback.
// Snapshots stay monotonically non-decreasing per domain through every
// degraded path: interpolation repeats the last value, and fallback readings
// are rebased onto the last good primary reading.
type Resilient struct {
	primary  Source
	fallback Source
	retries  int // extra attempts after a failed read
	maxMiss  int // consecutive failed snapshots bridged by interpolation
	backoff  func(attempt int)

	health   Health
	last     Snapshot
	haveLast bool
	misses   int

	onFallback bool
	base       Snapshot // last good primary reading at switch time
	fbBase     Snapshot // first fallback reading at switch time
}

// ResilientOption configures the wrapper.
type ResilientOption func(*Resilient)

// WithFallback supplies the source used once the primary is declared dead.
func WithFallback(src Source) ResilientOption {
	return func(r *Resilient) { r.fallback = src }
}

// WithRetries bounds the extra attempts after a failed read (default 2).
func WithRetries(n int) ResilientOption {
	return func(r *Resilient) { r.retries = n }
}

// WithMaxMisses bounds how many consecutive failed snapshots are bridged by
// last-known-good interpolation before the primary is declared dead
// (default 1: a single missed read is interpolated, a second one escalates).
func WithMaxMisses(n int) ResilientOption {
	return func(r *Resilient) { r.maxMiss = n }
}

// WithBackoff replaces the inter-retry delay (default: attempt × 500 µs).
// Tests install a recording no-op.
func WithBackoff(f func(attempt int)) ResilientOption {
	return func(r *Resilient) { r.backoff = f }
}

// NewResilient builds the wrapper around primary.
func NewResilient(primary Source, opts ...ResilientOption) *Resilient {
	r := &Resilient{
		primary: primary,
		retries: 2,
		maxMiss: 1,
		backoff: func(attempt int) { time.Sleep(time.Duration(attempt) * 500 * time.Microsecond) },
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// OnFallback reports whether the primary has died and readings now come from
// the fallback source.
func (r *Resilient) OnFallback() bool { return r.onFallback }

// Health returns this wrapper's tally merged with the primary's own
// zone-level tally when the primary reports one.
func (r *Resilient) Health() Health {
	h := r.health
	if hr, ok := r.primary.(HealthReporter); ok {
		inner := hr.Health()
		inner.Reads = 0 // the wrapper already counts caller reads
		h = h.Add(inner)
	}
	return h
}

// readWithRetry attempts src.Snapshot up to 1+retries times with backoff.
func (r *Resilient) readWithRetry(src Source) (Snapshot, error) {
	snap, err := src.Snapshot()
	for attempt := 1; err != nil && attempt <= r.retries; attempt++ {
		r.backoff(attempt)
		r.health.Retries++
		snap, err = src.Snapshot()
	}
	return snap, err
}

// Snapshot implements Source with the full degraded-path ladder:
// retry → interpolate → fall back → fail.
func (r *Resilient) Snapshot() (Snapshot, error) {
	r.health.Reads++
	if r.onFallback {
		return r.fromFallback()
	}
	snap, err := r.readWithRetry(r.primary)
	if err == nil {
		r.misses = 0
		r.last, r.haveLast = snap, true
		return snap, nil
	}
	r.misses++
	if r.misses <= r.maxMiss && r.haveLast {
		// An isolated miss: repeat the last good reading. The energy spent
		// during the gap lands on the next successful read.
		r.health.Interpolated++
		return r.last, nil
	}
	if r.fallback == nil {
		return Snapshot{}, fmt.Errorf("rapl: source failed after %d attempts with no fallback: %w", r.retries+1, err)
	}
	// The primary is dead. Switch to the fallback and rebase its readings
	// onto the last good primary value so accumulated energy stays
	// monotonic; the joules lost between the last good read and the switch
	// are gone, which Discontinuities records.
	fb, ferr := r.readWithRetry(r.fallback)
	if ferr != nil {
		return Snapshot{}, fmt.Errorf("rapl: primary dead (%v) and fallback failed: %w", err, ferr)
	}
	r.onFallback = true
	r.health.Discontinuities++
	r.health.Fallbacks++
	r.base = r.last // zero value when the primary never produced a reading
	r.fbBase = fb
	r.last = r.base
	return r.base, nil
}

// fromFallback serves a reading from the fallback source, rebased onto the
// last good primary value.
func (r *Resilient) fromFallback() (Snapshot, error) {
	fb, err := r.readWithRetry(r.fallback)
	if err != nil {
		return Snapshot{}, fmt.Errorf("rapl: fallback source failed: %w", err)
	}
	r.health.Fallbacks++
	rebased := r.base.Add(fb.Sub(r.fbBase))
	r.last = rebased
	return rebased, nil
}
