// The chaos harness: scripted or seeded node faults injected at the
// transport layer, mirroring rapl's ScriptedMSR/FaultyMSR design one level
// up the stack — there a read lies or dies, here a whole node does. The
// dispatcher never knows it is being tested; it sees exactly what a real
// crashed, hung, slow or babbling worker would produce.
package dist

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// EnvPlan returns the fault plan scripted in $JEPO_DIST_FAULTS, or nil
// when the variable is unset. CLIs install it on their dispatcher config
// so shell gates can kill and hang workers without extra flags.
func EnvPlan() (*FaultPlan, error) {
	spec := os.Getenv(FaultsEnv)
	if spec == "" {
		return nil, nil
	}
	return ParseFaultPlan(spec)
}

// FaultKind is one injected node behavior.
type FaultKind int

const (
	// FaultNone: the task passes through untouched.
	FaultNone FaultKind = iota
	// FaultKill crashes the node at the moment the task is assigned.
	FaultKill
	// FaultHang swallows the assignment: the node goes silent and only the
	// dispatcher's deadline can reclaim the task.
	FaultHang
	// FaultSlow delays the assignment's delivery.
	FaultSlow
	// FaultCorrupt lets the task run but mangles the result JSON on its
	// way back.
	FaultCorrupt
)

func (k FaultKind) String() string {
	switch k {
	case FaultKill:
		return "kill"
	case FaultHang:
		return "hang"
	case FaultSlow:
		return "slow"
	case FaultCorrupt:
		return "corrupt"
	default:
		return "none"
	}
}

// FaultRates are per-assignment probabilities for the seeded-random mode.
type FaultRates struct {
	Kill, Hang, Slow, Corrupt float64
}

// FaultPlan decides which fault, if any, strikes the nth task assigned to
// a node. Like rapl.ScriptedMSR it has a scripted mode (exact placement,
// for acceptance tests) and a seeded-random mode (rates drawn from a
// splitmix64 stream keyed by (seed, node, nth), for the differential
// fuzz). The decision is a pure function of (node, nth), so a plan is
// reusable and ordering-independent.
type FaultPlan struct {
	// Script maps node id → nth assigned task (0-based) → fault. When
	// non-nil it overrides the random mode entirely.
	Script map[int]map[int]FaultKind
	// Seed keys the random stream; Rates are the per-assignment odds.
	Seed  uint64
	Rates FaultRates
	// SlowBy is the delay FaultSlow injects (default 2ms).
	SlowBy time.Duration
}

// at resolves the fault for a node's nth assignment.
func (p *FaultPlan) at(node, nth int) FaultKind {
	if p == nil {
		return FaultNone
	}
	if p.Script != nil {
		return p.Script[node][nth]
	}
	r := p.Rates
	total := r.Kill + r.Hang + r.Slow + r.Corrupt
	if total <= 0 {
		return FaultNone
	}
	// One independent splitmix64 draw per (seed, node, nth) cell, the same
	// derivation-style rapl's faultRNG uses: no stream is shared across
	// assignments, so injection cannot depend on scheduling order.
	z := p.Seed + (uint64(node)+1)*0x9E3779B97F4A7C15 + (uint64(nth)+1)*0xD1B54A32D192ED03
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	x := float64(z>>11) / (1 << 53)
	switch {
	case x < r.Kill:
		return FaultKill
	case x < r.Kill+r.Hang:
		return FaultHang
	case x < r.Kill+r.Hang+r.Slow:
		return FaultSlow
	case x < total:
		return FaultCorrupt
	default:
		return FaultNone
	}
}

func (p *FaultPlan) slowBy() time.Duration {
	if p != nil && p.SlowBy > 0 {
		return p.SlowBy
	}
	return 2 * time.Millisecond
}

// ParseFaultPlan parses the scripted spec format the CLIs accept via
// JEPO_DIST_FAULTS: semicolon-separated "node:kind@nth" clauses, e.g.
// "1:kill@1;2:hang@0" kills node 1 on its second assigned task and hangs
// node 2 on its first.
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	script := make(map[int]map[int]FaultKind)
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		nodeStr, rest, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("dist: fault clause %q: want node:kind@nth", clause)
		}
		kindStr, nthStr, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("dist: fault clause %q: want node:kind@nth", clause)
		}
		node, err := strconv.Atoi(strings.TrimSpace(nodeStr))
		if err != nil || node < 0 {
			return nil, fmt.Errorf("dist: fault clause %q: bad node id", clause)
		}
		nth, err := strconv.Atoi(strings.TrimSpace(nthStr))
		if err != nil || nth < 0 {
			return nil, fmt.Errorf("dist: fault clause %q: bad task ordinal", clause)
		}
		var kind FaultKind
		switch strings.TrimSpace(kindStr) {
		case "kill":
			kind = FaultKill
		case "hang":
			kind = FaultHang
		case "slow":
			kind = FaultSlow
		case "corrupt":
			kind = FaultCorrupt
		default:
			return nil, fmt.Errorf("dist: fault clause %q: unknown kind %q", clause, kindStr)
		}
		if script[node] == nil {
			script[node] = make(map[int]FaultKind)
		}
		script[node][nth] = kind
	}
	if len(script) == 0 {
		return nil, fmt.Errorf("dist: empty fault spec %q", spec)
	}
	return &FaultPlan{Script: script}, nil
}

// ChaosSpawner wraps a transport with a fault plan. Faults trigger on task
// assignment: kills crash the node, hangs swallow the task and everything
// after it, slows delay delivery, corrupts mangle that task's result.
func ChaosSpawner(inner Spawner, plan *FaultPlan) Spawner {
	return func(id int) (Conn, error) {
		c, err := inner(id)
		if err != nil {
			return nil, err
		}
		return &chaosConn{inner: c, plan: plan, node: id, corrupt: make(map[int]bool)}, nil
	}
}

// chaosConn injects one node's faults.
type chaosConn struct {
	inner Conn
	plan  *FaultPlan
	node  int

	mu      sync.Mutex
	nth     int
	hung    bool
	corrupt map[int]bool
}

func (c *chaosConn) Send(m *Message) error {
	if m.Type != MsgTask {
		return c.inner.Send(m)
	}
	c.mu.Lock()
	kind := c.plan.at(c.node, c.nth)
	c.nth++
	switch kind {
	case FaultKill:
		c.mu.Unlock()
		return c.inner.Kill()
	case FaultHang:
		c.hung = true
		c.mu.Unlock()
		// The assignment vanishes: the worker never sees it, the
		// dispatcher sees silence until its deadline fires.
		return nil
	case FaultCorrupt:
		c.corrupt[m.Index] = true
		c.mu.Unlock()
		return c.inner.Send(m)
	case FaultSlow:
		c.mu.Unlock()
		time.Sleep(c.plan.slowBy())
		return c.inner.Send(m)
	default:
		c.mu.Unlock()
		return c.inner.Send(m)
	}
}

func (c *chaosConn) Recv() (*Message, error) {
	for {
		m, err := c.inner.Recv()
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		if c.hung {
			// A hung node emits nothing, ever.
			c.mu.Unlock()
			continue
		}
		if m.Type == MsgResult && c.corrupt[m.Index] {
			delete(c.corrupt, m.Index)
			c.mu.Unlock()
			m.Result = json.RawMessage(`{"truncated mid-wr`)
			return m, nil
		}
		c.mu.Unlock()
		return m, nil
	}
}

func (c *chaosConn) Close() error { return c.inner.Close() }
func (c *chaosConn) Kill() error  { return c.inner.Kill() }
