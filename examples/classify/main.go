// Classify example: the WEKA substrate on its own — train all ten paper
// classifiers on the synthetic MOA airlines data under stratified 10-fold
// cross-validation, in both double and single precision, and print the
// accuracy table the paper's accuracy-drop column derives from.
package main

import (
	"fmt"
	"log"

	"jepo/internal/airlines"
	"jepo/internal/classify"
	"jepo/internal/classify/eval"
	"jepo/internal/corpus"
	"jepo/internal/tables"
)

func main() {
	const instances = 1500
	const folds = 10
	data := airlines.Generate(instances, 42)
	maj := 100 * float64(data.ClassCounts()[data.MajorityClass()]) / float64(data.NumInstances())
	fmt.Printf("airlines: %d instances, majority class %.2f%%\n\n", instances, maj)
	fmt.Printf("%-14s %12s %12s %10s\n", "Classifier", "double (%)", "float (%)", "drop (%)")

	for _, name := range corpus.Classifiers {
		dbl, err := tables.Factory(name, classify.Options{Seed: 7, FP: classify.Double})
		if err != nil {
			log.Fatal(err)
		}
		sgl, err := tables.Factory(name, classify.Options{Seed: 7, FP: classify.Single})
		if err != nil {
			log.Fatal(err)
		}
		rd, err := eval.CrossValidate(data, folds, 7, dbl)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		rs, err := eval.CrossValidate(data, folds, 7, sgl)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-14s %12.2f %12.2f %10.2f\n",
			name, rd.Accuracy(), rs.Accuracy(), rd.Accuracy()-rs.Accuracy())
	}
	fmt.Println("\n(the paper's Table IV reports drops of at most 0.48%)")
}
