// The dispatch ledger: a JSON checkpoint of every committed task result,
// written atomically and throttled, so a dispatcher crash mid-campaign
// resumes from the completed prefix instead of re-measuring. The ledger is
// keyed by (kind, seed, task count, params hash); a stale or corrupt file
// is ignored, never trusted — the same contract tables' row checkpoints
// follow.
package dist

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"jepo/internal/rapl"
)

// AtomicWriteFile writes data to path via a temp file in the same
// directory plus rename, so readers never observe a torn write: they see
// the old bytes or the new bytes, never a truncated file. Checkpoint
// writers throughout the repo use this to keep a mid-write death from
// poisoning resume.
func AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// ledgerEntry is one committed task: its result bytes and the health tally
// that came with them.
type ledgerEntry struct {
	Result json.RawMessage `json:"result"`
	Health rapl.Health     `json:"health"`
}

// ledgerDoc is the on-disk shape.
type ledgerDoc struct {
	Kind      string                 `json:"kind"`
	Seed      uint64                 `json:"seed"`
	Tasks     int                    `json:"tasks"`
	ParamsSum string                 `json:"params_sha256"`
	Done      map[string]ledgerEntry `json:"done"`
}

// ledgerState manages one campaign's checkpoint file.
type ledgerState struct {
	path     string
	doc      ledgerDoc
	dirty    bool
	lastSave time.Time
}

// paramsSum fingerprints the campaign parameters.
func paramsSum(params []byte) string {
	sum := sha256.Sum256(params)
	return hex.EncodeToString(sum[:])
}

// openLedger loads (or initializes) the checkpoint at path. A file that
// exists but does not match this campaign's identity is discarded with a
// note — resuming from someone else's ledger would silently splice wrong
// results into the merge.
func openLedger(path, kind string, seed uint64, tasks int, params []byte, onEvent func(string)) *ledgerState {
	l := &ledgerState{
		path: path,
		doc: ledgerDoc{
			Kind:      kind,
			Seed:      seed,
			Tasks:     tasks,
			ParamsSum: paramsSum(params),
			Done:      make(map[string]ledgerEntry),
		},
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return l
	}
	var prev ledgerDoc
	if err := json.Unmarshal(blob, &prev); err != nil ||
		prev.Kind != kind || prev.Seed != seed || prev.Tasks != tasks || prev.ParamsSum != l.doc.ParamsSum {
		if onEvent != nil {
			onEvent(fmt.Sprintf("dist: checkpoint %s does not match this campaign; starting fresh", path))
		}
		return l
	}
	for key, e := range prev.Done {
		idx, err := strconv.Atoi(key)
		if err != nil || idx < 0 || idx >= tasks || !json.Valid(e.Result) {
			continue
		}
		l.doc.Done[key] = e
	}
	return l
}

// replay hands every checkpointed result to fn in no particular order; the
// caller's state merge imposes index order.
func (l *ledgerState) replay(fn func(index int, e ledgerEntry)) {
	for key, e := range l.doc.Done {
		idx, _ := strconv.Atoi(key)
		fn(idx, e)
	}
}

// add records one committed task.
func (l *ledgerState) add(index int, result json.RawMessage, health rapl.Health) {
	l.doc.Done[strconv.Itoa(index)] = ledgerEntry{Result: result, Health: health}
	l.dirty = true
}

// maybeSave persists if enough has changed since the last write; the
// throttle keeps checkpointing off the campaign's critical path.
func (l *ledgerState) maybeSave() {
	if !l.dirty || time.Since(l.lastSave) < 500*time.Millisecond {
		return
	}
	l.save()
}

// save persists unconditionally (atomic write). Errors are deliberately
// swallowed after first report — a checkpoint that cannot be written
// degrades resume, not the campaign.
func (l *ledgerState) save() error {
	if !l.dirty {
		return nil
	}
	blob, err := json.MarshalIndent(l.doc, "", "  ")
	if err != nil {
		return err
	}
	if err := AtomicWriteFile(l.path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	l.dirty = false
	l.lastSave = time.Now()
	return nil
}
