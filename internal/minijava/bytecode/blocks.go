package bytecode

import (
	"jepo/internal/energy"
	"jepo/internal/minijava/ast"
)

// This file is the tier-2 post-compilation pass: basic-block partitioning,
// block charge pre-aggregation and compile-time quickening. Finalize runs
// after probe injection (probes are block boundaries — the profiler snapshots
// the meter at them, so no charge may move across one) and rewrites Func.Code
// while keeping the original stream in Func.Raw for the tier-1 baseline.
//
// The aggregation is exact by construction, not by approximation:
//
//   - Only maximal runs of provably non-throwing, statically-known
//     instructions are folded (OpNop, OpStep, OpCharge, OpConst, OpPushBool).
//     Nothing in a run can observe the meter or the op counter mid-run, so
//     charging the whole run on entry is indistinguishable from charging it
//     instruction by instruction.
//   - A run never contains a basic-block leader after its first instruction:
//     control can only enter at the OpRunCharge, never into the middle of an
//     already-charged region.
//   - The recorded charges are one entry per original Step call, in original
//     order. They are replayed, not summed: Joules accumulate in float64 and
//     float addition is not associative.
//   - The summed step count is checked against the op budget once per run,
//     the same granularity class as the compiler's existing folding of
//     step-only prefixes into Instr.Steps.

// isJump reports whether op transfers control via the A offset.
func isJump(op Op) bool {
	switch op {
	case OpJmp, OpJmpBranch, OpJmpFalse, OpJmpTrue,
		OpJmpCmpLLFalse, OpJmpCmpLLTrue, OpJmpCmpLCFalse, OpJmpCmpLCTrue,
		OpJmpCmpFalse, OpJmpCmpTrue, OpCaseCmp, OpSwitchEnd:
		return true
	}
	return false
}

// runFoldable reports whether an instruction may join a charge run: it must
// be unable to throw, unable to observe the meter or op counter, and its
// charges must be known at compile time.
func runFoldable(ins *Instr) bool {
	switch ins.Op {
	case OpNop, OpStep, OpCharge, OpConst, OpPushBool:
		return true
	}
	return false
}

// Finalize rewrites a compiled (and probe-injected) function into its tier-2
// form: leaders are computed, charge runs are folded into OpRunCharge,
// load-resolved identifier reads are quickened at compile time, jump offsets
// are remapped onto the shorter stream, and inline-cache slots are numbered.
// The incoming stream is preserved as fn.Raw.
func Finalize(fn *Func) {
	fn.Raw = fn.Code
	code := fn.Code
	n := len(code)

	// Basic-block leaders: entry, jump targets, fall-throughs after jumps
	// and terminators, and probe opcodes (measurement seams).
	leader := make([]bool, n+1)
	leader[0] = true
	for pc := range code {
		ins := &code[pc]
		switch {
		case isJump(ins.Op):
			leader[pc+int(ins.A)] = true
			leader[pc+1] = true
		case ins.Op == OpRet || ins.Op == OpRetVoid || ins.Op == OpThrow:
			leader[pc+1] = true
		case ins.Op == OpProbeEnter || ins.Op == OpProbeExit:
			leader[pc] = true
			leader[pc+1] = true
		}
	}

	newCode := make([]Instr, 0, n)
	oldOf := make([]int, 0, n) // old pc of each new instruction
	remap := make([]int32, n+1)
	var runs []ChargeRun
	pc := 0
	for pc < n {
		// Maximal foldable run starting here, stopped at block leaders.
		end := pc
		for end < n && runFoldable(&code[end]) && (end == pc || !leader[end]) {
			end++
		}
		nonPush := 0
		for i := pc; i < end; i++ {
			switch code[i].Op {
			case OpNop, OpStep, OpCharge:
				nonPush++
			}
		}
		if end-pc >= 2 && nonPush >= 1 {
			// Jump targets only ever point at run starts (interior leaders
			// break runs), so remapping every folded pc to the OpRunCharge
			// is total.
			for i := pc; i < end; i++ {
				remap[i] = int32(len(newCode))
			}
			var run ChargeRun
			for i := pc; i < end; i++ {
				ins := &code[i]
				run.Steps += int32(ins.Steps)
				switch ins.Op {
				case OpCharge:
					run.Charges = append(run.Charges, energy.Charge{Op: energy.Op(ins.A), N: ins.B})
				case OpConst:
					if op, ok := LiteralCharge(fn.Consts[ins.A]); ok {
						run.Charges = append(run.Charges, energy.Charge{Op: op, N: 1})
					}
				}
			}
			newCode = append(newCode, Instr{Op: OpRunCharge, A: int32(len(runs))})
			oldOf = append(oldOf, pc)
			runs = append(runs, run)
			// The pushes survive, charge-free and step-free, in original
			// order. Order relative to the folded charges is unobservable:
			// pushes never touch the meter.
			for i := pc; i < end; i++ {
				ins := &code[i]
				switch ins.Op {
				case OpConst:
					newCode = append(newCode, Instr{Op: OpQConst, A: ins.A, Node: ins.Node})
					oldOf = append(oldOf, i)
				case OpPushBool:
					newCode = append(newCode, Instr{Op: OpPushBool, A: ins.A, Node: ins.Node})
					oldOf = append(oldOf, i)
				}
			}
			pc = end
			continue
		}
		ins := code[pc]
		switch ins.Op {
		case OpLoadIdent:
			// Compile-time quickening: the resolver already pinned these
			// loads; the guards stay in the handlers (out-of-range index,
			// static context) and deopt to the full identifier ladder.
			if id, ok := ins.Node.(*ast.Ident); ok {
				switch {
				case id.RKind == ast.ResStaticRef && id.RIx >= 0:
					ins.Op, ins.A = OpQLoadStatic, id.RIx
				case id.RKind == ast.ResField && id.RIx >= 0:
					ins.Op, ins.A = OpQLoadField, id.RIx
				}
			}
		case OpStoreIdent, OpStoreIdentX:
			// Same pins for the store side; the X forms keep the value.
			if id, ok := ins.Node.(*ast.Ident); ok {
				x := ins.Op == OpStoreIdentX
				switch {
				case id.RKind == ast.ResStaticRef && id.RIx >= 0:
					ins.Op, ins.A = OpQStoreStatic, id.RIx
					if x {
						ins.Op = OpQStoreStaticX
					}
				case id.RKind == ast.ResField && id.RIx >= 0:
					ins.Op, ins.A = OpQStoreField, id.RIx
					if x {
						ins.Op = OpQStoreFieldX
					}
				}
			}
		}
		remap[pc] = int32(len(newCode))
		newCode = append(newCode, ins)
		oldOf = append(oldOf, pc)
		pc++
	}
	remap[n] = int32(len(newCode))

	// Retarget jumps through the old→new pc map.
	for i := range newCode {
		ins := &newCode[i]
		if isJump(ins.Op) {
			ins.A = remap[oldOf[i]+int(ins.A)] - int32(i)
		}
	}

	// Record block leaders in new coordinates for the disassembler.
	var blocks []int32
	last := int32(-1)
	for old := 0; old < n; old++ {
		if leader[old] {
			if np := remap[old]; np != last {
				blocks = append(blocks, np)
				last = np
			}
		}
	}

	// Number the inline-cache slots runtime quickening patches through.
	var ics int32
	for i := range newCode {
		switch newCode[i].Op {
		case OpCall, OpLoadSelect, OpLoadIdent:
			newCode[i].C = ics
			ics++
		}
	}

	fn.Code, fn.Runs, fn.Blocks, fn.NICs = newCode, runs, blocks, ics
}
