package interp

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"jepo/internal/energy"
	"jepo/internal/minijava/token"
)

// isBuiltinClass reports whether a name denotes a class the runtime provides.
func isBuiltinClass(name string) bool {
	switch name {
	case "System", "Math", "String", "StringBuilder", "Object", "JEPO":
		return true
	}
	return wrapperKind(name) != KVoid || IsExceptionClass(name)
}

// builtinStaticField resolves constants like Integer.MAX_VALUE.
func builtinStaticField(class, name string) (Value, bool) {
	switch class {
	case "Integer":
		switch name {
		case "MAX_VALUE":
			return IntVal(math.MaxInt32), true
		case "MIN_VALUE":
			return IntVal(math.MinInt32), true
		}
	case "Long":
		switch name {
		case "MAX_VALUE":
			return LongVal(math.MaxInt64), true
		case "MIN_VALUE":
			return LongVal(math.MinInt64), true
		}
	case "Double":
		switch name {
		case "MAX_VALUE":
			return DoubleVal(math.MaxFloat64), true
		case "MIN_VALUE":
			return DoubleVal(4.9e-324), true
		case "POSITIVE_INFINITY":
			return DoubleVal(math.Inf(1)), true
		case "NEGATIVE_INFINITY":
			return DoubleVal(math.Inf(-1)), true
		case "NaN":
			return DoubleVal(math.NaN()), true
		}
	case "Float":
		switch name {
		case "MAX_VALUE":
			return FloatVal(math.MaxFloat32), true
		case "POSITIVE_INFINITY":
			return FloatVal(math.Inf(1)), true
		}
	case "Math":
		switch name {
		case "PI":
			return DoubleVal(math.Pi), true
		case "E":
			return DoubleVal(math.E), true
		}
	case "Short":
		switch name {
		case "MAX_VALUE":
			return ShortVal(math.MaxInt16), true
		case "MIN_VALUE":
			return ShortVal(math.MinInt16), true
		}
	case "Byte":
		switch name {
		case "MAX_VALUE":
			return ByteVal(math.MaxInt8), true
		case "MIN_VALUE":
			return ByteVal(math.MinInt8), true
		}
	}
	return Value{}, false
}

// constructBuiltin handles `new` of runtime-provided classes.
func (in *Interp) constructBuiltin(name string, args []Value, pos token.Pos) Value {
	switch {
	case name == "StringBuilder":
		in.meter.Step(energy.OpAllocObject, 1)
		sb := &SB{Base: in.meter.Alloc(32)}
		if len(args) == 1 && args[0].K == KString {
			s := args[0].Str()
			in.meter.Step(energy.OpSBAppendChar, len(s))
			sb.B.WriteString(s)
		}
		return Value{K: KSB, R: sb}
	case name == "Object":
		in.meter.Step(energy.OpAllocObject, 1)
		return Value{K: KRef, R: &Object{Class: &classInfo{Name: "Object"}, Base: in.meter.Alloc(16)}}
	case name == "String":
		in.meter.Step(energy.OpAllocObject, 1)
		if len(args) == 1 && args[0].K == KString {
			return args[0]
		}
		return StringVal("")
	case wrapperKind(name) != KVoid:
		if len(args) != 1 {
			in.bugf(pos, "wrapper constructor %s takes one argument", name)
		}
		// `new Integer(v)` always allocates, unlike valueOf.
		in.meter.Step(energy.OpBoxAlloc, 1)
		prim := in.coerceTo(args[0], typeOfKind(wrapperKind(name)), pos)
		return Value{K: KBox, R: &Box{Class: name, V: prim, Base: in.meter.Alloc(16)}}
	case IsExceptionClass(name):
		in.meter.Step(energy.OpAllocObject, 1)
		msg := ""
		if len(args) >= 1 && args[0].K == KString {
			msg = args[0].Str()
		}
		return Value{K: KThrow, R: &Throwable{Class: name, Msg: msg}}
	}
	in.bugf(pos, "unknown class %s", name)
	return Value{}
}

// callBuiltinStatic dispatches static calls on runtime classes.
func (in *Interp) callBuiltinStatic(class, name string, args []Value, pos token.Pos) (Value, bool) {
	switch class {
	case "System":
		return in.systemCall(name, args, pos)
	case "Math":
		return in.mathCall(name, args, pos)
	case "JEPO":
		return in.jepoCall(name, args, pos)
	case "String":
		if name == "valueOf" && len(args) == 1 {
			s := args[0].JavaString()
			in.meter.Step(energy.OpStrSetup, 1)
			in.meter.Step(energy.OpStrConcatChar, len(s))
			return StringVal(s), true
		}
	case "Integer":
		switch name {
		case "valueOf":
			if len(args) == 1 {
				return in.box("Integer", args[0], pos), true
			}
		case "parseInt":
			if len(args) == 1 && args[0].K == KString {
				return in.parseIntegral(args[0].Str(), 32, pos), true
			}
		case "toString":
			if len(args) == 1 {
				return in.stringValueOf(args[0]), true
			}
		case "max":
			if len(args) == 2 {
				in.meter.Step(energy.OpArithInt, 1)
				return IntVal(maxI(args[0].AsI64(), args[1].AsI64())), true
			}
		case "min":
			if len(args) == 2 {
				in.meter.Step(energy.OpArithInt, 1)
				return IntVal(minI(args[0].AsI64(), args[1].AsI64())), true
			}
		}
	case "Long":
		switch name {
		case "valueOf":
			if len(args) == 1 {
				return in.box("Long", args[0], pos), true
			}
		case "parseLong":
			if len(args) == 1 && args[0].K == KString {
				return in.parseIntegral(args[0].Str(), 64, pos), true
			}
		}
	case "Double":
		switch name {
		case "valueOf":
			if len(args) == 1 {
				return in.box("Double", args[0], pos), true
			}
		case "parseDouble":
			if len(args) == 1 && args[0].K == KString {
				s := strings.TrimSpace(args[0].Str())
				in.meter.Step(energy.OpArithDouble, len(s))
				d, err := strconv.ParseFloat(s, 64)
				if err != nil {
					in.throw("NumberFormatException", "For input string: \""+s+"\"")
				}
				return DoubleVal(d), true
			}
		case "isNaN":
			if len(args) == 1 {
				in.meter.Step(energy.OpArithDouble, 1)
				return BoolVal(math.IsNaN(args[0].AsF64())), true
			}
		case "isInfinite":
			if len(args) == 1 {
				in.meter.Step(energy.OpArithDouble, 1)
				return BoolVal(math.IsInf(args[0].AsF64(), 0)), true
			}
		}
	case "Float", "Short", "Byte", "Character", "Boolean":
		if name == "valueOf" && len(args) == 1 {
			return in.box(class, args[0], pos), true
		}
	}
	return Value{}, false
}

func (in *Interp) stringValueOf(v Value) Value {
	s := v.JavaString()
	in.meter.Step(energy.OpStrSetup, 1)
	in.meter.Step(energy.OpStrConcatChar, len(s))
	return StringVal(s)
}

func (in *Interp) parseIntegral(s string, bits int, pos token.Pos) Value {
	t := strings.TrimSpace(s)
	in.meter.Step(energy.OpArithInt, len(t)+1)
	v, err := strconv.ParseInt(t, 10, bits)
	if err != nil {
		in.throw("NumberFormatException", "For input string: \""+s+"\"")
	}
	if bits == 32 {
		return IntVal(v)
	}
	return LongVal(v)
}

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func (in *Interp) systemCall(name string, args []Value, pos token.Pos) (Value, bool) {
	switch name {
	case "arraycopy":
		if len(args) != 5 {
			in.bugf(pos, "System.arraycopy takes 5 arguments")
		}
		in.arraycopy(args, pos)
		return Value{K: KVoid}, true
	case "currentTimeMillis":
		ms := in.meter.Snapshot().Elapsed.Milliseconds()
		return LongVal(ms), true
	case "nanoTime":
		return LongVal(in.meter.Snapshot().Elapsed.Nanoseconds()), true
	}
	return Value{}, false
}

// arraycopy is the block copy Table I's "Arrays copy" row recommends: one
// cheap per-element charge plus two streaming cache passes, versus the load/
// store/branch/bounds sequence a manual loop pays.
func (in *Interp) arraycopy(args []Value, pos token.Pos) {
	src, dst := args[0], args[2]
	if src.K == KNull || dst.K == KNull {
		in.throw("NullPointerException", "arraycopy on null array")
	}
	if src.K != KArr || dst.K != KArr {
		in.bugf(pos, "arraycopy on non-arrays")
	}
	sa, da := src.R.(*Array), dst.R.(*Array)
	sp, dp, n := int(args[1].AsI64()), int(args[3].AsI64()), int(args[4].AsI64())
	if n < 0 || sp < 0 || dp < 0 || sp+n > sa.Len() || dp+n > da.Len() {
		in.throw("ArrayIndexOutOfBoundsException",
			fmt.Sprintf("arraycopy: last source index %d out of bounds for length %d", sp+n, sa.Len()))
	}
	if sa.Kind != da.Kind {
		in.throw("ArrayStoreException", "incompatible array types")
	}
	in.meter.Step(energy.OpArraycopyElem, n)
	if n > 0 {
		in.meter.Access(sa.addr(sp), n*sa.ES)
		in.meter.Access(da.addr(dp), n*da.ES)
	}
	switch sa.Kind {
	case KInt, KLong, KShort, KByte, KChar, KBool:
		copy(da.I[dp:dp+n], sa.I[sp:sp+n])
	case KFloat, KDouble:
		copy(da.D[dp:dp+n], sa.D[sp:sp+n])
	default:
		copy(da.R[dp:dp+n], sa.R[sp:sp+n])
	}
}

func (in *Interp) mathCall(name string, args []Value, pos token.Pos) (Value, bool) {
	one := func() float64 { return args[0].AsF64() }
	charge := func(n int) { in.meter.Step(energy.OpArithDouble, n) }
	switch name {
	case "sqrt":
		charge(4)
		return DoubleVal(math.Sqrt(one())), true
	case "log":
		charge(8)
		return DoubleVal(math.Log(one())), true
	case "exp":
		charge(8)
		return DoubleVal(math.Exp(one())), true
	case "pow":
		charge(10)
		return DoubleVal(math.Pow(args[0].AsF64(), args[1].AsF64())), true
	case "floor":
		charge(1)
		return DoubleVal(math.Floor(one())), true
	case "ceil":
		charge(1)
		return DoubleVal(math.Ceil(one())), true
	case "round":
		charge(1)
		return LongVal(int64(math.Floor(one() + 0.5))), true
	case "random":
		charge(2)
		return DoubleVal(in.nextRandom()), true
	case "abs":
		v := args[0]
		if v.K == KBox {
			v = in.unbox(v, pos)
		}
		in.chargeArith(v.K, token.Plus)
		switch v.K {
		case KFloat:
			return FloatVal(math.Abs(v.D)), true
		case KDouble:
			return DoubleVal(math.Abs(v.D)), true
		case KLong:
			if v.I < 0 {
				return LongVal(-v.I), true
			}
			return v, true
		default:
			if v.I < 0 {
				return IntVal(-v.I), true
			}
			return IntVal(v.I), true
		}
	case "max", "min":
		a, b := args[0], args[1]
		if a.K == KBox {
			a = in.unbox(a, pos)
		}
		if b.K == KBox {
			b = in.unbox(b, pos)
		}
		k := promote(a.K, b.K)
		in.chargeArith(k, token.Lt)
		bigger := compare(token.Gt, a, b, k)
		pick := a
		if (name == "max") != bigger {
			pick = b
		}
		switch k {
		case KDouble:
			return DoubleVal(pick.AsF64()), true
		case KFloat:
			return FloatVal(pick.AsF64()), true
		case KLong:
			return LongVal(pick.AsI64()), true
		default:
			return IntVal(pick.AsI64()), true
		}
	}
	return Value{}, false
}

// nextRandom is a deterministic SplitMix64 stream so runs are reproducible.
func (in *Interp) nextRandom() float64 {
	in.rngInt += 0x9E3779B97F4A7C15
	z := in.rngInt
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

func (in *Interp) jepoCall(name string, args []Value, pos token.Pos) (Value, bool) {
	switch name {
	case "enter", "exit":
		if len(args) != 1 || args[0].K != KString {
			in.bugf(pos, "JEPO.%s takes one String", name)
		}
		if in.hook != nil {
			if name == "enter" {
				in.hook.Enter(args[0].Str())
			} else {
				in.hook.Exit(args[0].Str())
			}
		}
		return Value{K: KVoid}, true
	}
	return Value{}, false
}

// callBuiltinInstance dispatches method calls on runtime value kinds.
func (in *Interp) callBuiltinInstance(recv Value, name string, args []Value, pos token.Pos) (Value, bool) {
	switch recv.K {
	case KClassRef:
		if recv.R.(string) == "System.out" {
			return in.printCall(name, args, pos)
		}
	case KString:
		return in.stringCall(recv.Str(), name, args, pos)
	case KSB:
		return in.sbCall(recv, name, args, pos)
	case KBox:
		return in.boxCall(recv.R.(*Box), name, args, pos)
	case KThrow:
		t := recv.R.(*Throwable)
		switch name {
		case "getMessage":
			in.meter.Step(energy.OpField, 1)
			return StringVal(t.Msg), true
		case "toString":
			return in.stringValueOf(recv), true
		}
	case KArr:
		// Arrays have no methods in the dialect.
	}
	return Value{}, false
}

func (in *Interp) printCall(name string, args []Value, pos token.Pos) (Value, bool) {
	switch name {
	case "println", "print":
		s := ""
		if len(args) == 1 {
			s = args[0].JavaString()
		} else if len(args) > 1 {
			in.bugf(pos, "println takes at most one argument")
		}
		in.meter.Step(energy.OpStrSetup, 1)
		in.meter.Step(energy.OpSBAppendChar, len(s))
		in.out.WriteString(s)
		if name == "println" {
			in.out.WriteByte('\n')
		}
		return Value{K: KVoid}, true
	}
	return Value{}, false
}

func (in *Interp) stringCall(s, name string, args []Value, pos token.Pos) (Value, bool) {
	switch name {
	case "length":
		in.meter.Step(energy.OpField, 1)
		return IntVal(int64(len(s))), true
	case "isEmpty":
		in.meter.Step(energy.OpArithInt, 1)
		return BoolVal(len(s) == 0), true
	case "charAt":
		in.meter.Step(energy.OpArrayElem, 1)
		in.meter.Step(energy.OpBoundsCheck, 1)
		i := int(args[0].AsI64())
		if i < 0 || i >= len(s) {
			in.throw("StringIndexOutOfBoundsException", fmt.Sprintf("index %d, length %d", i, len(s)))
		}
		return CharVal(int64(s[i])), true
	case "equals":
		in.meter.Step(energy.OpStrSetup, 1)
		if len(args) != 1 {
			in.bugf(pos, "equals takes one argument")
		}
		o := args[0]
		if o.K != KString {
			return BoolVal(false), true
		}
		t := o.Str()
		if len(s) != len(t) {
			// Length check short-circuits: no per-char cost at all.
			return BoolVal(false), true
		}
		n := 0
		eq := true
		for i := 0; i < len(s); i++ {
			n++
			if s[i] != t[i] {
				eq = false
				break
			}
		}
		in.meter.Step(energy.OpStrEqualsChar, n)
		return BoolVal(eq), true
	case "compareTo":
		in.meter.Step(energy.OpStrSetup, 1)
		in.meter.Step(energy.OpStrSetup, 1) // compareTo's heavier setup
		if len(args) != 1 || args[0].K != KString {
			in.bugf(pos, "compareTo takes one String")
		}
		t := args[0].Str()
		n := 0
		res := 0
		for i := 0; i < len(s) && i < len(t); i++ {
			n++
			if s[i] != t[i] {
				res = int(s[i]) - int(t[i])
				break
			}
		}
		if res == 0 {
			res = len(s) - len(t)
		}
		in.meter.Step(energy.OpStrCompareToChar, n)
		return IntVal(int64(res)), true
	case "substring":
		in.meter.Step(energy.OpStrSetup, 1)
		lo := int(args[0].AsI64())
		hi := len(s)
		if len(args) == 2 {
			hi = int(args[1].AsI64())
		}
		if lo < 0 || hi > len(s) || lo > hi {
			in.throw("StringIndexOutOfBoundsException",
				fmt.Sprintf("begin %d, end %d, length %d", lo, hi, len(s)))
		}
		in.meter.Step(energy.OpStrConcatChar, hi-lo)
		return StringVal(s[lo:hi]), true
	case "indexOf":
		in.meter.Step(energy.OpStrSetup, 1)
		if len(args) == 1 && args[0].K == KString {
			in.meter.Step(energy.OpStrEqualsChar, len(s))
			return IntVal(int64(strings.Index(s, args[0].Str()))), true
		}
		if len(args) == 1 && args[0].K.IsIntegral() {
			in.meter.Step(energy.OpStrEqualsChar, len(s))
			return IntVal(int64(strings.IndexByte(s, byte(args[0].I)))), true
		}
	case "concat":
		if len(args) == 1 && args[0].K == KString {
			return in.binary(token.Plus, StringVal(s), args[0], pos), true
		}
	case "toString":
		in.meter.Step(energy.OpLocal, 1)
		return StringVal(s), true
	case "hashCode":
		in.meter.Step(energy.OpArithInt, len(s))
		var h int32
		for i := 0; i < len(s); i++ {
			h = 31*h + int32(s[i])
		}
		return IntVal(int64(h)), true
	case "startsWith":
		if len(args) == 1 && args[0].K == KString {
			p := args[0].Str()
			in.meter.Step(energy.OpStrSetup, 1)
			in.meter.Step(energy.OpStrEqualsChar, min(len(p), len(s)))
			return BoolVal(strings.HasPrefix(s, p)), true
		}
	case "trim":
		in.meter.Step(energy.OpStrSetup, 1)
		in.meter.Step(energy.OpStrEqualsChar, len(s))
		return StringVal(strings.TrimSpace(s)), true
	}
	return Value{}, false
}

func (in *Interp) sbCall(recv Value, name string, args []Value, pos token.Pos) (Value, bool) {
	sb := recv.R.(*SB)
	switch name {
	case "append":
		if len(args) != 1 {
			in.bugf(pos, "append takes one argument")
		}
		s := args[0].JavaString()
		in.meter.Step(energy.OpSBAppendChar, len(s))
		sb.B.WriteString(s)
		return recv, true // fluent: return the builder itself
	case "toString":
		s := sb.B.String()
		in.meter.Step(energy.OpStrSetup, 1)
		in.meter.Step(energy.OpStrConcatChar, len(s))
		return StringVal(s), true
	case "length":
		in.meter.Step(energy.OpField, 1)
		return IntVal(int64(sb.B.Len())), true
	case "setLength":
		if len(args) == 1 && args[0].AsI64() == 0 {
			in.meter.Step(energy.OpField, 1)
			sb.B.Reset()
			return Value{K: KVoid}, true
		}
	}
	return Value{}, false
}

func (in *Interp) boxCall(b *Box, name string, args []Value, pos token.Pos) (Value, bool) {
	switch name {
	case "intValue":
		in.meter.Step(energy.OpUnbox, 1)
		return IntVal(b.V.AsI64()), true
	case "longValue":
		in.meter.Step(energy.OpUnbox, 1)
		return LongVal(b.V.AsI64()), true
	case "doubleValue":
		in.meter.Step(energy.OpUnbox, 1)
		return DoubleVal(b.V.AsF64()), true
	case "floatValue":
		in.meter.Step(energy.OpUnbox, 1)
		return FloatVal(b.V.AsF64()), true
	case "shortValue":
		in.meter.Step(energy.OpUnbox, 1)
		return ShortVal(b.V.AsI64()), true
	case "byteValue":
		in.meter.Step(energy.OpUnbox, 1)
		return ByteVal(b.V.AsI64()), true
	case "booleanValue":
		in.meter.Step(energy.OpUnbox, 1)
		return BoolVal(b.V.I != 0), true
	case "charValue":
		in.meter.Step(energy.OpUnbox, 1)
		return CharVal(b.V.I), true
	case "equals":
		in.meter.Step(energy.OpArithInt, 2)
		if len(args) == 1 && args[0].K == KBox {
			o := args[0].R.(*Box)
			return BoolVal(b.Class == o.Class && b.V == o.V), true
		}
		return BoolVal(false), true
	case "compareTo":
		in.meter.Step(energy.OpArithInt, 2)
		if len(args) == 1 && args[0].K == KBox {
			o := args[0].R.(*Box)
			a, c := b.V.AsF64(), o.V.AsF64()
			switch {
			case a < c:
				return IntVal(-1), true
			case a > c:
				return IntVal(1), true
			default:
				return IntVal(0), true
			}
		}
	case "toString":
		return in.stringValueOf(b.V), true
	}
	return Value{}, false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
