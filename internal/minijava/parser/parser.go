// Package parser implements a recursive-descent parser for the mini-Java
// dialect. It produces the AST consumed by the suggestion engine, the
// refactorer, the instrumenter, the metrics analyzer and the interpreter.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/lexer"
	"jepo/internal/minijava/token"
)

// Error is a syntax error with its position.
type Error struct {
	Path string
	Pos  token.Pos
	Msg  string
}

func (e *Error) Error() string {
	if e.Path != "" {
		return fmt.Sprintf("%s:%s: %s", e.Path, e.Pos, e.Msg)
	}
	return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
}

// Parse parses one compilation unit. path is recorded on the File for
// diagnostics and suggestions.
func Parse(path, src string) (*ast.File, error) {
	toks, err := lexer.Scan(src)
	if err != nil {
		if le, ok := err.(*lexer.Error); ok {
			return nil, &Error{Path: path, Pos: le.Pos, Msg: le.Msg}
		}
		return nil, err
	}
	p := &parser{path: path, toks: toks}
	return p.parseFile()
}

type parser struct {
	path string
	toks []token.Token
	i    int
}

func (p *parser) cur() token.Token { return p.toks[p.i] }
func (p *parser) peek(n int) token.Token {
	if p.i+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.i+n]
}

func (p *parser) next() token.Token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k token.Kind) (token.Token, error) {
	if !p.at(k) {
		return token.Token{}, p.errf("expected %v, found %v %q", k, p.cur().Kind, p.cur().Text)
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{Path: p.path, Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

// --- declarations ---

func (p *parser) parseFile() (*ast.File, error) {
	f := &ast.File{Path: p.path}
	if p.accept(token.KwPackage) {
		name, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		f.Package = name
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
	}
	for p.accept(token.KwImport) {
		name, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		f.Imports = append(f.Imports, name)
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
	}
	for !p.at(token.EOF) {
		c, err := p.parseClass()
		if err != nil {
			return nil, err
		}
		f.Classes = append(f.Classes, c)
	}
	return f, nil
}

func (p *parser) qualifiedName() (string, error) {
	t, err := p.expect(token.IDENT)
	if err != nil {
		return "", err
	}
	name := t.Text
	for p.accept(token.Dot) {
		if p.accept(token.Star) {
			name += ".*"
			break
		}
		t, err := p.expect(token.IDENT)
		if err != nil {
			return "", err
		}
		name += "." + t.Text
	}
	return name, nil
}

func (p *parser) parseModifiers() ast.Modifiers {
	var m ast.Modifiers
	for {
		switch p.cur().Kind {
		case token.KwPublic:
			m |= ast.ModPublic
		case token.KwPrivate:
			m |= ast.ModPrivate
		case token.KwProtected:
			m |= ast.ModProtected
		case token.KwStatic:
			m |= ast.ModStatic
		case token.KwFinal:
			m |= ast.ModFinal
		default:
			return m
		}
		p.next()
	}
}

func (p *parser) parseClass() (*ast.Class, error) {
	mods := p.parseModifiers()
	kw, err := p.expect(token.KwClass)
	if err != nil {
		return nil, err
	}
	nameTok, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	c := &ast.Class{Pos: kw.Pos, Mods: mods, Name: nameTok.Text}
	if p.accept(token.KwExtends) {
		ext, err := p.expect(token.IDENT)
		if err != nil {
			return nil, err
		}
		c.Extends = ext.Text
	}
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	for !p.at(token.RBrace) {
		if p.at(token.EOF) {
			return nil, p.errf("unexpected EOF in class %s", c.Name)
		}
		if err := p.parseMember(c); err != nil {
			return nil, err
		}
	}
	p.next() // }
	return c, nil
}

func (p *parser) parseMember(c *ast.Class) error {
	mods := p.parseModifiers()
	pos := p.cur().Pos

	// Constructor: ClassName '('
	if p.at(token.IDENT) && p.cur().Text == c.Name && p.peek(1).Kind == token.LParen {
		p.next()
		m := &ast.Method{Pos: pos, Mods: mods, Name: c.Name, IsCtor: true,
			Ret: ast.Type{Kind: ast.Void}}
		if err := p.parseMethodRest(m); err != nil {
			return err
		}
		c.Methods = append(c.Methods, m)
		return nil
	}

	typ, err := p.parseType()
	if err != nil {
		return err
	}
	nameTok, err := p.expect(token.IDENT)
	if err != nil {
		return err
	}
	if p.at(token.LParen) {
		m := &ast.Method{Pos: pos, Mods: mods, Ret: typ, Name: nameTok.Text}
		if err := p.parseMethodRest(m); err != nil {
			return err
		}
		c.Methods = append(c.Methods, m)
		return nil
	}
	// Field declaration, possibly with multiple declarators.
	for {
		fld := &ast.Field{Pos: pos, Mods: mods, Type: typ, Name: nameTok.Text}
		if p.accept(token.Assign) {
			init, err := p.parseInitializer()
			if err != nil {
				return err
			}
			fld.Init = init
		}
		c.Fields = append(c.Fields, fld)
		if !p.accept(token.Comma) {
			break
		}
		nameTok, err = p.expect(token.IDENT)
		if err != nil {
			return err
		}
	}
	_, err = p.expect(token.Semi)
	return err
}

func (p *parser) parseMethodRest(m *ast.Method) error {
	if _, err := p.expect(token.LParen); err != nil {
		return err
	}
	for !p.at(token.RParen) {
		typ, err := p.parseType()
		if err != nil {
			return err
		}
		nameTok, err := p.expect(token.IDENT)
		if err != nil {
			return err
		}
		m.Params = append(m.Params, ast.Param{Type: typ, Name: nameTok.Text})
		if !p.accept(token.Comma) {
			break
		}
	}
	if _, err := p.expect(token.RParen); err != nil {
		return err
	}
	if p.accept(token.KwThrows) {
		for {
			t, err := p.expect(token.IDENT)
			if err != nil {
				return err
			}
			m.Throws = append(m.Throws, t.Text)
			if !p.accept(token.Comma) {
				break
			}
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return err
	}
	m.Body = body
	return nil
}

func (p *parser) parseType() (ast.Type, error) {
	t := p.cur()
	var typ ast.Type
	switch t.Kind {
	case token.KwVoid:
		typ = ast.Type{Kind: ast.Void}
	case token.KwInt:
		typ = ast.Type{Kind: ast.Int}
	case token.KwLong:
		typ = ast.Type{Kind: ast.Long}
	case token.KwShort:
		typ = ast.Type{Kind: ast.Short}
	case token.KwByte:
		typ = ast.Type{Kind: ast.Byte}
	case token.KwChar:
		typ = ast.Type{Kind: ast.Char}
	case token.KwFloat:
		typ = ast.Type{Kind: ast.Float}
	case token.KwDouble:
		typ = ast.Type{Kind: ast.Double}
	case token.KwBoolean:
		typ = ast.Type{Kind: ast.Boolean}
	case token.IDENT:
		typ = ast.Type{Kind: ast.ClassType, Name: t.Text}
	default:
		return ast.Type{}, p.errf("expected type, found %q", t.Text)
	}
	p.next()
	for p.at(token.LBracket) && p.peek(1).Kind == token.RBracket {
		p.next()
		p.next()
		typ.Dims++
	}
	return typ, nil
}

// --- statements ---

func (p *parser) parseBlock() (*ast.Block, error) {
	lb, err := p.expect(token.LBrace)
	if err != nil {
		return nil, err
	}
	blk := &ast.Block{Pos: lb.Pos}
	for !p.at(token.RBrace) {
		if p.at(token.EOF) {
			return nil, p.errf("unexpected EOF in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.next()
	return blk, nil
}

// startsLocalVar reports whether the upcoming tokens begin a local variable
// declaration rather than an expression.
func (p *parser) startsLocalVar() bool {
	j := p.i
	if p.toks[j].Kind == token.KwFinal {
		return true
	}
	if p.toks[j].IsType() && p.toks[j].Kind != token.KwVoid {
		return true
	}
	if p.toks[j].Kind != token.IDENT {
		return false
	}
	// IDENT IDENT → decl; IDENT[] → decl; IDENT[][]... IDENT → decl.
	k := j + 1
	for p.peekAt(k).Kind == token.LBracket && p.peekAt(k+1).Kind == token.RBracket {
		k += 2
	}
	if k > j+1 {
		return p.peekAt(k).Kind == token.IDENT
	}
	return p.peekAt(k).Kind == token.IDENT
}

func (p *parser) peekAt(idx int) token.Token {
	if idx >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[idx]
}

func (p *parser) parseStmt() (ast.Stmt, error) {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case token.LBrace:
		return p.parseBlock()
	case token.Semi:
		p.next()
		return &ast.Empty{Pos: pos}, nil
	case token.KwIf:
		return p.parseIf()
	case token.KwWhile:
		return p.parseWhile()
	case token.KwFor:
		return p.parseFor()
	case token.KwReturn:
		p.next()
		if p.accept(token.Semi) {
			return &ast.Return{Pos: pos}, nil
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
		return &ast.Return{Pos: pos, X: x}, nil
	case token.KwBreak:
		p.next()
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
		return &ast.Break{Pos: pos}, nil
	case token.KwContinue:
		p.next()
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
		return &ast.Continue{Pos: pos}, nil
	case token.KwThrow:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
		return &ast.Throw{Pos: pos, X: x}, nil
	case token.KwTry:
		return p.parseTry()
	case token.KwDo:
		return p.parseDoWhile()
	case token.KwSwitch:
		return p.parseSwitch()
	}
	if p.startsLocalVar() {
		s, err := p.parseLocalVar()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Semi); err != nil {
			return nil, err
		}
		return s, nil
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	return &ast.ExprStmt{Pos: pos, X: x}, nil
}

// parseLocalVar parses one declarator without the trailing semicolon. Multi-
// declarator statements are desugared by the caller only in blocks; inside a
// for-init a single declarator is required by the dialect.
func (p *parser) parseLocalVar() (ast.Stmt, error) {
	pos := p.cur().Pos
	final := p.accept(token.KwFinal)
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	nameTok, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	lv := &ast.LocalVar{Pos: pos, Final: final, Type: typ, Name: nameTok.Text}
	if p.accept(token.Assign) {
		init, err := p.parseInitializer()
		if err != nil {
			return nil, err
		}
		lv.Init = init
	}
	if p.at(token.Comma) {
		// Desugar `int a = 1, b = 2;` into a block-less sequence by wrapping
		// in a Block that the interpreter executes transparently.
		seq := &ast.Block{Pos: pos, Stmts: []ast.Stmt{lv}}
		for p.accept(token.Comma) {
			nt, err := p.expect(token.IDENT)
			if err != nil {
				return nil, err
			}
			next := &ast.LocalVar{Pos: nt.Pos, Final: final, Type: typ, Name: nt.Text}
			if p.accept(token.Assign) {
				init, err := p.parseInitializer()
				if err != nil {
					return nil, err
				}
				next.Init = init
			}
			seq.Stmts = append(seq.Stmts, next)
		}
		return seq, nil
	}
	return lv, nil
}

// parseInitializer parses either an expression or an array literal.
func (p *parser) parseInitializer() (ast.Expr, error) {
	if p.at(token.LBrace) {
		pos := p.next().Pos
		lit := &ast.ArrayLit{Pos: pos}
		for !p.at(token.RBrace) {
			e, err := p.parseInitializer()
			if err != nil {
				return nil, err
			}
			lit.Elems = append(lit.Elems, e)
			if !p.accept(token.Comma) {
				break
			}
		}
		if _, err := p.expect(token.RBrace); err != nil {
			return nil, err
		}
		return lit, nil
	}
	return p.parseExpr()
}

func (p *parser) parseIf() (ast.Stmt, error) {
	pos := p.next().Pos // if
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	node := &ast.If{Pos: pos, Cond: cond, Then: then}
	if p.accept(token.KwElse) {
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		node.Else = els
	}
	return node, nil
}

func (p *parser) parseWhile() (ast.Stmt, error) {
	pos := p.next().Pos
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &ast.While{Pos: pos, Cond: cond, Body: body}, nil
}

func (p *parser) parseFor() (ast.Stmt, error) {
	pos := p.next().Pos
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	node := &ast.For{Pos: pos}
	if !p.at(token.Semi) {
		if p.startsLocalVar() {
			s, err := p.parseLocalVar()
			if err != nil {
				return nil, err
			}
			node.Init = s
		} else {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			node.Init = &ast.ExprStmt{Pos: x.NodePos(), X: x}
		}
	}
	if _, err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	if !p.at(token.Semi) {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		node.Cond = cond
	}
	if _, err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	for !p.at(token.RParen) {
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		node.Post = append(node.Post, x)
		if !p.accept(token.Comma) {
			break
		}
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	node.Body = body
	return node, nil
}

func (p *parser) parseTry() (ast.Stmt, error) {
	pos := p.next().Pos
	blk, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	node := &ast.Try{Pos: pos, Block: blk}
	for p.at(token.KwCatch) {
		cpos := p.next().Pos
		if _, err := p.expect(token.LParen); err != nil {
			return nil, err
		}
		typTok, err := p.expect(token.IDENT)
		if err != nil {
			return nil, err
		}
		nameTok, err := p.expect(token.IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		cblk, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		node.Catches = append(node.Catches, ast.Catch{
			Pos: cpos, Type: typTok.Text, Name: nameTok.Text, Block: cblk,
		})
	}
	if p.accept(token.KwFinally) {
		fblk, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		node.Finally = fblk
	}
	if len(node.Catches) == 0 && node.Finally == nil {
		return nil, p.errf("try without catch or finally")
	}
	return node, nil
}

func (p *parser) parseDoWhile() (ast.Stmt, error) {
	pos := p.next().Pos // do
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.KwWhile); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Semi); err != nil {
		return nil, err
	}
	return &ast.DoWhile{Pos: pos, Body: body, Cond: cond}, nil
}

func (p *parser) parseSwitch() (ast.Stmt, error) {
	pos := p.next().Pos // switch
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	tag, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, err
	}
	node := &ast.Switch{Pos: pos, Tag: tag}
	sawDefault := false
	for !p.at(token.RBrace) {
		if p.at(token.EOF) {
			return nil, p.errf("unexpected EOF in switch")
		}
		var arm ast.SwitchCase
		switch p.cur().Kind {
		case token.KwCase:
			cpos := p.next().Pos
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			arm = ast.SwitchCase{Pos: cpos, Values: []ast.Expr{v}}
		case token.KwDefault:
			if sawDefault {
				return nil, p.errf("duplicate default label")
			}
			sawDefault = true
			arm = ast.SwitchCase{Pos: p.next().Pos}
		default:
			return nil, p.errf("expected case or default in switch, found %q", p.cur().Text)
		}
		if _, err := p.expect(token.Colon); err != nil {
			return nil, err
		}
		for !p.at(token.KwCase) && !p.at(token.KwDefault) && !p.at(token.RBrace) {
			if p.at(token.EOF) {
				return nil, p.errf("unexpected EOF in switch arm")
			}
			st, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			arm.Stmts = append(arm.Stmts, st)
		}
		node.Cases = append(node.Cases, arm)
	}
	p.next() // }
	return node, nil
}

// --- expressions ---

func (p *parser) parseExpr() (ast.Expr, error) { return p.parseAssign() }

func isAssignOp(k token.Kind) bool {
	switch k {
	case token.Assign, token.PlusEq, token.MinusEq, token.StarEq,
		token.SlashEq, token.PercentEq, token.AndEq, token.OrEq, token.XorEq:
		return true
	}
	return false
}

func (p *parser) parseAssign() (ast.Expr, error) {
	lhs, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if isAssignOp(p.cur().Kind) {
		op := p.next()
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		if !isLValue(lhs) {
			return nil, &Error{Path: p.path, Pos: op.Pos, Msg: "assignment target is not a variable, field or array element"}
		}
		return &ast.Assign{Pos: op.Pos, Op: op.Kind, LHS: lhs, RHS: rhs}, nil
	}
	return lhs, nil
}

func isLValue(e ast.Expr) bool {
	switch e.(type) {
	case *ast.Ident, *ast.Select, *ast.Index:
		return true
	}
	return false
}

func (p *parser) parseTernary() (ast.Expr, error) {
	cond, err := p.parseBinary(3)
	if err != nil {
		return nil, err
	}
	if p.at(token.Question) {
		qpos := p.next().Pos
		then, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Colon); err != nil {
			return nil, err
		}
		els, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		return &ast.Ternary{Pos: qpos, Cond: cond, Then: then, Else: els}, nil
	}
	return cond, nil
}

func binPrec(k token.Kind) int {
	switch k {
	case token.OrOr:
		return 3
	case token.AndAnd:
		return 4
	case token.BitOr:
		return 5
	case token.BitXor:
		return 6
	case token.BitAnd:
		return 7
	case token.Eq, token.Ne:
		return 8
	case token.Lt, token.Le, token.Gt, token.Ge, token.KwInstanceof:
		return 9
	case token.Shl, token.Shr:
		return 10
	case token.Plus, token.Minus:
		return 11
	case token.Star, token.Slash, token.Percent:
		return 12
	}
	return 0
}

func (p *parser) parseBinary(min int) (ast.Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		pr := binPrec(p.cur().Kind)
		if pr == 0 || pr < min {
			return lhs, nil
		}
		op := p.next()
		if op.Kind == token.KwInstanceof {
			t, err := p.expect(token.IDENT)
			if err != nil {
				return nil, err
			}
			lhs = &ast.InstanceOf{Pos: op.Pos, X: lhs, Name: t.Text}
			continue
		}
		rhs, err := p.parseBinary(pr + 1)
		if err != nil {
			return nil, err
		}
		lhs = &ast.Binary{Pos: op.Pos, Op: op.Kind, X: lhs, Y: rhs}
	}
}

// startsUnary reports whether a token can begin a unary expression (used by
// the cast heuristic).
func startsUnary(t token.Token) bool {
	switch t.Kind {
	case token.IDENT, token.INTLIT, token.LONGLIT, token.FLOATLIT,
		token.DOUBLELIT, token.CHARLIT, token.STRINGLIT,
		token.KwThis, token.KwNew, token.KwTrue, token.KwFalse, token.KwNull,
		token.LParen, token.Not:
		return true
	}
	return false
}

func (p *parser) parseUnary() (ast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case token.Plus:
		p.next()
		return p.parseUnary() // unary plus is a no-op
	case token.Minus, token.Not:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Pos: t.Pos, Op: t.Kind, X: x}, nil
	case token.Inc, token.Dec:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Pos: t.Pos, Op: t.Kind, X: x}, nil
	case token.LParen:
		// Cast heuristic: "(primitive)" always; "(Ident)" when followed by a
		// token that begins a unary expression and is not an operator.
		if p.peek(1).IsType() && p.peek(1).Kind != token.KwVoid {
			return p.parseCast()
		}
		if p.peek(1).Kind == token.IDENT {
			j := 2
			for p.peek(j).Kind == token.LBracket && p.peek(j+1).Kind == token.RBracket {
				j += 2
			}
			if p.peek(j).Kind == token.RParen && startsUnary(p.peek(j+1)) {
				return p.parseCast()
			}
		}
	}
	return p.parsePostfix()
}

func (p *parser) parseCast() (ast.Expr, error) {
	lp := p.next() // (
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	return &ast.Cast{Pos: lp.Pos, Type: typ, X: x}, nil
}

func (p *parser) parsePostfix() (ast.Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case token.Dot:
			p.next()
			nameTok, err := p.expect(token.IDENT)
			if err != nil {
				return nil, err
			}
			if p.at(token.LParen) {
				args, err := p.parseArgs()
				if err != nil {
					return nil, err
				}
				x = &ast.Call{Pos: nameTok.Pos, Recv: x, Name: nameTok.Text, Args: args}
			} else {
				x = &ast.Select{Pos: nameTok.Pos, X: x, Name: nameTok.Text}
			}
		case token.LBracket:
			lb := p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RBracket); err != nil {
				return nil, err
			}
			x = &ast.Index{Pos: lb.Pos, X: x, I: idx}
		case token.Inc, token.Dec:
			op := p.next()
			x = &ast.Unary{Pos: op.Pos, Op: op.Kind, X: x, Postfix: true}
		default:
			return x, nil
		}
	}
}

func (p *parser) parseArgs() ([]ast.Expr, error) {
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	var args []ast.Expr
	for !p.at(token.RParen) {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if !p.accept(token.Comma) {
			break
		}
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	return args, nil
}

func (p *parser) parsePrimary() (ast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case token.INTLIT, token.LONGLIT, token.FLOATLIT, token.DOUBLELIT,
		token.CHARLIT, token.STRINGLIT, token.KwTrue, token.KwFalse, token.KwNull:
		p.next()
		return decodeLiteral(t, p.path)
	case token.IDENT:
		p.next()
		if p.at(token.LParen) {
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return &ast.Call{Pos: t.Pos, Name: t.Text, Args: args}, nil
		}
		return &ast.Ident{Pos: t.Pos, Name: t.Text}, nil
	case token.KwThis:
		p.next()
		return &ast.This{Pos: t.Pos}, nil
	case token.KwNew:
		return p.parseNew()
	case token.LParen:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errf("unexpected token %q in expression", t.Text)
}

func (p *parser) parseNew() (ast.Expr, error) {
	pos := p.next().Pos // new
	typTok := p.cur()
	var elem ast.Type
	switch {
	case typTok.IsType() && typTok.Kind != token.KwVoid:
		et, err := p.parseType() // consumes trailing [] pairs too
		if err != nil {
			return nil, err
		}
		elem = et
	case typTok.Kind == token.IDENT:
		p.next()
		elem = ast.Type{Kind: ast.ClassType, Name: typTok.Text}
	default:
		return nil, p.errf("expected type after new, found %q", typTok.Text)
	}

	if p.at(token.LParen) {
		if elem.Kind != ast.ClassType || elem.Dims > 0 {
			return nil, p.errf("cannot construct %s", elem)
		}
		args, err := p.parseArgs()
		if err != nil {
			return nil, err
		}
		return &ast.New{Pos: pos, Name: elem.Name, Args: args}, nil
	}

	// Array creation: sized dims, then optional unsized [] pairs.
	var lens []ast.Expr
	for p.at(token.LBracket) && p.peek(1).Kind != token.RBracket {
		p.next()
		l, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RBracket); err != nil {
			return nil, err
		}
		lens = append(lens, l)
	}
	for p.at(token.LBracket) && p.peek(1).Kind == token.RBracket {
		p.next()
		p.next()
		elem.Dims++
	}
	if len(lens) == 0 && elem.Dims == 0 {
		return nil, p.errf("array creation needs at least one dimension")
	}
	if len(lens) == 0 {
		return nil, p.errf("array creation needs at least one sized dimension")
	}
	return &ast.NewArray{Pos: pos, Elem: elem, Lens: lens}, nil
}

// decodeLiteral turns a literal token into an AST literal with decoded value.
func decodeLiteral(t token.Token, path string) (ast.Expr, error) {
	lit := &ast.Literal{Pos: t.Pos, Raw: t.Text}
	fail := func(msg string) (ast.Expr, error) {
		return nil, &Error{Path: path, Pos: t.Pos, Msg: msg}
	}
	clean := strings.ReplaceAll(t.Text, "_", "")
	switch t.Kind {
	case token.INTLIT:
		v, err := strconv.ParseInt(clean, 0, 64)
		if err != nil {
			return fail("bad int literal " + t.Text)
		}
		if v > 1<<31-1 {
			return fail("int literal out of range: " + t.Text)
		}
		lit.Kind, lit.I = ast.LitInt, v
	case token.LONGLIT:
		v, err := strconv.ParseInt(strings.TrimRight(clean, "Ll"), 0, 64)
		if err != nil {
			return fail("bad long literal " + t.Text)
		}
		lit.Kind, lit.I = ast.LitLong, v
	case token.FLOATLIT:
		v, err := strconv.ParseFloat(strings.TrimRight(clean, "Ff"), 64)
		if err != nil {
			return fail("bad float literal " + t.Text)
		}
		lit.Kind, lit.D = ast.LitFloat, float64(float32(v))
		lit.Sci = lexer.IsScientific(t.Text)
	case token.DOUBLELIT:
		v, err := strconv.ParseFloat(strings.TrimRight(clean, "Dd"), 64)
		if err != nil {
			return fail("bad double literal " + t.Text)
		}
		lit.Kind, lit.D = ast.LitDouble, v
		lit.Sci = lexer.IsScientific(t.Text)
	case token.CHARLIT:
		r, err := decodeChar(t.Text)
		if err != nil {
			return fail(err.Error())
		}
		lit.Kind, lit.I = ast.LitChar, int64(r)
	case token.STRINGLIT:
		s, err := decodeString(t.Text)
		if err != nil {
			return fail(err.Error())
		}
		lit.Kind, lit.S = ast.LitString, s
	case token.KwTrue:
		lit.Kind, lit.I = ast.LitBool, 1
	case token.KwFalse:
		lit.Kind, lit.I = ast.LitBool, 0
	case token.KwNull:
		lit.Kind = ast.LitNull
	}
	return lit, nil
}

func decodeChar(text string) (rune, error) {
	body := text[1 : len(text)-1]
	if body == "" {
		return 0, fmt.Errorf("empty char literal")
	}
	if body[0] == '\\' {
		r, ok := escape(body[1])
		if !ok {
			return 0, fmt.Errorf("bad escape %q", body)
		}
		return r, nil
	}
	return rune(body[0]), nil
}

func decodeString(text string) (string, error) {
	body := text[1 : len(text)-1]
	var sb strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			sb.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("dangling escape in string literal")
		}
		r, ok := escape(body[i])
		if !ok {
			return "", fmt.Errorf("bad escape \\%c", body[i])
		}
		sb.WriteRune(r)
	}
	return sb.String(), nil
}

func escape(c byte) (rune, bool) {
	switch c {
	case 'n':
		return '\n', true
	case 't':
		return '\t', true
	case 'r':
		return '\r', true
	case '\\':
		return '\\', true
	case '\'':
		return '\'', true
	case '"':
		return '"', true
	case '0':
		return 0, true
	case 'b':
		return '\b', true
	case 'f':
		return '\f', true
	}
	return 0, false
}
