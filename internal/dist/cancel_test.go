package dist_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"jepo/internal/dist"
)

func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancel: %d, started with %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDispatchCancelMidCampaign cancels an in-process (PipeSpawner)
// campaign mid-flight and asserts the dispatcher contract: ctx's error
// comes back, the committed set is an exact index prefix, the worker
// goroutines drain, and the checkpoint ledger left behind resumes to a
// final merge — and final ledger — byte-identical to an uninterrupted run.
func TestDispatchCancelMidCampaign(t *testing.T) {
	const n = 32
	reg := newMixRegistry(0)

	// Uninterrupted checkpointed reference run.
	refLedger := filepath.Join(t.TempDir(), "ref.json")
	want, _, _ := runMix(t, dist.Config{Workers: 2, Seed: 42, Checkpoint: refLedger, Spawn: dist.PipeSpawner(reg)}, reg, n)
	refBytes, err := os.ReadFile(refLedger)
	if err != nil {
		t.Fatalf("reference run left no ledger: %v", err)
	}

	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ledger := filepath.Join(t.TempDir(), "campaign.json")
	cfg := dist.Config{Workers: 2, Seed: 42, Checkpoint: ledger, Spawn: dist.PipeSpawner(reg)}
	var mu sync.Mutex
	var committed []int
	_, _, err = dist.Map(ctx, cfg, reg, "mix", mixParams{Label: "t"}, n,
		func(task dist.Task, r mixResult) {
			mu.Lock()
			committed = append(committed, task.Index)
			if len(committed) == 5 {
				cancel()
			}
			mu.Unlock()
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign returned %v, want context.Canceled", err)
	}
	waitGoroutines(t, base)

	mu.Lock()
	got := append([]int(nil), committed...)
	mu.Unlock()
	if len(got) == n {
		t.Fatal("cancel did not stop the campaign")
	}
	for i, idx := range got {
		if idx != i {
			t.Fatalf("commit %d has index %d — not an exact prefix: %v", i, idx, got)
		}
	}

	// The cancellation saved a valid, resumable ledger.
	if _, err := os.Stat(ledger); err != nil {
		t.Fatalf("cancel saved no checkpoint ledger: %v", err)
	}
	resumed, _, rep := runMix(t, dist.Config{Workers: 2, Seed: 42, Checkpoint: ledger, Spawn: dist.PipeSpawner(reg)}, reg, n)
	if rep.Replayed == 0 {
		t.Error("resume replayed nothing from the cancelled run's ledger")
	}
	for i := range resumed {
		if resumed[i] != want[i] {
			t.Errorf("task %d drifted after cancel+resume: %+v vs %+v", i, resumed[i], want[i])
		}
	}
	gotBytes, err := os.ReadFile(ledger)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotBytes) != string(refBytes) {
		t.Error("final ledger after cancel+resume is not byte-identical to the uninterrupted run's")
	}
}

// TestRunInlineCancel cancels the Workers<=1 inline path and asserts the
// same prefix + resumable-ledger contract without any processes involved.
func TestRunInlineCancel(t *testing.T) {
	const n = 20
	reg := newMixRegistry(0)
	want, _, _ := runMix(t, dist.Config{Workers: 1, Seed: 7}, reg, n)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ledger := filepath.Join(t.TempDir(), "inline.json")
	var committed []int
	_, _, err := dist.Map(ctx, dist.Config{Workers: 1, Seed: 7, Checkpoint: ledger}, reg, "mix", mixParams{Label: "t"}, n,
		func(task dist.Task, r mixResult) {
			committed = append(committed, task.Index)
			if len(committed) == 3 {
				cancel()
			}
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled inline run returned %v", err)
	}
	if len(committed) >= n {
		t.Fatal("cancel did not stop the inline run")
	}
	for i, idx := range committed {
		if idx != i {
			t.Fatalf("inline commit %d has index %d: %v", i, idx, committed)
		}
	}
	resumed, _, rep := runMix(t, dist.Config{Workers: 1, Seed: 7, Checkpoint: ledger}, reg, n)
	if rep.Replayed == 0 {
		t.Error("inline resume replayed nothing")
	}
	for i := range resumed {
		if resumed[i] != want[i] {
			t.Errorf("task %d drifted after inline cancel+resume", i)
		}
	}
}

// TestDispatchPreCancelled asserts an already-dead context spawns nothing.
func TestDispatchPreCancelled(t *testing.T) {
	reg := newMixRegistry(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := dist.Map(ctx, dist.Config{Workers: 2, Seed: 1, Spawn: dist.PipeSpawner(reg)}, reg, "mix", mixParams{}, 8,
		func(dist.Task, mixResult) { t.Error("pre-cancelled campaign committed a task") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled campaign returned %v", err)
	}
}
