package passes

import "jepo/internal/minijava/ast"

// applier carries the state of one ApplyFixes run.
type applier struct {
	res     *Result
	anchors map[ast.Node][]*Fix

	// inMethodBody distinguishes the method-body traversals (which never
	// enter array literals) from field-initializer traversals (which do).
	inMethodBody bool

	// fieldApplied records which declaration fix ran on each field, so
	// hoisted locals can mirror it.
	fieldApplied map[*ast.Field]fieldFixKind
	hoisted      []hoistRecord
}

type hoistRecord struct {
	field *ast.Field
	local *ast.LocalVar
}

// ApplyFixes applies every fix carried by the diagnostics, mutating the files
// in place, and reports how many changes were made per rule. Fixes run in
// three phases: statics hoisting, field/parameter declaration surgery, then
// one cursor traversal per file that fires each remaining fix when the
// cursor reaches its anchor. Fixes sharing an anchor run in diagnostic
// order; a fix whose anchor is removed by an earlier fix (a declaration
// inside a loop that became a System.arraycopy call) simply never fires.
func ApplyFixes(files []*ast.File, diags []Diagnostic) *Result {
	res := &Result{ByRule: map[Rule]int{}}
	ap := &applier{
		res:          res,
		anchors:      map[ast.Node][]*Fix{},
		fieldApplied: map[*ast.Field]fieldFixKind{},
	}
	var hoists, decls []*Fix
	for _, d := range diags {
		fx := d.Fix
		if fx == nil {
			continue
		}
		switch {
		case fx.direct != nil && fx.phase == phaseHoist:
			hoists = append(hoists, fx)
		case fx.direct != nil:
			decls = append(decls, fx)
		default:
			ap.anchors[fx.anchor] = append(ap.anchors[fx.anchor], fx)
		}
	}
	// Phase 0: hoists restructure whole method bodies. They run before
	// declaration surgery so the inserted load carries the field's original
	// type.
	for _, fx := range hoists {
		res.add(fx.rule, fx.direct(ap))
	}
	// Phase 1: declaration surgery on fields and parameters.
	for _, fx := range decls {
		n := fx.direct(ap)
		res.add(fx.rule, n)
		if n > 0 && fx.field != nil {
			ap.fieldApplied[fx.field] = fx.fieldKind
		}
	}
	// Hoisted locals inherit their field's declaration fix — the load was
	// created with the pre-surgery type.
	for _, h := range ap.hoisted {
		switch ap.fieldApplied[h.field] {
		case fieldFixNarrow:
			if narrowType(&h.local.Type) {
				res.add(RulePrimitiveTypes, 1)
			}
		case fieldFixWrapper:
			if integerizeWrapper(&h.local.Type) {
				res.add(RuleWrapperClasses, 1)
			}
		}
	}
	// Phase 2: one traversal per file.
	for _, f := range files {
		for _, cl := range f.Classes {
			for _, fd := range cl.Fields {
				if fd.Init != nil {
					ap.inMethodBody = false
					ast.Rewrite(fd.Init, ap.applyHook, nil)
				}
			}
			for _, mt := range cl.Methods {
				if mt.Body != nil {
					ap.inMethodBody = true
					ast.Rewrite(mt.Body, ap.applyHook, nil)
				}
			}
		}
	}
	return res
}

func (ap *applier) applyHook(c *ast.Cursor) bool {
	descend := true
	for _, fx := range ap.anchors[c.Node()] {
		n, d := fx.apply(ap, c)
		ap.res.add(fx.rule, n)
		if !d {
			descend = false
		}
	}
	if !descend {
		return false
	}
	// Method-body array literals hold constant data the rewriters never
	// touched; field initializers are traversed in full.
	if _, ok := c.Node().(*ast.ArrayLit); ok && ap.inMethodBody {
		return false
	}
	return true
}
