package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
)

// Key is a content hash naming one cached artifact. Two artifacts share a
// key exactly when every byte of input that can influence their value is
// identical, so a key is a complete description of the artifact and a hit
// can never change an output, only its cost.
type Key [sha256.Size]byte

// String renders the key's short hex form for logs and tests.
func (k Key) String() string { return hex.EncodeToString(k[:8]) }

// Hasher accumulates key material. Every part is length-prefixed before
// hashing, so ("ab","c") and ("a","bc") produce different keys — the key is
// a function of the part sequence, not of the concatenated bytes.
type Hasher struct {
	h hash.Hash
}

// NewKey starts a hasher for one artifact stage. The stage name partitions
// the key space, so a parse artifact and a program artifact of the same
// source can never collide.
func NewKey(stage string) *Hasher {
	h := &Hasher{h: sha256.New()}
	return h.Str(stage)
}

// Str appends one string part.
func (h *Hasher) Str(s string) *Hasher {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
	h.h.Write(n[:])
	h.h.Write([]byte(s))
	return h
}

// Int appends one integer part.
func (h *Hasher) Int(v int64) *Hasher {
	var n [9]byte
	n[0] = 0xb1 // tag byte distinguishing ints from string length prefixes
	binary.LittleEndian.PutUint64(n[1:], uint64(v))
	h.h.Write(n[:])
	return h
}

// Key finalizes the accumulated parts.
func (h *Hasher) Key() Key {
	var k Key
	h.h.Sum(k[:0])
	return k
}
