package interp

import (
	"strings"
	"testing"

	"jepo/internal/energy"
	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/parser"
)

// runProgram parses and loads src, runs static method class.method with no
// args, and returns (result, interp).
func runProgram(t *testing.T, src, class, method string) (Value, *Interp) {
	t.Helper()
	f, err := parser.Parse("test.java", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := Load(f)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	in := New(prog, energy.NewMeter(energy.DefaultCosts()), WithMaxOps(50_000_000))
	v, err := in.CallStatic(class, method)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v, in
}

func evalInt(t *testing.T, body string) int64 {
	t.Helper()
	v, _ := runProgram(t, "class T { static int f() { "+body+" } }", "T", "f")
	if v.K != KInt {
		t.Fatalf("result kind = %v, want int", v.K)
	}
	return v.I
}

func evalDouble(t *testing.T, body string) float64 {
	t.Helper()
	v, _ := runProgram(t, "class T { static double f() { "+body+" } }", "T", "f")
	if v.K != KDouble {
		t.Fatalf("result kind = %v, want double", v.K)
	}
	return v.D
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		body string
		want int64
	}{
		{"return 2 + 3 * 4;", 14},
		{"return (2 + 3) * 4;", 20},
		{"return 17 % 5;", 2},
		{"return -17 % 5;", -2}, // Java remainder keeps dividend sign
		{"return 17 / 5;", 3},
		{"return -17 / 5;", -3},
		{"return 1 << 10;", 1024},
		{"return 1024 >> 3;", 128},
		{"return 12 & 10;", 8},
		{"return 12 | 10;", 14},
		{"return 12 ^ 10;", 6},
		{"return -5;", -5},
		{"int x = 2147483647; return x + 1;", -2147483648}, // int overflow wraps
		{"byte b = (byte) 200; return b;", -56},            // byte wraps
		{"short s = (short) 70000; return s;", 4464},
		{"char c = 'A'; return c + 1;", 66},
		{"return 'b' - 'a';", 1},
	}
	for _, c := range cases {
		if got := evalInt(t, c.body); got != c.want {
			t.Errorf("%q = %d, want %d", c.body, got, c.want)
		}
	}
}

func TestFloatingPoint(t *testing.T) {
	if got := evalDouble(t, "return 1.0 / 4.0;"); got != 0.25 {
		t.Errorf("1.0/4.0 = %v", got)
	}
	if got := evalDouble(t, "return 7.5 % 2.0;"); got != 1.5 {
		t.Errorf("7.5 %% 2.0 = %v", got)
	}
	if got := evalDouble(t, "double d = 1e-3; return d * 1000.0;"); got != 1.0 {
		t.Errorf("1e-3*1000 = %v", got)
	}
	// float arithmetic rounds through 32 bits.
	v, _ := runProgram(t, `class T { static boolean f() {
		float a = 0.1f;
		double d = 0.1;
		return a == d;
	} }`, "T", "f")
	if v.Bool() {
		t.Error("float 0.1f must differ from double 0.1 after promotion")
	}
	// double division by zero yields infinity, not an exception.
	if got := evalDouble(t, "double z = 0.0; return 1.0 / z;"); got <= 1e300 {
		t.Errorf("1.0/0.0 = %v, want +Inf", got)
	}
}

func TestControlFlow(t *testing.T) {
	body := `
		int s = 0;
		for (int i = 0; i < 10; i++) {
			if (i % 2 == 0) continue;
			s += i;
		}
		int j = 0;
		while (true) {
			j++;
			if (j >= 5) break;
		}
		return s * 100 + j;`
	if got := evalInt(t, body); got != 2505 {
		t.Errorf("control flow = %d, want 2505", got)
	}
}

func TestTernaryAndShortCircuit(t *testing.T) {
	if got := evalInt(t, "int a = 5; return a > 3 ? 1 : 2;"); got != 1 {
		t.Errorf("ternary = %d", got)
	}
	// Short circuit must not evaluate the right side.
	src := `class T {
		static int calls = 0;
		static boolean bump() { calls++; return true; }
		static int f() {
			boolean b = false && bump();
			boolean c = true || bump();
			return calls;
		}
	}`
	v, _ := runProgram(t, src, "T", "f")
	if v.I != 0 {
		t.Errorf("short-circuit evaluated rhs %d times", v.I)
	}
}

func TestStringsAndStringBuilder(t *testing.T) {
	src := `class T {
		static String f() {
			String a = "foo";
			String b = "bar";
			String c = a + "-" + b + 42 + true;
			StringBuilder sb = new StringBuilder();
			sb.append(c).append("!").append(1.5);
			return sb.toString();
		}
		static int g() {
			String a = "apple";
			String b = "apples";
			int r = 0;
			if (a.equals("apple")) r += 1;
			if (!a.equals(b)) r += 2;
			if (a.compareTo(b) < 0) r += 4;
			if ("b".compareTo("a") > 0) r += 8;
			if (a.length() == 5) r += 16;
			if (a.charAt(1) == 'p') r += 32;
			if (a.substring(1, 3).equals("pp")) r += 64;
			return r;
		}
	}`
	v, _ := runProgram(t, src, "T", "f")
	if got := v.Str(); got != "foo-bar42true!1.5" {
		t.Errorf("string ops = %q", got)
	}
	v2, _ := runProgram(t, src, "T", "g")
	if v2.I != 127 {
		t.Errorf("string predicates = %d, want 127", v2.I)
	}
}

func TestArrays(t *testing.T) {
	src := `class T {
		static int f() {
			int[] a = new int[10];
			for (int i = 0; i < a.length; i++) a[i] = i * i;
			int[] b = new int[10];
			System.arraycopy(a, 0, b, 0, 10);
			int[][] m = new int[3][4];
			m[2][3] = 7;
			int[] lit = {10, 20, 30};
			return b[9] + m[2][3] + lit[1];
		}
	}`
	v, _ := runProgram(t, src, "T", "f")
	if v.I != 81+7+20 {
		t.Errorf("arrays = %d, want 108", v.I)
	}
}

func TestObjectsAndInheritance(t *testing.T) {
	src := `class Animal {
		String name;
		int legs = 4;
		Animal(String n) { this.name = n; }
		String speak() { return "..."; }
		String describe() { return name + " says " + speak(); }
	}
	class Dog extends Animal {
		Dog(String n) { this.name = n; }
		String speak() { return "woof"; }
	}
	class Main {
		static String f() {
			Animal a = new Dog("Rex");
			return a.describe() + "/" + a.legs;
		}
	}`
	v, _ := runProgram(t, src, "Main", "f")
	if got := v.Str(); got != "Rex says woof/4" {
		t.Errorf("virtual dispatch = %q", got)
	}
}

func TestStaticFieldsAndMethods(t *testing.T) {
	src := `class Counter {
		static int count = 100;
		static int next() { count++; return count; }
	}
	class Main {
		static int f() {
			Counter.next();
			Counter.next();
			return Counter.count;
		}
	}`
	v, _ := runProgram(t, src, "Main", "f")
	if v.I != 102 {
		t.Errorf("static field = %d, want 102", v.I)
	}
}

func TestExceptions(t *testing.T) {
	src := `class T {
		static int f() {
			int r = 0;
			try {
				int z = 0;
				int q = 5 / z;
				r = 999;
			} catch (ArithmeticException e) {
				r = 1;
			} finally {
				r += 10;
			}
			try {
				int[] a = new int[2];
				a[5] = 1;
			} catch (ArrayIndexOutOfBoundsException e) {
				r += 100;
			}
			try {
				throw new IllegalStateException("boom");
			} catch (RuntimeException e) {
				if (e.getMessage().equals("boom")) r += 1000;
			}
			return r;
		}
		static int g() {
			try {
				throw new Exception("outer");
			} catch (ArithmeticException e) {
				return 1;
			}
		}
	}`
	v, _ := runProgram(t, src, "T", "f")
	if v.I != 1111 {
		t.Errorf("exceptions = %d, want 1111", v.I)
	}
	// Uncaught exception surfaces as an error.
	f, _ := parser.Parse("t.java", src)
	prog, _ := Load(f)
	in := New(prog, energy.NewMeter(energy.DefaultCosts()))
	if _, err := in.CallStatic("T", "g"); err == nil {
		t.Error("uncaught exception must return an error")
	} else if !strings.Contains(err.Error(), "outer") {
		t.Errorf("error %q missing message", err)
	}
}

func TestNullPointerAndCasts(t *testing.T) {
	src := `class P { int x; }
	class T {
		static int f() {
			int r = 0;
			P p = null;
			try { r = p.x; } catch (NullPointerException e) { r = 1; }
			double d = 3.99;
			int i = (int) d;
			r += i * 10;
			long big = 5000000000L;
			int trunc = (int) big;
			if (trunc != 5000000000L) r += 100;
			return r;
		}
	}`
	v, _ := runProgram(t, src, "T", "f")
	if v.I != 131 {
		t.Errorf("null/casts = %d, want 131", v.I)
	}
}

func TestWrappersAndBoxing(t *testing.T) {
	src := `class T {
		static int f() {
			Integer a = Integer.valueOf(5);
			Integer b = 7;
			int c = a + b;
			Double d = 2.5;
			double e = d * 2.0;
			Integer big = Integer.valueOf(1000);
			return c + (int) e + big.intValue();
		}
	}`
	v, in := runProgram(t, src, "T", "f")
	if v.I != 12+5+1000 {
		t.Errorf("boxing = %d, want 1017", v.I)
	}
	if in.Meter().OpCount(energy.OpBoxCached) == 0 {
		t.Error("small Integer boxing must hit the valueOf cache")
	}
	if in.Meter().OpCount(energy.OpBoxAlloc) == 0 {
		t.Error("Integer.valueOf(1000) and Double boxing must allocate")
	}
}

func TestMathAndSystem(t *testing.T) {
	src := `class T {
		static double f() {
			double a = Math.sqrt(16.0);
			double b = Math.pow(2.0, 10.0);
			double c = Math.abs(-2.5);
			int d = Math.max(3, 9);
			long e = Math.round(2.6);
			double g = Math.floor(2.9) + Math.ceil(2.1);
			return a + b + c + d + e + g; // 4+1024+2.5+9+3+5 = 1047.5
		}
	}`
	v, _ := runProgram(t, src, "T", "f")
	if v.D != 1047.5 {
		t.Errorf("math = %v, want 1047.5", v.D)
	}
}

func TestPrintlnAndMain(t *testing.T) {
	src := `class Hello {
		public static void main(String[] args) {
			System.out.println("hello " + (1 + 2));
			System.out.print("x");
			System.out.println();
		}
	}`
	f, err := parser.Parse("hello.java", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	in := New(prog, energy.NewMeter(energy.DefaultCosts()))
	if err := in.RunMain(""); err != nil {
		t.Fatal(err)
	}
	if got := in.Output(); got != "hello 3\nx\n" {
		t.Errorf("output = %q", got)
	}
}

func TestRecursion(t *testing.T) {
	src := `class T {
		static int fib(int n) {
			if (n < 2) return n;
			return fib(n - 1) + fib(n - 2);
		}
		static int f() { return fib(15); }
	}`
	v, _ := runProgram(t, src, "T", "f")
	if v.I != 610 {
		t.Errorf("fib(15) = %d, want 610", v.I)
	}
}

func TestInstanceOf(t *testing.T) {
	src := `class A { }
	class B extends A { }
	class T {
		static int f() {
			A x = new B();
			int r = 0;
			if (x instanceof B) r += 1;
			if (x instanceof A) r += 2;
			String s = "hi";
			if (s instanceof String) r += 4;
			return r;
		}
	}`
	v, _ := runProgram(t, src, "T", "f")
	if v.I != 7 {
		t.Errorf("instanceof = %d, want 7", v.I)
	}
}

func TestIncDecSemantics(t *testing.T) {
	body := `
		int i = 5;
		int a = i++;
		int b = ++i;
		int c = i--;
		int d = --i;
		int[] arr = new int[3];
		arr[1]++;
		return a * 1000 + b * 100 + c * 10 + d + arr[1];`
	// a=5, i=6; b=7, i=7; c=7, i=6; d=5, i=5; arr[1]=1
	if got := evalInt(t, body); got != 5000+700+70+5+1 {
		t.Errorf("inc/dec = %d, want 5776", got)
	}
}

func TestOpBudget(t *testing.T) {
	src := `class T { static int f() { while (true) { } } }`
	f, _ := parser.Parse("t.java", src)
	prog, _ := Load(f)
	in := New(prog, energy.NewMeter(energy.DefaultCosts()), WithMaxOps(10_000))
	if _, err := in.CallStatic("T", "f"); err == nil {
		t.Fatal("infinite loop must trip the op budget")
	}
}

func TestBindAndHostArrays(t *testing.T) {
	src := `class Data {
		static double[][] X;
		static int n() { return X.length; }
		static double sum() {
			double s = 0.0;
			for (int i = 0; i < X.length; i++) {
				for (int j = 0; j < X[i].length; j++) {
					s += X[i][j];
				}
			}
			return s;
		}
	}`
	f, _ := parser.Parse("d.java", src)
	prog, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	in := New(prog, energy.NewMeter(energy.DefaultCosts()))
	if err := in.Bind("Data", "X", in.NewDoubleMatrix([][]float64{{1, 2}, {3, 4.5}})); err != nil {
		t.Fatal(err)
	}
	v, err := in.CallStatic("Data", "sum")
	if err != nil {
		t.Fatal(err)
	}
	if v.D != 10.5 {
		t.Errorf("bound matrix sum = %v, want 10.5", v.D)
	}
}

func TestLoadErrors(t *testing.T) {
	parseOne := func(src string) *ast.File {
		f, err := parser.Parse("x.java", src)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	if _, err := Load(parseOne(`class A { }`), parseOne(`class A { }`)); err == nil {
		t.Error("duplicate class must fail")
	}
	if _, err := Load(parseOne(`class A extends Missing { }`)); err == nil {
		t.Error("unknown superclass must fail")
	}
	if _, err := Load(parseOne(`class A extends B { } class B extends A { }`)); err == nil {
		t.Error("inheritance cycle must fail")
	}
	if _, err := Load(parseOne(`class A extends Exception { }`)); err != nil {
		t.Errorf("extending a builtin throwable must be allowed: %v", err)
	}
}

func TestMethodGranularProbes(t *testing.T) {
	src := `class T {
		static int inner() { JEPO.enter("T.inner"); int r = 21 * 2; JEPO.exit("T.inner"); return r; }
		static int f() { JEPO.enter("T.f"); int v = inner(); JEPO.exit("T.f"); return v; }
	}`
	f, _ := parser.Parse("t.java", src)
	prog, _ := Load(f)
	rec := &recordingHook{}
	in := New(prog, energy.NewMeter(energy.DefaultCosts()), WithHook(rec))
	v, err := in.CallStatic("T", "f")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 42 {
		t.Errorf("result = %d", v.I)
	}
	want := []string{"+T.f", "+T.inner", "-T.inner", "-T.f"}
	if strings.Join(rec.events, ",") != strings.Join(want, ",") {
		t.Errorf("probe events = %v, want %v", rec.events, want)
	}
}

type recordingHook struct{ events []string }

func (r *recordingHook) Enter(m string) { r.events = append(r.events, "+"+m) }
func (r *recordingHook) Exit(m string)  { r.events = append(r.events, "-"+m) }

// --- energy-model behaviour through real programs ---

func measure(t *testing.T, src, class, method string) energy.Sample {
	t.Helper()
	f, err := parser.Parse("bench.java", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	in := New(prog, energy.NewMeter(energy.DefaultCosts()), WithMaxOps(200_000_000))
	if err := in.InitStatics(); err != nil {
		t.Fatal(err)
	}
	before := in.Meter().Snapshot()
	if _, err := in.CallStatic(class, method); err != nil {
		t.Fatal(err)
	}
	return in.Meter().Snapshot().Sub(before)
}

func TestModulusCostsMoreThanMultiply(t *testing.T) {
	mod := measure(t, `class T { static int f() {
		int s = 0;
		for (int i = 1; i < 20000; i++) { s += i % 7; }
		return s;
	} }`, "T", "f")
	mul := measure(t, `class T { static int f() {
		int s = 0;
		for (int i = 1; i < 20000; i++) { s += i * 7; }
		return s;
	} }`, "T", "f")
	ratio := float64(mod.Package) / float64(mul.Package)
	if ratio < 2 {
		t.Errorf("modulus/multiply program ratio = %.2f, want substantially above 1", ratio)
	}
}

func TestStaticFieldCostsMoreThanLocal(t *testing.T) {
	static := measure(t, `class T { static int acc = 0; static int f() {
		for (int i = 0; i < 10000; i++) { acc += i; }
		return acc;
	} }`, "T", "f")
	local := measure(t, `class T { static int f() {
		int acc = 0;
		for (int i = 0; i < 10000; i++) { acc += i; }
		return acc;
	} }`, "T", "f")
	ratio := float64(static.Package) / float64(local.Package)
	if ratio < 3 {
		t.Errorf("static/local program ratio = %.2f, want well above 1", ratio)
	}
}

func TestConcatCostsMoreThanStringBuilder(t *testing.T) {
	concat := measure(t, `class T { static int f() {
		String s = "";
		for (int i = 0; i < 300; i++) { s = s + "x"; }
		return s.length();
	} }`, "T", "f")
	builder := measure(t, `class T { static int f() {
		StringBuilder sb = new StringBuilder();
		for (int i = 0; i < 300; i++) { sb.append("x"); }
		return sb.toString().length();
	} }`, "T", "f")
	if float64(concat.Package)/float64(builder.Package) < 5 {
		t.Errorf("concat/builder ratio = %.2f, want ≫1 (quadratic vs linear)",
			float64(concat.Package)/float64(builder.Package))
	}
}

func TestColumnTraversalCostsMoreThanRow(t *testing.T) {
	// The matrix must exceed the 32 KiB cache in the column direction
	// (rows × 64 B line > cache) for column-major order to thrash; 600 rows
	// touch 37.5 KiB of lines per column sweep.
	row := measure(t, `class T { static int f() {
		int[][] m = new int[600][600];
		int s = 0;
		for (int i = 0; i < 600; i++) { for (int j = 0; j < 600; j++) { s += m[i][j]; } }
		return s;
	} }`, "T", "f")
	col := measure(t, `class T { static int f() {
		int[][] m = new int[600][600];
		int s = 0;
		for (int j = 0; j < 600; j++) { for (int i = 0; i < 600; i++) { s += m[i][j]; } }
		return s;
	} }`, "T", "f")
	ratio := float64(col.Package) / float64(row.Package)
	if ratio < 2 {
		t.Errorf("column/row ratio = %.3f, want ≥2 via cache misses (paper: up to 8.9×)", ratio)
	}
}

func TestArraycopyBeatsManualLoop(t *testing.T) {
	manual := measure(t, `class T { static int f() {
		int[] a = new int[5000]; int[] b = new int[5000];
		for (int i = 0; i < a.length; i++) { b[i] = a[i]; }
		return b[4999];
	} }`, "T", "f")
	sys := measure(t, `class T { static int f() {
		int[] a = new int[5000]; int[] b = new int[5000];
		System.arraycopy(a, 0, b, 0, 5000);
		return b[4999];
	} }`, "T", "f")
	if float64(manual.Package)/float64(sys.Package) < 1.5 {
		t.Errorf("manual/arraycopy ratio = %.2f, want >1.5 (both pay the same cold misses)",
			float64(manual.Package)/float64(sys.Package))
	}
}

// newInterpFromSource parses, loads and wraps src in an interpreter.
func newInterpFromSource(t *testing.T, src string) (*Interp, error) {
	t.Helper()
	f, err := parser.Parse("t.java", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	return New(prog, energy.NewMeter(energy.DefaultCosts()), WithMaxOps(10_000_000)), nil
}
