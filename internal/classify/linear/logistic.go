// Package linear implements the linear models: multinomial ridge Logistic
// regression (WEKA's Logistic, after le Cessie & van Houwelingen) and the
// stochastic-gradient-descent learner (WEKA's SGD with hinge loss).
package linear

import (
	"fmt"
	"math"

	"jepo/internal/classify"
	"jepo/internal/dataset"
)

// Logistic is multinomial logistic regression with an L2 (ridge) penalty,
// fit by deterministic mini-batch gradient descent over one-hot encoded
// features.
type Logistic struct {
	// Ridge is the L2 penalty (WEKA default 1e-8; a slightly larger value
	// stabilizes the one-hot airports).
	Ridge float64
	// Epochs is the number of full passes.
	Epochs int
	// LearningRate for gradient descent.
	LearningRate float64

	opts classify.Options
	enc  *classify.Encoder
	w    [][]float64 // [class][dim+1], last cell the intercept
	nc   int
}

// NewLogistic builds a Logistic with stock parameters.
func NewLogistic(opts classify.Options) *Logistic {
	return &Logistic{Ridge: 1e-4, Epochs: 30, LearningRate: 0.1, opts: opts}
}

// Name implements Classifier.
func (c *Logistic) Name() string { return "Logistic" }

// Train implements Classifier.
func (c *Logistic) Train(d *dataset.Dataset) error {
	if d.NumInstances() == 0 {
		return fmt.Errorf("logistic: empty training set")
	}
	c.enc = classify.NewEncoder(d)
	x, y := c.enc.EncodeAll(d)
	c.nc = d.NumClasses()
	dim := c.enc.Dim()
	c.w = make([][]float64, c.nc)
	for k := range c.w {
		c.w[k] = make([]float64, dim+1)
	}
	fp := c.opts.FP
	probs := make([]float64, c.nc)
	rng := classify.NewRNG(c.opts.Seed)
	order := make([]int, len(x))
	for i := range order {
		order[i] = i
	}
	lr := c.LearningRate
	for epoch := 0; epoch < c.Epochs; epoch++ {
		for i := len(order) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		for _, i := range order {
			c.scores(x[i], probs)
			softmax(probs, fp)
			for k := 0; k < c.nc; k++ {
				g := probs[k]
				if k == y[i] {
					g -= 1
				}
				wk := c.w[k]
				step := lr * g
				for f, v := range x[i] {
					if v == 0 {
						continue
					}
					wk[f] = fp.R(wk[f] - step*v - lr*c.Ridge*wk[f])
				}
				wk[dim] = fp.R(wk[dim] - step)
			}
		}
		lr *= 0.9 // simple decay
	}
	return nil
}

// scores writes wᵀx per class into out.
func (c *Logistic) scores(feat []float64, out []float64) {
	fp := c.opts.FP
	dim := c.enc.Dim()
	for k := 0; k < c.nc; k++ {
		s := c.w[k][dim]
		wk := c.w[k]
		for f, v := range feat {
			if v == 0 {
				continue
			}
			s = fp.R(s + wk[f]*v)
		}
		out[k] = s
	}
}

func softmax(xs []float64, fp classify.FP) {
	max := xs[0]
	for _, v := range xs {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range xs {
		xs[i] = math.Exp(fp.R(v - max))
		sum += xs[i]
	}
	for i := range xs {
		xs[i] = fp.R(xs[i] / sum)
	}
}

// Predict implements Classifier.
func (c *Logistic) Predict(row []float64) int {
	feat := make([]float64, c.enc.Dim())
	c.enc.Encode(row, feat)
	out := make([]float64, c.nc)
	c.scores(feat, out)
	return classify.ArgMax(out)
}
