package passes

import (
	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/token"
)

// The static-keyword pass: a mutable static field whose accesses all live in
// a single method is rewritten so that method loads the field into a local
// once, works on the local, and stores it back at every exit. This removes
// the per-access static penalty (the paper's +17,700%) without changing
// semantics for non-reentrant methods.
//
// Hoistability is a cross-file property (another class may also touch the
// field), so it is analyzed once up front; the per-field match hook then just
// consults the plan map.

type hoistPlan struct {
	method    *ast.Method
	className string
	fd        *ast.Field
}

// analyzeStatics finds every hoistable mutable static field.
func analyzeStatics(files []*ast.File) map[*ast.Field]*hoistPlan {
	type fieldKey struct{ class, field string }
	// Gather mutable static fields.
	statics := map[fieldKey]*ast.Field{}
	for _, f := range files {
		for _, c := range f.Classes {
			for _, fd := range c.Fields {
				if fd.Mods.Has(ast.ModStatic) && !fd.Mods.Has(ast.ModFinal) {
					statics[fieldKey{c.Name, fd.Name}] = fd
				}
			}
		}
	}
	if len(statics) == 0 {
		return nil
	}
	// Count accesses per (field, method). Unqualified idents are attributed
	// to the enclosing class; Class.field selects are attributed explicitly.
	type use struct {
		method *ast.Method
		count  int
	}
	uses := map[fieldKey][]*use{}
	for _, f := range files {
		for _, c := range f.Classes {
			for _, m := range c.Methods {
				if m.Body == nil {
					continue
				}
				counts := map[fieldKey]int{}
				locals := localNames(m)
				ast.Inspect(m.Body, func(n ast.Node) bool {
					switch x := n.(type) {
					case *ast.Ident:
						if locals[x.Name] {
							return true
						}
						k := fieldKey{c.Name, x.Name}
						if _, ok := statics[k]; ok {
							counts[k]++
						}
					case *ast.Select:
						if cls, ok := x.X.(*ast.Ident); ok {
							k := fieldKey{cls.Name, x.Name}
							if _, ok := statics[k]; ok {
								counts[k]++
							}
						}
					}
					return true
				})
				for k, n := range counts {
					uses[k] = append(uses[k], &use{method: m, count: n})
				}
			}
		}
	}
	plans := map[*ast.Field]*hoistPlan{}
	for k, fd := range statics {
		us := uses[k]
		// Safe to hoist only when a single method touches the field, and it
		// is worth it only when that method touches it repeatedly.
		if len(us) != 1 || us[0].count < 2 {
			continue
		}
		// Already hoisted (the method starts with the load this fix would
		// insert): applying again would shadow the load with a duplicate.
		if alreadyHoisted(us[0].method, k.class, fd) {
			continue
		}
		plans[fd] = &hoistPlan{method: us[0].method, className: k.class, fd: fd}
	}
	return plans
}

// alreadyHoisted reports whether the method body already begins with
// `T field = Class.field;` — the load hoistInMethod inserts.
func alreadyHoisted(m *ast.Method, className string, fd *ast.Field) bool {
	if m.Body == nil || len(m.Body.Stmts) == 0 {
		return false
	}
	lv, ok := m.Body.Stmts[0].(*ast.LocalVar)
	if !ok || lv.Name != fd.Name {
		return false
	}
	sel, ok := lv.Init.(*ast.Select)
	if !ok || sel.Name != fd.Name {
		return false
	}
	cls, ok := sel.X.(*ast.Ident)
	return ok && cls.Name == className
}

// localNames collects parameter and local variable names of a method, which
// shadow same-named statics.
func localNames(m *ast.Method) map[string]bool {
	names := map[string]bool{}
	for _, p := range m.Params {
		names[p.Name] = true
	}
	ast.Inspect(m.Body, func(n ast.Node) bool {
		if lv, ok := n.(*ast.LocalVar); ok {
			names[lv.Name] = true
		}
		return true
	})
	return names
}

// hoistFix restructures the using method. It runs in the first apply phase,
// before declaration surgery, so the load keeps the field's original type;
// the applier then mirrors the field's declaration fixes onto the load.
func hoistFix(plan *hoistPlan) *Fix {
	return &Fix{phase: phaseHoist, direct: func(ap *applier) int {
		load := hoistInMethod(plan.method, plan.className, plan.fd)
		ap.hoisted = append(ap.hoisted, hoistRecord{field: plan.fd, local: load})
		return 1
	}}
}

// hoistInMethod rewrites m so accesses to the static field go through a
// local, returning the inserted load declaration.
func hoistInMethod(m *ast.Method, className string, fd *ast.Field) *ast.LocalVar {
	pos := m.Pos
	classIdent := func() ast.Expr { return &ast.Ident{Pos: pos, Name: className} }
	// Qualified selects Class.field become plain idents so they hit the new
	// local; unqualified idents already resolve to it.
	replaceQualified(m.Body, className, fd.Name)
	writeback := func(p token.Pos) ast.Stmt {
		return &ast.ExprStmt{Pos: p, X: &ast.Assign{
			Pos: p, Op: token.Assign,
			LHS: &ast.Select{Pos: p, X: classIdent(), Name: fd.Name},
			RHS: &ast.Ident{Pos: p, Name: fd.Name},
		}}
	}
	insertWritebacks(m.Body, writeback)
	load := &ast.LocalVar{
		Pos:  pos,
		Type: fd.Type,
		Name: fd.Name,
		Init: &ast.Select{Pos: pos, X: classIdent(), Name: fd.Name},
	}
	stmts := append([]ast.Stmt{load}, m.Body.Stmts...)
	if !endsWithReturnOrThrow(m.Body) {
		stmts = append(stmts, writeback(pos))
	}
	m.Body.Stmts = stmts
	return load
}

// replaceQualified rewrites Class.field selects to bare idents in-place.
func replaceQualified(body *ast.Block, className, field string) {
	ast.Rewrite(body, func(c *ast.Cursor) bool {
		sel, ok := c.Node().(*ast.Select)
		if !ok {
			return true
		}
		if cls, ok := sel.X.(*ast.Ident); ok && cls.Name == className && sel.Name == field {
			c.Replace(&ast.Ident{Pos: sel.Pos, Name: field})
			return false
		}
		return true
	}, nil)
}

// insertWritebacks places the store-back before every return statement.
func insertWritebacks(body *ast.Block, mk func(token.Pos) ast.Stmt) {
	var fix func(s ast.Stmt)
	fixBlock := func(b *ast.Block) {
		out := make([]ast.Stmt, 0, len(b.Stmts))
		for _, st := range b.Stmts {
			if r, ok := st.(*ast.Return); ok {
				out = append(out, mk(r.Pos), r)
				continue
			}
			fix(st)
			out = append(out, st)
		}
		b.Stmts = out
	}
	fix = func(s ast.Stmt) {
		switch n := s.(type) {
		case *ast.Block:
			fixBlock(n)
		case *ast.If:
			n.Then = wrapReturn(n.Then, mk)
			fix(n.Then)
			if n.Else != nil {
				n.Else = wrapReturn(n.Else, mk)
				fix(n.Else)
			}
		case *ast.While:
			n.Body = wrapReturn(n.Body, mk)
			fix(n.Body)
		case *ast.DoWhile:
			n.Body = wrapReturn(n.Body, mk)
			fix(n.Body)
		case *ast.Switch:
			for ci := range n.Cases {
				out := make([]ast.Stmt, 0, len(n.Cases[ci].Stmts))
				for _, st := range n.Cases[ci].Stmts {
					if r, ok := st.(*ast.Return); ok {
						out = append(out, mk(r.Pos), r)
						continue
					}
					fix(st)
					out = append(out, st)
				}
				n.Cases[ci].Stmts = out
			}
		case *ast.For:
			n.Body = wrapReturn(n.Body, mk)
			fix(n.Body)
		case *ast.Try:
			fixBlock(n.Block)
			for _, c := range n.Catches {
				fixBlock(c.Block)
			}
			if n.Finally != nil {
				fixBlock(n.Finally)
			}
		}
	}
	fixBlock(body)
}

// wrapReturn turns a bare `return e;` body into a block so the writeback can
// precede it.
func wrapReturn(s ast.Stmt, mk func(token.Pos) ast.Stmt) ast.Stmt {
	if r, ok := s.(*ast.Return); ok {
		return &ast.Block{Pos: r.Pos, Stmts: []ast.Stmt{mk(r.Pos), r}}
	}
	return s
}

func endsWithReturnOrThrow(b *ast.Block) bool {
	if len(b.Stmts) == 0 {
		return false
	}
	switch b.Stmts[len(b.Stmts)-1].(type) {
	case *ast.Return, *ast.Throw:
		return true
	}
	return false
}
