package bytecode

import (
	"strconv"

	"jepo/internal/energy"
	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/token"
)

// Compile lowers one resolved method to bytecode. body overrides m.Body when
// non-nil (the probe injector compiles the original body it extracts from the
// AST-level instrumentation pattern). Compile returns nil when the method uses
// a construct the VM has no lowering for (try/catch, break or continue outside
// a loop); such methods stay on the tree-walker, which is bit-identical by
// definition.
//
// The invariant the compiler maintains is charge identity: executing the
// emitted instructions issues the exact same energy.Meter calls in the exact
// same order as the tree-walk of the same body, and the same total of op-budget
// steps. Walker steps that produce no instruction of their own are folded into
// the Steps field of the next emitted instruction (flushed as a standalone
// OpStep before jump targets so no path double- or under-counts).
func Compile(className string, m *ast.Method, body *ast.Block) (fn *Func) {
	if m.Body == nil {
		return nil
	}
	if body == nil {
		body = m.Body
	}
	nslots := int(m.NSlots)
	if nslots < len(m.Params) {
		return nil // unresolved method; leave it to the walker
	}
	c := &compiler{fn: &Func{
		Name:   className + "." + m.Name + "/" + strconv.Itoa(len(m.Params)),
		Method: m,
		NSlots: nslots,
	}}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(unsupported); ok {
				fn = nil
				return
			}
			panic(r)
		}
	}()
	c.stmt(body)
	// Falling off the end of the body: the walker's invoke treats it as a
	// void completion with no return-value coercion (B=0 marks "implicit").
	c.emit(Instr{Op: OpRetVoid})
	return c.fn
}

// unsupported aborts compilation; Compile's recover turns it into a nil Func
// and the method falls back to the tree-walker.
type unsupported struct{ what string }

type loopScope struct {
	isLoop bool  // false for switch scopes (break only)
	breaks []int // OpJmp indices to patch to the end of the construct
	conts  []int // OpJmp indices to patch to the continue target
}

type compiler struct {
	fn      *Func
	pending int // walker steps awaiting attachment to the next instruction
	depth   int // current operand-stack depth
	barrier int // highest jump target handed out; fusion must not cross it
	scopes  []loopScope
}

func (c *compiler) bail(what string) {
	panic(unsupported{what})
}

// step accumulates walker step() counts; they attach to the next emitted
// instruction.
func (c *compiler) step(n int) { c.pending += n }

// emit appends one instruction, folding pending steps into it.
func (c *compiler) emit(i Instr) int {
	for c.pending > 255 {
		c.fn.Code = append(c.fn.Code, Instr{Op: OpStep, Steps: 255})
		c.pending -= 255
	}
	i.Steps = uint8(c.pending)
	c.pending = 0
	c.fn.Code = append(c.fn.Code, i)
	return len(c.fn.Code) - 1
}

// flush materialises pending steps as a standalone OpStep. Called (via label)
// before binding a jump target so steps accumulated on the fall-through path
// are not re-charged when the target is reached by jumping.
func (c *compiler) flush() {
	for c.pending > 0 {
		n := c.pending
		if n > 255 {
			n = 255
		}
		c.fn.Code = append(c.fn.Code, Instr{Op: OpStep, Steps: uint8(n)})
		c.pending -= n
	}
}

// label flushes pending steps and returns the pc of the next instruction —
// the only safe way to produce a jump target. The returned pc becomes a
// fusion barrier: a peephole must never mutate an instruction a label (or a
// pending forward patch, which always goes through label) might target.
func (c *compiler) label() int {
	c.flush()
	if len(c.fn.Code) > c.barrier {
		c.barrier = len(c.fn.Code)
	}
	return len(c.fn.Code)
}

// patch sets the relative jump offset of the instruction at `at` to `target`.
func (c *compiler) patch(at, target int) {
	c.fn.Code[at].A = int32(target - at)
}

// comparisonTok reports whether op always produces a normalised boolean.
func comparisonTok(op token.Kind) bool {
	switch op {
	case token.Lt, token.Le, token.Gt, token.Ge, token.Eq, token.Ne:
		return true
	}
	return false
}

// condJmp emits a conditional jump consuming the condition value on the
// stack. When the condition was produced by a comparison superinstruction
// immediately before — and no jump target or pending steps can land between
// the two — the compare and the jump fuse into one opcode. The fused
// handlers issue the identical charge sequence, and a comparison always
// yields a boolean, so the jump's own unbox/type checks are unreachable.
func (c *compiler) condJmp(op Op, cond ast.Node) int {
	if c.pending == 0 && c.barrier < len(c.fn.Code) {
		last := len(c.fn.Code) - 1
		li := &c.fn.Code[last]
		if comparisonTok(li.Tok) {
			onTrue := op == OpJmpTrue
			switch li.Op {
			case OpBinLL:
				li.Op = fusedCmp(OpJmpCmpLLFalse, OpJmpCmpLLTrue, onTrue)
				li.C, li.A = li.A, 0 // B (second slot) stays in place
				return last
			case OpBinLC:
				li.Op = fusedCmp(OpJmpCmpLCFalse, OpJmpCmpLCTrue, onTrue)
				li.C, li.A = li.A, 0
				return last
			case OpBinary:
				li.Op = fusedCmp(OpJmpCmpFalse, OpJmpCmpTrue, onTrue)
				li.A = 0
				return last
			}
		}
	}
	return c.emit(Instr{Op: op, Node: cond})
}

func fusedCmp(onFalse, onTrue Op, wantTrue bool) Op {
	if wantTrue {
		return onTrue
	}
	return onFalse
}

// toBool emits the walker's condition coercion for the value on the stack,
// eliding it when the previous instruction provably left a normalised
// boolean there (comparisons, logical not, raw booleans) — OpToBool charges
// nothing, so elision cannot disturb the meter.
func (c *compiler) toBool(node ast.Node) {
	if c.pending == 0 && c.barrier < len(c.fn.Code) {
		li := &c.fn.Code[len(c.fn.Code)-1]
		switch li.Op {
		case OpBinLL, OpBinLC, OpBinary:
			if comparisonTok(li.Tok) {
				return
			}
		case OpNot, OpPushBool:
			return
		}
	}
	c.emit(Instr{Op: OpToBool, Node: node})
}

func (c *compiler) push(n int) {
	c.depth += n
	if c.depth > c.fn.MaxStack {
		c.fn.MaxStack = c.depth
	}
}

func (c *compiler) pop(n int) {
	c.depth -= n
	if c.depth < 0 {
		c.bail("stack underflow")
	}
}

func (c *compiler) constIx(lit *ast.Literal) int32 {
	c.fn.Consts = append(c.fn.Consts, lit)
	return int32(len(c.fn.Consts) - 1)
}

func (c *compiler) charge(op energy.Op, n int) {
	c.emit(Instr{Op: OpCharge, A: int32(op), B: int32(n)})
}

// --- statements ---

// stmt lowers one statement. Every statement starts with one walker step for
// its own node (exec's in.step()), accumulated as pending.
func (c *compiler) stmt(s ast.Stmt) {
	c.step(1)
	switch n := s.(type) {
	case *ast.ExprStmt:
		c.stmtExpr(n.X)
	case *ast.Block:
		for _, st := range n.Stmts {
			c.stmt(st)
		}
	case *ast.If:
		c.charge(energy.OpBranch, 1)
		c.expr(n.Cond)
		jf := c.condJmp(OpJmpFalse, n.Cond)
		c.pop(1)
		c.stmt(n.Then)
		if n.Else != nil {
			j := c.emit(Instr{Op: OpJmp})
			c.patch(jf, c.label())
			c.stmt(n.Else)
			c.patch(j, c.label())
		} else {
			c.patch(jf, c.label())
		}
	case *ast.While:
		// The walker charges one branch at the top of every iteration. The
		// first iteration's charge is hoisted above the loop head; the rest
		// ride the fused back-edge (OpJmpBranch), so each iteration costs one
		// dispatch less while the meter sees the identical charge sequence.
		c.charge(energy.OpBranch, 1)
		head := c.label()
		c.expr(n.Cond)
		jf := c.condJmp(OpJmpFalse, n.Cond)
		c.pop(1)
		c.openLoop()
		c.stmt(n.Body)
		back := c.emit(Instr{Op: OpJmpBranch})
		c.patch(back, head)
		end := c.label()
		c.patch(jf, end)
		c.closeLoop(end, back)
	case *ast.DoWhile:
		head := c.label()
		c.openLoop()
		c.stmt(n.Body)
		cont := c.label()
		c.charge(energy.OpBranch, 1)
		c.expr(n.Cond)
		jt := c.condJmp(OpJmpTrue, n.Cond)
		c.pop(1)
		c.patch(jt, head)
		c.closeLoop(c.label(), cont)
	case *ast.For:
		if n.Init != nil {
			c.stmt(n.Init)
		}
		// Same back-edge fusion as While; a condition-less for charges no
		// branch, so its back-edge stays a plain jump.
		backOp := OpJmp
		if n.Cond != nil {
			c.charge(energy.OpBranch, 1)
			backOp = OpJmpBranch
		}
		head := c.label()
		jf := -1
		if n.Cond != nil {
			c.expr(n.Cond)
			jf = c.condJmp(OpJmpFalse, n.Cond)
			c.pop(1)
		}
		c.openLoop()
		c.stmt(n.Body)
		cont := c.label()
		for _, post := range n.Post {
			c.stmtExpr(post)
		}
		back := c.emit(Instr{Op: backOp})
		c.patch(back, head)
		end := c.label()
		if jf >= 0 {
			c.patch(jf, end)
		}
		c.closeLoop(end, cont)
	case *ast.Return:
		if n.X == nil {
			c.emit(Instr{Op: OpRetVoid, B: 1})
		} else {
			c.expr(n.X)
			c.emit(Instr{Op: OpRet})
			c.pop(1)
		}
	case *ast.LocalVar:
		slot := int(n.Slot) - 1
		if slot < 0 || slot >= c.fn.NSlots {
			c.bail("unresolved local") // walker reports the error at runtime
		}
		switch {
		case n.Init == nil:
			c.emit(Instr{Op: OpLocalZero, A: int32(slot), Node: n})
		default:
			if _, isLit := n.Init.(*ast.ArrayLit); isLit {
				c.emit(Instr{Op: OpLocalDecl, A: int32(slot), B: 1, Node: n})
			} else {
				c.expr(n.Init)
				c.emit(Instr{Op: OpLocalDecl, A: int32(slot), Node: n})
				c.pop(1)
			}
		}
	case *ast.Switch:
		c.lowerSwitch(n)
	case *ast.Break:
		sc := c.innermost(false)
		if sc == nil {
			c.bail("break outside loop/switch")
		}
		sc.breaks = append(sc.breaks, c.emit(Instr{Op: OpJmp}))
	case *ast.Continue:
		sc := c.innermost(true)
		if sc == nil {
			c.bail("continue outside loop")
		}
		sc.conts = append(sc.conts, c.emit(Instr{Op: OpJmp}))
	case *ast.Empty:
		// The node's step stays pending and folds into whatever follows.
	case *ast.Throw:
		c.expr(n.X)
		c.emit(Instr{Op: OpThrow, Node: n})
		c.pop(1)
	default:
		// try/catch (and anything new) has no lowering; the whole method
		// runs on the walker.
		c.bail("statement without lowering")
	}
}

func (c *compiler) openLoop() {
	c.scopes = append(c.scopes, loopScope{isLoop: true})
}

func (c *compiler) closeLoop(end, cont int) {
	sc := c.scopes[len(c.scopes)-1]
	c.scopes = c.scopes[:len(c.scopes)-1]
	for _, at := range sc.breaks {
		c.patch(at, end)
	}
	for _, at := range sc.conts {
		c.patch(at, cont)
	}
}

// innermost returns the scope a break (any) or continue (loops only) targets.
func (c *compiler) innermost(needLoop bool) *loopScope {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if !needLoop || c.scopes[i].isLoop {
			return &c.scopes[i]
		}
	}
	return nil
}

// lowerSwitch compiles the comparison chain (tag stays on the stack while
// candidate values are compared in source order) followed by the arm bodies
// with Java fall-through. Break jumps to the end via a switch scope.
func (c *compiler) lowerSwitch(n *ast.Switch) {
	c.expr(n.Tag)
	c.emit(Instr{Op: OpSwitchTag, Node: n})
	defaultIx := -1
	armJumps := make([][]int, len(n.Cases))
	for ci, arm := range n.Cases {
		if len(arm.Values) == 0 {
			defaultIx = ci
			continue
		}
		for _, ve := range arm.Values {
			c.expr(ve)
			armJumps[ci] = append(armJumps[ci], c.emit(Instr{Op: OpCaseCmp, Node: n}))
			c.pop(1)
		}
	}
	swEnd := c.emit(Instr{Op: OpSwitchEnd, Node: n})
	c.pop(1) // the tag is consumed on every outgoing edge
	c.scopes = append(c.scopes, loopScope{})
	armPos := make([]int, len(n.Cases))
	for ci, arm := range n.Cases {
		armPos[ci] = c.label()
		for _, st := range arm.Stmts {
			c.stmt(st)
		}
	}
	end := c.label()
	sc := c.scopes[len(c.scopes)-1]
	c.scopes = c.scopes[:len(c.scopes)-1]
	for ci, js := range armJumps {
		for _, at := range js {
			c.patch(at, armPos[ci])
		}
	}
	if defaultIx >= 0 {
		c.patch(swEnd, armPos[defaultIx])
	} else {
		c.patch(swEnd, end)
	}
	for _, at := range sc.breaks {
		c.patch(at, end)
	}
}

// stmtExpr lowers an expression in statement position with the walker's
// evalStmtExpr step accounting (one step for the expression node, result
// discarded).
func (c *compiler) stmtExpr(e ast.Expr) {
	switch x := e.(type) {
	case *ast.Assign:
		c.lowerAssign(x, false)
	case *ast.Unary:
		c.lowerUnary(x, false)
	default:
		c.expr(e)
		c.emit(Instr{Op: OpPop})
		c.pop(1)
	}
}

// --- expressions ---

// expr lowers one expression, leaving exactly one value on the stack.
func (c *compiler) expr(e ast.Expr) {
	switch n := e.(type) {
	case *ast.Ident:
		c.step(1)
		if slot := int(n.RSlot) - 1; slot >= 0 {
			c.emit(Instr{Op: OpLoadLocal, A: int32(slot), Node: n})
		} else {
			c.emit(Instr{Op: OpLoadIdent, Node: n})
		}
		c.push(1)
	case *ast.Literal:
		c.step(1)
		c.emit(Instr{Op: OpConst, A: c.constIx(n), Node: n})
		c.push(1)
	case *ast.Binary:
		c.lowerBinary(n)
	case *ast.Assign:
		c.lowerAssign(n, true)
	case *ast.Select:
		c.step(1)
		c.expr(n.X)
		c.emit(Instr{Op: OpLoadSelect, Node: n})
	case *ast.Call:
		c.lowerCall(n)
	case *ast.Index:
		c.step(1)
		c.expr(n.X)
		if id, ok := n.I.(*ast.Ident); ok && id.RSlot > 0 {
			// a[i] with a local index: fold the index read into the access.
			// The handler charges the local read exactly where the
			// stand-alone load instruction would have.
			c.step(1)
			c.emit(Instr{Op: OpLoadIndexL, A: id.RSlot - 1, Node: n})
			break
		}
		c.expr(n.I)
		c.emit(Instr{Op: OpLoadIndex, Node: n})
		c.pop(1)
	case *ast.Unary:
		c.lowerUnary(n, true)
	case *ast.This:
		c.step(1)
		c.emit(Instr{Op: OpLoadThis, Node: n})
		c.push(1)
	case *ast.New:
		c.step(1)
		for _, a := range n.Args {
			c.expr(a)
		}
		c.emit(Instr{Op: OpNew, A: int32(len(n.Args)), Node: n})
		c.pop(len(n.Args))
		c.push(1)
	case *ast.NewArray:
		c.step(1)
		for _, le := range n.Lens {
			c.expr(le)
			c.emit(Instr{Op: OpLenCheck, Node: n})
		}
		c.emit(Instr{Op: OpNewArray, A: int32(len(n.Lens)), Node: n})
		c.pop(len(n.Lens))
		c.push(1)
	case *ast.Ternary:
		c.step(1)
		c.charge(energy.OpBranch, 1)
		c.charge(energy.OpTernary, 1)
		c.expr(n.Cond)
		jf := c.condJmp(OpJmpFalse, n.Cond)
		c.pop(1)
		d0 := c.depth
		c.expr(n.Then)
		j := c.emit(Instr{Op: OpJmp})
		c.patch(jf, c.label())
		c.depth = d0 // both branches enter at the same depth, produce one value
		c.expr(n.Else)
		c.patch(j, c.label())
	case *ast.Cast:
		c.step(1)
		c.expr(n.X)
		c.emit(Instr{Op: OpCast, Node: n})
	case *ast.InstanceOf:
		c.step(1)
		c.expr(n.X)
		c.emit(Instr{Op: OpInstanceOf, Node: n})
	default:
		// ArrayLit outside an initializer and future node kinds: hand the
		// whole subtree to the walker, which steps and charges internally.
		c.emit(Instr{Op: OpEval, Node: n})
		c.push(1)
	}
}

func (c *compiler) lowerBinary(n *ast.Binary) {
	switch n.Op {
	case token.AndAnd, token.OrOr:
		// Short circuit: charge one branch, evaluate X as a condition; only
		// when the answer is still open does Y run (as a condition too). The
		// walker materialises the short-circuit result without a charge.
		c.step(1)
		c.charge(energy.OpBranch, 1)
		c.expr(n.X)
		var jshort int
		if n.Op == token.AndAnd {
			jshort = c.condJmp(OpJmpFalse, n.X)
		} else {
			jshort = c.condJmp(OpJmpTrue, n.X)
		}
		c.pop(1)
		d0 := c.depth
		c.expr(n.Y)
		c.toBool(n.Y)
		j := c.emit(Instr{Op: OpJmp})
		c.patch(jshort, c.label())
		c.depth = d0
		if n.Op == token.AndAnd {
			c.emit(Instr{Op: OpPushBool, A: 0})
		} else {
			c.emit(Instr{Op: OpPushBool, A: 1})
		}
		c.push(1)
		c.patch(j, c.label())
		return
	}
	// Superinstructions for the dominant operand shapes: local⊕local and
	// local⊕constant collapse three dispatches into one. Their handlers issue
	// the same step/charge sequence as the generic path.
	if xid, ok := n.X.(*ast.Ident); ok {
		if yid, ok := n.Y.(*ast.Ident); ok {
			c.step(3)
			c.emit(Instr{Op: OpBinLL, Tok: n.Op, A: xid.RSlot - 1, B: yid.RSlot - 1, Node: n})
			c.push(1)
			return
		}
		if ylit, ok := n.Y.(*ast.Literal); ok {
			c.step(3)
			c.emit(Instr{Op: OpBinLC, Tok: n.Op, A: xid.RSlot - 1, B: c.constIx(ylit), Node: n})
			c.push(1)
			return
		}
	}
	c.step(1)
	c.expr(n.X)
	c.expr(n.Y)
	c.emit(Instr{Op: OpBinary, Tok: n.Op, Node: n})
	c.pop(1)
}

// lowerAssign compiles simple and compound assignment. asExpr keeps the
// walker's expression value (the pre-coercion RHS) on the stack.
func (c *compiler) lowerAssign(n *ast.Assign, asExpr bool) {
	// One step for the Assign node itself (eval / evalStmtExpr).
	c.step(1)
	if n.Op == token.Assign {
		if _, isLit := n.RHS.(*ast.ArrayLit); isLit {
			// Array-literal RHS needs lvalueType's evaluation order; delegate
			// the whole assignment to the walker.
			op := OpAssign
			if asExpr {
				op = OpAssignX
			}
			c.emit(Instr{Op: op, Node: n})
			if asExpr {
				c.push(1)
			}
			return
		}
		c.expr(n.RHS)
	} else {
		// Compound: read the target, evaluate the RHS, apply the base
		// operator — the walker's readLValue / operand / binary order.
		switch l := n.LHS.(type) {
		case *ast.Ident:
			c.step(1)
			if slot := int(l.RSlot) - 1; slot >= 0 {
				c.emit(Instr{Op: OpLoadLocal, A: int32(slot), Node: l})
			} else {
				// Non-local target (static or field): the dynamic load lets
				// Finalize pin it like any other identifier read.
				c.emit(Instr{Op: OpLoadIdent, Node: l})
			}
			c.push(1)
		case *ast.Select:
			c.step(1)
			c.expr(l.X)
			c.emit(Instr{Op: OpLoadSelect, Node: l})
		case *ast.Index:
			c.step(1)
			c.expr(l.X)
			if id, ok := l.I.(*ast.Ident); ok && id.RSlot > 0 {
				c.step(1)
				c.emit(Instr{Op: OpLoadIndexL, A: id.RSlot - 1, Node: l})
			} else {
				c.expr(l.I)
				c.emit(Instr{Op: OpLoadIndex, Node: l})
				c.pop(1)
			}
		default:
			c.bail("compound assignment to non-lvalue")
		}
		c.expr(n.RHS)
		c.emit(Instr{Op: OpBinary, Tok: compoundBase(n.Op), Node: n})
		c.pop(1)
	}
	// The store. Select and Index targets re-evaluate their receiver inside
	// the store, after the RHS — exactly the walker's writeLValue order
	// (compound assignments therefore evaluate the receiver twice, like the
	// tree-walk does).
	switch l := n.LHS.(type) {
	case *ast.Ident:
		op := OpStoreLocal
		if asExpr {
			op = OpStoreLocalX
		}
		if l.RSlot <= 0 {
			op = OpStoreIdent
			if asExpr {
				op = OpStoreIdentX
			}
		}
		c.emit(Instr{Op: op, A: l.RSlot - 1, Node: l})
	case *ast.Select:
		op := OpStoreSelect
		if asExpr {
			op = OpStoreSelectX
		}
		c.emit(Instr{Op: op, Node: l})
	case *ast.Index:
		c.expr(l.X)
		if id, ok := l.I.(*ast.Ident); ok && id.RSlot > 0 {
			c.step(1)
			op := OpStoreIndexL
			if asExpr {
				op = OpStoreIndexLX
			}
			c.emit(Instr{Op: op, A: id.RSlot - 1, Node: l})
			c.pop(1)
		} else {
			c.expr(l.I)
			op := OpStoreIndex
			if asExpr {
				op = OpStoreIndexX
			}
			c.emit(Instr{Op: op, Node: l})
			c.pop(2)
		}
	default:
		c.bail("assignment to non-lvalue")
	}
	if !asExpr {
		c.pop(1)
	}
}

func (c *compiler) lowerUnary(n *ast.Unary, asExpr bool) {
	switch n.Op {
	case token.Minus:
		c.step(1)
		c.expr(n.X)
		c.emit(Instr{Op: OpNeg, Node: n})
	case token.Not:
		c.step(1)
		c.expr(n.X)
		c.emit(Instr{Op: OpNot, Node: n})
	case token.Inc, token.Dec:
		if id, ok := n.X.(*ast.Ident); ok && id.RSlot > 0 {
			delta := int32(1)
			if n.Op == token.Dec {
				delta = -1
			}
			c.step(1)
			op := OpIncLocal
			if asExpr {
				op = OpIncLocalX
			}
			c.emit(Instr{Op: op, A: id.RSlot - 1, B: delta, Node: n})
			if asExpr {
				c.push(1)
			}
			return
		}
		// ++/-- on fields and array elements: walker-delegate the whole node.
		c.emit(Instr{Op: OpEval, Node: n})
		c.push(1)
	default:
		c.emit(Instr{Op: OpEval, Node: n})
		c.push(1)
	}
	if !asExpr {
		c.emit(Instr{Op: OpPop})
		c.pop(1)
	}
}

func (c *compiler) lowerCall(n *ast.Call) {
	c.step(1)
	hasRecv := int32(0)
	if n.Recv != nil {
		c.expr(n.Recv)
		hasRecv = 1
	}
	for _, a := range n.Args {
		c.expr(a)
	}
	c.emit(Instr{Op: OpCall, A: int32(len(n.Args)), B: hasRecv, Node: n})
	c.pop(len(n.Args) + int(hasRecv))
	c.push(1)
}

// compoundBase maps a compound assignment operator to its base operator
// (mirrors the interpreter's table).
func compoundBase(op token.Kind) token.Kind {
	switch op {
	case token.PlusEq:
		return token.Plus
	case token.MinusEq:
		return token.Minus
	case token.StarEq:
		return token.Star
	case token.SlashEq:
		return token.Slash
	case token.PercentEq:
		return token.Percent
	case token.AndEq:
		return token.BitAnd
	case token.OrEq:
		return token.BitOr
	case token.XorEq:
		return token.BitXor
	}
	return op
}
