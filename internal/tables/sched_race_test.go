package tables

import (
	"context"
	"math"
	"testing"

	"jepo/internal/energy"
	"jepo/internal/minijava/interp"
	"jepo/internal/minijava/parser"
	"jepo/internal/sched"
)

// TestSchedMapTable1CorpusSharedPrograms runs the whole Table I corpus
// concurrently through sched.Map with every compiled Program loaded once and
// shared across tasks — each task only builds its own Interp and meter. This
// is exactly the sharing pattern Table1Jobs and the golden sched battery
// rely on; under scripts/check.sh's -race gate it proves the compiled
// bytecode, constant pools and AST are never mutated by execution, and the
// bit-comparison proves per-task isolation of all charging state.
func TestSchedMapTable1CorpusSharedPrograms(t *testing.T) {
	benches := InterpBenches()
	progs := make([]*interp.Program, len(benches))
	for i, b := range benches {
		f, err := parser.Parse(b.Name+".java", b.Src)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if progs[i], err = interp.Load(f); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
	}

	run := func(jobs int) []uint64 {
		// Each bench runs twice per pass to double the concurrent load on the
		// shared programs.
		out, _, err := sched.Map(context.Background(), sched.Config{Jobs: jobs, Seed: 20200518}, make([]struct{}, 2*len(benches)),
			func(task sched.Task, _ struct{}) (uint64, error) {
				prog := progs[task.Index%len(progs)]
				in := interp.New(prog, energy.NewMeter(energy.DefaultCosts()),
					interp.WithMaxOps(200_000_000))
				if err := in.InitStatics(); err != nil {
					return 0, err
				}
				if _, err := in.CallStatic("B", "f"); err != nil {
					return 0, err
				}
				return math.Float64bits(float64(in.Meter().Snapshot().Package)), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	want := run(1)
	for _, jobs := range []int{4, 8} {
		got := run(jobs)
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("jobs=%d: task %d (%s) joules %#x, sequential %#x",
					jobs, i, benches[i%len(benches)].Name, got[i], want[i])
			}
		}
	}
}
