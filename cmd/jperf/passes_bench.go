// The passes benchmark quantifies the unified pass engine's headline claim:
// every Table I rule runs in one shared AST traversal per file, where the
// seed architecture walked the tree once per rule. It analyzes a generated
// Table I corpus both ways — one unified analysis vs thirteen single-rule
// analyses (each a full traversal that dispatches only that rule's hooks,
// which is what the per-rule matchers amounted to) — and writes the wall
// times to BENCH_passes.json.
//
// Usage:
//
//	jperf bench -passes [-o BENCH_passes.json] [-r repeats]
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"jepo/internal/corpus"
	"jepo/internal/minijava/ast"
	"jepo/internal/passes"
)

// passesPoint is one analysis strategy's measurement.
type passesPoint struct {
	Name        string  `json:"name"`
	Traversals  int     `json:"traversals_per_file"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	Diagnostics int     `json:"diagnostics"`
}

// passesReport is the BENCH_passes.json document.
type passesReport struct {
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	Classifier  string        `json:"classifier"`
	CorpusFiles int           `json:"corpus_files"`
	Benchmarks  []passesPoint `json:"benchmarks"`
	Speedup     float64       `json:"speedup"`
}

// runPassesBench measures unified vs per-rule analysis over one classifier's
// Table I corpus and writes the report.
func runPassesBench(out string, repeats int) error {
	const classifier = "J48"
	p, err := corpus.Generate(classifier, 20200518)
	if err != nil {
		return err
	}
	files, err := p.Parse()
	if err != nil {
		return err
	}

	unified := func() int { return len(passes.AnalyzeFiles(files)) }
	perRule := func() int {
		n := 0
		for _, r := range passes.AllRules() {
			n += len(passes.AnalyzeFilesRules(files, r))
		}
		return n
	}

	one := timeAnalysis("analyze/unified-one-traversal", 1, repeats, files, unified)
	thirteen := timeAnalysis("analyze/per-rule-traversals", passes.NumRules, repeats, files, perRule)

	report := passesReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Classifier:  classifier,
		CorpusFiles: len(files),
		Benchmarks:  []passesPoint{one, thirteen},
	}
	if one.NsPerOp > 0 {
		report.Speedup = thirteen.NsPerOp / one.NsPerOp
	}
	for _, pt := range report.Benchmarks {
		fmt.Printf("%-36s %12.0f ns/op %6d diagnostics\n", pt.Name, pt.NsPerOp, pt.Diagnostics)
	}
	fmt.Printf("one shared traversal is %.1fx cheaper than %d per-rule traversals\n",
		report.Speedup, passes.NumRules)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// timeAnalysis runs f repeats times after one warmup and returns the mean
// wall time. Analysis never mutates the ASTs, so the parsed corpus is shared.
func timeAnalysis(name string, traversals, repeats int, files []*ast.File, f func() int) passesPoint {
	diags := f() // warmup; also pins the diagnostic count
	t0 := time.Now()
	for i := 0; i < repeats; i++ {
		f()
	}
	wall := time.Since(t0)
	return passesPoint{
		Name:        name,
		Traversals:  traversals,
		Runs:        repeats,
		NsPerOp:     float64(wall.Nanoseconds()) / float64(repeats),
		Diagnostics: diags,
	}
}
