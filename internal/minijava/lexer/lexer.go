// Package lexer implements the scanner for the mini-Java dialect.
package lexer

import (
	"fmt"
	"strings"

	"jepo/internal/minijava/token"
)

// Error is a lexical error with its position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans mini-Java source text into tokens.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// New builds a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Scan tokenizes the whole input, returning the token stream (terminated by
// an EOF token) or the first lexical error.
func Scan(src string) ([]token.Token, error) {
	lx := New(src)
	var toks []token.Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() token.Pos { return token.Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) errf(pos token.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// skipSpaceAndComments consumes whitespace, // and /* */ comments.
func (lx *Lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			for {
				if lx.off >= len(lx.src) {
					return lx.errf(start, "unterminated block comment")
				}
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isLetter(c byte) bool {
	return c == '_' || c == '$' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// Next scans the next token.
func (lx *Lexer) Next() (token.Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return token.Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return token.Token{Kind: token.EOF, Pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case isLetter(c):
		return lx.scanIdent(pos), nil
	case isDigit(c):
		return lx.scanNumber(pos)
	case c == '.' && isDigit(lx.peek2()):
		return lx.scanNumber(pos)
	case c == '"':
		return lx.scanString(pos)
	case c == '\'':
		return lx.scanChar(pos)
	}
	return lx.scanOperator(pos)
}

func (lx *Lexer) scanIdent(pos token.Pos) token.Token {
	start := lx.off
	for lx.off < len(lx.src) && (isLetter(lx.peek()) || isDigit(lx.peek())) {
		lx.advance()
	}
	text := lx.src[start:lx.off]
	if k, ok := token.Keywords[text]; ok {
		return token.Token{Kind: k, Text: text, Pos: pos}
	}
	return token.Token{Kind: token.IDENT, Text: text, Pos: pos}
}

func (lx *Lexer) scanNumber(pos token.Pos) (token.Token, error) {
	start := lx.off
	kind := token.INTLIT
	sawDot, sawExp := false, false
	if lx.peek() == '0' && (lx.peek2() == 'x' || lx.peek2() == 'X') {
		lx.advance()
		lx.advance()
		for lx.off < len(lx.src) && isHex(lx.peek()) {
			lx.advance()
		}
		if lx.peek() == 'L' || lx.peek() == 'l' {
			lx.advance()
			kind = token.LONGLIT
		}
		return token.Token{Kind: kind, Text: lx.src[start:lx.off], Pos: pos}, nil
	}
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case isDigit(c) || c == '_':
			lx.advance()
		case c == '.' && !sawDot && !sawExp:
			sawDot = true
			kind = token.DOUBLELIT
			lx.advance()
		case (c == 'e' || c == 'E') && !sawExp:
			sawExp = true
			kind = token.DOUBLELIT
			lx.advance()
			if lx.peek() == '+' || lx.peek() == '-' {
				lx.advance()
			}
			if !isDigit(lx.peek()) {
				return token.Token{}, lx.errf(pos, "malformed exponent in numeric literal")
			}
		default:
			goto suffix
		}
	}
suffix:
	if lx.off < len(lx.src) {
		switch lx.peek() {
		case 'L', 'l':
			if kind != token.INTLIT {
				return token.Token{}, lx.errf(pos, "L suffix on floating-point literal")
			}
			lx.advance()
			kind = token.LONGLIT
		case 'f', 'F':
			lx.advance()
			kind = token.FLOATLIT
		case 'd', 'D':
			lx.advance()
			kind = token.DOUBLELIT
		}
	}
	return token.Token{Kind: kind, Text: lx.src[start:lx.off], Pos: pos}, nil
}

func isHex(c byte) bool {
	return isDigit(c) || ('a' <= c && c <= 'f') || ('A' <= c && c <= 'F')
}

func (lx *Lexer) scanString(pos token.Pos) (token.Token, error) {
	start := lx.off
	lx.advance() // opening quote
	for {
		if lx.off >= len(lx.src) || lx.peek() == '\n' {
			return token.Token{}, lx.errf(pos, "unterminated string literal")
		}
		c := lx.advance()
		if c == '\\' {
			if lx.off >= len(lx.src) {
				return token.Token{}, lx.errf(pos, "unterminated escape in string literal")
			}
			lx.advance()
			continue
		}
		if c == '"' {
			break
		}
	}
	return token.Token{Kind: token.STRINGLIT, Text: lx.src[start:lx.off], Pos: pos}, nil
}

func (lx *Lexer) scanChar(pos token.Pos) (token.Token, error) {
	start := lx.off
	lx.advance() // opening quote
	if lx.off >= len(lx.src) {
		return token.Token{}, lx.errf(pos, "unterminated char literal")
	}
	if lx.peek() == '\\' {
		lx.advance()
		if lx.off >= len(lx.src) {
			return token.Token{}, lx.errf(pos, "unterminated char literal")
		}
		lx.advance()
	} else if lx.peek() == '\'' {
		return token.Token{}, lx.errf(pos, "empty char literal")
	} else {
		lx.advance()
	}
	if lx.off >= len(lx.src) || lx.peek() != '\'' {
		return token.Token{}, lx.errf(pos, "unterminated char literal")
	}
	lx.advance()
	return token.Token{Kind: token.CHARLIT, Text: lx.src[start:lx.off], Pos: pos}, nil
}

// two-char and one-char operator tables, longest match first.
var twoChar = map[string]token.Kind{
	"<<": token.Shl, ">>": token.Shr, "&&": token.AndAnd, "||": token.OrOr,
	"==": token.Eq, "!=": token.Ne, "<=": token.Le, ">=": token.Ge,
	"++": token.Inc, "--": token.Dec,
	"+=": token.PlusEq, "-=": token.MinusEq, "*=": token.StarEq,
	"/=": token.SlashEq, "%=": token.PercentEq,
	"&=": token.AndEq, "|=": token.OrEq, "^=": token.XorEq,
}

var oneChar = map[byte]token.Kind{
	'(': token.LParen, ')': token.RParen, '{': token.LBrace, '}': token.RBrace,
	'[': token.LBracket, ']': token.RBracket, ';': token.Semi, ',': token.Comma,
	'.': token.Dot, '?': token.Question, ':': token.Colon, '=': token.Assign,
	'+': token.Plus, '-': token.Minus, '*': token.Star, '/': token.Slash,
	'%': token.Percent, '!': token.Not, '&': token.BitAnd, '|': token.BitOr,
	'^': token.BitXor, '<': token.Lt, '>': token.Gt,
}

func (lx *Lexer) scanOperator(pos token.Pos) (token.Token, error) {
	if lx.off+1 < len(lx.src) {
		two := lx.src[lx.off : lx.off+2]
		if k, ok := twoChar[two]; ok {
			lx.advance()
			lx.advance()
			return token.Token{Kind: k, Text: two, Pos: pos}, nil
		}
	}
	c := lx.peek()
	if k, ok := oneChar[c]; ok {
		lx.advance()
		return token.Token{Kind: k, Text: string(c), Pos: pos}, nil
	}
	return token.Token{}, lx.errf(pos, "unexpected character %q", string(c))
}

// IsScientific reports whether a floating-point literal spelling uses
// scientific notation — the distinction Table I's second row is about.
func IsScientific(text string) bool {
	return strings.ContainsAny(text, "eE") && !strings.HasPrefix(text, "0x") && !strings.HasPrefix(text, "0X")
}
