// Package suggest renders JEPO's suggestion view: the eleven energy-efficiency
// rules of the paper's Table I, as positioned suggestions over parsed
// mini-Java files. Detection itself lives in the unified pass engine
// (internal/passes); this package adapts its diagnostics to the suggestion
// shape the dynamic view (Fig. 2) and optimizer view (Fig. 5) print, and
// re-exports the rule identifiers and loop matchers of its published API.
package suggest

import (
	"fmt"

	"jepo/internal/minijava/ast"
	"jepo/internal/passes"
)

// Rule identifies one Table I row.
type Rule = passes.Rule

// The eleven Table I rules, in the table's order, followed by the extension
// rules for the "exception" and "objects" components.
const (
	RulePrimitiveTypes     = passes.RulePrimitiveTypes
	RuleScientificNotation = passes.RuleScientificNotation
	RuleWrapperClasses     = passes.RuleWrapperClasses
	RuleStaticKeyword      = passes.RuleStaticKeyword
	RuleModulusOperator    = passes.RuleModulusOperator
	RuleTernaryOperator    = passes.RuleTernaryOperator
	RuleShortCircuit       = passes.RuleShortCircuit
	RuleStringConcat       = passes.RuleStringConcat
	RuleStringComparison   = passes.RuleStringComparison
	RuleArraysCopy         = passes.RuleArraysCopy
	RuleArrayTraversal     = passes.RuleArrayTraversal
	RuleExceptionInLoop    = passes.RuleExceptionInLoop
	RuleObjectInLoop       = passes.RuleObjectInLoop
)

// NumTableIRules is the number of rules Table I quantifies.
const NumTableIRules = passes.NumTableIRules

// NumRules is the total rule count including the extension rules.
const NumRules = passes.NumRules

// TableIRules lists only the rules Table I quantifies, in the table's order.
func TableIRules() []Rule { return passes.TableIRules() }

// AllRules lists every rule — Table I plus the extension rules.
func AllRules() []Rule { return passes.AllRules() }

// Suggestion is one positioned finding.
type Suggestion struct {
	File    string
	Class   string
	Method  string // empty for field-level findings
	Line    int
	Rule    Rule
	Detail  string // what was found, e.g. "field 'total' declared double"
	CanAuto bool   // the refactor package can apply this mechanically
}

// String renders the optimizer-view row (Fig. 5): class, line, suggestion.
func (s Suggestion) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s (%s)", s.Class, s.Line, s.Rule.Component(), s.Rule.Text(), s.Detail)
}

func fromDiagnostics(diags []passes.Diagnostic) []Suggestion {
	out := make([]Suggestion, 0, len(diags))
	for _, d := range diags {
		out = append(out, Suggestion{
			File:   d.File,
			Class:  d.Class,
			Method: d.Method,
			Line:   d.Line,
			Rule:   d.Rule,
			Detail: d.Detail,
			// A suggestion is mechanically applicable exactly when the pass
			// attached a fix: the suggest and refactor sides can no longer
			// disagree about what is automatic.
			CanAuto: d.Fix != nil,
		})
	}
	return out
}

// Analyze runs every pass over a file and returns suggestions ordered by
// line.
func Analyze(file *ast.File) []Suggestion {
	return fromDiagnostics(passes.AnalyzeFiles([]*ast.File{file}))
}

// AnalyzeAll analyzes many files.
func AnalyzeAll(files []*ast.File) []Suggestion {
	return fromDiagnostics(passes.AnalyzeFiles(files))
}

// CountByRule tallies suggestions per rule.
func CountByRule(sugs []Suggestion) map[Rule]int {
	m := make(map[Rule]int)
	for _, s := range sugs {
		m[s.Rule]++
	}
	return m
}

// CopyLoop describes a matched manual array-copy loop.
type CopyLoop = passes.CopyLoop

// ColumnLoop describes a matched column-major nested traversal.
type ColumnLoop = passes.ColumnLoop

// MatchManualArrayCopy recognizes `for (int i = 0; i < N; i++) dst[i] = src[i];`.
func MatchManualArrayCopy(f *ast.For) *CopyLoop { return passes.MatchManualArrayCopy(f) }

// MatchColumnTraversal recognizes a column-major nested loop traversal.
func MatchColumnTraversal(f *ast.For) *ColumnLoop { return passes.MatchColumnTraversal(f) }
