# Standard entry points for the reproduction repo.

.PHONY: build test check bench-interp bench-passes faultmatrix

build:
	go build ./...

test:
	go test ./...

# Formatting, vet and the race-enabled test suite in one gate.
check:
	sh scripts/check.sh

# Interpreter benchmark trajectory: wall-clock ns/op + simulated µJ/op for
# the Table I corpus, written to BENCH_interp.json.
bench-interp:
	go run ./cmd/jperf bench -o BENCH_interp.json

# Pass-engine benchmark: one shared analysis traversal vs the seed's
# per-rule traversals over the Table I corpus, written to BENCH_passes.json.
bench-passes:
	go run ./cmd/jperf bench -passes -o BENCH_passes.json

# Seeded fault-injection fuzz over the measurement layer: random fault mixes
# against the resilient source, the sampler unwrap, and profiled runs.
faultmatrix:
	go test -tags faultmatrix -run FaultMatrix ./internal/rapl/... ./internal/profile/...
