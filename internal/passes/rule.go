// Package passes is JEPO's unified pass engine: every Table I rule is a
// registered Pass whose match hooks run inside one shared AST traversal per
// file, emitting positioned Diagnostics. A diagnostic that can be repaired
// mechanically carries a Fix; ApplyFixes replays a set of fixes over the
// trees through the ast.Rewrite cursor API. Detection therefore exists once:
// the suggest package renders diagnostics as suggestions, and the refactor
// package applies their fixes — neither re-matches anything.
package passes

import "fmt"

// Rule identifies one Table I row.
type Rule int

// The eleven Table I rules, in the table's order, followed by the extension
// rules for the "exception" and "objects" components the paper's abstract
// lists but Table I does not quantify (its §IX names "more suggestions" as
// future work).
const (
	RulePrimitiveTypes Rule = iota
	RuleScientificNotation
	RuleWrapperClasses
	RuleStaticKeyword
	RuleModulusOperator
	RuleTernaryOperator
	RuleShortCircuit
	RuleStringConcat
	RuleStringComparison
	RuleArraysCopy
	RuleArrayTraversal
	numTableIRules

	// Extension rules (suggestion-only; not mechanically applied).
	RuleExceptionInLoop Rule = iota - 1 // account for the numTableIRules slot
	RuleObjectInLoop
	numRules
)

// NumTableIRules is the number of rules Table I quantifies.
const NumTableIRules = int(numTableIRules)

// NumRules is the total rule count including the extension rules.
const NumRules = int(numRules)

var ruleMeta = [...]struct {
	component  string
	suggestion string
}{
	RulePrimitiveTypes: {"Primitive data types",
		"int is the most energy-efficient primitive data type. Replace if possible."},
	RuleScientificNotation: {"Scientific notation",
		"Scientific notation results in lower energy consumption of decimal numbers."},
	RuleWrapperClasses: {"Wrapper classes",
		"Integer Wrapper class object is the most energy-efficient. Replace if possible."},
	RuleStaticKeyword: {"Static keyword",
		"static keyword consumes up to 17,700% more energy. Avoid if possible."},
	RuleModulusOperator: {"Arithmetic operators",
		"Modulus arithmetic operator consumes up to 1,620% more energy than other arithmetic operators."},
	RuleTernaryOperator: {"Ternary operator",
		"Ternary operator consumes up to 37% more energy than if-then-else statement."},
	RuleShortCircuit: {"Short circuit operator",
		"Put most common case first for lower energy consumption."},
	RuleStringConcat: {"String concatenation operator",
		"StringBuilder append method consumes much lower energy than String concatenation operator."},
	RuleStringComparison: {"String comparison",
		"String compareTo method consumes up to 33% more energy than the String equals method."},
	RuleArraysCopy: {"Arrays copy",
		"System.arraycopy() is the most energy-efficient way to copy Arrays."},
	RuleArrayTraversal: {"Array traversal",
		"Two-dimensional Array column traversal result in up to 793% more energy."},
	RuleExceptionInLoop: {"Exceptions",
		"Exception handling inside a hot loop pays the try/throw cost every iteration. Restructure if possible."},
	RuleObjectInLoop: {"Objects",
		"Object allocation inside a loop churns the heap. Reuse an instance if possible."},
}

// Component is the Table I "Java Components" label for the rule.
func (r Rule) Component() string { return ruleMeta[r].component }

// Text is the Table I suggestion text for the rule.
func (r Rule) Text() string { return ruleMeta[r].suggestion }

// String names the rule by component.
func (r Rule) String() string {
	if r < 0 || r >= numRules {
		return fmt.Sprintf("rule(%d)", int(r))
	}
	return ruleMeta[r].component
}

// TableIRules lists only the rules Table I quantifies, in the table's order.
func TableIRules() []Rule {
	out := make([]Rule, NumTableIRules)
	for i := range out {
		out[i] = Rule(i)
	}
	return out
}

// AllRules lists every rule — Table I plus the extension rules. (The
// extension rules start at the value of the numTableIRules sentinel, so the
// rule values are contiguous.)
func AllRules() []Rule {
	out := make([]Rule, NumRules)
	for i := range out {
		out[i] = Rule(i)
	}
	return out
}
