package ast

import (
	"fmt"
	"strings"

	"jepo/internal/minijava/token"
)

// Print renders a file back to mini-Java source. The refactoring engine uses
// it to emit transformed code, which is then re-parsed and executed; the
// output is canonically formatted (tabs, one statement per line).
func Print(f *File) string {
	var p printer
	if f.Package != "" {
		p.linef("package %s;", f.Package)
		p.blank()
	}
	for _, imp := range f.Imports {
		p.linef("import %s;", imp)
	}
	if len(f.Imports) > 0 {
		p.blank()
	}
	for i, c := range f.Classes {
		if i > 0 {
			p.blank()
		}
		p.printClass(c)
	}
	return p.b.String()
}

// PrintStmt renders a single statement (used in tests and suggestion views).
func PrintStmt(s Stmt) string {
	var p printer
	p.printStmt(s)
	return strings.TrimRight(p.b.String(), "\n")
}

// PrintExpr renders a single expression.
func PrintExpr(e Expr) string {
	var p printer
	p.expr(e, 0)
	return p.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) pad() {
	for i := 0; i < p.indent; i++ {
		p.b.WriteByte('\t')
	}
}

func (p *printer) linef(format string, args ...any) {
	p.pad()
	fmt.Fprintf(&p.b, format, args...)
	p.b.WriteByte('\n')
}

func (p *printer) blank() { p.b.WriteByte('\n') }

func mods(m Modifiers) string {
	s := m.String()
	if s != "" {
		s += " "
	}
	return s
}

func (p *printer) printClass(c *Class) {
	ext := ""
	if c.Extends != "" {
		ext = " extends " + c.Extends
	}
	p.linef("%sclass %s%s {", mods(c.Mods), c.Name, ext)
	p.indent++
	for _, f := range c.Fields {
		init := ""
		if f.Init != nil {
			init = " = " + PrintExpr(f.Init)
		}
		p.linef("%s%s %s%s;", mods(f.Mods), f.Type, f.Name, init)
	}
	if len(c.Fields) > 0 && len(c.Methods) > 0 {
		p.blank()
	}
	for i, m := range c.Methods {
		if i > 0 {
			p.blank()
		}
		p.printMethod(m)
	}
	p.indent--
	p.linef("}")
}

func (p *printer) printMethod(m *Method) {
	var sig strings.Builder
	sig.WriteString(mods(m.Mods))
	if !m.IsCtor {
		sig.WriteString(m.Ret.String())
		sig.WriteByte(' ')
	}
	sig.WriteString(m.Name)
	sig.WriteByte('(')
	for i, pr := range m.Params {
		if i > 0 {
			sig.WriteString(", ")
		}
		sig.WriteString(pr.Type.String())
		sig.WriteByte(' ')
		sig.WriteString(pr.Name)
	}
	sig.WriteByte(')')
	if len(m.Throws) > 0 {
		sig.WriteString(" throws ")
		sig.WriteString(strings.Join(m.Throws, ", "))
	}
	p.linef("%s {", sig.String())
	p.indent++
	for _, s := range m.Body.Stmts {
		p.printStmt(s)
	}
	p.indent--
	p.linef("}")
}

func (p *printer) printStmt(s Stmt) {
	switch n := s.(type) {
	case *Block:
		p.linef("{")
		p.indent++
		for _, st := range n.Stmts {
			p.printStmt(st)
		}
		p.indent--
		p.linef("}")
	case *LocalVar:
		fin := ""
		if n.Final {
			fin = "final "
		}
		if n.Init != nil {
			p.linef("%s%s %s = %s;", fin, n.Type, n.Name, PrintExpr(n.Init))
		} else {
			p.linef("%s%s %s;", fin, n.Type, n.Name)
		}
	case *ExprStmt:
		p.linef("%s;", PrintExpr(n.X))
	case *If:
		p.pad()
		fmt.Fprintf(&p.b, "if (%s)", PrintExpr(n.Cond))
		p.printBody(n.Then)
		if n.Else != nil {
			p.pad()
			p.b.WriteString("else")
			p.printBody(n.Else)
		}
	case *While:
		p.pad()
		fmt.Fprintf(&p.b, "while (%s)", PrintExpr(n.Cond))
		p.printBody(n.Body)
	case *DoWhile:
		p.pad()
		p.b.WriteString("do")
		p.printBody(n.Body)
		// printBody ends the line; re-open it for the trailing condition.
		trimmed := strings.TrimRight(p.b.String(), "\n")
		p.b.Reset()
		p.b.WriteString(trimmed)
		fmt.Fprintf(&p.b, " while (%s);\n", PrintExpr(n.Cond))
	case *Switch:
		p.linef("switch (%s) {", PrintExpr(n.Tag))
		for _, c := range n.Cases {
			if len(c.Values) == 0 {
				p.linef("default:")
			} else {
				for _, v := range c.Values {
					p.linef("case %s:", PrintExpr(v))
				}
			}
			p.indent++
			for _, st := range c.Stmts {
				p.printStmt(st)
			}
			p.indent--
		}
		p.linef("}")
	case *For:
		init := ""
		switch i := n.Init.(type) {
		case nil:
		case *LocalVar:
			if i.Init != nil {
				init = fmt.Sprintf("%s %s = %s", i.Type, i.Name, PrintExpr(i.Init))
			} else {
				init = fmt.Sprintf("%s %s", i.Type, i.Name)
			}
		case *ExprStmt:
			init = PrintExpr(i.X)
		}
		cond := ""
		if n.Cond != nil {
			cond = PrintExpr(n.Cond)
		}
		var posts []string
		for _, e := range n.Post {
			posts = append(posts, PrintExpr(e))
		}
		p.pad()
		fmt.Fprintf(&p.b, "for (%s; %s; %s)", init, cond, strings.Join(posts, ", "))
		p.printBody(n.Body)
	case *Return:
		if n.X != nil {
			p.linef("return %s;", PrintExpr(n.X))
		} else {
			p.linef("return;")
		}
	case *Break:
		p.linef("break;")
	case *Continue:
		p.linef("continue;")
	case *Empty:
		p.linef(";")
	case *Throw:
		p.linef("throw %s;", PrintExpr(n.X))
	case *Try:
		p.linef("try {")
		p.indent++
		for _, st := range n.Block.Stmts {
			p.printStmt(st)
		}
		p.indent--
		for _, c := range n.Catches {
			p.linef("} catch (%s %s) {", c.Type, c.Name)
			p.indent++
			for _, st := range c.Block.Stmts {
				p.printStmt(st)
			}
			p.indent--
		}
		if n.Finally != nil {
			p.linef("} finally {")
			p.indent++
			for _, st := range n.Finally.Stmts {
				p.printStmt(st)
			}
			p.indent--
		}
		p.linef("}")
	default:
		p.linef("/* unknown stmt %T */", s)
	}
}

// printBody emits a statement as the body of a control structure, bracing it.
func (p *printer) printBody(s Stmt) {
	p.b.WriteString(" {\n")
	p.indent++
	if blk, ok := s.(*Block); ok {
		for _, st := range blk.Stmts {
			p.printStmt(st)
		}
	} else {
		p.printStmt(s)
	}
	p.indent--
	p.pad()
	p.b.WriteString("}\n")
}

// Operator precedence, larger binds tighter.
func prec(op token.Kind) int {
	switch op {
	case token.OrOr:
		return 3
	case token.AndAnd:
		return 4
	case token.BitOr:
		return 5
	case token.BitXor:
		return 6
	case token.BitAnd:
		return 7
	case token.Eq, token.Ne:
		return 8
	case token.Lt, token.Le, token.Gt, token.Ge:
		return 9
	case token.Shl, token.Shr:
		return 10
	case token.Plus, token.Minus:
		return 11
	case token.Star, token.Slash, token.Percent:
		return 12
	}
	return 0
}

func exprPrec(e Expr) int {
	switch n := e.(type) {
	case *Assign:
		return 1
	case *Ternary:
		return 2
	case *Binary:
		return prec(n.Op)
	case *InstanceOf:
		return 9
	case *Unary, *Cast:
		return 13
	default:
		return 14
	}
}

// expr writes e, parenthesizing when its precedence is below min.
func (p *printer) expr(e Expr, min int) {
	pr := exprPrec(e)
	if pr < min {
		p.b.WriteByte('(')
	}
	switch n := e.(type) {
	case *Literal:
		if n.Raw != "" {
			p.b.WriteString(n.Raw)
		} else {
			p.b.WriteString(literalSpelling(n))
		}
	case *Ident:
		p.b.WriteString(n.Name)
	case *This:
		p.b.WriteString("this")
	case *Select:
		p.expr(n.X, 14)
		p.b.WriteByte('.')
		p.b.WriteString(n.Name)
	case *Index:
		p.expr(n.X, 14)
		p.b.WriteByte('[')
		p.expr(n.I, 0)
		p.b.WriteByte(']')
	case *Call:
		if n.Recv != nil {
			p.expr(n.Recv, 14)
			p.b.WriteByte('.')
		}
		p.b.WriteString(n.Name)
		p.b.WriteByte('(')
		for i, a := range n.Args {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.expr(a, 1)
		}
		p.b.WriteByte(')')
	case *New:
		p.b.WriteString("new ")
		p.b.WriteString(n.Name)
		p.b.WriteByte('(')
		for i, a := range n.Args {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.expr(a, 1)
		}
		p.b.WriteByte(')')
	case *NewArray:
		p.b.WriteString("new ")
		base := n.Elem
		extra := base.Dims
		base.Dims = 0
		p.b.WriteString(base.String())
		for _, l := range n.Lens {
			p.b.WriteByte('[')
			p.expr(l, 0)
			p.b.WriteByte(']')
		}
		for i := 0; i < extra; i++ {
			p.b.WriteString("[]")
		}
	case *ArrayLit:
		p.b.WriteByte('{')
		for i, el := range n.Elems {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.expr(el, 1)
		}
		p.b.WriteByte('}')
	case *Unary:
		if n.Postfix {
			p.expr(n.X, 14)
			p.b.WriteString(n.Op.String())
		} else {
			p.b.WriteString(n.Op.String())
			p.expr(n.X, 13)
		}
	case *Binary:
		pb := prec(n.Op)
		p.expr(n.X, pb)
		p.b.WriteByte(' ')
		p.b.WriteString(n.Op.String())
		p.b.WriteByte(' ')
		p.expr(n.Y, pb+1)
	case *Assign:
		p.expr(n.LHS, 14)
		p.b.WriteByte(' ')
		p.b.WriteString(n.Op.String())
		p.b.WriteByte(' ')
		p.expr(n.RHS, 1)
	case *Ternary:
		p.expr(n.Cond, 3)
		p.b.WriteString(" ? ")
		p.expr(n.Then, 2)
		p.b.WriteString(" : ")
		p.expr(n.Else, 2)
	case *Cast:
		p.b.WriteByte('(')
		p.b.WriteString(n.Type.String())
		p.b.WriteString(") ")
		p.expr(n.X, 13)
	case *InstanceOf:
		p.expr(n.X, 10)
		p.b.WriteString(" instanceof ")
		p.b.WriteString(n.Name)
	default:
		fmt.Fprintf(&p.b, "/* unknown expr %T */", e)
	}
	if pr < min {
		p.b.WriteByte(')')
	}
}

// literalSpelling synthesizes a spelling for a literal built by a refactoring
// (which has no Raw text).
func literalSpelling(n *Literal) string {
	switch n.Kind {
	case LitInt:
		return fmt.Sprintf("%d", n.I)
	case LitLong:
		return fmt.Sprintf("%dL", n.I)
	case LitFloat:
		return fmt.Sprintf("%gf", n.D)
	case LitDouble:
		return fmt.Sprintf("%g", n.D)
	case LitChar:
		return fmt.Sprintf("%q", rune(n.I))
	case LitString:
		return fmt.Sprintf("%q", n.S)
	case LitBool:
		if n.I != 0 {
			return "true"
		}
		return "false"
	case LitNull:
		return "null"
	}
	return "0"
}
