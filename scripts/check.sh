#!/bin/sh
# check.sh runs the full hygiene gate: formatting, vet, and the test suite
# under the race detector. CI and `make check` both call this script.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "== fault matrix =="
go test -tags faultmatrix -run FaultMatrix ./internal/rapl/... ./internal/profile/...

echo "== engine diff =="
# The bytecode VM and the tree-walker must be observationally identical:
# results, output, op counts and energy bits, over the Table I corpus and
# seeded random programs.
go test -tags enginediff -run EngineDiff ./internal/minijava/interp

echo "== jepo analyze golden =="
# Rule drift shows up here the way energy drift shows up in golden_test.go:
# the analyzer's measured diagnostic listing over the example corpus must
# match the checked-in golden byte for byte.
if ! go run ./cmd/jepo analyze examples/java | diff -u examples/java/golden_analyze.txt -; then
    echo "jepo analyze output drifted from examples/java/golden_analyze.txt" >&2
    echo "regenerate (after auditing the diff) with:" >&2
    echo "    go run ./cmd/jepo analyze examples/java > examples/java/golden_analyze.txt" >&2
    exit 1
fi

echo "== jperf disasm golden =="
# Compiler drift shows up as a bytecode diff: the example program's
# disassembly must match the checked-in golden byte for byte.
if ! go run ./cmd/jperf disasm examples/java/EnergyDemo.java | diff -u examples/java/golden_disasm.txt -; then
    echo "jperf disasm output drifted from examples/java/golden_disasm.txt" >&2
    echo "regenerate (after auditing the diff) with:" >&2
    echo "    go run ./cmd/jperf disasm examples/java/EnergyDemo.java > examples/java/golden_disasm.txt" >&2
    exit 1
fi

echo "OK"
