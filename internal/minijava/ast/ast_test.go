package ast

import (
	"strings"
	"testing"

	"jepo/internal/minijava/token"
)

func TestTypeString(t *testing.T) {
	cases := []struct {
		typ  Type
		want string
	}{
		{Type{Kind: Int}, "int"},
		{Type{Kind: Double, Dims: 1}, "double[]"},
		{Type{Kind: ClassType, Name: "String", Dims: 2}, "String[][]"},
		{Type{Kind: Void}, "void"},
	}
	for _, c := range cases {
		if got := c.typ.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.typ, got, c.want)
		}
	}
}

func TestTypeElemAndIsString(t *testing.T) {
	arr := Type{Kind: Int, Dims: 2}
	if e := arr.Elem(); e.Dims != 1 {
		t.Errorf("Elem dims = %d", e.Dims)
	}
	scalar := Type{Kind: Int}
	if e := scalar.Elem(); e != scalar {
		t.Error("Elem of scalar must be identity")
	}
	if !(Type{Kind: ClassType, Name: "String"}).IsString() {
		t.Error("String type not recognized")
	}
	if (Type{Kind: ClassType, Name: "String", Dims: 1}).IsString() {
		t.Error("String[] must not be IsString")
	}
}

func TestModifiers(t *testing.T) {
	m := ModPublic | ModStatic | ModFinal
	if !m.Has(ModStatic) || m.Has(ModPrivate) {
		t.Error("Has wrong")
	}
	if m.String() != "public static final" {
		t.Errorf("String() = %q", m.String())
	}
	if Modifiers(0).String() != "" {
		t.Error("empty modifiers must render empty")
	}
}

func TestBasicKindHelpers(t *testing.T) {
	if !Double.IsNumeric() || Boolean.IsNumeric() || ClassType.IsNumeric() {
		t.Error("IsNumeric wrong")
	}
	if Int.String() != "int" || BasicKind(99).String() != "?" {
		t.Error("kind names wrong")
	}
}

// buildSample constructs a small AST covering every node type, by hand.
func buildSample() *File {
	pos := token.Pos{Line: 1, Col: 1}
	lit := func(v int64) Expr { return &Literal{Pos: pos, Kind: LitInt, I: v} }
	id := func(n string) Expr { return &Ident{Pos: pos, Name: n} }
	body := &Block{Pos: pos, Stmts: []Stmt{
		&LocalVar{Pos: pos, Type: Type{Kind: Int}, Name: "x", Init: lit(1)},
		&ExprStmt{Pos: pos, X: &Assign{Pos: pos, Op: token.Assign, LHS: id("x"),
			RHS: &Binary{Pos: pos, Op: token.Plus, X: id("x"), Y: lit(2)}}},
		&If{Pos: pos, Cond: &Binary{Pos: pos, Op: token.Lt, X: id("x"), Y: lit(10)},
			Then: &ExprStmt{Pos: pos, X: &Unary{Pos: pos, Op: token.Inc, X: id("x"), Postfix: true}},
			Else: &Empty{Pos: pos}},
		&While{Pos: pos, Cond: &Literal{Pos: pos, Kind: LitBool, I: 0, Raw: "false"},
			Body: &Break{Pos: pos}},
		&For{Pos: pos,
			Init: &LocalVar{Pos: pos, Type: Type{Kind: Int}, Name: "i", Init: lit(0)},
			Cond: &Binary{Pos: pos, Op: token.Lt, X: id("i"), Y: lit(3)},
			Post: []Expr{&Unary{Pos: pos, Op: token.Inc, X: id("i"), Postfix: true}},
			Body: &Continue{Pos: pos}},
		&Try{Pos: pos,
			Block: &Block{Pos: pos, Stmts: []Stmt{
				&Throw{Pos: pos, X: &New{Pos: pos, Name: "Exception", Args: []Expr{
					&Literal{Pos: pos, Kind: LitString, S: "x", Raw: `"x"`}}}},
			}},
			Catches: []Catch{{Pos: pos, Type: "Exception", Name: "e",
				Block: &Block{Pos: pos}}},
			Finally: &Block{Pos: pos},
		},
		&Return{Pos: pos, X: &Ternary{Pos: pos,
			Cond: &InstanceOf{Pos: pos, X: id("x"), Name: "Object"},
			Then: &Cast{Pos: pos, Type: Type{Kind: Long}, X: id("x")},
			Else: &Index{Pos: pos,
				X: &NewArray{Pos: pos, Elem: Type{Kind: Int}, Lens: []Expr{lit(4)}},
				I: &Call{Pos: pos, Recv: &Select{Pos: pos, X: &This{Pos: pos}, Name: "f"},
					Name: "g", Args: []Expr{&ArrayLit{Pos: pos, Elems: []Expr{lit(9)}}}}}}},
	}}
	return &File{
		Package: "p",
		Imports: []string{"java.util.List"},
		Classes: []*Class{{
			Pos: pos, Mods: ModPublic, Name: "T",
			Fields: []*Field{{Pos: pos, Type: Type{Kind: Int}, Name: "f", Init: lit(5)}},
			Methods: []*Method{{
				Pos: pos, Ret: Type{Kind: Long}, Name: "m",
				Params: []Param{{Type: Type{Kind: Int}, Name: "a"}},
				Throws: []string{"Exception"},
				Body:   body,
			}},
		}},
	}
}

func TestInspectVisitsEveryNodeKind(t *testing.T) {
	f := buildSample()
	kinds := map[string]bool{}
	InspectFile(f, func(n Node) bool {
		kinds[nodeKind(n)] = true
		return true
	})
	for _, want := range []string{
		"*ast.Block", "*ast.LocalVar", "*ast.ExprStmt", "*ast.If", "*ast.While",
		"*ast.For", "*ast.Return", "*ast.Break", "*ast.Continue", "*ast.Empty",
		"*ast.Throw", "*ast.Try", "*ast.Literal", "*ast.Ident", "*ast.This",
		"*ast.Select", "*ast.Index", "*ast.Call", "*ast.New", "*ast.NewArray",
		"*ast.ArrayLit", "*ast.Unary", "*ast.Binary", "*ast.Assign",
		"*ast.Ternary", "*ast.Cast", "*ast.InstanceOf",
	} {
		if !kinds[want] {
			t.Errorf("Inspect never visited %s", want)
		}
	}
}

func nodeKind(n Node) string {
	return strings.Replace(strings.Replace(
		strings.TrimPrefix(typeName(n), "jepo/internal/minijava/"), "*", "*", 1), " ", "", -1)
}

func typeName(n Node) string {
	switch n.(type) {
	case *Block:
		return "*ast.Block"
	case *LocalVar:
		return "*ast.LocalVar"
	case *ExprStmt:
		return "*ast.ExprStmt"
	case *If:
		return "*ast.If"
	case *While:
		return "*ast.While"
	case *For:
		return "*ast.For"
	case *Return:
		return "*ast.Return"
	case *Break:
		return "*ast.Break"
	case *Continue:
		return "*ast.Continue"
	case *Empty:
		return "*ast.Empty"
	case *Throw:
		return "*ast.Throw"
	case *Try:
		return "*ast.Try"
	case *Literal:
		return "*ast.Literal"
	case *Ident:
		return "*ast.Ident"
	case *This:
		return "*ast.This"
	case *Select:
		return "*ast.Select"
	case *Index:
		return "*ast.Index"
	case *Call:
		return "*ast.Call"
	case *New:
		return "*ast.New"
	case *NewArray:
		return "*ast.NewArray"
	case *ArrayLit:
		return "*ast.ArrayLit"
	case *Unary:
		return "*ast.Unary"
	case *Binary:
		return "*ast.Binary"
	case *Assign:
		return "*ast.Assign"
	case *Ternary:
		return "*ast.Ternary"
	case *Cast:
		return "*ast.Cast"
	case *InstanceOf:
		return "*ast.InstanceOf"
	}
	return "?"
}

func TestInspectPruning(t *testing.T) {
	f := buildSample()
	total, pruned := 0, 0
	InspectFile(f, func(n Node) bool { total++; return true })
	InspectFile(f, func(n Node) bool {
		pruned++
		_, isIf := n.(*If)
		return !isIf // skip the If's children
	})
	if pruned >= total {
		t.Errorf("pruning did not reduce visits: %d vs %d", pruned, total)
	}
}

func TestPrintCoversEveryNode(t *testing.T) {
	out := Print(buildSample())
	for _, want := range []string{
		"package p;", "import java.util.List;", "public class T",
		"long m(int a) throws Exception", "instanceof", "(long)",
		"new int[4]", "try {", "} catch (Exception e) {", "} finally {",
		"x++", "while (false)", "for (int i = 0; i < 3; i++)",
		"this.f.g({9})",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printed source missing %q:\n%s", want, out)
		}
	}
}

func TestPrintStmtAndExprHelpers(t *testing.T) {
	pos := token.Pos{Line: 1, Col: 1}
	s := PrintStmt(&Return{Pos: pos})
	if s != "return;" {
		t.Errorf("PrintStmt = %q", s)
	}
	e := PrintExpr(&Binary{Pos: pos, Op: token.Star,
		X: &Binary{Pos: pos, Op: token.Plus,
			X: &Ident{Pos: pos, Name: "a"}, Y: &Ident{Pos: pos, Name: "b"}},
		Y: &Ident{Pos: pos, Name: "c"}})
	if e != "(a + b) * c" {
		t.Errorf("PrintExpr = %q", e)
	}
}

func TestLiteralSpellingSynthesis(t *testing.T) {
	pos := token.Pos{}
	cases := []struct {
		lit  *Literal
		want string
	}{
		{&Literal{Pos: pos, Kind: LitInt, I: 42}, "42"},
		{&Literal{Pos: pos, Kind: LitLong, I: 7}, "7L"},
		{&Literal{Pos: pos, Kind: LitBool, I: 1}, "true"},
		{&Literal{Pos: pos, Kind: LitNull}, "null"},
		{&Literal{Pos: pos, Kind: LitString, S: "hi"}, `"hi"`},
	}
	for _, c := range cases {
		if got := PrintExpr(c.lit); got != c.want {
			t.Errorf("spelling = %q, want %q", got, c.want)
		}
	}
}
