package interp

import (
	"fmt"
	"strings"

	"jepo/internal/energy"
	"jepo/internal/instrument"
	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/bytecode"
)

// Engine selects how interp.New executes methods.
type Engine uint8

const (
	// EngineVM (the default) runs compiled bytecode, falling back to the
	// tree-walker per method for constructs without a lowering (try/catch).
	// Both engines charge the energy meter identically; the VM only cuts the
	// dispatch overhead.
	EngineVM Engine = iota
	// EngineAST forces the original tree-walking evaluator everywhere.
	EngineAST
)

func (e Engine) String() string {
	if e == EngineAST {
		return "ast"
	}
	return "vm"
}

// ParseEngine parses an -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "vm":
		return EngineVM, nil
	case "ast":
		return EngineAST, nil
	}
	return 0, fmt.Errorf("interp: unknown engine %q (want vm or ast)", s)
}

// WithEngine selects the execution engine (default EngineVM).
func WithEngine(e Engine) Option { return func(in *Interp) { in.engine = e } }

// compiledFn is one entry of the program's compiled-function table: the
// instruction stream plus the constant pool pre-evaluated into Values, so
// OpConst charges one Step and copies a struct instead of re-dispatching on
// the literal kind per execution.
type compiledFn struct {
	fn     *bytecode.Func
	consts []constVal
	ix     int32 // index in Program.funcs, for the per-Interp warm code table
}

// constVal is one pre-evaluated constant-pool entry. Splitting evalLiteral
// into its (compile-time-constant) charge and its immutable Value is exact:
// every literal kind charges one Step of one op and yields the same Value on
// every evaluation.
type constVal struct {
	v      Value
	op     energy.Op
	charge bool
}

// makeConstVals pre-evaluates a constant pool, mirroring evalLiteral case by
// case. The charge half comes from bytecode.LiteralCharge — the same source
// Finalize folds const charges from, so the VM, the walker and the block
// aggregator can never disagree on what evaluating a literal costs.
func makeConstVals(lits []*ast.Literal) []constVal {
	out := make([]constVal, len(lits))
	for i, n := range lits {
		var c constVal
		c.op, c.charge = bytecode.LiteralCharge(n)
		switch n.Kind {
		case ast.LitInt:
			c.v = IntVal(n.I)
		case ast.LitLong:
			c.v = LongVal(n.I)
		case ast.LitFloat:
			c.v = FloatVal(n.D)
		case ast.LitDouble:
			c.v = DoubleVal(n.D)
		case ast.LitChar:
			c.v = CharVal(n.I)
		case ast.LitString:
			c.v = StringVal(n.S)
		case ast.LitBool:
			c.v = BoolVal(n.I != 0)
		case ast.LitNull:
			c.v = NullVal()
		}
		out[i] = c
	}
	return out
}

// compileProgram lowers every method body to bytecode at load time, in
// deterministic order (class load order, then declaration order). Methods the
// compiler cannot lower keep a nil entry and run on the tree-walker. Bodies
// carrying the AST-level probe pattern are compiled from their inner block
// with probe opcodes spliced in — the bytecode instrumentation mode.
func compileProgram(p *Program) {
	// Bind charge runs against the default cost table while the Program is
	// still private to Load: once it is shared across Interps (and
	// goroutines) the compiled functions are immutable.
	p.boundCosts = energy.DefaultCosts()
	p.costsBound = true
	for _, name := range p.order {
		ci := p.classes[name]
		for _, m := range ci.Decl.Methods {
			if m.Body == nil {
				m.CIx = 0
				continue
			}
			var fn *bytecode.Func
			if inner, label, ok := instrument.BytecodeBody(m); ok {
				if fn = bytecode.Compile(ci.Name, m, inner); fn != nil {
					instrument.InjectBytecode(fn, label)
				}
			} else {
				fn = bytecode.Compile(ci.Name, m, nil)
			}
			m.CIx = int32(len(p.funcs) + 1)
			cf := compiledFn{ix: int32(len(p.funcs))}
			if fn != nil {
				// Tier-2 rewrite: block charge pre-aggregation and
				// compile-time quickening, after probe splicing so probe
				// opcodes bound the charge runs.
				bytecode.Finalize(fn)
				fn.BindCosts(&p.boundCosts)
				cf.fn, cf.consts = fn, makeConstVals(fn.Consts)
			}
			p.funcs = append(p.funcs, cf)
		}
	}
}

// Disasm renders the whole program's compiled form — the `jperf disasm`
// backend. Methods without a lowering are listed with a tree-walker marker.
func (p *Program) Disasm() string {
	return p.disasm(func(cf *compiledFn) string { return cf.fn.Disasm() })
}

// disasm walks the program's methods in deterministic order, rendering each
// compiled one through render (shared by the cold and warm disassemblies).
func (p *Program) disasm(render func(*compiledFn) string) string {
	var b strings.Builder
	for _, name := range p.order {
		ci := p.classes[name]
		for _, m := range ci.Decl.Methods {
			if m.Body == nil {
				continue
			}
			if ix := int(m.CIx) - 1; ix >= 0 && ix < len(p.funcs) && p.funcs[ix].fn != nil {
				b.WriteString(render(&p.funcs[ix]))
			} else {
				fmt.Fprintf(&b, "func %s.%s/%d  (tree-walker)\n", name, m.Name, len(m.Params))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
