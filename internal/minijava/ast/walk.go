package ast

// Inspect walks the AST rooted at node, calling f on every node. If f returns
// false, children of the node are skipped. It mirrors go/ast.Inspect and is
// the traversal the suggestion engine and the metrics analyzer are built on.
func Inspect(node Node, f func(Node) bool) {
	if node == nil || !f(node) {
		return
	}
	switch n := node.(type) {
	case *Block:
		for _, s := range n.Stmts {
			Inspect(s, f)
		}
	case *LocalVar:
		inspectExpr(n.Init, f)
	case *ExprStmt:
		inspectExpr(n.X, f)
	case *If:
		inspectExpr(n.Cond, f)
		Inspect(n.Then, f)
		if n.Else != nil {
			Inspect(n.Else, f)
		}
	case *While:
		inspectExpr(n.Cond, f)
		Inspect(n.Body, f)
	case *DoWhile:
		Inspect(n.Body, f)
		inspectExpr(n.Cond, f)
	case *Switch:
		inspectExpr(n.Tag, f)
		for _, c := range n.Cases {
			for _, v := range c.Values {
				Inspect(v, f)
			}
			for _, s := range c.Stmts {
				Inspect(s, f)
			}
		}
	case *For:
		if n.Init != nil {
			Inspect(n.Init, f)
		}
		inspectExpr(n.Cond, f)
		for _, p := range n.Post {
			Inspect(p, f)
		}
		Inspect(n.Body, f)
	case *Return:
		inspectExpr(n.X, f)
	case *Throw:
		inspectExpr(n.X, f)
	case *Try:
		Inspect(n.Block, f)
		for _, c := range n.Catches {
			Inspect(c.Block, f)
		}
		if n.Finally != nil {
			Inspect(n.Finally, f)
		}
	case *Select:
		Inspect(n.X, f)
	case *Index:
		Inspect(n.X, f)
		Inspect(n.I, f)
	case *Call:
		if n.Recv != nil {
			Inspect(n.Recv, f)
		}
		for _, a := range n.Args {
			Inspect(a, f)
		}
	case *New:
		for _, a := range n.Args {
			Inspect(a, f)
		}
	case *NewArray:
		for _, l := range n.Lens {
			Inspect(l, f)
		}
	case *ArrayLit:
		for _, e := range n.Elems {
			Inspect(e, f)
		}
	case *Unary:
		Inspect(n.X, f)
	case *Binary:
		Inspect(n.X, f)
		Inspect(n.Y, f)
	case *Assign:
		Inspect(n.LHS, f)
		Inspect(n.RHS, f)
	case *Ternary:
		Inspect(n.Cond, f)
		Inspect(n.Then, f)
		Inspect(n.Else, f)
	case *Cast:
		Inspect(n.X, f)
	case *InstanceOf:
		Inspect(n.X, f)
	case *Literal, *Ident, *This, *Break, *Continue, *Empty:
		// leaves
	}
}

func inspectExpr(e Expr, f func(Node) bool) {
	if e != nil {
		Inspect(e, f)
	}
}

// InspectFile walks every field initializer and method body in a file.
func InspectFile(file *File, f func(Node) bool) {
	for _, c := range file.Classes {
		for _, fd := range c.Fields {
			inspectExpr(fd.Init, f)
		}
		for _, m := range c.Methods {
			if m.Body != nil {
				Inspect(m.Body, f)
			}
		}
	}
}
