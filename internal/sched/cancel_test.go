package sched

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count drains back to at most
// base+slack, failing the test if it never does. The poll absorbs scheduler
// lag without turning the assertion into a sleep.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancel: %d, started with %d", n, base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMapCancelDrainsWorkers cancels a parallel Map mid-flight and asserts
// the contract: the call returns ctx's error, every worker goroutine exits
// (no leaks), and in-flight task functions were allowed to finish rather
// than being abandoned.
func TestMapCancelDrainsWorkers(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var mu sync.Mutex
	started, finished := 0, 0
	items := make([]int, 200)
	_, _, err := Map(ctx, Config{Jobs: 4}, items, func(task Task, _ int) (int, error) {
		mu.Lock()
		started++
		if started == 8 {
			cancel()
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		mu.Lock()
		finished++
		mu.Unlock()
		return task.Index, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Map returned %v, want context.Canceled", err)
	}
	waitGoroutines(t, base)
	mu.Lock()
	s, f := started, finished
	mu.Unlock()
	if s != f {
		t.Errorf("%d tasks started but only %d finished: cancel abandoned in-flight work", s, f)
	}
	if s == len(items) {
		t.Error("cancel did not stop the pool from claiming new tasks")
	}
}

// TestMapCommitCancelCommitsExactPrefix cancels MapCommit mid-flight and
// asserts no partial index commits: the committed set is exactly the
// indices 0..k-1 for some k — never a gap, never an out-of-order commit.
func TestMapCommitCancelCommitsExactPrefix(t *testing.T) {
	for _, jobs := range []int{1, 3, 8} {
		base := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())

		var mu sync.Mutex
		var committed []int
		ran := 0
		items := make([]int, 150)
		_, _, err := MapCommit(ctx, Config{Jobs: jobs, Seed: 11}, items,
			func(task Task, _ int) (int, error) {
				mu.Lock()
				ran++
				if ran == 10 {
					cancel()
				}
				mu.Unlock()
				time.Sleep(time.Millisecond)
				return task.Index, nil
			},
			func(task Task, v int) {
				mu.Lock()
				committed = append(committed, v)
				mu.Unlock()
			})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("jobs=%d: cancelled MapCommit returned %v", jobs, err)
		}
		waitGoroutines(t, base)
		mu.Lock()
		got := append([]int(nil), committed...)
		mu.Unlock()
		if len(got) == len(items) {
			t.Errorf("jobs=%d: all %d items committed despite cancel", jobs, len(items))
		}
		for i, idx := range got {
			if idx != i {
				t.Fatalf("jobs=%d: commit %d has index %d — committed set is not an exact prefix: %v",
					jobs, i, idx, got)
			}
		}
	}
}

// TestMapPreCancelled asserts an already-cancelled context does no work.
func TestMapPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	_, _, err := Map(ctx, Config{Jobs: 2}, make([]int, 10), func(Task, int) (int, error) {
		ran = true
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Map returned %v", err)
	}
	if ran {
		t.Error("pre-cancelled Map still ran a task")
	}
}

// TestMapCancelDominatesTaskError asserts cancellation wins over a task
// error that races it: callers distinguish "you stopped me" from "it broke".
func TestMapCancelDominatesTaskError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	_, _, err := Map(ctx, Config{Jobs: 2}, make([]int, 50), func(task Task, _ int) (int, error) {
		if task.Index == 3 {
			cancel()
			return 0, boom
		}
		time.Sleep(time.Millisecond)
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled to dominate the racing task error", err)
	}
}

// TestGate exercises the admission primitive end to end: slot bounds, FIFO
// queue hand-off, shed on saturation, and queue abandonment on cancel.
func TestGate(t *testing.T) {
	g := NewGate(2, 1)
	r1, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Third waits (queue depth 1); fourth sheds.
	acquired := make(chan func(), 1)
	go func() {
		r3, err := g.Acquire(context.Background())
		if err != nil {
			t.Error(err)
			return
		}
		acquired <- r3
	}()
	for g.Stats().Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("overfull queue returned %v, want ErrSaturated", err)
	}
	r1()
	r3 := <-acquired
	r3()
	r2()
	// Double release is a no-op, not a slot leak.
	r2()
	st := g.Stats()
	if st.InUse != 0 || st.Queued != 0 {
		t.Errorf("gate not drained: %+v", st)
	}
	if st.Admitted != 3 || st.Rejected != 1 || st.Waited != 1 {
		t.Errorf("stats = %+v, want 3 admitted, 1 rejected, 1 waited", st)
	}
}

// TestGateCancelWhileQueued cancels a waiting Acquire and asserts the queue
// entry is abandoned without consuming the slot it was waiting for.
func TestGateCancelWhileQueued(t *testing.T) {
	g := NewGate(1, 4)
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctx)
		errCh <- err
	}()
	for g.Stats().Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Acquire returned %v", err)
	}
	release()
	// The slot freed by release must be immediately acquirable — the
	// cancelled waiter didn't swallow it.
	r2, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("slot lost to a cancelled waiter: %v", err)
	}
	r2()
}
