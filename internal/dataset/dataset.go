// Package dataset is the WEKA-style data layer: attributes (nominal and
// numeric), instance storage, stratified k-fold splitting, and ARFF/CSV
// round-tripping. Nominal values are stored as value indices in float64
// cells, exactly as WEKA's Instances does.
package dataset

import (
	"fmt"
	"math"
)

// AttrKind distinguishes nominal from numeric attributes.
type AttrKind int

// Attribute kinds. Binary class attributes are nominal with two values.
const (
	Numeric AttrKind = iota
	Nominal
)

// String names the kind as Table III does.
func (k AttrKind) String() string {
	if k == Nominal {
		return "Nominal"
	}
	return "Numeric"
}

// Attribute describes one column.
type Attribute struct {
	Name   string
	Kind   AttrKind
	Values []string // nominal values, in index order
	index  map[string]int
}

// NewNumeric builds a numeric attribute.
func NewNumeric(name string) *Attribute { return &Attribute{Name: name, Kind: Numeric} }

// NewNominal builds a nominal attribute over the given value set.
func NewNominal(name string, values ...string) *Attribute {
	a := &Attribute{Name: name, Kind: Nominal, Values: values, index: map[string]int{}}
	for i, v := range values {
		a.index[v] = i
	}
	return a
}

// IndexOf resolves a nominal value to its index, adding it when new values
// are permitted (index map initialized) and the value is unseen.
func (a *Attribute) IndexOf(v string) (int, bool) {
	i, ok := a.index[v]
	return i, ok
}

// NumValues is the nominal cardinality (0 for numeric attributes).
func (a *Attribute) NumValues() int { return len(a.Values) }

// Dataset is a set of instances over a fixed attribute schema.
type Dataset struct {
	Name     string
	Attrs    []*Attribute
	ClassIdx int
	X        [][]float64
}

// New builds an empty dataset; classIdx names the class attribute.
func New(name string, classIdx int, attrs ...*Attribute) *Dataset {
	if classIdx < 0 || classIdx >= len(attrs) {
		panic("dataset: class index out of range")
	}
	return &Dataset{Name: name, Attrs: attrs, ClassIdx: classIdx}
}

// Add appends one instance. The row is used directly (not copied).
func (d *Dataset) Add(row []float64) error {
	if len(row) != len(d.Attrs) {
		return fmt.Errorf("dataset: row has %d cells, schema has %d attributes", len(row), len(d.Attrs))
	}
	for j, a := range d.Attrs {
		if a.Kind == Nominal && !math.IsNaN(row[j]) {
			if v := int(row[j]); v < 0 || v >= a.NumValues() {
				return fmt.Errorf("dataset: attribute %s value index %d out of range [0,%d)",
					a.Name, v, a.NumValues())
			}
		}
	}
	d.X = append(d.X, row)
	return nil
}

// NumInstances is the number of rows.
func (d *Dataset) NumInstances() int { return len(d.X) }

// NumAttrs is the number of attributes including the class.
func (d *Dataset) NumAttrs() int { return len(d.Attrs) }

// ClassAttr is the class attribute.
func (d *Dataset) ClassAttr() *Attribute { return d.Attrs[d.ClassIdx] }

// NumClasses is the class cardinality.
func (d *Dataset) NumClasses() int { return d.ClassAttr().NumValues() }

// Class returns the class index of row i.
func (d *Dataset) Class(i int) int { return int(d.X[i][d.ClassIdx]) }

// Empty returns a dataset with the same schema and no rows.
func (d *Dataset) Empty() *Dataset {
	return &Dataset{Name: d.Name, Attrs: d.Attrs, ClassIdx: d.ClassIdx}
}

// Subset copies the given rows into a new dataset sharing the schema.
func (d *Dataset) Subset(rows []int) *Dataset {
	out := d.Empty()
	out.X = make([][]float64, 0, len(rows))
	for _, r := range rows {
		out.X = append(out.X, d.X[r])
	}
	return out
}

// Head returns the first n rows (or all when fewer).
func (d *Dataset) Head(n int) *Dataset {
	if n > len(d.X) {
		n = len(d.X)
	}
	out := d.Empty()
	out.X = d.X[:n]
	return out
}

// ClassCounts tallies instances per class.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.NumClasses())
	for i := range d.X {
		counts[d.Class(i)]++
	}
	return counts
}

// MajorityClass returns the most frequent class index.
func (d *Dataset) MajorityClass() int {
	counts := d.ClassCounts()
	best := 0
	for c, n := range counts {
		if n > counts[best] {
			best = c
		}
	}
	return best
}

// Entropy is the class entropy in bits.
func (d *Dataset) Entropy() float64 {
	counts := d.ClassCounts()
	n := float64(len(d.X))
	if n == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// NumericStats reports mean and standard deviation of a numeric column,
// optionally restricted to one class (class < 0 means all rows).
func (d *Dataset) NumericStats(attr, class int) (mean, std float64, n int) {
	var sum, sumSq float64
	for i, row := range d.X {
		if class >= 0 && d.Class(i) != class {
			continue
		}
		v := row[attr]
		if math.IsNaN(v) {
			continue
		}
		sum += v
		sumSq += v * v
		n++
	}
	if n == 0 {
		return 0, 0, 0
	}
	mean = sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance), n
}

// DistinctValues counts distinct non-missing values in a column. For nominal
// columns it is the number of values actually present, which is how the paper
// reports 18 airlines and 293 airports in Table III.
func (d *Dataset) DistinctValues(attr int) int {
	seen := map[float64]bool{}
	for _, row := range d.X {
		if !math.IsNaN(row[attr]) {
			seen[row[attr]] = true
		}
	}
	return len(seen)
}

// rng is a small deterministic PRNG (xorshift*), used so splits are
// reproducible without the banned global clock seeding.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x2545F4914F6CDD1D
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// Intn returns a uniform int in [0, n).
func (r *rng) Intn(n int) int { return int(r.next() % uint64(n)) }

// StratifiedFolds splits row indices into k folds preserving class ratios —
// the paper's "stratified 10-fold cross-validation". The split is
// deterministic for a given seed.
func (d *Dataset) StratifiedFolds(k int, seed uint64) ([][]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("dataset: need at least 2 folds, got %d", k)
	}
	if d.NumInstances() < k {
		return nil, fmt.Errorf("dataset: %d instances cannot fill %d folds", d.NumInstances(), k)
	}
	r := newRNG(seed)
	// Group rows by class, shuffle within class, deal round-robin.
	byClass := make([][]int, d.NumClasses())
	for i := range d.X {
		c := d.Class(i)
		byClass[c] = append(byClass[c], i)
	}
	folds := make([][]int, k)
	next := 0
	for _, rows := range byClass {
		for i := len(rows) - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			rows[i], rows[j] = rows[j], rows[i]
		}
		for _, row := range rows {
			folds[next%k] = append(folds[next%k], row)
			next++
		}
	}
	return folds, nil
}

// TrainTest materializes the train/test split for fold f.
func (d *Dataset) TrainTest(folds [][]int, f int) (train, test *Dataset) {
	var trainRows []int
	for i, fold := range folds {
		if i == f {
			continue
		}
		trainRows = append(trainRows, fold...)
	}
	return d.Subset(trainRows), d.Subset(folds[f])
}

// Shuffle returns a row-shuffled copy (deterministic for a seed).
func (d *Dataset) Shuffle(seed uint64) *Dataset {
	r := newRNG(seed)
	rows := make([]int, len(d.X))
	for i := range rows {
		rows[i] = i
	}
	for i := len(rows) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		rows[i], rows[j] = rows[j], rows[i]
	}
	return d.Subset(rows)
}
