// Package engine is the content-addressed artifact layer under every JEPO
// pipeline: it decomposes source → AST → compiled program → measurement
// sample into explicit cacheable stages, each keyed by a content hash of its
// complete input (source bytes plus engine/rule/seed/precision config) and
// stored in a bounded, concurrency-safe LRU store with hit/miss/eviction
// counters.
//
// The determinism invariant is the design constraint: every artifact is a
// pure function of its key, so a cache hit changes the cost of an answer and
// never the answer. Concretely —
//
//   - AST masters are stored pristine (never interp.Load-ed) and every
//     checkout is a deep clone, because both interp.Load and
//     passes.ApplyFixes annotate/mutate ASTs in place;
//   - compiled *interp.Program values are shared directly: per the VM's
//     warm-copy design, instances patch private code copies and never the
//     shared program, so one cached program can back any number of
//     concurrent interpreters;
//   - measurement samples are cached only for successful runs, keyed by the
//     program content and the complete run configuration.
//
// Racing builders may compute the same artifact twice; the first put wins
// and, with deterministic artifacts, the duplicate is bit-identical, so the
// race is a cost blip and not an observable event. Eviction likewise only
// costs a rebuild.
package engine

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync/atomic"

	"jepo/internal/energy"
	"jepo/internal/instrument"
	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/interp"
	"jepo/internal/minijava/parser"
)

// DefaultCapacity bounds the artifact store when no size is configured. A
// full corpus analysis produces roughly four artifacts per file (AST master,
// program, sample, report), so this holds several corpora without eviction.
const DefaultCapacity = 16384

// Environment variables propagating the CLI cache flags into re-exec'd dist
// worker processes, which parse no flags of their own.
const (
	EnvCache     = "JEPO_CACHE"
	EnvCacheSize = "JEPO_CACHE_SIZE"
)

// Config parameterizes an Engine.
type Config struct {
	// Capacity bounds the artifact store (<= 0 = DefaultCapacity).
	Capacity int
	// Disabled turns every stage into a pass-through that rebuilds from
	// scratch, reproducing the uncached pipeline exactly. Outputs are
	// byte-identical either way; this exists to prove it and to bound memory
	// at zero.
	Disabled bool
}

// Engine is the artifact cache façade. The zero value is not usable; create
// one with New or use the process-wide Default.
type Engine struct {
	s      *store // nil when disabled
	config Config
	parses atomic.Uint64
}

// New builds an engine.
func New(cfg Config) *Engine {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	e := &Engine{config: cfg}
	if !cfg.Disabled {
		e.s = newStore(cfg.Capacity)
	}
	return e
}

var defaultEngine atomic.Pointer[Engine]

// Default returns the process-wide engine, creating it from the environment
// (EnvCache/EnvCacheSize) on first use. Dist worker processes reach their
// cache exclusively through here, so one worker serving many tasks hydrates
// a single store.
func Default() *Engine {
	if e := defaultEngine.Load(); e != nil {
		return e
	}
	e := New(EnvConfig())
	if defaultEngine.CompareAndSwap(nil, e) {
		return e
	}
	return defaultEngine.Load()
}

// Configure replaces the process-wide engine.
func Configure(cfg Config) *Engine {
	e := New(cfg)
	defaultEngine.Store(e)
	return e
}

// SetDefault installs e as the process-wide engine and returns the previous
// one (which may be nil). Tests use it to point shared-store consumers at an
// instrumented engine and restore the old state after.
func SetDefault(e *Engine) *Engine {
	return defaultEngine.Swap(e)
}

// SetProcessConfig is Configure plus environment export: the -cache and
// -cache-size CLI flags call it so that worker processes the CLI re-execs
// inherit the same cache configuration through EnvCache/EnvCacheSize.
func SetProcessConfig(cfg Config) *Engine {
	if cfg.Disabled {
		os.Setenv(EnvCache, "0")
	} else {
		os.Setenv(EnvCache, "1")
	}
	if cfg.Capacity > 0 {
		os.Setenv(EnvCacheSize, strconv.Itoa(cfg.Capacity))
	}
	return Configure(cfg)
}

// EnvConfig reads the cache configuration exported by SetProcessConfig.
func EnvConfig() Config {
	var cfg Config
	switch os.Getenv(EnvCache) {
	case "0", "false", "off", "no":
		cfg.Disabled = true
	}
	if v := os.Getenv(EnvCacheSize); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			cfg.Capacity = n
		}
	}
	return cfg
}

func (e *Engine) disabled() bool { return e.s == nil }

// Stats is a snapshot of the engine's counters. Counters are timing- and
// sharing-dependent, so they belong on stderr, never in a determinism-pinned
// output stream.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Parses    uint64 // real parser.Parse calls (cache misses + disabled-mode parses)
	Entries   int
	Capacity  int
	Disabled  bool
}

// HitRate is Hits / (Hits + Misses), or 0 with no lookups.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

func (s Stats) String() string {
	if s.Disabled {
		return fmt.Sprintf("cache: disabled (%d parses)", s.Parses)
	}
	return fmt.Sprintf("cache: %d hits, %d misses (%.1f%% hit rate), %d evictions, %d/%d entries, %d parses",
		s.Hits, s.Misses, 100*s.HitRate(), s.Evictions, s.Entries, s.Capacity, s.Parses)
}

// Stats snapshots the counters.
func (e *Engine) Stats() Stats {
	st := Stats{Parses: e.parses.Load(), Capacity: e.config.Capacity, Disabled: e.disabled()}
	if e.s != nil {
		st.Hits = e.s.hits.Load()
		st.Misses = e.s.misses.Load()
		st.Evictions = e.s.evictions.Load()
		st.Entries = e.s.len()
	}
	return st
}

// Source is one input file: the cache-key unit of every stage.
type Source struct {
	Path   string
	Source string
}

// Sources converts a path→source map into the deterministic sorted slice
// form the stages key on.
func Sources(m map[string]string) []Source {
	paths := make([]string, 0, len(m))
	for p := range m {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]Source, len(paths))
	for i, p := range paths {
		out[i] = Source{Path: p, Source: m[p]}
	}
	return out
}

// ---------------------------------------------------------------------------
// Stage: source → AST.

// ParseFile returns a private AST for one source file. Masters are keyed by
// source bytes alone — the same source at two paths parses once — and stay
// pristine forever; a hit hands out a deep clone with the requested path, so
// the caller may load, instrument or rewrite it freely.
func (e *Engine) ParseFile(path, source string) (*ast.File, error) {
	if e.disabled() {
		e.parses.Add(1)
		return parser.Parse(path, source)
	}
	k := NewKey("parse").Str(source).Key()
	if v, ok := e.s.get(k); ok {
		f := ast.CloneFile(v.(*ast.File))
		f.Path = path
		return f, nil
	}
	e.parses.Add(1)
	f, err := parser.Parse(path, source)
	if err != nil {
		return nil, err // parse errors are cheap and path-specific: not cached
	}
	e.s.put(k, ast.CloneFile(f))
	return f, nil
}

// ParseAll parses every source, in the given order, each through the parse
// cache.
func (e *Engine) ParseAll(srcs []Source) ([]*ast.File, error) {
	files := make([]*ast.File, len(srcs))
	for i, s := range srcs {
		f, err := e.ParseFile(s.Path, s.Source)
		if err != nil {
			return nil, err
		}
		files[i] = f
	}
	return files, nil
}

// ---------------------------------------------------------------------------
// Stage: AST → compiled program.

// programKey hashes the program stage input: source contents in link order
// (paths excluded — the loaded program is path-independent, so identical
// sources at different paths share the artifact) plus the instrumentation
// switch.
func programKey(srcs []Source, instrumented bool) Key {
	h := NewKey("program")
	if instrumented {
		h.Int(1)
	} else {
		h.Int(0)
	}
	for _, s := range srcs {
		h.Str(s.Source)
	}
	return h.Key()
}

// Program compiles (and optionally probe-instruments) the sources into a
// cold *interp.Program. The returned program is shared across callers and
// must not be re-Loaded or patched — interpreter instances already honor
// this by quickening private code copies — so a hit is safe for any number
// of concurrent interpreters.
func (e *Engine) Program(srcs []Source, instrumented bool) (*interp.Program, error) {
	build := func() (any, error) {
		files, err := e.ParseAll(srcs)
		if err != nil {
			return nil, err
		}
		if instrumented {
			instrument.Inject(files...)
		}
		return interp.Load(files...)
	}
	v, err := e.Memo(programKey(srcs, instrumented), build)
	if err != nil {
		return nil, err
	}
	return v.(*interp.Program), nil
}

// ---------------------------------------------------------------------------
// Stage: program + run config → measurement sample.

// RunSpec is the complete configuration of one measurement run. Every field
// is key material: changing the entry point, op budget, execution engine or
// cost table must key a separate sample.
type RunSpec struct {
	// Main selects RunMain whole-program measurement (empty = the unique
	// main class) when CallClass is empty.
	Main string
	// CallClass/CallMethod select static-call measurement instead: statics
	// are initialized, then the call is measured as a snapshot delta — the
	// Table I bench protocol.
	CallClass  string
	CallMethod string
	// MaxOps bounds the run (0 = default 500M).
	MaxOps int64
	// Engine selects the execution engine (zero value = bytecode VM).
	Engine interp.Engine
	// Costs overrides the simulator cost table (nil = DefaultCosts).
	Costs *energy.CostTable
}

func sampleKey(srcs []Source, spec RunSpec) Key {
	h := NewKey("sample")
	h.Str(spec.Main).Str(spec.CallClass).Str(spec.CallMethod)
	h.Int(spec.MaxOps).Int(int64(spec.Engine))
	if spec.Costs != nil {
		// CostTable is a flat struct of arrays and scalars, so %v is a
		// deterministic serialization.
		h.Str(fmt.Sprintf("%v", *spec.Costs))
	}
	for _, s := range srcs {
		h.Str(s.Source)
	}
	return h.Key()
}

// Sample measures one run of the sources under spec. The simulator is
// deterministic — the sample is a pure function of (sources, spec) — so
// successful samples are cached; failed runs are not (their error strings
// are re-derived identically on every call).
//
// ctx bounds the interpreter run: a cancelled run returns ctx's error,
// which — because errors are never cached — can never poison the store
// with a partial sample. ctx is deliberately not key material.
func (e *Engine) Sample(ctx context.Context, srcs []Source, spec RunSpec) (energy.Sample, error) {
	build := func() (any, error) { return e.runSample(ctx, srcs, spec) }
	v, err := e.Memo(sampleKey(srcs, spec), build)
	if err != nil {
		return energy.Sample{}, err
	}
	return v.(energy.Sample), nil
}

func (e *Engine) runSample(ctx context.Context, srcs []Source, spec RunSpec) (energy.Sample, error) {
	prog, err := e.Program(srcs, false)
	if err != nil {
		return energy.Sample{}, err
	}
	costs := energy.DefaultCosts()
	if spec.Costs != nil {
		costs = *spec.Costs
	}
	meter := energy.NewMeter(costs)
	maxOps := spec.MaxOps
	if maxOps == 0 {
		maxOps = 500_000_000
	}
	in := interp.New(prog, meter, interp.WithMaxOps(maxOps), interp.WithEngine(spec.Engine), interp.WithContext(ctx))
	if spec.CallClass != "" {
		if err := in.InitStatics(); err != nil {
			return energy.Sample{}, err
		}
		before := meter.Snapshot()
		if _, err := in.CallStatic(spec.CallClass, spec.CallMethod); err != nil {
			return energy.Sample{}, err
		}
		return meter.Snapshot().Sub(before), nil
	}
	if err := in.RunMain(spec.Main); err != nil {
		return energy.Sample{}, err
	}
	return meter.Snapshot(), nil
}

// ---------------------------------------------------------------------------
// Generic memoization for caller-defined stages.

// Memo returns the cached artifact for k, building and caching it on a miss.
// Errors are never cached. The build runs outside the store lock, so racing
// misses may build twice; determinism makes the duplicates identical and the
// first put wins.
func (e *Engine) Memo(k Key, build func() (any, error)) (any, error) {
	if e.disabled() {
		return build()
	}
	if v, ok := e.s.get(k); ok {
		return v, nil
	}
	v, err := build()
	if err != nil {
		return nil, err
	}
	e.s.put(k, v)
	return v, nil
}
