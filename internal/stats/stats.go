// Package stats implements the paper's measurement methodology (§VIII): run
// each configuration repeatedly, detect outliers with Tukey's method, replace
// outlier measurements with fresh runs, repeat until no outliers remain, then
// take the mean.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean is the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev is the sample standard deviation.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// Median is the middle value (mean of the middle pair for even lengths).
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Quartiles computes Q1 and Q3 using Tukey's hinges (medians of the lower and
// upper halves, including the overall median in both halves for odd lengths),
// matching the exploratory-data-analysis method the paper cites.
func Quartiles(xs []float64) (q1, q3 float64, err error) {
	n := len(xs)
	if n < 3 {
		return 0, 0, fmt.Errorf("stats: need at least 3 values for quartiles, got %d", n)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	half := n / 2
	if n%2 == 0 {
		return Median(s[:half]), Median(s[half:]), nil
	}
	return Median(s[:half+1]), Median(s[half:]), nil
}

// TukeyFences returns the [lo, hi] inlier interval Q1−1.5·IQR, Q3+1.5·IQR.
func TukeyFences(xs []float64) (lo, hi float64, err error) {
	q1, q3, err := Quartiles(xs)
	if err != nil {
		return 0, 0, err
	}
	iqr := q3 - q1
	return q1 - 1.5*iqr, q3 + 1.5*iqr, nil
}

// OutlierIndices reports positions of values outside the Tukey fences.
func OutlierIndices(xs []float64) ([]int, error) {
	lo, hi, err := TukeyFences(xs)
	if err != nil {
		return nil, err
	}
	var out []int
	for i, x := range xs {
		if x < lo || x > hi {
			out = append(out, i)
		}
	}
	return out, nil
}

// Protocol is the repeat-until-outlier-free measurement loop.
type Protocol struct {
	Runs      int // measurements kept per configuration (paper: 10)
	MaxRounds int // safety bound on replacement rounds
}

// DefaultProtocol mirrors the paper: 10 runs, generous replacement budget.
func DefaultProtocol() Protocol { return Protocol{Runs: 10, MaxRounds: 20} }

// Measure collects p.Runs samples from measure, then repeatedly replaces any
// Tukey outliers with fresh measurements until none remain (or MaxRounds is
// hit, in which case the final set is used). It returns the mean and the
// final sample set.
func (p Protocol) Measure(measure func() float64) (float64, []float64, error) {
	if p.Runs < 3 {
		return 0, nil, fmt.Errorf("stats: protocol needs at least 3 runs, got %d", p.Runs)
	}
	xs := make([]float64, p.Runs)
	for i := range xs {
		xs[i] = measure()
	}
	for round := 0; round < p.MaxRounds; round++ {
		outliers, err := OutlierIndices(xs)
		if err != nil {
			return 0, nil, err
		}
		if len(outliers) == 0 {
			break
		}
		for _, i := range outliers {
			xs[i] = measure()
		}
	}
	return Mean(xs), xs, nil
}

// Improvement returns the percentage improvement of after relative to before:
// 100 × (before − after) / before. Positive means "after" is better (lower).
func Improvement(before, after float64) float64 {
	if before == 0 {
		return 0
	}
	return 100 * (before - after) / before
}
