package corpus

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"jepo/internal/energy"
	"jepo/internal/jmetrics"
	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/interp"
	"jepo/internal/minijava/parser"
	"jepo/internal/refactor"
)

const testSeed = 20200518 // the paper's IPDPSW publication date

var (
	genOnce  sync.Once
	genCache map[string]*Project
	genErr   error
)

func projects(t *testing.T) map[string]*Project {
	t.Helper()
	genOnce.Do(func() {
		genCache = map[string]*Project{}
		for _, c := range Classifiers {
			p, err := Generate(c, testSeed)
			if err != nil {
				genErr = err
				return
			}
			genCache[c] = p
		}
	})
	if genErr != nil {
		t.Fatal(genErr)
	}
	return genCache
}

func TestGenerateUnknownClassifier(t *testing.T) {
	if _, err := Generate("C5.0", 1); err == nil {
		t.Fatal("unknown classifier accepted")
	}
}

func TestEveryProjectParsesAndLoads(t *testing.T) {
	for name, p := range projects(t) {
		files, err := p.Parse()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := interp.Load(files...); err != nil {
			t.Fatalf("%s does not load: %v", name, err)
		}
	}
}

func TestCoreSharedAcrossClassifiers(t *testing.T) {
	ps := projects(t)
	j48 := ps["J48"].Files
	ibk := ps["IBk"].Files
	// The first coreClasses files are the shared library and must be
	// byte-identical, as weka.core is for real WEKA classifiers.
	for i := 0; i < coreClasses; i++ {
		if j48[i].Path != ibk[i].Path || j48[i].Source != ibk[i].Source {
			t.Fatalf("core file %d differs between classifiers (%s vs %s)",
				i, j48[i].Path, ibk[i].Path)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, err := Generate("SMO", 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("SMO", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Files) != len(b.Files) {
		t.Fatal("file counts differ")
	}
	for i := range a.Files {
		if a.Files[i].Source != b.Files[i].Source {
			t.Fatalf("file %s not deterministic", a.Files[i].Path)
		}
	}
}

// tableII is the paper's Table II, used as shape targets.
var tableII = map[string]jmetrics.Metrics{
	"J48":          {Dependencies: 684, Attributes: 3263, Methods: 7746, Packages: 41, LOC: 101172},
	"RandomTree":   {Dependencies: 668, Attributes: 3235, Methods: 7611, Packages: 41, LOC: 99938},
	"RandomForest": {Dependencies: 673, Attributes: 3270, Methods: 7736, Packages: 42, LOC: 101812},
	"REPTree":      {Dependencies: 668, Attributes: 3235, Methods: 7619, Packages: 41, LOC: 100074},
	"NaiveBayes":   {Dependencies: 668, Attributes: 3229, Methods: 7582, Packages: 40, LOC: 99221},
	"Logistic":     {Dependencies: 666, Attributes: 3216, Methods: 7553, Packages: 40, LOC: 98812},
	"SMO":          {Dependencies: 677, Attributes: 3305, Methods: 7796, Packages: 43, LOC: 102250},
	"SGD":          {Dependencies: 669, Attributes: 3222, Methods: 7585, Packages: 40, LOC: 99304},
	"KStar":        {Dependencies: 671, Attributes: 3282, Methods: 7576, Packages: 41, LOC: 99421},
	"IBk":          {Dependencies: 671, Attributes: 3268, Methods: 7703, Packages: 41, LOC: 100339},
}

func TestMetricsMatchTableIIShape(t *testing.T) {
	for name, p := range projects(t) {
		files, err := p.Parse()
		if err != nil {
			t.Fatal(err)
		}
		srcs := make([]jmetrics.SourceFile, len(files))
		for i := range files {
			srcs[i] = jmetrics.SourceFile{AST: files[i], Source: p.Files[i].Source}
		}
		proj := jmetrics.NewProject(srcs)
		m, err := proj.Measure(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := tableII[name]
		check := func(metric string, got, target, tolPct float64) {
			if math.Abs(got-target)/target*100 > tolPct {
				t.Errorf("%s %s = %.0f, Table II reports %.0f (tolerance %.0f%%)",
					name, metric, got, target, tolPct)
			}
		}
		check("dependencies", float64(m.Dependencies), float64(want.Dependencies), 3)
		check("attributes", float64(m.Attributes), float64(want.Attributes), 10)
		check("methods", float64(m.Methods), float64(want.Methods), 10)
		check("packages", float64(m.Packages), float64(want.Packages), 10)
		check("LOC", float64(m.LOC), float64(want.LOC), 15)
		t.Logf("%-12s deps=%d attrs=%d methods=%d pkgs=%d loc=%d",
			name, m.Dependencies, m.Attributes, m.Methods, m.Packages, m.LOC)
	}
}

// tableIVChanges is the paper's Table IV "Changes" column.
var tableIVChanges = map[string]int{
	"J48": 877, "RandomTree": 709, "RandomForest": 719, "REPTree": 723,
	"NaiveBayes": 711, "Logistic": 711, "SMO": 713, "SGD": 713,
	"KStar": 711, "IBk": 711,
}

func TestRefactorChangeCountsMatchTableIVShape(t *testing.T) {
	for name, p := range projects(t) {
		files, err := p.Parse()
		if err != nil {
			t.Fatal(err)
		}
		res := refactor.Apply(files)
		want := tableIVChanges[name]
		if math.Abs(float64(res.Changes-want))/float64(want)*100 > 25 {
			t.Errorf("%s changes = %d, Table IV reports %d", name, res.Changes, want)
		}
		t.Logf("%-12s changes=%d (paper %d) byRule=%v", name, res.Changes, want, res.ByRule)
		// Refactored corpus must still parse and load.
		for i, f := range files {
			if _, err := parser.Parse(p.Files[i].Path, ast.Print(f)); err != nil {
				t.Fatalf("%s: refactored %s does not re-parse: %v", name, p.Files[i].Path, err)
			}
		}
		if _, err := interp.Load(files...); err != nil {
			t.Fatalf("%s: refactored corpus does not load: %v", name, err)
		}
	}
}

// runKernel executes a classifier's kernel over synthetic data and returns
// the checksum and consumed package energy.
func runKernel(t *testing.T, files []*ast.File, name string, reps int) (float64, energy.Joules) {
	t.Helper()
	prog, err := interp.Load(files...)
	if err != nil {
		t.Fatalf("%s kernel load: %v", name, err)
	}
	in := interp.New(prog, energy.NewMeter(energy.DefaultCosts()), interp.WithMaxOps(500_000_000))
	if err := in.InitStatics(); err != nil {
		t.Fatal(err)
	}
	const n, f = 64, 7
	data := make([][]float64, n)
	labels := make([]int64, n)
	for i := range data {
		data[i] = make([]float64, f)
		for j := range data[i] {
			data[i][j] = float64((i*31+j*17)%97) / 97
		}
		labels[i] = int64(i % 2)
	}
	kc := KernelClass(name)
	if err := in.Bind(kc, "DATA", in.NewDoubleMatrix(data)); err != nil {
		t.Fatal(err)
	}
	if err := in.Bind(kc, "LABELS", in.NewIntArray(labels)); err != nil {
		t.Fatal(err)
	}
	before := in.Meter().Snapshot()
	v, err := in.CallStatic(kc, "run", interp.IntVal(int64(reps)))
	if err != nil {
		t.Fatalf("%s kernel run: %v", name, err)
	}
	return v.AsF64(), in.Meter().Snapshot().Sub(before).Package
}

// kernelFiles parses just the kernel file of a project.
func kernelFiles(t *testing.T, name string) []*ast.File {
	t.Helper()
	p := projects(t)[name]
	kpath := ""
	for _, f := range p.Files {
		if f.Path == pathOf("weka.classifiers."+specs[name].family, KernelClass(name)) {
			kpath = f.Path
			a, err := parser.Parse(kpath, f.Source)
			if err != nil {
				t.Fatal(err)
			}
			return []*ast.File{a}
		}
	}
	t.Fatalf("kernel for %s not found", name)
	return nil
}

func TestKernelsExecuteAndRefactorPreservesBehaviour(t *testing.T) {
	for _, name := range Classifiers {
		base := kernelFiles(t, name)
		sum0, e0 := runKernel(t, base, name, 10)

		refd := kernelFiles(t, name)
		res := refactor.Apply(refd)
		sum1, e1 := runKernel(t, refd, name, 10)

		if sum0 == 0 {
			t.Errorf("%s kernel checksum is zero — degenerate computation", name)
		}
		rel := math.Abs(sum1-sum0) / (math.Abs(sum0) + 1)
		if rel > 1e-3 {
			t.Errorf("%s refactoring drifted checksum: %.10g → %.10g (rel %.2g)",
				name, sum0, sum1, rel)
		}
		improvement := 100 * (1 - float64(e1)/float64(e0))
		t.Logf("%-12s changes=%d improvement=%+.2f%% (energy %v → %v)",
			name, res.Changes, improvement, e0, e1)
		if improvement < -1 {
			t.Errorf("%s refactoring made energy worse by %.2f%%", name, -improvement)
		}
	}
}

// The ordering the paper's Table IV reports: Random Forest improves the most,
// RandomTree/Logistic/SMO essentially not at all.
func TestKernelImprovementOrdering(t *testing.T) {
	improvement := map[string]float64{}
	for _, name := range Classifiers {
		base := kernelFiles(t, name)
		_, e0 := runKernel(t, base, name, 10)
		refd := kernelFiles(t, name)
		refactor.Apply(refd)
		_, e1 := runKernel(t, refd, name, 10)
		improvement[name] = 100 * (1 - float64(e1)/float64(e0))
	}
	for name, imp := range improvement {
		fmt.Printf("kernel improvement %-12s %+.2f%%\n", name, imp)
	}
	if improvement["RandomForest"] < 8 {
		t.Errorf("RandomForest improvement = %.2f%%, want the Table IV top spot (≈14%%)",
			improvement["RandomForest"])
	}
	for _, flat := range []string{"RandomTree", "Logistic", "SMO"} {
		if math.Abs(improvement[flat]) > 2 {
			t.Errorf("%s improvement = %.2f%%, want ≈0 as in Table IV", flat, improvement[flat])
		}
	}
	for _, mid := range []string{"J48", "REPTree", "NaiveBayes", "SGD", "KStar", "IBk"} {
		if improvement[mid] < 1 {
			t.Errorf("%s improvement = %.2f%%, want a clear positive mid-range value", mid, improvement[mid])
		}
		if improvement[mid] > improvement["RandomForest"] {
			t.Errorf("%s improvement %.2f%% exceeds RandomForest's %.2f%% — ordering broken",
				mid, improvement[mid], improvement["RandomForest"])
		}
	}
}

func TestHasKernel(t *testing.T) {
	for _, c := range Classifiers {
		if !HasKernel(c) {
			t.Errorf("%s missing kernel", c)
		}
	}
	if HasKernel("ZeroR") {
		t.Error("unexpected kernel")
	}
}
