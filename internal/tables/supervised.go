// Supervised Table IV runner. The plain Table4 aborts the whole regeneration
// on the first failing classifier; under real measurement conditions one bad
// row must not kill a run that has already spent minutes measuring the other
// nine. Table4Supervised runs every classifier under its own supervisor —
// panic recovery, optional deadline — turns failures into per-row error
// entries, and checkpoints completed rows so an interrupted run resumes
// without re-measuring.
package tables

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"jepo/internal/airlines"
	"jepo/internal/corpus"
	"jepo/internal/dataset"
	"jepo/internal/dist"
	"jepo/internal/sched"
)

// Table4Runner is the per-row face of the supervised Table IV pipeline:
// the shared inputs (generated data, normalized kernel features) computed
// once, plus a Row method that runs one classifier under full supervision.
// It exists so row execution can be hosted anywhere — the sched pool here,
// or a dist worker process, which memoizes one runner per campaign and
// serves rows from it.
type Table4Runner struct {
	cfg    Table4Config
	data   *dataset.Dataset
	feats  [][]float64
	labels []int64
	sayMu  sync.Mutex
}

// NewTable4Runner prepares the shared inputs and the checkpoint directory.
func NewTable4Runner(cfg Table4Config) (*Table4Runner, error) {
	if cfg.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("tables: checkpoint dir: %w", err)
		}
	}
	data := airlines.Generate(cfg.Instances, cfg.Seed)
	feats, labels := kernelData(data)
	return &Table4Runner{cfg: cfg, data: data, feats: feats, labels: labels}, nil
}

func (r *Table4Runner) say(format string, args ...any) {
	if r.cfg.Progress != nil {
		r.sayMu.Lock()
		r.cfg.Progress(fmt.Sprintf(format, args...))
		r.sayMu.Unlock()
	}
}

// Row runs one classifier's supervised pipeline: a valid checkpointed row
// is returned without re-measuring, a freshly measured successful row is
// persisted (atomically), and every failure mode — error, panic, deadline
// — comes back as a row with Err set, never as an error. Rows are
// independent and Row is goroutine-safe.
func (r *Table4Runner) Row(ctx context.Context, name string) Table4Row {
	if row, ok := loadCheckpoint(r.cfg.CheckpointDir, name); ok {
		r.say("%s: resumed from checkpoint", name)
		return row
	}
	row := superviseRow(ctx, name, r.data, r.feats, r.labels, r.cfg, r.say)
	if row.Err == "" {
		if err := saveCheckpoint(r.cfg.CheckpointDir, row); err != nil {
			r.say("%s: checkpoint not written: %v", name, err)
		}
	}
	return row
}

// Table4Supervised runs the full §VIII validation with per-row supervision.
// Every classifier produces a row: successful rows carry measurements,
// failed ones carry Err. The returned error covers infrastructure problems
// only (an unusable checkpoint directory), never a row failure.
func Table4Supervised(ctx context.Context, cfg Table4Config) ([]Table4Row, error) {
	runner, err := NewTable4Runner(cfg)
	if err != nil {
		return nil, err
	}
	// Rows run on the sched pool under the same supervision semantics as
	// before: superviseRow converts every failure mode (error, panic,
	// deadline) into a row with Err set, so the pool's fn never errors and
	// every classifier always yields a row, committed in paper order.
	rows, tel, err := sched.Map(ctx, sched.Config{Jobs: cfg.Slots, Seed: cfg.Seed}, corpus.Classifiers,
		func(_ sched.Task, name string) (Table4Row, error) {
			return runner.Row(ctx, name), nil
		})
	if cfg.OnTelemetry != nil {
		cfg.OnTelemetry(tel)
	}
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FailedRows filters the rows the supervised runner could not measure.
func FailedRows(rows []Table4Row) []Table4Row {
	var out []Table4Row
	for _, r := range rows {
		if r.Err != "" {
			out = append(out, r)
		}
	}
	return out
}

// superviseRow runs one classifier's pipeline in a child goroutine guarded
// by panic recovery and the configured deadline. A timed-out pipeline is
// abandoned (its goroutine drains into a buffered channel); the row reports
// the deadline instead of blocking the run.
func superviseRow(ctx context.Context, name string, data *dataset.Dataset, feats [][]float64, labels []int64, cfg Table4Config, say func(string, ...any)) Table4Row {
	type outcome struct {
		row Table4Row
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- outcome{err: fmt.Errorf("panic: %v", r)}
			}
		}()
		if cfg.RowHook != nil {
			if err := cfg.RowHook(name); err != nil {
				done <- outcome{err: err}
				return
			}
		}
		row, err := table4Row(ctx, name, data, feats, labels, cfg, say)
		done <- outcome{row: row, err: err}
	}()

	var deadline <-chan time.Time
	if cfg.RowTimeout > 0 {
		timer := time.NewTimer(cfg.RowTimeout)
		defer timer.Stop()
		deadline = timer.C
	}
	select {
	case out := <-done:
		if out.err != nil {
			say("%s: FAILED: %v", name, out.err)
			return Table4Row{Classifier: name, Err: out.err.Error()}
		}
		return out.row
	case <-deadline:
		say("%s: deadline %v exceeded; row abandoned", name, cfg.RowTimeout)
		return Table4Row{Classifier: name, Err: fmt.Sprintf("deadline exceeded (%v)", cfg.RowTimeout)}
	}
}

// checkpointPath names one classifier's persisted row.
func checkpointPath(dir, name string) string {
	return filepath.Join(dir, name+".json")
}

// loadCheckpoint restores a previously completed row. Corrupt or mismatched
// files are ignored — the row is simply re-measured.
func loadCheckpoint(dir, name string) (Table4Row, bool) {
	if dir == "" {
		return Table4Row{}, false
	}
	blob, err := os.ReadFile(checkpointPath(dir, name))
	if err != nil {
		return Table4Row{}, false
	}
	var row Table4Row
	if err := json.Unmarshal(blob, &row); err != nil || row.Classifier != name || row.Err != "" {
		return Table4Row{}, false
	}
	return row, true
}

// saveCheckpoint persists a completed row. Only successful rows are written,
// so a rerun retries exactly the failures. The write is atomic (temp file +
// rename): a worker or process death mid-write leaves the previous bytes —
// or no file — never a truncated checkpoint that would poison resume.
func saveCheckpoint(dir string, row Table4Row) error {
	if dir == "" {
		return nil
	}
	blob, err := json.MarshalIndent(row, "", "  ")
	if err != nil {
		return err
	}
	return dist.AtomicWriteFile(checkpointPath(dir, row.Classifier), append(blob, '\n'), 0o644)
}
