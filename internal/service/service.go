// Package service is the session-oriented façade over the analysis pipeline:
// the layer the jepod daemon (and any long-lived embedder) drives instead of
// re-running the CLI. A Service owns one shared content-addressed artifact
// store and one admission gate; each Session owns a virtual file set. Every
// request runs under the caller's context with per-request op budgets, emits
// streaming progress events (the material the CLI prints to stderr), and
// renders its output through the same helpers the CLI uses, so a daemon
// response is byte-identical to the corresponding CLI stdout.
//
// Admission control: requests Acquire the service's gate before doing any
// work. At most Slots requests execute concurrently; up to MaxQueue more
// wait FIFO; beyond that Acquire fails fast with sched.ErrSaturated, which
// the HTTP layer maps to 503. Cancelling a queued request's context removes
// it from the queue.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"jepo/internal/core"
	"jepo/internal/engine"
	"jepo/internal/minijava/interp"
	"jepo/internal/sched"
	"jepo/internal/tables"
)

// ErrClosed reports an operation on a closed Service or Session.
var ErrClosed = errors.New("service: closed")

// ErrNoSession reports an unknown session ID.
var ErrNoSession = errors.New("service: no such session")

// Config sizes a Service.
type Config struct {
	// Cache configures the artifact store every session shares. The zero
	// value is an enabled store at the default capacity.
	Cache engine.Config
	// Engine is the default execution engine for requests that don't name
	// one (zero value = bytecode VM).
	Engine interp.Engine
	// Jobs is the default pool width inside one request (per-fix
	// measurements, table rows). <= 0 means GOMAXPROCS. Output is
	// bit-identical at any value.
	Jobs int
	// Slots bounds concurrently executing requests. <= 0 means 1.
	Slots int
	// MaxQueue bounds requests waiting for a slot before new arrivals are
	// shed with sched.ErrSaturated. < 0 means an unbounded queue; 0 means
	// no queue (admit or shed).
	MaxQueue int
	// MaxOps is the default per-run op budget for requests that don't set
	// one (0 = the interpreter default).
	MaxOps int64
}

// Service hosts sessions over one shared artifact store.
type Service struct {
	cfg   Config
	store *engine.Engine
	gate  *sched.Gate

	mu       sync.Mutex
	sessions map[string]*Session
	seq      int
	closed   bool
}

// New builds a Service with its own artifact store and admission gate.
func New(cfg Config) *Service {
	if cfg.Jobs <= 0 {
		cfg.Jobs = runtime.GOMAXPROCS(0)
	}
	slots := cfg.Slots
	if slots <= 0 {
		slots = 1
	}
	return &Service{
		cfg:      cfg,
		store:    engine.New(cfg.Cache),
		gate:     sched.NewGate(slots, cfg.MaxQueue),
		sessions: make(map[string]*Session),
	}
}

// Store exposes the shared artifact engine (cache statistics, warm-up).
func (svc *Service) Store() *engine.Engine { return svc.store }

// GateStats reports the admission gate's counters.
func (svc *Service) GateStats() sched.GateStats { return svc.gate.Stats() }

// CreateSession opens a new empty session.
func (svc *Service) CreateSession() (*Session, error) {
	svc.mu.Lock()
	defer svc.mu.Unlock()
	if svc.closed {
		return nil, ErrClosed
	}
	svc.seq++
	s := &Session{
		svc:   svc,
		id:    fmt.Sprintf("s%d", svc.seq),
		files: make(map[string]string),
	}
	svc.sessions[s.id] = s
	return s, nil
}

// Session looks a session up by ID.
func (svc *Service) Session(id string) (*Session, error) {
	svc.mu.Lock()
	defer svc.mu.Unlock()
	s, ok := svc.sessions[id]
	if !ok {
		return nil, ErrNoSession
	}
	return s, nil
}

// Sessions returns the open session IDs in creation order.
func (svc *Service) Sessions() []string {
	svc.mu.Lock()
	defer svc.mu.Unlock()
	ids := make([]string, 0, len(svc.sessions))
	for id := range svc.sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		return len(ids[i]) < len(ids[j]) || (len(ids[i]) == len(ids[j]) && ids[i] < ids[j])
	})
	return ids
}

// Close closes the service and every open session. In-flight requests run
// to completion (they hold gate slots); new requests fail with ErrClosed.
func (svc *Service) Close() {
	svc.mu.Lock()
	defer svc.mu.Unlock()
	svc.closed = true
	for id, s := range svc.sessions {
		s.markClosed()
		delete(svc.sessions, id)
	}
}

// Session is one client's virtual file set. Files never touch the
// filesystem: they exist only in the session, keyed by a relative path, and
// flow into the shared artifact store content-addressed, so two sessions
// holding identical sources share every cached parse, program and sample.
type Session struct {
	svc *Service
	id  string

	mu     sync.Mutex
	files  map[string]string
	closed bool
}

// ID returns the session's identifier.
func (s *Session) ID() string { return s.id }

// PutFile creates or replaces one virtual source file.
func (s *Session) PutFile(path, src string) error {
	if path == "" || strings.HasPrefix(path, "/") || strings.Contains(path, "..") {
		return fmt.Errorf("service: invalid path %q", path)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.files[path] = src
	return nil
}

// DeleteFile removes one virtual source file.
func (s *Session) DeleteFile(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.files[path]; !ok {
		return fmt.Errorf("service: no file %q", path)
	}
	delete(s.files, path)
	return nil
}

// Files lists the session's paths in sorted order.
func (s *Session) Files() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	paths := make([]string, 0, len(s.files))
	for p := range s.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// Close removes the session from its service.
func (s *Session) Close() {
	s.svc.mu.Lock()
	delete(s.svc.sessions, s.id)
	s.svc.mu.Unlock()
	s.markClosed()
}

func (s *Session) markClosed() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// project snapshots the file set as a core.Project.
func (s *Session) project() (core.Project, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if len(s.files) == 0 {
		return nil, fmt.Errorf("service: session %s has no files", s.id)
	}
	p := make(core.Project, len(s.files))
	for path, src := range s.files {
		p[path] = src
	}
	return p, nil
}

// Event is one streaming progress notification. Events carry the material
// the CLI prints to stderr — queue position, pool telemetry, cache
// statistics — and are explicitly NOT part of the determinism-pinned
// output: two identical requests may emit different telemetry while
// producing byte-identical Output.
type Event struct {
	Seq     int    `json:"seq"`
	Stage   string `json:"stage"` // queued | running | telemetry | done | error
	Message string `json:"message,omitempty"`
}

// Progress receives a request's events in order. Callbacks run on the
// request's goroutine; a nil Progress discards events.
type Progress func(Event)

// emitter numbers events and tolerates a nil sink.
type emitter struct {
	fn  Progress
	seq int
}

func (e *emitter) emit(stage, msg string) {
	e.seq++
	if e.fn != nil {
		e.fn(Event{Seq: e.seq, Stage: stage, Message: msg})
	}
}

// Request carries the per-request knobs shared by every session operation.
type Request struct {
	// MainClass anchors measurement runs (empty = the unique main class).
	MainClass string `json:"main,omitempty"`
	// Engine names the execution engine ("" = service default).
	Engine string `json:"engine,omitempty"`
	// Jobs overrides the pool width (0 = service default). Pure wall-clock
	// knob: Output is bit-identical at any value.
	Jobs int `json:"jobs,omitempty"`
	// MaxOps is this request's op budget per measurement run (0 = service
	// default). The budget is cache-key material: the same sources under a
	// different budget are distinct artifacts.
	MaxOps int64 `json:"max_ops,omitempty"`
}

// resolve folds service defaults into the request.
func (svc *Service) resolve(req Request) (eng interp.Engine, jobs int, maxOps int64, err error) {
	eng = svc.cfg.Engine
	if req.Engine != "" {
		eng, err = interp.ParseEngine(req.Engine)
		if err != nil {
			return eng, 0, 0, err
		}
	}
	jobs = req.Jobs
	if jobs <= 0 {
		jobs = svc.cfg.Jobs
	}
	maxOps = req.MaxOps
	if maxOps == 0 {
		maxOps = svc.cfg.MaxOps
	}
	return eng, jobs, maxOps, nil
}

// admit passes the admission gate, narrating the wait. The returned release
// function must be called when the request finishes.
func (svc *Service) admit(ctx context.Context, em *emitter) (func(), error) {
	em.emit("queued", "")
	release, err := svc.gate.Acquire(ctx)
	if err != nil {
		return nil, err
	}
	em.emit("running", "")
	return release, nil
}

// AnalyzeResult is one analyze request's outcome.
type AnalyzeResult struct {
	// Report is the structured analysis.
	Report *core.AnalysisReport
	// Output is byte-identical to `jepo analyze` stdout.
	Output string
}

// Analyze runs the unified diagnostic pass over the session's file set.
func (s *Session) Analyze(ctx context.Context, req Request, onEvent Progress) (*AnalyzeResult, error) {
	em := &emitter{fn: onEvent}
	p, err := s.project()
	if err != nil {
		return nil, err
	}
	eng, jobs, maxOps, err := s.svc.resolve(req)
	if err != nil {
		return nil, err
	}
	release, err := s.svc.admit(ctx, em)
	if err != nil {
		return nil, err
	}
	defer release()
	rep, err := core.Analyze(ctx, p, core.AnalyzeConfig{
		MainClass: req.MainClass,
		MaxOps:    maxOps,
		Engine:    eng,
		Jobs:      jobs,
		Cache:     s.svc.store,
	})
	if err != nil {
		em.emit("error", err.Error())
		return nil, err
	}
	em.emit("telemetry", s.svc.store.Stats().String())
	em.emit("done", "")
	return &AnalyzeResult{Report: rep, Output: RenderAnalyze(rep)}, nil
}

// OptimizeResult is one optimize request's outcome.
type OptimizeResult struct {
	// Files maps each path to its refactored source.
	Files core.Project
	// Changes counts applied rewrites.
	Changes int
	// Output is byte-identical to `jepo optimize` stdout (sorted file dump).
	Output string
}

// Optimize applies the Table I refactorings to the session's file set. The
// session's files are NOT mutated; the rewritten sources come back in the
// result, so a client can inspect before choosing to PutFile them back.
func (s *Session) Optimize(ctx context.Context, req Request, onEvent Progress) (*OptimizeResult, error) {
	em := &emitter{fn: onEvent}
	p, err := s.project()
	if err != nil {
		return nil, err
	}
	release, err := s.svc.admit(ctx, em)
	if err != nil {
		return nil, err
	}
	defer release()
	refactored, res, err := core.Optimize(ctx, p)
	if err != nil {
		em.emit("error", err.Error())
		return nil, err
	}
	em.emit("done", "")
	return &OptimizeResult{
		Files:   refactored,
		Changes: res.Changes,
		Output:  RenderOptimize(refactored, res),
	}, nil
}

// ProfileResult is one profile request's outcome.
type ProfileResult struct {
	// Result is the structured profile.
	Result *core.ProfileResult
	// Output is byte-identical to `jepo profile` stdout (minus the
	// CLI-local "log written to" line).
	Output string
	// ResultTxt is the per-execution log the CLI writes to result.txt.
	ResultTxt string
}

// Profile runs the session's program under injected RAPL probes.
func (s *Session) Profile(ctx context.Context, req Request, onEvent Progress) (*ProfileResult, error) {
	em := &emitter{fn: onEvent}
	p, err := s.project()
	if err != nil {
		return nil, err
	}
	eng, _, maxOps, err := s.svc.resolve(req)
	if err != nil {
		return nil, err
	}
	release, err := s.svc.admit(ctx, em)
	if err != nil {
		return nil, err
	}
	defer release()
	res, err := core.Profile(ctx, p, core.ProfileConfig{
		MainClass: req.MainClass,
		MaxOps:    maxOps,
		Engine:    eng,
		Cache:     s.svc.store,
	})
	if err != nil {
		em.emit("error", err.Error())
		return nil, err
	}
	em.emit("done", "")
	return &ProfileResult{
		Result:    res,
		Output:    RenderProfile(res),
		ResultTxt: res.Profiler.ResultTxt(),
	}, nil
}

// TableResult is one table request's outcome.
type TableResult struct {
	// Output is byte-identical to the corresponding CLI table block
	// (`jepo table1`; `wekaexp -table 2`).
	Output string
}

// Table regenerates paper table n (1 or 2). Tables need no session — they
// run over built-in corpora — but they share the gate and the store with
// session requests, so a table regeneration queues like everything else.
func (svc *Service) Table(ctx context.Context, n int, seed uint64, req Request, onEvent Progress) (*TableResult, error) {
	em := &emitter{fn: onEvent}
	eng, jobs, _, err := svc.resolve(req)
	if err != nil {
		return nil, err
	}
	release, err := svc.admit(ctx, em)
	if err != nil {
		return nil, err
	}
	defer release()
	var out string
	switch n {
	case 1:
		rows, tel, terr := tables.Table1Jobs(ctx, eng, jobs)
		if terr != nil {
			em.emit("error", terr.Error())
			return nil, terr
		}
		em.emit("telemetry", tel.String())
		out = RenderTable1(rows)
	case 2:
		rows, tel, terr := tables.Table2Parallel(ctx, seed, jobs)
		if terr != nil {
			em.emit("error", terr.Error())
			return nil, terr
		}
		em.emit("telemetry", tel.String())
		out = RenderTable2(rows)
	default:
		return nil, fmt.Errorf("service: no table %d (have 1, 2)", n)
	}
	em.emit("done", "")
	return &TableResult{Output: out}, nil
}
