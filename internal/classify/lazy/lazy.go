// Package lazy implements the instance-based classifiers: IBk (k-nearest
// neighbours with the HEOM distance WEKA uses by default) and KStar (Cleary &
// Trigg's entropic-distance nearest-neighbour method).
package lazy

import (
	"fmt"
	"math"
	"sort"

	"jepo/internal/classify"
	"jepo/internal/dataset"
)

// store is the shared lazy-learning training state: the retained instances
// plus numeric ranges for distance normalization.
type store struct {
	d        *dataset.Dataset
	min, max []float64
}

func (s *store) fit(d *dataset.Dataset) error {
	if d.NumInstances() == 0 {
		return fmt.Errorf("lazy: empty training set")
	}
	s.d = d
	n := d.NumAttrs()
	s.min = make([]float64, n)
	s.max = make([]float64, n)
	for j := range s.min {
		s.min[j] = math.Inf(1)
		s.max[j] = math.Inf(-1)
	}
	for _, row := range d.X {
		for j, v := range row {
			if math.IsNaN(v) {
				continue
			}
			if v < s.min[j] {
				s.min[j] = v
			}
			if v > s.max[j] {
				s.max[j] = v
			}
		}
	}
	return nil
}

// attrDistance is the per-attribute HEOM distance in [0, 1].
func (s *store) attrDistance(j int, a, b float64, fp classify.FP) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return 1
	}
	if s.d.Attrs[j].Kind == dataset.Nominal {
		if a == b {
			return 0
		}
		return 1
	}
	span := s.max[j] - s.min[j]
	if span == 0 {
		return 0
	}
	return fp.R(math.Abs(a-b) / span)
}

// distance is the squared HEOM distance between two rows.
func (s *store) distance(a, b []float64, fp classify.FP) float64 {
	sum := 0.0
	for j := range a {
		if j == s.d.ClassIdx {
			continue
		}
		dj := s.attrDistance(j, a[j], b[j], fp)
		sum = fp.R(sum + dj*dj)
	}
	return sum
}

// IBk is WEKA's k-nearest-neighbour classifier.
type IBk struct {
	// K is the neighbourhood size (WEKA default 1; the paper's runs use the
	// defaults).
	K int

	opts classify.Options
	s    store
}

// NewIBk builds an IBk with the given k (0 → 1).
func NewIBk(opts classify.Options, k int) *IBk {
	if k <= 0 {
		k = 1
	}
	return &IBk{K: k, opts: opts}
}

// Name implements Classifier.
func (c *IBk) Name() string { return "IBk" }

// Train implements Classifier.
func (c *IBk) Train(d *dataset.Dataset) error { return c.s.fit(d) }

// Predict implements Classifier.
func (c *IBk) Predict(row []float64) int {
	type nb struct {
		dist float64
		cls  int
	}
	k := c.K
	if k > c.s.d.NumInstances() {
		k = c.s.d.NumInstances()
	}
	best := make([]nb, 0, k+1)
	fp := c.opts.FP
	for i, tr := range c.s.d.X {
		dist := c.s.distance(row, tr, fp)
		if len(best) < k || dist < best[len(best)-1].dist {
			best = append(best, nb{dist, c.s.d.Class(i)})
			sort.Slice(best, func(a, b int) bool { return best[a].dist < best[b].dist })
			if len(best) > k {
				best = best[:k]
			}
		}
	}
	votes := make([]float64, c.s.d.NumClasses())
	for _, n := range best {
		votes[n.cls]++
	}
	return classify.ArgMax(votes)
}

// KStar is Cleary & Trigg's K* classifier: each training instance
// contributes a transformation probability to each class; numeric
// differences decay exponentially and nominal mismatches carry a fixed
// transformation probability controlled by the blend parameter.
type KStar struct {
	// Blend is WEKA's global blend percentage (default 20).
	Blend float64

	opts classify.Options
	s    store
}

// NewKStar builds a KStar with the stock blend setting.
func NewKStar(opts classify.Options) *KStar { return &KStar{Blend: 20, opts: opts} }

// Name implements Classifier.
func (c *KStar) Name() string { return "KStar" }

// Train implements Classifier.
func (c *KStar) Train(d *dataset.Dataset) error { return c.s.fit(d) }

// Predict implements Classifier.
func (c *KStar) Predict(row []float64) int {
	fp := c.opts.FP
	// Blend maps to a transformation "stiffness": higher blend flattens the
	// kernel toward uniform (more neighbours matter).
	scale := 10.0 * (1 - c.Blend/100*0.9)
	stop := c.Blend / 100 * 0.5 // nominal transformation probability
	probs := make([]float64, c.s.d.NumClasses())
	for i, tr := range c.s.d.X {
		p := 1.0
		for j := range tr {
			if j == c.s.d.ClassIdx {
				continue
			}
			if c.s.d.Attrs[j].Kind == dataset.Nominal {
				if !math.IsNaN(row[j]) && !math.IsNaN(tr[j]) && row[j] == tr[j] {
					p = fp.R(p * (1 - stop))
				} else {
					p = fp.R(p * stop)
				}
				continue
			}
			dj := c.s.attrDistance(j, row[j], tr[j], fp)
			p = fp.R(p * math.Exp(-scale*dj))
		}
		probs[c.s.d.Class(i)] = fp.R(probs[c.s.d.Class(i)] + p)
	}
	return classify.ArgMax(probs)
}
