// The cache benchmark (jperf bench -cache) measures what the content-addressed
// artifact engine buys: each workload runs three times — nocache (engine
// disabled, the pre-engine pipeline), cold (a fresh store, every artifact
// built once), and warm (the same store again, everything a hit) — and the
// report records wall clock, the warm-over-cold speedup, and the store's
// hit/miss/eviction tallies.
//
// Determinism is asserted inside the bench: all three runs of a workload must
// produce bit-identical result fingerprints (every Joule-derived float64 as
// raw bits), or the bench fails. The cache is a pure cost knob; a fingerprint
// drift is a correctness bug, not a performance change.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"jepo/internal/core"
	"jepo/internal/corpus"
	cache "jepo/internal/engine"
	"jepo/internal/stats"
	"jepo/internal/tables"
)

// cachePoint is one run mode's measurement for a workload.
type cachePoint struct {
	Mode    string  `json:"mode"` // nocache, cold or warm
	Seconds float64 `json:"seconds"`
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
	// BitIdentical reports the in-bench determinism check: this run's full
	// result fingerprint matched the nocache run exactly.
	BitIdentical bool `json:"bit_identical"`
}

// cacheWorkload is one benchmarked pipeline.
type cacheWorkload struct {
	Name string `json:"name"`
	// WarmSpeedup is cold seconds / warm seconds: what a fully hydrated
	// store saves over building every artifact.
	WarmSpeedup float64      `json:"warm_speedup_vs_cold"`
	Evictions   uint64       `json:"evictions"`
	Points      []cachePoint `json:"points"`
}

// cacheBenchReport is the BENCH_cache.json document.
type cacheBenchReport struct {
	GeneratedAt string          `json:"generated_at"`
	GoVersion   string          `json:"go_version"`
	NumCPU      int             `json:"num_cpu"`
	GOMAXPROCS  int             `json:"gomaxprocs"`
	Note        string          `json:"note"`
	Workloads   []cacheWorkload `json:"workloads"`
}

// runCacheBench measures every workload in all three modes and writes the
// report. A fingerprint mismatch aborts the bench.
func runCacheBench(ctx context.Context, out string) error {
	report := cacheBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Note: "nocache disables the artifact engine, cold starts an empty store, warm reuses it; " +
			"all three runs are asserted bit-identical — the cache changes cost, never bytes",
	}

	workloads := []struct {
		name string
		run  func(eng *cache.Engine) (string, error)
	}{
		{"corpus-analyzeall", func(eng *cache.Engine) (string, error) { return cacheBenchCorpus(ctx, eng) }},
		{"table4-reduced", func(eng *cache.Engine) (string, error) { return cacheBenchTable4(ctx, eng) }},
	}
	for _, w := range workloads {
		wl := cacheWorkload{Name: w.name}
		off := cache.New(cache.Config{Disabled: true})
		t0 := time.Now()
		refFP, err := w.run(off)
		if err != nil {
			return fmt.Errorf("%s nocache: %w", w.name, err)
		}
		nocache := time.Since(t0).Seconds()
		wl.Points = append(wl.Points, cachePoint{Mode: "nocache", Seconds: nocache, BitIdentical: true})
		fmt.Printf("%-18s nocache %8.2fs (reference)\n", w.name, nocache)

		eng := cache.New(cache.Config{})
		var seconds [2]float64
		for i, mode := range []string{"cold", "warm"} {
			before := eng.Stats()
			t0 = time.Now()
			fp, err := w.run(eng)
			if err != nil {
				return fmt.Errorf("%s %s: %w", w.name, mode, err)
			}
			seconds[i] = time.Since(t0).Seconds()
			st := eng.Stats()
			hits, misses := st.Hits-before.Hits, st.Misses-before.Misses
			identical := fp == refFP
			pt := cachePoint{
				Mode: mode, Seconds: seconds[i],
				Hits: hits, Misses: misses, BitIdentical: identical,
			}
			if hits+misses > 0 {
				pt.HitRate = float64(hits) / float64(hits+misses)
			}
			wl.Points = append(wl.Points, pt)
			fmt.Printf("%-18s %-7s %8.2fs (%.2fx vs cold, %.1f%% hits)\n",
				w.name, mode, seconds[i], seconds[0]/seconds[i], 100*pt.HitRate)
			if !identical {
				return fmt.Errorf("%s: %s run is NOT bit-identical to the uncached reference", w.name, mode)
			}
		}
		wl.WarmSpeedup = seconds[0] / seconds[1]
		wl.Evictions = eng.Stats().Evictions
		report.Workloads = append(report.Workloads, wl)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d workloads)\n", out, len(report.Workloads))
	return nil
}

// cacheBenchCorpus runs the full pass analysis — parse, diagnose, measure
// baseline and every candidate fix — over the generated J48 closure and
// fingerprints every per-file report, energy bits included.
func cacheBenchCorpus(ctx context.Context, eng *cache.Engine) (string, error) {
	p, err := corpus.Generate("J48", 20200518)
	if err != nil {
		return "", err
	}
	rep, _, err := core.AnalyzeAll(ctx, p, core.AnalyzeConfig{Jobs: runtime.GOMAXPROCS(0), Cache: eng})
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for _, fa := range rep.Files {
		fmt.Fprintf(&sb, "%s|%v|%x\n", fa.Path, fa.Report.Executable,
			math.Float64bits(float64(fa.Report.Baseline.Package)))
		for _, d := range fa.Report.Diags {
			fmt.Fprintf(&sb, "  %s|%v|%x|%q\n", d.Diagnostic, d.Verdict,
				math.Float64bits(float64(d.Delta)), d.Note)
		}
	}
	sb.WriteString(core.CorpusView(rep))
	return sb.String(), nil
}

// cacheBenchTable4 regenerates a reduced Table IV through the given store and
// fingerprints every column.
func cacheBenchTable4(ctx context.Context, eng *cache.Engine) (string, error) {
	cfg := tables.Table4Config{
		Seed:      20200518,
		Instances: 400,
		Reps:      1,
		Protocol:  stats.Protocol{Runs: 3, MaxRounds: 2},
		CVFolds:   3,
		Cache:     eng,
	}
	rows, err := tables.Table4(ctx, cfg)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s|%d|%x|%x|%x|%x\n", r.Classifier, r.Changes,
			math.Float64bits(r.PackagePct), math.Float64bits(r.CPUPct),
			math.Float64bits(r.TimePct), math.Float64bits(r.AccuracyPct))
	}
	return sb.String(), nil
}
