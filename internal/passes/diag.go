package passes

import (
	"fmt"

	"jepo/internal/minijava/ast"
)

// Severity classifies a diagnostic for the unified view.
type Severity int

const (
	// SeverityInfo marks advisory findings with no mechanical repair (the
	// short-circuit ordering rule, the extension rules, and instances of
	// mechanical rules whose preconditions for a safe rewrite do not hold).
	SeverityInfo Severity = iota
	// SeverityFixable marks findings that carry a Fix.
	SeverityFixable
)

func (s Severity) String() string {
	if s == SeverityFixable {
		return "fix"
	}
	return "info"
}

// Diagnostic is one positioned finding emitted by a pass. CanAuto-style
// questions are answered by Fix: a diagnostic is mechanically repairable
// exactly when Fix is non-nil.
type Diagnostic struct {
	File     string
	Class    string
	Method   string // empty for field-level findings
	Line     int
	Rule     Rule
	Detail   string // what was found, e.g. "field 'total' declared double"
	Severity Severity
	Fix      *Fix
}

// String renders the optimizer-view row (Fig. 5): class, line, suggestion.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s (%s)", d.Class, d.Line, d.Rule.Component(), d.Rule.Text(), d.Detail)
}

// Fix phases: statics hoisting runs first (it restructures whole method
// bodies), then field/parameter declaration rewrites (plain type surgery,
// no tree walk), then one cursor traversal per file applies every fix
// anchored at a node it reaches.
const (
	phaseHoist = iota
	phaseDecl
)

// A Fix is the mechanical repair attached to a diagnostic. Fixes are built by
// the match pass and replayed by ApplyFixes; they carry closures over the
// exact nodes the match saw, so applying never re-detects anything.
type Fix struct {
	rule Rule

	// Anchored fixes fire when the apply traversal's cursor reaches anchor;
	// apply reports how many changes it made and whether the traversal should
	// descend into the (possibly replaced) node.
	anchor ast.Node
	apply  func(ap *applier, c *ast.Cursor) (changes int, descend bool)

	// Direct fixes run in a numbered phase before the traversal.
	phase  int
	direct func(ap *applier) int

	// field is set on field-declaration fixes so the hoist pass can mirror
	// the field's type rewrite onto the local it introduces (the seed applied
	// declaration rules to hoisted locals the same way).
	field     *ast.Field
	fieldKind fieldFixKind
}

type fieldFixKind int

const (
	fieldFixNone fieldFixKind = iota
	fieldFixNarrow
	fieldFixWrapper
)

// Result summarizes an ApplyFixes run. The Changes count corresponds to the
// "Changes" column of the paper's Table IV.
type Result struct {
	Changes int
	ByRule  map[Rule]int
}

func (r *Result) add(rule Rule, n int) {
	r.Changes += n
	r.ByRule[rule] += n
}

// CountByRule tallies diagnostics per rule.
func CountByRule(diags []Diagnostic) map[Rule]int {
	m := make(map[Rule]int)
	for _, d := range diags {
		m[d.Rule]++
	}
	return m
}

// Filter keeps only diagnostics of the given rules (all when none given).
func Filter(diags []Diagnostic, rules ...Rule) []Diagnostic {
	if len(rules) == 0 {
		return diags
	}
	keep := map[Rule]bool{}
	for _, r := range rules {
		keep[r] = true
	}
	out := make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		if keep[d.Rule] {
			out = append(out, d)
		}
	}
	return out
}

// A Pass is one registered rule. Its hooks are invoked from the single shared
// traversal the engine runs per file; a pass sets only the hooks its rule
// needs. Hooks emit diagnostics (with fixes where a mechanical repair is
// safe) via the matcher.
type Pass struct {
	Rule Rule
	Doc  string
	// Decl inspects a declared type: a field, parameter, or local variable.
	Decl func(m *matcher, d *declSite)
	// Field inspects a class field declaration (modifiers, hoistability).
	Field func(m *matcher, f *ast.Field)
	// Block runs when the traversal enters a statement block, before the
	// block's statements are visited (cluster-shaped matches).
	Block func(m *matcher, b *ast.Block)
	// Node inspects one node of the expression/statement traversal.
	Node func(m *matcher, n ast.Node)
}

// Registry lists every pass in Table I order followed by the extension
// passes. The engine consults it at each traversal site.
var Registry = []*Pass{
	{Rule: RulePrimitiveTypes,
		Doc:  "narrow long/short/byte→int and double→float declarations and array allocations",
		Decl: (*matcher).primitiveDecl, Node: (*matcher).primitiveNode},
	{Rule: RuleScientificNotation,
		Doc:  "rewrite long plain-decimal literals to scientific notation",
		Node: (*matcher).sciNode},
	{Rule: RuleWrapperClasses,
		Doc:  "replace Long/Short/Byte wrappers with Integer",
		Decl: (*matcher).wrapperDecl},
	{Rule: RuleStaticKeyword,
		Doc:   "hoist single-method mutable static fields into a local",
		Field: (*matcher).staticField},
	{Rule: RuleModulusOperator,
		Doc:  "strength-reduce i % 2^k to i & (2^k-1) for counted loop variables",
		Node: (*matcher).modulusNode},
	{Rule: RuleTernaryOperator,
		Doc:  "expand statement-position ternaries to if-then-else",
		Node: (*matcher).ternaryNode},
	{Rule: RuleShortCircuit,
		Doc:  "advisory: order short-circuit chains most-common-first",
		Node: (*matcher).shortCircuitNode},
	{Rule: RuleStringConcat,
		Doc:   "convert string accumulation loops to StringBuilder",
		Block: (*matcher).concatBlock, Node: (*matcher).concatNode},
	{Rule: RuleStringComparison,
		Doc:  "replace compareTo(x) == 0 equality tests with equals(x)",
		Node: (*matcher).compareToNode},
	{Rule: RuleArraysCopy,
		Doc:  "replace manual copy loops with System.arraycopy",
		Node: (*matcher).arraysCopyNode},
	{Rule: RuleArrayTraversal,
		Doc:  "interchange column-major nested loops",
		Node: (*matcher).arrayTraversalNode},
	{Rule: RuleExceptionInLoop,
		Doc:  "advisory: exception handling inside a hot loop",
		Node: (*matcher).exceptionNode},
	{Rule: RuleObjectInLoop,
		Doc:  "advisory: object allocation inside a loop",
		Node: (*matcher).objectNode},
}
