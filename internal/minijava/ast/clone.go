package ast

// CloneFile returns a deep copy of a compilation unit. Every node is
// duplicated, including the interpreter's load-time annotation fields
// (Ident.RSlot/RKind/RIx, call-site SiteIx, Method.NSlots/CIx, LocalVar and
// Catch slots), so a clone of a pristine parse is itself pristine and a clone
// of a loaded file reproduces its resolution state exactly.
//
// The artifact engine depends on this: interp.Load and passes.ApplyFixes
// both mutate ASTs in place, so a cached master AST can only be shared by
// handing each consumer its own clone. Cloning reads the source tree without
// writing to it, so any number of goroutines may clone one master
// concurrently.
func CloneFile(f *File) *File {
	if f == nil {
		return nil
	}
	out := &File{Path: f.Path, Package: f.Package}
	if f.Imports != nil {
		out.Imports = append([]string(nil), f.Imports...)
	}
	if f.Classes != nil {
		out.Classes = make([]*Class, len(f.Classes))
		for i, c := range f.Classes {
			out.Classes[i] = cloneClass(c)
		}
	}
	return out
}

func cloneClass(c *Class) *Class {
	if c == nil {
		return nil
	}
	out := &Class{Pos: c.Pos, Mods: c.Mods, Name: c.Name, Extends: c.Extends}
	if c.Fields != nil {
		out.Fields = make([]*Field, len(c.Fields))
		for i, f := range c.Fields {
			out.Fields[i] = cloneField(f)
		}
	}
	if c.Methods != nil {
		out.Methods = make([]*Method, len(c.Methods))
		for i, m := range c.Methods {
			out.Methods[i] = cloneMethod(m)
		}
	}
	return out
}

func cloneField(f *Field) *Field {
	if f == nil {
		return nil
	}
	return &Field{Pos: f.Pos, Mods: f.Mods, Type: f.Type, Name: f.Name, Init: cloneExpr(f.Init)}
}

func cloneMethod(m *Method) *Method {
	if m == nil {
		return nil
	}
	out := &Method{
		Pos: m.Pos, Mods: m.Mods, Ret: m.Ret, Name: m.Name,
		IsCtor: m.IsCtor, NSlots: m.NSlots, CIx: m.CIx,
		Body: cloneBlock(m.Body),
	}
	if m.Params != nil {
		out.Params = append([]Param(nil), m.Params...)
	}
	if m.Throws != nil {
		out.Throws = append([]string(nil), m.Throws...)
	}
	return out
}

func cloneBlock(b *Block) *Block {
	if b == nil {
		return nil
	}
	return &Block{Pos: b.Pos, Stmts: cloneStmts(b.Stmts)}
}

func cloneStmts(ss []Stmt) []Stmt {
	if ss == nil {
		return nil
	}
	out := make([]Stmt, len(ss))
	for i, s := range ss {
		out[i] = cloneStmt(s)
	}
	return out
}

func cloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case nil:
		return nil
	case *Block:
		return cloneBlock(s)
	case *LocalVar:
		return &LocalVar{Pos: s.Pos, Final: s.Final, Type: s.Type, Name: s.Name,
			Init: cloneExpr(s.Init), Slot: s.Slot}
	case *ExprStmt:
		return &ExprStmt{Pos: s.Pos, X: cloneExpr(s.X)}
	case *If:
		return &If{Pos: s.Pos, Cond: cloneExpr(s.Cond), Then: cloneStmt(s.Then), Else: cloneStmt(s.Else)}
	case *While:
		return &While{Pos: s.Pos, Cond: cloneExpr(s.Cond), Body: cloneStmt(s.Body)}
	case *For:
		return &For{Pos: s.Pos, Init: cloneStmt(s.Init), Cond: cloneExpr(s.Cond),
			Post: cloneExprs(s.Post), Body: cloneStmt(s.Body)}
	case *Return:
		return &Return{Pos: s.Pos, X: cloneExpr(s.X)}
	case *Break:
		return &Break{Pos: s.Pos}
	case *Continue:
		return &Continue{Pos: s.Pos}
	case *Empty:
		return &Empty{Pos: s.Pos}
	case *DoWhile:
		return &DoWhile{Pos: s.Pos, Body: cloneStmt(s.Body), Cond: cloneExpr(s.Cond)}
	case *Switch:
		out := &Switch{Pos: s.Pos, Tag: cloneExpr(s.Tag)}
		if s.Cases != nil {
			out.Cases = make([]SwitchCase, len(s.Cases))
			for i, c := range s.Cases {
				out.Cases[i] = SwitchCase{Pos: c.Pos, Values: cloneExprs(c.Values), Stmts: cloneStmts(c.Stmts)}
			}
		}
		return out
	case *Throw:
		return &Throw{Pos: s.Pos, X: cloneExpr(s.X)}
	case *Try:
		out := &Try{Pos: s.Pos, Block: cloneBlock(s.Block), Finally: cloneBlock(s.Finally)}
		if s.Catches != nil {
			out.Catches = make([]Catch, len(s.Catches))
			for i, c := range s.Catches {
				out.Catches[i] = Catch{Pos: c.Pos, Type: c.Type, Name: c.Name,
					Block: cloneBlock(c.Block), Slot: c.Slot}
			}
		}
		return out
	}
	panic("ast: CloneFile: unknown statement type")
}

func cloneExprs(xs []Expr) []Expr {
	if xs == nil {
		return nil
	}
	out := make([]Expr, len(xs))
	for i, x := range xs {
		out[i] = cloneExpr(x)
	}
	return out
}

func cloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *Literal:
		c := *e
		return &c
	case *Ident:
		c := *e
		return &c
	case *This:
		return &This{Pos: e.Pos}
	case *Select:
		return &Select{Pos: e.Pos, X: cloneExpr(e.X), Name: e.Name, SiteIx: e.SiteIx}
	case *Index:
		return &Index{Pos: e.Pos, X: cloneExpr(e.X), I: cloneExpr(e.I)}
	case *Call:
		return &Call{Pos: e.Pos, Recv: cloneExpr(e.Recv), Name: e.Name,
			Args: cloneExprs(e.Args), SiteIx: e.SiteIx}
	case *New:
		return &New{Pos: e.Pos, Name: e.Name, Args: cloneExprs(e.Args), SiteIx: e.SiteIx}
	case *NewArray:
		return &NewArray{Pos: e.Pos, Elem: e.Elem, Lens: cloneExprs(e.Lens)}
	case *ArrayLit:
		return &ArrayLit{Pos: e.Pos, Elems: cloneExprs(e.Elems)}
	case *Unary:
		return &Unary{Pos: e.Pos, Op: e.Op, X: cloneExpr(e.X), Postfix: e.Postfix}
	case *Binary:
		return &Binary{Pos: e.Pos, Op: e.Op, X: cloneExpr(e.X), Y: cloneExpr(e.Y)}
	case *Assign:
		return &Assign{Pos: e.Pos, Op: e.Op, LHS: cloneExpr(e.LHS), RHS: cloneExpr(e.RHS)}
	case *Ternary:
		return &Ternary{Pos: e.Pos, Cond: cloneExpr(e.Cond), Then: cloneExpr(e.Then), Else: cloneExpr(e.Else)}
	case *Cast:
		return &Cast{Pos: e.Pos, Type: e.Type, X: cloneExpr(e.X)}
	case *InstanceOf:
		return &InstanceOf{Pos: e.Pos, X: cloneExpr(e.X), Name: e.Name}
	}
	panic("ast: CloneFile: unknown expression type")
}
