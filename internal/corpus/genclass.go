package corpus

import (
	"fmt"
	"strings"
)

// patternKind enumerates the Table I idioms the generator can seed into a
// class. Each pattern method yields (approximately) one auto-applicable
// refactoring change.
type patternKind int

const (
	patDoubleField patternKind = iota
	patLongLoop
	patStaticCounter
	patSciLiteral
	patTernary
	patCompareTo
	patModulus
	patManualCopy
	patColumnTraversal
	patConcatLoop
	patWrapperLong
	numPatterns
)

// genClass renders one library class shaped like a WEKA utility class:
// ~5 fields, ~11 methods with short doc comments, ~145 non-blank lines, a
// dependency edge to `next`, and nPatterns seeded inefficiencies starting at
// pattern kind `base`.
func genClass(r *rng, pkg, name, next string, base patternKind, nPatterns int) string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }

	w("package %s;", pkg)
	w("")
	w("/**")
	w(" * Support routines for the %s stage of the pipeline.", strings.ToLower(name))
	w(" * Generated corpus class; shaped like a weka.core utility.")
	w(" */")
	w("public class %s {", name)

	// Fields: mostly int/String (efficient) so field counts land near the
	// Table II attribute density without flooding the change counts.
	nFields := 5
	if r.intn(20) < 3 {
		nFields = 4
	}
	w("\tprivate int count;")
	w("\tprivate int limit = %d;", 8+r.intn(56))
	w("\tprivate String label = \"%s\";", strings.ToLower(name))
	w("\tprivate int[] buffer;")
	if nFields == 5 {
		w("\tprivate int stride = %d;", 1+r.intn(7))
	}
	w("")
	w("\t/** Creates the helper with an empty working buffer. */")
	w("\tpublic %s() {", name)
	w("\t\tthis.count = 0;")
	w("\t\tthis.buffer = new int[limit];")
	w("\t}")

	// 1 ctor + (methods−1) generated + 1 link method ≈ 11 per class.
	methods := 9 + r.intn(3)
	if methods < nPatterns+2 {
		methods = nPatterns + 2
	}
	pat := int(base)
	for m := 0; m < methods-1; m++ {
		w("")
		if m < nPatterns {
			writePattern(&b, r, patternKind(pat%int(numPatterns)), m)
			pat++
			continue
		}
		writeFiller(&b, r, m)
	}
	w("")
	writeLink(&b, r, next)
	w("}")
	return b.String()
}

func doc(b *strings.Builder, text string) {
	fmt.Fprintf(b, "\t/**\n\t * %s\n\t */\n", text)
}

// writePattern emits one method carrying exactly one Table I inefficiency.
func writePattern(b *strings.Builder, r *rng, kind patternKind, idx int) {
	w := func(format string, args ...any) { fmt.Fprintf(b, format+"\n", args...) }
	switch kind {
	case patDoubleField:
		doc(b, "Scales the input by the configured ratio.")
		w("\tint scaled%d(int x) {", idx)
		w("\t\tdouble ratio = 2.5;")
		w("\t\tint base = x * stride();")
		w("\t\treturn (int) (base * ratio);")
		w("\t}")
	case patLongLoop:
		doc(b, "Accumulates the arithmetic series up to n.")
		w("\tint total%d(int n) {", idx)
		w("\t\tlong total = 0L;")
		w("\t\tfor (int i = 0; i < n; i++) {")
		w("\t\t\ttotal = total + i;")
		w("\t\t}")
		w("\t\treturn (int) total;")
		w("\t}")
	case patStaticCounter:
		doc(b, "Bumps the shared hit counter for n events.")
		w("\tstatic int hits%d;", idx)
		w("\tint bump%d(int n) {", idx)
		w("\t\tfor (int i = 0; i < n; i++) {")
		w("\t\t\thits%d += i;", idx)
		w("\t\t}")
		w("\t\treturn hits%d;", idx)
		w("\t}")
	case patSciLiteral:
		doc(b, "Checks the value against the overflow guard threshold.")
		w("\tint check%d(int x) {", idx)
		w("\t\tif (x > 100000.0) {")
		w("\t\t\treturn 1;")
		w("\t\t}")
		w("\t\treturn 0;")
		w("\t}")
	case patTernary:
		doc(b, "Picks the larger of the two operands.")
		w("\tint pick%d(int a, int b) {", idx)
		w("\t\tint v = a > b ? a : b;")
		w("\t\treturn v + count;")
		w("\t}")
	case patCompareTo:
		doc(b, "Tests the two keys for equality.")
		w("\tint same%d(String a, String b) {", idx)
		w("\t\tif (a.compareTo(b) == 0) {")
		w("\t\t\treturn 1;")
		w("\t\t}")
		w("\t\treturn 0;")
		w("\t}")
	case patModulus:
		doc(b, "Folds indices into eight buckets.")
		w("\tint wrap%d(int n) {", idx)
		w("\t\tint s = 0;")
		w("\t\tfor (int i = 0; i < n; i++) {")
		w("\t\t\ts += i %% 8;")
		w("\t\t}")
		w("\t\treturn s;")
		w("\t}")
	case patManualCopy:
		doc(b, "Copies the first n cells of the source buffer.")
		w("\tint[] copy%d(int[] src, int n) {", idx)
		w("\t\tint[] dst = new int[n];")
		w("\t\tfor (int i = 0; i < n; i++) {")
		w("\t\t\tdst[i] = src[i];")
		w("\t\t}")
		w("\t\treturn dst;")
		w("\t}")
	case patColumnTraversal:
		doc(b, "Sums the matrix column by column.")
		w("\tint sweep%d(int[][] m, int n) {", idx)
		w("\t\tint s = 0;")
		w("\t\tfor (int j = 0; j < n; j++) {")
		w("\t\t\tfor (int i = 0; i < n; i++) {")
		w("\t\t\t\ts += m[i][j];")
		w("\t\t\t}")
		w("\t\t}")
		w("\t\treturn s;")
		w("\t}")
	case patConcatLoop:
		doc(b, "Builds the n-step progress marker string.")
		w("\tString join%d(int n) {", idx)
		w("\t\tString s = \"\";")
		w("\t\tfor (int i = 0; i < n; i++) {")
		w("\t\t\ts = s + \"x\";")
		w("\t\t}")
		w("\t\treturn s;")
		w("\t}")
	case patWrapperLong:
		doc(b, "Boxes the value for the legacy cache interface.")
		w("\tint unbox%d(int x) {", idx)
		w("\t\tLong v = Long.valueOf(x);")
		w("\t\treturn v.intValue();")
		w("\t}")
	}
}

// writeFiller emits a clean (suggestion-free) method.
func writeFiller(b *strings.Builder, r *rng, idx int) {
	w := func(format string, args ...any) { fmt.Fprintf(b, format+"\n", args...) }
	switch idx % 6 {
	case 0:
		doc(b, "Reports the configured stride, clamped to the limit.")
		w("\tint stride() {")
		w("\t\tint s = limit - count;")
		w("\t\tif (s < 1) {")
		w("\t\t\ts = 1;")
		w("\t\t}")
		w("\t\tif (s > 8) {")
		w("\t\t\ts = 8;")
		w("\t\t}")
		w("\t\treturn s;")
		w("\t}")
	case 1:
		doc(b, "Weighted scan of the working buffer.")
		w("\tpublic int probe() {")
		w("\t\tint acc = 0;")
		w("\t\tfor (int i = 0; i < buffer.length; i++) {")
		w("\t\t\tacc += buffer[i] * %d;", 1+r.intn(9))
		w("\t\t}")
		w("\t\tif (acc < 0) {")
		w("\t\t\tacc = -acc;")
		w("\t\t}")
		w("\t\treturn acc + count;")
		w("\t}")
	case 2:
		doc(b, "Clamps the value into the configured range.")
		w("\tint clamp%d(int v) {", idx)
		w("\t\tif (v < 0) {")
		w("\t\t\treturn 0;")
		w("\t\t}")
		w("\t\tif (v > limit) {")
		w("\t\t\treturn limit;")
		w("\t\t}")
		w("\t\treturn v;")
		w("\t}")
	case 3:
		doc(b, "Refills the working buffer with an arithmetic ramp.")
		w("\tvoid fill%d(int v) {", idx)
		w("\t\tint i = 0;")
		w("\t\twhile (i < buffer.length) {")
		w("\t\t\tbuffer[i] = v + i;")
		w("\t\t\ti++;")
		w("\t\t}")
		w("\t\tcount = count + buffer.length;")
		w("\t}")
	case 4:
		doc(b, "Tests the key against the configured label.")
		w("\tboolean matches%d(String key) {", idx)
		w("\t\tif (key.equals(label)) {")
		w("\t\t\treturn true;")
		w("\t\t}")
		w("\t\tif (key.isEmpty()) {")
		w("\t\t\treturn false;")
		w("\t\t}")
		w("\t\treturn key.length() == label.length();")
		w("\t}")
	default:
		doc(b, "Mixes the two operands into a spread measure.")
		w("\tint mix%d(int a, int b) {", idx)
		w("\t\tint hi = a * %d + b;", 2+r.intn(7))
		w("\t\tint lo = a - b * %d;", 1+r.intn(5))
		w("\t\tif (hi > lo) {")
		w("\t\t\treturn hi - lo;")
		w("\t\t}")
		w("\t\treturn lo - hi;")
		w("\t}")
	}
}

// writeLink emits the dependency edge to the next class in the chain. Every
// class carries one, which is what makes the per-classifier closures reach
// the full shared core.
func writeLink(b *strings.Builder, r *rng, next string) {
	w := func(format string, args ...any) { fmt.Fprintf(b, format+"\n", args...) }
	doc(b, "Delegates residual work to the downstream helper.")
	w("\tvoid link() {")
	w("\t\t%s peer = new %s();", next, next)
	w("\t\tint c = peer.probe();")
	w("\t\tif (c > limit) {")
	w("\t\t\tcount = c;")
	w("\t\t} else {")
	w("\t\t\tcount = count + %d;", 1+r.intn(4))
	w("\t\t}")
	w("\t}")
}

// genRootClass renders the classifier's root class, tying together the extras
// chain and the core library, with WEKA-style entry points.
func genRootClass(r *rng, pkg, name, firstDep, coreDep string) string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }
	w("package %s;", pkg)
	w("")
	w("/**")
	w(" * Class for constructing the %s model over a training set.", name)
	w(" */")
	w("public class %s {", name)
	w("\tprivate int built;")
	w("\tprivate String relation = \"airlines\";")
	w("")
	w("\t/** Builds the classifier from the given number of instances. */")
	w("\tpublic void buildClassifier(int instances) {")
	w("\t\t%s helper = new %s();", firstDep, firstDep)
	w("\t\t%s core = new %s();", coreDep, coreDep)
	w("\t\tint acc = helper.probe() + core.probe();")
	w("\t\tfor (int i = 0; i < instances; i++) {")
	w("\t\t\tacc += i;")
	w("\t\t}")
	w("\t\tbuilt = acc;")
	w("\t}")
	w("")
	w("\t/** Classifies a single instance by its feature vector. */")
	w("\tpublic int classifyInstance(int[] features) {")
	w("\t\tint score = built;")
	w("\t\tfor (int i = 0; i < features.length; i++) {")
	w("\t\t\tscore += features[i] * %d;", 1+r.intn(5))
	w("\t\t}")
	w("\t\tif (score > 0) {")
	w("\t\t\treturn 1;")
	w("\t\t}")
	w("\t\treturn 0;")
	w("\t}")
	w("")
	w("\t/** Returns the relation name this model was built for. */")
	w("\tpublic String getRelation() {")
	w("\t\treturn relation;")
	w("\t}")
	w("}")
	return b.String()
}
