package interp

import "jepo/internal/minijava/ast"

// This file implements the load-time resolution pass. It runs once at the
// end of Load and annotates the AST so the execution hot path can skip the
// per-node map lookups the dynamic semantics would otherwise require:
//
//   - every method gets a frame slot count (Method.NSlots), every local and
//     catch variable a numbered slot, and every identifier the slot of the
//     local that can shadow it (Ident.RSlot) plus a cached resolution for
//     the no-live-local case (Ident.RKind/RIx);
//   - every Call/New/Select node gets a site index (SiteIx) into the
//     program's site table, holding load-time resolved dispatch targets for
//     statically-known receivers, and doubling as the index of the
//     interpreter's per-instance monomorphic caches.
//
// The dialect is dynamically scoped per frame (a local exists from the
// moment its declaration statement executes) and method bodies execute
// against the receiver's dynamic class, so resolution must be conservative:
// whenever a subclass or an instance receiver could change what a name means
// at run time, the resolver falls back to ResDynamic and the interpreter
// keeps the original lookup ladder. The pass only changes how names are
// found, never what is found or what the meter charges — simulated energy is
// bit-identical to the unresolved interpreter (see the golden test in
// internal/tables).
//
// All annotations are deterministic functions of the AST and are fully
// overwritten on every Load, so re-loading the same (unmutated) AST yields
// identical annotations.

type resolver struct {
	p *Program

	// Program-wide conflict sets. A name in instField is an instance field
	// of at least one class; a name in staticName is a static field of at
	// least one class; multiStatic marks static names declared by more than
	// one class (so no single slot pointer is valid program-wide).
	instField   map[string]bool
	staticName  map[string]bool
	multiStatic map[string]bool

	statRefIx map[*staticSlot]int32
}

// rctx is the per-body resolution context: the declaring class, whether the
// body is a static context, and the name→slot map of the enclosing method
// (nil for field initializers, which execute in slotless frames).
type rctx struct {
	ci     *classInfo
	static bool
	slots  map[string]int32
}

// resolveProgram annotates every method body, constructor and field
// initializer of a loaded program.
func resolveProgram(p *Program) {
	r := &resolver{
		p:           p,
		instField:   map[string]bool{},
		staticName:  map[string]bool{},
		multiStatic: map[string]bool{},
		statRefIx:   map[*staticSlot]int32{},
	}
	for _, name := range p.order {
		ci := p.classes[name]
		for _, f := range ci.fields {
			r.instField[f.Name] = true
		}
		for _, sname := range ci.statOrd {
			if r.staticName[sname] {
				r.multiStatic[sname] = true
			}
			r.staticName[sname] = true
		}
	}
	for _, name := range p.order {
		ci := p.classes[name]
		for _, fd := range ci.Decl.Fields {
			if fd.Init == nil {
				continue
			}
			c := &rctx{ci: ci, static: fd.Mods.Has(ast.ModStatic)}
			r.expr(c, fd.Init)
		}
		for _, m := range ci.Decl.Methods {
			r.method(ci, m)
		}
	}
}

// method assigns frame slots for one method or constructor and annotates its
// body. Parameters take slots 0..len(Params)-1 positionally; every distinct
// local/catch name then gets one slot, assigned on first declaration in
// source order. Re-declarations of a name share the slot, which matches the
// map-frame behavior of one live binding per name.
func (r *resolver) method(ci *classInfo, m *ast.Method) {
	c := &rctx{
		ci:     ci,
		static: m.Mods.Has(ast.ModStatic) && !m.IsCtor,
		slots:  make(map[string]int32, len(m.Params)+4),
	}
	for i, p := range m.Params {
		c.slots[p.Name] = int32(i)
	}
	next := int32(len(m.Params))
	declare := func(name string) int32 {
		if s, ok := c.slots[name]; ok {
			return s
		}
		s := next
		c.slots[name] = s
		next++
		return s
	}
	if m.Body != nil {
		r.declStmt(declare, m.Body)
		m.NSlots = next
		r.stmt(c, m.Body)
	} else {
		m.NSlots = next
	}
}

// declStmt walks statements assigning slots to local and catch variable
// declarations. It runs before annotation so identifiers that execute before
// their declaration on a loop's first iteration still know their slot (the
// cell's live flag keeps them on the dynamic path until the declaration
// runs).
func (r *resolver) declStmt(declare func(string) int32, s ast.Stmt) {
	switch n := s.(type) {
	case *ast.Block:
		for _, st := range n.Stmts {
			r.declStmt(declare, st)
		}
	case *ast.LocalVar:
		n.Slot = declare(n.Name) + 1
	case *ast.If:
		r.declStmt(declare, n.Then)
		if n.Else != nil {
			r.declStmt(declare, n.Else)
		}
	case *ast.While:
		r.declStmt(declare, n.Body)
	case *ast.DoWhile:
		r.declStmt(declare, n.Body)
	case *ast.For:
		if n.Init != nil {
			r.declStmt(declare, n.Init)
		}
		r.declStmt(declare, n.Body)
	case *ast.Switch:
		for i := range n.Cases {
			for _, st := range n.Cases[i].Stmts {
				r.declStmt(declare, st)
			}
		}
	case *ast.Try:
		r.declStmt(declare, n.Block)
		for i := range n.Catches {
			cat := &n.Catches[i]
			cat.Slot = declare(cat.Name) + 1
			r.declStmt(declare, cat.Block)
		}
		if n.Finally != nil {
			r.declStmt(declare, n.Finally)
		}
	}
}

func (r *resolver) stmt(c *rctx, s ast.Stmt) {
	switch n := s.(type) {
	case *ast.Block:
		for _, st := range n.Stmts {
			r.stmt(c, st)
		}
	case *ast.LocalVar:
		if n.Init != nil {
			r.expr(c, n.Init)
		}
	case *ast.ExprStmt:
		r.expr(c, n.X)
	case *ast.If:
		r.expr(c, n.Cond)
		r.stmt(c, n.Then)
		if n.Else != nil {
			r.stmt(c, n.Else)
		}
	case *ast.While:
		r.expr(c, n.Cond)
		r.stmt(c, n.Body)
	case *ast.DoWhile:
		r.stmt(c, n.Body)
		r.expr(c, n.Cond)
	case *ast.For:
		if n.Init != nil {
			r.stmt(c, n.Init)
		}
		if n.Cond != nil {
			r.expr(c, n.Cond)
		}
		for _, p := range n.Post {
			r.expr(c, p)
		}
		r.stmt(c, n.Body)
	case *ast.Return:
		if n.X != nil {
			r.expr(c, n.X)
		}
	case *ast.Switch:
		r.expr(c, n.Tag)
		for i := range n.Cases {
			for _, v := range n.Cases[i].Values {
				r.expr(c, v)
			}
			for _, st := range n.Cases[i].Stmts {
				r.stmt(c, st)
			}
		}
	case *ast.Throw:
		r.expr(c, n.X)
	case *ast.Try:
		r.stmt(c, n.Block)
		for i := range n.Catches {
			r.stmt(c, n.Catches[i].Block)
		}
		if n.Finally != nil {
			r.stmt(c, n.Finally)
		}
	}
}

func (r *resolver) expr(c *rctx, e ast.Expr) {
	switch n := e.(type) {
	case *ast.Ident:
		r.ident(c, n)
	case *ast.Select:
		r.expr(c, n.X)
		r.selectSite(n)
	case *ast.Index:
		r.expr(c, n.X)
		r.expr(c, n.I)
	case *ast.Call:
		if n.Recv != nil {
			r.expr(c, n.Recv)
		}
		for _, a := range n.Args {
			r.expr(c, a)
		}
		r.callSite(n)
	case *ast.New:
		for _, a := range n.Args {
			r.expr(c, a)
		}
		r.newSite(n)
	case *ast.NewArray:
		for _, l := range n.Lens {
			r.expr(c, l)
		}
	case *ast.ArrayLit:
		for _, el := range n.Elems {
			r.expr(c, el)
		}
	case *ast.Unary:
		r.expr(c, n.X)
	case *ast.Binary:
		r.expr(c, n.X)
		r.expr(c, n.Y)
	case *ast.Assign:
		r.expr(c, n.LHS)
		r.expr(c, n.RHS)
	case *ast.Ternary:
		r.expr(c, n.Cond)
		r.expr(c, n.Then)
		r.expr(c, n.Else)
	case *ast.Cast:
		r.expr(c, n.X)
	case *ast.InstanceOf:
		r.expr(c, n.X)
	}
}

// ident caches what a bare name resolves to when no live local claims it,
// mirroring the runtime ladder local → instance field → static → class name.
// Any name whose meaning can shift with the dynamic receiver class stays
// ResDynamic.
func (r *resolver) ident(c *rctx, n *ast.Ident) {
	n.RSlot, n.RKind, n.RIx = 0, ast.ResNone, 0
	if c.slots != nil {
		if s, ok := c.slots[n.Name]; ok {
			n.RSlot = s + 1
		}
	}
	if ix, ok := c.ci.fieldIx[n.Name]; ok {
		if c.static {
			// A static method invoked through an instance receiver runs
			// with this != nil and would see the field; stay dynamic.
			n.RKind = ast.ResDynamic
			return
		}
		// Field slots are stable across subclasses (shadowing reuses the
		// slot), so the index is valid for any dynamic receiver class.
		n.RKind, n.RIx = ast.ResField, int32(ix)
		return
	}
	if r.instField[n.Name] {
		// Not a field here, but some class declares one by this name — a
		// subclass receiver could shadow the static/class meaning.
		n.RKind = ast.ResDynamic
		return
	}
	if slot := c.ci.findStatic(n.Name); slot != nil {
		// The runtime frame class is always this class or a subclass of
		// it, so the static is reachable there too. With a single
		// program-wide declaration the slot pointer itself is safe;
		// otherwise a subclass may shadow it and the per-frame-class flat
		// table decides.
		if r.multiStatic[n.Name] {
			n.RKind = ast.ResStatic
		} else {
			n.RKind, n.RIx = ast.ResStaticRef, r.statRef(slot)
		}
		return
	}
	if _, ok := r.p.classes[n.Name]; ok || isBuiltinClass(n.Name) {
		if r.staticName[n.Name] {
			// A subclass frame could resolve the name to its static first.
			n.RKind = ast.ResDynamic
			return
		}
		n.RKind = ast.ResClass
		return
	}
	n.RKind = ast.ResDynamic // unknown here; the dynamic path reports it
}

func (r *resolver) statRef(slot *staticSlot) int32 {
	if ix, ok := r.statRefIx[slot]; ok {
		return ix
	}
	ix := int32(len(r.p.statRefs))
	r.p.statRefs = append(r.p.statRefs, slot)
	r.statRefIx[slot] = ix
	return ix
}

// allocSite appends a fresh (lazy) site and returns its 1-based index.
func (r *resolver) allocSite() int32 {
	r.p.sites = append(r.p.sites, progSite{})
	return int32(len(r.p.sites))
}

// classRecv reports the class name a receiver expression is statically known
// to evaluate to: an identifier that always resolves to a class reference.
func (r *resolver) classRecv(e ast.Expr) (string, bool) {
	if id, ok := e.(*ast.Ident); ok && id.RKind == ast.ResClass && id.RSlot == 0 {
		return id.Name, true
	}
	return "", false
}

// callSite resolves static-dispatch call sites. Unqualified and
// instance-receiver calls stay lazy: the interpreter's per-instance
// monomorphic cache handles them, keyed by the dynamic class.
func (r *resolver) callSite(n *ast.Call) {
	n.SiteIx = r.allocSite()
	if n.Recv == nil {
		return
	}
	cls, ok := r.classRecv(n.Recv)
	if !ok {
		return
	}
	ps := &r.p.sites[n.SiteIx-1]
	if ci, ok := r.p.classes[cls]; ok {
		if m := ci.findMethod(n.Name, len(n.Args)); m != nil && m.Mods.Has(ast.ModStatic) {
			*ps = progSite{kind: siteStaticCall, cls: cls, ci: ci, m: m}
		}
		// Unknown or non-static methods keep the dynamic path so its
		// diagnostics (and user-class-shadows-builtin fallthrough) apply.
		return
	}
	if isBuiltinClass(cls) {
		*ps = progSite{kind: siteBuiltinStaticCall, cls: cls}
	}
}

// selectSite resolves static field selects with statically-known class
// receivers. Instance field selects stay lazy and use the per-instance
// monomorphic cache.
func (r *resolver) selectSite(n *ast.Select) {
	n.SiteIx = r.allocSite()
	cls, ok := r.classRecv(n.X)
	if !ok || (cls == "System" && n.Name == "out") {
		return
	}
	ps := &r.p.sites[n.SiteIx-1]
	if ci, ok := r.p.classes[cls]; ok {
		if slot := ci.findStatic(n.Name); slot != nil {
			*ps = progSite{kind: siteStaticSel, cls: cls, slot: slot}
		}
		return
	}
	if v, ok := builtinStaticField(cls, n.Name); ok {
		*ps = progSite{kind: siteBuiltinConstSel, cls: cls, v: v}
	}
}

// newSite resolves constructor targets: the class is syntactically fixed, so
// every New site resolves at load time.
func (r *resolver) newSite(n *ast.New) {
	n.SiteIx = r.allocSite()
	ps := &r.p.sites[n.SiteIx-1]
	if ci, ok := r.p.classes[n.Name]; ok {
		*ps = progSite{kind: siteNewUser, ci: ci, m: ci.findCtor(len(n.Args))}
	} else {
		*ps = progSite{kind: siteNewBuiltin}
	}
}
