// HTTP surface. Handler mounts the Service as a REST+SSE API; cmd/jepod
// serves it and jperf bench -serve drives it in-process through
// httptest. Response modes, chosen by the Accept header:
//
//   - text/event-stream: progress events stream as SSE "progress" events
//     while the request runs; the final payload arrives as one "result"
//     event (JSON) or an "error" event. This is the streaming form.
//   - anything else: the response body is the request's Output bytes,
//     verbatim (Content-Type: text/plain). Byte-diffing this body against
//     the corresponding CLI stdout is the serve gate's identity check.
//
// Routes:
//
//	POST   /v1/sessions                   -> {"id": "s1"}
//	GET    /v1/sessions                   -> {"sessions": [...]}
//	DELETE /v1/sessions/{id}
//	PUT    /v1/sessions/{id}/files/{path...}   (body = source text)
//	GET    /v1/sessions/{id}/files        -> {"files": [...]}
//	POST   /v1/sessions/{id}/analyze      (body = Request JSON, optional)
//	POST   /v1/sessions/{id}/optimize
//	POST   /v1/sessions/{id}/profile
//	POST   /v1/tables/{n}?seed=N
//	GET    /v1/stats
//
// A saturated admission gate maps to 503 Service Unavailable; a cancelled
// request maps to the client's disconnect (the handler just stops).
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"jepo/internal/sched"
)

// DefaultTableSeed matches the experiment seed the CLI tables default to.
const DefaultTableSeed = 20200518

// Handler mounts svc on a fresh mux.
func Handler(svc *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		s, err := svc.CreateSession()
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"id": s.ID()})
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"sessions": svc.Sessions()})
	})
	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		s, err := svc.Session(r.PathValue("id"))
		if err != nil {
			httpError(w, err)
			return
		}
		s.Close()
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("PUT /v1/sessions/{id}/files/{path...}", func(w http.ResponseWriter, r *http.Request) {
		s, err := svc.Session(r.PathValue("id"))
		if err != nil {
			httpError(w, err)
			return
		}
		src, err := io.ReadAll(r.Body)
		if err != nil {
			httpError(w, err)
			return
		}
		if err := s.PutFile(r.PathValue("path"), string(src)); err != nil {
			httpError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("DELETE /v1/sessions/{id}/files/{path...}", func(w http.ResponseWriter, r *http.Request) {
		s, err := svc.Session(r.PathValue("id"))
		if err != nil {
			httpError(w, err)
			return
		}
		if err := s.DeleteFile(r.PathValue("path")); err != nil {
			httpError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/sessions/{id}/files", func(w http.ResponseWriter, r *http.Request) {
		s, err := svc.Session(r.PathValue("id"))
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"files": s.Files()})
	})
	mux.HandleFunc("POST /v1/sessions/{id}/analyze", func(w http.ResponseWriter, r *http.Request) {
		sessionOp(svc, w, r, func(s *Session, req Request, onEvent Progress) (payload, error) {
			res, err := s.Analyze(r.Context(), req, onEvent)
			if err != nil {
				return payload{}, err
			}
			return payload{Output: res.Output, Extra: map[string]any{
				"diagnostics": len(res.Report.Diags),
				"accepted":    len(res.Report.Accepted()),
			}}, nil
		})
	})
	mux.HandleFunc("POST /v1/sessions/{id}/optimize", func(w http.ResponseWriter, r *http.Request) {
		sessionOp(svc, w, r, func(s *Session, req Request, onEvent Progress) (payload, error) {
			res, err := s.Optimize(r.Context(), req, onEvent)
			if err != nil {
				return payload{}, err
			}
			return payload{Output: res.Output, Extra: map[string]any{
				"changes": res.Changes,
				"files":   res.Files,
			}}, nil
		})
	})
	mux.HandleFunc("POST /v1/sessions/{id}/profile", func(w http.ResponseWriter, r *http.Request) {
		sessionOp(svc, w, r, func(s *Session, req Request, onEvent Progress) (payload, error) {
			res, err := s.Profile(r.Context(), req, onEvent)
			if err != nil {
				return payload{}, err
			}
			return payload{Output: res.Output, Extra: map[string]any{
				"result_txt": res.ResultTxt,
			}}, nil
		})
	})
	mux.HandleFunc("POST /v1/tables/{n}", func(w http.ResponseWriter, r *http.Request) {
		n, err := strconv.Atoi(r.PathValue("n"))
		if err != nil {
			httpError(w, fmt.Errorf("bad table number: %w", err))
			return
		}
		seed := uint64(DefaultTableSeed)
		if v := r.URL.Query().Get("seed"); v != "" {
			seed, err = strconv.ParseUint(v, 10, 64)
			if err != nil {
				httpError(w, fmt.Errorf("bad seed: %w", err))
				return
			}
		}
		req, err := decodeRequest(r)
		if err != nil {
			httpError(w, err)
			return
		}
		respond(w, r, func(onEvent Progress) (payload, error) {
			res, terr := svc.Table(r.Context(), n, seed, req, onEvent)
			if terr != nil {
				return payload{}, terr
			}
			return payload{Output: res.Output}, nil
		})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		gs := svc.GateStats()
		cs := svc.Store().Stats()
		writeJSON(w, http.StatusOK, map[string]any{
			"gate": map[string]any{
				"admitted": gs.Admitted,
				"rejected": gs.Rejected,
				"waited":   gs.Waited,
				"in_use":   gs.InUse,
				"queued":   gs.Queued,
			},
			"cache":    cs.String(),
			"sessions": len(svc.Sessions()),
		})
	})
	return mux
}

// payload is one operation's response: the determinism-pinned Output plus
// structured extras for JSON/SSE clients.
type payload struct {
	Output string
	Extra  map[string]any
}

// sessionOp resolves the session, decodes the request body, and responds in
// the negotiated mode.
func sessionOp(svc *Service, w http.ResponseWriter, r *http.Request, op func(*Session, Request, Progress) (payload, error)) {
	s, err := svc.Session(r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	req, err := decodeRequest(r)
	if err != nil {
		httpError(w, err)
		return
	}
	respond(w, r, func(onEvent Progress) (payload, error) {
		return op(s, req, onEvent)
	})
}

// decodeRequest parses the optional JSON body into a Request.
func decodeRequest(r *http.Request) (Request, error) {
	var req Request
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return req, err
	}
	if len(body) == 0 {
		return req, nil
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return req, fmt.Errorf("bad request body: %w", err)
	}
	return req, nil
}

// respond runs op in the negotiated response mode: SSE when the client
// accepts text/event-stream, raw output bytes otherwise.
func respond(w http.ResponseWriter, r *http.Request, op func(Progress) (payload, error)) {
	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		respondSSE(w, op)
		return
	}
	p, err := op(nil)
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, p.Output)
}

// respondSSE streams progress events while op runs, then the result.
func respondSSE(w http.ResponseWriter, op func(Progress) (payload, error)) {
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	send := func(event string, data any) {
		b, err := json.Marshal(data)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
		if flusher != nil {
			flusher.Flush()
		}
	}
	p, err := op(func(ev Event) { send("progress", ev) })
	if err != nil {
		send("error", map[string]string{"error": err.Error()})
		return
	}
	body := map[string]any{"output": p.Output}
	for k, v := range p.Extra {
		body[k] = v
	}
	send("result", body)
}

// httpError maps service errors to status codes.
func httpError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNoSession):
		status = http.StatusNotFound
	case errors.Is(err, sched.ErrSaturated):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrClosed):
		status = http.StatusGone
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	w.Write(b)
	w.Write([]byte("\n"))
}
