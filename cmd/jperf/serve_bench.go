// The serve benchmark (jperf bench -serve) measures the session daemon
// surface end to end: an in-process jepod (internal/service behind a real
// HTTP listener) handling analyze requests from 1, 4 and 8 concurrent
// sessions, cold store vs warm. Each session holds its own distinct program,
// so the cold round builds every session's artifacts and the warm round is
// served from the shared content-addressed store.
//
// Determinism is asserted inside the bench: every HTTP response a session
// receives — cold or warm, under any concurrency — must be byte-identical
// to the service's direct rendering for that session, or the bench fails.
// Concurrency and caching are cost knobs; a byte drift is a correctness bug.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"jepo/internal/service"
)

// servePoint is one cache mode's measurement at one concurrency level.
type servePoint struct {
	Mode      string  `json:"mode"` // cold or warm
	Seconds   float64 `json:"seconds"`
	ReqPerSec float64 `json:"req_per_sec"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	// BitIdentical reports the in-bench identity check: every response in
	// this round matched the service's direct rendering byte for byte.
	BitIdentical bool `json:"bit_identical"`
}

// serveLevel is one concurrency level's cold/warm pair.
type serveLevel struct {
	Sessions           int          `json:"sessions"`
	RequestsPerSession int          `json:"requests_per_session"`
	WarmSpeedup        float64      `json:"warm_speedup_vs_cold"`
	Points             []servePoint `json:"points"`
}

// serveBenchReport is the BENCH_serve.json document.
type serveBenchReport struct {
	GeneratedAt string       `json:"generated_at"`
	GoVersion   string       `json:"go_version"`
	NumCPU      int          `json:"num_cpu"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Note        string       `json:"note"`
	Levels      []serveLevel `json:"levels"`
}

var serveBenchSessions = []int{1, 4, 8}

const serveBenchRequests = 6

// serveBenchSrc builds session i's program: same shape, distinct constants,
// so sessions do not share cache keys and the cold round does real work.
func serveBenchSrc(i int) string {
	return fmt.Sprintf(`class Work {
	public static void main(String[] args) {
		long total = 0;
		for (int i = 0; i < %d; i++) {
			total = total + i %% 8;
		}
		System.out.println(total);
	}
}`, 2000+97*i)
}

// runServeBench measures every concurrency level cold and warm and writes
// the report. Any response diverging from the service's direct rendering
// aborts the bench.
func runServeBench(ctx context.Context, out string) error {
	report := serveBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Note: "an in-process jepod handling analyze requests over HTTP; cold builds each session's " +
			"artifacts, warm serves from the shared store; every response is asserted byte-identical " +
			"to the service's direct rendering",
	}
	for _, n := range serveBenchSessions {
		lvl, err := serveBenchLevel(ctx, n)
		if err != nil {
			return fmt.Errorf("sessions=%d: %w", n, err)
		}
		report.Levels = append(report.Levels, lvl)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d levels)\n", out, len(report.Levels))
	return nil
}

// serveBenchLevel stands up a fresh daemon, opens n sessions with distinct
// programs, and drives a cold round then a warm round of analyze requests,
// n sessions in flight at once.
func serveBenchLevel(ctx context.Context, n int) (serveLevel, error) {
	svc := service.New(service.Config{Slots: n, MaxQueue: n * serveBenchRequests})
	defer svc.Close()
	ts := httptest.NewServer(service.Handler(svc))
	defer ts.Close()

	ids := make([]string, n)
	for i := range ids {
		id, err := serveBenchOpenSession(ctx, ts.URL, serveBenchSrc(i))
		if err != nil {
			return serveLevel{}, err
		}
		ids[i] = id
	}

	lvl := serveLevel{Sessions: n, RequestsPerSession: serveBenchRequests}
	bodies := make([][]string, n)
	var seconds [2]float64
	for mi, mode := range []string{"cold", "warm"} {
		lats := make([][]time.Duration, n)
		var wg sync.WaitGroup
		errs := make([]error, n)
		t0 := time.Now()
		for i := range ids {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for k := 0; k < serveBenchRequests; k++ {
					r0 := time.Now()
					body, err := serveBenchPost(ctx, ts.URL+"/v1/sessions/"+ids[i]+"/analyze", "")
					if err != nil {
						errs[i] = err
						return
					}
					lats[i] = append(lats[i], time.Since(r0))
					bodies[i] = append(bodies[i], body)
				}
			}(i)
		}
		wg.Wait()
		seconds[mi] = time.Since(t0).Seconds()
		for _, err := range errs {
			if err != nil {
				return serveLevel{}, err
			}
		}
		var all []time.Duration
		for _, l := range lats {
			all = append(all, l...)
		}
		pt := servePoint{
			Mode:      mode,
			Seconds:   seconds[mi],
			ReqPerSec: float64(n*serveBenchRequests) / seconds[mi],
			P50Ms:     percentileMs(all, 0.50),
			P99Ms:     percentileMs(all, 0.99),
		}
		lvl.Points = append(lvl.Points, pt)
		fmt.Printf("sessions=%d %-5s %8.2fs %8.1f req/s  p50 %6.1fms  p99 %6.1fms\n",
			n, mode, pt.Seconds, pt.ReqPerSec, pt.P50Ms, pt.P99Ms)
	}
	lvl.WarmSpeedup = seconds[0] / seconds[1]

	// Identity check, after both rounds so it cannot pre-warm the store:
	// every response each session received equals the service's direct
	// rendering for that session's files.
	for i, id := range ids {
		s, err := svc.Session(id)
		if err != nil {
			return serveLevel{}, err
		}
		direct, err := s.Analyze(ctx, service.Request{}, nil)
		if err != nil {
			return serveLevel{}, err
		}
		for _, body := range bodies[i] {
			if body != direct.Output {
				return serveLevel{}, fmt.Errorf("session %s: HTTP response is NOT byte-identical to the direct rendering", id)
			}
		}
	}
	for i := range lvl.Points {
		lvl.Points[i].BitIdentical = true
	}
	return lvl, nil
}

func serveBenchOpenSession(ctx context.Context, base, src string) (string, error) {
	body, err := serveBenchDo(ctx, "POST", base+"/v1/sessions", "", http.StatusCreated)
	if err != nil {
		return "", err
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(body), &created); err != nil {
		return "", err
	}
	if _, err := serveBenchDo(ctx, "PUT", base+"/v1/sessions/"+created.ID+"/files/Work.java", src, http.StatusNoContent); err != nil {
		return "", err
	}
	return created.ID, nil
}

func serveBenchPost(ctx context.Context, url, body string) (string, error) {
	return serveBenchDo(ctx, "POST", url, body, http.StatusOK)
}

func serveBenchDo(ctx context.Context, method, url, body string, want int) (string, error) {
	req, err := http.NewRequestWithContext(ctx, method, url, strings.NewReader(body))
	if err != nil {
		return "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return "", err
	}
	if resp.StatusCode != want {
		return "", fmt.Errorf("%s %s: %d %s", method, url, resp.StatusCode, strings.TrimSpace(string(b)))
	}
	return string(b), nil
}

// percentileMs returns the q-quantile of the latencies in milliseconds.
func percentileMs(lats []time.Duration, q float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}
