package rapl

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jepo/internal/energy"
)

// noBackoff replaces the retry sleep with a call counter.
func noBackoff(calls *int) ResilientOption {
	return WithBackoff(func(int) { *calls++ })
}

func TestResilientPassthroughWhenClean(t *testing.T) {
	m := newTestMeter()
	direct := NewSimSource(m)
	r := NewResilient(NewSimSource(m))
	direct.Snapshot()
	r.Snapshot()
	m.Step(energy.OpModInt, 500_000)
	want, _ := direct.Snapshot()
	got, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got != want || got.Core <= 0 {
		t.Errorf("resilient snapshot %+v, direct %+v — must be identical with no faults", got, want)
	}
	h := r.Health()
	if h.Reads != 2 || h.Degraded() {
		t.Errorf("clean run health = %s", h)
	}
}

func TestResilientRetriesTransient(t *testing.T) {
	m := newTestMeter()
	src := NewFaultySource(NewSimSource(m), Script{1: FaultTransient})
	backoffs := 0
	r := NewResilient(src, WithRetries(2), noBackoff(&backoffs))
	if _, err := r.Snapshot(); err != nil {
		t.Fatal(err)
	}
	m.Step(energy.OpModInt, 500_000)
	s1, err := r.Snapshot() // injector read 1 fails, retry (read 2) succeeds
	if err != nil {
		t.Fatalf("transient fault not absorbed: %v", err)
	}
	if s1.Core <= 0 {
		t.Errorf("retried read lost the energy: %+v", s1)
	}
	h := r.Health()
	if h.Retries != 1 || backoffs != 1 {
		t.Errorf("retries = %d, backoffs = %d, want 1 each (health %s)", h.Retries, backoffs, h)
	}
}

func TestResilientInterpolatesSingleMiss(t *testing.T) {
	m := newTestMeter()
	// Retries exhausted on caller read 1: injector reads 1 and 2 both fail.
	src := NewFaultySource(NewSimSource(m), Script{1: FaultTransient, 2: FaultTransient})
	backoffs := 0
	r := NewResilient(src, WithRetries(1), noBackoff(&backoffs))
	s0, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	m.Step(energy.OpModInt, 500_000)
	s1, err := r.Snapshot() // miss: served from last-known-good
	if err != nil {
		t.Fatalf("single miss must interpolate, got %v", err)
	}
	if s1 != s0 {
		t.Errorf("interpolated read %+v, want last-known-good %+v", s1, s0)
	}
	s2, err := r.Snapshot() // recovers; the gap's energy lands here
	if err != nil {
		t.Fatal(err)
	}
	if s2.Core <= s1.Core {
		t.Errorf("recovery read %+v did not catch up past %+v", s2, s1)
	}
	h := r.Health()
	if h.Interpolated != 1 || h.Fallbacks != 0 {
		t.Errorf("health = %s, want exactly 1 interpolation", h)
	}
}

func TestResilientFallsBackAndRebases(t *testing.T) {
	m := newTestMeter()
	primary := NewFaultySource(NewSimSource(m), Script{2: FaultPermanent})
	fallback := NewSimSource(m)
	backoffs := 0
	r := NewResilient(primary, WithFallback(fallback), WithRetries(0), WithMaxMisses(0), noBackoff(&backoffs))

	if _, err := r.Snapshot(); err != nil { // read 0: primary
		t.Fatal(err)
	}
	m.Step(energy.OpModInt, 1_000_000)
	s1, err := r.Snapshot() // read 1: primary
	if err != nil {
		t.Fatal(err)
	}
	m.Step(energy.OpModInt, 1_000_000)
	s2, err := r.Snapshot() // read 2: primary dies → switch, rebased to last good
	if err != nil {
		t.Fatalf("fallback switch must absorb the death: %v", err)
	}
	if s2 != s1 {
		t.Errorf("switch read %+v, want rebase onto last good %+v", s2, s1)
	}
	if !r.OnFallback() {
		t.Error("wrapper must report fallback mode")
	}
	m.Step(energy.OpModInt, 1_000_000)
	s3, err := r.Snapshot() // read 3: fallback, rebased
	if err != nil {
		t.Fatal(err)
	}
	d := s3.Sub(s2)
	if d.Core <= 0 {
		t.Errorf("fallback reads must keep accumulating: delta %+v", d)
	}
	// The fallback delta must match the real energy spent since the switch.
	wantCore := 0.172 // 1M OpModInt steps ≈ 172 mJ core
	if math.Abs(float64(d.Core)-wantCore) > 2.0/65536 {
		t.Errorf("fallback core delta = %v, want ≈%g", d.Core, wantCore)
	}
	h := r.Health()
	if h.Discontinuities != 1 {
		t.Errorf("discontinuities = %d, want 1 (health %s)", h.Discontinuities, h)
	}
	if h.Fallbacks < 2 {
		t.Errorf("fallbacks = %d, want ≥ 2", h.Fallbacks)
	}
	// Monotonic through the whole degraded sequence.
	for _, pair := range [][2]Snapshot{{s1, s2}, {s2, s3}} {
		if pair[1].Package < pair[0].Package || pair[1].Core < pair[0].Core {
			t.Errorf("energy went backwards: %+v → %+v", pair[0], pair[1])
		}
	}
}

func TestResilientNoFallbackEventuallyFails(t *testing.T) {
	m := newTestMeter()
	src := NewFaultySource(NewSimSource(m), Script{1: FaultPermanent})
	r := NewResilient(src, WithRetries(0), WithMaxMisses(1), noBackoff(new(int)))
	if _, err := r.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Snapshot(); err != nil { // miss 1: interpolated
		t.Fatalf("first miss must interpolate: %v", err)
	}
	if _, err := r.Snapshot(); err == nil { // miss 2: no fallback → error
		t.Fatal("second consecutive miss with no fallback must fail")
	}
}

func TestHealthAddStringDegraded(t *testing.T) {
	a := Health{Reads: 2, Retries: 1}
	b := Health{Reads: 3, Quarantined: 1, Discontinuities: 1}
	sum := a.Add(b)
	if sum.Reads != 5 || sum.Retries != 1 || sum.Quarantined != 1 || sum.Discontinuities != 1 {
		t.Errorf("Add wrong: %+v", sum)
	}
	if (Health{Reads: 10}).Degraded() {
		t.Error("reads alone are not degradation")
	}
	if !sum.Degraded() {
		t.Error("retries/quarantines are degradation")
	}
	s := sum.String()
	for _, want := range []string{"reads=5", "retries=1", "quarantined=1", "discontinuities=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("health string %q missing %q", s, want)
		}
	}
}

// --- hardened powercap: wrap-reset branches, quarantine, disappearing zones ---

// TestSysfsBackwardsWithoutRangeSkipsDelta covers the counter-reset branch:
// with max_energy_range_uj absent, a backwards jump must not re-accumulate
// the counter value (double-counting on stale reads); the delta is skipped
// and recorded as a reset. The known-range wrap branch is covered by
// TestSysfsUnwrapsAgainstMaxRange.
func TestSysfsBackwardsWithoutRangeSkipsDelta(t *testing.T) {
	root := t.TempDir()
	pkg := writeZone(t, root, "intel-rapl:0", "package-0", 999_000, 0) // no range file
	s, err := NewSysfs(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Counter goes backwards: reset or stale duplicate, either way the
	// accumulated energy must not jump by the raw value.
	os.WriteFile(filepath.Join(pkg, "energy_uj"), []byte("500\n"), 0o644)
	s1, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if s1.Package != 0 {
		t.Errorf("backwards jump accumulated %v µJ, want 0 (delta skipped)", s1.Package.Microjoules())
	}
	// The zone resyncs from the new value and keeps counting.
	os.WriteFile(filepath.Join(pkg, "energy_uj"), []byte("1500\n"), 0o644)
	s2, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s2.Package.Microjoules()-1000) > 1e-6 {
		t.Errorf("post-reset delta = %v µJ, want 1000", s2.Package.Microjoules())
	}
	if h := s.Health(); h.Resets != 1 {
		t.Errorf("health resets = %d, want 1 (health %s)", h.Resets, h)
	}
}

// TestSysfsSurvivesDisappearingZone exercises zone loss mid-run: a sub-zone
// whose files vanish between reads contributes its frozen accumulation, is
// quarantined after the threshold, and the snapshot keeps succeeding from
// the surviving zones.
func TestSysfsSurvivesDisappearingZone(t *testing.T) {
	root := t.TempDir()
	pkg := writeZone(t, root, "intel-rapl:0", "package-0", 1_000_000, 0)
	core := writeZone(t, root, "intel-rapl:0:0", "core", 400_000, 0)
	s, err := NewSysfs(root)
	if err != nil {
		t.Fatal(err)
	}
	s.QuarantineAfter = 2
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Both zones advance once, so the core zone has accumulated energy to
	// freeze when it disappears.
	os.WriteFile(filepath.Join(core, "energy_uj"), []byte("500000\n"), 0o644)
	os.WriteFile(filepath.Join(pkg, "energy_uj"), []byte("1050000\n"), 0o644)
	s1, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s1.Core.Microjoules()-100_000) > 1e-6 || math.Abs(s1.Package.Microjoules()-50_000) > 1e-6 {
		t.Fatalf("pre-loss accumulation wrong: %+v", s1)
	}

	// The core zone disappears (hotplug); the package keeps advancing.
	if err := os.RemoveAll(core); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		os.WriteFile(filepath.Join(pkg, "energy_uj"), []byte(itoa(1_050_000+uint64(i)*100_000)), 0o644)
		snap, err := s.Snapshot()
		if err != nil {
			t.Fatalf("snapshot %d after zone loss: %v", i, err)
		}
		if math.Abs(snap.Core.Microjoules()-100_000) > 1e-6 {
			t.Errorf("snapshot %d: core = %v µJ, want frozen 100000", i, snap.Core.Microjoules())
		}
		wantPkg := float64(50_000 + i*100_000)
		if math.Abs(snap.Package.Microjoules()-wantPkg) > 1e-6 {
			t.Errorf("snapshot %d: package = %v µJ, want %v", i, snap.Package.Microjoules(), wantPkg)
		}
	}
	h := s.Health()
	if h.Quarantined != 1 {
		t.Errorf("quarantined = %d, want 1 (health %s)", h.Quarantined, h)
	}
	if h.Interpolated != 2 {
		t.Errorf("interpolated = %d, want 2 reads served frozen before quarantine", h.Interpolated)
	}
}

// TestSysfsDiesWhenAllPackageZonesGone: once every package zone is
// quarantined the source errors, which is the resilient wrapper's signal to
// fall back to the simulator.
func TestSysfsDiesWhenAllPackageZonesGone(t *testing.T) {
	root := t.TempDir()
	writeZone(t, root, "intel-rapl:0", "package-0", 1_000_000, 0)
	s, err := NewSysfs(root)
	if err != nil {
		t.Fatal(err)
	}
	s.QuarantineAfter = 1
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(filepath.Join(root, "intel-rapl:0")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Snapshot(); err == nil {
		t.Fatal("losing the only package zone must kill the source")
	}

	// End to end: a resilient wrapper over a dying sysfs tree falls back to
	// the simulator and keeps serving monotonic snapshots.
	root2 := t.TempDir()
	writeZone(t, root2, "intel-rapl:0", "package-0", 2_000_000, 0)
	sys, err := NewSysfs(root2)
	if err != nil {
		t.Fatal(err)
	}
	sys.QuarantineAfter = 1
	m := newTestMeter()
	r := NewResilient(sys, WithFallback(NewSimSource(m)), WithRetries(0), WithMaxMisses(0), noBackoff(new(int)))
	prev, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(filepath.Join(root2, "intel-rapl:0")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		m.Step(energy.OpModInt, 200_000)
		snap, err := r.Snapshot()
		if err != nil {
			t.Fatalf("read %d after sysfs death: %v", i, err)
		}
		if snap.Package < prev.Package {
			t.Errorf("read %d went backwards: %+v < %+v", i, snap, prev)
		}
		prev = snap
	}
	h := r.Health()
	if h.Discontinuities != 1 || h.Fallbacks == 0 || h.Quarantined != 1 {
		t.Errorf("health after sysfs death = %s, want 1 discontinuity, fallbacks, 1 quarantine", h)
	}
}
