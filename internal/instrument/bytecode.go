package instrument

import (
	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/bytecode"
)

// BytecodeBody recognises the AST-level probe pattern injectMethod wraps
// around a body and returns the original inner block together with the probe
// label. The bytecode compiler uses it to lower the *uninstrumented* body and
// splice probe opcodes instead of executing the JEPO.enter/exit scaffolding —
// the Javassist-style bytecode mode of this package.
func BytecodeBody(m *ast.Method) (*ast.Block, string, bool) {
	if !IsInstrumented(m) {
		return nil, "", false
	}
	call := m.Body.Stmts[0].(*ast.ExprStmt).X.(*ast.Call)
	if len(call.Args) != 1 {
		return nil, "", false
	}
	lit, ok := call.Args[0].(*ast.Literal)
	if !ok || lit.Kind != ast.LitString {
		return nil, "", false
	}
	tr := m.Body.Stmts[1].(*ast.Try)
	if len(tr.Catches) != 0 {
		return nil, "", false // not the plain probe pattern; stay on the walker
	}
	return tr.Block, lit.S, true
}

// InjectBytecode splices PROBE_ENTER/PROBE_EXIT opcodes into a compiled
// function under the given label — the bytecode-level counterpart of Inject.
func InjectBytecode(fn *bytecode.Func, label string) {
	bytecode.InjectProbes(fn, label)
}
