// Package ast defines the abstract syntax tree for the mini-Java dialect,
// along with a visitor used by the suggestion engine and a printer used by
// the refactoring engine to re-emit transformed source.
package ast

import "jepo/internal/minijava/token"

// BasicKind classifies a type.
type BasicKind int

// Type kinds. ClassType covers String, StringBuilder, wrappers, user classes
// and exception classes alike; the interpreter resolves the name.
const (
	Void BasicKind = iota
	Int
	Long
	Short
	Byte
	Char
	Float
	Double
	Boolean
	ClassType
)

var basicNames = [...]string{
	Void: "void", Int: "int", Long: "long", Short: "short", Byte: "byte",
	Char: "char", Float: "float", Double: "double", Boolean: "boolean",
	ClassType: "class",
}

// String names the kind.
func (k BasicKind) String() string {
	if int(k) < len(basicNames) {
		return basicNames[k]
	}
	return "?"
}

// IsNumeric reports whether the kind is a numeric primitive.
func (k BasicKind) IsNumeric() bool {
	switch k {
	case Int, Long, Short, Byte, Char, Float, Double:
		return true
	}
	return false
}

// Type is a (possibly array) type reference.
type Type struct {
	Kind BasicKind
	Name string // class name when Kind == ClassType
	Dims int    // array dimensions
}

// String renders Java type syntax.
func (t Type) String() string {
	s := t.Kind.String()
	if t.Kind == ClassType {
		s = t.Name
	}
	for i := 0; i < t.Dims; i++ {
		s += "[]"
	}
	return s
}

// Elem returns the element type of an array type.
func (t Type) Elem() Type {
	if t.Dims == 0 {
		return t
	}
	e := t
	e.Dims--
	return e
}

// IsString reports whether the type is java.lang.String.
func (t Type) IsString() bool { return t.Kind == ClassType && t.Name == "String" && t.Dims == 0 }

// Modifiers is a bit set of declaration modifiers.
type Modifiers uint8

// Modifier bits.
const (
	ModPublic Modifiers = 1 << iota
	ModPrivate
	ModProtected
	ModStatic
	ModFinal
)

// Has reports whether all bits in m2 are set.
func (m Modifiers) Has(m2 Modifiers) bool { return m&m2 == m2 }

// String renders the modifiers in canonical order.
func (m Modifiers) String() string {
	s := ""
	app := func(bit Modifiers, word string) {
		if m.Has(bit) {
			if s != "" {
				s += " "
			}
			s += word
		}
	}
	app(ModPublic, "public")
	app(ModPrivate, "private")
	app(ModProtected, "protected")
	app(ModStatic, "static")
	app(ModFinal, "final")
	return s
}

// File is one compilation unit.
type File struct {
	Path    string // origin path (used in suggestions and metrics)
	Package string
	Imports []string
	Classes []*Class
}

// Class is a class declaration.
type Class struct {
	Pos     token.Pos
	Mods    Modifiers
	Name    string
	Extends string // empty if none
	Fields  []*Field
	Methods []*Method
}

// Field is a field declaration.
type Field struct {
	Pos  token.Pos
	Mods Modifiers
	Type Type
	Name string
	Init Expr // may be nil
}

// Param is a method parameter.
type Param struct {
	Type Type
	Name string
}

// Method is a method or constructor declaration.
type Method struct {
	Pos    token.Pos
	Mods   Modifiers
	Ret    Type
	Name   string
	Params []Param
	Throws []string
	Body   *Block // nil for abstract-like declarations (not produced)
	IsCtor bool

	// NSlots is the frame slot count computed by the interpreter's load-time
	// resolver: parameters first, then every distinct local/catch name.
	NSlots int32

	// CIx is 1 + the method's index into the loaded program's compiled
	// function table (0 = not compiled; the tree-walker runs it). Like
	// NSlots it is a load-time annotation and deterministic across repeated
	// loads of the same AST.
	CIx int32
}

// Node is any AST node carrying a position.
type Node interface{ NodePos() token.Pos }

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// --- statements ---

// Block is `{ stmts }`.
type Block struct {
	Pos   token.Pos
	Stmts []Stmt
}

// LocalVar is a local variable declaration, one declarator per node.
type LocalVar struct {
	Pos   token.Pos
	Final bool
	Type  Type
	Name  string
	Init  Expr // may be nil

	// Slot is 1 + the frame slot assigned by the interpreter's load-time
	// resolver (0 = unresolved).
	Slot int32
}

// ExprStmt wraps an expression used as a statement.
type ExprStmt struct {
	Pos token.Pos
	X   Expr
}

// If is if/else.
type If struct {
	Pos  token.Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// While is a while loop.
type While struct {
	Pos  token.Pos
	Cond Expr
	Body Stmt
}

// For is a C-style for loop.
type For struct {
	Pos  token.Pos
	Init Stmt // LocalVar or ExprStmt or nil
	Cond Expr // may be nil
	Post []Expr
	Body Stmt
}

// Return is a return statement.
type Return struct {
	Pos token.Pos
	X   Expr // may be nil
}

// Break / Continue / Empty.
type Break struct{ Pos token.Pos }
type Continue struct{ Pos token.Pos }
type Empty struct{ Pos token.Pos }

// DoWhile is a do { } while (cond); loop.
type DoWhile struct {
	Pos  token.Pos
	Body Stmt
	Cond Expr
}

// SwitchCase is one `case v0, v1:` (or `default:` when Values is empty) arm
// with its statements; execution falls through to the next arm unless the
// statements end the arm (break/return/throw/continue).
type SwitchCase struct {
	Pos    token.Pos
	Values []Expr // empty = default
	Stmts  []Stmt
}

// Switch is a switch over an int/char/String expression.
type Switch struct {
	Pos   token.Pos
	Tag   Expr
	Cases []SwitchCase
}

// Throw throws an exception value.
type Throw struct {
	Pos token.Pos
	X   Expr
}

// Catch is one catch clause.
type Catch struct {
	Pos   token.Pos
	Type  string // exception class name
	Name  string
	Block *Block

	// Slot is 1 + the frame slot for the caught value, assigned by the
	// interpreter's load-time resolver (0 = unresolved).
	Slot int32
}

// Try is try/catch/finally.
type Try struct {
	Pos     token.Pos
	Block   *Block
	Catches []Catch
	Finally *Block // may be nil
}

func (s *Block) NodePos() token.Pos    { return s.Pos }
func (s *LocalVar) NodePos() token.Pos { return s.Pos }
func (s *ExprStmt) NodePos() token.Pos { return s.Pos }
func (s *If) NodePos() token.Pos       { return s.Pos }
func (s *While) NodePos() token.Pos    { return s.Pos }
func (s *For) NodePos() token.Pos      { return s.Pos }
func (s *Return) NodePos() token.Pos   { return s.Pos }
func (s *Break) NodePos() token.Pos    { return s.Pos }
func (s *Continue) NodePos() token.Pos { return s.Pos }
func (s *Empty) NodePos() token.Pos    { return s.Pos }
func (s *DoWhile) NodePos() token.Pos  { return s.Pos }
func (s *Switch) NodePos() token.Pos   { return s.Pos }
func (s *Throw) NodePos() token.Pos    { return s.Pos }
func (s *Try) NodePos() token.Pos      { return s.Pos }

func (*Block) stmtNode()    {}
func (*LocalVar) stmtNode() {}
func (*ExprStmt) stmtNode() {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*For) stmtNode()      {}
func (*Return) stmtNode()   {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}
func (*Empty) stmtNode()    {}
func (*DoWhile) stmtNode()  {}
func (*Switch) stmtNode()   {}
func (*Throw) stmtNode()    {}
func (*Try) stmtNode()      {}

// --- expressions ---

// LitKind classifies literals.
type LitKind int

// Literal kinds.
const (
	LitInt LitKind = iota
	LitLong
	LitFloat
	LitDouble
	LitChar
	LitString
	LitBool
	LitNull
)

// Literal is a constant.
type Literal struct {
	Pos  token.Pos
	Kind LitKind
	Raw  string  // original spelling
	I    int64   // int/long/char/bool(0/1)
	D    float64 // float/double
	S    string  // decoded string value
	Sci  bool    // floating literal written in scientific notation
}

// Resolution-cache kinds for Ident.RKind, written by the interpreter's
// load-time resolver (internal/minijava/interp/resolve.go). They record what
// a name resolves to when no live local variable claims it. ResNone (the zero
// value, i.e. a freshly parsed or freshly constructed node) and ResDynamic
// both mean the interpreter must fall back to fully dynamic lookup.
const (
	ResNone      uint8 = iota // unresolved: dynamic lookup
	ResField                  // instance field; RIx is the object slot index
	ResStatic                 // static field; looked up by name in the class's flat table
	ResStaticRef              // static field; RIx indexes the program's static-ref table
	ResClass                  // a class name used as a value
	ResDynamic                // ambiguous across subclasses: dynamic lookup
)

// Ident is a bare identifier (local, field of this, or class name).
type Ident struct {
	Pos  token.Pos
	Name string

	// Interpreter resolution cache, maintained by interp.Load. RSlot is
	// 1 + the frame slot when the enclosing method declares Name as a
	// parameter, local or catch variable (0 otherwise); RKind/RIx cache
	// what Name resolves to when no such local is live.
	RSlot int32
	RKind uint8
	RIx   int32
}

// This is the `this` reference.
type This struct{ Pos token.Pos }

// Select is `X.Name` (field access or class-qualified name).
type Select struct {
	Pos  token.Pos
	X    Expr
	Name string

	// SiteIx is 1 + this site's index in the program's call-site tables,
	// assigned by the interpreter's load-time resolver (0 = unresolved).
	SiteIx int32
}

// Index is `X[I]`.
type Index struct {
	Pos token.Pos
	X   Expr
	I   Expr
}

// Call is a method invocation. Recv may be nil (unqualified call on this or
// a static method of the enclosing class).
type Call struct {
	Pos  token.Pos
	Recv Expr // nil, or receiver expression / class name Ident
	Name string
	Args []Expr

	// SiteIx is 1 + this site's index in the program's call-site tables,
	// assigned by the interpreter's load-time resolver (0 = unresolved).
	SiteIx int32
}

// New is `new C(args)`.
type New struct {
	Pos  token.Pos
	Name string
	Args []Expr

	// SiteIx is 1 + this site's index in the program's call-site tables,
	// assigned by the interpreter's load-time resolver (0 = unresolved).
	SiteIx int32
}

// NewArray is `new T[l0][l1]...` with possibly fewer sized dims than total.
type NewArray struct {
	Pos  token.Pos
	Elem Type   // element base type (Dims = extra unsized dims)
	Lens []Expr // sized dimensions, ≥1
}

// ArrayLit is `{e0, e1, ...}` (only as a variable initializer).
type ArrayLit struct {
	Pos   token.Pos
	Elems []Expr
}

// Unary is prefix `Op X` or postfix `X Op` for ++/--.
type Unary struct {
	Pos     token.Pos
	Op      token.Kind
	X       Expr
	Postfix bool
}

// Binary is `X Op Y`.
type Binary struct {
	Pos token.Pos
	Op  token.Kind
	X   Expr
	Y   Expr
}

// Assign is `LHS Op RHS` where Op is = or a compound assignment.
type Assign struct {
	Pos token.Pos
	Op  token.Kind
	LHS Expr
	RHS Expr
}

// Ternary is `Cond ? Then : Else`.
type Ternary struct {
	Pos  token.Pos
	Cond Expr
	Then Expr
	Else Expr
}

// Cast is `(T) X`.
type Cast struct {
	Pos  token.Pos
	Type Type
	X    Expr
}

// InstanceOf is `X instanceof Name`.
type InstanceOf struct {
	Pos  token.Pos
	X    Expr
	Name string
}

func (e *Literal) NodePos() token.Pos    { return e.Pos }
func (e *Ident) NodePos() token.Pos      { return e.Pos }
func (e *This) NodePos() token.Pos       { return e.Pos }
func (e *Select) NodePos() token.Pos     { return e.Pos }
func (e *Index) NodePos() token.Pos      { return e.Pos }
func (e *Call) NodePos() token.Pos       { return e.Pos }
func (e *New) NodePos() token.Pos        { return e.Pos }
func (e *NewArray) NodePos() token.Pos   { return e.Pos }
func (e *ArrayLit) NodePos() token.Pos   { return e.Pos }
func (e *Unary) NodePos() token.Pos      { return e.Pos }
func (e *Binary) NodePos() token.Pos     { return e.Pos }
func (e *Assign) NodePos() token.Pos     { return e.Pos }
func (e *Ternary) NodePos() token.Pos    { return e.Pos }
func (e *Cast) NodePos() token.Pos       { return e.Pos }
func (e *InstanceOf) NodePos() token.Pos { return e.Pos }

func (*Literal) exprNode()    {}
func (*Ident) exprNode()      {}
func (*This) exprNode()       {}
func (*Select) exprNode()     {}
func (*Index) exprNode()      {}
func (*Call) exprNode()       {}
func (*New) exprNode()        {}
func (*NewArray) exprNode()   {}
func (*ArrayLit) exprNode()   {}
func (*Unary) exprNode()      {}
func (*Binary) exprNode()     {}
func (*Assign) exprNode()     {}
func (*Ternary) exprNode()    {}
func (*Cast) exprNode()       {}
func (*InstanceOf) exprNode() {}
