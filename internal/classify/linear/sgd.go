package linear

import (
	"fmt"

	"jepo/internal/classify"
	"jepo/internal/dataset"
)

// SGD is WEKA's stochastic-gradient-descent learner with hinge loss (linear
// SVM objective), binary classes, over one-hot encoded features.
type SGD struct {
	// Lambda is the regularization constant (WEKA -R, default 1e-4).
	Lambda float64
	// Epochs is the number of passes (WEKA -E, default 500; a smaller
	// default keeps the harness fast and converges on this data).
	Epochs int
	// LearningRate (WEKA -L, default 0.01).
	LearningRate float64

	opts classify.Options
	enc  *classify.Encoder
	w    []float64
	bias float64
}

// NewSGD builds an SGD learner with stock parameters.
func NewSGD(opts classify.Options) *SGD {
	return &SGD{Lambda: 1e-4, Epochs: 50, LearningRate: 0.01, opts: opts}
}

// Name implements Classifier.
func (c *SGD) Name() string { return "SGD" }

// Train implements Classifier.
func (c *SGD) Train(d *dataset.Dataset) error {
	if d.NumInstances() == 0 {
		return fmt.Errorf("sgd: empty training set")
	}
	if d.NumClasses() != 2 {
		return fmt.Errorf("sgd: hinge loss requires a binary class, got %d values", d.NumClasses())
	}
	c.enc = classify.NewEncoder(d)
	x, y := c.enc.EncodeAll(d)
	c.w = make([]float64, c.enc.Dim())
	c.bias = 0
	fp := c.opts.FP
	rng := classify.NewRNG(c.opts.Seed)
	order := make([]int, len(x))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < c.Epochs; epoch++ {
		for i := len(order) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		lr := c.LearningRate / (1 + float64(epoch)*0.1)
		for _, i := range order {
			t := float64(2*y[i] - 1) // {0,1} → {−1,+1}
			margin := fp.R(c.margin(x[i]) * t)
			// L2 shrinkage.
			shrink := 1 - lr*c.Lambda
			for f := range c.w {
				if c.w[f] != 0 {
					c.w[f] = fp.R(c.w[f] * shrink)
				}
			}
			if margin < 1 {
				for f, v := range x[i] {
					if v == 0 {
						continue
					}
					c.w[f] = fp.R(c.w[f] + lr*t*v)
				}
				c.bias = fp.R(c.bias + lr*t)
			}
		}
	}
	return nil
}

func (c *SGD) margin(feat []float64) float64 {
	fp := c.opts.FP
	s := c.bias
	for f, v := range feat {
		if v == 0 {
			continue
		}
		s = fp.R(s + c.w[f]*v)
	}
	return s
}

// Predict implements Classifier.
func (c *SGD) Predict(row []float64) int {
	feat := make([]float64, c.enc.Dim())
	c.enc.Encode(row, feat)
	if c.margin(feat) >= 0 {
		return 1
	}
	return 0
}
