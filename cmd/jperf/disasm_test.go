package main

import (
	"os"
	"testing"

	"jepo/internal/energy"
	"jepo/internal/minijava/interp"
)

// TestGoldenDisasm pins the compiled bytecode of the example program byte
// for byte. Any compiler change — new fusions, operand layout, charge
// folding — shows up here as a reviewable diff instead of a silent shift in
// what the VM executes. Regenerate after auditing with:
//
//	go run ./cmd/jperf disasm examples/java/EnergyDemo.java > examples/java/golden_disasm.txt
func TestGoldenDisasm(t *testing.T) {
	files, err := parseArgs([]string{"../../examples/java/EnergyDemo.java"})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := interp.Load(files...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("../../examples/java/golden_disasm.txt")
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.Disasm(); got != string(want) {
		t.Errorf("disassembly drifted from examples/java/golden_disasm.txt\n--- got ---\n%s", got)
	}
}

// TestGoldenDisasmWarm pins the warm (quickened) stream the same way: after
// one full main execution, the instance's patched code copies must land on
// exactly the checked-in quick forms. A drift here means runtime quickening
// changed which specializations install — reviewable, never silent.
// Regenerate with:
//
//	go run ./cmd/jperf disasm -warm examples/java/EnergyDemo.java > examples/java/golden_disasm_warm.txt
func TestGoldenDisasmWarm(t *testing.T) {
	files, err := parseArgs([]string{"../../examples/java/EnergyDemo.java"})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := interp.Load(files...)
	if err != nil {
		t.Fatal(err)
	}
	in := interp.New(prog, energy.NewMeter(energy.DefaultCosts()), interp.WithMaxOps(2_000_000_000))
	if err := in.RunMain(""); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("../../examples/java/golden_disasm_warm.txt")
	if err != nil {
		t.Fatal(err)
	}
	if got := in.DisasmWarm(); got != string(want) {
		t.Errorf("warm disassembly drifted from examples/java/golden_disasm_warm.txt\n--- got ---\n%s", got)
	}
}
