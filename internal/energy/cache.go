package energy

// Cache is a set-associative, write-allocate, LRU data-cache model. It is the
// mechanism behind the paper's array-traversal finding: row-major traversal
// of a two-dimensional array touches each 64-byte line 16 times (for 4-byte
// elements) while column-major traversal misses on almost every access.
type Cache struct {
	lineBits uint
	sets     int
	ways     int
	tags     []uint64 // sets × ways; 0 = invalid (addresses never map to tag 0)
	stamps   []uint64 // LRU timestamps, parallel to tags
	clock    uint64

	hits, misses uint64
}

// CacheConfig describes a cache geometry.
type CacheConfig struct {
	SizeBytes int // total capacity
	LineBytes int // line size, power of two
	Ways      int // associativity
}

// DefaultCacheConfig is a 32 KiB, 8-way, 64-byte-line L1D — the geometry of
// the paper's i5-3317U testbed.
func DefaultCacheConfig() CacheConfig {
	return CacheConfig{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8}
}

// NewCache builds a cache with the given geometry. It panics on a geometry
// that is not a power-of-two line size or does not divide evenly into sets,
// since that is a programming error in the caller.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic("energy: cache line size must be a positive power of two")
	}
	if cfg.Ways <= 0 {
		panic("energy: cache associativity must be positive")
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	sets := lines / cfg.Ways
	if sets <= 0 || sets*cfg.Ways*cfg.LineBytes != cfg.SizeBytes {
		panic("energy: cache size must be sets × ways × line")
	}
	bits := uint(0)
	for 1<<bits < cfg.LineBytes {
		bits++
	}
	return &Cache{
		lineBits: bits,
		sets:     sets,
		ways:     cfg.Ways,
		tags:     make([]uint64, sets*cfg.Ways),
		stamps:   make([]uint64, sets*cfg.Ways),
	}
}

// Access simulates a load or store of size bytes at addr and reports how many
// lines it touched and how many of those missed. An access spanning a line
// boundary touches every line it covers.
func (c *Cache) Access(addr uint64, size int) (lines, missed int) {
	if size <= 0 {
		size = 1
	}
	first := addr >> c.lineBits
	last := (addr + uint64(size) - 1) >> c.lineBits
	for line := first; ; line++ {
		lines++
		if !c.touch(line) {
			missed++
		}
		if line == last {
			break
		}
	}
	return lines, missed
}

// touch looks up one line, installing it on a miss, and reports a hit.
func (c *Cache) touch(line uint64) bool {
	// Tag 0 marks an invalid way; offset real tags by 1 so line 0 is valid.
	tag := line + 1
	set := int(line) % c.sets
	base := set * c.ways
	c.clock++
	victim, oldest := base, c.stamps[base]
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.tags[i] == tag {
			c.stamps[i] = c.clock
			c.hits++
			return true
		}
		if c.stamps[i] < oldest {
			victim, oldest = i, c.stamps[i]
		}
	}
	c.tags[victim] = tag
	c.stamps[victim] = c.clock
	c.misses++
	return false
}

// Hits reports the number of line hits since construction or Reset.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses reports the number of line misses since construction or Reset.
func (c *Cache) Misses() uint64 { return c.misses }

// Reset invalidates every line and zeroes the counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.stamps[i] = 0
	}
	c.clock = 0
	c.hits = 0
	c.misses = 0
}
