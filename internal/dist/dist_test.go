package dist_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"jepo/internal/dist"
	"jepo/internal/rapl"
)

// mixResult is the test workload's task result: a splitmix-style digest of
// the task seed plus a synthetic health tally, so both the result bytes
// and the wire-carried Health are pure functions of the task.
type mixResult struct {
	Index int     `json:"index"`
	Bits  uint64  `json:"bits"`
	Joule float64 `json:"joule"`
}

func mix(seed uint64) uint64 {
	z := seed + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

type mixParams struct {
	Label string `json:"label"`
}

// newMixRegistry serves the "mix" kind: deterministic result and health
// from (index, seed), with an optional induced first-attempt failure for
// tasks whose seed is divisible by failEvery.
func newMixRegistry(failEvery uint64) *dist.Registry {
	reg := dist.NewRegistry()
	var mu sync.Mutex
	tries := make(map[int]int)
	dist.RegisterFuncHealth(reg, "mix", func(task dist.Task, p mixParams) (mixResult, rapl.Health, error) {
		if failEvery > 0 && task.Seed%failEvery == 0 {
			mu.Lock()
			tries[task.Index]++
			first := tries[task.Index] == 1
			mu.Unlock()
			if first {
				return mixResult{}, rapl.Health{}, fmt.Errorf("induced failure on task %d", task.Index)
			}
		}
		bits := mix(task.Seed)
		return mixResult{
				Index: task.Index,
				Bits:  bits,
				Joule: float64(bits%1000) / 997,
			}, rapl.Health{Reads: 2, Retries: int(task.Seed % 3)},
			nil
	})
	return reg
}

// runMix runs an n-task mix campaign and returns the committed results in
// commit order plus the report.
func runMix(t *testing.T, cfg dist.Config, reg *dist.Registry, n int) ([]mixResult, []int, dist.Report) {
	t.Helper()
	var order []int
	out, rep, err := dist.Map(context.Background(), cfg, reg, "mix", mixParams{Label: "t"}, n,
		func(task dist.Task, r mixResult) { order = append(order, task.Index) })
	if err != nil {
		t.Fatalf("campaign failed: %v", err)
	}
	return out, order, rep
}

// TestDispatcherFaultCampaign is the robustness acceptance test: four
// in-process workers, a fault plan that kills two and hangs one
// mid-campaign, and the requirement that the merged output is
// bit-identical to the sequential run while the quarantine tallies match
// the plan exactly. Run under -race by scripts/check.sh.
func TestDispatcherFaultCampaign(t *testing.T) {
	const n = 24
	reg := newMixRegistry(0)
	seq, seqOrder, seqRep := runMix(t, dist.Config{Workers: 1, Seed: 20200518}, reg, n)

	plan := &dist.FaultPlan{Script: map[int]map[int]dist.FaultKind{
		1: {1: dist.FaultKill}, // node 1 crashes taking its 2nd task
		2: {0: dist.FaultKill}, // node 2 crashes taking its 1st task
		3: {1: dist.FaultHang}, // node 3 goes silent on its 2nd task
	}}
	cfg := dist.Config{
		Workers:   4,
		Seed:      20200518,
		Deadline:  250 * time.Millisecond,
		Heartbeat: 20 * time.Millisecond,
		Spawn:     dist.PipeSpawner(reg),
		Plan:      plan,
	}
	got, order, rep := runMix(t, cfg, reg, n)

	if len(got) != len(seq) {
		t.Fatalf("result count %d, sequential %d", len(got), len(seq))
	}
	for i := range got {
		if got[i] != seq[i] {
			t.Errorf("task %d drifted: distributed %+v, sequential %+v", i, got[i], seq[i])
		}
	}
	for i := range order {
		if order[i] != i || seqOrder[i] != i {
			t.Fatalf("commit order broken at %d: dist %d, seq %d", i, order[i], seqOrder[i])
		}
	}
	wantBlob, _ := json.Marshal(seq)
	gotBlob, _ := json.Marshal(got)
	if string(wantBlob) != string(gotBlob) {
		t.Errorf("serialized campaign output drifted:\n dist %s\n  seq %s", gotBlob, wantBlob)
	}

	// Quarantine tallies must match the fault plan: two deaths, one
	// deadline timeout, three nodes quarantined, three tasks reassigned.
	if rep.Deaths != 2 {
		t.Errorf("deaths = %d, want 2", rep.Deaths)
	}
	if rep.Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", rep.Timeouts)
	}
	if rep.Quarantines != 3 {
		t.Errorf("quarantines = %d, want 3", rep.Quarantines)
	}
	if rep.Reassigned != 3 {
		t.Errorf("reassigned = %d, want 3", rep.Reassigned)
	}
	quarantined := 0
	for _, nd := range rep.Nodes {
		if nd.Quarantined {
			quarantined++
		}
	}
	if quarantined != 3 {
		t.Errorf("%d nodes marked quarantined, want 3", quarantined)
	}
	if !strings.Contains(rep.String(), "quarantined=3") {
		t.Errorf("report summary %q does not surface the quarantine tally", rep.String())
	}

	// The campaign-wide measurement health merges in commit order, so it
	// must match the sequential run exactly despite the reassignments.
	if rep.Measurement != seqRep.Measurement {
		t.Errorf("merged health drifted: dist %+v, seq %+v", rep.Measurement, seqRep.Measurement)
	}
}

// TestDispatcherTaskRetry: an induced first-attempt task failure must be
// retried within budget and still merge bit-identically; with no retry
// budget the error must surface by lowest index.
func TestDispatcherTaskRetry(t *testing.T) {
	const n = 10
	seqReg := newMixRegistry(0)
	seq, _, _ := runMix(t, dist.Config{Workers: 1, Seed: 7}, seqReg, n)

	reg := newMixRegistry(2) // roughly half the tasks fail once
	cfg := dist.Config{Workers: 3, Seed: 7, Retries: 2, Spawn: dist.PipeSpawner(reg)}
	got, _, rep := runMix(t, cfg, reg, n)
	for i := range got {
		if got[i] != seq[i] {
			t.Errorf("task %d drifted after retry: %+v vs %+v", i, got[i], seq[i])
		}
	}
	if rep.Retried == 0 {
		t.Error("expected induced failures to consume retries")
	}

	noBudget := newMixRegistry(2)
	_, _, err := dist.Map(context.Background(), dist.Config{Workers: 3, Seed: 7, Spawn: dist.PipeSpawner(noBudget)},
		noBudget, "mix", mixParams{}, n, func(dist.Task, mixResult) {})
	if err == nil || !strings.Contains(err.Error(), "induced failure") {
		t.Errorf("want surfaced task error without retry budget, got %v", err)
	}
}

// TestDispatcherCorruptReplies: corrupt result payloads strike the node
// and reassign the task; enough strikes quarantine it. The output stays
// bit-identical throughout.
func TestDispatcherCorruptReplies(t *testing.T) {
	const n = 12
	reg := newMixRegistry(0)
	seq, _, _ := runMix(t, dist.Config{Workers: 1, Seed: 99}, reg, n)

	plan := &dist.FaultPlan{Script: map[int]map[int]dist.FaultKind{
		1: {0: dist.FaultCorrupt, 1: dist.FaultCorrupt},
	}}
	cfg := dist.Config{Workers: 2, Seed: 99, Strikes: 2, Spawn: dist.PipeSpawner(reg), Plan: plan}
	got, _, rep := runMix(t, cfg, reg, n)
	for i := range got {
		if got[i] != seq[i] {
			t.Errorf("task %d drifted: %+v vs %+v", i, got[i], seq[i])
		}
	}
	if rep.Corrupt != 2 {
		t.Errorf("corrupt = %d, want 2", rep.Corrupt)
	}
	if rep.Quarantines != 1 {
		t.Errorf("quarantines = %d, want 1 (strikes=2)", rep.Quarantines)
	}
}

// TestDispatcherPanicIsTaskError: a panicking runner fails the task, not
// the node — no quarantine, and the error carries the panic.
func TestDispatcherPanicIsTaskError(t *testing.T) {
	reg := dist.NewRegistry()
	dist.RegisterFunc(reg, "boom", func(task dist.Task, _ struct{}) (int, error) {
		if task.Index == 1 {
			panic("kaboom")
		}
		return task.Index, nil
	})
	_, rep, err := dist.Map[struct{}, int](context.Background(), dist.Config{Workers: 2, Seed: 1, Spawn: dist.PipeSpawner(reg)},
		reg, "boom", struct{}{}, 3, nil)
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("want panic surfaced as task error, got %v", err)
	}
	if rep.Quarantines != 0 || rep.Deaths != 0 {
		t.Errorf("panic cost a node: %s", rep)
	}
}

// TestDispatcherAllWorkersGone: when every node dies with work remaining
// the campaign errors with ErrNoWorkers instead of hanging.
func TestDispatcherAllWorkersGone(t *testing.T) {
	reg := newMixRegistry(0)
	plan := &dist.FaultPlan{Script: map[int]map[int]dist.FaultKind{
		0: {1: dist.FaultKill},
		1: {1: dist.FaultKill},
	}}
	cfg := dist.Config{Workers: 2, Seed: 5, Spawn: dist.PipeSpawner(reg), Plan: plan}
	_, _, err := dist.Map[mixParams, mixResult](context.Background(), cfg, reg, "mix", mixParams{}, 20, nil)
	if !errors.Is(err, dist.ErrNoWorkers) {
		t.Fatalf("want ErrNoWorkers, got %v", err)
	}
}

// TestDispatcherCheckpointResume: a campaign that dies with every node
// leaves an atomic ledger; the rerun replays the completed prefix and only
// measures the remainder, and the merged output is still bit-identical.
func TestDispatcherCheckpointResume(t *testing.T) {
	const n = 16
	reg := newMixRegistry(0)
	seq, _, _ := runMix(t, dist.Config{Workers: 1, Seed: 42}, reg, n)

	ledger := filepath.Join(t.TempDir(), "campaign.json")
	plan := &dist.FaultPlan{Script: map[int]map[int]dist.FaultKind{
		0: {4: dist.FaultKill},
		1: {4: dist.FaultKill},
	}}
	cfg := dist.Config{Workers: 2, Seed: 42, Checkpoint: ledger, Spawn: dist.PipeSpawner(reg), Plan: plan}
	_, _, err := dist.Map[mixParams, mixResult](context.Background(), cfg, reg, "mix", mixParams{Label: "t"}, n, nil)
	if !errors.Is(err, dist.ErrNoWorkers) {
		t.Fatalf("want first run to lose all workers, got %v", err)
	}
	if _, err := os.Stat(ledger); err != nil {
		t.Fatalf("no ledger written: %v", err)
	}

	cfg.Plan = nil
	got, _, rep := runMix(t, cfg, reg, n)
	if rep.Replayed == 0 {
		t.Error("resume replayed nothing; ledger was not used")
	}
	if rep.Replayed+rep.Assigned < n {
		t.Errorf("replayed %d + assigned %d < %d tasks", rep.Replayed, rep.Assigned, n)
	}
	for i := range got {
		if got[i] != seq[i] {
			t.Errorf("task %d drifted after resume: %+v vs %+v", i, got[i], seq[i])
		}
	}

	// A truncated ledger must be ignored, not trusted.
	if err := os.WriteFile(ledger, []byte(`{"kind":"mix","seed":42,"ta`), 0o644); err != nil {
		t.Fatal(err)
	}
	got2, _, rep2 := runMix(t, cfg, reg, n)
	if rep2.Replayed != 0 {
		t.Errorf("corrupt ledger replayed %d tasks", rep2.Replayed)
	}
	for i := range got2 {
		if got2[i] != seq[i] {
			t.Errorf("task %d drifted after corrupt-ledger rerun", i)
		}
	}
}

// TestAtomicWriteFile: the write lands complete under the final name and
// leaves no temp litter behind.
func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := dist.AtomicWriteFile(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := dist.AtomicWriteFile(path, []byte("second"), 0o644); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil || string(blob) != "second" {
		t.Fatalf("read %q, %v; want %q", blob, err, "second")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("temp litter left behind: %v", entries)
	}
}

// TestParseFaultPlan covers the scripted spec grammar.
func TestParseFaultPlan(t *testing.T) {
	plan, err := dist.ParseFaultPlan("1:kill@1; 2:hang@0;3:corrupt@2")
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]map[int]dist.FaultKind{
		1: {1: dist.FaultKill},
		2: {0: dist.FaultHang},
		3: {2: dist.FaultCorrupt},
	}
	for node, faults := range want {
		for nth, kind := range faults {
			if plan.Script[node][nth] != kind {
				t.Errorf("node %d nth %d = %v, want %v", node, nth, plan.Script[node][nth], kind)
			}
		}
	}
	for _, bad := range []string{"", "x", "1:frob@0", "a:kill@0", "1:kill@-1", "1:kill"} {
		if _, err := dist.ParseFaultPlan(bad); err == nil {
			t.Errorf("spec %q parsed; want error", bad)
		}
	}
}

// TestWorkerSeedDerivation pins the wire protocol to sched's TaskSeed: a
// worker must see exactly the seed the inline path computes.
func TestWorkerSeedDerivation(t *testing.T) {
	reg := dist.NewRegistry()
	dist.RegisterFunc(reg, "seed", func(task dist.Task, _ struct{}) (uint64, error) {
		return task.Seed, nil
	})
	inline, _, err := dist.Map[struct{}, uint64](context.Background(), dist.Config{Workers: 1, Seed: 20200518}, reg, "seed", struct{}{}, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	piped, _, err := dist.Map[struct{}, uint64](context.Background(), dist.Config{Workers: 3, Seed: 20200518, Spawn: dist.PipeSpawner(reg)},
		reg, "seed", struct{}{}, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range inline {
		if inline[i] != piped[i] {
			t.Errorf("task %d seed drifted across the wire: %d vs %d", i, piped[i], inline[i])
		}
	}
}
