// Command wekaexp regenerates the paper's evaluation tables end to end:
//
//	wekaexp -table 1            component energy ratios (Table I)
//	wekaexp -table 2            per-classifier WEKA metrics (Table II)
//	wekaexp -table 3            airlines schema & distribution (Table III)
//	wekaexp -table 4            the full §VIII validation (Table IV)
//	wekaexp -table all          everything
//
// Table IV runs the complete pipeline per classifier — corpus generation,
// JEPO refactoring, kernel energy measurement under the repeat/Tukey
// protocol, and double-vs-float cross-validation — and prints the same
// columns the paper reports.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"jepo/internal/airlines"
	"jepo/internal/corpus"
	"jepo/internal/jmetrics"
	"jepo/internal/stats"
	"jepo/internal/tables"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: 1, 2, 3, 4, ablation or all")
	seed := flag.Uint64("seed", 20200518, "experiment seed")
	instances := flag.Int("instances", 2000, "airlines instances for Table IV")
	reps := flag.Int("reps", 3, "kernel repetitions per Table IV measurement")
	runs := flag.Int("runs", 5, "measurements per configuration (paper: 10)")
	folds := flag.Int("folds", 10, "cross-validation folds for accuracy")
	arff := flag.String("arff", "", "also write the airlines data as ARFF to this path (table 3)")
	dumpDir := flag.String("dump-corpus", "", "write a generated WEKA-shaped corpus under this directory")
	dumpFor := flag.String("classifier", "J48", "classifier whose corpus -dump-corpus writes")
	checkpoint := flag.String("checkpoint", "", "directory persisting completed Table IV rows; reruns resume from it")
	rowTimeout := flag.Duration("row-timeout", 0, "per-classifier deadline for Table IV (0 = none)")
	verbose := flag.Bool("v", false, "print progress")
	flag.Parse()

	if *dumpDir != "" {
		if err := dumpCorpus(*dumpDir, *dumpFor, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "wekaexp:", err)
			os.Exit(1)
		}
	}

	// A failing table no longer aborts the run: remaining tables still
	// regenerate, every failure is reported at the end, and only then does
	// the process exit non-zero.
	var failures []string
	run := func(name string, f func() error) {
		if *table != "all" && *table != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "wekaexp: table %s: %v\n", name, err)
			failures = append(failures, name)
		}
	}

	run("1", func() error {
		rows, err := tables.Table1()
		if err != nil {
			return err
		}
		fmt.Println("=== Table I: Java components & suggestions (measured) ===")
		fmt.Print(tables.RenderTable1(rows))
		fmt.Println()
		return nil
	})

	run("2", func() error {
		rows, err := tables.Table2(*seed)
		if err != nil {
			return err
		}
		fmt.Println("=== Table II: WEKA classifier metrics ===")
		fmt.Print(jmetrics.Table(rows))
		fmt.Println()
		return nil
	})

	run("3", func() error {
		fmt.Println("=== Table III: MOA airlines data ===")
		fmt.Print(tables.Table3(*instances, *seed))
		if *arff != "" {
			f, err := os.Create(*arff)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := airlines.Generate(*instances, *seed).WriteARFF(f); err != nil {
				return err
			}
			fmt.Printf("ARFF written to %s\n", *arff)
		}
		fmt.Println()
		return nil
	})

	run("ablation", func() error {
		cfg := tables.DefaultAblationConfig()
		cfg.Seed = *seed
		cfg.Instances = *instances
		rows, err := tables.Ablate(cfg)
		if err != nil {
			return err
		}
		fmt.Println("=== Ablation: cost-model mechanisms behind the Table IV headline ===")
		fmt.Print(tables.RenderAblation(cfg.Classifier, rows))
		fmt.Println()
		return nil
	})

	run("4", func() error {
		cfg := tables.Table4Config{
			Seed:          *seed,
			Instances:     *instances,
			Reps:          *reps,
			Protocol:      stats.Protocol{Runs: *runs, MaxRounds: 10},
			CVFolds:       *folds,
			RowTimeout:    *rowTimeout,
			CheckpointDir: *checkpoint,
		}
		if *verbose {
			cfg.Progress = func(msg string) { fmt.Fprintln(os.Stderr, msg) }
		}
		fmt.Println("=== Table IV: WEKA evaluation ===")
		rows, err := tables.Table4Supervised(cfg)
		if err != nil {
			return err
		}
		fmt.Print(tables.RenderTable4(rows))
		fmt.Println()
		if failed := tables.FailedRows(rows); len(failed) > 0 {
			names := make([]string, len(failed))
			for i, r := range failed {
				names[i] = r.Classifier
			}
			return fmt.Errorf("%d classifier row(s) failed: %s", len(failed), strings.Join(names, ", "))
		}
		return nil
	})

	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "wekaexp: %d table(s) failed: %s\n", len(failures), strings.Join(failures, ", "))
		os.Exit(1)
	}
}

// dumpCorpus materializes one classifier's generated corpus as .java files on
// disk, so the jepo and jperf CLIs can be pointed at it directly.
func dumpCorpus(dir, classifier string, seed uint64) error {
	p, err := corpus.Generate(classifier, seed)
	if err != nil {
		return err
	}
	for _, f := range p.Files {
		dst := filepath.Join(dir, filepath.FromSlash(f.Path))
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(dst, []byte(f.Source), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("corpus for %s written under %s (%d files)\n", classifier, dir, len(p.Files))
	return nil
}
