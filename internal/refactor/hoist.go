package refactor

import (
	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/token"
	"jepo/internal/suggest"
)

// hoistStatics applies the static-keyword rule: a mutable static field whose
// accesses all live in a single method is rewritten so that method loads the
// field into a local once, works on the local, and stores it back at every
// exit. This removes the per-access static penalty (the paper's +17,700%)
// without changing semantics for non-reentrant methods.
func hoistStatics(files []*ast.File, res *Result) {
	type fieldKey struct{ class, field string }
	type use struct {
		method *ast.Method
		class  *ast.Class
		count  int
	}
	// Gather mutable static fields.
	statics := map[fieldKey]*ast.Field{}
	for _, f := range files {
		for _, c := range f.Classes {
			for _, fd := range c.Fields {
				if fd.Mods.Has(ast.ModStatic) && !fd.Mods.Has(ast.ModFinal) {
					statics[fieldKey{c.Name, fd.Name}] = fd
				}
			}
		}
	}
	if len(statics) == 0 {
		return
	}
	// Count accesses per (field, method). Unqualified idents are attributed
	// to the enclosing class; Class.field selects are attributed explicitly.
	uses := map[fieldKey][]*use{}
	for _, f := range files {
		for _, c := range f.Classes {
			for _, m := range c.Methods {
				if m.Body == nil {
					continue
				}
				counts := map[fieldKey]int{}
				locals := localNames(m)
				ast.Inspect(m.Body, func(n ast.Node) bool {
					switch x := n.(type) {
					case *ast.Ident:
						if locals[x.Name] {
							return true
						}
						k := fieldKey{c.Name, x.Name}
						if _, ok := statics[k]; ok {
							counts[k]++
						}
					case *ast.Select:
						if cls, ok := x.X.(*ast.Ident); ok {
							k := fieldKey{cls.Name, x.Name}
							if _, ok := statics[k]; ok {
								counts[k]++
							}
						}
					}
					return true
				})
				for k, n := range counts {
					uses[k] = append(uses[k], &use{method: m, class: c, count: n})
				}
			}
		}
	}
	for k, fd := range statics {
		us := uses[k]
		// Safe to hoist only when a single method touches the field, and it
		// is worth it only when that method touches it repeatedly.
		if len(us) != 1 || us[0].count < 2 {
			continue
		}
		hoistInMethod(us[0].class, us[0].method, k.class, fd)
		res.add(suggest.RuleStaticKeyword, 1)
	}
}

// localNames collects parameter and local variable names of a method, which
// shadow same-named statics.
func localNames(m *ast.Method) map[string]bool {
	names := map[string]bool{}
	for _, p := range m.Params {
		names[p.Name] = true
	}
	ast.Inspect(m.Body, func(n ast.Node) bool {
		if lv, ok := n.(*ast.LocalVar); ok {
			names[lv.Name] = true
		}
		return true
	})
	return names
}

// hoistInMethod rewrites m so accesses to the static field go through a local.
func hoistInMethod(owner *ast.Class, m *ast.Method, className string, fd *ast.Field) {
	pos := m.Pos
	classIdent := func() ast.Expr { return &ast.Ident{Pos: pos, Name: className} }
	// Qualified selects Class.field become plain idents so they hit the new
	// local; unqualified idents already resolve to it.
	replaceQualified(m.Body, className, fd.Name)
	writeback := func(p token.Pos) ast.Stmt {
		return &ast.ExprStmt{Pos: p, X: &ast.Assign{
			Pos: p, Op: token.Assign,
			LHS: &ast.Select{Pos: p, X: classIdent(), Name: fd.Name},
			RHS: &ast.Ident{Pos: p, Name: fd.Name},
		}}
	}
	insertWritebacks(m.Body, writeback)
	load := &ast.LocalVar{
		Pos:  pos,
		Type: fd.Type,
		Name: fd.Name,
		Init: &ast.Select{Pos: pos, X: classIdent(), Name: fd.Name},
	}
	stmts := append([]ast.Stmt{load}, m.Body.Stmts...)
	if !endsWithReturnOrThrow(m.Body) {
		stmts = append(stmts, writeback(pos))
	}
	m.Body.Stmts = stmts
}

// replaceQualified rewrites Class.field selects to bare idents in-place.
func replaceQualified(body *ast.Block, className, field string) {
	var fixExpr func(e ast.Expr) ast.Expr
	fixExpr = func(e ast.Expr) ast.Expr {
		switch n := e.(type) {
		case *ast.Select:
			if cls, ok := n.X.(*ast.Ident); ok && cls.Name == className && n.Name == field {
				return &ast.Ident{Pos: n.Pos, Name: field}
			}
			n.X = fixExpr(n.X)
			return n
		case *ast.Binary:
			n.X, n.Y = fixExpr(n.X), fixExpr(n.Y)
		case *ast.Unary:
			n.X = fixExpr(n.X)
		case *ast.Assign:
			n.LHS, n.RHS = fixExpr(n.LHS), fixExpr(n.RHS)
		case *ast.Ternary:
			n.Cond, n.Then, n.Else = fixExpr(n.Cond), fixExpr(n.Then), fixExpr(n.Else)
		case *ast.Call:
			if n.Recv != nil {
				n.Recv = fixExpr(n.Recv)
			}
			for i := range n.Args {
				n.Args[i] = fixExpr(n.Args[i])
			}
		case *ast.Index:
			n.X, n.I = fixExpr(n.X), fixExpr(n.I)
		case *ast.New:
			for i := range n.Args {
				n.Args[i] = fixExpr(n.Args[i])
			}
		case *ast.NewArray:
			for i := range n.Lens {
				n.Lens[i] = fixExpr(n.Lens[i])
			}
		case *ast.Cast:
			n.X = fixExpr(n.X)
		case *ast.InstanceOf:
			n.X = fixExpr(n.X)
		}
		return e
	}
	var fixStmt func(s ast.Stmt)
	fixStmt = func(s ast.Stmt) {
		switch n := s.(type) {
		case *ast.Block:
			for _, st := range n.Stmts {
				fixStmt(st)
			}
		case *ast.LocalVar:
			if n.Init != nil {
				n.Init = fixExpr(n.Init)
			}
		case *ast.ExprStmt:
			n.X = fixExpr(n.X)
		case *ast.If:
			n.Cond = fixExpr(n.Cond)
			fixStmt(n.Then)
			if n.Else != nil {
				fixStmt(n.Else)
			}
		case *ast.While:
			n.Cond = fixExpr(n.Cond)
			fixStmt(n.Body)
		case *ast.DoWhile:
			fixStmt(n.Body)
			n.Cond = fixExpr(n.Cond)
		case *ast.Switch:
			n.Tag = fixExpr(n.Tag)
			for ci := range n.Cases {
				for vi := range n.Cases[ci].Values {
					n.Cases[ci].Values[vi] = fixExpr(n.Cases[ci].Values[vi])
				}
				for _, st := range n.Cases[ci].Stmts {
					fixStmt(st)
				}
			}
		case *ast.For:
			if n.Init != nil {
				fixStmt(n.Init)
			}
			if n.Cond != nil {
				n.Cond = fixExpr(n.Cond)
			}
			for i := range n.Post {
				n.Post[i] = fixExpr(n.Post[i])
			}
			fixStmt(n.Body)
		case *ast.Return:
			if n.X != nil {
				n.X = fixExpr(n.X)
			}
		case *ast.Throw:
			n.X = fixExpr(n.X)
		case *ast.Try:
			fixStmt(n.Block)
			for _, c := range n.Catches {
				fixStmt(c.Block)
			}
			if n.Finally != nil {
				fixStmt(n.Finally)
			}
		}
	}
	fixStmt(body)
}

// insertWritebacks places the store-back before every return statement.
func insertWritebacks(body *ast.Block, mk func(token.Pos) ast.Stmt) {
	var fix func(s ast.Stmt)
	fixBlock := func(b *ast.Block) {
		out := make([]ast.Stmt, 0, len(b.Stmts))
		for _, st := range b.Stmts {
			if r, ok := st.(*ast.Return); ok {
				out = append(out, mk(r.Pos), r)
				continue
			}
			fix(st)
			out = append(out, st)
		}
		b.Stmts = out
	}
	fix = func(s ast.Stmt) {
		switch n := s.(type) {
		case *ast.Block:
			fixBlock(n)
		case *ast.If:
			n.Then = wrapReturn(n.Then, mk)
			fix(n.Then)
			if n.Else != nil {
				n.Else = wrapReturn(n.Else, mk)
				fix(n.Else)
			}
		case *ast.While:
			n.Body = wrapReturn(n.Body, mk)
			fix(n.Body)
		case *ast.DoWhile:
			n.Body = wrapReturn(n.Body, mk)
			fix(n.Body)
		case *ast.Switch:
			for ci := range n.Cases {
				out := make([]ast.Stmt, 0, len(n.Cases[ci].Stmts))
				for _, st := range n.Cases[ci].Stmts {
					if r, ok := st.(*ast.Return); ok {
						out = append(out, mk(r.Pos), r)
						continue
					}
					fix(st)
					out = append(out, st)
				}
				n.Cases[ci].Stmts = out
			}
		case *ast.For:
			n.Body = wrapReturn(n.Body, mk)
			fix(n.Body)
		case *ast.Try:
			fixBlock(n.Block)
			for _, c := range n.Catches {
				fixBlock(c.Block)
			}
			if n.Finally != nil {
				fixBlock(n.Finally)
			}
		}
	}
	fixBlock(body)
}

// wrapReturn turns a bare `return e;` body into a block so the writeback can
// precede it.
func wrapReturn(s ast.Stmt, mk func(token.Pos) ast.Stmt) ast.Stmt {
	if r, ok := s.(*ast.Return); ok {
		return &ast.Block{Pos: r.Pos, Stmts: []ast.Stmt{mk(r.Pos), r}}
	}
	return s
}

func endsWithReturnOrThrow(b *ast.Block) bool {
	if len(b.Stmts) == 0 {
		return false
	}
	switch b.Stmts[len(b.Stmts)-1].(type) {
	case *ast.Return, *ast.Throw:
		return true
	}
	return false
}
