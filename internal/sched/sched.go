// Package sched is the deterministic parallel execution engine behind every
// fan-out in the reproduction: Table II/IV classifier rows, cross-validation
// fold training, the corpus-wide pass analysis, and the repeated measurement
// runs of jperf. Measurement campaigns are embarrassingly parallel *only if*
// per-task accounting stays isolated and the reduction order is fixed, so the
// pool enforces three invariants:
//
//  1. Per-task isolation. Every task receives its own derived RNG seed
//     (a splitmix64 mix of the base seed and the task index, see TaskSeed)
//     and is expected to build its own energy.Meter / interpreter instances
//     from it. Nothing about a task's inputs depends on which worker runs it
//     or when.
//
//  2. Index-ordered commit. Results are delivered to the caller in task-index
//     order, and the optional commit callback runs on the caller's goroutine
//     strictly in that order, as completed results become available. Any
//     order-sensitive reduction (float summation, ledger concatenation,
//     progress output) therefore produces bit-identical output at any worker
//     count.
//
//  3. Sequential degeneration. Jobs == 1 runs every task inline on the
//     calling goroutine in index order — exactly the pre-pool code path, with
//     no goroutines, channels or scheduling involved.
//
// Together these make `-jobs N` a pure wall-clock knob: output, profiles and
// Joule totals are bit-identical to the sequential run at any worker count.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// TaskSeed derives the RNG seed for one task from the pool's base seed: a
// splitmix64 finalizer over the base advanced by (index+1) golden-ratio
// steps. Streams for distinct indices are statistically independent, the
// derivation is pure (no shared generator to race on or to make task i's
// stream depend on task j having run first), and index 0 does not collapse
// onto the base seed.
func TaskSeed(base uint64, index int) uint64 {
	z := base + (uint64(index)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Task identifies one unit of work handed to a worker.
type Task struct {
	Index int    // position in the input slice; also the commit order
	Seed  uint64 // TaskSeed(cfg.Seed, Index) — the task's private RNG stream
}

// Config parameterizes a pool run.
type Config struct {
	// Jobs is the worker count. <= 0 means runtime.GOMAXPROCS(0); the pool
	// never runs more workers than there are tasks.
	Jobs int
	// Seed is the base seed every task's private stream derives from.
	Seed uint64
	// Retries is how many times a failed task attempt (error or panic) is
	// re-queued before its error stands. Retried tasks land on the retry
	// queue, from which any idle worker steals.
	Retries int
}

// Telemetry records what one pool run did. Timing fields are informational —
// they vary run to run and must never feed a determinism-pinned output
// stream; the CLIs print them to stderr.
type Telemetry struct {
	Jobs     int             // workers actually started
	Tasks    int             // tasks executed
	Attempts int             // task executions including retries
	Steals   int             // pickups from the retry queue by idle workers
	Panics   int             // attempts that ended in a recovered panic
	Wall     time.Duration   // run wall-clock
	Busy     []time.Duration // per-worker time spent executing tasks
	// Straggler is the task whose attempts consumed the most wall-clock.
	StragglerIndex int
	StragglerTime  time.Duration
}

// Utilization is the busy fraction of the pool: Σ busy / (jobs × wall).
func (t Telemetry) Utilization() float64 {
	if t.Jobs == 0 || t.Wall <= 0 {
		return 0
	}
	var busy time.Duration
	for _, b := range t.Busy {
		busy += b
	}
	return float64(busy) / (float64(t.Jobs) * float64(t.Wall))
}

// String renders the compact one-line form the CLIs log to stderr.
func (t Telemetry) String() string {
	s := fmt.Sprintf("sched: jobs=%d tasks=%d attempts=%d steals=%d panics=%d wall=%v util=%.0f%%",
		t.Jobs, t.Tasks, t.Attempts, t.Steals, t.Panics, t.Wall.Round(time.Millisecond), 100*t.Utilization())
	if t.StragglerIndex >= 0 {
		s += fmt.Sprintf(" straggler=#%d(%v)", t.StragglerIndex, t.StragglerTime.Round(time.Millisecond))
	}
	return s
}

// Map runs fn over every item on a bounded worker pool and returns the
// results in item order. The first error by task index is returned (every
// task still runs, mirroring the row-collection semantics of the table
// generators). See MapCommit for the ordered-commit variant.
//
// Cancelling ctx stops the pool cleanly: no new tasks are claimed, in-flight
// attempts drain to completion (workers are never abandoned mid-task), the
// committed prefix stays an exact index prefix, and ctx.Err() is returned.
func Map[T, R any](ctx context.Context, cfg Config, items []T, fn func(Task, T) (R, error)) ([]R, Telemetry, error) {
	return MapCommit(ctx, cfg, items, fn, nil)
}

// MapCommit is Map plus an in-order commit hook: commit runs on the calling
// goroutine once per successful task, in strict task-index order, as results
// become final. It is the seam for order-sensitive reductions — summing
// Joules, concatenating Health ledgers, emitting output — that must be
// bit-identical at any worker count.
func MapCommit[T, R any](ctx context.Context, cfg Config, items []T, fn func(Task, T) (R, error), commit func(Task, R)) ([]R, Telemetry, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(items)
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > n {
		jobs = n
	}
	if jobs < 1 {
		jobs = 1
	}
	tel := Telemetry{Jobs: jobs, Tasks: n, Busy: make([]time.Duration, jobs), StragglerIndex: -1}
	results := make([]R, n)
	errs := make([]error, n)
	if n == 0 {
		return results, tel, nil
	}
	start := time.Now()

	// attempt executes one try of a task, converting panics into errors so a
	// poisoned task costs its retries, never the pool.
	attempt := func(task Task, panics *int64) (err error) {
		defer func() {
			if r := recover(); r != nil {
				atomic.AddInt64(panics, 1)
				err = fmt.Errorf("sched: task %d panicked: %v", task.Index, r)
			}
		}()
		r, err := fn(task, items[task.Index])
		if err != nil {
			return err
		}
		results[task.Index] = r
		return nil
	}

	var panics int64
	taskTime := make([]time.Duration, n) // Σ attempt durations per task
	cancelled := false

	if jobs == 1 {
		// Sequential degeneration: inline, in index order, commit after each
		// task — today's single-goroutine code path exactly. A cancelled
		// context stops before the next task; the finished prefix stands.
		for i := range items {
			if ctx.Err() != nil {
				cancelled = true
				break
			}
			task := Task{Index: i, Seed: TaskSeed(cfg.Seed, i)}
			t0 := time.Now()
			for try := 0; ; try++ {
				tel.Attempts++
				if errs[i] = attempt(task, &panics); errs[i] == nil || try >= cfg.Retries {
					break
				}
			}
			taskTime[i] = time.Since(t0)
			tel.Busy[0] += taskTime[i]
			if errs[i] == nil && commit != nil {
				commit(task, results[i])
			}
		}
	} else {
		type job struct {
			task Task
			try  int
		}
		var (
			next      int64 = -1
			completed int64
			attempts  int64
			steals    int64
		)
		retryq := make(chan job, n)
		done := make([]chan struct{}, n)
		for i := range done {
			done[i] = make(chan struct{})
		}
		finished := make(chan struct{})
		busyNS := make([]int64, jobs)
		taskNS := make([]int64, n)

		exec := func(w int, j job) {
			t0 := time.Now()
			atomic.AddInt64(&attempts, 1)
			err := attempt(j.task, &panics)
			d := int64(time.Since(t0))
			busyNS[w] += d
			atomic.AddInt64(&taskNS[j.task.Index], d)
			if err != nil && j.try < cfg.Retries {
				retryq <- job{task: j.task, try: j.try + 1}
				return
			}
			errs[j.task.Index] = err
			close(done[j.task.Index])
			if atomic.AddInt64(&completed, 1) == int64(n) {
				close(finished)
			}
		}
		var workers sync.WaitGroup
		for w := 0; w < jobs; w++ {
			workers.Add(1)
			go func(w int) {
				defer workers.Done()
				for {
					// A cancelled context stops the claim loop: nothing new
					// is picked up, and the worker exits once its in-flight
					// attempt (if any) has already completed.
					if ctx.Err() != nil {
						return
					}
					// Idle workers steal queued retries before claiming
					// fresh indices, so a flaky early task re-runs while the
					// tail is still being dispatched.
					select {
					case j := <-retryq:
						atomic.AddInt64(&steals, 1)
						exec(w, j)
						continue
					default:
					}
					if i := atomic.AddInt64(&next, 1); int(i) < n {
						exec(w, job{task: Task{Index: int(i), Seed: TaskSeed(cfg.Seed, int(i))}})
						continue
					}
					select {
					case j := <-retryq:
						atomic.AddInt64(&steals, 1)
						exec(w, j)
					case <-finished:
						return
					case <-ctx.Done():
						return
					}
				}
			}(w)
		}
		// Index-ordered commit on the caller's goroutine: task i+1's result
		// may already be done, but it is not committed before task i's. On
		// cancellation the loop stops committing immediately — the committed
		// set stays an exact prefix — and falls through to the drain.
		for i := 0; i < n && !cancelled; i++ {
			select {
			case <-done[i]:
				if errs[i] == nil && commit != nil {
					commit(Task{Index: i, Seed: TaskSeed(cfg.Seed, i)}, results[i])
				}
			case <-ctx.Done():
				cancelled = true
			}
		}
		// Drain: every worker has either returned or is finishing its last
		// attempt. Waiting here (instead of on `finished`, which never closes
		// on a cancelled run) guarantees no goroutine outlives the call and
		// the busy ledgers below are safely published.
		workers.Wait()
		tel.Attempts = int(attempts)
		tel.Steals = int(steals)
		for w := range busyNS {
			tel.Busy[w] = time.Duration(busyNS[w])
		}
		for i := range taskNS {
			taskTime[i] = time.Duration(taskNS[i])
		}
	}

	tel.Panics = int(panics)
	tel.Wall = time.Since(start)
	for i, d := range taskTime {
		if d > tel.StragglerTime {
			tel.StragglerIndex, tel.StragglerTime = i, d
		}
	}
	if cancelled {
		return results, tel, ctx.Err()
	}
	var firstErr error
	for _, err := range errs {
		if err != nil {
			firstErr = err
			break
		}
	}
	return results, tel, firstErr
}
