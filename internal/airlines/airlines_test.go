package airlines

import (
	"strings"
	"testing"

	"jepo/internal/dataset"
)

func TestSchemaMatchesTableIII(t *testing.T) {
	attrs := Attrs()
	if len(attrs) != 8 {
		t.Fatalf("attributes = %d, want 8", len(attrs))
	}
	want := []struct {
		name string
		kind dataset.AttrKind
		card int
	}{
		{"Airline", dataset.Nominal, 18},
		{"Flight", dataset.Numeric, 0},
		{"AirportFrom", dataset.Nominal, 293},
		{"AirportTo", dataset.Nominal, 293},
		{"DayOfWeek", dataset.Nominal, 7},
		{"Time", dataset.Numeric, 0},
		{"Length", dataset.Numeric, 0},
		{"Delay", dataset.Nominal, 2},
	}
	for i, w := range want {
		a := attrs[i]
		if a.Name != w.name || a.Kind != w.kind || a.NumValues() != w.card {
			t.Errorf("attr %d = %s/%v/%d, want %s/%v/%d",
				i, a.Name, a.Kind, a.NumValues(), w.name, w.kind, w.card)
		}
	}
}

func TestGenerateShapeAndDeterminism(t *testing.T) {
	d := Generate(PaperSize, 42)
	if d.NumInstances() != PaperSize {
		t.Fatalf("instances = %d", d.NumInstances())
	}
	if d.ClassIdx != ColDelay || d.NumClasses() != 2 {
		t.Error("class attribute wrong")
	}
	d2 := Generate(PaperSize, 42)
	for i := 0; i < 100; i++ {
		for j := range d.X[i] {
			if d.X[i][j] != d2.X[i][j] {
				t.Fatal("generation not deterministic")
			}
		}
	}
	d3 := Generate(1000, 43)
	same := true
	for j := range d.X[0] {
		if d.X[0][j] != d3.X[0][j] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical first rows")
	}
}

func TestGenerateValueRanges(t *testing.T) {
	d := Generate(5000, 7)
	for i, row := range d.X {
		if row[ColAirline] < 0 || row[ColAirline] >= NumAirlines {
			t.Fatalf("row %d airline out of range: %v", i, row[ColAirline])
		}
		if row[ColFrom] == row[ColTo] {
			t.Fatalf("row %d has identical airports", i)
		}
		if row[ColTime] < 0 || row[ColTime] >= 1440 {
			t.Fatalf("row %d time out of range: %v", i, row[ColTime])
		}
		if row[ColLength] < 20 || row[ColLength] > 655 {
			t.Fatalf("row %d length out of range: %v", i, row[ColLength])
		}
		if c := row[ColDelay]; c != 0 && c != 1 {
			t.Fatalf("row %d class = %v", i, c)
		}
	}
}

func TestClassBalanceReasonable(t *testing.T) {
	d := Generate(PaperSize, 42)
	counts := d.ClassCounts()
	frac := float64(counts[1]) / float64(d.NumInstances())
	// The real airlines data is ≈45% delayed; ours should be broadly
	// balanced, not degenerate.
	if frac < 0.25 || frac > 0.75 {
		t.Errorf("delay fraction = %.3f, want within [0.25, 0.75]", frac)
	}
}

func TestCardinalitiesRealized(t *testing.T) {
	d := Generate(PaperSize, 42)
	if got := d.DistinctValues(ColAirline); got != 18 {
		t.Errorf("distinct airlines = %d, want 18 (Table III)", got)
	}
	if got := d.DistinctValues(ColFrom); got != 293 {
		t.Errorf("distinct origin airports = %d, want 293 (Table III)", got)
	}
}

func TestLearnableStructure(t *testing.T) {
	// A one-rule classifier on the airline bias must beat the majority rate:
	// the delay signal is real, not noise.
	d := Generate(PaperSize, 42)
	perAirline := make([][2]int, NumAirlines)
	for i, row := range d.X {
		perAirline[int(row[ColAirline])][d.Class(i)]++
	}
	correct := 0
	for _, row := range d.X {
		counts := perAirline[int(row[ColAirline])]
		pred := 0
		if counts[1] > counts[0] {
			pred = 1
		}
		if float64(pred) == row[ColDelay] {
			correct++
		}
	}
	oneRule := float64(correct) / float64(d.NumInstances())
	maj := d.ClassCounts()[d.MajorityClass()]
	majority := float64(maj) / float64(d.NumInstances())
	if oneRule < majority+0.02 {
		t.Errorf("one-rule accuracy %.3f does not beat majority %.3f: no learnable signal", oneRule, majority)
	}
}

func TestTableIIIRendering(t *testing.T) {
	out := TableIII()
	for _, want := range []string{"Airline", "Nominal", "Delay", "Binary", "AirportFrom"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table III output missing %q:\n%s", want, out)
		}
	}
}
