package energy

// Cache is a set-associative, write-allocate, LRU data-cache model. It is the
// mechanism behind the paper's array-traversal finding: row-major traversal
// of a two-dimensional array touches each 64-byte line 16 times (for 4-byte
// elements) while column-major traversal misses on almost every access.
type Cache struct {
	lineBits uint
	sets     int
	ways     int
	data     []cacheWay // sets × ways
	lastWay  []int32    // per-set way of the most recent hit/install
	clock    uint64

	hits, misses uint64
}

// cacheWay is one line slot: tag 0 = invalid (real tags are offset by 1, so
// line 0 is representable), stamp is the LRU timestamp.
type cacheWay struct {
	tag, stamp uint64
}

// CacheConfig describes a cache geometry.
type CacheConfig struct {
	SizeBytes int // total capacity
	LineBytes int // line size, power of two
	Ways      int // associativity
}

// DefaultCacheConfig is a 32 KiB, 8-way, 64-byte-line L1D — the geometry of
// the paper's i5-3317U testbed.
func DefaultCacheConfig() CacheConfig {
	return CacheConfig{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8}
}

// NewCache builds a cache with the given geometry. It panics on a geometry
// that is not a power-of-two line size or does not divide evenly into sets,
// since that is a programming error in the caller.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic("energy: cache line size must be a positive power of two")
	}
	if cfg.Ways <= 0 {
		panic("energy: cache associativity must be positive")
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	sets := lines / cfg.Ways
	if sets <= 0 || sets*cfg.Ways*cfg.LineBytes != cfg.SizeBytes {
		panic("energy: cache size must be sets × ways × line")
	}
	bits := uint(0)
	for 1<<bits < cfg.LineBytes {
		bits++
	}
	return &Cache{
		lineBits: bits,
		sets:     sets,
		ways:     cfg.Ways,
		data:     make([]cacheWay, sets*cfg.Ways),
		lastWay:  make([]int32, sets),
	}
}

// Access simulates a load or store of size bytes at addr and reports how many
// lines it touched and how many of those missed. An access spanning a line
// boundary touches every line it covers.
func (c *Cache) Access(addr uint64, size int) (lines, missed int) {
	if size <= 0 {
		size = 1
	}
	first := addr >> c.lineBits
	last := (addr + uint64(size) - 1) >> c.lineBits
	if first == last { // common case: the access fits in one line
		if c.touch(first) {
			return 1, 0
		}
		return 1, 1
	}
	for line := first; ; line++ {
		lines++
		if !c.touch(line) {
			missed++
		}
		if line == last {
			break
		}
	}
	return lines, missed
}

// touch looks up one line, installing it on a miss, and reports a hit.
//
// The per-set lastWay memo short-circuits the way scan when a set's most
// recently touched line is touched again — the dominant pattern for
// sequential traversals, where 16 consecutive 4-byte accesses share a line.
// The memo is self-validating (the tag is re-checked), and the fast path
// performs exactly the state transitions the full scan would on that hit, so
// hit/miss counts, stamps and evictions are bit-identical with or without it.
func (c *Cache) touch(line uint64) bool {
	// Tag 0 marks an invalid way; offset real tags by 1 so line 0 is valid.
	tag := line + 1
	set := int(line) % c.sets
	base := set * c.ways
	c.clock++
	if i := base + int(c.lastWay[set]); c.data[i].tag == tag {
		c.data[i].stamp = c.clock
		c.hits++
		return true
	}
	victim, oldest := base, c.data[base].stamp
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.data[i].tag == tag {
			c.data[i].stamp = c.clock
			c.hits++
			c.lastWay[set] = int32(w)
			return true
		}
		if c.data[i].stamp < oldest {
			victim, oldest = i, c.data[i].stamp
		}
	}
	c.data[victim] = cacheWay{tag: tag, stamp: c.clock}
	c.misses++
	c.lastWay[set] = int32(victim - base)
	return false
}

// Hits reports the number of line hits since construction or Reset.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses reports the number of line misses since construction or Reset.
func (c *Cache) Misses() uint64 { return c.misses }

// Reset invalidates every line and zeroes the counters.
func (c *Cache) Reset() {
	for i := range c.data {
		c.data[i] = cacheWay{}
	}
	for i := range c.lastWay {
		c.lastWay[i] = 0
	}
	c.clock = 0
	c.hits = 0
	c.misses = 0
}
