// Package energy implements the calibrated energy/time cost model that
// underlies the simulated RAPL counters.
//
// The model is deliberately simple but mechanistic: every abstract operation
// executed by the mini-Java interpreter (or any other client) is charged a
// fixed number of picojoules and CPU cycles, and every memory access is
// routed through a small set-associative cache model whose hits and misses
// carry different costs. Package-domain energy additionally accrues a static
// (leakage + uncore) power term proportional to elapsed cycle time, so
// "package" and "core" improvements diverge slightly, as they do on real
// hardware and in the paper's Table IV.
//
// Absolute numbers are arbitrary; what is calibrated are the *ratios*
// reported by the paper's Table I (see costs.go). All downstream results are
// produced by executing programs against this model, never by emitting the
// calibration constants directly.
package energy

import "fmt"

// Joules is an energy amount in joules.
type Joules float64

// Picojoules converts a picojoule count to Joules.
func Picojoules(pj float64) Joules { return Joules(pj * 1e-12) }

// Microjoules reports the value in microjoules.
func (j Joules) Microjoules() float64 { return float64(j) * 1e6 }

// String formats the energy with an adaptive SI prefix.
func (j Joules) String() string {
	v := float64(j)
	switch {
	case v == 0:
		return "0 J"
	case v < 1e-9:
		return fmt.Sprintf("%.3f pJ", v*1e12)
	case v < 1e-6:
		return fmt.Sprintf("%.3f nJ", v*1e9)
	case v < 1e-3:
		return fmt.Sprintf("%.3f µJ", v*1e6)
	case v < 1:
		return fmt.Sprintf("%.3f mJ", v*1e3)
	default:
		return fmt.Sprintf("%.3f J", v)
	}
}

// Op identifies an abstract operation kind charged to the meter.
type Op int

// Abstract operation kinds. The groupings mirror the Java components the
// paper's Table I analyses: integer vs non-int primitive arithmetic, modulus,
// static vs local variable access, ternary selection, String operations,
// boxing, array copying, exceptions, and allocation.
const (
	// Integer ALU operations (int-width add/sub/mul/compare/bitops).
	OpArithInt Op = iota
	// Narrow-primitive ALU op (byte/short/char): extra mask/sign-extend work.
	OpArithNarrow
	// 64-bit integer ALU op (long).
	OpArithLong
	// Single-precision FP op (float).
	OpArithFloat
	// Double-precision FP op (double).
	OpArithDouble
	// Integer division.
	OpDivInt
	// Integer modulus — the paper's most expensive arithmetic operator.
	OpModInt
	// FP division / modulus.
	OpDivFP
	// Conditional branch (if, loop back-edge, short-circuit step).
	OpBranch
	// Ternary ?: selection (charged in addition to evaluating the operands).
	OpTernary
	// Local variable read or write.
	OpLocal
	// Instance field read or write (plus a cache access).
	OpField
	// Static field read or write — dramatically expensive per the paper.
	OpStatic
	// Array element read or write (plus a cache access).
	OpArrayElem
	// Array bounds check.
	OpBoundsCheck
	// Method call / return overhead.
	OpCall
	// Object allocation (fixed header cost; fields add OpField stores).
	OpAllocObject
	// Array allocation per element.
	OpAllocArrayElem
	// Boxing a value into a cached wrapper (Integer in [-128,127]).
	OpBoxCached
	// Boxing a value into a freshly allocated wrapper.
	OpBoxAlloc
	// Unboxing a wrapper.
	OpUnbox
	// String concatenation via '+': per-character copy into a fresh string.
	OpStrConcatChar
	// StringBuilder.append: per-character amortized copy.
	OpSBAppendChar
	// String.equals: per-character comparison (early exit on length).
	OpStrEqualsChar
	// String.compareTo: per-character difference computation.
	OpStrCompareToChar
	// Fixed setup cost of a String method call.
	OpStrSetup
	// System.arraycopy: per-element block copy (word-at-a-time, no checks).
	OpArraycopyElem
	// Evaluating a numeric literal written in plain decimal notation.
	OpConstDecimal
	// Evaluating a numeric literal written in scientific notation.
	OpConstSci
	// Throwing an exception (stack walk).
	OpThrow
	// Entering a catch handler.
	OpCatch
	// try block entry bookkeeping.
	OpTryEnter

	numOps // sentinel
)

var opNames = [...]string{
	OpArithInt:         "arith.int",
	OpArithNarrow:      "arith.narrow",
	OpArithLong:        "arith.long",
	OpArithFloat:       "arith.float",
	OpArithDouble:      "arith.double",
	OpDivInt:           "div.int",
	OpModInt:           "mod.int",
	OpDivFP:            "div.fp",
	OpBranch:           "branch",
	OpTernary:          "ternary",
	OpLocal:            "local",
	OpField:            "field",
	OpStatic:           "static",
	OpArrayElem:        "array.elem",
	OpBoundsCheck:      "bounds",
	OpCall:             "call",
	OpAllocObject:      "alloc.object",
	OpAllocArrayElem:   "alloc.array",
	OpBoxCached:        "box.cached",
	OpBoxAlloc:         "box.alloc",
	OpUnbox:            "unbox",
	OpStrConcatChar:    "str.concat",
	OpSBAppendChar:     "sb.append",
	OpStrEqualsChar:    "str.equals",
	OpStrCompareToChar: "str.compareTo",
	OpStrSetup:         "str.setup",
	OpArraycopyElem:    "arraycopy",
	OpConstDecimal:     "const.decimal",
	OpConstSci:         "const.sci",
	OpThrow:            "throw",
	OpCatch:            "catch",
	OpTryEnter:         "try",
}

// String returns the mnemonic name of the operation.
func (op Op) String() string {
	if op < 0 || int(op) >= len(opNames) {
		return fmt.Sprintf("op(%d)", int(op))
	}
	return opNames[op]
}

// NumOps is the number of distinct operation kinds.
const NumOps = int(numOps)

// Cost is the energy and cycle charge for one operation.
type Cost struct {
	Picojoules float64
	Cycles     float64
}

// CostTable maps every Op to its Cost, and carries the memory-hierarchy and
// platform parameters.
type CostTable struct {
	Ops [NumOps]Cost

	// CacheHit / CacheMiss are charged per memory access routed through the
	// cache model, on top of the op's own cost.
	CacheHit  Cost
	CacheMiss Cost

	// FrequencyHz converts cycles to seconds.
	FrequencyHz float64

	// UncoreWatts is static package power (leakage + uncore) charged per
	// second of modelled time; it is the difference between the package and
	// core (PP0) domains.
	UncoreWatts float64

	// DRAMJoulesPerMiss is the DRAM-domain energy charged per cache miss.
	DRAMJoulesPerMiss float64
}

// Validate checks that the table is fully populated and physically sane.
func (t *CostTable) Validate() error {
	for op := 0; op < NumOps; op++ {
		c := t.Ops[op]
		if c.Picojoules < 0 || c.Cycles < 0 {
			return fmt.Errorf("energy: op %v has negative cost", Op(op))
		}
		if c.Picojoules == 0 && c.Cycles == 0 {
			return fmt.Errorf("energy: op %v has no cost assigned", Op(op))
		}
	}
	if t.FrequencyHz <= 0 {
		return fmt.Errorf("energy: non-positive frequency %v", t.FrequencyHz)
	}
	if t.CacheMiss.Picojoules <= t.CacheHit.Picojoules {
		return fmt.Errorf("energy: cache miss (%v pJ) must cost more than hit (%v pJ)",
			t.CacheMiss.Picojoules, t.CacheHit.Picojoules)
	}
	if t.UncoreWatts < 0 || t.DRAMJoulesPerMiss < 0 {
		return fmt.Errorf("energy: negative platform parameter")
	}
	return nil
}
