// Package profile implements JEPO's method-granularity energy profiler. It
// receives the enter/exit events the instrumenter injects, reads the
// simulated (or real) RAPL counters at each event through the same sampler
// protocol hardware probes use, and records one measurement per method
// execution — "if one method is executed more than once, then the
// measurements are stored for each execution", as the paper specifies.
package profile

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"jepo/internal/energy"
	"jepo/internal/rapl"
)

// Record is one method execution's measurement.
type Record struct {
	Method  string
	Seq     int // execution index for this method, starting at 1
	Elapsed time.Duration
	Package energy.Joules
	Core    energy.Joules
	DRAM    energy.Joules
}

// Profiler implements interp.ProbeHook over a RAPL source.
type Profiler struct {
	src   rapl.Source
	clock func() time.Duration

	stack   []frame
	records []Record
	counts  map[string]int
	err     error
}

type frame struct {
	method string
	at     rapl.Snapshot
	t      time.Duration
}

// New builds a profiler reading from src. clock supplies modelled elapsed
// time (use the meter's snapshot elapsed time for simulated runs, or a
// wall-clock function for real powercap runs).
func New(src rapl.Source, clock func() time.Duration) *Profiler {
	return &Profiler{src: src, clock: clock, counts: map[string]int{}}
}

// Enter implements interp.ProbeHook.
func (p *Profiler) Enter(method string) {
	snap, err := p.src.Snapshot()
	if err != nil && p.err == nil {
		p.err = fmt.Errorf("profile: reading counters at enter of %s: %w", method, err)
		return
	}
	p.stack = append(p.stack, frame{method: method, at: snap, t: p.clock()})
}

// Exit implements interp.ProbeHook.
func (p *Profiler) Exit(method string) {
	if len(p.stack) == 0 {
		if p.err == nil {
			p.err = fmt.Errorf("profile: exit of %s with empty probe stack", method)
		}
		return
	}
	top := p.stack[len(p.stack)-1]
	p.stack = p.stack[:len(p.stack)-1]
	if top.method != method {
		if p.err == nil {
			p.err = fmt.Errorf("profile: probe mismatch: entered %s, exited %s", top.method, method)
		}
		return
	}
	snap, err := p.src.Snapshot()
	if err != nil {
		if p.err == nil {
			p.err = fmt.Errorf("profile: reading counters at exit of %s: %w", method, err)
		}
		return
	}
	d := snap.Sub(top.at)
	p.counts[method]++
	p.records = append(p.records, Record{
		Method:  method,
		Seq:     p.counts[method],
		Elapsed: p.clock() - top.t,
		Package: d.Package,
		Core:    d.Core,
		DRAM:    d.DRAM,
	})
}

// Err reports the first probe/counter error encountered, if any.
func (p *Profiler) Err() error { return p.err }

// Records returns every per-execution measurement in completion order.
func (p *Profiler) Records() []Record { return p.records }

// Summary is the aggregated per-method view.
type Summary struct {
	Method     string
	Executions int
	Elapsed    time.Duration // total inclusive time
	Package    energy.Joules // total inclusive package energy
	Core       energy.Joules
}

// Summaries aggregates records per method, ordered by descending package
// energy — the energy-hungry methods the paper's profiler surfaces first.
func (p *Profiler) Summaries() []Summary {
	agg := map[string]*Summary{}
	var order []string
	for _, r := range p.records {
		s, ok := agg[r.Method]
		if !ok {
			s = &Summary{Method: r.Method}
			agg[r.Method] = s
			order = append(order, r.Method)
		}
		s.Executions++
		s.Elapsed += r.Elapsed
		s.Package += r.Package
		s.Core += r.Core
	}
	out := make([]Summary, 0, len(order))
	for _, m := range order {
		out = append(out, *agg[m])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Package > out[j].Package })
	return out
}

// View renders the JEPO profiler view (Fig. 4): method name, execution time,
// energy consumed.
func (p *Profiler) View() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-48s %6s %14s %14s %14s\n", "Method", "Execs", "Time", "Package", "Core")
	for _, s := range p.Summaries() {
		fmt.Fprintf(&sb, "%-48s %6d %14s %14s %14s\n",
			s.Method, s.Executions, s.Elapsed.Round(time.Microsecond), s.Package, s.Core)
	}
	return sb.String()
}

// ResultTxt renders the per-execution log the plugin stores as result.txt in
// the project directory.
func (p *Profiler) ResultTxt() string {
	var sb strings.Builder
	sb.WriteString("# JEPO profiler result: method, execution, time_ns, package_uj, core_uj\n")
	for _, r := range p.records {
		fmt.Fprintf(&sb, "%s\t%d\t%d\t%.3f\t%.3f\n",
			r.Method, r.Seq, r.Elapsed.Nanoseconds(),
			r.Package.Microjoules(), r.Core.Microjoules())
	}
	return sb.String()
}

// WriteResultTxt writes ResultTxt to path.
func (p *Profiler) WriteResultTxt(path string) error {
	return os.WriteFile(path, []byte(p.ResultTxt()), 0o644)
}
