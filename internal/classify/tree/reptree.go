package tree

import (
	"fmt"

	"jepo/internal/classify"
	"jepo/internal/dataset"
)

// REPTree is WEKA's fast tree learner: information-gain splits and
// reduced-error pruning against a held-out fold (WEKA's default holds out one
// third of the training data).
type REPTree struct {
	// Folds controls the grow/prune split: 1/Folds of the data prunes
	// (default 3, as in WEKA).
	Folds int
	// MinLeaf is the minimum instances per leaf (default 2).
	MinLeaf int
	// NoPruning disables reduced-error pruning (WEKA -P).
	NoPruning bool

	opts classify.Options
	root *node
}

// NewREPTree builds a REPTree with WEKA defaults.
func NewREPTree(opts classify.Options) *REPTree {
	return &REPTree{Folds: 3, MinLeaf: 2, opts: opts}
}

// Name implements Classifier.
func (c *REPTree) Name() string { return "REPTree" }

// Train implements Classifier.
func (c *REPTree) Train(d *dataset.Dataset) error {
	if d.NumInstances() == 0 {
		return fmt.Errorf("reptree: empty training set")
	}
	rng := classify.NewRNG(c.opts.Seed)
	rows := allRows(d)
	// Shuffle, then carve off the prune fold.
	for i := len(rows) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		rows[i], rows[j] = rows[j], rows[i]
	}
	growRows, pruneRows := rows, []int(nil)
	if !c.NoPruning && c.Folds > 1 && len(rows) > 2*c.Folds {
		cut := len(rows) / c.Folds
		pruneRows, growRows = rows[:cut], rows[cut:]
	}
	b := &builder{cfg: builderConfig{
		gainRatio: false,
		minLeaf:   c.MinLeaf,
		fp:        c.opts.FP,
	}, d: d}
	c.root = b.grow(growRows, 0)
	if len(pruneRows) > 0 {
		c.reduceError(c.root, d, pruneRows)
	}
	return nil
}

// reduceError prunes bottom-up: a subtree becomes a leaf when doing so does
// not increase error on the prune set.
func (c *REPTree) reduceError(nd *node, d *dataset.Dataset, rows []int) {
	if nd.isLeaf() || len(rows) == 0 {
		return
	}
	// Partition prune rows among children.
	if nd.nominal {
		groups := make([][]int, len(nd.children))
		for _, r := range rows {
			v := int(d.X[r][nd.attr])
			if v >= 0 && v < len(groups) {
				groups[v] = append(groups[v], r)
			}
		}
		for v, ch := range nd.children {
			if ch != nil {
				c.reduceError(ch, d, groups[v])
			}
		}
	} else {
		var left, right []int
		for _, r := range rows {
			if d.X[r][nd.attr] <= nd.threshold {
				left = append(left, r)
			} else {
				right = append(right, r)
			}
		}
		c.reduceError(nd.children[0], d, left)
		c.reduceError(nd.children[1], d, right)
	}
	subtreeErrs := 0
	leafErrs := 0
	for _, r := range rows {
		if nd.predict(d.X[r]) != d.Class(r) {
			subtreeErrs++
		}
		if nd.pred != d.Class(r) {
			leafErrs++
		}
	}
	if leafErrs <= subtreeErrs {
		nd.attr = -1
		nd.children = nil
	}
}

// Predict implements Classifier.
func (c *REPTree) Predict(row []float64) int { return c.root.predict(row) }

// NumNodes reports the pruned tree size.
func (c *REPTree) NumNodes() int { return c.root.countNodes() }
