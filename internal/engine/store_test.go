package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func key(parts ...string) Key {
	h := NewKey("test")
	for _, p := range parts {
		h.Str(p)
	}
	return h.Key()
}

func TestKeyPartBoundaries(t *testing.T) {
	if key("ab", "c") == key("a", "bc") {
		t.Fatal("length prefixing failed: part boundaries do not affect the key")
	}
	if NewKey("stage1").Str("x").Key() == NewKey("stage2").Str("x").Key() {
		t.Fatal("stage name does not partition the key space")
	}
	// An int part and a string part with the same raw bytes must not collide.
	a := NewKey("s").Int(0).Key()
	b := NewKey("s").Str("").Key()
	if a == b {
		t.Fatal("int and string parts collide")
	}
}

func TestStoreEvictionLRU(t *testing.T) {
	s := newStore(2)
	s.put(key("a"), 1)
	s.put(key("b"), 2)
	if _, ok := s.get(key("a")); !ok { // touch a: b becomes LRU
		t.Fatal("a missing before eviction")
	}
	s.put(key("c"), 3)
	if s.len() != 2 {
		t.Fatalf("len = %d, want 2", s.len())
	}
	if _, ok := s.get(key("b")); ok {
		t.Fatal("b should have been evicted as least recently used")
	}
	if _, ok := s.get(key("a")); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if _, ok := s.get(key("c")); !ok {
		t.Fatal("c should be present")
	}
	if got := s.evictions.Load(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
}

func TestStoreCounters(t *testing.T) {
	s := newStore(8)
	s.get(key("x")) // miss
	s.put(key("x"), 1)
	s.get(key("x")) // hit
	s.get(key("x")) // hit
	if h, m := s.hits.Load(), s.misses.Load(); h != 2 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", h, m)
	}
}

func TestStoreDuplicatePutKeepsFirst(t *testing.T) {
	s := newStore(8)
	s.put(key("x"), "first")
	s.put(key("x"), "second")
	v, _ := s.get(key("x"))
	if v != "first" {
		t.Fatalf("duplicate put replaced value: got %v", v)
	}
	if s.len() != 1 {
		t.Fatalf("len = %d, want 1", s.len())
	}
}

func TestMemoErrorNotCached(t *testing.T) {
	e := New(Config{Capacity: 8})
	calls := 0
	build := func() (any, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("transient")
		}
		return "ok", nil
	}
	if _, err := e.Memo(key("m"), build); err == nil {
		t.Fatal("first build error swallowed")
	}
	v, err := e.Memo(key("m"), build)
	if err != nil || v != "ok" {
		t.Fatalf("second build: v=%v err=%v", v, err)
	}
	// Third call must hit the cache, not the builder.
	if _, err := e.Memo(key("m"), build); err != nil || calls != 2 {
		t.Fatalf("calls = %d, want 2 (success cached)", calls)
	}
}

func TestMemoDisabledAlwaysBuilds(t *testing.T) {
	e := New(Config{Disabled: true})
	calls := 0
	for i := 0; i < 3; i++ {
		if _, err := e.Memo(key("m"), func() (any, error) { calls++; return calls, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3 (disabled engine must not cache)", calls)
	}
	st := e.Stats()
	if !st.Disabled || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("disabled stats polluted: %+v", st)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := newStore(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(fmt.Sprintf("k%d", i%100))
				if _, ok := s.get(k); !ok {
					s.put(k, i)
				}
			}
		}(g)
	}
	wg.Wait()
	if s.len() > 64 {
		t.Fatalf("capacity breached: %d entries", s.len())
	}
}
