// Shared stdout renderers. The CLI commands and the jepod daemon both print
// through these helpers, so "byte-identical to the CLI" holds by
// construction: there is exactly one function that turns an analysis report
// (or a table) into user-facing bytes, and both surfaces call it. Anything
// timing-dependent — pool telemetry, cache statistics, dispatch ledgers —
// is excluded here and travels as progress events or stderr instead.
package service

import (
	"fmt"
	"sort"
	"strings"

	"jepo/internal/core"
	"jepo/internal/jmetrics"
	"jepo/internal/refactor"
	"jepo/internal/suggest"
	"jepo/internal/tables"
)

// RenderAnalyze is the exact stdout of `jepo analyze`.
func RenderAnalyze(rep *core.AnalysisReport) string {
	var sb strings.Builder
	sb.WriteString(core.AnalysisView(rep))
	fmt.Fprintf(&sb, "\n%d diagnostic(s), %d fix(es) accepted under measurement\n",
		len(rep.Diags), len(rep.Accepted()))
	return sb.String()
}

// RenderOptimize is the exact stdout of `jepo optimize` without -o/-dry: the
// change summary followed by every refactored source, in sorted path order.
// (The CLI historically iterated the project map directly; map iteration
// order is random, so sorted order is the only form both surfaces can agree
// on byte-for-byte.)
func RenderOptimize(refactored core.Project, res *refactor.Result) string {
	var sb strings.Builder
	sb.WriteString(RenderOptimizeSummary(res))
	paths := make([]string, 0, len(refactored))
	for path := range refactored {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		fmt.Fprintf(&sb, "\n--- %s (refactored) ---\n%s", path, refactored[path])
	}
	return sb.String()
}

// RenderOptimizeSummary is the change-count block alone (`jepo optimize -dry`).
func RenderOptimizeSummary(res *refactor.Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "applied %d change(s):\n", res.Changes)
	for _, r := range suggest.AllRules() {
		if n := res.ByRule[r]; n > 0 {
			fmt.Fprintf(&sb, "  %-30s %d\n", r.Component(), n)
		}
	}
	return sb.String()
}

// RenderProfile is the exact stdout of `jepo profile` up to (not including)
// the "per-execution log written to ..." line, which names a CLI-local path.
func RenderProfile(res *core.ProfileResult) string {
	var sb strings.Builder
	if res.Stdout != "" {
		sb.WriteString(res.Stdout)
		sb.WriteString("---\n")
	}
	sb.WriteString(res.View())
	fmt.Fprintf(&sb, "\ntotal: package=%v core=%v time=%v\n",
		res.Sample.Package, res.Sample.Core, res.Sample.Elapsed)
	fmt.Fprintf(&sb, "measurement health: %s\n", res.Profiler.Health())
	return sb.String()
}

// RenderTable1 is the exact stdout of `jepo table1`.
func RenderTable1(rows []tables.Table1Row) string {
	return tables.RenderTable1(rows)
}

// RenderTable2 is the exact stdout block of `wekaexp -table 2`.
func RenderTable2(rows []jmetrics.Metrics) string {
	return "=== Table II: WEKA classifier metrics ===\n" + jmetrics.Table(rows) + "\n"
}
