// Package instrument reproduces JEPO's profiler-side code injection. The
// paper injects MSR-reading probes into the bytecode of every method with
// Javassist; here the same effect is achieved as an AST transformation that
// wraps each method body in
//
//	JEPO.enter("pkg.Class.method");
//	try {
//	    ... original body ...
//	} finally {
//	    JEPO.exit("pkg.Class.method");
//	}
//
// The JEPO builtin routes the events to an interp.ProbeHook — the profile
// package implements the hook and takes the RAPL readings.
package instrument

import (
	"jepo/internal/minijava/ast"
)

// MethodName renders the profiler's fully qualified method label: the
// "method name with package and class name" the paper's Fig. 4 shows.
func MethodName(pkg, class, method string) string {
	if pkg == "" {
		return class + "." + method
	}
	return pkg + "." + class + "." + method
}

// Inject instruments every method (including constructors) of every class in
// the given files, in place, and returns the number of methods instrumented.
func Inject(files ...*ast.File) int {
	n := 0
	for _, f := range files {
		for _, c := range f.Classes {
			for _, m := range c.Methods {
				if m.Body == nil {
					continue
				}
				injectMethod(f.Package, c.Name, m)
				n++
			}
		}
	}
	return n
}

func injectMethod(pkg, class string, m *ast.Method) {
	name := MethodName(pkg, class, m.Name)
	pos := m.Pos
	probe := func(fn string) ast.Stmt {
		return &ast.ExprStmt{Pos: pos, X: &ast.Call{
			Pos:  pos,
			Recv: &ast.Ident{Pos: pos, Name: "JEPO"},
			Name: fn,
			Args: []ast.Expr{&ast.Literal{Pos: pos, Kind: ast.LitString, S: name,
				Raw: "\"" + name + "\""}},
		}}
	}
	original := &ast.Block{Pos: pos, Stmts: m.Body.Stmts}
	m.Body = &ast.Block{Pos: pos, Stmts: []ast.Stmt{
		probe("enter"),
		&ast.Try{
			Pos:     pos,
			Block:   original,
			Finally: &ast.Block{Pos: pos, Stmts: []ast.Stmt{probe("exit")}},
		},
	}}
}

// IsInstrumented reports whether a method already carries the probe pattern,
// so double instrumentation can be avoided.
func IsInstrumented(m *ast.Method) bool {
	if m.Body == nil || len(m.Body.Stmts) != 2 {
		return false
	}
	es, ok := m.Body.Stmts[0].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.Call)
	if !ok || call.Name != "enter" {
		return false
	}
	recv, ok := call.Recv.(*ast.Ident)
	if !ok || recv.Name != "JEPO" {
		return false
	}
	tr, ok := m.Body.Stmts[1].(*ast.Try)
	return ok && tr.Finally != nil
}

// mainFinder mirrors the plugin's behaviour of locating classes with a main
// method; when there is more than one the plugin asks the user (the CLI does
// the same via a flag).
func MainClasses(files ...*ast.File) []string {
	var out []string
	for _, f := range files {
		for _, c := range f.Classes {
			for _, m := range c.Methods {
				if m.Name == "main" && m.Mods.Has(ast.ModStatic) && len(m.Params) == 1 {
					out = append(out, c.Name)
				}
			}
		}
	}
	return out
}
