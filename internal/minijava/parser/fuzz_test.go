package parser

import (
	"testing"

	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/lexer"
)

// FuzzScan asserts the lexer never panics or loops on arbitrary input: it
// either produces a token stream ending in EOF or returns an error.
func FuzzScan(f *testing.F) {
	for _, seed := range []string{
		"", "class T { }", "int x = 5;", `"unterminated`, "'a'", "1e", "0x",
		"/* open", "a %= b << 3;", "1_000_000L", "\x00\xff", "class 🚀 {}",
		"for(;;){}", "новый int",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := lexer.Scan(src)
		if err != nil {
			return
		}
		if len(toks) == 0 {
			t.Fatal("no tokens and no error")
		}
		if toks[len(toks)-1].Kind.String() != "EOF" {
			t.Fatal("token stream not EOF-terminated")
		}
	})
}

// FuzzParse asserts the parser never panics, and that anything it accepts
// prints to source that re-parses (a printer/parser round-trip invariant).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"class T { }",
		"class T { int f(int a) { return a > 0 ? a : -a; } }",
		"class T { void f() { try { } catch (E e) { } finally { } } }",
		"class T { double[][] m = new double[3][4]; }",
		"class T { String s = \"x\" + 1 + true; }",
		"class T extends U { T() { this.x = 1; } }",
		"class T { void f() { for (int i = 0, j = 1; i < j; i++, j--) { } } }",
		"class T { static int x = 100000; }",
		"package p.q; import a.b.*; class T { }",
		"class T { boolean b = x instanceof Y; }",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse("fuzz.java", src)
		if err != nil {
			return
		}
		printed := ast.Print(file)
		if _, err := Parse("fuzz2.java", printed); err != nil {
			t.Fatalf("accepted source does not round-trip: %v\noriginal:\n%s\nprinted:\n%s",
				err, src, printed)
		}
	})
}
