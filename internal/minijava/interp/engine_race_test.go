package interp

import (
	"context"
	"math"
	"sync"
	"testing"

	"jepo/internal/energy"
	"jepo/internal/minijava/parser"
	"jepo/internal/sched"
)

// TestConcurrentInstancesShareProgram pins that a loaded Program (including
// its compiled bytecode and constant pools) is safe to share across
// interpreter instances: all mutable VM state — stacks, frame pools,
// monomorphic caches, meters — is per-instance. The race detector turns any
// shared-state slip into a hard failure under scripts/check.sh's
// `go test -race` gate.
func TestConcurrentInstancesShareProgram(t *testing.T) {
	src := `class B {
		static double f() {
			double s = 0.0;
			int[] a = new int[16];
			for (int i = 0; i < 16; i++) { a[i] = i * 3 - 7; }
			for (int i = 0; i < 200; i++) {
				s += a[i % 16] * 0.5;
				if (i % 7 == 0) { s = s * 1.01; }
			}
			return s;
		}
	}`
	f, err := parser.Parse("race.java", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []Engine{EngineVM, EngineAST} {
		engine := engine
		t.Run(engine.String(), func(t *testing.T) {
			const workers = 8
			results := make([]uint64, workers)
			joules := make([]uint64, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					in := New(prog, energy.NewMeter(energy.DefaultCosts()),
						WithMaxOps(10_000_000), WithEngine(engine))
					v, err := in.CallStatic("B", "f")
					if err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
					results[w] = math.Float64bits(v.D)
					joules[w] = math.Float64bits(float64(in.Meter().Snapshot().Package))
				}()
			}
			wg.Wait()
			for w := 1; w < workers; w++ {
				if results[w] != results[0] || joules[w] != joules[0] {
					t.Errorf("worker %d diverged: result %#x/%#x joules %#x/%#x",
						w, results[w], results[0], joules[w], joules[0])
				}
			}
		})
	}
}

// TestConcurrentQuickeningSharesProgram pins tier 2's central thread-safety
// claim: runtime quickening patches opcodes and fills inline caches only in
// per-instance warm code copies, never in the shared Program. Each worker
// runs a call/field/static/builtin-heavy program twice on one instance — the
// first run installs the quick forms, the second executes them — while every
// other worker does the same concurrently. The race detector catches any
// write to shared state; the bit-comparison (per run, across workers) catches
// any nondeterminism the patching could introduce. (The program deliberately
// has no static fields: static slots live in the shared Program — a tier-1
// design this PR does not change — so static-mutating programs are
// single-instance, exactly as they were on the tree-walker.)
func TestConcurrentQuickeningSharesProgram(t *testing.T) {
	src := `class C {
		int v;
		C(int v0) { this.v = v0; }
		int bump() { this.v += 3; return this.v; }
	}
	class B {
		static int twice(int x) { return x * 2; }
		static double f() {
			C c = new C(5);
			double s = 0.0;
			for (int i = 0; i < 150; i++) {
				int t = twice(i) - c.bump() % 7;
				s += Math.max(t % 11, c.v % 13) + Integer.valueOf(i).intValue();
			}
			return s + c.v;
		}
	}`
	f, err := parser.Parse("race.java", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const runs = 2
	var results [workers][runs]uint64
	var joules [workers][runs]uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			in := New(prog, energy.NewMeter(energy.DefaultCosts()), WithMaxOps(10_000_000))
			if err := in.InitStatics(); err != nil {
				t.Errorf("worker %d: init: %v", w, err)
				return
			}
			for r := 0; r < runs; r++ {
				v, err := in.CallStatic("B", "f")
				if err != nil {
					t.Errorf("worker %d run %d: %v", w, r, err)
					return
				}
				results[w][r] = math.Float64bits(v.D)
				joules[w][r] = math.Float64bits(float64(in.Meter().Snapshot().Package))
			}
		}()
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for r := 0; r < runs; r++ {
			if results[w][r] != results[0][r] || joules[w][r] != joules[0][r] {
				t.Errorf("worker %d run %d diverged: result %#x/%#x joules %#x/%#x",
					w, r, results[w][r], results[0][r], joules[w][r], joules[0][r])
			}
		}
	}
}

// TestSchedMapSharesProgram drives the same shared-Program invariant through
// the sched worker pool — the access pattern the parallel table generators
// use: one compiled Program, a fresh Interp and meter per task. The race
// detector guards the sharing; the bit-comparison guards determinism.
func TestSchedMapSharesProgram(t *testing.T) {
	src := `class B {
		static double f() {
			double s = 1.5;
			for (int i = 0; i < 300; i++) {
				s += (i % 5) * 0.25;
				if (i % 11 == 0) { s = s * 0.99; }
			}
			return s;
		}
	}`
	f, err := parser.Parse("race.java", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []Engine{EngineVM, EngineAST} {
		engine := engine
		t.Run(engine.String(), func(t *testing.T) {
			type outcome struct{ result, joules uint64 }
			run := func(jobs int) []outcome {
				out, _, err := sched.Map(context.Background(), sched.Config{Jobs: jobs, Seed: 7}, make([]struct{}, 24),
					func(task sched.Task, _ struct{}) (outcome, error) {
						in := New(prog, energy.NewMeter(energy.DefaultCosts()),
							WithMaxOps(10_000_000), WithEngine(engine))
						v, err := in.CallStatic("B", "f")
						if err != nil {
							return outcome{}, err
						}
						return outcome{
							result: math.Float64bits(v.D),
							joules: math.Float64bits(float64(in.Meter().Snapshot().Package)),
						}, nil
					})
				if err != nil {
					t.Fatal(err)
				}
				return out
			}
			want := run(1)
			for _, jobs := range []int{4, 8} {
				got := run(jobs)
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("jobs=%d task %d diverged: %+v vs sequential %+v", jobs, i, got[i], want[i])
					}
				}
			}
		})
	}
}
