package rapl

import (
	"encoding/json"
	"testing"
)

// TestHealthJSONRoundTrip pins the wire shape worker processes use to ship
// their degradation tallies to the dispatcher: every field must survive
// marshal/unmarshal exactly, and merged tallies must aggregate the same
// whether Add runs before or after the trip.
func TestHealthJSONRoundTrip(t *testing.T) {
	h := Health{
		Reads:           101,
		Retries:         7,
		Interpolated:    3,
		Fallbacks:       2,
		Discontinuities: 1,
		Quarantined:     4,
		Resets:          5,
	}
	blob, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Health
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatalf("round trip drifted: sent %+v, got %+v", h, back)
	}
	if !back.Degraded() {
		t.Error("degradation flag lost across the wire")
	}

	// Field names are protocol: an older dispatcher must still find them.
	var fields map[string]int
	if err := json.Unmarshal(blob, &fields); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"reads", "retries", "interpolated", "fallbacks", "discontinuities", "quarantined", "resets"} {
		if _, ok := fields[name]; !ok {
			t.Errorf("wire field %q missing from %s", name, blob)
		}
	}

	// Zero value round-trips to zero value — a clean worker reports clean.
	var zero Health
	blob, err = json.Marshal(zero)
	if err != nil {
		t.Fatal(err)
	}
	var zback Health
	if err := json.Unmarshal(blob, &zback); err != nil {
		t.Fatal(err)
	}
	if zback != (Health{}) || zback.Degraded() {
		t.Errorf("zero health round-tripped to %+v", zback)
	}
}

// TestHealthAddMerge: dispatcher-side aggregation must commute with the
// wire — unmarshal(a)+unmarshal(b) equals unmarshal of nothing plus the
// field-wise sums, for every field.
func TestHealthAddMerge(t *testing.T) {
	a := Health{Reads: 10, Retries: 1, Interpolated: 2, Resets: 3}
	b := Health{Reads: 5, Fallbacks: 4, Discontinuities: 1, Quarantined: 2, Resets: 1}

	trip := func(h Health) Health {
		blob, err := json.Marshal(h)
		if err != nil {
			t.Fatal(err)
		}
		var back Health
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatal(err)
		}
		return back
	}

	want := Health{
		Reads:           15,
		Retries:         1,
		Interpolated:    2,
		Fallbacks:       4,
		Discontinuities: 1,
		Quarantined:     2,
		Resets:          4,
	}
	if got := a.Add(b); got != want {
		t.Errorf("Add = %+v, want %+v", got, want)
	}
	if got := trip(a).Add(trip(b)); got != want {
		t.Errorf("Add after round trip = %+v, want %+v", got, want)
	}
	if got := trip(a.Add(b)); got != want {
		t.Errorf("round trip after Add = %+v, want %+v", got, want)
	}
	if a.Add(b) != b.Add(a) {
		t.Error("Add is not commutative")
	}
}
