package lazy

import (
	"math"
	"testing"

	"jepo/internal/classify"
	"jepo/internal/dataset"
)

func clusters(n int, seed uint64) *dataset.Dataset {
	// Two Gaussian-ish blobs plus a matching nominal attribute.
	d := dataset.New("blobs", 2,
		dataset.NewNumeric("x"),
		dataset.NewNominal("tag", "a", "b"),
		dataset.NewNominal("y", "left", "right"),
	)
	r := classify.NewRNG(seed)
	for i := 0; i < n; i++ {
		cls := float64(i % 2)
		center := -3.0
		if cls == 1 {
			center = 3.0
		}
		x := center + (r.Float64()-0.5)*2
		d.Add([]float64{x, cls, cls})
	}
	return d
}

func acc(c classify.Classifier, d *dataset.Dataset) float64 {
	correct := 0
	for i, row := range d.X {
		if c.Predict(row) == d.Class(i) {
			correct++
		}
	}
	return 100 * float64(correct) / float64(d.NumInstances())
}

func TestIBkOneNearestNeighbour(t *testing.T) {
	d := clusters(100, 1)
	c := NewIBk(classify.Options{}, 1)
	if err := c.Train(d); err != nil {
		t.Fatal(err)
	}
	if p := c.Predict([]float64{-3, 0, math.NaN()}); p != 0 {
		t.Errorf("left blob predicted %d", p)
	}
	if p := c.Predict([]float64{3, 1, math.NaN()}); p != 1 {
		t.Errorf("right blob predicted %d", p)
	}
	if a := acc(c, d); a != 100 {
		t.Errorf("1-NN training accuracy = %.1f%%, want 100%%", a)
	}
}

func TestIBkKVoting(t *testing.T) {
	// One mislabeled point: 1-NN memorizes it, 5-NN outvotes it.
	d := clusters(60, 2)
	d.X[0][2] = 1 - d.X[0][2] // flip one label near the left blob
	one := NewIBk(classify.Options{}, 1)
	one.Train(d)
	five := NewIBk(classify.Options{}, 5)
	five.Train(d)
	probe := []float64{d.X[0][0], d.X[0][1], math.NaN()}
	if one.Predict(probe) == five.Predict(probe) {
		t.Skip("noise point not isolated enough to differentiate k; acceptable")
	}
	if five.Predict(probe) != 0 {
		t.Errorf("5-NN failed to outvote the flipped label")
	}
}

func TestIBkKClamp(t *testing.T) {
	d := clusters(4, 3)
	c := NewIBk(classify.Options{}, 100) // k > n must clamp, not panic
	if err := c.Train(d); err != nil {
		t.Fatal(err)
	}
	if p := c.Predict(d.X[0]); p != 0 && p != 1 {
		t.Errorf("prediction = %d", p)
	}
	if NewIBk(classify.Options{}, 0).K != 1 {
		t.Error("k=0 must default to 1")
	}
}

func TestKStarLearnsClusters(t *testing.T) {
	d := clusters(100, 1)
	c := NewKStar(classify.Options{})
	if err := c.Train(d); err != nil {
		t.Fatal(err)
	}
	if a := acc(c, d); a < 98 {
		t.Errorf("KStar training accuracy = %.1f%%", a)
	}
	if p := c.Predict([]float64{-2.8, 0, math.NaN()}); p != 0 {
		t.Errorf("KStar left blob predicted %d", p)
	}
}

func TestKStarBlendAffectsSmoothing(t *testing.T) {
	d := clusters(80, 4)
	sharp := NewKStar(classify.Options{})
	sharp.Blend = 5
	smooth := NewKStar(classify.Options{})
	smooth.Blend = 90
	sharp.Train(d)
	smooth.Train(d)
	// Both must classify blob centers correctly regardless of blend.
	for _, probe := range [][]float64{{-3, 0, math.NaN()}, {3, 1, math.NaN()}} {
		want := 0
		if probe[0] > 0 {
			want = 1
		}
		if sharp.Predict(probe) != want || smooth.Predict(probe) != want {
			t.Errorf("blend variants disagree on blob center %v", probe)
		}
	}
}

func TestLazyEmptyAndMissing(t *testing.T) {
	d := clusters(10, 5)
	if err := NewIBk(classify.Options{}, 1).Train(d.Empty()); err == nil {
		t.Error("IBk accepted empty data")
	}
	if err := NewKStar(classify.Options{}).Train(d.Empty()); err == nil {
		t.Error("KStar accepted empty data")
	}
	c := NewIBk(classify.Options{}, 3)
	c.Train(d)
	// Missing attribute values contribute maximal distance, not a panic.
	if p := c.Predict([]float64{math.NaN(), math.NaN(), math.NaN()}); p != 0 && p != 1 {
		t.Errorf("all-missing prediction = %d", p)
	}
}
