package tree

import (
	"fmt"
	"runtime"
	"sync"

	"jepo/internal/classify"
	"jepo/internal/dataset"
)

// RandomForest is bagging over RandomTrees with probability voting, as in
// WEKA's RandomForest. Like WEKA's -num-slots option, training can run the
// trees in parallel; results are identical regardless of parallelism because
// every tree draws from its own seed-derived random stream.
type RandomForest struct {
	// Trees is the ensemble size (WEKA default 100; the experiment harness
	// uses a smaller forest to keep simulated runs tractable).
	Trees int
	// Slots is the number of trees trained concurrently (WEKA's
	// numExecutionSlots). 0 = GOMAXPROCS, 1 = sequential.
	Slots int

	opts   classify.Options
	ntrees []*RandomTree
	nc     int
}

// NewRandomForest builds a forest with the given ensemble size (0 → 20).
func NewRandomForest(opts classify.Options, trees int) *RandomForest {
	if trees <= 0 {
		trees = 20
	}
	return &RandomForest{Trees: trees, Slots: 1, opts: opts}
}

// Name implements Classifier.
func (c *RandomForest) Name() string { return "RandomForest" }

// treeSeed derives an independent, deterministic stream seed for tree t.
func (c *RandomForest) treeSeed(t int) uint64 {
	z := c.opts.Seed + 0x9E3779B97F4A7C15*uint64(t+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Train implements Classifier.
func (c *RandomForest) Train(d *dataset.Dataset) error {
	if d.NumInstances() == 0 {
		return fmt.Errorf("randomforest: empty training set")
	}
	c.nc = d.NumClasses()
	c.ntrees = make([]*RandomTree, c.Trees)
	n := d.NumInstances()

	trainOne := func(t int) error {
		rng := classify.NewRNG(c.treeSeed(t))
		sample := make([]int, n)
		for i := range sample {
			sample[i] = rng.Intn(n)
		}
		rt := NewRandomTree(c.opts)
		if err := rt.trainRows(d, sample, rng); err != nil {
			return err
		}
		c.ntrees[t] = rt
		return nil
	}

	slots := c.Slots
	if slots <= 0 {
		slots = runtime.GOMAXPROCS(0)
	}
	if slots == 1 {
		for t := 0; t < c.Trees; t++ {
			if err := trainOne(t); err != nil {
				return err
			}
		}
		return nil
	}

	// Worker pool over tree indices; each slot writes only its own cells of
	// c.ntrees, so no further synchronization is needed.
	work := make(chan int)
	errs := make(chan error, slots)
	var wg sync.WaitGroup
	for s := 0; s < slots; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range work {
				if err := trainOne(t); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}()
	}
	for t := 0; t < c.Trees; t++ {
		work <- t
	}
	close(work)
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}
	for t, rt := range c.ntrees {
		if rt == nil {
			return fmt.Errorf("randomforest: tree %d was not trained (worker aborted)", t)
		}
	}
	return nil
}

// Predict implements Classifier: average the trees' leaf distributions.
func (c *RandomForest) Predict(row []float64) int {
	votes := make([]float64, c.nc)
	fp := c.opts.FP
	for _, t := range c.ntrees {
		dist := t.distribution(row)
		total := 0.0
		for _, v := range dist {
			total += v
		}
		if total == 0 {
			continue
		}
		for k, v := range dist {
			votes[k] = fp.R(votes[k] + v/total)
		}
	}
	return classify.ArgMax(votes)
}
