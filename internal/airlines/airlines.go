// Package airlines generates a synthetic stand-in for the MOA "Airlines"
// dataset the paper evaluates on (Table III): 8 attributes — Airline (18
// nominal values), Flight (numeric), AirportFrom and AirportTo (293 nominal
// values), DayOfWeek (nominal), Time (numeric), Length (numeric) and the
// binary Delay class. The full MOA file has 539,383 instances; the paper
// reduces it to 10,000 for heap reasons, and the experiment harness here does
// the same.
//
// The generator is seeded and deterministic. Delay is drawn from a logistic
// model over airline bias, airport congestion, time of day, day of week and
// flight length, with noise, so the dataset is genuinely learnable (roughly
// two thirds of instances are predictable) without being trivial — matching
// the difficulty regime of the real data, where WEKA classifiers sit in the
// 55–67% accuracy band.
package airlines

import (
	"fmt"
	"math"

	"jepo/internal/dataset"
)

// FullSize is the size of the real MOA airlines dataset.
const FullSize = 539383

// PaperSize is the reduced instance count the paper evaluates with.
const PaperSize = 10000

// Schema cardinalities from Table III.
const (
	NumAirlines = 18
	NumAirports = 293
)

// Attrs builds the Table III schema. The class (Delay) is the last attribute.
func Attrs() []*dataset.Attribute {
	airlines := make([]string, NumAirlines)
	for i := range airlines {
		airlines[i] = fmt.Sprintf("AL%02d", i)
	}
	airports := make([]string, NumAirports)
	for i := range airports {
		airports[i] = fmt.Sprintf("AP%03d", i)
	}
	days := []string{"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"}
	return []*dataset.Attribute{
		dataset.NewNominal("Airline", airlines...),
		dataset.NewNumeric("Flight"),
		dataset.NewNominal("AirportFrom", airports...),
		dataset.NewNominal("AirportTo", airports...),
		dataset.NewNominal("DayOfWeek", days...),
		dataset.NewNumeric("Time"),
		dataset.NewNumeric("Length"),
		dataset.NewNominal("Delay", "0", "1"),
	}
}

// Column indices in the schema.
const (
	ColAirline = iota
	ColFlight
	ColFrom
	ColTo
	ColDayOfWeek
	ColTime
	ColLength
	ColDelay
)

type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) f64() float64   { return float64(r.next()>>11) / float64(1<<53) }
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// gauss draws a standard normal via Box–Muller.
func (r *rng) gauss() float64 {
	u1 := r.f64()
	for u1 == 0 {
		u1 = r.f64()
	}
	u2 := r.f64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Generate builds n instances with the given seed.
func Generate(n int, seed uint64) *dataset.Dataset {
	r := &rng{s: seed}
	d := dataset.New("airlines-synthetic", ColDelay, Attrs()...)

	// Latent structure: per-airline punctuality bias and per-airport
	// congestion, drawn once from the seed.
	airlineBias := make([]float64, NumAirlines)
	for i := range airlineBias {
		airlineBias[i] = 0.8 * r.gauss()
	}
	congestion := make([]float64, NumAirports)
	for i := range congestion {
		congestion[i] = 0.6 * r.gauss()
	}

	for i := 0; i < n; i++ {
		airline := r.intn(NumAirlines)
		flight := float64(1 + r.intn(7500))
		from := r.intn(NumAirports)
		to := r.intn(NumAirports)
		for to == from {
			to = r.intn(NumAirports)
		}
		day := r.intn(7)
		tmin := float64(10 + r.intn(1430)) // minutes from midnight
		length := 20 + 600*r.f64()*r.f64() // short flights more common

		// Logistic delay model: evenings, Fridays/Sundays, congested
		// airports and long flights are late more often.
		evening := (tmin - 720) / 720 // −1 (midnight) … +1 (23:59)
		dayEffect := 0.0
		if day == 4 || day == 6 { // Fri, Sun
			dayEffect = 0.5
		}
		z := 0.1 +
			airlineBias[airline] +
			0.7*congestion[from] + 0.5*congestion[to] +
			0.9*evening +
			dayEffect +
			0.0015*(length-220) +
			0.9*r.gauss() // irreducible noise
		delay := 0.0
		if 1/(1+math.Exp(-z)) > 0.5 {
			delay = 1
		}
		row := []float64{float64(airline), flight, float64(from), float64(to),
			float64(day), tmin, length, delay}
		if err := d.Add(row); err != nil {
			// The generator always produces schema-conformant rows.
			panic(err)
		}
	}
	return d
}

// TableIII renders the schema table the paper prints (attribute name, type).
func TableIII() string {
	out := "Attributes      Type\n"
	for _, a := range Attrs() {
		kind := a.Kind.String()
		if a.Name == "Delay" {
			kind = "Binary"
		}
		out += fmt.Sprintf("%-15s %s\n", a.Name, kind)
	}
	return out
}
