// The dist benchmark (jperf bench -dist) measures what the fault-tolerant
// process dispatcher buys on this machine: wall-clock and rows/s for three
// real campaigns — a reduced Table IV, a corpus-wide pass analysis and a
// cross-validation — at workers {1, 2, 4}, where workers=1 runs inline on
// the dispatcher and workers>1 re-exec this binary as worker processes.
//
// As with the sched bench, determinism is asserted inside the bench: every
// distributed run's result fingerprint (every Joule-derived float64 as raw
// bits) must match the workers=1 run exactly, or the bench fails. Speedup
// is bounded by physical cores and pays a process/JSON round-trip per task,
// so small tasks measure dispatch overhead, not the fan-out ceiling.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"jepo/internal/core"
	"jepo/internal/dist"
	"jepo/internal/dist/campaigns"
	"jepo/internal/stats"
	"jepo/internal/tables"
)

// distPoint is one workers setting's measurement for a campaign.
type distPoint struct {
	Workers    int     `json:"workers"`
	Seconds    float64 `json:"seconds"`
	RowsPerSec float64 `json:"rows_per_sec"`
	Speedup    float64 `json:"speedup_vs_inline"`
	// BitIdentical reports the in-bench determinism check against the
	// workers=1 fingerprint.
	BitIdentical bool `json:"bit_identical"`
	Quarantined  int  `json:"quarantined"`
}

// distWorkload is one benchmarked campaign.
type distWorkload struct {
	Name   string      `json:"name"`
	Tasks  int         `json:"tasks"`
	Points []distPoint `json:"points"`
}

// distBenchReport is the BENCH_dist.json document.
type distBenchReport struct {
	GeneratedAt string         `json:"generated_at"`
	GoVersion   string         `json:"go_version"`
	NumCPU      int            `json:"num_cpu"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	Note        string         `json:"note"`
	Workloads   []distWorkload `json:"workloads"`
}

var distBenchWorkers = []int{1, 2, 4}

const distBenchSeed = 20200518

// distBenchCfg is the dispatcher config the bench uses: real re-exec'd
// worker processes, bounded retries, a generous deadline (the bench injects
// no faults; quarantines here would mean real infrastructure trouble).
func distBenchCfg(workers int) dist.Config {
	return dist.Config{
		Workers:  workers,
		Seed:     distBenchSeed,
		Retries:  2,
		Deadline: 30 * time.Second,
	}
}

// runDistBench measures every campaign at every workers setting and writes
// the report. A fingerprint mismatch is a correctness failure and aborts.
func runDistBench(ctx context.Context, out string) error {
	report := distBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Note: "workers=1 runs inline; workers>1 re-execs this binary as worker processes; " +
			"results are asserted bit-identical at every workers value",
	}

	workloads := []struct {
		name string
		run  func(workers int) (string, int, dist.Report, error)
	}{
		{"table4-reduced", func(w int) (string, int, dist.Report, error) { return distBenchTable4(ctx, w) }},
		{"corpus-analyze", func(w int) (string, int, dist.Report, error) { return distBenchCorpus(ctx, w) }},
		{"cvfold", func(w int) (string, int, dist.Report, error) { return distBenchCV(ctx, w) }},
	}
	for _, w := range workloads {
		var wl distWorkload
		wl.Name = w.name
		var seqFP string
		var seq float64
		for _, workers := range distBenchWorkers {
			t0 := time.Now()
			fp, tasks, rep, err := w.run(workers)
			if err != nil {
				return fmt.Errorf("%s workers=%d: %w", w.name, workers, err)
			}
			secs := time.Since(t0).Seconds()
			wl.Tasks = tasks
			if workers == 1 {
				seqFP, seq = fp, secs
			}
			identical := fp == seqFP
			wl.Points = append(wl.Points, distPoint{
				Workers:      workers,
				Seconds:      secs,
				RowsPerSec:   float64(tasks) / secs,
				Speedup:      seq / secs,
				BitIdentical: identical,
				Quarantined:  rep.Quarantines,
			})
			fmt.Printf("%-16s workers=%d %8.2fs %8.1f rows/s (%.2fx)\n",
				w.name, workers, secs, float64(tasks)/secs, seq/secs)
			if !identical {
				return fmt.Errorf("%s: workers=%d results are NOT bit-identical to inline", w.name, workers)
			}
		}
		report.Workloads = append(report.Workloads, wl)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d workloads)\n", out, len(report.Workloads))
	return nil
}

// distBenchTable4 regenerates a reduced Table IV through the dispatcher and
// fingerprints every column's bits.
func distBenchTable4(ctx context.Context, workers int) (string, int, dist.Report, error) {
	cfg := tables.Table4Config{
		Seed:      distBenchSeed,
		Instances: 400,
		Reps:      1,
		Protocol:  stats.Protocol{Runs: 3, MaxRounds: 2},
		CVFolds:   3,
		Quiet:     true,
	}
	rows, rep, err := campaigns.Table4Rows(ctx, distBenchCfg(workers), cfg)
	if err != nil {
		return "", 0, rep, err
	}
	var sb strings.Builder
	for _, r := range rows {
		if r.Err != "" {
			return "", 0, rep, fmt.Errorf("%s: %s", r.Classifier, r.Err)
		}
		fmt.Fprintf(&sb, "%s|%d|%x|%x|%x|%x\n", r.Classifier, r.Changes,
			math.Float64bits(r.PackagePct), math.Float64bits(r.CPUPct),
			math.Float64bits(r.TimePct), math.Float64bits(r.AccuracyPct))
	}
	return sb.String(), len(rows), rep, nil
}

// distBenchCorpus fans the pass engine across one classifier closure and
// fingerprints the reconstructed per-file summaries plus the rendered view.
func distBenchCorpus(ctx context.Context, workers int) (string, int, dist.Report, error) {
	crep, rep, err := campaigns.AnalyzeCorpus(ctx, distBenchCfg(workers), "RandomTree", distBenchSeed, 0)
	if err != nil {
		return "", 0, rep, err
	}
	var sb strings.Builder
	for _, fa := range crep.Files {
		fmt.Fprintf(&sb, "%s|%d\n", fa.Path, len(fa.Report.Diags))
		for _, d := range fa.Report.Diags {
			fmt.Fprintf(&sb, "  %d|%d\n", int(d.Rule), int(d.Severity))
		}
	}
	sb.WriteString(core.CorpusView(crep))
	return sb.String(), len(crep.Files), rep, nil
}

// distBenchCV cross-validates one randomized classifier and fingerprints
// the merged result, per-fold accuracy bits included.
func distBenchCV(ctx context.Context, workers int) (string, int, dist.Report, error) {
	p := campaigns.CVParams{Classifier: "RandomTree", Seed: distBenchSeed, Folds: 6, Instances: 800}
	res, rep, err := campaigns.CrossValidate(ctx, distBenchCfg(workers), p)
	if err != nil {
		return "", 0, rep, err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s|%d|%d\n", res.Name, res.Correct, res.Total)
	for _, acc := range res.PerFold {
		fmt.Fprintf(&sb, "%x\n", math.Float64bits(acc))
	}
	for _, row := range res.Confusion {
		fmt.Fprintln(&sb, row)
	}
	return sb.String(), p.Folds, rep, nil
}
