// Demonstration corpus for `jepo analyze`: each method trips a different
// Table I rule, and the program has a runnable main, so every mechanical fix
// is verified with a measured before/after energy delta. scripts/check.sh
// diffs the analyzer's output over this directory against the checked-in
// golden listing (golden_analyze.txt) to catch rule drift.
class EnergyDemo {
	static long total;

	static int mod(int n) {
		int s = 0;
		for (int i = 0; i < n; i++) {
			s = s + i % 8;
		}
		return s;
	}

	static int copy(int n) {
		int[] src = new int[n];
		int[] dst = new int[n];
		for (int i = 0; i < n; i++) {
			src[i] = i;
		}
		for (int i = 0; i < n; i++) {
			dst[i] = src[i];
		}
		return dst[n - 1];
	}

	static int join(int n) {
		String s = "";
		for (int i = 0; i < n; i++) {
			s = s + "x";
		}
		return s.length();
	}

	static int cmp(String a, String b, int n) {
		int k = 0;
		for (int i = 0; i < n; i++) {
			if (a.compareTo(b) == 0) {
				k = k + 1;
			}
		}
		return k;
	}

	static int sweepBig(int n) {
		int[][] m = new int[128][128];
		int s = 0;
		for (int j = 0; j < 128; j++) {
			for (int i = 0; i < 128; i++) {
				s = s + m[i][j] + i + j;
			}
		}
		return s + n;
	}

	// Column-major on a matrix this small stays cache-resident, so the
	// interchange buys no misses and only adds inner-loop bookkeeping: the
	// measured delta is negative and the analyzer refuses the fix.
	static int sweepSmall(int n) {
		int[][] m = new int[60][8];
		int s = 0;
		for (int j = 0; j < 8; j++) {
			for (int i = 0; i < 60; i++) {
				s = s + m[i][j];
			}
		}
		return s + n;
	}

	static double accumulate(int n) {
		double sum = 0.0;
		for (int i = 0; i < n; i++) {
			sum = sum + 100000.0;
			total = total + 1;
		}
		return sum;
	}

	static int box(int n) {
		Long wide = Long.valueOf(7);
		return n + wide.intValue();
	}

	static boolean gate(int a, int b) {
		return a > 0 && b > 0 && a != b;
	}

	public static void main(String[] args) {
		int a = mod(400);
		int b = copy(300);
		int c = join(120);
		int d = cmp("alpha", "beta", 100);
		int e = sweepBig(5) + sweepSmall(2);
		double f = accumulate(200);
		int g = box(3);
		int v = a > b ? a : b;
		if (gate(a, b)) {
			v = v + 1;
		}
		System.out.println(v + b + c + d + e + g + f);
	}
}
