// Compiler unit tests. They live in an external test package because
// Compile consumes the frame-slot annotations interp's load-time resolver
// leaves on the AST — the tests parse and Load a program first, then compile
// individual methods directly.
package bytecode_test

import (
	"strings"
	"testing"

	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/bytecode"
	"jepo/internal/minijava/interp"
	"jepo/internal/minijava/parser"
)

// compileMethod parses src, resolves it through interp.Load, and compiles
// the named method of the first class.
func compileMethod(t *testing.T, src, method string) *bytecode.Func {
	t.Helper()
	f, err := parser.Parse("t.java", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := interp.Load(f); err != nil {
		t.Fatalf("load: %v", err)
	}
	for _, cl := range f.Classes {
		for _, m := range cl.Methods {
			if m.Name == method {
				fn := bytecode.Compile(cl.Name, m, nil)
				if fn == nil {
					t.Fatalf("method %s did not compile (tree-walker fallback)", method)
				}
				return fn
			}
		}
	}
	t.Fatalf("method %s not found", method)
	return nil
}

// jumpOps is every opcode whose A operand is a relative jump offset.
var jumpOps = map[bytecode.Op]bool{
	bytecode.OpJmp:           true,
	bytecode.OpJmpBranch:     true,
	bytecode.OpJmpFalse:      true,
	bytecode.OpJmpTrue:       true,
	bytecode.OpJmpCmpLLFalse: true,
	bytecode.OpJmpCmpLLTrue:  true,
	bytecode.OpJmpCmpLCFalse: true,
	bytecode.OpJmpCmpLCTrue:  true,
	bytecode.OpJmpCmpFalse:   true,
	bytecode.OpJmpCmpTrue:    true,
	bytecode.OpCaseCmp:       true,
	bytecode.OpSwitchEnd:     true,
}

// checkJumps asserts every jump target lands inside the code array.
func checkJumps(t *testing.T, fn *bytecode.Func) {
	t.Helper()
	for pc := range fn.Code {
		ins := &fn.Code[pc]
		if !jumpOps[ins.Op] {
			continue
		}
		target := pc + int(ins.A)
		if target < 0 || target >= len(fn.Code) {
			t.Errorf("pc %d (%v): jump target %d outside [0,%d)", pc, ins.Op, target, len(fn.Code))
		}
	}
}

func TestCompileLoopFusesCompareAndBackEdge(t *testing.T) {
	fn := compileMethod(t, `class T {
		static int f(int n) {
			int s = 0;
			for (int i = 0; i < n; i++) { s = s + i; }
			return s;
		}
	}`, "f")
	checkJumps(t, fn)
	var fused, backEdge bool
	for _, ins := range fn.Code {
		switch ins.Op {
		case bytecode.OpJmpCmpLLFalse, bytecode.OpJmpCmpLLTrue,
			bytecode.OpJmpCmpLCFalse, bytecode.OpJmpCmpLCTrue:
			fused = true
		case bytecode.OpJmpBranch:
			backEdge = true
		}
	}
	if !fused {
		t.Error("counted loop did not fuse its compare with the conditional jump")
	}
	if !backEdge {
		t.Error("counted loop did not fuse the branch charge into the back edge")
	}
	if fn.MaxStack < 1 {
		t.Errorf("MaxStack = %d, want >= 1", fn.MaxStack)
	}
	if fn.NSlots < 2 {
		t.Errorf("NSlots = %d, want >= 2 (n, s, i)", fn.NSlots)
	}
}

func TestCompileControlFlowShapes(t *testing.T) {
	// Each shape must lower (no fallback) with in-range jumps; running them
	// is the interpreter suite's job, structure is this one's.
	shapes := map[string]string{
		"ternary": `class T { static int f(int x) { return x > 0 ? x : -x; } }`,
		"shortcircuit": `class T { static boolean f(int x) {
			return x > 0 && x < 100 || x == -1;
		} }`,
		"switch": `class T { static int f(int x) {
			switch (x % 3) { case 0: return 1; case 1: return 2; default: return 3; }
		} }`,
		"dowhile": `class T { static int f(int n) {
			int s = 0; do { s += n; n--; } while (n > 0); return s;
		} }`,
		"nested": `class T { static int f(int n) {
			int s = 0;
			for (int i = 0; i < n; i++) {
				for (int j = 0; j < i; j++) {
					if (j % 2 == 0) { s += j; } else { s -= 1; }
				}
			}
			return s;
		} }`,
		"arrays": `class T { static int f(int n) {
			int[] a = new int[8];
			for (int i = 0; i < 8; i++) { a[i] = i * n; }
			return a[3] + a[7 % 8];
		} }`,
	}
	for name, src := range shapes {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			checkJumps(t, compileMethod(t, src, "f"))
		})
	}
}

func TestCompileSkipsUnresolvedMethods(t *testing.T) {
	f, err := parser.Parse("t.java", `class T { static int f() { return 1; } }`)
	if err != nil {
		t.Fatal(err)
	}
	// Without interp.Load no slots are resolved, so Compile must decline
	// rather than produce a wrong frame layout.
	m := f.Classes[0].Methods[0]
	if fn := bytecode.Compile("T", m, nil); fn != nil && len(m.Params) > 0 {
		t.Error("unresolved method must fall back to the tree-walker")
	}
	if fn := bytecode.Compile("T", &ast.Method{Name: "empty"}, nil); fn != nil {
		t.Error("bodyless method must compile to nil")
	}
}

func TestDisasmDeterministic(t *testing.T) {
	fn := compileMethod(t, `class T {
		static double f(int n) {
			double s = 0.5;
			for (int i = 0; i < n; i++) { s = s * 1.5 + i; }
			return s;
		}
	}`, "f")
	a, b := fn.Disasm(), fn.Disasm()
	if a != b {
		t.Error("Disasm is not deterministic across calls")
	}
	for _, want := range []string{"func T.f/1", "slots=", "stack=", "ret"} {
		if !strings.Contains(a, want) {
			t.Errorf("disassembly missing %q:\n%s", want, a)
		}
	}
}

func TestInjectProbesRewritesEveryReturn(t *testing.T) {
	cases := map[string]string{
		"value return": `class T { static int f(int x) {
			if (x > 0) { return x; }
			return -x;
		} }`,
		"explicit void": `class T { static void f(int x) {
			if (x > 0) { return; }
			x = x + 1;
		} }`,
		"implicit fall-off": `class T { static void f(int x) { x = x + 1; } }`,
	}
	for name, src := range cases {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			fn := compileMethod(t, src, "f")
			bytecode.InjectProbes(fn, "T.f")
			if fn.Probe != "T.f" {
				t.Errorf("Probe = %q, want %q", fn.Probe, "T.f")
			}
			if fn.Code[0].Op != bytecode.OpProbeEnter {
				t.Errorf("Code[0] = %v, want probe.enter", fn.Code[0].Op)
			}
			checkJumps(t, fn)
			// Every surviving return must sit in an epilogue, directly
			// behind the exit probe — otherwise a path leaves the frame
			// without firing the hook.
			for pc, ins := range fn.Code {
				if ins.Op != bytecode.OpRet && ins.Op != bytecode.OpRetVoid {
					continue
				}
				if pc == 0 || fn.Code[pc-1].Op != bytecode.OpProbeExit {
					t.Errorf("return at pc %d is not behind a probe.exit", pc)
				}
			}
		})
	}
}
