// Package cliconfig is the one place the repository's command-line surfaces
// declare their shared execution knobs. jepo, jperf, wekaexp and the jepod
// daemon all expose the same five flags — -engine, -jobs, -cache,
// -cache-size, -workers (plus -node-deadline) — and before this package each
// binary re-declared them with drifting help strings and its own
// apply-after-parse ritual. Register once, Parse, then read the typed
// accessors.
//
// The package also owns the environment inheritance contract for re-exec'd
// dist worker processes: ApplyCache installs the process-wide artifact
// engine AND exports JEPO_CACHE / JEPO_CACHE_SIZE, and DistConfig folds the
// JEPO_DIST_FAULTS chaos plan into the dispatcher config, so a worker child
// observes exactly the configuration its parent parsed.
package cliconfig

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"jepo/internal/dist"
	"jepo/internal/engine"
	"jepo/internal/minijava/interp"
)

// Feature selects which optional flag groups Register declares. The cache
// flags are always registered — every binary takes them.
type Feature uint

const (
	// FeatEngine declares -engine (vm | ast).
	FeatEngine Feature = 1 << iota
	// FeatJobs declares -jobs (sched pool width; pure wall-clock knob).
	FeatJobs
	// FeatDist declares -workers and -node-deadline (process dispatcher).
	FeatDist
)

// Set holds the parsed shared flags of one command. Accessors are valid
// only after the owning FlagSet has been parsed.
type Set struct {
	features Feature

	engineName   *string
	jobs         *int
	workers      *int
	nodeDeadline *time.Duration
	cacheOn      *bool
	cacheSize    *int
}

// Register declares the shared flags on fs: the artifact-cache pair always,
// plus the groups selected by features. Call before fs.Parse.
func Register(fs *flag.FlagSet, features Feature) *Set {
	s := &Set{features: features}
	s.cacheOn = fs.Bool("cache", true, "content-addressed artifact cache (parse/program/sample reuse; stdout is identical either way)")
	s.cacheSize = fs.Int("cache-size", engine.DefaultCapacity, "artifact cache capacity in entries")
	if features&FeatEngine != 0 {
		s.engineName = fs.String("engine", "vm", "execution engine: vm (bytecode) or ast (tree-walker)")
	}
	if features&FeatJobs != 0 {
		s.jobs = fs.Int("jobs", runtime.GOMAXPROCS(0), "worker pool width; stdout is bit-identical at any value (telemetry goes to stderr)")
	}
	if features&FeatDist != 0 {
		s.workers = fs.Int("workers", 1, "worker processes; >1 dispatches tasks to re-exec'd workers with fault tolerance (stdout stays bit-identical)")
		s.nodeDeadline = fs.Duration("node-deadline", 10*time.Second, "silence window after which a worker node is quarantined and its task reassigned")
	}
	return s
}

// ApplyCache installs the process-wide artifact engine from the parsed
// -cache/-cache-size values and exports the configuration to the
// environment (JEPO_CACHE, JEPO_CACHE_SIZE) so re-exec'd worker processes
// inherit it. Call exactly once, right after parsing.
func (s *Set) ApplyCache() *engine.Engine {
	return engine.SetProcessConfig(engine.Config{Disabled: !*s.cacheOn, Capacity: *s.cacheSize})
}

// CacheConfig returns the parsed cache configuration without installing it.
// The daemon uses this form: it builds a private engine for its sessions
// instead of mutating process-wide state.
func (s *Set) CacheConfig() engine.Config {
	return engine.Config{Disabled: !*s.cacheOn, Capacity: *s.cacheSize}
}

// Engine resolves the parsed -engine name. Requires FeatEngine.
func (s *Set) Engine() (interp.Engine, error) {
	if s.engineName == nil {
		panic("cliconfig: Engine() without FeatEngine")
	}
	return interp.ParseEngine(*s.engineName)
}

// Jobs returns the parsed -jobs value. Requires FeatJobs.
func (s *Set) Jobs() int {
	if s.jobs == nil {
		panic("cliconfig: Jobs() without FeatJobs")
	}
	return *s.jobs
}

// Workers returns the parsed -workers value. Requires FeatDist.
func (s *Set) Workers() int {
	if s.workers == nil {
		panic("cliconfig: Workers() without FeatDist")
	}
	return *s.workers
}

// NodeDeadline returns the parsed -node-deadline value. Requires FeatDist.
func (s *Set) NodeDeadline() time.Duration {
	if s.nodeDeadline == nil {
		panic("cliconfig: NodeDeadline() without FeatDist")
	}
	return *s.nodeDeadline
}

// DistConfig assembles the dispatcher configuration every -workers campaign
// shares: the parsed worker count and node deadline, bounded retries, the
// JEPO_DIST_FAULTS chaos plan from the environment, and fault-path events
// narrated through onEvent (stderr material — never stdout). Requires
// FeatDist.
func (s *Set) DistConfig(seed uint64, onEvent func(string)) (dist.Config, error) {
	plan, err := dist.EnvPlan()
	if err != nil {
		return dist.Config{}, fmt.Errorf("cliconfig: %w", err)
	}
	return dist.Config{
		Workers:  s.Workers(),
		Seed:     seed,
		Retries:  2,
		Deadline: s.NodeDeadline(),
		Plan:     plan,
		OnEvent:  onEvent,
	}, nil
}
