package interp

import (
	"testing"
)

func TestSwitchBasicDispatch(t *testing.T) {
	src := `class T {
		static int pick(int v) {
			switch (v) {
			case 1:
				return 10;
			case 2:
				return 20;
			default:
				return -1;
			}
		}
		static int f() {
			return pick(1) * 10000 + pick(2) * 100 + (pick(9) + 1);
		}
	}`
	v, _ := runProgram(t, src, "T", "f")
	if v.I != 10*10000+20*100+0 {
		t.Errorf("switch dispatch = %d, want 102000", v.I)
	}
}

func TestSwitchFallThrough(t *testing.T) {
	src := `class T {
		static int f() {
			int hits = 0;
			for (int v = 0; v < 4; v++) {
				switch (v) {
				case 0:
				case 1:
					hits += 1;
					break;
				case 2:
					hits += 10;
					// falls through
				case 3:
					hits += 100;
					break;
				}
			}
			return hits;
		}
	}`
	// v=0: +1; v=1: +1; v=2: +10 then falls into +100; v=3: +100.
	v, _ := runProgram(t, src, "T", "f")
	if v.I != 1+1+110+100 {
		t.Errorf("fall-through = %d, want 212", v.I)
	}
}

func TestSwitchOnString(t *testing.T) {
	src := `class T {
		static int kind(String s) {
			switch (s) {
			case "delayed":
				return 1;
			case "ontime":
				return 0;
			default:
				return -1;
			}
		}
		static int f() {
			return kind("delayed") * 100 + kind("ontime") * 10 + (kind("lost") + 1);
		}
	}`
	v, _ := runProgram(t, src, "T", "f")
	if v.I != 100 {
		t.Errorf("string switch = %d, want 100", v.I)
	}
}

func TestSwitchNoMatchNoDefault(t *testing.T) {
	if got := evalInt(t, `
		int r = 5;
		switch (r) {
		case 1:
			r = 100;
		}
		return r;`); got != 5 {
		t.Errorf("unmatched switch = %d, want 5", got)
	}
}

func TestSwitchReturnAndContinueEscape(t *testing.T) {
	src := `class T {
		static int f() {
			int s = 0;
			for (int i = 0; i < 6; i++) {
				switch (i & 1) {
				case 0:
					continue;
				default:
					s += i;
				}
			}
			return s;
		}
	}`
	v, _ := runProgram(t, src, "T", "f")
	if v.I != 1+3+5 {
		t.Errorf("continue-through-switch = %d, want 9", v.I)
	}
}

func TestDoWhileExecutesBodyFirst(t *testing.T) {
	if got := evalInt(t, `
		int n = 0;
		do {
			n++;
		} while (false);
		return n;`); got != 1 {
		t.Errorf("do-while ran body %d times, want 1", got)
	}
	if got := evalInt(t, `
		int i = 0;
		int s = 0;
		do {
			s += i;
			i++;
		} while (i < 5);
		return s;`); got != 10 {
		t.Errorf("do-while sum = %d, want 10", got)
	}
}

func TestDoWhileBreak(t *testing.T) {
	if got := evalInt(t, `
		int i = 0;
		do {
			i++;
			if (i == 3) {
				break;
			}
		} while (true);
		return i;`); got != 3 {
		t.Errorf("do-while break = %d, want 3", got)
	}
}

func TestSwitchErrors(t *testing.T) {
	// Non-integral, non-String tag is an interpreter error.
	src := `class T { static int f() {
		double d = 1.5;
		switch (d) {
		case 1:
			return 1;
		}
		return 0;
	} }`
	f, err := parseLoad(t, src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.CallStatic("T", "f"); err == nil {
		t.Error("double switch tag accepted")
	}
}

// parseLoad is a helper returning a ready interpreter.
func parseLoad(t *testing.T, src string) (*Interp, error) {
	t.Helper()
	return newInterpFromSource(t, src)
}
