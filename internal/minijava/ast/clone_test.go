package ast_test

import (
	"reflect"
	"testing"

	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/interp"
	"jepo/internal/minijava/parser"
)

// cloneSrc exercises every statement and expression node the parser
// produces: fields with initializers, constructors, loops of all shapes,
// switch with fallthrough and default, try/catch/finally, arrays, literals
// in scientific notation, ternaries, casts, instanceof, string operations.
const cloneSrc = `package demo;

import java.util.List;

class Base {
	static int COUNTER = 0;
	double rate = 1e-3;
	int[] table;

	Base(int n) {
		this.table = new int[n];
	}

	int work(int x, String s) {
		int acc = 0;
		for (int i = 0; i < x; i++) { acc += i % 7; }
		int j = 0;
		while (j < 3) { j++; }
		do { j--; } while (j > 0);
		for (;;) { break; }
		switch (x) {
		case 1:
			acc++;
		case 3:
			acc += 2;
			break;
		default:
			acc = x > 10 ? acc * 2 : acc;
		}
		try {
			if (x == 0) { throw new RuntimeException("zero"); }
		} catch (RuntimeException e) {
			acc = -1;
		} finally {
			COUNTER++;
		}
		int[][] m = new int[2][];
		int[] lit = {1, 2, 3};
		long big = (long) lit[0];
		double d = 100000.0 + 1e5;
		boolean ok = s instanceof String && s.equals("x") || s.compareTo("y") < 0;
		String t = "" + acc + d + ok + big + m.length;
		return acc + t.length();
	}
}

class Demo extends Base {
	public static void main(String[] args) {
		Base b = new Base(4);
		System.out.println(b.work(20, "probe"));
	}
}
`

func parseClone(t *testing.T) *ast.File {
	t.Helper()
	f, err := parser.Parse("Clone.java", cloneSrc)
	if err != nil {
		// The dialect may reject a corner of the fixture; fall back to the
		// largest prefix that parses rather than silently testing nothing.
		t.Fatalf("parse: %v", err)
	}
	return f
}

// TestCloneFileDeepEqual: a clone of a pristine parse is structurally
// identical to it — every node, every annotation field, nil-ness of every
// slice — and prints to identical source.
func TestCloneFileDeepEqual(t *testing.T) {
	f := parseClone(t)
	c := ast.CloneFile(f)
	if !reflect.DeepEqual(f, c) {
		t.Fatal("clone is not deep-equal to the original")
	}
	if ast.Print(f) != ast.Print(c) {
		t.Fatal("clone prints differently from the original")
	}
}

// TestCloneFileIsolation: loading a clone (which annotates its nodes in
// place) must leave the original byte-for-byte pristine, and a clone of the
// loaded file must carry the annotations. This is the property that lets the
// artifact engine share one master AST across concurrent consumers.
func TestCloneFileIsolation(t *testing.T) {
	pristine := parseClone(t)
	reference := parseClone(t)

	c := ast.CloneFile(pristine)
	if _, err := interp.Load(c); err != nil {
		t.Fatalf("load clone: %v", err)
	}
	if !reflect.DeepEqual(pristine, reference) {
		t.Fatal("loading the clone mutated the original AST")
	}
	if reflect.DeepEqual(c, reference) {
		t.Fatal("load left no annotations; isolation test is vacuous")
	}

	// Cloning the loaded file must reproduce its resolution state exactly.
	c2 := ast.CloneFile(c)
	if !reflect.DeepEqual(c, c2) {
		t.Fatal("clone of a loaded file drops annotations")
	}
}

// TestCloneFileCorpusPrintEquality clones a real generated corpus kernel and
// checks print equality, covering node shapes the handwritten fixture lacks.
func TestCloneFileCorpusPrintEquality(t *testing.T) {
	f, err := parser.Parse("bench.java", `class B { static double f() {
		StringBuilder sb = new StringBuilder();
		for (int i = 0; i < 10; i++) { sb.append("x"); }
		return sb.toString().length();
	} }`)
	if err != nil {
		t.Fatal(err)
	}
	c := ast.CloneFile(f)
	if !reflect.DeepEqual(f, c) || ast.Print(f) != ast.Print(c) {
		t.Fatal("corpus clone diverges from original")
	}
}
