// Command jperf is the reproduction's analog of the Linux perf tool the
// paper's §VIII uses ("we first run each classifier 10 times to measure
// Package energy, CPU energy, and execution time using perf Linux tool"):
// it runs a mini-Java program repeatedly, reads the RAPL counters around
// each run, applies the paper's Tukey outlier-replacement protocol, and
// prints a perf-stat-style report.
//
// Usage:
//
//	jperf [-main Class] [-r runs] [-jobs N] [-workers N] [-tukey] [-engine vm|ast] <file.java>...
//	jperf bench [-o BENCH_interp.json] [-r repeats]
//	jperf bench -vm [-o BENCH_vm.json] [-r repeats]
//	jperf bench -sched [-o BENCH_sched.json]
//	jperf bench -dist [-o BENCH_dist.json]
//	jperf bench -cache [-o BENCH_cache.json]
//	jperf disasm <file.java>...
//
// -jobs N shards the repeated measurement runs across the deterministic
// sched pool. Every run builds its own meter and interpreter and runs are
// replayed into the Tukey protocol in index order, so the printed report is
// bit-identical at any -jobs value; pool telemetry goes to stderr.
//
// -workers N dispatches the runs to N re-exec'd worker processes instead,
// under the fault-tolerant dist protocol (heartbeats, deadlines, node
// quarantine); the report stays bit-identical and the dispatch ledger goes
// to stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"jepo/internal/cliconfig"
	"jepo/internal/dist"
	"jepo/internal/dist/campaigns"
	"jepo/internal/energy"
	cache "jepo/internal/engine"
	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/interp"
	"jepo/internal/rapl"
	"jepo/internal/sched"
	"jepo/internal/stats"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == dist.WorkerArg {
		if err := campaigns.ServeWorker(); err != nil {
			fmt.Fprintln(os.Stderr, "jperf worker:", err)
			os.Exit(1)
		}
		return
	}
	// Ctrl-C / SIGTERM cancels the root context: the measurement pool drains
	// and campaign nodes shut down instead of being orphaned.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if len(os.Args) > 1 && os.Args[1] == "bench" {
		if err := runBenchCmd(ctx, os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "jperf bench:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "disasm" {
		if err := runDisasmCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "jperf disasm:", err)
			os.Exit(1)
		}
		return
	}
	fs := flag.NewFlagSet("jperf", flag.ExitOnError)
	mainClass := fs.String("main", "", "class whose main method to run")
	runs := fs.Int("r", 10, "repeat count (perf -r), as in the paper")
	tukey := fs.Bool("tukey", true, "replace Tukey outliers with fresh runs")
	prof := registerProfileFlags(fs)
	shared := cliconfig.Register(fs, cliconfig.FeatEngine|cliconfig.FeatJobs|cliconfig.FeatDist)
	fs.Parse(os.Args[1:])
	if err := prof.start(); err != nil {
		fmt.Fprintln(os.Stderr, "jperf:", err)
		os.Exit(1)
	}
	defer prof.stop()
	// Install the process-wide artifact engine and export the configuration so
	// re-exec'd -workers processes inherit it. Stats go to stderr after the
	// report; stdout stays determinism-pinned.
	eng := shared.ApplyCache()
	engine, err := shared.Engine()
	if err != nil {
		fmt.Fprintln(os.Stderr, "jperf:", err)
		os.Exit(1)
	}
	if err := run(ctx, *mainClass, *runs, *tukey, engine, shared, fs.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "jperf:", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, eng.Stats())
}

// runDisasmCmd prints the compiled bytecode of every method in the given
// files; methods without a lowering are listed with a tree-walker marker.
// With -warm it first executes the program's main on a fresh interpreter and
// prints that instance's quickened code copies — the stream the VM actually
// dispatches once the inline caches are filled.
func runDisasmCmd(args []string) error {
	fs := flag.NewFlagSet("disasm", flag.ContinueOnError)
	warm := fs.Bool("warm", false, "run main first and print the instance's quickened code")
	mainClass := fs.String("main", "", "class whose main method warms the code (with -warm)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no input files")
	}
	files, err := parseArgs(fs.Args())
	if err != nil {
		return err
	}
	prog, err := interp.Load(files...)
	if err != nil {
		return err
	}
	if !*warm {
		fmt.Print(prog.Disasm())
		return nil
	}
	in := interp.New(prog, energy.NewMeter(energy.DefaultCosts()), interp.WithMaxOps(2_000_000_000))
	if err := in.RunMain(*mainClass); err != nil {
		return err
	}
	fmt.Print(in.DisasmWarm())
	return nil
}

// measurement is one run's counters, plus the degraded-path tally the
// resilient source absorbed while producing them.
type measurement struct {
	pkg, core, dram energy.Joules
	elapsed         time.Duration
	cycles          float64
	health          rapl.Health
}

func run(ctx context.Context, mainClass string, runs int, tukey bool, engine interp.Engine, shared *cliconfig.Set, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("no input files")
	}
	srcs, err := collectSources(args)
	if err != nil {
		return err
	}
	// The cold program is a cached artifact: parse masters and the linked
	// bytecode are shared with any other consumer of the same sources.
	prog, err := cache.Default().Program(engineSources(srcs), false)
	if err != nil {
		return err
	}

	// The protocol's initial runs shard across the sched pool — each run has
	// its own meter and interpreter, so they are independent — and replay
	// into the protocol in index order. With -workers > 1 they dispatch to
	// worker processes instead, under heartbeat/quarantine fault tolerance;
	// either way the runs are deterministic, so the report is bit-identical.
	// Tukey replacement rounds, if any, fall back to live sequential runs.
	var pre []measurement
	if shared.Workers() > 1 {
		dcfg, derr := shared.DistConfig(0, func(msg string) { fmt.Fprintln(os.Stderr, "jperf:", msg) })
		if derr != nil {
			return derr
		}
		wire, rep, derr := campaigns.MeasureRuns(ctx, dcfg, campaigns.MeasureParams{
			Files:  srcs,
			Main:   mainClass,
			Engine: engine.String(),
		}, runs)
		if derr != nil {
			return derr
		}
		fmt.Fprintln(os.Stderr, rep.String())
		fmt.Fprint(os.Stderr, rep.NodeSummary())
		pre = make([]measurement, len(wire))
		for i, m := range wire {
			pre[i] = measurement{
				pkg:     energy.Joules(m.Pkg),
				core:    energy.Joules(m.Core),
				dram:    energy.Joules(m.DRAM),
				elapsed: time.Duration(m.ElapsedNs),
				cycles:  m.Cycles,
				health:  m.Health,
			}
		}
	} else {
		var tel sched.Telemetry
		pre, tel, err = sched.Map(ctx, sched.Config{Jobs: shared.Jobs()}, make([]struct{}, runs),
			func(sched.Task, struct{}) (measurement, error) {
				return runOnce(prog, mainClass, engine)
			})
		if err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, tel)
	}

	var all []measurement
	measure := func() float64 {
		if len(all) < len(pre) {
			m := pre[len(all)]
			all = append(all, m)
			return float64(m.pkg)
		}
		m, err2 := runOnce(prog, mainClass, engine)
		if err2 != nil && err == nil {
			err = err2
		}
		all = append(all, m)
		return float64(m.pkg)
	}

	protocol := stats.Protocol{Runs: runs, MaxRounds: 10}
	if !tukey {
		protocol.MaxRounds = 0
	}
	meanPkg, samples, perr := protocol.Measure(measure)
	if perr != nil {
		return perr
	}
	if err != nil {
		return err
	}

	var cores, drams, times, cycles []float64
	var health rapl.Health
	for _, m := range all {
		health = health.Add(m.health)
	}
	for _, m := range all[len(all)-len(samples):] {
		cores = append(cores, float64(m.core))
		drams = append(drams, float64(m.dram))
		times = append(times, float64(m.elapsed))
		cycles = append(cycles, m.cycles)
	}
	meanTime := time.Duration(stats.Mean(times))

	fmt.Printf(" Performance counter stats for %q (%d runs):\n\n", strings.Join(args, " "), len(samples))
	printJ := func(label string, j float64) {
		fmt.Printf(" %18.6f Joules %-24s\n", j, label)
	}
	printJ("power/energy-pkg/", meanPkg)
	printJ("power/energy-cores/", stats.Mean(cores))
	printJ("power/energy-ram/", stats.Mean(drams))
	fmt.Printf(" %18.0f        %-24s # %.3f GHz\n", stats.Mean(cycles), "cycles",
		stats.Mean(cycles)/meanTime.Seconds()/1e9)
	fmt.Printf("\n %18.9f seconds time elapsed", meanTime.Seconds())
	if sd := stats.StdDev(times); sd > 0 && meanTime > 0 {
		fmt.Printf("  ( +- %.2f%% )", 100*sd/float64(meanTime))
	}
	fmt.Println()
	fmt.Printf("\n Measurement health: %s\n", health)
	if health.Degraded() {
		fmt.Println(" WARNING: degraded reads occurred; energy figures include estimated values")
	}
	return nil
}

// engineSources adapts the campaign wire form to the artifact engine's.
func engineSources(srcs []campaigns.SourceFile) []cache.Source {
	out := make([]cache.Source, len(srcs))
	for i, s := range srcs {
		out[i] = cache.Source{Path: s.Path, Source: s.Source}
	}
	return out
}

func runOnce(prog *interp.Program, mainClass string, engine interp.Engine) (measurement, error) {
	meter := energy.NewMeter(energy.DefaultCosts())
	// Measure through the resilient wrapper, as on hardware: transient read
	// faults cost a retry, not the run. With no faults it is a passthrough.
	src := rapl.NewResilient(rapl.NewSimSource(meter))
	before, err := src.Snapshot()
	if err != nil {
		return measurement{}, err
	}
	t0 := meter.Snapshot()
	in := interp.New(prog, meter, interp.WithMaxOps(2_000_000_000), interp.WithEngine(engine))
	if err := in.RunMain(mainClass); err != nil {
		return measurement{}, err
	}
	after, err := src.Snapshot()
	if err != nil {
		return measurement{}, err
	}
	t1 := meter.Snapshot()
	d := after.Sub(before)
	return measurement{
		pkg:     d.Package,
		core:    d.Core,
		dram:    d.DRAM,
		elapsed: t1.Elapsed - t0.Elapsed,
		cycles:  t1.Cycles - t0.Cycles,
		health:  src.Health(),
	}, nil
}

// collectSources reads the raw .java sources named by the arguments
// (directories are walked). The raw form is what the dist campaign ships to
// worker processes; parseSources turns it into ASTs for inline execution.
func collectSources(args []string) ([]campaigns.SourceFile, error) {
	var srcs []campaigns.SourceFile
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		var paths []string
		if info.IsDir() {
			err := filepath.WalkDir(arg, func(path string, d os.DirEntry, err error) error {
				if err == nil && !d.IsDir() && strings.HasSuffix(path, ".java") {
					paths = append(paths, path)
				}
				return err
			})
			if err != nil {
				return nil, err
			}
		} else {
			paths = []string{arg}
		}
		for _, path := range paths {
			b, err := os.ReadFile(path)
			if err != nil {
				return nil, err
			}
			srcs = append(srcs, campaigns.SourceFile{Path: path, Source: string(b)})
		}
	}
	if len(srcs) == 0 {
		return nil, fmt.Errorf("no .java files found")
	}
	return srcs, nil
}

func parseSources(srcs []campaigns.SourceFile) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(srcs))
	for _, s := range srcs {
		f, err := cache.Default().ParseFile(s.Path, s.Source)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func parseArgs(args []string) ([]*ast.File, error) {
	srcs, err := collectSources(args)
	if err != nil {
		return nil, err
	}
	return parseSources(srcs)
}
