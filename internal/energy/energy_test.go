package energy

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultCostsValidate(t *testing.T) {
	costs := DefaultCosts()
	if err := costs.Validate(); err != nil {
		t.Fatalf("default cost table invalid: %v", err)
	}
}

func TestValidateRejectsBadTables(t *testing.T) {
	t.Run("missing op", func(t *testing.T) {
		var ct CostTable
		ct.FrequencyHz = 1e9
		ct.CacheHit = Cost{1, 1}
		ct.CacheMiss = Cost{10, 10}
		if err := ct.Validate(); err == nil {
			t.Fatal("want error for unpopulated op")
		}
	})
	t.Run("negative cost", func(t *testing.T) {
		ct := DefaultCosts()
		ct.Ops[OpArithInt].Picojoules = -1
		if err := ct.Validate(); err == nil {
			t.Fatal("want error for negative cost")
		}
	})
	t.Run("zero frequency", func(t *testing.T) {
		ct := DefaultCosts()
		ct.FrequencyHz = 0
		if err := ct.Validate(); err == nil {
			t.Fatal("want error for zero frequency")
		}
	})
	t.Run("miss cheaper than hit", func(t *testing.T) {
		ct := DefaultCosts()
		ct.CacheMiss = Cost{Picojoules: ct.CacheHit.Picojoules / 2, Cycles: 1}
		if err := ct.Validate(); err == nil {
			t.Fatal("want error when miss is cheaper than hit")
		}
	})
}

func TestCalibratedRatios(t *testing.T) {
	ct := DefaultCosts()
	mod := ct.Ops[OpModInt].Picojoules / ct.Ops[OpArithInt].Picojoules
	if mod < 15 || mod > 20 {
		t.Errorf("modulus/arith ratio = %.1f, want ≈17.2 (Table I: +1,620%%)", mod)
	}
	static := ct.Ops[OpStatic].Picojoules / ct.Ops[OpLocal].Picojoules
	if static < 150 || static > 200 {
		t.Errorf("static/local ratio = %.1f, want ≈178 (Table I: +17,700%%)", static)
	}
	cmp := ct.Ops[OpStrCompareToChar].Picojoules / ct.Ops[OpStrEqualsChar].Picojoules
	if cmp < 1.2 || cmp > 1.5 {
		t.Errorf("compareTo/equals per-char ratio = %.2f, want ≈1.33 (Table I: +33%%)", cmp)
	}
	if ct.Ops[OpArithInt].Picojoules >= ct.Ops[OpArithNarrow].Picojoules ||
		ct.Ops[OpArithInt].Picojoules >= ct.Ops[OpArithLong].Picojoules ||
		ct.Ops[OpArithInt].Picojoules >= ct.Ops[OpArithDouble].Picojoules {
		t.Error("int must be the cheapest primitive arithmetic")
	}
	if ct.Ops[OpArithFloat].Picojoules >= ct.Ops[OpArithDouble].Picojoules {
		t.Error("float arithmetic must cost less than double")
	}
	if ct.Ops[OpConstSci].Picojoules >= ct.Ops[OpConstDecimal].Picojoules {
		t.Error("scientific-notation literals must cost less than plain decimal")
	}
	if ct.Ops[OpBoxCached].Picojoules >= ct.Ops[OpBoxAlloc].Picojoules {
		t.Error("cached boxing must cost less than allocating boxing")
	}
	if ct.Ops[OpSBAppendChar].Picojoules >= ct.Ops[OpStrConcatChar].Picojoules {
		t.Error("StringBuilder append must cost less per char than concat")
	}
	if ct.Ops[OpArraycopyElem].Picojoules >= ct.Ops[OpArrayElem].Picojoules {
		t.Error("System.arraycopy per element must beat an element access")
	}
}

func TestJoulesString(t *testing.T) {
	cases := []struct {
		j    Joules
		want string
	}{
		{0, "0 J"},
		{Picojoules(5), "5.000 pJ"},
		{Picojoules(5000), "5.000 nJ"},
		{5e-6, "5.000 µJ"},
		{5e-3, "5.000 mJ"},
		{5, "5.000 J"},
	}
	for _, c := range cases {
		if got := c.j.String(); got != c.want {
			t.Errorf("Joules(%g).String() = %q, want %q", float64(c.j), got, c.want)
		}
	}
}

func TestOpString(t *testing.T) {
	if OpModInt.String() != "mod.int" {
		t.Errorf("OpModInt.String() = %q", OpModInt.String())
	}
	if got := Op(999).String(); !strings.Contains(got, "999") {
		t.Errorf("out-of-range op string = %q", got)
	}
	for op := 0; op < NumOps; op++ {
		if Op(op).String() == "" {
			t.Errorf("op %d has no name", op)
		}
	}
}

func TestMeterStepAccumulates(t *testing.T) {
	m := NewMeter(DefaultCosts())
	m.Step(OpArithInt, 1000)
	s := m.Snapshot()
	wantJ := Picojoules(DefaultCosts().Ops[OpArithInt].Picojoules * 1000)
	if math.Abs(float64(s.Core-wantJ)) > 1e-18 {
		t.Errorf("core energy = %v, want %v", s.Core, wantJ)
	}
	if s.Package <= s.Core {
		t.Errorf("package (%v) must exceed core (%v) by uncore energy", s.Package, s.Core)
	}
	if m.OpCount(OpArithInt) != 1000 {
		t.Errorf("op count = %d, want 1000", m.OpCount(OpArithInt))
	}
	if s.Elapsed <= 0 {
		t.Error("elapsed time must be positive after work")
	}
}

func TestMeterStepIgnoresNonPositive(t *testing.T) {
	m := NewMeter(DefaultCosts())
	m.Step(OpArithInt, 0)
	m.Step(OpArithInt, -5)
	if s := m.Snapshot(); s.Core != 0 || s.Cycles != 0 {
		t.Errorf("non-positive steps charged energy: %+v", s)
	}
}

func TestMeterAccessHitMiss(t *testing.T) {
	m := NewMeter(DefaultCosts())
	addr := m.Alloc(64)
	m.Access(addr, 4)
	if _, misses := m.CacheStats(); misses != 1 {
		t.Fatalf("first access misses = %d, want 1", misses)
	}
	before := m.Snapshot()
	m.Access(addr, 4) // same line: hit
	d := m.Snapshot().Sub(before)
	wantHit := Picojoules(DefaultCosts().CacheHit.Picojoules)
	if math.Abs(float64(d.Core-wantHit)) > 1e-18 {
		t.Errorf("hit charged %v, want %v", d.Core, wantHit)
	}
	if d.DRAM != 0 {
		t.Errorf("hit charged DRAM energy %v", d.DRAM)
	}
}

func TestMeterAccessSpanningLines(t *testing.T) {
	m := NewMeter(DefaultCosts())
	// 8 bytes straddling a line boundary: two lines touched, two misses.
	base := (m.Alloc(256) | 63) - 3 // 4 bytes before a 64-byte boundary
	m.Access(base, 8)
	if hits, misses := m.CacheStats(); hits != 0 || misses != 2 {
		t.Errorf("straddling access: hits=%d misses=%d, want 0/2", hits, misses)
	}
}

func TestMeterAllocAlignedAndDisjoint(t *testing.T) {
	m := NewMeter(DefaultCosts())
	a := m.Alloc(10)
	b := m.Alloc(1)
	if a%8 != 0 || b%8 != 0 {
		t.Errorf("allocations not 8-byte aligned: %d %d", a, b)
	}
	if b < a+10 {
		t.Errorf("allocations overlap: a=%d (size 10) b=%d", a, b)
	}
	if m.Alloc(-1) < b {
		t.Error("negative-size alloc moved cursor backwards")
	}
}

func TestMeterReset(t *testing.T) {
	m := NewMeter(DefaultCosts())
	m.Step(OpModInt, 10)
	m.Access(m.Alloc(8), 8)
	m.Reset()
	s := m.Snapshot()
	if s.Core != 0 || s.Cycles != 0 || s.DRAM != 0 {
		t.Errorf("reset did not zero meter: %+v", s)
	}
	if hits, misses := m.CacheStats(); hits != 0 || misses != 0 {
		t.Errorf("reset did not clear cache stats: %d/%d", hits, misses)
	}
	if m.OpCount(OpModInt) != 0 {
		t.Error("reset did not clear op counts")
	}
}

func TestSampleSub(t *testing.T) {
	m := NewMeter(DefaultCosts())
	m.Step(OpArithInt, 100)
	a := m.Snapshot()
	m.Step(OpArithInt, 300)
	d := m.Snapshot().Sub(a)
	want := Picojoules(DefaultCosts().Ops[OpArithInt].Picojoules * 300)
	if math.Abs(float64(d.Core-want)) > 1e-18 {
		t.Errorf("delta core = %v, want %v", d.Core, want)
	}
}

func TestMeterReport(t *testing.T) {
	m := NewMeter(DefaultCosts())
	m.Step(OpModInt, 3)
	m.Step(OpArithInt, 7)
	r := m.Report()
	if !strings.Contains(r, "mod.int") || !strings.Contains(r, "arith.int") {
		t.Errorf("report missing op rows:\n%s", r)
	}
	if !strings.Contains(r, "package=") {
		t.Errorf("report missing totals line:\n%s", r)
	}
}

// Row-major traversal of a 2-D array must be dramatically cheaper than
// column-major — the mechanism behind Table I's +793% row.
func TestTraversalAsymmetry(t *testing.T) {
	const rows, cols, elem = 256, 256, 4
	run := func(colMajor bool) Joules {
		m := NewMeter(DefaultCosts())
		bases := make([]uint64, rows)
		for i := range bases {
			bases[i] = m.Alloc(cols * elem)
		}
		m.Reset() // keep the addresses, drop warm-up state
		for a := 0; a < rows; a++ {
			for b := 0; b < cols; b++ {
				i, j := a, b
				if colMajor {
					i, j = b, a
				}
				m.Access(bases[i]+uint64(j*elem), elem)
			}
		}
		return m.Snapshot().Core
	}
	row, col := run(false), run(true)
	ratio := float64(col) / float64(row)
	if ratio < 4 {
		t.Errorf("column/row energy ratio = %.2f, want ≥4 (paper: up to 8.9×)", ratio)
	}
}

func TestCachePanicsOnBadGeometry(t *testing.T) {
	for _, cfg := range []CacheConfig{
		{SizeBytes: 1024, LineBytes: 48, Ways: 2}, // non power-of-two line
		{SizeBytes: 1024, LineBytes: 64, Ways: 0}, // zero ways
		{SizeBytes: 64, LineBytes: 64, Ways: 8},   // fewer lines than ways
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCache(%+v) did not panic", cfg)
				}
			}()
			NewCache(cfg)
		}()
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2 sets × 2 ways × 64B = 256B cache. Four lines mapping to set 0:
	// lines 0, 2, 4, 6 (even lines). Fill ways with 0 and 2, touch 0 to
	// refresh it, then insert 4: line 2 must be the victim.
	c := NewCache(CacheConfig{SizeBytes: 256, LineBytes: 64, Ways: 2})
	line := func(n uint64) uint64 { return n * 64 }
	c.Access(line(0), 1)
	c.Access(line(2), 1)
	c.Access(line(0), 1) // refresh 0
	c.Access(line(4), 1) // evicts 2
	if _, miss := c.Access(line(0), 1); miss != 0 {
		t.Error("line 0 should still be resident")
	}
	if _, miss := c.Access(line(2), 1); miss != 1 {
		t.Error("line 2 should have been evicted (LRU)")
	}
}

// Property: for any access pattern, hits+misses equals total line touches,
// and replaying the same single-line pattern twice can only improve hits.
func TestCacheAccountingProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := NewCache(DefaultCacheConfig())
		var touches uint64
		for _, a := range addrs {
			lines, _ := c.Access(uint64(a)*8, 4)
			touches += uint64(lines)
		}
		return c.Hits()+c.Misses() == touches
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCacheSecondPassAllHits(t *testing.T) {
	c := NewCache(DefaultCacheConfig()) // 32 KiB
	// 16 KiB working set fits: second pass must be all hits.
	for pass := 0; pass < 2; pass++ {
		before := c.Misses()
		for a := uint64(0); a < 16<<10; a += 64 {
			c.Access(a, 4)
		}
		miss := c.Misses() - before
		if pass == 0 && miss != 256 {
			t.Errorf("first pass misses = %d, want 256", miss)
		}
		if pass == 1 && miss != 0 {
			t.Errorf("second pass misses = %d, want 0", miss)
		}
	}
}
