package core

import (
	"context"
	"fmt"
	"strings"

	"jepo/internal/energy"
	"jepo/internal/engine"
	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/interp"
	"jepo/internal/passes"
	"jepo/internal/sched"
)

// Verdict is the measured judgement on one diagnostic's fix.
type Verdict int

const (
	// VerdictAdvisory: the diagnostic carries no mechanical fix.
	VerdictAdvisory Verdict = iota
	// VerdictUnmeasured: the fix exists but could not be measured (no
	// runnable main, the fix made no change when replayed alone, or the
	// rewritten program failed to run).
	VerdictUnmeasured
	// VerdictAccepted: the fix was measured and does not cost energy.
	VerdictAccepted
	// VerdictRejected: the fix was measured to *increase* package energy on
	// this program, so the engine refuses it.
	VerdictRejected
)

func (v Verdict) String() string {
	switch v {
	case VerdictAccepted:
		return "accepted"
	case VerdictRejected:
		return "rejected"
	case VerdictUnmeasured:
		return "unmeasured"
	}
	return "advisory"
}

// AnalyzedDiagnostic is one pass-engine finding plus its measured effect.
type AnalyzedDiagnostic struct {
	passes.Diagnostic
	Verdict Verdict
	// Delta is the package-domain energy saved by applying this fix alone:
	// baseline minus fixed-run energy, so positive means the fix helps.
	// Valid only when Verdict is Accepted or Rejected.
	Delta energy.Joules
	// DeltaPct is Delta as a percentage of the baseline package energy.
	DeltaPct float64
	// Note explains an Unmeasured verdict.
	Note string
}

// AnalysisReport is the outcome of Analyze over a project. Reports are
// cached by the artifact engine and may be shared across Analyze calls with
// identical inputs; treat them as read-only.
type AnalysisReport struct {
	Diags []AnalyzedDiagnostic
	// Executable reports whether the project ran end-to-end, enabling
	// per-fix measurement; ExecNote says why when it did not.
	Executable bool
	ExecNote   string
	// Baseline is the unmodified program's whole-run measurement.
	Baseline energy.Sample
}

// Accepted lists the diagnostics whose fixes survived measurement.
func (r *AnalysisReport) Accepted() []AnalyzedDiagnostic {
	var out []AnalyzedDiagnostic
	for _, d := range r.Diags {
		if d.Verdict == VerdictAccepted {
			out = append(out, d)
		}
	}
	return out
}

// AnalyzeConfig configures Analyze.
type AnalyzeConfig struct {
	// MainClass selects the entry point (empty = the unique main class).
	MainClass string
	// MaxOps bounds each measurement run (0 = default 500M).
	MaxOps int64
	// Rules restricts the engine to a rule subset (empty = all rules).
	Rules []passes.Rule
	// Costs overrides the simulator cost table (nil = DefaultCosts).
	Costs *energy.CostTable
	// Engine selects the execution engine for the measurement runs
	// (zero value = bytecode VM). Both engines charge identically, so the
	// verdicts do not depend on this; it exists for cross-checking.
	Engine interp.Engine
	// Jobs bounds the worker pool for the per-fix measurements (and, through
	// AnalyzeAll, the per-file fan-out). Verdicts merge in diagnostic order,
	// so the report is bit-identical at any value; Jobs is therefore NOT
	// part of the report's cache key. <= 0 means 1.
	Jobs int
	// Cache selects the artifact engine the pipeline stages go through
	// (nil = engine.Default()). Every configuration field above except Jobs
	// is cache-key material: changing the entry point, op budget, rule
	// subset, cost table or execution engine keys separate artifacts.
	Cache *engine.Engine
}

// cache resolves the artifact engine for this config.
func (cfg AnalyzeConfig) cache() *engine.Engine {
	if cfg.Cache != nil {
		return cfg.Cache
	}
	return engine.Default()
}

// runSpec is the measurement configuration shared by the baseline sample
// and every fix measurement.
func (cfg AnalyzeConfig) runSpec() engine.RunSpec {
	return engine.RunSpec{
		Main:   cfg.MainClass,
		MaxOps: cfg.MaxOps,
		Engine: cfg.Engine,
		Costs:  cfg.Costs,
	}
}

// reportKey hashes everything that can influence an analysis report: the
// project's paths and bytes (paths appear in diagnostics), the rule subset,
// and the full measurement configuration. Jobs is deliberately absent.
func reportKey(srcs []engine.Source, cfg AnalyzeConfig) engine.Key {
	h := engine.NewKey("core/analyze")
	h.Str(cfg.MainClass).Int(cfg.MaxOps).Int(int64(cfg.Engine))
	if cfg.Costs != nil {
		h.Str(fmt.Sprintf("%v", *cfg.Costs))
	}
	h.Int(int64(len(cfg.Rules)))
	for _, r := range cfg.Rules {
		h.Int(int64(r))
	}
	for _, s := range srcs {
		h.Str(s.Path).Str(s.Source)
	}
	return h.Key()
}

// Analyze is the detect/fix/verify pipeline: it runs every pass over the
// project in one shared traversal per file, and — when the project has a
// runnable main — measures each mechanical fix in isolation by replaying
// just that fix on a private AST checkout and running the program before and
// after through the interpreter and energy model. Fixes whose measured
// package-energy delta is negative are flagged VerdictRejected rather than
// trusted on the rule's say-so.
//
// The interpreter and meter are deterministic, so a single before/after run
// pair per fix is an exact measurement, and repeated Analyze calls agree.
// The whole pipeline goes through the artifact engine: parses, the compiled
// baseline program, the baseline sample, per-fix outcomes and the report
// itself are content-addressed, so a repeated call is a cache hit with a
// bit-identical report. With the cache disabled every stage rebuilds from
// scratch and produces the same bytes.
//
// Cancelling ctx aborts the pipeline — including mid-interpretation inside a
// measurement run — and returns ctx's error. Because the engine never caches
// errors, and every cancellation surfaces as an error rather than a partial
// report, a cancelled Analyze leaves no trace in the artifact store.
func Analyze(ctx context.Context, p Project, cfg AnalyzeConfig) (*AnalysisReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	eng := cfg.cache()
	srcs := engine.Sources(p)
	rk := reportKey(srcs, cfg)
	v, err := eng.Memo(rk, func() (any, error) {
		return analyze(ctx, eng, srcs, cfg, rk)
	})
	if err != nil {
		return nil, err
	}
	return v.(*AnalysisReport), nil
}

func analyze(ctx context.Context, eng *engine.Engine, srcs []engine.Source, cfg AnalyzeConfig, rk engine.Key) (*AnalysisReport, error) {
	files, err := eng.ParseAll(srcs)
	if err != nil {
		return nil, err
	}
	diags := passes.AnalyzeFilesRules(files, cfg.Rules...)
	report := &AnalysisReport{Diags: make([]AnalyzedDiagnostic, len(diags))}
	for i, d := range diags {
		v := VerdictAdvisory
		if d.Fix != nil {
			v = VerdictUnmeasured
		}
		report.Diags[i] = AnalyzedDiagnostic{Diagnostic: d, Verdict: v}
	}

	// Baseline sample through the engine: the compiled program and the
	// measurement are shared artifacts, so the baseline costs nothing when a
	// previous run (or another caller of the same sources) already took it.
	baseline, err := eng.Sample(ctx, srcs, cfg.runSpec())
	if err != nil {
		// A cancelled baseline run must surface as an error, never as a
		// cacheable "program not runnable" report.
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		report.ExecNote = err.Error()
		for i := range report.Diags {
			if report.Diags[i].Verdict == VerdictUnmeasured {
				report.Diags[i].Note = "program not runnable"
			}
		}
		return report, nil
	}
	report.Executable = true
	report.Baseline = baseline

	// Each fix measures on its own AST checkout and interpreter, so the
	// measurements shard across the pool; verdicts commit in diagnostic
	// order, keeping the report bit-identical at any cfg.Jobs.
	var idxs []int
	for i := range report.Diags {
		if report.Diags[i].Verdict == VerdictUnmeasured {
			idxs = append(idxs, i)
		}
	}
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = 1
	}
	_, _, err = sched.MapCommit(ctx, sched.Config{Jobs: jobs}, idxs,
		func(_ sched.Task, i int) (fixOutcome, error) {
			return measureFix(ctx, eng, srcs, cfg, rk, i, len(diags), baseline)
		},
		func(task sched.Task, out fixOutcome) {
			ad := &report.Diags[idxs[task.Index]]
			if out.Note != "" {
				ad.Note = out.Note
				return
			}
			ad.Delta = out.Delta
			if baseline.Package != 0 {
				ad.DeltaPct = 100 * float64(out.Delta) / float64(baseline.Package)
			}
			if out.Delta < 0 {
				ad.Verdict = VerdictRejected
			} else {
				ad.Verdict = VerdictAccepted
			}
		})
	if err != nil {
		return nil, err
	}
	return report, nil
}

// fixOutcome is one fix measurement's cached artifact: the measured delta,
// or the note explaining why the fix could not be measured. Both cases are
// pure functions of (project bytes, config, fix index), so both cache.
type fixOutcome struct {
	Delta energy.Joules
	Note  string
}

// measureFix checks out a private copy of the project's ASTs from the parse
// cache, re-derives the diagnostics on it (fix closures anchor to exact node
// instances, so they cannot be replayed across parses; the engine is
// deterministic, so index i names the same finding), applies only fix i, and
// measures the resulting program. The unchanged-file majority never
// re-parses: a checkout is a clone of the cached master, so Analyze performs
// O(files) parses total instead of O(files × fixes).
func measureFix(ctx context.Context, eng *engine.Engine, srcs []engine.Source, cfg AnalyzeConfig, rk engine.Key, i, want int, baseline energy.Sample) (fixOutcome, error) {
	fk := engine.NewKey("core/fix").Str(string(rk[:])).Int(int64(i)).Key()
	v, err := eng.Memo(fk, func() (any, error) {
		files, err := eng.ParseAll(srcs)
		if err != nil {
			return nil, err
		}
		diags := passes.AnalyzeFilesRules(files, cfg.Rules...)
		if len(diags) != want {
			return nil, fmt.Errorf("core: analysis is not deterministic: %d diagnostics, then %d", want, len(diags))
		}
		res := passes.ApplyFixes(files, []passes.Diagnostic{diags[i]})
		if res.Changes == 0 {
			return fixOutcome{Note: "fix made no change when replayed alone"}, nil
		}
		after, err := measureRun(ctx, files, cfg)
		if err != nil {
			// Same trap as the baseline: a cancelled measurement is an
			// error, not a cacheable "rewritten program failed" note.
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			return fixOutcome{Note: "rewritten program failed: " + err.Error()}, nil
		}
		return fixOutcome{Delta: baseline.Package - after.Package}, nil
	})
	if err != nil {
		return fixOutcome{}, err
	}
	return v.(fixOutcome), nil
}

// measureRun executes a rewritten project's main under a fresh meter and
// returns the whole-run sample. The ASTs here are post-fix mutants private
// to the caller, so they load directly rather than through the program
// cache.
func measureRun(ctx context.Context, files []*ast.File, cfg AnalyzeConfig) (energy.Sample, error) {
	prog, err := interp.Load(files...)
	if err != nil {
		return energy.Sample{}, err
	}
	costs := energy.DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	meter := energy.NewMeter(costs)
	maxOps := cfg.MaxOps
	if maxOps == 0 {
		maxOps = 500_000_000
	}
	in := interp.New(prog, meter, interp.WithMaxOps(maxOps), interp.WithEngine(cfg.Engine), interp.WithContext(ctx))
	if err := in.RunMain(cfg.MainClass); err != nil {
		return energy.Sample{}, err
	}
	return meter.Snapshot(), nil
}

// AnalysisView renders the unified diagnostic view: every finding with its
// rule, whether a mechanical fix exists, and the measured ΔE verdict.
func AnalysisView(r *AnalysisReport) string {
	var sb strings.Builder
	if r.Executable {
		fmt.Fprintf(&sb, "baseline: package=%v core=%v time=%v\n",
			r.Baseline.Package, r.Baseline.Core, r.Baseline.Elapsed)
	} else {
		fmt.Fprintf(&sb, "measurement disabled: %s\n", r.ExecNote)
	}
	for _, d := range r.Diags {
		fmt.Fprintf(&sb, "%s\n", d.Diagnostic)
		switch d.Verdict {
		case VerdictAdvisory:
			sb.WriteString("    advisory — no mechanical fix\n")
		case VerdictUnmeasured:
			fmt.Fprintf(&sb, "    fix available — unmeasured (%s)\n", d.Note)
		case VerdictAccepted:
			fmt.Fprintf(&sb, "    fix accepted — ΔE = %v (%.3f%% of package)\n", d.Delta, d.DeltaPct)
		case VerdictRejected:
			// Joules formatting picks its unit for magnitudes, so render the
			// sign ourselves.
			fmt.Fprintf(&sb, "    fix REJECTED — measured ΔE = -%v (costs energy on this program)\n", -d.Delta)
		}
	}
	if len(r.Diags) == 0 {
		sb.WriteString("(no diagnostics — the project already follows the Table I guidance)\n")
	}
	return sb.String()
}
