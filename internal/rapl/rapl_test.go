package rapl

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"jepo/internal/energy"
)

func newTestMeter() *energy.Meter { return energy.NewMeter(energy.DefaultCosts()) }

func TestDomainString(t *testing.T) {
	if Package.String() != "package" || Core.String() != "core" || DRAM.String() != "dram" {
		t.Error("domain names wrong")
	}
	if Domain(42).String() == "" {
		t.Error("unknown domain must still format")
	}
	if len(Domains()) != 3 {
		t.Error("Domains() must list the three modelled domains")
	}
}

func TestSimMSRPowerUnit(t *testing.T) {
	s := NewSimMSR(newTestMeter())
	pu, err := s.ReadMSR(MSRPowerUnit)
	if err != nil {
		t.Fatal(err)
	}
	unit := EnergyUnit(pu)
	want := energy.Joules(1.0 / 65536.0)
	if math.Abs(float64(unit-want)) > 1e-15 {
		t.Errorf("energy unit = %v, want %v (2^-16 J)", unit, want)
	}
}

func TestSimMSRUnknownRegister(t *testing.T) {
	s := NewSimMSR(newTestMeter())
	if _, err := s.ReadMSR(0x123); err == nil {
		t.Fatal("want error for unsupported MSR")
	}
}

func TestSetESU(t *testing.T) {
	s := NewSimMSR(newTestMeter())
	if err := s.SetESU(0); err == nil {
		t.Error("ESU 0 must be rejected")
	}
	if err := s.SetESU(32); err == nil {
		t.Error("ESU 32 must be rejected")
	}
	if err := s.SetESU(10); err != nil {
		t.Errorf("ESU 10 rejected: %v", err)
	}
	pu, _ := s.ReadMSR(MSRPowerUnit)
	if got := EnergyUnit(pu); math.Abs(float64(got)-1.0/1024) > 1e-15 {
		t.Errorf("energy unit after SetESU(10) = %v, want 2^-10", got)
	}
}

func TestSimMSRCountsTrackMeter(t *testing.T) {
	m := newTestMeter()
	s := NewSimMSR(m)
	m.Step(energy.OpModInt, 1_000_000) // 172 µJ core
	raw, err := s.ReadMSR(MSRPP0EnergyStatus)
	if err != nil {
		t.Fatal(err)
	}
	gotJ := float64(raw) / 65536.0
	wantJ := float64(m.Snapshot().Core)
	if math.Abs(gotJ-wantJ) > 1.0/65536 {
		t.Errorf("PP0 counter = %g J, want %g J within one count", gotJ, wantJ)
	}
}

func TestSamplerMonotonicAndAccurate(t *testing.T) {
	m := newTestMeter()
	src := NewSimSource(m)
	s0, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	m.Step(energy.OpModInt, 2_000_000)
	s1, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	d := s1.Sub(s0)
	if d.Core <= 0 || d.Package <= 0 {
		t.Fatalf("energy did not accumulate: %+v", d)
	}
	if d.Package <= d.Core {
		t.Errorf("package (%v) must exceed core (%v)", d.Package, d.Core)
	}
	wantCore := float64(m.Snapshot().Core)
	if math.Abs(float64(d.Core)-wantCore) > 2.0/65536 {
		t.Errorf("sampled core = %v, want %g", d.Core, wantCore)
	}
}

// The sampler must survive 32-bit counter wraparound: drive the meter past
// 65536 J-counts × 2^32 is impractical, so shrink the energy unit instead.
func TestSamplerWraparound(t *testing.T) {
	m := newTestMeter()
	msr := NewSimMSR(m)
	if err := msr.SetESU(31); err != nil { // unit = 2^-31 J: wraps at 2 J
		t.Fatal(err)
	}
	smp, err := NewSampler(msr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := smp.Snapshot(); err != nil {
		t.Fatal(err)
	}
	var total float64
	// Each step batch adds ~0.6 J core; sample every batch so wraps (every
	// ~2 J) are observed at least once per wrap period.
	for i := 0; i < 12; i++ {
		m.Step(energy.OpThrow, 1_000_000) // 0.6 J at 600 nJ per throw
		total += 0.6
		if _, err := smp.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	snap, _ := smp.Snapshot()
	if math.Abs(float64(snap.Core)-total) > 0.01 {
		t.Errorf("unwrapped core = %v J, want ≈%.1f J across wraps", snap.Core, total)
	}
}

func TestSnapshotDomainAndSub(t *testing.T) {
	s := Snapshot{Package: 3, Core: 2, DRAM: 1}
	if s.Domain(Package) != 3 || s.Domain(Core) != 2 || s.Domain(DRAM) != 1 {
		t.Error("Domain accessor wrong")
	}
	if s.Domain(Domain(9)) != 0 {
		t.Error("unknown domain must read 0")
	}
	d := s.Sub(Snapshot{Package: 1, Core: 1, DRAM: 1})
	if d.Package != 2 || d.Core != 1 || d.DRAM != 0 {
		t.Errorf("Sub wrong: %+v", d)
	}
}

// Property: modular 32-bit delta recovers the true delta for any pair of
// counter values whose true distance is below 2^32.
func TestUnwrapProperty(t *testing.T) {
	f := func(start uint32, inc uint32) bool {
		next := start + inc // wraps naturally in uint32
		delta := (uint64(next) - uint64(start)) & 0xFFFFFFFF
		return delta == uint64(inc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- powercap sysfs over a fake tree ---

func writeZone(t *testing.T, root, name, label string, uj, maxRange uint64) string {
	t.Helper()
	dir := filepath.Join(root, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	mustWrite := func(file, content string) {
		if err := os.WriteFile(filepath.Join(dir, file), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mustWrite("name", label+"\n")
	mustWrite("energy_uj", itoa(uj))
	if maxRange > 0 {
		mustWrite("max_energy_range_uj", itoa(maxRange))
	}
	return dir
}

func itoa(v uint64) string {
	if v == 0 {
		return "0\n"
	}
	var b [24]byte
	i := len(b)
	b[i-1] = '\n'
	i--
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestSysfsReadsFakeTree(t *testing.T) {
	root := t.TempDir()
	pkg := writeZone(t, root, "intel-rapl:0", "package-0", 1_000_000, 262_143_328_850)
	writeZone(t, root, "intel-rapl:0:0", "core", 400_000, 262_143_328_850)
	writeZone(t, root, "intel-rapl:0:1", "dram", 100_000, 65_712_999_613)
	writeZone(t, root, "intel-rapl:0:2", "uncore", 1, 0) // ignored
	writeZone(t, root, "intel-rapl-mmio:0", "package-0", 5, 0)

	s, err := NewSysfs(root)
	if err != nil {
		t.Fatal(err)
	}
	s0, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Advance the package counter by 2 J and the core by 0.5 J.
	os.WriteFile(filepath.Join(pkg, "energy_uj"), []byte("3000000\n"), 0o644)
	os.WriteFile(filepath.Join(root, "intel-rapl:0:0", "energy_uj"), []byte("900000\n"), 0o644)
	s1, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	d := s1.Sub(s0)
	if math.Abs(float64(d.Package)-2.0) > 1e-9 {
		t.Errorf("package delta = %v, want 2 J", d.Package)
	}
	if math.Abs(float64(d.Core)-0.5) > 1e-9 {
		t.Errorf("core delta = %v, want 0.5 J", d.Core)
	}
	if d.DRAM != 0 {
		t.Errorf("dram delta = %v, want 0", d.DRAM)
	}
}

func TestSysfsUnwrapsAgainstMaxRange(t *testing.T) {
	root := t.TempDir()
	pkg := writeZone(t, root, "intel-rapl:0", "package-0", 999_000, 1_000_000)
	s, err := NewSysfs(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Counter wraps: 999000 → 500 with range 1e6 means +1500 µJ.
	os.WriteFile(filepath.Join(pkg, "energy_uj"), []byte("500\n"), 0o644)
	s1, _ := s.Snapshot()
	if math.Abs(s1.Package.Microjoules()-1500) > 1e-6 {
		t.Errorf("wrapped package = %v µJ, want 1500", s1.Package.Microjoules())
	}
}

func TestSysfsErrors(t *testing.T) {
	if _, err := NewSysfs(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing root must error")
	}
	root := t.TempDir()
	writeZone(t, root, "intel-rapl:0:0", "core", 1, 0) // sub-zone only
	if _, err := NewSysfs(root); err == nil {
		t.Error("tree without a package zone must error")
	}
}

func TestDetectFallsBackGracefully(t *testing.T) {
	// Detect must never panic; on machines without powercap it returns nil.
	src := Detect()
	if src != nil {
		if _, err := src.Snapshot(); err != nil {
			t.Errorf("detected source failed to read: %v", err)
		}
	}
}
