package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteARFF renders the dataset in WEKA's ARFF format.
func (d *Dataset) WriteARFF(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "@relation %s\n\n", quoteIfNeeded(d.Name))
	for _, a := range d.Attrs {
		if a.Kind == Numeric {
			fmt.Fprintf(bw, "@attribute %s numeric\n", quoteIfNeeded(a.Name))
			continue
		}
		vals := make([]string, len(a.Values))
		for i, v := range a.Values {
			vals[i] = quoteIfNeeded(v)
		}
		fmt.Fprintf(bw, "@attribute %s {%s}\n", quoteIfNeeded(a.Name), strings.Join(vals, ","))
	}
	fmt.Fprintf(bw, "\n@data\n")
	for _, row := range d.X {
		for j, v := range row {
			if j > 0 {
				bw.WriteByte(',')
			}
			switch {
			case math.IsNaN(v):
				bw.WriteByte('?')
			case d.Attrs[j].Kind == Nominal:
				bw.WriteString(quoteIfNeeded(d.Attrs[j].Values[int(v)]))
			default:
				bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

func quoteIfNeeded(s string) string {
	if strings.ContainsAny(s, " ,{}'\"%") || s == "" {
		return "'" + strings.ReplaceAll(s, "'", "\\'") + "'"
	}
	return s
}

// ReadARFF parses the subset of ARFF this package writes: @relation,
// numeric and nominal @attribute lines, and comma-separated @data rows with
// '?' for missing values. The last attribute is taken as the class unless a
// later call changes ClassIdx.
func ReadARFF(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	d := &Dataset{Name: "unnamed"}
	inData := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if !inData {
			lower := strings.ToLower(line)
			switch {
			case strings.HasPrefix(lower, "@relation"):
				d.Name = unquote(strings.TrimSpace(line[len("@relation"):]))
			case strings.HasPrefix(lower, "@attribute"):
				if err := parseAttrLine(d, line); err != nil {
					return nil, fmt.Errorf("arff line %d: %w", lineNo, err)
				}
			case strings.HasPrefix(lower, "@data"):
				if len(d.Attrs) == 0 {
					return nil, fmt.Errorf("arff line %d: @data before any @attribute", lineNo)
				}
				d.ClassIdx = len(d.Attrs) - 1
				inData = true
			default:
				return nil, fmt.Errorf("arff line %d: unexpected header %q", lineNo, line)
			}
			continue
		}
		row, err := parseDataLine(d, line)
		if err != nil {
			return nil, fmt.Errorf("arff line %d: %w", lineNo, err)
		}
		d.X = append(d.X, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !inData {
		return nil, fmt.Errorf("arff: missing @data section")
	}
	return d, nil
}

func parseAttrLine(d *Dataset, line string) error {
	rest := strings.TrimSpace(line[len("@attribute"):])
	var name string
	if strings.HasPrefix(rest, "'") {
		end := strings.Index(rest[1:], "'")
		if end < 0 {
			return fmt.Errorf("unterminated attribute name")
		}
		name = rest[1 : 1+end]
		rest = strings.TrimSpace(rest[2+end:])
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return fmt.Errorf("attribute without a type")
		}
		name = rest[:sp]
		rest = strings.TrimSpace(rest[sp:])
	}
	switch {
	case strings.EqualFold(rest, "numeric") || strings.EqualFold(rest, "real") || strings.EqualFold(rest, "integer"):
		d.Attrs = append(d.Attrs, NewNumeric(name))
	case strings.HasPrefix(rest, "{") && strings.HasSuffix(rest, "}"):
		body := rest[1 : len(rest)-1]
		parts := splitCSV(body) // quote-aware: values may contain commas
		vals := make([]string, 0, len(parts))
		for _, p := range parts {
			vals = append(vals, unquote(strings.TrimSpace(p)))
		}
		d.Attrs = append(d.Attrs, NewNominal(name, vals...))
	default:
		return fmt.Errorf("unsupported attribute type %q", rest)
	}
	return nil
}

func parseDataLine(d *Dataset, line string) ([]float64, error) {
	parts := splitCSV(line)
	if len(parts) != len(d.Attrs) {
		return nil, fmt.Errorf("row has %d cells, want %d", len(parts), len(d.Attrs))
	}
	row := make([]float64, len(parts))
	for j, p := range parts {
		p = unquote(strings.TrimSpace(p))
		if p == "?" {
			row[j] = math.NaN()
			continue
		}
		if d.Attrs[j].Kind == Nominal {
			ix, ok := d.Attrs[j].IndexOf(p)
			if !ok {
				return nil, fmt.Errorf("unknown nominal value %q for %s", p, d.Attrs[j].Name)
			}
			row[j] = float64(ix)
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad numeric value %q for %s", p, d.Attrs[j].Name)
		}
		row[j] = v
	}
	return row, nil
}

// splitCSV splits on commas outside single quotes.
func splitCSV(line string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '\'':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, line[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, line[start:])
	return out
}

func unquote(s string) string {
	if len(s) >= 2 && s[0] == '\'' && s[len(s)-1] == '\'' {
		return strings.ReplaceAll(s[1:len(s)-1], "\\'", "'")
	}
	return s
}
